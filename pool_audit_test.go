package xqindep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"xqindep/internal/faultinject"
)

// TestPoolAuditLifecycle drives the public audit wiring end to end: an
// injected verdict flip is served, sampled, refuted, and quarantined,
// after which the pool downgrades the schema's verdicts and reports
// the incident.
func TestPoolAuditLifecycle(t *testing.T) {
	faultinject.Enable()
	var spool bytes.Buffer
	p := NewPool(PoolOptions{
		Workers:    2,
		AuditRate:  1,
		AuditSeed:  7,
		AuditSpool: &spool,
	})
	defer p.Close()

	schema := MustParseSchema(bibSchema)
	q := MustParseQuery("//title")
	u := MustParseUpdate("delete //title") // dependent pair

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	rep, err := p.Analyze(faultinject.With(context.Background(), sched), schema, q, u, Chains, Options{})
	if err != nil || !rep.Independent {
		t.Fatalf("flip not served: %+v, %v", rep, err)
	}
	p.Flush()

	ast, qst := p.AuditStats()
	if ast.Disagreements != 1 || qst.Quarantined != 1 {
		t.Fatalf("audit stats: %+v / %+v", ast, qst)
	}
	if got := p.QuarantineState(schema); got != "quarantined" {
		t.Fatalf("quarantine state %s", got)
	}
	in := p.Incidents()
	if len(in) != 1 || in[0].QueryText != "//title" {
		t.Fatalf("incidents: %+v", in)
	}
	// The spool holds the same incident as one JSON line.
	var spooled Incident
	if err := json.Unmarshal([]byte(strings.TrimSpace(spool.String())), &spooled); err != nil {
		t.Fatalf("spool line: %v (%q)", err, spool.String())
	}
	if spooled.Fingerprint != schema.Fingerprint() {
		t.Fatalf("spooled incident: %+v", spooled)
	}

	rep, err = p.Analyze(context.Background(), schema, q, u, Chains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Independent || !errors.Is(rep.Err, ErrQuarantined) || !errors.Is(rep.Err, ErrBudgetExceeded) {
		t.Fatalf("post-quarantine report: %+v", rep)
	}
}

// TestPoolAuditDisabledByDefault pins that AuditRate 0 wires no
// auditor: no audit goroutines, empty stats, clean state.
func TestPoolAuditDisabledByDefault(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	defer p.Close()
	schema := MustParseSchema(bibSchema)
	if _, err := p.Analyze(context.Background(), schema, MustParseQuery("//title"), MustParseUpdate("delete //price"), Chains, Options{}); err != nil {
		t.Fatal(err)
	}
	ast, qst := p.AuditStats()
	if ast.Observed != 0 || qst.Quarantined != 0 {
		t.Fatalf("audit stats without auditing: %+v / %+v", ast, qst)
	}
	if got := p.QuarantineState(schema); got != "clean" {
		t.Fatalf("state %s", got)
	}
	if in := p.Incidents(); in != nil {
		t.Fatalf("incidents without auditing: %+v", in)
	}
}
