// Command xqbench regenerates the evaluation of the paper (Figure 3):
//
//	xqbench -fig 3a            per-update analysis time vs all 36 views
//	xqbench -fig 3b            precision vs ground truth (chains / types / paths)
//	xqbench -fig 3c            view re-materialisation savings
//	xqbench -fig 3d            R-benchmark scalability surface
//	xqbench -fig all           everything
//
// Flags tune the workload sizes; defaults regenerate the shapes of the
// paper on laptop-scale inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xqindep/internal/experiments"
	"xqindep/internal/xmark"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "panel to regenerate: 3a, 3b, 3c, 3d or all")
		docs     = flag.Int("truth-docs", 3, "documents sampled for the ground truth (3b)")
		factor   = flag.Float64("truth-factor", 1.2, "scale factor of ground-truth documents")
		cFactors = flag.String("c-factors", "1,4,16", "comma-separated document scale factors for 3c")
		dNs      = flag.String("d-ns", "1,3,5,10,20", "schema sizes n for 3d")
		dMs      = flag.String("d-ms", "1,5,10", "expression sizes m for 3d")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per analysis run (0 = none; overruns count as dependent)")
		maxNodes = flag.Int("max-nodes", 0, "CDAG node budget per analysis run (0 = default)")
	)
	flag.Parse()
	experiments.AnalysisTimeout = time.Duration(*timeout)
	experiments.AnalysisLimits.MaxNodes = *maxNodes

	run3a := *fig == "3a" || *fig == "all"
	run3b := *fig == "3b" || *fig == "all"
	run3c := *fig == "3c" || *fig == "all"
	run3d := *fig == "3d" || *fig == "all"
	if !(run3a || run3b || run3c || run3d) {
		fmt.Fprintf(os.Stderr, "xqbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if run3a {
		fmt.Println(experiments.RenderFigure3a(experiments.Figure3a()))
	}
	if run3b {
		truth, err := xmark.GroundTruth(xmark.SampleDocuments(*docs, *factor))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqbench:", err)
			os.Exit(1)
		}
		rows, err := experiments.Figure3b(truth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqbench: SOUNDNESS VIOLATION:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFigure3b(rows))
	}
	if run3c {
		fmt.Println(experiments.RenderFigure3c(experiments.Figure3c(parseFloats(*cFactors))))
	}
	if run3d {
		fmt.Println(experiments.RenderFigure3d(experiments.Figure3d(parseInts(*dNs), parseInts(*dMs))))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: bad number %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
