// Command xqbench regenerates the evaluation of the paper (Figure 3):
//
//	xqbench -fig 3a            per-update analysis time vs all 36 views
//	xqbench -fig 3b            precision vs ground truth (chains / types / paths)
//	xqbench -fig 3c            view re-materialisation savings
//	xqbench -fig 3d            R-benchmark scalability surface
//	xqbench -fig all           everything
//	xqbench -compiled-bench    dense compiled-schema engine vs the map
//	                           reference; writes BENCH_compiledschema.json
//	xqbench -plan-bench        warm prepared-plan serving vs cold
//	                           analysis; writes BENCH_plancache.json
//	xqbench -audit-bench       request-path overhead of the runtime
//	                           verdict audit; writes BENCH_sentinel.json
//
// Flags tune the workload sizes; defaults regenerate the shapes of the
// paper on laptop-scale inputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xqindep/internal/experiments"
	"xqindep/internal/xmark"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "panel to regenerate: 3a, 3b, 3c, 3d or all")
		docs     = flag.Int("truth-docs", 3, "documents sampled for the ground truth (3b)")
		factor   = flag.Float64("truth-factor", 1.2, "scale factor of ground-truth documents")
		cFactors = flag.String("c-factors", "1,4,16", "comma-separated document scale factors for 3c")
		dNs      = flag.String("d-ns", "1,3,5,10,20", "schema sizes n for 3d")
		dMs      = flag.String("d-ms", "1,5,10", "expression sizes m for 3d")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per analysis run (0 = none; overruns count as dependent)")
		maxNodes = flag.Int("max-nodes", 0, "CDAG node budget per analysis run (0 = default)")

		compiledBench = flag.Bool("compiled-bench", false, "benchmark the dense compiled-schema engine against the map reference and exit")
		benchPair     = flag.String("bench-pair", "A3:UB2", "view:update pair for -compiled-bench")
		benchOut      = flag.String("bench-out", "BENCH_compiledschema.json", "output file for -compiled-bench ('' = stdout table only)")

		planBench = flag.Bool("plan-bench", false, "benchmark warm prepared-plan serving against cold analysis over the full XMark matrix and exit")
		planCold  = flag.Int("plan-cold-passes", 3, "cold matrix passes (fresh plan cache each) for -plan-bench")
		planWarm  = flag.Int("plan-warm-passes", 19, "timed warm matrix passes (one shared cache) for -plan-bench")
		planOut   = flag.String("plan-out", "BENCH_plancache.json", "output file for -plan-bench ('' = stdout table only)")

		auditBench = flag.Bool("audit-bench", false, "benchmark request-path overhead of the runtime verdict audit and exit")
		auditPair  = flag.String("audit-pair", "q1:UB2", "view:update pair for -audit-bench (an independent pair, so audits actually fire)")
		auditRate  = flag.Float64("audit-rate", 0.01, "sample rate for -audit-bench")
		auditReqs  = flag.Int("audit-requests", 2000, "requests per arm for -audit-bench")
		auditOut   = flag.String("audit-out", "BENCH_sentinel.json", "output file for -audit-bench ('' = stdout table only)")
	)
	flag.Parse()
	experiments.AnalysisTimeout = time.Duration(*timeout)
	experiments.AnalysisLimits.MaxNodes = *maxNodes

	if *compiledBench {
		runCompiledBench(*benchPair, *benchOut)
		return
	}
	if *planBench {
		runPlanBench(*planCold, *planWarm, *planOut)
		return
	}
	if *auditBench {
		runAuditBench(*auditPair, *auditRate, *auditReqs, *auditOut)
		return
	}

	run3a := *fig == "3a" || *fig == "all"
	run3b := *fig == "3b" || *fig == "all"
	run3c := *fig == "3c" || *fig == "all"
	run3d := *fig == "3d" || *fig == "all"
	if !(run3a || run3b || run3c || run3d) {
		fmt.Fprintf(os.Stderr, "xqbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if run3a {
		fmt.Println(experiments.RenderFigure3a(experiments.Figure3a()))
	}
	if run3b {
		truth, err := xmark.GroundTruth(xmark.SampleDocuments(*docs, *factor))
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqbench:", err)
			os.Exit(1)
		}
		rows, err := experiments.Figure3b(truth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqbench: SOUNDNESS VIOLATION:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFigure3b(rows))
	}
	if run3c {
		fmt.Println(experiments.RenderFigure3c(experiments.Figure3c(parseFloats(*cFactors))))
	}
	if run3d {
		fmt.Println(experiments.RenderFigure3d(experiments.Figure3d(parseInts(*dNs), parseInts(*dMs))))
	}
}

// runPlanBench measures warm prepared-plan serving against cold
// analysis over the XMark matrix and writes the comparison as JSON —
// the committed BENCH_plancache.json is regenerated this way.
func runPlanBench(coldPasses, warmPasses int, out string) {
	pb, err := experiments.MeasurePlanBench(coldPasses, warmPasses)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderPlanBench(pb))
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(pb, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runCompiledBench measures the dense engine against the map-based
// reference on one XMark pair and writes the comparison as JSON — the
// committed BENCH_compiledschema.json is regenerated this way.
func runCompiledBench(pair, out string) {
	name := strings.SplitN(pair, ":", 2)
	if len(name) != 2 {
		fmt.Fprintf(os.Stderr, "xqbench: -bench-pair must be view:update, got %q\n", pair)
		os.Exit(2)
	}
	cb, err := experiments.MeasureCompiledBench(name[0], name[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(2)
	}
	fmt.Print(experiments.RenderCompiledBench(cb))
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(cb, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

// runAuditBench measures request latency with and without the runtime
// verdict audit lane and writes the comparison as JSON — the committed
// BENCH_sentinel.json is regenerated this way.
func runAuditBench(pair string, rate float64, requests int, out string) {
	name := strings.SplitN(pair, ":", 2)
	if len(name) != 2 {
		fmt.Fprintf(os.Stderr, "xqbench: -bench-pair must be view:update, got %q\n", pair)
		os.Exit(2)
	}
	ab, err := experiments.MeasureAuditBench(name[0], name[1], rate, requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(2)
	}
	fmt.Print(experiments.RenderAuditBench(ab))
	if ab.Audits.Disagreements > 0 {
		fmt.Fprintln(os.Stderr, "xqbench: SOUNDNESS VIOLATION: audit disagreements on a fault-free run")
		os.Exit(1)
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(ab, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "xqbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: bad number %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
