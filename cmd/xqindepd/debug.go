package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
)

// serveDebug runs the opt-in debug listener (-debug-addr): the
// net/http/pprof profiling surface on its own mux and its own port, so
// profiling never shares a listener with the public API and the
// default-off posture costs the serving path nothing. A failed listen
// is reported and the daemon keeps serving — profiling is an aid, not
// a dependency.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "xqindepd: debug (pprof) on %s\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "xqindepd: debug listener:", err)
	}
}
