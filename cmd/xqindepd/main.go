// Command xqindepd serves the independence analysis as an always-on
// daemon: a bounded worker pool with admission control (load shedding
// under burst), per-schema circuit breaking, per-request resource
// budgets subdivided from a pool-wide limit, and graceful drain on
// SIGTERM/SIGINT.
//
// HTTP mode (default):
//
//	xqindepd -addr :8080
//	curl -s localhost:8080/analyze -d '{
//	  "schema": "bib <- book*\nbook <- title\ntitle <- #PCDATA",
//	  "query": "//title",
//	  "update": "for $x in //book return insert <author/> into $x"
//	}'
//
// Endpoints: POST /analyze (JSON in/out), GET /healthz (liveness),
// GET /readyz (readiness: 503 while draining), GET /statz (counters
// and latency digests), GET /metricz (Prometheus text exposition),
// GET /tracez (the -trace-ring slowest request traces as span trees),
// GET /incidentz (audit incidents and quarantine state). Verdicts
// answer 200 (degraded, breaker-served and quarantine-served verdicts
// included); 400 malformed input, 429 shed by admission control, 503
// draining. 429/503 responses carry a Retry-After hint.
//
// A request with "trace": true gets its own span tree back in the
// response's "trace" field, whether or not the ring is enabled. With
// -debug-addr the daemon additionally serves net/http/pprof on a
// separate listener (keep it off public interfaces).
//
// Repeated (schema, query, update) pairs are served from a bounded
// prepared-plan cache keyed on content fingerprints (size set by
// -plan-cache); /statz reports its hit ratio under "plan_cache" and
// responses carry "plan": "warm"/"cold" provenance.
//
// With -audit-rate > 0 the daemon samples Independent verdicts and
// re-derives them off the request path on independent machinery (the
// reference chain engine plus a dynamic-oracle replay); a disagreement
// is an unsoundness incident that quarantines the schema fingerprint —
// its verdicts degrade to the conservative "not independent" until
// clean retrials recover it. Incidents appear on /incidentz and, with
// -audit-spool, as a size-capped rotating JSONL trail.
//
// With -state-dir the containment state is durable: every quarantine
// transition is journaled (one fsynced record each) and incidents
// spool under the directory; a restarted daemon replays the journal
// before admitting work, so a fingerprint quarantined before a crash
// is still refused after it. The boot recovery summary goes to stderr
// and the live counters to /statz under "durability".
//
// Batch mode reads one JSON request per stdin line and writes one
// JSON response per stdout line, in order:
//
//	xqindepd -batch -schema auction.dtd < pairs.jsonl > verdicts.jsonl
//
// Lines may omit "schema" when -schema provides a default. Blank
// lines and #-comments are skipped.
//
// Shutdown: on SIGTERM or SIGINT the daemon stops admitting
// (/readyz turns 503), lets in-flight analyses finish for -drain,
// then cancels the rest; every analysis observes cancellation
// cooperatively, so shutdown always completes promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xqindep"
	"xqindep/internal/statefile"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		batch     = flag.Bool("batch", false, "read requests from stdin (one JSON object per line) instead of serving HTTP")
		schemaF   = flag.String("schema", "", "schema file used as the default for batch lines without one")
		workers   = flag.Int("workers", 0, "analysis pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 2x workers); overflow is shed with HTTP 429")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request analysis wall-clock budget")
		drain     = flag.Duration("drain", 10*time.Second, "graceful drain deadline on shutdown")
		maxNodes  = flag.Int("max-nodes", 0, "pool-wide CDAG node budget, subdivided across workers (0 = default)")
		maxChains = flag.Int("max-chains", 0, "pool-wide explicit chain-set budget, subdivided across workers (0 = default)")
		maxK      = flag.Int("max-k", 0, "largest accepted multiplicity k (0 = default)")
		noFall    = flag.Bool("no-fallback", false, "fail on budget overrun instead of degrading to a weaker method")
		brkN      = flag.Int("breaker-threshold", 5, "consecutive budget blowups on one schema that open its circuit breaker (-1 disables)")
		brkOff    = flag.Duration("breaker-backoff", time.Second, "initial circuit-breaker open duration (doubles per re-open)")
		brkMax    = flag.Duration("breaker-max-backoff", 60*time.Second, "circuit-breaker backoff cap")
		brkJitter = flag.Float64("breaker-jitter", 0.2, "breaker backoff jitter fraction in [0,1)")
		brkSeed   = flag.Int64("breaker-seed", 0, "breaker jitter seed (0 = fixed default)")

		auditRate   = flag.Float64("audit-rate", 0, "fraction of Independent verdicts re-derived off the request path by the audit lane (0 disables, 1 audits all)")
		auditBudget = flag.Int("audit-budget", 0, "node/chain budget per audit re-derivation (0 = audit-lane defaults)")
		quarAfter   = flag.Int("quarantine-after", 1, "audit disagreements on one schema fingerprint that quarantine it")
		auditSeed   = flag.Int64("audit-seed", 0, "audit sampling and oracle-document seed (0 = fixed default)")
		auditSpool  = flag.String("audit-spool", "", "append audit incidents as JSON lines to this file (size-capped; rotated copies kept alongside)")
		spoolMax    = flag.Int64("audit-spool-max", 0, "rotate -audit-spool after this many bytes (0 = 8 MiB); 4 rotated files are kept")
		stateDir    = flag.String("state-dir", "", "durable state directory: quarantine decisions and audit incidents survive restarts (empty disables)")
		memMark     = flag.Uint64("mem-watermark", 0, "shed admissions while heap usage exceeds this many bytes (0 disables)")
		planCache   = flag.Int("plan-cache", 0, "resident prepared-plan bound; repeated (schema, query, update) pairs reuse the compiled analysis (0 = 4096, negative disables reuse)")
		traceRing   = flag.Int("trace-ring", 64, "retain the N slowest request traces for GET /tracez (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "opt-in debug listener serving net/http/pprof (keep it off public interfaces; empty disables)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: xqindepd [-addr :8080 | -batch] [flags]")
		flag.PrintDefaults()
		return 2
	}

	var defaultSchema string
	if *schemaF != "" {
		b, err := os.ReadFile(*schemaF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindepd:", err)
			return 2
		}
		defaultSchema = string(b)
	}

	// The incident spool is a rotating, size-capped JSONL chain
	// (<file>, <file>.1, ...); the audit lane's drain flushes it, so a
	// SIGTERM never strands buffered incidents.
	var spool *statefile.Spool
	if *auditSpool != "" {
		dir, base := filepath.Split(filepath.Clean(*auditSpool))
		if dir == "" {
			dir = "."
		}
		sp, err := statefile.OpenSpool(statefile.OS(), filepath.Clean(dir), base, *spoolMax, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindepd:", err)
			return 2
		}
		spool = sp
		defer spool.Close()
	}

	opts := xqindep.PoolOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		Limits:         xqindep.Limits{MaxNodes: *maxNodes, MaxChains: *maxChains, MaxK: *maxK},
		RequestTimeout: *timeout,
		NoFallback:     *noFall,
		DrainTimeout:   *drain,

		BreakerThreshold:  *brkN,
		BreakerBackoff:    *brkOff,
		BreakerMaxBackoff: *brkMax,
		BreakerJitter:     *brkJitter,
		BreakerSeed:       *brkSeed,

		AuditRate:       *auditRate,
		AuditBudget:     *auditBudget,
		QuarantineAfter: *quarAfter,
		AuditSeed:       *auditSeed,
		MemoryWatermark: *memMark,
		StateDir:        *stateDir,
		PlanCacheSize:   *planCache,
		TraceRing:       *traceRing,
	}
	if spool != nil {
		opts.AuditSpool = spool
	}
	pool := xqindep.NewPool(opts)

	if *stateDir != "" {
		st, err := pool.StateStatus()
		if err != nil {
			// A daemon asked for durability must not silently serve
			// without it.
			fmt.Fprintln(os.Stderr, "xqindepd:", err)
			pool.Close()
			return 2
		}
		fmt.Fprintf(os.Stderr,
			"xqindepd: state %s: restored %d quarantined fingerprint(s) (replayed %d journal record(s), snapshot=%v)\n",
			st.Dir, st.RestoredFingerprints, st.RecoveredRecords, st.SnapshotLoaded)
		if st.DiscardedRecords > 0 || st.SnapshotCorrupt || st.MalformedRecords > 0 {
			fmt.Fprintf(os.Stderr,
				"xqindepd: state %s: recovery discarded a torn tail (records=%d bytes=%d malformed=%d snapshot_corrupt=%v)\n",
				st.Dir, st.DiscardedRecords, st.DiscardedBytes, st.MalformedRecords, st.SnapshotCorrupt)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	if *batch {
		err := pool.RunBatch(ctx, os.Stdin, os.Stdout, defaultSchema)
		cerr := pool.Close()
		if err != nil && err != context.Canceled {
			fmt.Fprintln(os.Stderr, "xqindepd:", err)
			return 1
		}
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "xqindepd: drain:", cerr)
			return 1
		}
		return 0
	}

	fmt.Fprintf(os.Stderr, "xqindepd: serving on %s (workers=%d queue=%d)\n",
		*addr, *workers, *queue)
	if err := xqindep.Serve(ctx, *addr, pool, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "xqindepd:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "xqindepd: drained, bye")
	return 0
}
