// Command xmarkgen emits a pseudo-random XMark-like auction document,
// the reproduction stand-in for the original xmlgen generator.
//
// Usage:
//
//	xmarkgen [-factor F] [-seed N] [-o FILE] [-validate]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xqindep/internal/xmark"
)

func main() {
	var (
		factor   = flag.Float64("factor", 1.0, "scale factor (1.0 ≈ hundreds of kilobytes)")
		seed     = flag.Int64("seed", 1, "generator seed")
		outFile  = flag.String("o", "", "output file (default stdout)")
		validate = flag.Bool("validate", false, "validate the document against the XMark DTD before writing")
	)
	flag.Parse()

	tree := xmark.GenerateDocument(*seed, *factor)
	if *validate {
		if err := xmark.Schema().Validate(tree); err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen: generated document invalid:", err)
			os.Exit(1)
		}
	}
	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, tree.Store.String(tree.Root))
}
