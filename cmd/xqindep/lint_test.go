package main

import (
	"strings"
	"testing"

	"xqindep"
)

const lintSchema = "bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- #PCDATA\nprice <- #PCDATA"

func evidence(t *testing.T, q, u string) xqindep.ChainEvidence {
	t.Helper()
	s, err := xqindep.ParseSchema(lintSchema)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := xqindep.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := xqindep.ParseUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := s.ExplainChains(qa, ua)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestLintWarnsOnTypoedQuery(t *testing.T) {
	// "titel" names no type of the schema: zero chains, vacuously
	// independent of everything — exactly the typo -lint exists for.
	ev := evidence(t, "//titel", "delete //price")
	warns := lintWarnings(ev)
	if len(warns) != 1 || !strings.Contains(warns[0], "query matches no chains") {
		t.Fatalf("want one query warning, got %q", warns)
	}
}

func TestLintWarnsOnTypoedUpdate(t *testing.T) {
	ev := evidence(t, "//title", "delete //prize")
	warns := lintWarnings(ev)
	if len(warns) != 1 || !strings.Contains(warns[0], "update matches no chains") {
		t.Fatalf("want one update warning, got %q", warns)
	}
}

func TestLintQuietOnRealPair(t *testing.T) {
	if warns := lintWarnings(evidence(t, "//title", "delete //price")); len(warns) != 0 {
		t.Fatalf("clean pair must not warn: %q", warns)
	}
}
