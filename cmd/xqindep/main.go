// Command xqindep decides XML query-update independence for a schema.
//
// Usage:
//
//	xqindep -schema FILE -query QUERY -update UPDATE [-method M] [-explain]
//
// The schema file may use compact ("a <- (b | c)*") or classic
// <!ELEMENT> notation. Methods: chains (default, the CDAG engine),
// chains-exact, types, paths, or all.
//
// -lint warns when the query or the update matches zero chains under
// the schema: such a pair is trivially independent, which almost
// always means a typo in a path step rather than a real workload.
//
// Resource limits: -timeout bounds wall-clock time, -max-nodes,
// -max-chains and -max-k bound the analysis state. When a limit is
// hit the analysis degrades to a weaker sound method (down to the
// conservative "possibly DEPENDENT"), unless -no-fallback is given,
// in which case the overrun is an error.
//
// -show-plan reports whether the verdict came from a warm prepared
// plan or a cold build, plus the content fingerprints the plan cache
// keys on — sugared variants of the same logical pair share them.
//
// -trace prints the per-phase span tree of the analysis after the
// verdict: ladder rungs as spans, the engine's fault-point boundaries
// (plan pipeline stages, inference, conflict check) as phase marks
// with the budget's node/chain consumption at each. It is the one-shot
// form of the daemon's /tracez.
//
// -audit re-derives an Independent verdict on independent machinery —
// the reference chain engine plus a dynamic-oracle replay on generated
// documents — exactly as the daemon's runtime audit lane would. It is
// the one-shot form of xqindepd's -audit-rate: use it to vet a verdict
// before acting on it, or to reproduce a daemon incident offline.
//
// Exit status: 0 when independence is detected, 1 when it is not,
// 2 on usage or parse errors, 3 when the verdict is degraded (a
// budget was exceeded and a weaker method answered), 4 when -audit
// refutes an Independent verdict (an unsoundness incident: the fast
// engine and the audit machinery disagree).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xqindep"
	"xqindep/internal/core"
	"xqindep/internal/obs"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
	"xqindep/internal/xquery"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		schemaFile  = flag.String("schema", "", "schema file (compact or <!ELEMENT> notation)")
		queryText   = flag.String("query", "", "query expression")
		updateText  = flag.String("update", "", "update expression")
		update2Text = flag.String("update2", "", "second update: check commutativity instead of independence")
		methodName  = flag.String("method", "chains", "analysis: chains, chains-exact, types, paths, or all")
		explain     = flag.Bool("explain", false, "print the inferred chains")
		preserveU   = flag.Bool("preserve", false, "also check whether the update preserves the schema")
		timeout     = flag.Duration("timeout", 0, "analysis wall-clock budget (0 = none)")
		maxNodes    = flag.Int("max-nodes", 0, "CDAG node budget (0 = default)")
		maxChains   = flag.Int("max-chains", 0, "explicit chain-set budget (0 = default)")
		maxK        = flag.Int("max-k", 0, "largest accepted multiplicity k (0 = default)")
		noFallback  = flag.Bool("no-fallback", false, "fail on budget overrun instead of degrading to a weaker method")
		lint        = flag.Bool("lint", false, "warn when the query or update matches zero chains under the schema (usually a path typo)")
		audit       = flag.Bool("audit", false, "re-derive an Independent verdict on the audit machinery (shadow engine + dynamic oracle); exit 4 on disagreement")
		showPlan    = flag.Bool("show-plan", false, "print prepared-plan provenance (warm/cold) and the fingerprints the plan cache keys on")
		traceF      = flag.Bool("trace", false, "print the per-phase span trace of the analysis (ladder rungs, plan pipeline stages, engine phase marks)")
	)
	flag.Parse()
	if *schemaFile == "" || *updateText == "" || (*queryText == "" && *update2Text == "") {
		fmt.Fprintln(os.Stderr, "usage: xqindep -schema FILE -update UPDATE (-query QUERY | -update2 UPDATE) [-method M] [-explain] [-preserve]")
		flag.PrintDefaults()
		return 2
	}
	schemaBytes, err := os.ReadFile(*schemaFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep:", err)
		return 2
	}
	schema, err := xqindep.ParseSchema(string(schemaBytes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep:", err)
		return 2
	}
	u, err := xqindep.ParseUpdate(*updateText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep: update:", err)
		return 2
	}
	if *preserveU {
		ok, reasons := schema.PreservesSchema(u)
		if ok {
			fmt.Println("schema-preservation: GUARANTEED")
		} else {
			fmt.Println("schema-preservation: cannot be guaranteed")
			for _, r := range reasons {
				fmt.Printf("  %s\n", r)
			}
		}
	}
	if *update2Text != "" {
		u2, err := xqindep.ParseUpdate(*update2Text)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindep: update2:", err)
			return 2
		}
		ok, err := schema.Commute(u, u2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindep:", err)
			return 2
		}
		if ok {
			fmt.Println("commutativity: COMMUTE")
			return 0
		}
		fmt.Println("commutativity: possibly order-dependent")
		return 1
	}
	q, err := xqindep.ParseQuery(*queryText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep: query:", err)
		return 2
	}

	var methods []xqindep.Method
	if *methodName == "all" {
		methods = []xqindep.Method{xqindep.Chains, xqindep.ChainsExact, xqindep.Types, xqindep.Paths}
	} else {
		m, err := core.ParseMethod(*methodName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindep:", err)
			return 2
		}
		methods = []xqindep.Method{m}
	}

	opts := xqindep.Options{
		Limits: xqindep.Limits{
			MaxNodes:  *maxNodes,
			MaxChains: *maxChains,
			MaxK:      *maxK,
		},
		NoFallback: *noFallback,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tr *obs.Trace
	if *traceF {
		tr = obs.NewTrace(time.Now)
		ctx = obs.NewContext(ctx, tr)
	}

	independent := true
	degraded := false
	for _, m := range methods {
		rep, err := schema.AnalyzeContext(ctx, q, u, m, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindep:", err)
			return 2
		}
		verdict := "INDEPENDENT"
		if !rep.Independent {
			verdict = "possibly DEPENDENT"
		}
		fmt.Printf("%-12s  %-18s", rep.Method, verdict)
		if rep.K > 0 {
			fmt.Printf("  k=%d", rep.K)
		}
		fmt.Printf("  (%s)", rep.Elapsed.Round(10*time.Microsecond))
		if rep.Degraded {
			fmt.Printf("  [degraded from %s: %v]", m, rep.Err)
		}
		if *showPlan && rep.Plan != "" {
			fmt.Printf("  plan=%s", rep.Plan)
		}
		fmt.Println()
		for _, w := range rep.Witnesses {
			fmt.Printf("    conflict: %s\n", w)
		}
		if m == methods[0] {
			independent = rep.Independent
			degraded = rep.Degraded
		}
	}
	if *showPlan {
		fmt.Printf("\nplan cache key:\n  schema  %s\n  query   %s\n  update  %s\n  pair    %s\n",
			schema.Fingerprint(), q.Fingerprint(), u.Fingerprint(), xqindep.PairFingerprint(q, u))
	}
	if tr != nil {
		fmt.Println("\ntrace:")
		obs.WriteTree(os.Stdout, tr.Finish())
	}
	if *explain || *lint {
		ev, err := schema.ExplainChains(q, u)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xqindep:", err)
			return 2
		}
		if *explain {
			fmt.Printf("\nchains (k=%d):\n", ev.K)
			printChains("return", ev.Return)
			printChains("used", ev.Used)
			printChains("element", ev.Element)
			printChains("update", ev.Update)
		}
		if *lint {
			for _, w := range lintWarnings(ev) {
				fmt.Fprintln(os.Stderr, "xqindep:", w)
			}
		}
	}
	if *audit && independent {
		if code := runAudit(schema, *queryText, *updateText); code != 0 {
			return code
		}
	}
	if degraded {
		return 3
	}
	if independent {
		return 0
	}
	return 1
}

// runAudit is the one-shot form of the daemon's audit lane: feed the
// Independent verdict through a sample-rate-1 auditor and report the
// outcome. A disagreement means the fast engine's proof did not
// survive re-derivation on independent machinery.
func runAudit(schema *xqindep.Schema, queryText, updateText string) int {
	q, err := xquery.ParseQuery(queryText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep: audit:", err)
		return 2
	}
	u, err := xquery.ParseUpdate(updateText)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqindep: audit:", err)
		return 2
	}
	aud := sentinel.New(sentinel.Config{
		SampleRate: 1,
		Quarantine: quarantine.NewRegistry(quarantine.Config{}),
	})
	defer aud.Close()
	aud.Observe(sentinel.Observation{
		D:          schema.DTD(),
		Query:      q,
		Update:     u,
		QueryText:  queryText,
		UpdateText: updateText,
		// Deliberately unproven verdict: -audit feeds the sentinel a
		// fabricated Independent=true to demonstrate refutation.
		//xqvet:ignore verdictflow fabricated verdict exercises the sentinel refutation path on purpose
		Result: core.Result{Independent: true, Method: core.MethodChains},
	})
	aud.Flush()
	st := aud.Stats()
	switch {
	case st.Disagreements > 0:
		fmt.Println("audit: REFUTED — the Independent verdict did not survive re-derivation")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, in := range aud.Incidents() {
			_ = enc.Encode(in)
		}
		return 4
	case st.Inconclusive > 0:
		fmt.Println("audit: inconclusive (audit budget exhausted; verdict unconfirmed)")
		return 0
	default:
		fmt.Println("audit: confirmed by shadow engine and dynamic oracle")
		return 0
	}
}

func printChains(label string, chains []string) {
	fmt.Printf("  %-8s", label)
	if len(chains) == 0 {
		fmt.Println("(none)")
		return
	}
	fmt.Println()
	for _, c := range chains {
		fmt.Printf("    %s\n", c)
	}
}
