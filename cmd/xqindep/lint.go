package main

import (
	"xqindep"
)

// lintWarnings flags the degenerate pairs the paper-side analogue of a
// dead-code warning catches: a query or update path that matches zero
// chains under the schema is trivially independent of everything —
// which in practice almost always means a typo in a step name, not a
// deliberately vacuous workload.
func lintWarnings(ev xqindep.ChainEvidence) []string {
	var warns []string
	if len(ev.Return) == 0 {
		warns = append(warns,
			"lint: query matches no chains under this schema — the INDEPENDENT verdict is vacuous; check the path for typos")
	}
	if len(ev.Update) == 0 {
		warns = append(warns,
			"lint: update matches no chains under this schema — it cannot modify any valid document; check the path for typos")
	}
	return warns
}
