// Command xqvet is the repository's static-analysis gate. It loads
// every package of the module and enforces the six project invariants
// (panicdiscipline, budgetpoints, verdictsites, ctxflow, clockinject)
// described in DESIGN.md §5.
//
// Usage:
//
//	xqvet [-dir module-root] [-checks list] [packages]
//
// The package arguments are accepted for familiarity ("xqvet ./...")
// but the tool always analyzes the whole module rooted at -dir: the
// invariants are module-global properties (call graphs, allowlists),
// not per-package ones.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xqindep/internal/vetcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("xqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all of "+
		strings.Join(vetcheck.CheckNames, ",")+")")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				names = append(names, c)
			}
		}
	}
	findings, err := vetcheck.Run(*dir, names, vetcheck.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "xqvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
