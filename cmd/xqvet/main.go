// Command xqvet is the repository's static-analysis gate. It loads
// every package of the module and enforces the nine project invariants
// (panicdiscipline, budgetpoints, verdictflow, lockdiscipline,
// frozenartifact, ctxflow, clockinject, compilecache, fsdiscipline)
// described in DESIGN.md §5 and §12.
//
// Usage:
//
//	xqvet [-dir module-root] [-checks list] [-json] [packages]
//
// The package arguments are accepted for familiarity ("xqvet ./...")
// but the tool always analyzes the whole module rooted at -dir: the
// invariants are module-global properties (call graphs, allowlists),
// not per-package ones.
//
// -json prints findings as a JSON array of {file,line,col,check,msg}
// objects (an empty array when clean), in the same stable (file, line,
// column, check, message) order as the text output, so CI can archive
// and diff them.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xqindep/internal/vetcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the stable wire shape of one finding.
type jsonFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xqvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all of "+
		strings.Join(vetcheck.CheckNames, ",")+")")
	asJSON := fs.Bool("json", false, "print findings as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				names = append(names, c)
			}
		}
	}
	findings, err := vetcheck.Run(*dir, names, vetcheck.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:  f.Pos.Filename,
				Line:  f.Pos.Line,
				Col:   f.Pos.Column,
				Check: f.Check,
				Msg:   f.Msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "xqvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
