package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

const mutDir = "../../internal/vetcheck/testdata/src/mut"

func TestJSONOutputSortedAndParseable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", mutDir, "-json"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (mut module is seeded with defects); stderr: %s", code, stderr.String())
	}
	var findings []struct {
		File  string `json:"file"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
		Check string `json:"check"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected findings from the seeded mut module")
	}
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	if !sorted {
		t.Errorf("findings not in (file, line, col, check, msg) order:\n%s", stdout.String())
	}
}

func TestUnknownCheckExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", mutDir, "-checks", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 for an unknown check", code)
	}
}
