module xqindep

go 1.22
