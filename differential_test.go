package xqindep

import (
	"context"
	"math/rand"
	"testing"

	"xqindep/internal/xmark"
)

// TestDifferentialXMarkUnderTightBudgets cross-checks the static
// analysis against the dynamic oracle on the XMark workload while
// *starving* it: random view/update pairs run with every method under
// randomized, deliberately tight budgets, so most runs degrade
// somewhere along the fallback ladder. The contract under test is the
// one the ladder promises — a verdict of independence is a proof no
// matter how degraded the method that produced it. Any sampled
// document on which the update observably changes the view refutes
// that proof and fails the test.
//
// Seeded and fully deterministic; DIFF_SEED below reproduces a run.
func TestDifferentialXMarkUnderTightBudgets(t *testing.T) {
	const diffSeed = 20260806
	pairsN := 120
	if testing.Short() {
		pairsN = 30
	}

	s, err := ParseSchema(xmark.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	// A fixed document sample for the oracle. Depth is capped: the
	// XMark schema is recursive (parlist), and the oracle only needs
	// witnesses, not exhaustiveness.
	var docs []*Document
	for seed := int64(1); seed <= 12; seed++ {
		d, err := s.Generate(seed, 0.4, 8)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}

	views := xmark.Views()
	updates := xmark.Updates()
	methods := []Method{Chains, ChainsExact, Types, Paths}

	// Oracle verdicts are cached per (view, update): the expensive part
	// is evaluating on every sampled document.
	type vu struct{ v, u int }
	oracle := map[vu]bool{} // true = some document witnesses dependence

	rng := rand.New(rand.NewSource(diffSeed))
	degraded, independents, refutable := 0, 0, 0
	for i := 0; i < pairsN; i++ {
		vi, ui := rng.Intn(len(views)), rng.Intn(len(updates))
		q, err := ParseQuery(views[vi].Text)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ParseUpdate(updates[ui].Text)
		if err != nil {
			t.Fatal(err)
		}
		lim := Limits{
			MaxNodes:  1 << (3 + rng.Intn(11)),
			MaxChains: 1 << (2 + rng.Intn(9)),
			MaxK:      1 + rng.Intn(6),
		}
		m := methods[rng.Intn(len(methods))]

		rep, err := s.AnalyzeContext(context.Background(), q, u, m, Options{Limits: lim})
		if err != nil {
			t.Fatalf("pair %d (%s, %s) method %v limits %+v: %v",
				i, views[vi].Name, updates[ui].Name, m, lim, err)
		}
		if rep.Degraded {
			degraded++
		}
		if !rep.Independent {
			continue // "not independent" is always safe; nothing to check
		}
		independents++

		dep, ok := oracle[vu{vi, ui}]
		if !ok {
			dep = false
			for _, doc := range docs {
				ind, err := IndependentOn(doc.Copy(), q, u)
				if err != nil {
					// The update may be inapplicable on this document
					// (e.g. a replace with no target); not a witness.
					continue
				}
				if !ind {
					dep = true
					break
				}
			}
			oracle[vu{vi, ui}] = dep
		}
		if dep {
			refutable++
			t.Errorf("UNSOUND: (%s, %s) verdict independent (method %v, degraded %v, fallback %v, limits %+v) but a sampled document witnesses dependence",
				views[vi].Name, updates[ui].Name, rep.Method, rep.Degraded, rep.FallbackChain, lim)
		}
	}
	t.Logf("differential: %d pairs, %d degraded, %d independent verdicts, %d refuted",
		pairsN, degraded, independents, refutable)
	// The run must actually exercise both the ladder and the oracle.
	if degraded == 0 {
		t.Error("no run degraded: budgets not tight enough to test the ladder")
	}
	if independents == 0 {
		t.Error("no independent verdicts: soundness check was vacuous")
	}
}
