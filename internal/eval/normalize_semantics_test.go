package eval

import (
	"math/rand"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// TestNormalizePreservesSemantics: the FLWR un-nesting used by the
// CDAG engine must not change evaluation results (order included) on
// any document.
func TestNormalizePreservesSemantics(t *testing.T) {
	d := dtd.MustParse(`
doc <- (a | b)*
a <- (c | d)*
b <- c?
c <- #PCDATA
d <- ()
`)
	queries := []string{
		"//a//c",
		"//c/..",
		"//c/ancestor::a/d",
		"for $x in //a return for $y in $x/c return $y",
		"for $x in //a return <w>{$x/c}</w>",
		"for $x in //node() return if ($x/d) then $x/c else ()",
		"//b/following-sibling::a//d",
	}
	updates := []string{
		"for $x in //a return for $y in $x/c return delete $y",
		"for $x in //b return insert <c>n</c> into $x",
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		tree, err := d.GenerateTree(rng, 0.6, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := xquery.MustParseQuery(qs)
			nq := xquery.Normalize(q)
			s1, r1, err1 := QueryTree(tree, q)
			s2, r2, err2 := QueryTree(tree, nq)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: error mismatch %v vs %v", qs, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !xmltree.SequencesEquivalent(s1, r1, s2, r2) {
				t.Errorf("normalization changed the result of %q\noriginal: %s\nnormalized: %s",
					qs, q, nq)
			}
		}
		for _, us := range updates {
			u := xquery.MustParseUpdate(us)
			nu := xquery.NormalizeUpdate(u)
			a := applyCopy(tree, u)
			b := applyCopy(tree, nu)
			if (a == nil) != (b == nil) {
				t.Fatalf("%q: runtime error mismatch", us)
			}
			if a == nil {
				continue
			}
			if !xmltree.ValueEquivalent(a.Store, a.Root, b.Store, b.Root) {
				t.Errorf("normalization changed the effect of %q", us)
			}
		}
	}
}

func applyCopy(tree xmltree.Tree, u xquery.Update) *xmltree.Tree {
	s := xmltree.NewStore()
	root := s.Copy(tree.Store, tree.Root)
	if err := Update(s, RootEnv(root), u); err != nil {
		return nil
	}
	out := xmltree.NewTree(s, root)
	return &out
}
