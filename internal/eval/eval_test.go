package eval

import (
	"strings"
	"testing"

	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// renderSeq renders a result sequence as XML fragments joined by ";".
func renderSeq(s *xmltree.Store, locs []xmltree.Loc) string {
	parts := make([]string, len(locs))
	for i, l := range locs {
		parts[i] = s.String(l)
	}
	return strings.Join(parts, ";")
}

// runQuery evaluates the query text against the document text.
func runQuery(t *testing.T, doc, query string) string {
	t.Helper()
	tr := xmltree.MustParse(doc)
	q := xquery.MustParseQuery(query)
	s, locs, err := QueryTree(tr, q)
	if err != nil {
		t.Fatalf("Query(%q): %v", query, err)
	}
	return renderSeq(s, locs)
}

func TestQueryEvaluation(t *testing.T) {
	const doc = "<doc><a><c>1</c></a><a><c>2</c></a><b><c>3</c></b><a><c/></a></doc>"
	cases := []struct {
		query string
		want  string
	}{
		{"()", ""},
		{`"hi"`, "hi"},
		{"/doc", doc},
		{"/nosuch", ""},
		{"//b", "<b><c>3</c></b>"},
		{"//c", "<c>1</c>;<c>2</c>;<c>3</c>;<c/>"},
		{"//a//c", "<c>1</c>;<c>2</c>;<c/>"},
		{"//b//c", "<c>3</c>"},
		{"/doc/a", "<a><c>1</c></a>;<a><c>2</c></a>;<a><c/></a>"},
		{"/doc/a/c/text()", "1;2"},
		{"//c/..", "<a><c>1</c></a>;<a><c>2</c></a>;<b><c>3</c></b>;<a><c/></a>"},
		// Paths are encoded as nested for-loops (the paper's encoding),
		// so there is no whole-path deduplication: each of the four c
		// bindings contributes its ancestor.
		{"//c/ancestor::doc", doc + ";" + doc + ";" + doc + ";" + doc},
		{"//b/preceding-sibling::a", "<a><c>1</c></a>;<a><c>2</c></a>"},
		{"//b/following-sibling::a", "<a><c/></a>"},
		{"//b/following-sibling::node()", "<a><c/></a>"},
		{"/doc/*", "<a><c>1</c></a>;<a><c>2</c></a>;<b><c>3</c></b>;<a><c/></a>"},
		{"//a[c/text()]", "<a><c>1</c></a>;<a><c>2</c></a>"},
		{"for $x in //a return $x/c", "<c>1</c>;<c>2</c>;<c/>"},
		{"let $x := //a return ($x, $x)", "<a><c>1</c></a>;<a><c>2</c></a>;<a><c/></a>;<a><c>1</c></a>;<a><c>2</c></a>;<a><c/></a>"},
		{"if (//b) then //b/c else ()", "<c>3</c>"},
		{"if (//zz) then //b/c else //a/c", "<c>1</c>;<c>2</c>;<c/>"},
		{"<r>{//b/c}</r>", "<r><c>3</c></r>"},
		{"<r><s/>x</r>", "<r><s/>x</r>"},
		{"//a/c, //b/c", "<c>1</c>;<c>2</c>;<c/>;<c>3</c>"},
		{"/doc/descendant::c", "<c>1</c>;<c>2</c>;<c>3</c>;<c/>"},
		{"/doc/descendant-or-self::node()/self::b", "<b><c>3</c></b>"},
	}
	for _, c := range cases {
		if got := runQuery(t, doc, c.query); got != c.want {
			t.Errorf("query %q:\n got %q\nwant %q", c.query, got, c.want)
		}
	}
}

func TestQueryDocOrderAndDedup(t *testing.T) {
	// Steps sort and deduplicate; two paths to the same c nodes.
	got := runQuery(t, "<d><a><c/></a></d>", "let $x := (//a, //a) return $x/c")
	if got != "<c/>" {
		t.Errorf("step over duplicated context = %q", got)
	}
	// Sequences do NOT deduplicate.
	got2 := runQuery(t, "<d><a><c/></a></d>", "(//a/c, //a/c)")
	if got2 != "<c/>;<c/>" {
		t.Errorf("sequence dedup happened: %q", got2)
	}
}

func TestElementConstructionCopies(t *testing.T) {
	tr := xmltree.MustParse("<d><a>x</a></d>")
	q := xquery.MustParseQuery("<w>{/d/a}</w>")
	s, locs, err := QueryTree(tr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 1 {
		t.Fatalf("want 1 result, got %d", len(locs))
	}
	// Mutate the constructed copy: the document inside the store must
	// be unaffected.
	inner := s.Child(locs[0], 0)
	s.SetTag(inner, "MUT")
	doc2, err := Query(s, RootEnv(s.Root(s.Child(s.Root(inner), 0))), xquery.MustParseQuery("$root"))
	if err != nil {
		t.Fatal(err)
	}
	_ = doc2
	if strings.Contains(renderSeq(s, []xmltree.Loc{locs[0]}), "<a>") {
		t.Errorf("mutation did not apply to copy")
	}
}

func TestQueryErrors(t *testing.T) {
	tr := xmltree.MustParse("<d/>")
	if _, _, err := QueryTree(tr, xquery.Var{Name: "$zz"}); err == nil {
		t.Errorf("unbound variable should error")
	}
	if _, _, err := QueryTree(tr, xquery.Step{Var: "$zz", Axis: xquery.Child, Test: xquery.AnyNode()}); err == nil {
		t.Errorf("unbound step variable should error")
	}
}

// runUpdate applies the update text to the document and returns the
// re-serialised document.
func runUpdate(t *testing.T, doc, update string) string {
	t.Helper()
	tr := xmltree.MustParse(doc)
	u := xquery.MustParseUpdate(update)
	out, err := UpdateTree(tr, u)
	if err != nil {
		t.Fatalf("Update(%q): %v", update, err)
	}
	return out.Store.String(out.Root)
}

func TestUpdateEvaluation(t *testing.T) {
	const doc = "<doc><a><c>1</c></a><b><c>2</c></b></doc>"
	cases := []struct {
		update string
		want   string
	}{
		{"()", doc},
		{"delete //c", "<doc><a/><b/></doc>"},
		{"delete //b//c", "<doc><a><c>1</c></a><b/></doc>"},
		{"delete //zz", doc},
		{"rename /doc/b as bb", "<doc><a><c>1</c></a><bb><c>2</c></bb></doc>"},
		{"replace /doc/b with <n/>", "<doc><a><c>1</c></a><n/></doc>"},
		{"insert <n/> into /doc/b", "<doc><a><c>1</c></a><b><c>2</c><n/></b></doc>"},
		{"insert <n/> as first into /doc/b", "<doc><a><c>1</c></a><b><n/><c>2</c></b></doc>"},
		{"insert <n/> as last into /doc/b", "<doc><a><c>1</c></a><b><c>2</c><n/></b></doc>"},
		{"insert <n/> before /doc/b", "<doc><a><c>1</c></a><n/><b><c>2</c></b></doc>"},
		{"insert <n/> after /doc/a", "<doc><a><c>1</c></a><n/><b><c>2</c></b></doc>"},
		{"for $x in //c return rename $x as k", "<doc><a><k>1</k></a><b><k>2</k></b></doc>"},
		{"if (//b) then delete //a else ()", "<doc><b><c>2</c></b></doc>"},
		{"if (//zz) then delete //a else delete //b", "<doc><a><c>1</c></a></doc>"},
		{"delete //a/c, insert <n/> into /doc/a", "<doc><a><n/></a><b><c>2</c></b></doc>"},
		{"let $x := /doc/a return insert <n/> into $x", "<doc><a><c>1</c><n/></a><b><c>2</c></b></doc>"},
		{"insert (<n/>, <m/>) into /doc/b", "<doc><a><c>1</c></a><b><c>2</c><n/><m/></b></doc>"},
		// Source can copy existing nodes.
		{"insert /doc/a/c into /doc/b", "<doc><a><c>1</c></a><b><c>2</c><c>1</c></b></doc>"},
		{"replace /doc/a/c with /doc/b/c", "<doc><a><c>2</c></a><b><c>2</c></b></doc>"},
	}
	for _, c := range cases {
		if got := runUpdate(t, doc, c.update); got != c.want {
			t.Errorf("update %q:\n got %s\nwant %s", c.update, got, c.want)
		}
	}
}

func TestUpdateSnapshotSemantics(t *testing.T) {
	// All target/source queries are evaluated against the original
	// store before any command applies: inserting <c/> into every a
	// must not revisit freshly inserted nodes.
	got := runUpdate(t, "<d><a/><a/></d>", "for $x in //a return insert <a/> into $x")
	if got != "<d><a><a/></a><a><a/></a></d>" {
		t.Errorf("snapshot semantics violated: %s", got)
	}
	// Deleting //a deletes both pre-existing a's (not the new ones).
	got2 := runUpdate(t, "<d><a><b/></a></d>", "insert <a/> into /d, delete //b")
	if got2 != "<d><a/><a/></d>" {
		t.Errorf("combined update wrong: %s", got2)
	}
}

func TestUpdateRuntimeErrors(t *testing.T) {
	tr := xmltree.MustParse("<d><a/><a/></d>")
	cases := []string{
		"insert <n/> into //a",  // two targets
		"rename //a as b",       // two targets
		"replace //a with <n/>", // two targets
		"insert <n/> into //zz", // zero targets
		"rename //a/text() as b",
	}
	for _, in := range cases {
		u := xquery.MustParseUpdate(in)
		s := xmltree.NewStore()
		root := s.Copy(tr.Store, tr.Root)
		if err := Update(s, RootEnv(root), u); err == nil {
			t.Errorf("update %q: want runtime error", in)
		}
	}
	// Text-node insert-into is an error; before/after a text node is fine.
	tr2 := xmltree.MustParse("<d><a>x</a></d>")
	if err := Update(tr2.Store, RootEnv(tr2.Root), xquery.MustParseUpdate("insert <n/> into /d/a/text()")); err == nil {
		t.Errorf("insert into text node should fail")
	}
	tr3 := xmltree.MustParse("<d><a>x</a></d>")
	if err := Update(tr3.Store, RootEnv(tr3.Root), xquery.MustParseUpdate("insert <n/> before /d/a/text()")); err != nil {
		t.Errorf("insert before text node: %v", err)
	}
	if got := tr3.Store.String(tr3.Root); got != "<d><a><n/>x</a></d>" {
		t.Errorf("insert before text = %s", got)
	}
}

func TestPendingListChecks(t *testing.T) {
	tr := xmltree.MustParse("<d><a/></d>")
	// Two renames of the same node conflict.
	u := xquery.MustParseUpdate("rename /d/a as x, rename /d/a as y")
	if err := Update(tr.Store, RootEnv(tr.Root), u); err == nil {
		t.Errorf("double rename should fail the sanity check")
	}
	tr2 := xmltree.MustParse("<d><a/></d>")
	u2 := xquery.MustParseUpdate("replace /d/a with <x/>, replace /d/a with <y/>")
	if err := Update(tr2.Store, RootEnv(tr2.Root), u2); err == nil {
		t.Errorf("double replace should fail the sanity check")
	}
	// Double delete of the same node is fine.
	tr3 := xmltree.MustParse("<d><a/></d>")
	u3 := xquery.MustParseUpdate("delete /d/a, delete /d/a")
	if err := Update(tr3.Store, RootEnv(tr3.Root), u3); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

func TestUpdateOnDetachedTargets(t *testing.T) {
	// Insert-after a node that a previous command deleted: the insert
	// is skipped because the target is detached by apply time
	// (deletes run last, but replace detaches earlier).
	got := runUpdate(t, "<d><a/><b/></d>", "replace /d/a with <x/>, insert <n/> after /d/a")
	// The insert happens first (inserts before replaces), so n lands
	// after a, then a is replaced by x.
	if got != "<d><x/><n/><b/></d>" {
		t.Errorf("got %s", got)
	}
}

func TestIndependenceOracle(t *testing.T) {
	doc := xmltree.MustParse("<doc><a><c>1</c></a><b><c>2</c></b></doc>")
	cases := []struct {
		q, u string
		want bool
	}{
		{"//a//c", "delete //b//c", true},      // the paper's q1/u1
		{"//a//c", "delete //a//c", false},     // obviously dependent
		{"//b", "delete //b", false},           // result node deleted
		{"//a", "delete //b//c", true},         // different subtrees
		{"//b/c", "rename /doc/b as z", false}, // path broken by rename
		{"//c", "insert <c/> into /doc/a", false},
		{"//b/c", "insert <c/> into /doc/a", true},
		{"/doc", "()", true},
		{"/doc", "insert <n/> into /doc/b", false}, // whole doc returned
	}
	for _, c := range cases {
		got, err := IndependentOn(doc, xquery.MustParseQuery(c.q), xquery.MustParseUpdate(c.u))
		if err != nil {
			t.Errorf("oracle(%q,%q): %v", c.q, c.u, err)
			continue
		}
		if got != c.want {
			t.Errorf("oracle(%q,%q) = %v, want %v", c.q, c.u, got, c.want)
		}
	}
	// The original tree must never be mutated by the oracle.
	if got := doc.Store.String(doc.Root); got != "<doc><a><c>1</c></a><b><c>2</c></b></doc>" {
		t.Errorf("oracle mutated its input: %s", got)
	}
}

func TestDependentOnAny(t *testing.T) {
	trees := []xmltree.Tree{
		xmltree.MustParse("<doc><a/></doc>"),
		xmltree.MustParse("<doc><a/><b><c/></b></doc>"),
	}
	q := xquery.MustParseQuery("//b/c")
	u := xquery.MustParseUpdate("delete //b")
	if got := DependentOnAny(trees, q, u); got != 1 {
		t.Errorf("DependentOnAny = %d, want 1 (second tree witnesses)", got)
	}
	u2 := xquery.MustParseUpdate("delete //zz")
	if got := DependentOnAny(trees, q, u2); got != -1 {
		t.Errorf("DependentOnAny = %d, want -1", got)
	}
	// A runtime error on one tree is skipped, the other still witnesses.
	u3 := xquery.MustParseUpdate("insert <z/> into //b, delete //c")
	if got := DependentOnAny(trees, q, u3); got != 1 {
		t.Errorf("DependentOnAny with partial errors = %d, want 1", got)
	}
}
