package eval

import (
	"fmt"

	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// QueryTree evaluates the quasi-closed query q against a fresh copy
// of t, returning the result roots and the store they live in; t is
// left untouched.
func QueryTree(t xmltree.Tree, q xquery.Query) (*xmltree.Store, []xmltree.Loc, error) {
	s := xmltree.NewStore()
	root := s.Copy(t.Store, t.Root)
	locs, err := Query(s, RootEnv(root), q)
	return s, locs, err
}

// IndependentOn checks Definition 2.4 on one store: it evaluates q,
// applies u, re-evaluates q, and reports whether the two results are
// value equivalent. The input tree is not modified (all work happens
// on copies). An error from any phase is returned verbatim — a
// runtime error (e.g. a multi-node insert target) means independence
// on this store cannot be judged.
func IndependentOn(t xmltree.Tree, q xquery.Query, u xquery.Update) (bool, error) {
	s1, before, err := QueryTree(t, q)
	if err != nil {
		return false, fmt.Errorf("first query evaluation: %w", err)
	}
	// Apply the update to a second copy, then re-evaluate.
	s2 := xmltree.NewStore()
	root2 := s2.Copy(t.Store, t.Root)
	if err := Update(s2, RootEnv(root2), u); err != nil {
		return false, fmt.Errorf("update evaluation: %w", err)
	}
	after, err := Query(s2, RootEnv(root2), q)
	if err != nil {
		return false, fmt.Errorf("second query evaluation: %w", err)
	}
	return xmltree.SequencesEquivalent(s1, before, s2, after), nil
}

// DependentOnAny reports whether some tree of the sample set
// witnesses dependence of q and u (a result change after the update).
// Trees on which the update raises a runtime error are skipped: per
// Definition 2.4 independence only quantifies over runs that succeed.
// The returned tree index identifies the first witness (-1 if none).
func DependentOnAny(trees []xmltree.Tree, q xquery.Query, u xquery.Update) int {
	for i, t := range trees {
		ok, err := IndependentOn(t, q, u)
		if err != nil {
			continue
		}
		if !ok {
			return i
		}
	}
	return -1
}
