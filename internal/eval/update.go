package eval

import (
	"fmt"

	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// CommandKind discriminates elementary update commands ι.
type CommandKind int

const (
	// CmdInsert is ins(L, pos, l).
	CmdInsert CommandKind = iota
	// CmdDelete is del(l).
	CmdDelete
	// CmdReplace is repl(l, L).
	CmdReplace
	// CmdRename is ren(l, a).
	CmdRename
)

// Command is an elementary update command of a pending list.
type Command struct {
	Kind   CommandKind
	Target xmltree.Loc      // l
	Source []xmltree.Loc    // L: roots of source elements (insert/replace)
	Pos    xquery.InsertPos // insert only
	Name   string           // rename only
}

func (c Command) String() string {
	switch c.Kind {
	case CmdInsert:
		return fmt.Sprintf("ins(%v, %s, %d)", c.Source, c.Pos, c.Target)
	case CmdDelete:
		return fmt.Sprintf("del(%d)", c.Target)
	case CmdReplace:
		return fmt.Sprintf("repl(%d, %v)", c.Target, c.Source)
	case CmdRename:
		return fmt.Sprintf("ren(%d, %s)", c.Target, c.Name)
	}
	return "?"
}

// PendingList is the update pending list w.
type PendingList []Command

// BuildPending evaluates the update u against the store and produces
// its pending list (phase i of the W3C semantics: σ,γ ⊨ u ⇒ σw,w).
// Embedded queries are evaluated against the current store; source
// sequences are copied at build time, so later mutations do not alias
// the input document.
func BuildPending(s *xmltree.Store, env Env, u xquery.Update) (PendingList, error) {
	switch n := u.(type) {
	case xquery.UEmpty:
		return nil, nil
	case xquery.USeq:
		l, err := BuildPending(s, env, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := BuildPending(s, env, n.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case xquery.UFor:
		seq, err := Query(s, env, n.In)
		if err != nil {
			return nil, err
		}
		var out PendingList
		for _, l := range seq {
			w, err := BuildPending(s, env.Bind(n.Var, []xmltree.Loc{l}), n.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, w...)
		}
		return out, nil
	case xquery.ULet:
		seq, err := Query(s, env, n.Bind)
		if err != nil {
			return nil, err
		}
		return BuildPending(s, env.Bind(n.Var, seq), n.Body)
	case xquery.UIf:
		cond, err := Query(s, env, n.Cond)
		if err != nil {
			return nil, err
		}
		if len(cond) > 0 {
			return BuildPending(s, env, n.Then)
		}
		return BuildPending(s, env, n.Else)
	case xquery.Delete:
		targets, err := Query(s, env, n.Target)
		if err != nil {
			return nil, err
		}
		var out PendingList
		for _, l := range targets {
			out = append(out, Command{Kind: CmdDelete, Target: l})
		}
		return out, nil
	case xquery.Rename:
		l, err := singleTarget(s, env, n.Target, "rename")
		if err != nil {
			return nil, err
		}
		if !s.IsElement(l) {
			return nil, fmt.Errorf("eval: rename target is a text node")
		}
		return PendingList{{Kind: CmdRename, Target: l, Name: n.As}}, nil
	case xquery.Insert:
		src, err := Query(s, env, n.Source)
		if err != nil {
			return nil, err
		}
		l, err := singleTarget(s, env, n.Target, "insert")
		if err != nil {
			return nil, err
		}
		if n.Pos.IsInto() && !s.IsElement(l) {
			return nil, fmt.Errorf("eval: insert into a text node")
		}
		return PendingList{{Kind: CmdInsert, Target: l, Source: copyAll(s, src), Pos: n.Pos}}, nil
	case xquery.Replace:
		l, err := singleTarget(s, env, n.Target, "replace")
		if err != nil {
			return nil, err
		}
		src, err := Query(s, env, n.Source)
		if err != nil {
			return nil, err
		}
		return PendingList{{Kind: CmdReplace, Target: l, Source: copyAll(s, src)}}, nil
	default:
		return nil, fmt.Errorf("eval: unknown update node %T", u)
	}
}

// singleTarget enforces the W3C rule that insert/replace/rename
// targets produce exactly one node.
func singleTarget(s *xmltree.Store, env Env, q xquery.Query, op string) (xmltree.Loc, error) {
	locs, err := Query(s, env, q)
	if err != nil {
		return xmltree.NilLoc, err
	}
	if len(locs) != 1 {
		return xmltree.NilLoc, fmt.Errorf("eval: %s target produced %d nodes, want exactly 1", op, len(locs))
	}
	return locs[0], nil
}

func copyAll(s *xmltree.Store, locs []xmltree.Loc) []xmltree.Loc {
	out := make([]xmltree.Loc, len(locs))
	for i, l := range locs {
		out[i] = s.Copy(s, l)
	}
	return out
}

// Check performs the W3C sanity checks on a pending list (phase ii):
// at most one rename and one replace per target node, and insert
// sources must be detached fresh nodes.
func (w PendingList) Check() error {
	renamed := make(map[xmltree.Loc]bool)
	replaced := make(map[xmltree.Loc]bool)
	for _, c := range w {
		switch c.Kind {
		case CmdRename:
			if renamed[c.Target] {
				return fmt.Errorf("eval: node %d renamed twice", c.Target)
			}
			renamed[c.Target] = true
		case CmdReplace:
			if replaced[c.Target] {
				return fmt.Errorf("eval: node %d replaced twice", c.Target)
			}
			replaced[c.Target] = true
		}
	}
	return nil
}

// Apply applies the pending list to the store (phase iii:
// σw ⊢ w ; σu). Commands are applied by kind — inserts, then
// replaces, then renames, then deletes — mirroring the W3C
// upd:applyUpdates ordering where deletions happen last. Commands
// whose target has become detached are skipped, as the detached
// subtree is no longer part of σu@lt.
func (w PendingList) Apply(s *xmltree.Store) error {
	for _, c := range w {
		if c.Kind == CmdInsert {
			if err := applyInsert(s, c); err != nil {
				return err
			}
		}
	}
	for _, c := range w {
		if c.Kind == CmdReplace {
			p := s.Parent(c.Target)
			if p == xmltree.NilLoc {
				continue
			}
			i := s.IndexInParent(c.Target)
			s.Detach(c.Target)
			s.InsertChildren(p, i, c.Source)
		}
	}
	for _, c := range w {
		if c.Kind == CmdRename {
			s.SetTag(c.Target, c.Name)
		}
	}
	for _, c := range w {
		if c.Kind == CmdDelete {
			s.Detach(c.Target)
		}
	}
	return nil
}

func applyInsert(s *xmltree.Store, c Command) error {
	switch c.Pos {
	case xquery.Into, xquery.IntoLast:
		s.InsertChildren(c.Target, s.ChildCount(c.Target), c.Source)
	case xquery.IntoFirst:
		s.InsertChildren(c.Target, 0, c.Source)
	case xquery.Before, xquery.After:
		p := s.Parent(c.Target)
		if p == xmltree.NilLoc {
			return nil // target detached; nothing to do
		}
		i := s.IndexInParent(c.Target)
		if c.Pos == xquery.After {
			i++
		}
		s.InsertChildren(p, i, c.Source)
	default:
		return fmt.Errorf("eval: unknown insert position %v", c.Pos)
	}
	return nil
}

// Update runs the three update phases against the store:
// σ,γ ⊨ u : σu. The store is mutated in place.
func Update(s *xmltree.Store, env Env, u xquery.Update) error {
	w, err := BuildPending(s, env, u)
	if err != nil {
		return err
	}
	if err := w.Check(); err != nil {
		return err
	}
	return w.Apply(s)
}

// UpdateTree applies u to the tree t with the root environment and
// returns u(t) — the same tree value, since stores mutate in place.
func UpdateTree(t xmltree.Tree, u xquery.Update) (xmltree.Tree, error) {
	if err := Update(t.Store, RootEnv(t.Root), u); err != nil {
		return xmltree.Tree{}, err
	}
	return t, nil
}
