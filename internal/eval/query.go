// Package eval implements the dynamic semantics of the paper's query
// and update fragments (Section 2): query evaluation
// σ,γ ⊨ q ⇒ σq,Lq, update pending list construction σ,γ ⊨ u ⇒ σw,w,
// UPL application σw ⊢ w ; σu, and the runtime independence oracle of
// Definition 2.4 used as ground truth by tests and benchmarks.
package eval

import (
	"fmt"

	"xqindep/internal/guard"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// Env is the variable environment γ, binding variables to location
// sequences.
type Env map[string][]xmltree.Loc

// Bind returns a copy of e with v bound to locs.
func (e Env) Bind(v string, locs []xmltree.Loc) Env {
	out := make(Env, len(e)+1)
	for k, val := range e {
		out[k] = val
	}
	out[v] = locs
	return out
}

// RootEnv is the quasi-closed environment γ = {x ↦ lt}.
func RootEnv(root xmltree.Loc) Env {
	return Env{xquery.RootVar: []xmltree.Loc{root}}
}

// Query evaluates q against the store: σ,γ ⊨ q ⇒ σq,Lq. The store is
// extended in place with nodes built by element constructors and
// string literals (it plays both σ and σq); the returned sequence
// holds the roots of the answer trees.
func Query(s *xmltree.Store, env Env, q xquery.Query) ([]xmltree.Loc, error) {
	switch n := q.(type) {
	case xquery.Empty:
		return nil, nil
	case xquery.Sequence:
		l, err := Query(s, env, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := Query(s, env, n.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case xquery.StringLit:
		return []xmltree.Loc{s.NewText(n.Value)}, nil
	case xquery.Var:
		locs, ok := env[n.Name]
		if !ok {
			return nil, fmt.Errorf("eval: unbound variable %s", n.Name)
		}
		return append([]xmltree.Loc(nil), locs...), nil
	case xquery.Step:
		ctx, ok := env[n.Var]
		if !ok {
			return nil, fmt.Errorf("eval: unbound variable %s", n.Var)
		}
		var out []xmltree.Loc
		for _, l := range ctx {
			out = append(out, axisNodes(s, l, n.Axis)...)
		}
		out = filterTest(s, out, n.Test)
		return s.SortDocOrder(out), nil
	case xquery.Element:
		content, err := Query(s, env, n.Content)
		if err != nil {
			return nil, err
		}
		el := s.NewElement(n.Tag)
		for _, c := range content {
			cp := s.Copy(s, c)
			s.AppendChild(el, cp)
		}
		return []xmltree.Loc{el}, nil
	case xquery.For:
		seq, err := Query(s, env, n.In)
		if err != nil {
			return nil, err
		}
		var out []xmltree.Loc
		for _, l := range seq {
			r, err := Query(s, env.Bind(n.Var, []xmltree.Loc{l}), n.Return)
			if err != nil {
				return nil, err
			}
			out = append(out, r...)
		}
		return out, nil
	case xquery.Let:
		seq, err := Query(s, env, n.Bind)
		if err != nil {
			return nil, err
		}
		return Query(s, env.Bind(n.Var, seq), n.Return)
	case xquery.If:
		cond, err := Query(s, env, n.Cond)
		if err != nil {
			return nil, err
		}
		if len(cond) > 0 {
			return Query(s, env, n.Then)
		}
		return Query(s, env, n.Else)
	default:
		return nil, fmt.Errorf("eval: unknown query node %T", q)
	}
}

// axisNodes returns the nodes reached from l along axis, in document
// order (ancestor axes are produced nearest-first and re-ordered by
// the caller's sort).
func axisNodes(s *xmltree.Store, l xmltree.Loc, axis xquery.Axis) []xmltree.Loc {
	switch axis {
	case xquery.Self:
		return []xmltree.Loc{l}
	case xquery.Child:
		return s.Children(l)
	case xquery.Descendant:
		return s.Descendants(l)
	case xquery.DescendantOrSelf:
		return append([]xmltree.Loc{l}, s.Descendants(l)...)
	case xquery.Parent:
		if p := s.Parent(l); p != xmltree.NilLoc {
			return []xmltree.Loc{p}
		}
		return nil
	case xquery.Ancestor:
		return s.Ancestors(l)
	case xquery.AncestorOrSelf:
		return append([]xmltree.Loc{l}, s.Ancestors(l)...)
	case xquery.PrecedingSibling:
		return s.PrecedingSiblings(l)
	case xquery.FollowingSibling:
		return s.FollowingSiblings(l)
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("eval: unknown axis %v", axis)})
	}
}

func filterTest(s *xmltree.Store, locs []xmltree.Loc, test xquery.NodeTest) []xmltree.Loc {
	out := locs[:0]
	for _, l := range locs {
		switch test.Kind {
		case xquery.NodeAny:
			out = append(out, l)
		case xquery.TextTest:
			if s.IsText(l) {
				out = append(out, l)
			}
		case xquery.TagTest:
			if s.IsElement(l) && s.Tag(l) == test.Tag {
				out = append(out, l)
			}
		case xquery.WildcardTest:
			if s.IsElement(l) {
				out = append(out, l)
			}
		}
	}
	return out
}
