package plan_test

import (
	"context"
	"errors"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/xquery"
)

var bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- #PCDATA
price <- #PCDATA
`)

func compiled(t *testing.T) *dtd.Compiled {
	t.Helper()
	c, err := dtd.Compile(bib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// prepare wraps plan.Prepare with the guard boundary a production
// caller (core.analyzeOnce) installs, so budget aborts surface as
// errors instead of panics.
func prepare(cache *plan.Cache, c *dtd.Compiled, qs, us string, lim guard.Limits) (ce *plan.CompiledExpr, warm bool, err error) {
	defer guard.Recover(&err)
	b := guard.New(context.Background(), lim)
	var perr error
	ce, warm, perr = plan.Prepare(cache, c, xquery.MustParseQuery(qs), xquery.MustParseUpdate(us), b)
	if err == nil {
		err = perr
	}
	return ce, warm, err
}

func TestPrepareColdThenWarm(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(16)

	ce1, warm, err := prepare(cache, c, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatalf("cold Prepare: %v", err)
	}
	if warm {
		t.Fatal("first Prepare reported warm")
	}
	if err := ce1.Verify(); err != nil {
		t.Fatalf("fresh plan fails Verify: %v", err)
	}
	if !ce1.Verdict().Independent {
		t.Fatal("//title vs delete //price should be independent")
	}

	// A sugared, whitespace-mangled variant of the same logical pair
	// must hit the same plan.
	ce2, warm, err := prepare(cache, c, "  /descendant-or-self::node()/child::title ", "delete   //price", guard.Limits{})
	if err != nil {
		t.Fatalf("warm Prepare: %v", err)
	}
	if !warm {
		t.Fatal("sugared variant missed the cache")
	}
	if ce2 != ce1 {
		t.Fatal("warm hit returned a different instance than the resident")
	}

	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Resident != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 resident", st)
	}
	if len(st.Schemas) != 1 || st.Schemas[0].Fingerprint != bib.Fingerprint() || st.Schemas[0].Plans != 1 {
		t.Fatalf("schema stats = %+v", st.Schemas)
	}
}

func TestFingerprintsDistinguishPairs(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(16)
	a, _, err := prepare(cache, c, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, warm, err := prepare(cache, c, "//title", "delete //author", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("distinct update hit the cache")
	}
	if a.PairFingerprint() == b.PairFingerprint() {
		t.Fatal("distinct pairs share a pair fingerprint")
	}
	if a.QueryFingerprint() != b.QueryFingerprint() {
		t.Fatal("same query got different query fingerprints")
	}
	if a.SchemaFingerprint() != bib.Fingerprint() {
		t.Fatalf("schema fingerprint %q, want %q", a.SchemaFingerprint(), bib.Fingerprint())
	}
}

func TestCorruptCloneFailsVerifyResidentIntact(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(16)
	ce, _, err := prepare(cache, c, "//title", "delete //title", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cc := ce.CorruptClone(3)
	if err := cc.Verify(); err == nil {
		t.Fatal("corrupted clone passes Verify")
	}
	if cc.Verdict().Independent == ce.Verdict().Independent {
		t.Fatal("corrupted clone did not flip the verdict")
	}
	if err := ce.Verify(); err != nil {
		t.Fatalf("original damaged by CorruptClone: %v", err)
	}
	for _, r := range cache.Residents() {
		if err := r.Verify(); err != nil {
			t.Fatalf("resident damaged by CorruptClone: %v", err)
		}
	}
}

func TestWarmHitRechecksMaxK(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(16)
	// Cold build under permissive limits: k = kq + ku = 2 + 2 (one
	// recursive axis and one tag occurrence per side).
	ce, _, err := prepare(cache, c, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ce.K() != 4 {
		t.Fatalf("k = %d, want 4", ce.K())
	}
	// The same pair under a stingier request must degrade even though
	// the plan is resident: admission is per-request.
	_, _, err = prepare(cache, c, "//title", "delete //price", guard.Limits{MaxK: 3})
	if err == nil {
		t.Fatal("warm hit ignored the request's MaxK")
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestColdBuildRespectsMaxK(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(16)
	_, _, err := prepare(cache, c, "//title", "delete //price", guard.Limits{MaxK: 1})
	if err == nil {
		t.Fatal("cold build ignored MaxK")
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v", err)
	}
	if st := cache.Stats(); st.Resident != 0 {
		t.Fatalf("rejected build left a resident: %+v", st)
	}
}

func TestPurgeSchema(t *testing.T) {
	other := dtd.MustParse(`
r <- a*
a <- #PCDATA
`)
	cb, err := dtd.Compile(bib)
	if err != nil {
		t.Fatal(err)
	}
	co, err := dtd.Compile(other)
	if err != nil {
		t.Fatal(err)
	}
	cache := plan.NewCache(16)
	if _, _, err := prepare(cache, cb, "//title", "delete //price", guard.Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prepare(cache, cb, "//author", "delete //price", guard.Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prepare(cache, co, "//a", "delete //a", guard.Limits{}); err != nil {
		t.Fatal(err)
	}
	if n := cache.PurgeSchema(bib.Fingerprint()); n != 2 {
		t.Fatalf("PurgeSchema dropped %d plans, want 2", n)
	}
	res := cache.Residents()
	if len(res) != 1 || res[0].SchemaFingerprint() != other.Fingerprint() {
		t.Fatalf("wrong survivors after PurgeSchema: %d residents", len(res))
	}
	// Purged pair rebuilds cold.
	_, warm, err := prepare(cache, cb, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("purged plan served warm")
	}
	if st := cache.Stats(); st.Purges != 2 {
		t.Fatalf("stats.Purges = %d, want 2", st.Purges)
	}
}

func TestLRUEviction(t *testing.T) {
	c := compiled(t)
	cache := plan.NewCache(2)
	pairs := [][2]string{
		{"//title", "delete //price"},
		{"//author", "delete //price"},
		{"//price", "delete //author"},
	}
	for _, p := range pairs {
		if _, _, err := prepare(cache, c, p[0], p[1], guard.Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 resident, 1 eviction", st)
	}
	// The least-recently-hit plan (the first) was the victim.
	_, warm, err := prepare(cache, c, pairs[0][0], pairs[0][1], guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("evicted plan served warm")
	}
}

func TestNilCacheBuildsCold(t *testing.T) {
	c := compiled(t)
	ce, warm, err := prepare(nil, c, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("nil cache reported warm")
	}
	if err := ce.Verify(); err != nil {
		t.Fatalf("uncached plan fails Verify: %v", err)
	}
	ce2, warm, err := prepare(nil, c, "//title", "delete //price", guard.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if warm || ce2 == ce {
		t.Fatal("nil cache cached anyway")
	}
}
