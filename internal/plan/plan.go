// Package plan implements the prepared-analysis pipeline: the staged
// decomposition of one chain-method analysis into reusable, immutable
// artifacts. A CompiledExpr captures everything the CDAG rung of core
// derives for a (schema, query-update pair) — the normalized ASTs,
// the Table 3 k-factors, and the fully evaluated chain verdict — keyed
// by (schema fingerprint, expression-pair fingerprint) so repeated
// requests over the same logical pair (whitespace variants, renamed
// binders, sugared axes) resolve to one cached plan.
//
// The stages mirror the analysis pipeline of the paper: fingerprint
// (parse/normalize, Section 2 sugar), k-factors (Table 3, Section 5),
// chain inference (Sections 3–6). Each stage is budget-checked through
// guard and fault-injectable under a core.plan/* point, so the
// degradation ladder and the sentinel audit layer compose with the
// cache unchanged: a cached verdict is re-admitted against every
// request's own k limit, re-verified against its content checksum on
// every hit, and purged wholesale when the schema it was inferred
// under is quarantined.
package plan

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"xqindep/internal/cdag"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/infer"
	"xqindep/internal/xquery"
)

// CompiledExpr is the immutable prepared-analysis artifact for one
// (schema, query-update pair): the normalized ASTs, the syntactic
// multiplicity factors of Table 3, and the CDAG verdict inferred under
// the compiled schema. Construct it only through Prepare (or the
// cache's builder); after construction nothing may write to it — the
// checksum seals the content and Verify re-derives it on every cache
// hit, so any post-construction mutation is caught before the plan is
// served again.
type CompiledExpr struct {
	schemaFP string
	queryFP  string
	updateFP string
	pairFP   string
	// query and update are the normalized ASTs the verdict was
	// inferred from (not the caller's originals).
	query    xquery.Query
	update   xquery.Update
	kq       int
	ku       int
	k        int
	verdict  cdag.Verdict
	checksum uint64
}

// SchemaFingerprint returns the fingerprint of the schema the plan
// was inferred under.
func (ce *CompiledExpr) SchemaFingerprint() string { return ce.schemaFP }

// QueryFingerprint returns the content fingerprint of the normalized
// query.
func (ce *CompiledExpr) QueryFingerprint() string { return ce.queryFP }

// UpdateFingerprint returns the content fingerprint of the normalized
// update.
func (ce *CompiledExpr) UpdateFingerprint() string { return ce.updateFP }

// PairFingerprint returns the joint fingerprint the cache keys on.
func (ce *CompiledExpr) PairFingerprint() string { return ce.pairFP }

// Query returns the normalized query the plan was inferred from.
func (ce *CompiledExpr) Query() xquery.Query { return ce.query }

// Update returns the normalized update the plan was inferred from.
func (ce *CompiledExpr) Update() xquery.Update { return ce.update }

// KQuery returns k_q of Table 3.
func (ce *CompiledExpr) KQuery() int { return ce.kq }

// KUpdate returns k_u of Table 3.
func (ce *CompiledExpr) KUpdate() int { return ce.ku }

// K returns the joint multiplicity k = max(1, k_q + k_u) the chain
// universe was bounded by.
func (ce *CompiledExpr) K() int { return ce.k }

// Verdict returns the inferred CDAG verdict. The embedded chain sets
// are part of the sealed artifact: read them, never mutate them.
func (ce *CompiledExpr) Verdict() cdag.Verdict { return ce.verdict }

// Checksum returns the content checksum sealed at construction.
func (ce *CompiledExpr) Checksum() uint64 { return ce.checksum }

func (ce *CompiledExpr) computeChecksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wStr := func(s string) {
		wInt(len(s))
		h.Write([]byte(s))
	}
	wStr(ce.schemaFP)
	wStr(ce.queryFP)
	wStr(ce.updateFP)
	wStr(ce.pairFP)
	wInt(ce.kq)
	wInt(ce.ku)
	wInt(ce.k)
	binary.LittleEndian.PutUint64(buf[:], ce.verdict.Digest())
	h.Write(buf[:])
	return h.Sum64()
}

// Verify checks the plan's structural invariants and re-derives its
// content checksum, walking every chain-DAG row of the embedded
// verdict. The cache runs it on every hit: a mismatch means something
// wrote to the artifact after construction, and the resident is
// dropped and rebuilt rather than served.
func (ce *CompiledExpr) Verify() error {
	if ce == nil {
		return errors.New("plan: nil CompiledExpr")
	}
	if ce.schemaFP == "" || ce.queryFP == "" || ce.updateFP == "" || ce.pairFP == "" {
		return errors.New("plan: missing fingerprint")
	}
	if ce.query == nil || ce.update == nil {
		return errors.New("plan: missing normalized expression")
	}
	want := ce.kq + ce.ku
	if want < 1 {
		want = 1
	}
	if ce.k != want {
		return fmt.Errorf("plan: k=%d inconsistent with kq=%d ku=%d", ce.k, ce.kq, ce.ku)
	}
	if ce.verdict.K != ce.k {
		return fmt.Errorf("plan: verdict k=%d differs from plan k=%d", ce.verdict.K, ce.k)
	}
	if got := ce.computeChecksum(); got != ce.checksum {
		return fmt.Errorf("plan: checksum mismatch: computed %016x, sealed %016x", got, ce.checksum)
	}
	return nil
}

// CorruptClone returns a deep-enough copy of the plan whose verdict is
// corrupted per cdag.Verdict.CorruptedCopy — decision flipped, one
// cloned chain row damaged — with the checksum left stale so Verify
// fails on the clone. The original (a cache resident shared across
// requests) is untouched: chaos injection must corrupt a private copy,
// never the artifact other requests will be served. Test and chaos
// support only.
func (ce *CompiledExpr) CorruptClone(seed int64) *CompiledExpr {
	cc := *ce
	cc.verdict = ce.verdict.CorruptedCopy(seed)
	return &cc
}

// Prepare resolves the prepared plan for the pair under the compiled
// schema, running the staged pipeline:
//
//	core.plan/fingerprint  normalize both ASTs, derive content
//	                       fingerprints (the cache key)
//	core.plan/lookup       consult cache (verify-on-hit); on miss the
//	                       builder runs the two cold stages:
//	core.plan/kfactors       k_q, k_u, k per Table 3, admission check
//	core.plan/infer          CDAG chain inference, verdict sealed
//	core.plan/artifact     hand the plan to the caller (chaos
//	                       corrupt-artifact injection point)
//
// Every stage charges b; stage overruns abort via guard and surface at
// the caller's guard.Recover boundary exactly as the monolithic path
// did, so the degradation ladder applies unchanged. The returned bool
// reports warm provenance: true when the plan came from cache without
// running the cold stages. A cached plan's k is re-checked against
// b's own limits — admission is per-request even when inference is
// amortised. cache may be nil to force an uncached cold build (used
// by core when a chaos fault corrupts the schema artifact itself:
// plans inferred under a corrupted schema must never enter the cache).
func Prepare(cache *Cache, c *dtd.Compiled, q xquery.Query, u xquery.Update, b *guard.Budget) (*CompiledExpr, bool, error) {
	b.Point("core.plan/fingerprint")
	nq := xquery.Normalize(q)
	nu := xquery.NormalizeUpdate(u)
	qfp := xquery.FingerprintQuery(nq)
	ufp := xquery.FingerprintUpdate(nu)
	pairFP := xquery.FingerprintPair(nq, nu)
	schemaFP := c.Fingerprint()

	b.Point("core.plan/lookup")
	ce, warm := cache.Get(schemaFP, pairFP, func() *CompiledExpr {
		return build(c, nq, nu, schemaFP, qfp, ufp, pairFP, b)
	})

	// Admission is per-request: a plan cached under one request's
	// limits may exceed this request's MaxK, and a warm hit must
	// degrade exactly as a cold build would have.
	if err := b.CheckK(ce.k); err != nil {
		return nil, warm, err
	}

	if ferr := guard.FirePoint(b.Context(), "core.plan/artifact"); ferr != nil {
		if !errors.Is(ferr, guard.ErrArtifactCorrupt) {
			return nil, warm, ferr
		}
		// Chaos corrupt-artifact injection: serve a privately corrupted
		// clone. The cache resident stays intact — corruption must not
		// leak across requests — and the clone fails Verify, which is
		// exactly what the containment layers are tested against.
		ce = ce.CorruptClone(int64(ce.checksum) | 1)
	}
	return ce, warm, nil
}

// build runs the cold stages. It charges b throughout and aborts via
// guard on overrun; the cache never sees a partially built plan.
func build(c *dtd.Compiled, nq xquery.Query, nu xquery.Update, schemaFP, qfp, ufp, pairFP string, b *guard.Budget) *CompiledExpr {
	b.Point("core.plan/kfactors")
	kq := infer.KQuery(nq)
	ku := infer.KUpdate(nu)
	k := infer.KPair(nq, nu)
	if err := b.CheckK(k); err != nil {
		guard.Abort(err)
	}

	b.Point("core.plan/infer")
	// cdag.build is the historical chain-inference point; chaos
	// schedules arming it must still reach it on every cold build.
	b.Point("cdag.build")
	e := cdag.EngineForCompiled(c, nq, nu).WithBudget(b)
	v := e.CheckIndependence(nq, nu)
	// Detach the request budget before the plan outlives the request:
	// a cached artifact must not retain a reference to a finished
	// request's context or counters.
	e.WithBudget(nil)

	ce := &CompiledExpr{
		schemaFP: schemaFP,
		queryFP:  qfp,
		updateFP: ufp,
		pairFP:   pairFP,
		query:    nq,
		update:   nu,
		kq:       kq,
		ku:       ku,
		k:        k,
		verdict:  v,
	}
	ce.checksum = ce.computeChecksum()
	return ce
}
