package plan_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/xquery"
)

// The plan-cache containment proof: under 50 seeded fault schedules
// arming the core.plan/* stage points (budget, error, panic, and
// corrupt-artifact at the handoff),
//
//  1. no corrupted plan ever becomes a cache resident — after every
//     request, every resident passes its Verify self-check,
//  2. a corruption-free request never serves an unsound verdict; an
//     unsound serve is possible only on the request whose own
//     schedule fired a corrupt-artifact fault (the clone is private,
//     so the damage dies with the request),
//  3. after the chaos rounds, the surviving cache serves every pair
//     of the corpus with its ground-truth verdict — faults never
//     leak through the cache into later, fault-free requests,
//  4. injected failures come back typed (budget, injected error, or
//     InternalError from an injected panic), never as raw panics.
//
// CHAOS_SEED overrides the base seed for soak runs.

func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

type planChaosPair struct {
	qs, us string
	q      xquery.Query
	u      xquery.Update
	indep  bool
}

func planChaosCorpus(t *testing.T) []planChaosPair {
	t.Helper()
	pairs := []planChaosPair{
		{qs: "//title", us: "delete //price"},
		{qs: "//title", us: "delete //title"},
		{qs: "//author", us: "for $x in //book return insert <author>x</author> into $x"},
		{qs: "//price", us: "delete //author"},
		{qs: "/bib/book/title", us: "delete /bib/book/price"},
		{qs: "//book[price]/title", us: "delete //price"},
	}
	a := core.NewAnalyzer(bib)
	opts := core.Options{Plans: plan.NewCache(64)}
	for i := range pairs {
		pairs[i].q = xquery.MustParseQuery(pairs[i].qs)
		pairs[i].u = xquery.MustParseUpdate(pairs[i].us)
		r, err := a.AnalyzeContext(context.Background(), pairs[i].q, pairs[i].u, core.MethodChains, opts)
		if err != nil {
			t.Fatalf("ground truth for %s | %s: %v", pairs[i].qs, pairs[i].us, err)
		}
		pairs[i].indep = r.Independent
	}
	return pairs
}

func TestChaosPlanCacheContainment(t *testing.T) {
	faultinject.Enable()
	const runs = 50
	seed := int64(chaosEnvInt("CHAOS_SEED", 7))
	pairs := planChaosCorpus(t)

	for run := 0; run < runs; run++ {
		run := run
		t.Run(fmt.Sprintf("run%03d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			sched := faultinject.RandomPlanSchedule(rng, 1+rng.Intn(3))
			cache := plan.NewCache(256)
			reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
			opts := core.Options{Plans: cache, Quarantine: reg}
			analyzer := core.NewAnalyzer(bib)
			ctx := faultinject.With(context.Background(), sched)

			for round := 0; round < 3; round++ {
				for _, p := range pairs {
					res, err := analyzer.AnalyzeContext(ctx, p.q, p.u, core.MethodChains, opts)
					if err != nil {
						// Invariant 4: typed failures only.
						var ierr *guard.InternalError
						if !errors.As(err, &ierr) && !errors.Is(err, faultinject.ErrInjected) &&
							!errors.Is(err, guard.ErrBudgetExceeded) && !errors.Is(err, context.Canceled) {
							t.Fatalf("unexpected error class: %v (schedule %s)", err, sched)
						}
					} else if res.Independent && !p.indep {
						// Invariant 2: unsound only under a fired
						// corruption fault.
						corrupted := false
						for _, f := range sched.Fired() {
							if strings.Contains(f, "corrupt-artifact") {
								corrupted = true
								break
							}
						}
						if !corrupted {
							t.Fatalf("unsound verdict for %s | %s without a corruption fault (schedule %s, fired %v)",
								p.qs, p.us, sched, sched.Fired())
						}
					}
					// Invariant 1: injected damage never reaches the
					// cache — every resident stays self-consistent after
					// every request, faulted or not.
					for _, r := range cache.Residents() {
						if verr := r.Verify(); verr != nil {
							t.Fatalf("corrupted plan leaked into the cache after %s | %s: %v (schedule %s, fired %v)",
								p.qs, p.us, verr, sched, sched.Fired())
						}
					}
				}
			}

			// Invariant 3: with the faults spent and a clean context,
			// the surviving cache must serve only ground-truth verdicts
			// — a corrupted plan that slipped in would poison these.
			for _, p := range pairs {
				res, err := analyzer.AnalyzeContext(context.Background(), p.q, p.u, core.MethodChains, opts)
				if err != nil {
					t.Fatalf("post-chaos request %s | %s: %v", p.qs, p.us, err)
				}
				if res.Independent != p.indep {
					t.Fatalf("post-chaos verdict for %s | %s = %v, ground truth %v (schedule %s, fired %v): a faulted plan crossed requests",
						p.qs, p.us, res.Independent, p.indep, sched, sched.Fired())
				}
				if res.Method == core.MethodChains && res.Plan == "" {
					t.Fatalf("chains verdict without plan provenance: %+v", res)
				}
			}
		})
	}
}

// TestChaosPlanScheduleDeterminism pins RandomPlanSchedule to its
// seeded contract: the same seed draws the same schedule, and every
// schedule arms at least one plan-stage fault.
func TestChaosPlanScheduleDeterminism(t *testing.T) {
	for s := int64(0); s < 20; s++ {
		a := faultinject.RandomPlanSchedule(rand.New(rand.NewSource(s)), 3)
		b := faultinject.RandomPlanSchedule(rand.New(rand.NewSource(s)), 3)
		if a.String() != b.String() {
			t.Fatalf("seed %d not deterministic: %s vs %s", s, a, b)
		}
		armed := false
		for _, p := range faultinject.PlanPoints {
			if strings.Contains(a.String(), p) {
				armed = true
				break
			}
		}
		if !armed {
			t.Fatalf("seed %d armed no plan-stage fault: %s", s, a)
		}
	}
}
