package plan

import (
	"container/list"
	"sort"
	"sync"
)

// Cache is a bounded LRU of prepared plans keyed by (schema
// fingerprint, expression-pair fingerprint), modeled on
// dtd.CompileCache: hit-ordered eviction (least-recently-hit first) so
// purge→rebuild behavior is reproducible under chaos schedules, cold
// builds outside the lock so a slow inference never blocks hits on
// other plans, and verify-on-hit so a resident that fails its content
// checksum is dropped and rebuilt instead of served.
type Cache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	// lru orders residents most-recently-hit first; Back() is the
	// eviction victim. Element values are *planEntry.
	lru            list.List
	hits           int64
	misses         int64
	evictions      int64
	purges         int64
	verifyFailures int64
}

type planEntry struct {
	key      string
	schemaFP string
	ce       *CompiledExpr
}

// NewCache returns a cache holding at most max plans (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	pc := &Cache{max: max, m: make(map[string]*list.Element)}
	pc.lru.Init()
	return pc
}

func cacheKey(schemaFP, pairFP string) string { return schemaFP + "/" + pairFP }

// Get returns the resident plan for the key, building and caching one
// on first sight. The build closure runs outside the lock and may
// abort via guard (budget overrun, injected fault) — nothing is cached
// in that case. A hit whose resident fails Verify is treated as a
// miss: the corrupted artifact is evicted and a fresh build replaces
// it. The returned bool reports warm provenance: true only for a
// verified hit. When two requests race on a cold key, the first
// result cached wins and the loser's build is discarded — the loser
// still reports cold, since it paid the cold cost. A nil *Cache
// degenerates to an uncached cold build.
func (pc *Cache) Get(schemaFP, pairFP string, build func() *CompiledExpr) (*CompiledExpr, bool) {
	if pc == nil {
		return build(), false
	}
	key := cacheKey(schemaFP, pairFP)
	pc.mu.Lock()
	if el := pc.m[key]; el != nil {
		ent := el.Value.(*planEntry)
		if err := ent.ce.Verify(); err != nil {
			// Corrupted resident: drop it and fall through to a fresh
			// build. The failure is counted so /statz surfaces it.
			pc.verifyFailures++
			pc.lru.Remove(el)
			delete(pc.m, key)
		} else {
			pc.hits++
			pc.lru.MoveToFront(el)
			pc.mu.Unlock()
			return ent.ce, true
		}
	}
	pc.misses++
	pc.mu.Unlock()

	ce := build()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el := pc.m[key]; el != nil {
		// Lost a build race; keep the resident plan so every caller
		// shares one instance.
		pc.lru.MoveToFront(el)
		return el.Value.(*planEntry).ce, false
	}
	for pc.lru.Len() >= pc.max {
		victim := pc.lru.Back()
		pc.lru.Remove(victim)
		delete(pc.m, victim.Value.(*planEntry).key)
		pc.evictions++
	}
	pc.m[key] = pc.lru.PushFront(&planEntry{key: key, schemaFP: schemaFP, ce: ce})
	return ce, false
}

// Purge drops the resident plan for the key, reporting whether one
// was resident.
func (pc *Cache) Purge(schemaFP, pairFP string) bool {
	if pc == nil {
		return false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el := pc.m[cacheKey(schemaFP, pairFP)]
	if el == nil {
		return false
	}
	pc.lru.Remove(el)
	delete(pc.m, el.Value.(*planEntry).key)
	pc.purges++
	return true
}

// PurgeSchema drops every resident plan inferred under the schema
// fingerprint, returning how many were dropped. The quarantine path
// uses it after an audit disagreement: a verdict cached under a
// suspect schema must not outlive the suspicion, so containment
// purges the plan cache alongside the compiled-schema cache and the
// next request re-infers from a freshly compiled artifact.
func (pc *Cache) PurgeSchema(schemaFP string) int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := 0
	for el := pc.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*planEntry)
		if ent.schemaFP == schemaFP {
			pc.lru.Remove(el)
			delete(pc.m, ent.key)
			pc.purges++
			n++
		}
		el = next
	}
	return n
}

// CacheStats is a point-in-time snapshot of a plan cache, exposed by
// the daemon's /statz endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Purges counts residents dropped by Purge/PurgeSchema (quarantine
	// containment path).
	Purges int64 `json:"purges"`
	// VerifyFailures counts cache hits whose resident failed its
	// Verify self-check and was rebuilt.
	VerifyFailures int64 `json:"verify_failures"`
	Resident       int64 `json:"resident"`
	// Schemas summarises resident plans per schema fingerprint, sorted
	// by fingerprint.
	Schemas []SchemaPlanStat `json:"schemas,omitempty"`
}

// SchemaPlanStat counts the resident plans of one schema.
type SchemaPlanStat struct {
	Fingerprint string `json:"fingerprint"`
	Plans       int    `json:"plans"`
}

// Stats returns a snapshot of the cache counters and residents.
func (pc *Cache) Stats() CacheStats {
	if pc == nil {
		return CacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	st := CacheStats{
		Hits:           pc.hits,
		Misses:         pc.misses,
		Evictions:      pc.evictions,
		Purges:         pc.purges,
		VerifyFailures: pc.verifyFailures,
		Resident:       int64(pc.lru.Len()),
	}
	perSchema := make(map[string]int)
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		perSchema[el.Value.(*planEntry).schemaFP]++
	}
	for fp, n := range perSchema {
		st.Schemas = append(st.Schemas, SchemaPlanStat{Fingerprint: fp, Plans: n})
	}
	sort.Slice(st.Schemas, func(i, j int) bool {
		return st.Schemas[i].Fingerprint < st.Schemas[j].Fingerprint
	})
	return st
}

// Residents returns the resident plans in LRU order, most-recently-hit
// first (test support: the chaos suite sweeps them with Verify to
// assert no injected corruption ever reached the cache).
func (pc *Cache) Residents() []*CompiledExpr {
	if pc == nil {
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]*CompiledExpr, 0, pc.lru.Len())
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*planEntry).ce)
	}
	return out
}

// DefaultCacheSize is the resident-plan bound used when a caller asks
// for a cache without sizing it. 4096 plans comfortably hold the full
// XMark view×update matrix (36×31 = 1116) per schema.
const DefaultCacheSize = 4096

// defaultCache is the process-wide plan cache shared by core and the
// CLIs when no explicit cache is configured.
var defaultCache = NewCache(DefaultCacheSize)

// Shared returns the process-wide plan cache.
func Shared() *Cache { return defaultCache }
