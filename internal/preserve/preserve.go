// Package preserve statically checks whether an update keeps every
// valid document valid — the schema-preservation precondition the
// paper assumes for insert, rename and replace updates (Sections 2
// and 4) and leaves as future work to verify. The checker is sound in
// the "preserves" direction: a true verdict guarantees u(t) ∈ d for
// every t ∈ d on every successful run; false verdicts may be false
// alarms.
//
// The per-operation conditions reduce to regular-language inclusion
// over content models (package dtd):
//
//   - delete of an α child under p: removing any subset of α's keeps
//     d(p) satisfied — L(subst(d(p), α→α?)) ⊆ L(d(p));
//   - rename α→b under p: L(subst(d(p), α→α|b)) ⊆ L(d(p)) and the
//     renamed node's content satisfies b's model, L(d(α)) ⊆ L(d(b));
//   - insert of top-level tags T into t: the shuffle of d(t) with T*
//     stays within d(t) — "into" may place content anywhere, so the
//     check covers every position (and over-approximates the
//     before/after/first/last placements soundly);
//   - replace of α by a statically known word w: the in-place
//     substitution L(subst(d(p), α→α|w)) ⊆ L(d(p)); unknown
//     replacement words are rejected conservatively;
//   - constructed source elements must satisfy their own content
//     models; contents containing query holes are rejected.
//
// Target chains come from the CDAG engine, so the checker stays
// polynomial on recursive schemas.
package preserve

import (
	"fmt"
	"sort"

	"xqindep/internal/cdag"
	"xqindep/internal/dtd"
	"xqindep/internal/infer"
	"xqindep/internal/xquery"
)

// Verdict is the outcome of a preservation check.
type Verdict struct {
	// Preserves is true when every successful run of the update on a
	// valid document yields a valid document.
	Preserves bool
	// Reasons lists the potential violations when Preserves is false.
	Reasons []string
}

// Check analyses the quasi-closed update u against d.
func Check(d *dtd.DTD, u xquery.Update) Verdict {
	eng := cdag.EngineFor(d, nil, u)
	c := &checker{d: d, eng: eng}
	c.walk(eng.RootEnv(), xquery.NormalizeUpdate(u))
	sort.Strings(c.reasons)
	c.reasons = dedupe(c.reasons)
	return Verdict{Preserves: len(c.reasons) == 0, Reasons: c.reasons}
}

func dedupe(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

type checker struct {
	d       *dtd.DTD
	eng     *cdag.Engine
	reasons []string
}

func (c *checker) failf(format string, args ...any) {
	c.reasons = append(c.reasons, fmt.Sprintf(format, args...))
}

// model returns the content model of an element type, or nil for the
// string type (text has no content).
func (c *checker) model(sym string) *dtd.Regex {
	if sym == dtd.StringType {
		return nil
	}
	return c.d.Content[sym]
}

func (c *checker) walk(g cdag.Env, u xquery.Update) {
	switch n := u.(type) {
	case xquery.UEmpty:
	case xquery.USeq:
		c.walk(g, n.Left)
		c.walk(g, n.Right)
	case xquery.UIf:
		c.walk(g, n.Then)
		c.walk(g, n.Else)
	case xquery.UFor:
		qc := c.eng.Query(g, n.In)
		c.walk(g.Bind(n.Var, c.eng.Union(qc.Ret, qc.Elem)), n.Body)
	case xquery.ULet:
		qc := c.eng.Query(g, n.Bind)
		c.walk(g.Bind(n.Var, c.eng.Union(qc.Ret, qc.Elem)), n.Body)
	case xquery.Delete:
		for _, ep := range c.targets(g, n.Target) {
			if ep.IsRoot {
				c.failf("delete may remove the document root")
				continue
			}
			for _, p := range ep.Parents {
				if r := c.model(p); r != nil && !dtd.DeletionSafe(r, ep.Sym) {
					c.failf("deleting %s children may break d(%s) = %s", ep.Sym, p, r)
				}
			}
		}
	case xquery.Rename:
		if !c.d.HasType(n.As) || n.As == dtd.StringType {
			c.failf("rename introduces undeclared tag %s", n.As)
			return
		}
		for _, ep := range c.targets(g, n.Target) {
			if ep.Sym == dtd.StringType || ep.Sym == n.As {
				continue // runtime error or no-op
			}
			if ep.IsRoot {
				if n.As != c.d.Start {
					c.failf("renaming the root to %s breaks the start symbol", n.As)
				}
				continue
			}
			for _, p := range ep.Parents {
				r := c.model(p)
				if r == nil {
					continue
				}
				if !dtd.RenameSafe(r, ep.Sym, n.As) {
					c.failf("renaming %s to %s may break d(%s) = %s", ep.Sym, n.As, p, r)
					continue
				}
				if !dtd.Included(c.d.Content[ep.Sym], c.d.Content[n.As]) {
					c.failf("content of %s may not satisfy d(%s) = %s", ep.Sym, n.As, c.d.Content[n.As])
				}
			}
		}
	case xquery.Insert:
		tags, _, ok := c.sourceInfo(g, n.Source)
		if !ok {
			return
		}
		for _, ep := range c.targets(g, n.Target) {
			if n.Pos.IsInto() {
				if r := c.model(ep.Sym); r != nil && !dtd.InsertionSafe(r, tags) {
					c.failf("inserting %v into %s may break d(%s) = %s", tags, ep.Sym, ep.Sym, r)
				}
				continue
			}
			if ep.IsRoot {
				c.failf("insert beside the document root")
				continue
			}
			for _, p := range ep.Parents {
				if r := c.model(p); r != nil && !dtd.InsertionSafe(r, tags) {
					c.failf("inserting %v under %s may break d(%s) = %s", tags, p, p, r)
				}
			}
		}
	case xquery.Replace:
		_, word, ok := c.sourceInfo(g, n.Source)
		if !ok {
			return
		}
		if word == nil {
			c.failf("replacement content is not statically known; cannot verify")
			return
		}
		for _, ep := range c.targets(g, n.Target) {
			if ep.IsRoot {
				c.failf("replace of the document root")
				continue
			}
			for _, p := range ep.Parents {
				if r := c.model(p); r != nil && !dtd.ReplaceSafe(r, ep.Sym, word) {
					c.failf("replacing %s by %v may break d(%s) = %s", ep.Sym, word, p, r)
				}
			}
		}
	default:
		c.failf("unknown update construct %T", u)
	}
}

// targets returns the endpoint/parent pairs of a target query.
func (c *checker) targets(g cdag.Env, q xquery.Query) []cdag.EndpointParent {
	return c.eng.Query(g, q).Ret.EndpointParents()
}

// sourceInfo computes the top-level tags a source may produce, the
// exact top-level word when the source is hole-free (nil otherwise),
// and whether constructed content validated; it reports violations for
// invalid constructed content.
func (c *checker) sourceInfo(g cdag.Env, src xquery.Query) (tags []string, word []string, ok bool) {
	set := map[string]bool{}
	ok = true
	exact := true
	var collect func(q xquery.Query)
	collect = func(q xquery.Query) {
		switch n := q.(type) {
		case xquery.Empty:
		case xquery.StringLit:
			set[dtd.StringType] = true
			word = append(word, dtd.StringType)
		case xquery.Element:
			set[n.Tag] = true
			word = append(word, n.Tag)
			if !c.d.HasType(n.Tag) {
				c.failf("constructed element <%s> is not declared in the schema", n.Tag)
				ok = false
				return
			}
			c.checkConstructed(g, n)
		case xquery.Sequence:
			collect(n.Left)
			collect(n.Right)
		case xquery.For, xquery.Let, xquery.If, xquery.Var, xquery.Step:
			exact = false
			for _, ep := range c.eng.Query(g, q).Ret.EndpointParents() {
				set[ep.Sym] = true
			}
		}
	}
	collect(src)
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	if !exact {
		word = nil
	}
	return tags, word, ok
}

// checkConstructed validates a hole-free constructor against the
// schema; holes are reported.
func (c *checker) checkConstructed(g cdag.Env, e xquery.Element) {
	w, exact := staticWord(e.Content)
	if !exact {
		c.failf("constructed content of <%s> contains query holes; cannot verify statically", e.Tag)
		return
	}
	if !c.d.Content[e.Tag].Matches(w) {
		c.failf("constructed content of <%s> (%v) does not match d(%s) = %s", e.Tag, w, e.Tag, c.d.Content[e.Tag])
		return
	}
	collectChildren(e.Content, func(child xquery.Element) {
		if !c.d.HasType(child.Tag) {
			c.failf("constructed element <%s> is not declared in the schema", child.Tag)
			return
		}
		c.checkConstructed(g, child)
	})
}

// staticWord extracts the exact top-level child-tag word of
// constructor content when it is hole-free.
func staticWord(q xquery.Query) ([]string, bool) {
	switch n := q.(type) {
	case xquery.Empty:
		return nil, true
	case xquery.StringLit:
		return []string{dtd.StringType}, true
	case xquery.Element:
		return []string{n.Tag}, true
	case xquery.Sequence:
		l, ok1 := staticWord(n.Left)
		r, ok2 := staticWord(n.Right)
		return append(l, r...), ok1 && ok2
	default:
		return nil, false
	}
}

func collectChildren(q xquery.Query, f func(xquery.Element)) {
	switch n := q.(type) {
	case xquery.Element:
		f(n)
	case xquery.Sequence:
		collectChildren(n.Left, f)
		collectChildren(n.Right, f)
	}
}

// KForUpdate re-exports the multiplicity used, for diagnostics.
func KForUpdate(u xquery.Update) int { return infer.KUpdate(u) }
