package preserve

import (
	"math/rand"
	"strings"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmark"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

var bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)

func TestCheckVerdicts(t *testing.T) {
	cases := []struct {
		update string
		want   bool
		reason string // substring expected in a reason when !want
	}{
		{"delete //author", true, ""},
		{"delete //price", true, ""},
		{"delete //title", false, "deleting title"},
		{"delete //book", true, ""},
		{"delete /bib", false, "root"},
		// "into" may place content at any position (W3C), so inserting
		// an author that could land before the title is flagged.
		{"for $b in //book return insert <author/> into $b", false, "inserting"},
		{"for $b in //book return insert <title>x</title> into $b", false, "inserting"},
		{"for $b in //book return insert <price>9</price> into $b", false, "inserting"},
		{"for $a in //author return insert <email>e</email> into $a", false, "inserting"}, // email? admits one only
		{"for $b in //book return insert <zzz/> into $b", false, "not declared"},
		{"for $a in //book/author return rename $a as author", true, ""},
		{"for $a in //book/author return rename $a as price", false, "renaming"},
		{"for $p in //price return replace $p with <price>0</price>", true, ""},
		{"for $p in //price return replace $p with <title>t</title>", false, "replacing"},
		{"for $b in //book return insert <author><first>U</first></author> into $b", false, "inserting"},
		{"for $b in //book return insert <author><price>9</price></author> into $b", false, "does not match"},
		{"for $b in //book return insert <author>{$b/title}</author> into $b", false, "query holes"},
		{"()", true, ""},
	}
	for _, c := range cases {
		u := xquery.MustParseUpdate(c.update)
		v := Check(bib, u)
		if v.Preserves != c.want {
			t.Errorf("Check(%q) = %v, want %v (reasons %v)", c.update, v.Preserves, c.want, v.Reasons)
			continue
		}
		if !c.want {
			found := false
			for _, r := range v.Reasons {
				if strings.Contains(r, c.reason) {
					found = true
				}
			}
			if !found {
				t.Errorf("Check(%q) reasons %v lack %q", c.update, v.Reasons, c.reason)
			}
		}
	}
}

// TestCheckSoundOnXMarkWorkload: every benchmark update marked
// schema-preserving in the workload must pass the checker, and the
// checker's positive verdicts must survive dynamic validation.
func TestCheckSoundOnXMarkWorkload(t *testing.T) {
	d := xmark.Schema()
	docs := xmark.SampleDocuments(2, 1)
	for _, u := range xmark.Updates() {
		v := Check(d, u.AST)
		if u.PreservesSchema && !v.Preserves {
			t.Errorf("workload says %s preserves the schema, checker disagrees: %v", u.Name, v.Reasons)
		}
		if !v.Preserves {
			continue
		}
		// Dynamic confirmation.
		for _, doc := range docs {
			s := xmltree.NewStore()
			root := s.Copy(doc.Store, doc.Root)
			if err := eval.Update(s, eval.RootEnv(root), u.AST); err != nil {
				continue
			}
			if err := d.Validate(xmltree.NewTree(s, root)); err != nil {
				t.Errorf("checker approved %s but document became invalid: %v", u.Name, err)
			}
		}
	}
}

// TestCheckDifferential fuzz-checks the positive direction: whenever
// the checker approves an update, applying it to random valid
// documents must never break validity.
func TestCheckDifferential(t *testing.T) {
	schemas := []*dtd.DTD{
		bib,
		dtd.MustParse("doc <- (a | b)*\na <- c?\nb <- c?\nc <- #PCDATA"),
		dtd.MustParse("r <- x*\nx <- (y | z)*\ny <- x?\nz <- #PCDATA"),
	}
	updates := []string{
		"delete //a", "delete //c", "delete //x", "delete //y", "delete //z",
		"for $v in //a return insert <c>t</c> into $v",
		"for $v in //doc return insert <a/> into $v",
		"for $v in //x return insert <z>s</z> into $v",
		"for $v in //a return rename $v as b",
		"for $v in //y return rename $v as z",
		"for $v in //c return replace $v with <c>new</c>",
		"for $v in //z return replace $v with <y/>",
	}
	rng := rand.New(rand.NewSource(23))
	for _, d := range schemas {
		var docs []xmltree.Tree
		for i := 0; i < 6; i++ {
			tr, err := d.GenerateTree(rng, 0.6, 6)
			if err != nil {
				t.Fatal(err)
			}
			docs = append(docs, tr)
		}
		for _, us := range updates {
			u := xquery.MustParseUpdate(us)
			if !Check(d, u).Preserves {
				continue
			}
			for _, doc := range docs {
				s := xmltree.NewStore()
				root := s.Copy(doc.Store, doc.Root)
				if err := eval.Update(s, eval.RootEnv(root), u); err != nil {
					continue
				}
				if err := d.Validate(xmltree.NewTree(s, root)); err != nil {
					t.Errorf("UNSOUND preservation verdict for %q on schema %s: %v\ndoc: %s",
						us, d.Start, err, doc.Store.String(doc.Root))
				}
			}
		}
	}
}
