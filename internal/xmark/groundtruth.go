package xmark

import (
	"fmt"

	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
)

// Truth is the empirically established dependence matrix of the
// benchmark: Dependent[update][view] is true when some sample
// document witnesses a result change. Pairs not witnessed as
// dependent on any sample are taken as independent — the counterpart
// of the paper's manual determination of truly independent pairs
// (most pairs are evidently independent or evidently dependent; the
// multi-seed sampling plays the manual audit's role here).
type Truth struct {
	// ViewNames lists every view of the matrix.
	ViewNames []string
	// Dependent[update][view] records witnessed dependence; views
	// absent from the inner map are independent.
	Dependent map[string]map[string]bool
}

// IsDependent reports the recorded ground truth for (update, view).
func (t *Truth) IsDependent(update, view string) bool {
	return t.Dependent[update][view]
}

// IndependentPairs counts the pairs recorded independent for one
// update across all views.
func (t *Truth) IndependentPairs(update string) int {
	n := 0
	for _, v := range t.ViewNames {
		if !t.Dependent[update][v] {
			n++
		}
	}
	return n
}

// GroundTruth evaluates every view before and after every update on
// each sample document and records observed dependence. Runtime
// errors (which the benchmark workload avoids) fail loudly.
func GroundTruth(docs []xmltree.Tree) (*Truth, error) {
	views := Views()
	ups := Updates()
	out := &Truth{Dependent: make(map[string]map[string]bool, len(ups))}
	for _, v := range views {
		out.ViewNames = append(out.ViewNames, v.Name)
	}
	for _, u := range ups {
		out.Dependent[u.Name] = make(map[string]bool, len(views))
	}
	for _, doc := range docs {
		// Baseline view results on the original document.
		base := make(map[string][]uint64, len(views))
		for _, v := range views {
			h, err := viewHashes(doc, v)
			if err != nil {
				return nil, fmt.Errorf("xmark: view %s on base document: %w", v.Name, err)
			}
			base[v.Name] = h
		}
		for _, u := range ups {
			s2 := xmltree.NewStore()
			root2 := s2.Copy(doc.Store, doc.Root)
			if err := eval.Update(s2, eval.RootEnv(root2), u.AST); err != nil {
				return nil, fmt.Errorf("xmark: update %s: %w", u.Name, err)
			}
			updated := xmltree.NewTree(s2, root2)
			for _, v := range views {
				if out.Dependent[u.Name][v.Name] {
					continue // already witnessed
				}
				h, err := viewHashes(updated, v)
				if err != nil {
					return nil, fmt.Errorf("xmark: view %s after %s: %w", v.Name, u.Name, err)
				}
				if !hashesEqual(base[v.Name], h) {
					out.Dependent[u.Name][v.Name] = true
				}
			}
		}
	}
	return out, nil
}

// viewHashes evaluates a view and returns the structural hashes of its
// result sequence.
func viewHashes(doc xmltree.Tree, v View) ([]uint64, error) {
	s := xmltree.NewStore()
	root := s.Copy(doc.Store, doc.Root)
	locs, err := eval.Query(s, eval.RootEnv(root), v.AST)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(locs))
	for i, l := range locs {
		out[i] = xmltree.Hash(s, l)
	}
	return out, nil
}

func hashesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SampleDocuments generates the ground-truth document sample: several
// seeds at a small scale factor, which empirically suffices to witness
// every dependence of the workload.
func SampleDocuments(n int, factor float64) []xmltree.Tree {
	out := make([]xmltree.Tree, n)
	for i := range out {
		out[i] = GenerateDocument(int64(1000+i*37), factor)
	}
	return out
}
