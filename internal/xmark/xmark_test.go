package xmark

import (
	"strings"
	"testing"

	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
)

func TestSchemaShape(t *testing.T) {
	d := Schema()
	if d.Start != "site" {
		t.Errorf("start = %q", d.Start)
	}
	// The paper reports |d| = 76 for its attribute-free rewriting; our
	// re-derivation has 74 element types (the small delta comes from
	// attribute-only helper elements dropped with the attributes).
	if d.Size() < 70 || d.Size() > 80 {
		t.Errorf("|d| = %d, expected mid-seventies", d.Size())
	}
	if !d.IsRecursive() {
		t.Errorf("XMark schema must be recursive")
	}
	rec := d.RecursiveTypes()
	// The two mutually recursive cliques: {bold, keyword, emph} (plus
	// text feeding them) and {parlist, listitem}.
	for _, want := range []string{"bold", "keyword", "emph", "parlist", "listitem"} {
		if !rec[want] {
			t.Errorf("type %s should be recursive", want)
		}
	}
	if rec["site"] || rec["item"] {
		t.Errorf("non-recursive types misclassified: %v", rec)
	}
}

func TestGeneratedDocumentsValid(t *testing.T) {
	d := Schema()
	for _, factor := range []float64{0.3, 1.0, 2.0} {
		doc := GenerateDocument(42, factor)
		if err := d.Validate(doc); err != nil {
			t.Fatalf("factor %.1f: generated document invalid: %v", factor, err)
		}
	}
	// Scaling grows the document.
	small := len(GenerateDocument(1, 0.5).Store.Domain(GenerateDocument(1, 0.5).Root))
	big := GenerateDocument(1, 4)
	bigN := len(big.Store.Domain(big.Root))
	if bigN < 4*small {
		t.Errorf("scaling too weak: factor 0.5 → %d nodes, factor 4 → %d", small, bigN)
	}
	// Determinism per seed.
	a := GenerateDocument(7, 1)
	b := GenerateDocument(7, 1)
	if a.Store.String(a.Root) != b.Store.String(b.Root) {
		t.Errorf("generation not deterministic")
	}
}

func TestWorkloadParsesAndCounts(t *testing.T) {
	vs := Views()
	if len(vs) != 36 {
		t.Fatalf("views = %d, want 36", len(vs))
	}
	us := Updates()
	if len(us) != 31 {
		t.Fatalf("updates = %d, want 31", len(us))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if names[v.Name] {
			t.Errorf("duplicate view name %s", v.Name)
		}
		names[v.Name] = true
	}
	for _, u := range us {
		if names[u.Name] {
			t.Errorf("duplicate update name %s", u.Name)
		}
		names[u.Name] = true
	}
	if _, ok := ViewByName("q15"); !ok {
		t.Errorf("ViewByName(q15) missing")
	}
	if _, ok := UpdateByName("UP5"); !ok {
		t.Errorf("UpdateByName(UP5) missing")
	}
	if _, ok := ViewByName("zz"); ok {
		t.Errorf("ViewByName(zz) should miss")
	}
}

// TestViewsEvaluate runs every view on a sample document — none may
// raise a runtime error, and the structurally guaranteed ones must be
// non-empty.
func TestViewsEvaluate(t *testing.T) {
	doc := GenerateDocument(3, 1.5)
	nonEmpty := map[string]bool{
		"q1": true, "q5": true, "q6": true, "q7": true, "q10": true,
		"q18": true, "q19": true, "A2": false, // keyword content is probabilistic
	}
	for _, v := range Views() {
		s := xmltree.NewStore()
		root := s.Copy(doc.Store, doc.Root)
		locs, err := eval.Query(s, eval.RootEnv(root), v.AST)
		if err != nil {
			t.Errorf("view %s: %v", v.Name, err)
			continue
		}
		if nonEmpty[v.Name] && len(locs) == 0 {
			t.Errorf("view %s returned nothing on a factor-1.5 document", v.Name)
		}
	}
}

// TestUpdatesApply applies every update; the ones marked
// schema-preserving must keep the document valid.
func TestUpdatesApply(t *testing.T) {
	d := Schema()
	base := GenerateDocument(4, 1)
	for _, u := range Updates() {
		s := xmltree.NewStore()
		root := s.Copy(base.Store, base.Root)
		if err := eval.Update(s, eval.RootEnv(root), u.AST); err != nil {
			t.Errorf("update %s failed: %v", u.Name, err)
			continue
		}
		tree := xmltree.NewTree(s, root)
		if u.PreservesSchema {
			if err := d.Validate(tree); err != nil {
				t.Errorf("update %s should preserve validity: %v", u.Name, err)
			}
		}
	}
}

// TestUpdatesChangeSomething: every benchmark update must actually
// modify some sample document (otherwise it measures nothing).
func TestUpdatesChangeSomething(t *testing.T) {
	docs := SampleDocuments(4, 1.2)
	for _, u := range Updates() {
		changed := false
		for _, doc := range docs {
			before := doc.Store.String(doc.Root)
			s := xmltree.NewStore()
			root := s.Copy(doc.Store, doc.Root)
			if err := eval.Update(s, eval.RootEnv(root), u.AST); err != nil {
				t.Fatalf("update %s: %v", u.Name, err)
			}
			if s.String(root) != before {
				changed = true
				break
			}
		}
		if !changed {
			t.Errorf("update %s is a no-op on all sample documents", u.Name)
		}
	}
}

func TestGroundTruthSanity(t *testing.T) {
	docs := SampleDocuments(3, 1)
	truth, err := GroundTruth(docs)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting a view's own target must be recorded dependent.
	mustDep := [][2]string{
		{"UA1", "A1"}, {"UA2", "A2"}, {"UB3", "B3"},
		{"UP5", "q5"},  // replacing prices changes the price view
		{"UN2", "q14"}, // renaming emph→keyword inside item descriptions can change q14
	}
	for _, p := range mustDep {
		if !truth.IsDependent(p[0], p[1]) {
			t.Errorf("ground truth should mark %s-%s dependent", p[0], p[1])
		}
	}
	// Structurally unrelated pairs stay independent.
	mustIndep := [][2]string{
		{"UI2", "q5"},  // watches vs closed-auction prices
		{"UI1", "q1"},  // mailbox mails vs person names
		{"UP1", "q18"}, // emailaddresses vs current prices
	}
	for _, p := range mustIndep {
		if truth.IsDependent(p[0], p[1]) {
			t.Errorf("ground truth wrongly marks %s-%s dependent", p[0], p[1])
		}
	}
	// Every update must have at least one dependent view (the workload
	// was designed to touch queried regions) and at least one
	// independent view.
	for _, u := range Updates() {
		dep := 0
		for _, v := range Views() {
			if truth.IsDependent(u.Name, v.Name) {
				dep++
			}
		}
		if dep == 0 {
			t.Errorf("update %s has no dependent view", u.Name)
		}
		if dep == len(Views()) {
			t.Errorf("update %s dependent on every view", u.Name)
		}
		if got := truth.IndependentPairs(u.Name); got != len(Views())-dep {
			t.Errorf("IndependentPairs(%s) = %d, want %d", u.Name, got, len(Views())-dep)
		}
	}
}

func TestSchemaTextStable(t *testing.T) {
	if !strings.Contains(SchemaText, "closed_auction") || !strings.Contains(SchemaText, "parlist") {
		t.Errorf("schema text lost key types")
	}
}
