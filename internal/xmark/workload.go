package xmark

import (
	"fmt"
	"sync"

	"xqindep/internal/xquery"
)

// View is one named benchmark query.
type View struct {
	Name string
	Text string
	AST  xquery.Query
}

// Upd is one named benchmark update.
type Upd struct {
	Name string
	Text string
	AST  xquery.Update
	// PreservesSchema records whether applying the update keeps
	// documents valid (the paper notes several delete-updates do not;
	// the analysis stays correct for them since deletions create no
	// new chains).
	PreservesSchema bool
}

// xpathMarkA are the downward-only XPathMark view paths A1–A8
// (re-authored structural forms; see the package comment).
var xpathMarkA = []string{
	// A1: the canonical deep path.
	"/site/closed_auctions/closed_auction/annotation/description/text/keyword",
	// A2: unanchored descendant search.
	"//closed_auction//keyword",
	// A3: anchored prefix, descendant suffix.
	"/site/closed_auctions/closed_auction//keyword",
	// A4: predicate on a deep downward path.
	"/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date",
	// A5: predicate with descendant axis.
	"/site/closed_auctions/closed_auction[descendant::keyword]/date",
	// A6: conjunctive predicate.
	"/site/people/person[profile/gender and profile/age]/name",
	// A7: disjunctive predicate.
	"/site/people/person[phone or homepage]/name",
	// A8: nested boolean predicate.
	"/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name",
}

// xpathMarkB are the B1–B8 views: upward and horizontal axes.
var xpathMarkB = []string{
	// B1: parent test through a wildcard.
	"/site/regions/*/item[parent::namerica or parent::samerica]/name",
	// B2: ancestor axis from a recursive type.
	"//keyword/ancestor::listitem/text/keyword",
	// B3: following siblings among bidders.
	"/site/open_auctions/open_auction/bidder[following-sibling::bidder]",
	// B4: preceding siblings among bidders.
	"/site/open_auctions/open_auction/bidder[preceding-sibling::bidder]",
	// B5: horizontal navigation among items.
	"/site/regions/*/item[following-sibling::item]/name",
	// B6: ancestor-or-self from recursive markup.
	"//keyword/ancestor-or-self::text",
	// B7: upward then downward.
	"//person/profile/age/../../name",
	// B8: predicate combining horizontal and vertical steps.
	"/site/open_auctions/open_auction[bidder/following-sibling::bidder]/interval",
}

// xmarkQueries are structural re-authorings of XMark q1–q20 in the
// supported fragment: value joins become structural pairs, aggregates
// and functions are reduced to the paths they traverse (the same
// rewriting discipline as the paper's testbed).
var xmarkQueries = []string{
	// q1: a person's name (id selection dropped).
	"/site/people/person/name",
	// q2: bidder increases wrapped in new elements.
	"for $b in /site/open_auctions/open_auction/bidder return <increase>{$b/increase/text()}</increase>",
	// q3: auctions with more than one bid (positional → structural).
	"for $a in /site/open_auctions/open_auction return if ($a/bidder/following-sibling::bidder) then <auction>{$a/current}</auction> else ()",
	// q4: auctions where some bidder exists, reporting the reserve.
	"for $a in /site/open_auctions/open_auction return if ($a/bidder/personref) then <history>{$a/reserve/text()}</history> else ()",
	// q5: closed auction prices (count → path).
	"/site/closed_auctions/closed_auction/price",
	// q6: all items per region (count → path).
	"/site/regions//item",
	// q7: site-wide piece counts (three paths).
	"(//description, //annotation, //emailaddress)",
	// q8: people with their credit data (join dropped).
	"for $p in /site/people/person return if ($p/creditcard) then <buyer>{$p/name/text()}</buyer> else ()",
	// q9: people with watches and their names.
	"for $p in /site/people/person return if ($p/watches/watch) then <watcher>{$p/name}</watcher> else ()",
	// q10: person summaries (grouping dropped).
	"for $p in /site/people/person return <personne>{($p/name, $p/emailaddress, $p/profile/education)}</personne>",
	// q11: open auctions with an initial price (value join dropped).
	"for $a in /site/open_auctions/open_auction return if ($a/initial) then <bidding>{$a/initial/text()}</bidding> else ()",
	// q12: like q11 restricted to reserves.
	"for $a in /site/open_auctions/open_auction return if ($a/reserve) then <offer>{$a/reserve/text()}</offer> else ()",
	// q13: australian items with name and description.
	"for $i in /site/regions/australia/item return <item>{($i/name, $i/description)}</item>",
	// q14: items whose description mentions a keyword (contains → structural).
	"for $i in //item return if ($i/description//keyword) then $i/name else ()",
	// q15: the long downward path through nested parlists.
	"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	// q16: sellers of auctions with deeply structured annotations.
	"for $a in /site/closed_auctions/closed_auction return if ($a/annotation/description/parlist/listitem) then $a/seller else ()",
	// q17: people without a homepage.
	"for $p in /site/people/person return if (not($p/homepage)) then <person>{$p/name}</person> else ()",
	// q18: current prices (function application dropped).
	"/site/open_auctions/open_auction/current",
	// q19: item names with locations (sort dropped).
	"for $i in //item return <listing>{($i/name, $i/location)}</listing>",
	// q20: profile demographics buckets (counts → paths).
	"(//profile[age], //profile[education], //profile[gender])",
}

// updateTexts defines the 31 updates: UA/UB delete the XPathMark
// views' targets, UI/UN/UP cover inserts, renames and replaces over
// all document regions, including the mutually recursive markup types.
var updateTexts = []struct {
	name            string
	text            string
	preservesSchema bool
}{
	// UA1-UA8: delete the A-paths. Several violate the schema
	// (mandatory children are removed), as in the paper.
	{"UA1", "delete " + xpathMarkA[0], false},
	{"UA2", "delete " + xpathMarkA[1], false},
	{"UA3", "delete " + xpathMarkA[2], false},
	{"UA4", "delete " + xpathMarkA[3], false},
	{"UA5", "delete " + xpathMarkA[4], false},
	{"UA6", "delete " + xpathMarkA[5], false},
	{"UA7", "delete " + xpathMarkA[6], false},
	{"UA8", "delete " + xpathMarkA[7], false},
	// UB1-UB8: delete the B-paths.
	{"UB1", "delete " + xpathMarkB[0], false},
	{"UB2", "delete " + xpathMarkB[1], false},
	{"UB3", "delete " + xpathMarkB[2], true}, // bidder* is starred
	{"UB4", "delete " + xpathMarkB[3], true},
	{"UB5", "delete " + xpathMarkB[4], false},
	{"UB6", "delete " + xpathMarkB[5], false},
	{"UB7", "delete " + xpathMarkB[6], false},
	{"UB8", "delete " + xpathMarkB[7], false},
	// UI1-UI5: inserts into starred content, validity-preserving.
	{"UI1", "for $m in //item/mailbox return insert <mail><from>x</from><to>y</to><date>d</date><text>hi</text></mail> into $m", true},
	{"UI2", "for $w in //person/watches return insert <watch/> into $w", true},
	{"UI3", "for $p in //annotation/description/parlist return insert <listitem><text>note</text></listitem> into $p", true},
	{"UI4", "for $t in //item/description/text return insert <keyword>hot</keyword> into $t", true},
	{"UI5", "insert <person><name>newbie</name><emailaddress>n</emailaddress></person> as last into /site/people", true},
	// UN1-UN5: renames within the mixed-content family (the only
	// label changes that keep the schema satisfied), scoped to
	// different document regions.
	{"UN1", "for $x in //closed_auction//bold return rename $x as emph", true},
	{"UN2", "for $x in //item//emph return rename $x as keyword", true},
	{"UN3", "for $x in //category//keyword return rename $x as bold", true},
	{"UN4", "for $x in //mail/text/bold return rename $x as keyword", true},
	{"UN5", "for $x in //open_auction//emph return rename $x as bold", true},
	// UP1-UP5: validity-preserving replaces across regions.
	{"UP1", "for $x in //person/emailaddress return replace $x with <emailaddress>new</emailaddress>", true},
	{"UP2", "for $x in //open_auction/current return replace $x with <current>0</current>", true},
	{"UP3", "for $x in //annotation/happiness return replace $x with <happiness>10</happiness>", true},
	{"UP4", "for $x in //item/location return replace $x with <location>here</location>", true},
	{"UP5", "for $x in //closed_auction/price return replace $x with <price>1</price>", true},
}

var (
	workloadOnce sync.Once
	views        []View
	updates      []Upd
)

func mustBuildWorkload() {
	add := func(name, text string) {
		ast, err := xquery.ParseQuery(text)
		if err != nil {
			panic(fmt.Sprintf("xmark: view %s does not parse: %v", name, err))
		}
		views = append(views, View{Name: name, Text: text, AST: ast})
	}
	for i, t := range xmarkQueries {
		add(fmt.Sprintf("q%d", i+1), t)
	}
	for i, t := range xpathMarkA {
		add(fmt.Sprintf("A%d", i+1), t)
	}
	for i, t := range xpathMarkB {
		add(fmt.Sprintf("B%d", i+1), t)
	}
	for _, u := range updateTexts {
		ast, err := xquery.ParseUpdate(u.text)
		if err != nil {
			panic(fmt.Sprintf("xmark: update %s does not parse: %v", u.name, err))
		}
		updates = append(updates, Upd{Name: u.name, Text: u.text, AST: ast, PreservesSchema: u.preservesSchema})
	}
}

// Views returns the 36 benchmark views in order q1–q20, A1–A8, B1–B8.
func Views() []View {
	workloadOnce.Do(mustBuildWorkload)
	return views
}

// Updates returns the 31 benchmark updates in order UA1–8, UB1–8,
// UI1–5, UN1–5, UP1–5.
func Updates() []Upd {
	workloadOnce.Do(mustBuildWorkload)
	return updates
}

// ViewByName returns the named view, or false.
func ViewByName(name string) (View, bool) {
	for _, v := range Views() {
		if v.Name == name {
			return v, true
		}
	}
	return View{}, false
}

// UpdateByName returns the named update, or false.
func UpdateByName(name string) (Upd, bool) {
	for _, u := range Updates() {
		if u.Name == name {
			return u, true
		}
	}
	return Upd{}, false
}
