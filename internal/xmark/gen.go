package xmark

import (
	"fmt"
	"math/rand"

	"xqindep/internal/xmltree"
)

// Generator builds pseudo-random valid XMark auction documents. It is
// the substitute for the original xmlgen tool: entity counts grow
// linearly with Factor, like xmlgen's scaling factor.
type Generator struct {
	// Factor scales entity counts; 1.0 yields a document in the
	// hundred-kilobyte range, 10 in the megabyte range.
	Factor float64
	// Rng drives all choices; required.
	Rng *rand.Rand
}

// Generate builds one document into a fresh store.
func (g *Generator) Generate() xmltree.Tree {
	s := xmltree.NewStore()
	b := &builder{s: s, rng: g.Rng}
	n := func(base int) int {
		v := int(float64(base) * g.Factor)
		if v < 1 {
			v = 1
		}
		return v
	}

	site := b.el("site")
	// regions: six continents with items. The first item overall is
	// deterministically "rich" (full mailbox markup, textual
	// description with keywords) so that every benchmark view and
	// update has witnesses at any scale factor.
	regions := b.el("regions")
	s.AppendChild(site, regions)
	for ci, cont := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
		c := b.el(cont)
		s.AppendChild(regions, c)
		for i := 0; i < n(4); i++ {
			s.AppendChild(c, b.item(ci == 0 && i == 0))
		}
	}
	// categories.
	cats := b.el("categories")
	s.AppendChild(site, cats)
	for i := 0; i < n(5); i++ {
		cat := b.el("category")
		s.AppendChild(cats, cat)
		s.AppendChild(cat, b.textEl("name"))
		if i == 0 {
			// Guaranteed keyword inside a category description.
			d := b.el("description")
			s.AppendChild(cat, d)
			txt := b.el("text")
			s.AppendChild(d, txt)
			kw := b.el("keyword")
			s.AppendChild(txt, kw)
			s.AppendChild(kw, s.NewText(b.word()))
		} else {
			s.AppendChild(cat, b.description(2))
		}
	}
	// catgraph.
	graph := b.el("catgraph")
	s.AppendChild(site, graph)
	for i := 0; i < n(3); i++ {
		s.AppendChild(graph, b.el("edge"))
	}
	// people: the first person carries every optional part.
	people := b.el("people")
	s.AppendChild(site, people)
	for i := 0; i < n(10); i++ {
		s.AppendChild(people, b.person(i == 0))
	}
	// open auctions: the first one has two bidders (horizontal-axis
	// views) and a privacy flag.
	opens := b.el("open_auctions")
	s.AppendChild(site, opens)
	for i := 0; i < n(6); i++ {
		s.AppendChild(opens, b.openAuction(i == 0))
	}
	// closed auctions: the first one carries the deep q15 annotation
	// chain annotation/description/parlist/listitem/parlist/listitem/
	// text/emph/keyword; the second a guaranteed flat
	// annotation/description/text/keyword (the A1 path). n(5) ≥ 1, so
	// at factor < 0.4 the deep variant wins.
	closed := b.el("closed_auctions")
	s.AppendChild(site, closed)
	for i := 0; i < n(5); i++ {
		s.AppendChild(closed, b.closedAuction(i))
	}
	return xmltree.NewTree(s, site)
}

type builder struct {
	s   *xmltree.Store
	rng *rand.Rand
}

func (b *builder) el(tag string) xmltree.Loc { return b.s.NewElement(tag) }

func (b *builder) word() string {
	words := []string{"summer", "river", "auction", "golden", "market", "paper",
		"stone", "quiet", "yellow", "harbor", "cedar", "violet", "copper", "prairie"}
	return words[b.rng.Intn(len(words))]
}

func (b *builder) textEl(tag string) xmltree.Loc {
	el := b.el(tag)
	b.s.AppendChild(el, b.s.NewText(b.word()))
	return el
}

func (b *builder) number(tag string) xmltree.Loc {
	el := b.el(tag)
	b.s.AppendChild(el, b.s.NewText(fmt.Sprintf("%d", b.rng.Intn(1000))))
	return el
}

// markup builds the recursive mixed-content family rooted at one of
// text/bold/keyword/emph, to the given depth.
func (b *builder) markup(tag string, depth int) xmltree.Loc {
	el := b.el(tag)
	parts := 1 + b.rng.Intn(3)
	for i := 0; i < parts; i++ {
		if depth > 0 && b.rng.Intn(3) == 0 {
			kids := []string{"bold", "keyword", "emph"}
			b.s.AppendChild(el, b.markup(kids[b.rng.Intn(3)], depth-1))
		} else {
			b.s.AppendChild(el, b.s.NewText(b.word()))
		}
	}
	return el
}

// description builds (text | parlist), recursing through parlist and
// listitem to the given depth.
func (b *builder) description(depth int) xmltree.Loc {
	d := b.el("description")
	if depth > 0 && b.rng.Intn(2) == 0 {
		b.s.AppendChild(d, b.parlist(depth-1))
	} else {
		b.s.AppendChild(d, b.markup("text", depth))
	}
	return d
}

func (b *builder) parlist(depth int) xmltree.Loc {
	pl := b.el("parlist")
	items := 1 + b.rng.Intn(2)
	for i := 0; i < items; i++ {
		li := b.el("listitem")
		b.s.AppendChild(pl, li)
		if depth > 0 && b.rng.Intn(2) == 0 {
			b.s.AppendChild(li, b.parlist(depth-1))
		} else {
			b.s.AppendChild(li, b.markup("text", depth))
		}
	}
	return pl
}

func (b *builder) item(rich bool) xmltree.Loc {
	it := b.el("item")
	b.s.AppendChild(it, b.textEl("location"))
	b.s.AppendChild(it, b.number("quantity"))
	b.s.AppendChild(it, b.textEl("name"))
	b.s.AppendChild(it, b.textEl("payment"))
	if rich {
		// Guaranteed item/description/text with keyword and emph.
		d := b.el("description")
		b.s.AppendChild(it, d)
		txt := b.el("text")
		b.s.AppendChild(d, txt)
		kw := b.el("keyword")
		b.s.AppendChild(txt, kw)
		b.s.AppendChild(kw, b.s.NewText(b.word()))
		em := b.el("emph")
		b.s.AppendChild(txt, em)
		b.s.AppendChild(em, b.s.NewText(b.word()))
	} else {
		b.s.AppendChild(it, b.description(2))
	}
	b.s.AppendChild(it, b.textEl("shipping"))
	for i := 0; i <= b.rng.Intn(2); i++ {
		b.s.AppendChild(it, b.el("incategory"))
	}
	mb := b.el("mailbox")
	b.s.AppendChild(it, mb)
	mails := b.rng.Intn(3)
	if rich {
		mails = 1
	}
	for i := 0; i < mails; i++ {
		m := b.el("mail")
		b.s.AppendChild(mb, m)
		b.s.AppendChild(m, b.textEl("from"))
		b.s.AppendChild(m, b.textEl("to"))
		b.s.AppendChild(m, b.textEl("date"))
		if rich && i == 0 {
			// Guaranteed mail/text/bold (update UN4's target).
			txt := b.el("text")
			b.s.AppendChild(m, txt)
			bo := b.el("bold")
			b.s.AppendChild(txt, bo)
			b.s.AppendChild(bo, b.s.NewText(b.word()))
		} else {
			b.s.AppendChild(m, b.markup("text", 1))
		}
	}
	return it
}

func (b *builder) person(full bool) xmltree.Loc {
	coin := func() bool { return full || b.rng.Intn(2) == 0 }
	p := b.el("person")
	b.s.AppendChild(p, b.textEl("name"))
	b.s.AppendChild(p, b.textEl("emailaddress"))
	if coin() {
		b.s.AppendChild(p, b.textEl("phone"))
	}
	if coin() {
		a := b.el("address")
		b.s.AppendChild(p, a)
		b.s.AppendChild(a, b.textEl("street"))
		b.s.AppendChild(a, b.textEl("city"))
		b.s.AppendChild(a, b.textEl("country"))
		if coin() {
			b.s.AppendChild(a, b.textEl("province"))
		}
		b.s.AppendChild(a, b.textEl("zipcode"))
	}
	if coin() {
		b.s.AppendChild(p, b.textEl("homepage"))
	}
	if coin() {
		b.s.AppendChild(p, b.textEl("creditcard"))
	}
	if coin() {
		pr := b.el("profile")
		b.s.AppendChild(p, pr)
		for i := 0; i < b.rng.Intn(3); i++ {
			b.s.AppendChild(pr, b.el("interest"))
		}
		if coin() {
			b.s.AppendChild(pr, b.textEl("education"))
		}
		if coin() {
			b.s.AppendChild(pr, b.textEl("gender"))
		}
		b.s.AppendChild(pr, b.textEl("business"))
		if coin() {
			b.s.AppendChild(pr, b.number("age"))
		}
	}
	if coin() {
		w := b.el("watches")
		b.s.AppendChild(p, w)
		n := b.rng.Intn(3)
		if full && n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			b.s.AppendChild(w, b.el("watch"))
		}
	}
	return p
}

func (b *builder) openAuction(first bool) xmltree.Loc {
	a := b.el("open_auction")
	b.s.AppendChild(a, b.number("initial"))
	if first || b.rng.Intn(2) == 0 {
		b.s.AppendChild(a, b.number("reserve"))
	}
	bidders := b.rng.Intn(4)
	if first {
		bidders = 2
	}
	for i := 0; i < bidders; i++ {
		bd := b.el("bidder")
		b.s.AppendChild(a, bd)
		b.s.AppendChild(bd, b.textEl("date"))
		b.s.AppendChild(bd, b.textEl("time"))
		b.s.AppendChild(bd, b.el("personref"))
		b.s.AppendChild(bd, b.number("increase"))
	}
	b.s.AppendChild(a, b.number("current"))
	if first || b.rng.Intn(2) == 0 {
		b.s.AppendChild(a, b.textEl("privacy"))
	}
	b.s.AppendChild(a, b.el("itemref"))
	b.s.AppendChild(a, b.el("seller"))
	b.s.AppendChild(a, b.annotation(false))
	b.s.AppendChild(a, b.number("quantity"))
	b.s.AppendChild(a, b.textEl("type"))
	iv := b.el("interval")
	b.s.AppendChild(a, iv)
	b.s.AppendChild(iv, b.textEl("start"))
	b.s.AppendChild(iv, b.textEl("end"))
	return a
}

func (b *builder) annotation(deep bool) xmltree.Loc {
	an := b.el("annotation")
	b.s.AppendChild(an, b.el("author"))
	if deep {
		// The q15 chain: description/parlist/listitem/parlist/listitem/
		// text/emph/keyword, plus a direct text/keyword for A1 and a
		// listitem/text/keyword pair for B2.
		d := b.el("description")
		b.s.AppendChild(an, d)
		pl := b.el("parlist")
		b.s.AppendChild(d, pl)
		li := b.el("listitem")
		b.s.AppendChild(pl, li)
		pl2 := b.el("parlist")
		b.s.AppendChild(li, pl2)
		li2 := b.el("listitem")
		b.s.AppendChild(pl2, li2)
		txt := b.el("text")
		b.s.AppendChild(li2, txt)
		em := b.el("emph")
		b.s.AppendChild(txt, em)
		kw := b.el("keyword")
		b.s.AppendChild(em, kw)
		b.s.AppendChild(kw, b.s.NewText(b.word()))
		kw2 := b.el("keyword")
		b.s.AppendChild(txt, kw2)
		b.s.AppendChild(kw2, b.s.NewText(b.word()))
		bo := b.el("bold")
		b.s.AppendChild(txt, bo)
		b.s.AppendChild(bo, b.s.NewText(b.word()))
	} else if b.rng.Intn(4) != 0 {
		b.s.AppendChild(an, b.description(2))
	}
	b.s.AppendChild(an, b.number("happiness"))
	return an
}

// closedAuction builds one closed auction; index 0 gets the deep
// parlist annotation (the q15 chain), index 1 a guaranteed flat
// text/keyword annotation (the A1 path), the rest are random.
func (b *builder) closedAuction(index int) xmltree.Loc {
	a := b.el("closed_auction")
	b.s.AppendChild(a, b.el("seller"))
	b.s.AppendChild(a, b.el("buyer"))
	b.s.AppendChild(a, b.el("itemref"))
	b.s.AppendChild(a, b.number("price"))
	b.s.AppendChild(a, b.textEl("date"))
	b.s.AppendChild(a, b.number("quantity"))
	b.s.AppendChild(a, b.textEl("type"))
	switch {
	case index == 0:
		b.s.AppendChild(a, b.annotation(true))
	case index == 1:
		an := b.el("annotation")
		b.s.AppendChild(a, an)
		b.s.AppendChild(an, b.el("author"))
		d := b.el("description")
		b.s.AppendChild(an, d)
		txt := b.el("text")
		b.s.AppendChild(d, txt)
		kw := b.el("keyword")
		b.s.AppendChild(txt, kw)
		b.s.AppendChild(kw, b.s.NewText(b.word()))
		b.s.AppendChild(an, b.number("happiness"))
	case b.rng.Intn(3) != 0:
		b.s.AppendChild(a, b.annotation(false))
	}
	return a
}

// GenerateDocument is the convenience wrapper used by benchmarks:
// a deterministic document at the given scale factor.
func GenerateDocument(seed int64, factor float64) xmltree.Tree {
	g := &Generator{Factor: factor, Rng: rand.New(rand.NewSource(seed))}
	return g.Generate()
}
