// Package xmark provides the benchmark substrate of the paper's
// evaluation (Section 6.2): the XMark auction schema, a scalable
// generator of valid auction documents, the 36 views (XMark q1–q20
// and XPathMark A1–A8/B1–B8 rewritten into the supported fragment)
// and the 31 updates (UA1–8, UB1–8, UI1–5, UN1–5, UP1–5).
//
// The exact rewritten expression texts used by the paper live in its
// unavailable technical report; the expressions here are re-authored
// from the public XMark/XPathMark definitions under the same rewriting
// rules (disjunctive predicates, no attributes, paths extracted from
// functions and arithmetic) and with the same axis profile: A-views
// use downward axes only, B-views also use upward and horizontal axes.
package xmark

import (
	"sync"

	"xqindep/internal/dtd"
)

// SchemaText is the XMark auction DTD with attribute declarations
// dropped (the paper's rewriting removes attribute use). It matches
// the published auction.dtd structure: the recursive description
// markup (text/bold/keyword/emph and parlist/listitem) forms the two
// mutually recursive cliques of size 3 and 2 the paper highlights.
const SchemaText = `
<!ELEMENT site            (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT categories      (category+)>
<!ELEMENT category        (name, description)>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT description     (text | parlist)>
<!ELEMENT text            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword         (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist         (listitem)*>
<!ELEMENT listitem        (text | parlist)*>
<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            EMPTY>
<!ELEMENT regions         (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>
<!ELEMENT item            (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT incategory      EMPTY>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>
<!ELEMENT people          (person*)>
<!ELEMENT person          (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, province?, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT province        (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (interest*, education?, gender?, business, age?)>
<!ELEMENT interest        EMPTY>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           EMPTY>
<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT personref       EMPTY>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT privacy         (#PCDATA)>
<!ELEMENT itemref         EMPTY>
<!ELEMENT seller          EMPTY>
<!ELEMENT annotation      (author, description?, happiness)>
<!ELEMENT author          EMPTY>
<!ELEMENT happiness       (#PCDATA)>
<!ELEMENT type            (#PCDATA)>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer           EMPTY>
<!ELEMENT price           (#PCDATA)>
`

var (
	schemaOnce sync.Once
	schema     *dtd.DTD
)

// Schema returns the parsed XMark DTD (parsed once).
func Schema() *dtd.DTD {
	schemaOnce.Do(func() {
		schema = dtd.MustParse(SchemaText)
	})
	return schema
}
