package infer

import (
	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/xquery"
)

// This file extends the chain framework from query-update independence
// to update-update commutativity — the problem of Ghelli, Rose and
// Siméon (the paper's citation [15]). Two updates commute when
// applying them in either order produces the same document on every
// valid input.
//
// The sufficient condition mirrors Definition 4.1, applied twice, with
// the reads of an update split in three classes:
//
//   - selection reads: return chains of target and binding queries —
//     the nodes the update picks to act on;
//   - observation reads: condition chains and every used chain — what
//     the update's control flow inspects;
//   - source reads: return chains of insert/replace sources, whose
//     entire subtrees are copied.
//
// Writes of one update conflict with selection and observation reads
// of the other under the used-chain rule (changes at or above the read
// node, or new nodes appearing along the changed branch), and with
// source reads under full prefix comparability (a change anywhere in a
// copied subtree matters). Writes conflict with writes when their full
// chains are prefix-comparable — except that two delete-only updates
// always converge (removing overlapping regions is order-insensitive),
// so for such pairs only observation reads are checked.

// UpdateReads classifies the chains an update reads.
type UpdateReads struct {
	Selection   *chain.Set
	Observation *chain.Set
	Source      *chain.Set
}

// Reads infers the classified read chains of u.
func (in *Inferrer) Reads(g Env, u xquery.Update) UpdateReads {
	out := UpdateReads{Selection: chain.NewSet(), Observation: chain.NewSet(), Source: chain.NewSet()}
	var walk func(g Env, u xquery.Update)
	target := func(g Env, q xquery.Query) {
		qc := in.Query(g, q)
		out.Selection.AddAll(qc.Ret)
		out.Observation.AddAll(qc.Used)
	}
	walk = func(g Env, u xquery.Update) {
		switch n := u.(type) {
		case xquery.UEmpty:
		case xquery.USeq:
			walk(g, n.Left)
			walk(g, n.Right)
		case xquery.UIf:
			qc := in.Query(g, n.Cond)
			out.Observation.AddAll(qc.Ret)
			out.Observation.AddAll(qc.Used)
			walk(g, n.Then)
			walk(g, n.Else)
		case xquery.UFor:
			c1 := in.Query(g, n.In)
			out.Selection.AddAll(c1.Ret)
			out.Observation.AddAll(c1.Used)
			walk(g.Bind(n.Var, chain.Union(c1.Ret, c1.Elem)), n.Body)
		case xquery.ULet:
			c1 := in.Query(g, n.Bind)
			out.Selection.AddAll(c1.Ret)
			out.Observation.AddAll(c1.Used)
			walk(g.Bind(n.Var, chain.Union(c1.Ret, c1.Elem)), n.Body)
		case xquery.Delete:
			target(g, n.Target)
		case xquery.Rename:
			target(g, n.Target)
		case xquery.Insert:
			target(g, n.Target)
			sc := in.Query(g, n.Source)
			out.Source.AddAll(sc.Ret)
			out.Observation.AddAll(sc.Used)
		case xquery.Replace:
			target(g, n.Target)
			sc := in.Query(g, n.Source)
			out.Source.AddAll(sc.Ret)
			out.Observation.AddAll(sc.Used)
		}
	}
	walk(g, u)
	return out
}

// isDeleteOnly reports whether u performs only deletions.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func isDeleteOnly(u xquery.Update) bool {
	switch n := u.(type) {
	case xquery.UEmpty, xquery.Delete:
		return true
	case xquery.USeq:
		return isDeleteOnly(n.Left) && isDeleteOnly(n.Right)
	case xquery.UIf:
		return isDeleteOnly(n.Then) && isDeleteOnly(n.Else)
	case xquery.UFor:
		return isDeleteOnly(n.Body)
	case xquery.ULet:
		return isDeleteOnly(n.Body)
	default:
		return false
	}
}

// CommuteVerdict reports the outcome of a commutativity check.
type CommuteVerdict struct {
	Commute   bool
	Conflicts []Conflict
	K         int
}

// CheckCommutativity decides whether u1 and u2 commute under this
// inferrer's k-chain universe.
func (in *Inferrer) CheckCommutativity(u1, u2 xquery.Update) CommuteVerdict {
	g := in.RootEnv()
	w1 := in.Update(g, u1)
	w2 := in.Update(g, u2)
	r1 := in.Reads(g, u1)
	r2 := in.Reads(g, u2)
	bothDelete := isDeleteOnly(u1) && isDeleteOnly(u2)

	var conflicts []Conflict
	check := func(w *UpdateSet, r UpdateReads) {
		conflicts = append(conflicts, usedRuleConflicts(w, r.Observation)...)
		if !bothDelete {
			conflicts = append(conflicts, usedRuleConflicts(w, r.Selection)...)
			conflicts = append(conflicts, symmetricConflicts(w, r.Source)...)
		}
	}
	check(w1, r2)
	check(w2, r1)
	if !bothDelete {
		f1, f2 := w1.FullChains(), w2.FullChains()
		for _, p := range chain.Conflicts(f1, f2) {
			conflicts = append(conflicts, Conflict{Kind: RetInUpdate, Pair: p})
		}
		for _, p := range chain.Conflicts(f2, f1) {
			conflicts = append(conflicts, Conflict{Kind: RetInUpdate, Pair: p})
		}
	}
	return CommuteVerdict{Commute: len(conflicts) == 0, Conflicts: conflicts, K: in.K}
}

// usedRuleConflicts applies the used-chain conflict rule between write
// chains and read chains (see CheckIndependence).
func usedRuleConflicts(w *UpdateSet, reads *chain.Set) []Conflict {
	var out []Conflict
	for _, wc := range w.Chains() {
		f := wc.Full()
		for _, rc := range reads.Chains() {
			switch {
			case f.IsPrefixOf(rc):
				out = append(out, Conflict{Kind: UpdateInUsed, Pair: chain.ConflictPair{Left: f, Right: rc}})
			case rc.IsPrefixOf(f) && rc.Len() > wc.Target.Len():
				out = append(out, Conflict{Kind: UpdateInUsed, Pair: chain.ConflictPair{Left: rc, Right: f}})
			}
		}
	}
	return out
}

// symmetricConflicts reports any prefix comparability (for copied
// source subtrees).
func symmetricConflicts(w *UpdateSet, reads *chain.Set) []Conflict {
	var out []Conflict
	for _, wc := range w.Chains() {
		f := wc.Full()
		for _, rc := range reads.Chains() {
			if f.IsPrefixOf(rc) || rc.IsPrefixOf(f) {
				out = append(out, Conflict{Kind: UpdateInUsed, Pair: chain.ConflictPair{Left: f, Right: rc}})
			}
		}
	}
	return out
}

// Commutativity is the package-level convenience: k is derived from
// both updates (ku1 + ku2, at least 1).
func Commutativity(d *dtd.DTD, u1, u2 xquery.Update) CommuteVerdict {
	k := KUpdate(u1) + KUpdate(u2)
	if k < 1 {
		k = 1
	}
	in := New(d, k)
	return in.CheckCommutativity(u1, u2)
}
