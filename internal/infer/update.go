package infer

import (
	"fmt"
	"sort"

	"xqindep/internal/chain"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// UpdateSet is a set of update chains c:c' keyed by their printed
// form.
type UpdateSet struct {
	m map[string]chain.UpdateChain
}

// NewUpdateSet builds a set from the given update chains.
func NewUpdateSet(chains ...chain.UpdateChain) *UpdateSet {
	s := &UpdateSet{m: make(map[string]chain.UpdateChain, len(chains))}
	for _, c := range chains {
		s.Add(c)
	}
	return s
}

// Add inserts u.
func (s *UpdateSet) Add(u chain.UpdateChain) {
	if s.m == nil {
		s.m = make(map[string]chain.UpdateChain)
	}
	s.m[u.String()] = u
}

// AddAll inserts every chain of t.
func (s *UpdateSet) AddAll(t *UpdateSet) {
	for _, u := range t.m {
		s.Add(u)
	}
}

// Len returns the number of update chains.
func (s *UpdateSet) Len() int { return len(s.m) }

// Chains returns the update chains sorted by printed form.
func (s *UpdateSet) Chains() []chain.UpdateChain {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]chain.UpdateChain, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Strings returns the sorted printed forms.
func (s *UpdateSet) Strings() []string {
	cs := s.Chains()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// FullChains returns the set { c.c' | c:c' ∈ s } used by the conflict
// checks of Definition 4.1.
func (s *UpdateSet) FullChains() *chain.Set {
	out := chain.NewSet()
	for _, u := range s.m {
		out.Add(u.Full())
	}
	return out
}

// Update infers the update chains of u under Γ, implementing Table 2
// (with the full rule set for composite updates from the technical
// report).
//
// One deviation from the published Table 2: the third component of
// (REPLACE) is printed there as { c:c' | c ∈ r0, c' ∈ e }, which types
// constructed replacement elements *below* the replaced node. Since
// replacement elements take the place of the target — they become
// children of the target's *parent* — the sound reading (matching
// (INSERT-2), which handles the same before/after placement) is
// { c:c' | c.α ∈ r0, c' ∈ e }, and that is what this implementation
// uses. The differential soundness tests in package core exercise
// exactly this case (replace with a constructor vs a query returning
// the new tag).
func (in *Inferrer) Update(g Env, u xquery.Update) *UpdateSet {
	in.B.Tick()
	switch n := u.(type) {
	case xquery.UEmpty:
		return NewUpdateSet()
	case xquery.USeq:
		out := in.Update(g, n.Left)
		out.AddAll(in.Update(g, n.Right))
		return out
	case xquery.UIf:
		// Conditions do not change data; their chains do not enter U.
		out := in.Update(g, n.Then)
		out.AddAll(in.Update(g, n.Else))
		return out
	case xquery.UFor:
		// Like (FOR): the body runs once per returned input node and
		// once per constructed item of the binding query.
		c1 := in.Query(g, n.In)
		out := NewUpdateSet()
		for _, c := range chain.Union(c1.Ret, c1.Elem).Chains() {
			in.B.Tick()
			out.AddAll(in.Update(g.Bind(n.Var, chain.NewSet(c)), n.Body))
		}
		return out
	case xquery.ULet:
		c1 := in.Query(g, n.Bind)
		return in.Update(g.Bind(n.Var, chain.Union(c1.Ret, c1.Elem)), n.Body)
	case xquery.Delete:
		// (DELETE): U = { c:α | c.α ∈ r0 }.
		r0 := in.Query(g, n.Target).Ret
		out := NewUpdateSet()
		for _, c := range r0.Chains() {
			if c.Len() >= 1 {
				out.Add(chain.NewUpdate(c.Parent(), chain.New(c.Last())))
			}
		}
		return out
	case xquery.Rename:
		// (RENAME): U = { c:α | c.α ∈ r0 } ∪ { c:b | c.α ∈ r0 }.
		r0 := in.Query(g, n.Target).Ret
		out := NewUpdateSet()
		for _, c := range r0.Chains() {
			if c.Len() >= 1 {
				out.Add(chain.NewUpdate(c.Parent(), chain.New(c.Last())))
				out.Add(chain.NewUpdate(c.Parent(), chain.New(n.As)))
			}
		}
		return out
	case xquery.Insert:
		src := in.Query(g, n.Source)
		r0 := in.Query(g, n.Target).Ret
		out := NewUpdateSet()
		for _, tc := range r0.Chains() {
			// The prefix typing the node whose content changes: the
			// target itself for into-positions (INSERT-1), its parent
			// for before/after (INSERT-2).
			prefix := tc
			if !n.Pos.IsInto() {
				if tc.Len() < 2 {
					continue // inserting beside the root: no parent
				}
				prefix = tc.Parent()
			}
			in.addSourceChains(out, prefix, src)
		}
		return out
	case xquery.Replace:
		src := in.Query(g, n.Source)
		r0 := in.Query(g, n.Target).Ret
		out := NewUpdateSet()
		for _, tc := range r0.Chains() {
			if tc.Len() < 1 {
				continue
			}
			prefix := tc.Parent()
			// Removal of the target node.
			out.Add(chain.NewUpdate(prefix, chain.New(tc.Last())))
			// Insertion of the source under the target's parent.
			in.addSourceChains(out, prefix, src)
		}
		return out
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("infer: unknown update node %T", u)})
	}
}

// addSourceChains adds the update chains typing source content placed
// under prefix: { prefix : c' | c' ∈ e } for constructed elements and
// { prefix : α.c” | c'.α ∈ r, c'.α.c” ∈ C } for copied input nodes.
func (in *Inferrer) addSourceChains(out *UpdateSet, prefix chain.Chain, src QueryChains) {
	for _, ec := range src.Elem.Chains() {
		out.Add(chain.NewUpdate(prefix, ec))
	}
	for _, rc := range src.Ret.Chains() {
		for _, ext := range in.Extensions(rc) {
			suffix := ext[rc.Len()-1:] // α.c''
			out.Add(chain.NewUpdate(prefix, suffix))
		}
	}
}
