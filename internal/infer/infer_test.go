package infer

import (
	"reflect"
	"testing"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/xquery"
)

// The three schemas used throughout the paper's prose.
var (
	figure1 = dtd.MustParse(`
doc <- (a | b)*
a <- c
b <- c
c <- ()
`)
	bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)
	d1 = dtd.MustParse(`
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`)
)

func retChains(t *testing.T, d *dtd.DTD, k int, query string) []string {
	t.Helper()
	in := New(d, k)
	return in.Query(in.RootEnv(), xquery.MustParseQuery(query)).Ret.Strings()
}

func TestStepChainsFigure1(t *testing.T) {
	in := New(figure1, 1)
	root := in.RootChain()
	// AC(doc, child) = {doc.a, doc.b}.
	got := in.TC(in.AC(root, xquery.Child), xquery.AnyNode())
	want := []string{"doc.a", "doc.b"}
	var gs []string
	for _, c := range got {
		gs = append(gs, c.String())
	}
	if !reflect.DeepEqual(gs, want) {
		t.Errorf("child chains = %v, want %v", gs, want)
	}
	// Descendant closure.
	desc := chain.NewSet(in.AC(root, xquery.Descendant)...)
	for _, w := range []string{"doc.a", "doc.b", "doc.a.c", "doc.b.c"} {
		if !desc.Contains(chain.MustParseChain(w)) {
			t.Errorf("descendant chains missing %s (got %v)", w, desc)
		}
	}
	if desc.Len() != 4 {
		t.Errorf("descendant chains = %v", desc)
	}
	// Upward.
	c := chain.MustParseChain("doc.a.c")
	if got := in.AC(c, xquery.Parent); len(got) != 1 || got[0].String() != "doc.a" {
		t.Errorf("parent = %v", got)
	}
	if got := in.AC(c, xquery.Ancestor); len(got) != 2 {
		t.Errorf("ancestors = %v", got)
	}
	if got := in.AC(in.RootChain(), xquery.Parent); got != nil {
		t.Errorf("root parent = %v, want none", got)
	}
	if got := in.AC(c, xquery.AncestorOrSelf); len(got) != 3 {
		t.Errorf("ancestor-or-self = %v", got)
	}
}

func TestSiblingChains(t *testing.T) {
	// DTD d = {a ← (b+, c*)} from Section 3.2's (STEPUH) example.
	d := dtd.MustParse("a <- b+, c*\nb <- ()\nc <- ()")
	in := New(d, 1)
	b := chain.MustParseChain("a.b")
	var got []string
	for _, c := range in.AC(b, xquery.FollowingSibling) {
		got = append(got, c.String())
	}
	if !reflect.DeepEqual(got, []string{"a.b", "a.c"}) {
		t.Errorf("following siblings of a.b = %v", got)
	}
	cC := chain.MustParseChain("a.c")
	got = nil
	for _, c := range in.AC(cC, xquery.PrecedingSibling) {
		got = append(got, c.String())
	}
	if !reflect.DeepEqual(got, []string{"a.b", "a.c"}) {
		t.Errorf("preceding siblings of a.c = %v", got)
	}
	// Root has no siblings.
	if got := in.AC(chain.MustParseChain("a"), xquery.FollowingSibling); got != nil {
		t.Errorf("root siblings = %v", got)
	}
}

// TestStepUHUsedChains replays Section 3.2: for d = {a ← (b+, c*)} and
// query /a/b/following-sibling::c, a.b is a used chain and a.c a
// return chain.
func TestStepUHUsedChains(t *testing.T) {
	d := dtd.MustParse("a <- b+, c*\nb <- ()\nc <- ()")
	in := New(d, 1)
	qc := in.Query(in.RootEnv(), xquery.MustParseQuery("/a/b/following-sibling::c"))
	if !reflect.DeepEqual(qc.Ret.Strings(), []string{"a.c"}) {
		t.Errorf("return = %v", qc.Ret)
	}
	if !qc.Used.Contains(chain.MustParseChain("a.b")) {
		t.Errorf("used = %v, want a.b", qc.Used)
	}
}

func TestQueryChainsPaperIntro(t *testing.T) {
	// q1 = //a//c over Figure 1's DTD: the single return chain doc.a.c.
	if got := retChains(t, figure1, 2, "//a//c"); !reflect.DeepEqual(got, []string{"doc.a.c"}) {
		t.Errorf("//a//c chains = %v", got)
	}
	// q2 = //title over the bib DTD: bib.book.title.
	if got := retChains(t, bib, 2, "//title"); !reflect.DeepEqual(got, []string{"bib.book.title"}) {
		t.Errorf("//title chains = %v", got)
	}
}

func TestUpdateChainsPaperIntro(t *testing.T) {
	// u1 = delete //b//c over Figure 1's DTD: doc.b:c.
	in := New(figure1, 2)
	u1 := in.Update(in.RootEnv(), xquery.MustParseUpdate("delete //b//c"))
	if !reflect.DeepEqual(u1.Strings(), []string{"doc.b:c"}) {
		t.Errorf("u1 chains = %v", u1.Strings())
	}
	// u2 over bib: insert <author/> into every book: bib.book:author.
	in2 := New(bib, 2)
	u2 := in2.Update(in2.RootEnv(), xquery.MustParseUpdate("for $x in //book return insert <author/> into $x"))
	if !reflect.DeepEqual(u2.Strings(), []string{"bib.book:author"}) {
		t.Errorf("u2 chains = %v", u2.Strings())
	}
}

// TestNestedElementChains replays Section 3's nested-constructor
// example: inserting <author><first>..</first><second>..</second></author>
// yields update chains bib.book:author.first.S and
// bib.book:author.second.S.
func TestNestedElementChains(t *testing.T) {
	in := New(bib, 3)
	u := xquery.MustParseUpdate(
		"for $x in //book return insert <author><first>Umberto</first><second>Eco</second></author> into $x")
	got := in.Update(in.RootEnv(), u).Strings()
	want := []string{"bib.book:author.first.S", "bib.book:author.second.S"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("update chains = %v, want %v", got, want)
	}
}

// TestElementChainExample replays the <r1>(x/a, <r2>x/b</r2>)</r1>
// example of Section 3.2 over a small schema: element chains r1.a...
// and r1.r2.b..., and crucially NOT r1.b....
func TestElementChainExample(t *testing.T) {
	d := dtd.MustParse("root <- a, b\na <- ()\nb <- ()")
	in := New(d, 2)
	q := xquery.MustParseQuery("for $x in /root return <r1>{($x/a, <r2>{$x/b}</r2>)}</r1>")
	qc := in.Query(in.RootEnv(), q)
	if !qc.Elem.Contains(chain.MustParseChain("r1.a")) {
		t.Errorf("element chains missing r1.a: %v", qc.Elem)
	}
	if !qc.Elem.Contains(chain.MustParseChain("r1.r2.b")) {
		t.Errorf("element chains missing r1.r2.b: %v", qc.Elem)
	}
	if qc.Elem.Contains(chain.MustParseChain("r1.b")) {
		t.Errorf("wrong element chain r1.b produced: %v", qc.Elem)
	}
	// Return chains of an element query are empty; content chains
	// become used.
	if qc.Ret.Len() != 0 {
		t.Errorf("element query has return chains: %v", qc.Ret)
	}
	if !qc.Used.Contains(chain.MustParseChain("root.a")) || !qc.Used.Contains(chain.MustParseChain("root.b")) {
		t.Errorf("used chains = %v", qc.Used)
	}
}

// TestForFiltering replays the (FOR) filtering example: for x in
// //node() return if x/b then x/a infers used chains only for nodes
// leading to an a or b child.
func TestForFiltering(t *testing.T) {
	d := dtd.MustParse(`
root <- x*, y*
x <- a?, b?
y <- z?
a <- ()
b <- ()
z <- ()
`)
	in := New(d, 2)
	q := xquery.MustParseQuery("for $v in //node() return if ($v/b) then $v/a else ()")
	qc := in.Query(in.RootEnv(), q)
	// Exactly as the paper's prose: the only used chain leads to the b
	// node tested by the condition. The binding chain root.x itself is
	// subsumed by the return chain root.x.a, and the unproductive
	// root.y / root.y.z iterations are filtered entirely.
	if !reflect.DeepEqual(qc.Used.Strings(), []string{"root.x.b"}) {
		t.Errorf("used chains = %v, want {root.x.b}", qc.Used)
	}
	if !reflect.DeepEqual(qc.Ret.Strings(), []string{"root.x.a"}) {
		t.Errorf("return chains = %v", qc.Ret)
	}
}

func TestRecursiveChainInference(t *testing.T) {
	// Section 5: for /r/a/b/f/a over d1 with k=2 the chain
	// r.a.b.f.a is inferred.
	if got := retChains(t, d1, 2, "/r/a/b/f/a"); !reflect.DeepEqual(got, []string{"r.a.b.f.a"}) {
		t.Errorf("/r/a/b/f/a chains = %v", got)
	}
	// With k=1 the chain has two a's and cannot be produced.
	if got := retChains(t, d1, 1, "/r/a/b/f/a"); len(got) != 0 {
		t.Errorf("k=1 chains = %v, want none", got)
	}
	// /descendant::b/descendant::c/descendant::e over d1: the shortest
	// chain r.a.b.f.a.c.f.a.e is a 3-chain (Section 5).
	got3 := retChains(t, d1, 3, "/descendant::b/descendant::c/descendant::e")
	found := false
	for _, c := range got3 {
		if c == "r.a.b.f.a.c.f.a.e" {
			found = true
		}
	}
	if !found {
		t.Errorf("k=3 chains missing r.a.b.f.a.c.f.a.e: %v", got3)
	}
	// With k=1 nothing is inferred for this path.
	if got := retChains(t, d1, 1, "/descendant::b/descendant::c/descendant::e"); len(got) != 0 {
		t.Errorf("k=1 produced %v", got)
	}
}

func TestKValuesFromPaper(t *testing.T) {
	queryCases := []struct {
		q    string
		want int
	}{
		{"/r/a/b/f/a", 2},                                 // max tag frequency 2 (a twice)
		{"/r/a/b/f/a/parent::f", 2},                       // same
		{"/r/a/b/f/*", 2},                                 // wildcard counts for any label
		{"/descendant::b/descendant::c/descendant::e", 3}, // 3 recursive steps
		{"/descendant::b/a/b", 2},                         // 1 + 1
		{"/descendant::b/ancestor::c", 2},
		{"/descendant::c/following-sibling::b", 2},
		{"//a//c", 3},                                               // 2 recursive (//) + frequency 1
		{"for $x in /a/a return for $y in /a/b return ($x, $y)", 3}, // paper: F(a)=3
		{"()", 0},
		{`"s"`, 0},
	}
	for _, c := range queryCases {
		if got := KQuery(xquery.MustParseQuery(c.q)); got != c.want {
			t.Errorf("KQuery(%q) = %d, want %d", c.q, got, c.want)
		}
	}
	updateCases := []struct {
		u    string
		want int
	}{
		// Section 5's element-construction example: ku = 3.
		{"for $x in /a/b return insert <b><b><c/></b></b> into $x", 3},
		{"delete /descendant::c", 1},
		{"rename /a/b as b", 2}, // b step + renamed-to b
		{"rename /a/b as z", 1},
	}
	for _, c := range updateCases {
		if got := KUpdate(xquery.MustParseUpdate(c.u)); got != c.want {
			t.Errorf("KUpdate(%q) = %d, want %d", c.u, got, c.want)
		}
	}
	// KPair sums and clamps.
	q := xquery.MustParseQuery("/descendant::b")
	u := xquery.MustParseUpdate("delete /descendant::c")
	if got := KPair(q, u); got != 2 {
		t.Errorf("KPair = %d, want 2", got)
	}
	if got := KPair(xquery.MustParseQuery("()"), xquery.MustParseUpdate("()")); got != 1 {
		t.Errorf("KPair((),()) = %d, want 1", got)
	}
}

// TestKPairTable pins the exported pair multiplicity every engine
// derives k through (Table 3): kq + ku, clamped to at least 1, with
// either side optional for single-sided analyses.
func TestKPairTable(t *testing.T) {
	cases := []struct {
		name string
		q    string // "" = nil side
		u    string // "" = nil side
		want int
	}{
		{"both flat", "/r/a/b", "delete /r/a", 2},
		{"tag frequency sums", "/r/a/b/f/a", "rename /a/b as b", 4},
		{"recursive both sides", "/descendant::b/descendant::c", "delete /descendant::c", 3},
		{"construction example", "/a/b", "for $x in /a/b return insert <b><b><c/></b></b> into $x", 4},
		{"empty pair clamps", "()", "()", 1},
		{"query only", "//a//c", "", 3},
		{"update only", "", "delete /descendant::c", 1},
		{"nil pair clamps", "", "", 1},
	}
	for _, c := range cases {
		var q xquery.Query
		var u xquery.Update
		if c.q != "" {
			q = xquery.MustParseQuery(c.q)
		}
		if c.u != "" {
			u = xquery.MustParseUpdate(c.u)
		}
		if got := KPair(q, u); got != c.want {
			t.Errorf("%s: KPair(%q, %q) = %d, want %d", c.name, c.q, c.u, got, c.want)
		}
	}
}

func TestIndependencePaperExamples(t *testing.T) {
	cases := []struct {
		name string
		d    *dtd.DTD
		q    string
		u    string
		want bool
	}{
		{"q1-u1", figure1, "//a//c", "delete //b//c", true},
		{"q1-u1-dep", figure1, "//a//c", "delete //a//c", false},
		{"q2-u2", bib, "//title", "for $x in //book return insert <author/> into $x", true},
		// Composed element chains (bib.book:author.first.S, ...) let the
		// analysis conclude independence here: the inserted author has
		// no email child, so //author/email is unaffected (Section 3).
		{"author-email", bib, "//author/email",
			"for $x in //book return insert <author><first>U</first><last>E</last></author> into $x", true},
		{"author-first-dependent", bib, "//author/first",
			"for $x in //book return insert <author><first>U</first></author> into $x", false},
		{"author-dependent", bib, "//author",
			"for $x in //book return insert <author><first>U</first></author> into $x", false},
		{"email-safe", bib, "//title",
			"for $x in //author return insert <email/> into $x", true},
		{"delete-book", bib, "//title", "delete //book", false},
		{"rename-into-query-space", figure1, "//a", "rename /doc/b as a", false},
		{"rename-away", figure1, "//a", "rename /doc/b as z", true},
		// The Section 5 motivation: query and update on descendants
		// of each other in a recursive schema.
		{"recursive-dependent", d1, "/descendant::b", "delete /descendant::c", false},
		{"recursive-independent", d1, "/r/a/e", "delete /r/a/b", true},
	}
	for _, c := range cases {
		q := xquery.MustParseQuery(c.q)
		u := xquery.MustParseUpdate(c.u)
		v := Independence(c.d, q, u)
		if v.Independent != c.want {
			t.Errorf("%s: Independent = %v, want %v (k=%d, conflicts %v, q-chains r=%v v=%v, u-chains %v)",
				c.name, v.Independent, c.want, v.K, v.Conflicts, v.Query.Ret, v.Query.Used, v.Update.Strings())
		}
	}
}

// TestReplaceRuleSoundness pins the corrected (REPLACE) rule: a
// replacement constructor creates nodes at the target's position, so
// a query selecting the new tag must conflict.
func TestReplaceRuleSoundness(t *testing.T) {
	d := dtd.MustParse("r <- (a | b)*\na <- ()\nb <- ()")
	q := xquery.MustParseQuery("//b")
	u := xquery.MustParseUpdate("for $x in /r/a return replace $x with <b/>")
	// NB: replace with multi-node target is a runtime error per node;
	// the for-loop replaces each a separately, which is fine.
	v := Independence(d, q, u)
	if v.Independent {
		t.Errorf("replace-with-constructor must conflict with //b; chains %v vs %v",
			v.Query.Ret, v.Update.Strings())
	}
	// And the removal side: replacing a conflicts with //a.
	v2 := Independence(d, xquery.MustParseQuery("//a"), u)
	if v2.Independent {
		t.Errorf("replace removes a nodes; //a must conflict")
	}
	// But an untouched sibling tag is independent... there is none in
	// this schema; extend it.
	d2 := dtd.MustParse("r <- (a | b | c)*\na <- ()\nb <- ()\nc <- ()")
	v3 := Independence(d2, xquery.MustParseQuery("//c"), u)
	if !v3.Independent {
		t.Errorf("//c is untouched by replace a->b: %v", v3.Conflicts)
	}
}

func TestInsertBeforeAfterChains(t *testing.T) {
	// insert <n/> before /doc/a/c: the change happens under doc.a.
	d := dtd.MustParse("doc <- a*\na <- c, n?\nc <- ()\nn <- ()")
	in := New(d, 2)
	u := in.Update(in.RootEnv(), xquery.MustParseUpdate("for $x in //c return insert <n/> before $x"))
	if !reflect.DeepEqual(u.Strings(), []string{"doc.a:n"}) {
		t.Errorf("before-insert chains = %v", u.Strings())
	}
	// Inserting beside the root is impossible: no chains.
	u2 := in.Update(in.RootEnv(), xquery.MustParseUpdate("insert <n/> after /doc"))
	if u2.Len() != 0 {
		t.Errorf("insert after root produced %v", u2.Strings())
	}
}

func TestInsertCopiedSourceChains(t *testing.T) {
	// Inserting existing title nodes (with their text subtrees) into
	// books: chains must cover the copied subtree.
	in := New(bib, 2)
	u := in.Update(in.RootEnv(),
		xquery.MustParseUpdate("for $x in //book return insert $x/title into $x"))
	got := u.Strings()
	want := []string{"bib.book:title", "bib.book:title.S"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("copied-source chains = %v, want %v", got, want)
	}
}

func TestLetAndIfChains(t *testing.T) {
	in := New(bib, 2)
	q := xquery.MustParseQuery("let $b := //book return if ($b/price) then $b/title else ()")
	qc := in.Query(in.RootEnv(), q)
	if !reflect.DeepEqual(qc.Ret.Strings(), []string{"bib.book.title"}) {
		t.Errorf("ret = %v", qc.Ret)
	}
	// let converts r1 to used; the if-condition return chains are used.
	for _, w := range []string{"bib.book", "bib.book.price"} {
		if !qc.Used.Contains(chain.MustParseChain(w)) {
			t.Errorf("used missing %s: %v", w, qc.Used)
		}
	}
}

func TestUnboundVariableChains(t *testing.T) {
	in := New(bib, 1)
	qc := in.Query(in.RootEnv(), xquery.Step{Var: "$zz", Axis: xquery.Child, Test: xquery.AnyNode()})
	if qc.Ret.Len() != 0 || qc.Used.Len() != 0 {
		t.Errorf("unbound variable produced chains")
	}
}

func TestEDTDChainInference(t *testing.T) {
	// Two types share the label "name": chains distinguish them, and a
	// tag test selects both.
	d := dtd.MustParse(`
start db
db <- person*, company*
person <- pname
company <- cname
pname[name] <- first
cname[name] <- #PCDATA
first <- #PCDATA
`)
	in := New(d, 1)
	qc := in.Query(in.RootEnv(), xquery.MustParseQuery("//name"))
	want := []string{"db.company.cname", "db.person.pname"}
	if !reflect.DeepEqual(qc.Ret.Strings(), want) {
		t.Errorf("EDTD //name chains = %v, want %v", qc.Ret.Strings(), want)
	}
	// Queries through one context are independent from updates in the
	// other, even though labels coincide.
	q := xquery.MustParseQuery("for $p in //person return $p/name")
	u := xquery.MustParseUpdate("for $c in //company return delete $c/name")
	if v := Independence(d, q, u); !v.Independent {
		t.Errorf("EDTD context separation failed: %v", v.Conflicts)
	}
}

func TestUpdateSetBasics(t *testing.T) {
	s := NewUpdateSet(chain.MustParseUpdateChain("a:b"), chain.MustParseUpdateChain("a:b"), chain.MustParseUpdateChain("a:c"))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if !reflect.DeepEqual(s.Strings(), []string{"a:b", "a:c"}) {
		t.Errorf("Strings = %v", s.Strings())
	}
	full := s.FullChains()
	if !full.Contains(chain.MustParseChain("a.b")) || !full.Contains(chain.MustParseChain("a.c")) {
		t.Errorf("FullChains = %v", full)
	}
}
