package infer

import (
	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Inferrer performs chain inference for a fixed DTD over the finite
// universe Ck_d of k-chains (Section 5). For non-recursive schemas
// every chain of Cd is a 1-chain, so any K ≥ 1 makes the analysis
// exact (the "infinite" analysis of Section 4).
type Inferrer struct {
	D *dtd.DTD
	// C is the compiled form of D (from the shared compilation cache);
	// nil when compilation failed (e.g. the alphabet overflows SymID),
	// in which case the slower per-call DTD lookups serve as fallback.
	C *dtd.Compiled
	// K is the tag-multiplicity bound: inference only produces chains
	// in which every tag occurs at most K times.
	K int
	// B, when non-nil, bounds the number of materialised chains and
	// the wall-clock time; this engine is exponential in the worst
	// case, so the budget is its only defense against pathological
	// recursive schemas.
	B *guard.Budget
}

// New builds an inferrer; k is clamped to at least 1.
func New(d *dtd.DTD, k int) *Inferrer {
	if k < 1 {
		k = 1
	}
	c, _ := dtd.Compile(d)
	return &Inferrer{D: d, C: c, K: k}
}

// NewBudget builds an inferrer charging b (nil means unlimited).
func NewBudget(d *dtd.DTD, k int, b *guard.Budget) *Inferrer {
	in := New(d, k)
	in.B = b
	return in
}

// RootChain is the chain {sd} typing the document root, the initial
// binding Γ = {x ↦ ds}.
func (in *Inferrer) RootChain() chain.Chain { return chain.New(in.D.Start) }

// canExtend reports whether appending sym keeps the chain a K-chain.
func (in *Inferrer) canExtend(c chain.Chain, sym string) bool {
	if sym == dtd.StringType {
		return true // S never repeats along a chain (it is always last)
	}
	n := 0
	for _, s := range c {
		if s == sym {
			n++
		}
	}
	return n < in.K
}

// childChains returns { c.α ∈ Ck | α child type of last(c) }. Every
// materialised chain is charged to the budget: chain counts are what
// explode on recursive schemas.
func (in *Inferrer) childChains(c chain.Chain) []chain.Chain {
	if c.IsEmpty() {
		return nil
	}
	var out []chain.Chain
	for _, beta := range in.D.ChildTypes(c.Last()) {
		if in.canExtend(c, beta) {
			out = append(out, c.Extend(beta))
		}
	}
	in.B.AddChains(len(out))
	return out
}

// descChains returns { c.c' ∈ Ck | c' ≠ ε } by depth-first extension.
func (in *Inferrer) descChains(c chain.Chain) []chain.Chain {
	var out []chain.Chain
	stack := in.childChains(c)
	for len(stack) > 0 {
		in.B.Tick()
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		stack = append(stack, in.childChains(x)...)
	}
	return out
}

// Extensions returns { c.c' ∈ Ck } including c itself (the paper's τ̄
// operator applied to a single chain).
func (in *Inferrer) Extensions(c chain.Chain) []chain.Chain {
	return append([]chain.Chain{c}, in.descChains(c)...)
}

// ExtendSet computes τ̄ = { c.c' | c ∈ τ, c.c' ∈ Ck }.
func (in *Inferrer) ExtendSet(t *chain.Set) *chain.Set {
	out := chain.NewSet()
	for _, c := range t.Chains() {
		for _, e := range in.Extensions(c) {
			out.Add(e)
		}
	}
	return out
}

// AC implements axis chain inference (Section 3.1) for one context
// chain. Upward results never include the empty chain: a node typed by
// a single-symbol chain is the document root, which has no parent.
func (in *Inferrer) AC(c chain.Chain, axis xquery.Axis) []chain.Chain {
	switch axis {
	case xquery.Self:
		return []chain.Chain{c}
	case xquery.Child:
		return in.childChains(c)
	case xquery.Descendant:
		return in.descChains(c)
	case xquery.DescendantOrSelf:
		return in.Extensions(c)
	case xquery.Parent:
		if c.Len() >= 2 {
			return []chain.Chain{c.Parent()}
		}
		return nil
	case xquery.Ancestor:
		var out []chain.Chain
		for p := c; p.Len() >= 2; {
			p = p.Parent()
			out = append(out, p)
		}
		return out
	case xquery.AncestorOrSelf:
		out := []chain.Chain{c}
		for p := c; p.Len() >= 2; {
			p = p.Parent()
			out = append(out, p)
		}
		return out
	case xquery.FollowingSibling:
		return in.siblingChains(c, false)
	case xquery.PrecedingSibling:
		return in.siblingChains(c, true)
	default:
		panic(&guard.InternalError{Value: "infer: unknown axis"})
	}
}

// siblingChains computes AC(c, following/preceding-sibling): chains
// c1.β with c = c1.α and β after (resp. before) α in a word of the
// parent content model d(c1).
func (in *Inferrer) siblingChains(c chain.Chain, preceding bool) []chain.Chain {
	if c.Len() < 2 {
		return nil
	}
	parent := c.Parent()
	alpha := c.Last()
	var sibs []string
	switch {
	// The compiled tables hold the sibling lists presorted; the DTD
	// methods rebuild and resort them on every call.
	case in.C != nil && preceding:
		sibs = in.C.PrecedingSiblingNames(parent.Last(), alpha)
	case in.C != nil:
		sibs = in.C.FollowingSiblingNames(parent.Last(), alpha)
	case preceding:
		sibs = in.D.PrecedingSiblingTypes(parent.Last(), alpha)
	default:
		sibs = in.D.FollowingSiblingTypes(parent.Last(), alpha)
	}
	var out []chain.Chain
	for _, beta := range sibs {
		if in.canExtend(parent, beta) {
			out = append(out, parent.Extend(beta))
		}
	}
	return out
}

// TC implements node-test chain inference: it keeps the chains whose
// last symbol satisfies φ. Tag tests compare the element label
// produced by the type (µ for Extended DTDs).
func (in *Inferrer) TC(cs []chain.Chain, test xquery.NodeTest) []chain.Chain {
	var out []chain.Chain
	for _, c := range cs {
		if c.IsEmpty() {
			continue
		}
		last := c.Last()
		switch test.Kind {
		case xquery.NodeAny:
			out = append(out, c)
		case xquery.TextTest:
			if last == dtd.StringType {
				out = append(out, c)
			}
		case xquery.TagTest:
			if last != dtd.StringType && in.D.LabelOf(last) == test.Tag {
				out = append(out, c)
			}
		case xquery.WildcardTest:
			if last != dtd.StringType {
				out = append(out, c)
			}
		}
	}
	return out
}

// StepChains computes TC(AC(c, axis), φ) for one context chain — the
// chains reached by one XPath step from a node typed c (Lemma 3.1).
func (in *Inferrer) StepChains(c chain.Chain, axis xquery.Axis, test xquery.NodeTest) []chain.Chain {
	return in.TC(in.AC(c, axis), test)
}
