package infer

import (
	"fmt"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// ConflictKind identifies which of the three checks of Definition 4.1
// a conflicting pair violates.
type ConflictKind int

const (
	// RetInUpdate is confl(r, U): an update changes data at or below a
	// node returned by the query.
	RetInUpdate ConflictKind = iota
	// UpdateInRet is confl(U, r): the query returns a node at or below
	// changed data.
	UpdateInRet
	// UpdateInUsed is confl(U, v): the query uses a node at or below
	// changed data.
	UpdateInUsed
)

func (k ConflictKind) String() string {
	switch k {
	case RetInUpdate:
		return "confl(r,U)"
	case UpdateInRet:
		return "confl(U,r)"
	case UpdateInUsed:
		return "confl(U,v)"
	}
	return "?"
}

// Conflict is a witness pair of the dependence decision.
type Conflict struct {
	Kind ConflictKind
	Pair chain.ConflictPair
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s: %s", c.Kind, c.Pair)
}

// Verdict is the outcome of a chain-based independence check,
// including the inferred chain sets for inspection.
type Verdict struct {
	Independent bool
	Conflicts   []Conflict
	Query       QueryChains
	Update      *UpdateSet
	K           int
}

// CheckIndependence decides q ⊥Ck u (Definition 4.1) over this
// inferrer's k-chain universe: independence holds when
// confl(r,U) = confl(U,r) = confl(U,v) = ∅.
//
// An update chain c:c' participates through its full chain c.c' for
// the return-chain checks. For the used-chain check the change suffix
// is read as a *branch*: the update may create (or remove) a node at
// every chain c.c” with ε ≺ c” ⪯ c', so a used chain cv conflicts
// when it is prefix-comparable with c.c' AND extends strictly past the
// target prefix c. Reading Definition 4.1 with full chains only would
// miss intermediate inserted nodes (e.g. the author element of chain
// bib.book:author.first.S flipping an existence condition on
// bib.book.author); Theorem 3.4 types exactly those nodes, and the
// differential soundness test pins this behaviour.
func (in *Inferrer) CheckIndependence(q xquery.Query, u xquery.Update) Verdict {
	qc := in.Query(in.RootEnv(), q)
	uc := in.Update(in.RootEnv(), u)
	in.B.Point("infer.conflict")
	full := uc.FullChains()

	var conflicts []Conflict
	for _, p := range chain.Conflicts(qc.Ret, full) {
		conflicts = append(conflicts, Conflict{Kind: RetInUpdate, Pair: p})
	}
	for _, p := range chain.Conflicts(full, qc.Ret) {
		conflicts = append(conflicts, Conflict{Kind: UpdateInRet, Pair: p})
	}
	for _, w := range uc.Chains() {
		in.B.Tick()
		f := w.Full()
		for _, cv := range qc.Used.Chains() {
			switch {
			case f.IsPrefixOf(cv):
				// Change at or above the used node.
				conflicts = append(conflicts, Conflict{Kind: UpdateInUsed, Pair: chain.ConflictPair{Left: f, Right: cv}})
			case cv.IsPrefixOf(f) && cv.Len() > w.Target.Len():
				// A node typed cv appears on (or vanishes from) the
				// changed branch below the target.
				conflicts = append(conflicts, Conflict{Kind: UpdateInUsed, Pair: chain.ConflictPair{Left: cv, Right: f}})
			}
		}
	}
	return Verdict{
		Independent: len(conflicts) == 0,
		Conflicts:   conflicts,
		Query:       qc,
		Update:      uc,
		K:           in.K,
	}
}

// Independence runs the complete finite analysis of Section 5: it
// derives k = kq + ku from the pair and checks k-chain independence
// over d.
func Independence(d *dtd.DTD, q xquery.Query, u xquery.Update) Verdict {
	in := New(d, KPair(q, u))
	return in.CheckIndependence(q, u)
}

// IndependenceBudget is Independence under a resource budget: the
// engine charges b for every materialised chain and checks the
// deadline cooperatively, aborting via guard.Abort when exhausted
// (recover with guard.Recover or guard.Do at the caller).
func IndependenceBudget(d *dtd.DTD, q xquery.Query, u xquery.Update, b *guard.Budget) Verdict {
	b.Point("infer.chains")
	in := NewBudget(d, KPair(q, u), b)
	return in.CheckIndependence(q, u)
}
