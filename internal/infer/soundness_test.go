package infer

import (
	"math/rand"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// TestSoundnessDifferential validates Theorem 5.1 end-to-end: for a
// corpus of schemas, queries and updates, whenever the finite analysis
// says "independent", executing the update must never change the query
// result on any sampled valid document. (The converse need not hold —
// the analysis is allowed to be conservative.)
func TestSoundnessDifferential(t *testing.T) {
	type corpus struct {
		name    string
		d       *dtd.DTD
		queries []string
		updates []string
	}
	corpora := []corpus{
		{
			name: "figure1",
			d:    figure1,
			queries: []string{
				"//a//c", "//b//c", "//a", "//b", "/doc", "//c",
				"//c/..", "//b/following-sibling::a", "//a/preceding-sibling::b",
				"for $x in //a return <w>{$x/c}</w>",
				"for $v in //node() return if ($v/c) then $v else ()",
				"//c/ancestor::b",
			},
			updates: []string{
				"delete //b//c", "delete //a//c", "delete //b", "delete //c",
				"for $x in //b return rename $x as a",
				"for $x in //b return insert <c/> into $x",
				"for $x in //a/c return insert <c/> after $x",
				"for $x in //a/c return replace $x with <c/>",
				"()",
			},
		},
		{
			name: "bib",
			d:    bib,
			queries: []string{
				"//title", "//author", "//author/email", "//price",
				"//book[price]/title",
				"for $b in //book return if ($b/author) then $b/title else ()",
				"//author/first",
			},
			updates: []string{
				"for $x in //book return insert <author/> into $x",
				"for $x in //book return insert <author><first>U</first><last>E</last></author> into $x",
				"delete //price",
				"delete //author/email",
				"for $x in //book return delete $x/author",
				"for $a in //author return rename $a as author",
				"for $p in //price return replace $p with <price>9</price>",
			},
		},
		{
			name: "recursive-d1",
			d:    d1,
			queries: []string{
				"/descendant::b", "/descendant::g", "/r/a/e", "/r/a/b",
				"/descendant::f/g", "/descendant::b/descendant::g",
			},
			updates: []string{
				"delete /descendant::c",
				"delete /r/a/b",
				"delete /descendant::g",
				"for $x in /descendant::e return delete $x/f",
			},
		},
	}

	rng := rand.New(rand.NewSource(20120827)) // VLDB 2012 started Aug 27
	for _, c := range corpora {
		// Sample documents once per corpus.
		var trees []xmltree.Tree
		for i := 0; i < 12; i++ {
			tr, err := c.d.GenerateTree(rng, 0.6, 7)
			if err != nil {
				t.Fatalf("%s: GenerateTree: %v", c.name, err)
			}
			trees = append(trees, tr)
		}
		for _, qs := range c.queries {
			q := xquery.MustParseQuery(qs)
			for _, us := range c.updates {
				u := xquery.MustParseUpdate(us)
				v := Independence(c.d, q, u)
				if !v.Independent {
					continue
				}
				if i := eval.DependentOnAny(trees, q, u); i >= 0 {
					t.Errorf("%s: UNSOUND: analysis says independent but document %d witnesses dependence\n  q = %s\n  u = %s\n  doc = %s\n  q-chains r=%v v=%v\n  u-chains %v (k=%d)",
						c.name, i, qs, us, trees[i].Store.String(trees[i].Root),
						v.Query.Ret, v.Query.Used, v.Update.Strings(), v.K)
				}
			}
		}
	}
}

// TestPrecisionWitness documents cases where the analysis correctly
// detects independence that the runtime oracle confirms, covering both
// directions on a fixed document set.
func TestPrecisionWitness(t *testing.T) {
	doc := xmltree.MustParse("<bib><book><title>t</title><author><first>f</first></author><price>9</price></book></bib>")
	pairs := []struct {
		q, u string
	}{
		{"//title", "for $x in //book return insert <author/> into $x"},
		{"//title", "delete //price"},
		{"//author/email", "for $x in //book return insert <author><first>U</first></author> into $x"},
	}
	for _, p := range pairs {
		q := xquery.MustParseQuery(p.q)
		u := xquery.MustParseUpdate(p.u)
		v := Independence(bib, q, u)
		if !v.Independent {
			t.Errorf("analysis missed independence for %s vs %s: %v", p.q, p.u, v.Conflicts)
		}
		ok, err := eval.IndependentOn(doc, q, u)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if !ok {
			t.Errorf("oracle contradicts claimed independence for %s vs %s", p.q, p.u)
		}
	}
}
