package infer

import (
	"math/rand"
	"testing"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// TestStepChainCoverage validates Lemma 3.1 (soundness of step
// chains) executably: for every axis and node test, every node an
// XPath step selects on a random valid document is typed by a chain in
// TC(AC(c, axis), φ) for the context node's chain c.
func TestStepChainCoverage(t *testing.T) {
	schemas := []*dtd.DTD{figure1, bib, d1}
	axes := []xquery.Axis{
		xquery.Self, xquery.Child, xquery.Descendant, xquery.DescendantOrSelf,
		xquery.Parent, xquery.Ancestor, xquery.AncestorOrSelf,
		xquery.PrecedingSibling, xquery.FollowingSibling,
	}
	tests := []xquery.NodeTest{xquery.AnyNode(), xquery.Wildcard(), xquery.Text()}
	rng := rand.New(rand.NewSource(31))
	for _, d := range schemas {
		tests := append(tests, xquery.Tag(d.Types[rng.Intn(len(d.Types))]))
		in := New(d, 4) // k=4 covers the recursion the small documents reach
		for trial := 0; trial < 5; trial++ {
			tree, err := d.GenerateTree(rng, 0.55, 6)
			if err != nil {
				t.Fatal(err)
			}
			nu, err := d.TypeAssignment(tree)
			if err != nil {
				t.Fatal(err)
			}
			chains := nodeChains(tree, nu)
			for _, l := range tree.Store.Domain(tree.Root) {
				for _, ax := range axes {
					for _, nt := range tests {
						step := xquery.Step{Var: "$x", Axis: ax, Test: nt}
						got, err := eval.Query(tree.Store, eval.Env{"$x": []xmltree.Loc{l}}, step)
						if err != nil {
							t.Fatal(err)
						}
						if len(got) == 0 {
							continue
						}
						inferred := chain.NewSet(in.StepChains(chains[l], ax, nt)...)
						for _, res := range got {
							if !inferred.Contains(chains[res]) {
								t.Fatalf("Lemma 3.1 violated: step %s::%s from %v selects node typed %v, inferred %v",
									ax, nt, chains[l], chains[res], inferred)
							}
						}
					}
				}
			}
		}
	}
}

// nodeChains computes cσl for every location (Definition 2.2).
func nodeChains(tree xmltree.Tree, nu map[xmltree.Loc]string) map[xmltree.Loc]chain.Chain {
	out := make(map[xmltree.Loc]chain.Chain)
	var walk func(l xmltree.Loc, c chain.Chain)
	walk = func(l xmltree.Loc, c chain.Chain) {
		cur := c.Extend(nu[l])
		out[l] = cur
		for _, k := range tree.Store.Children(l) {
			walk(k, cur)
		}
	}
	walk(tree.Root, nil)
	return out
}

// TestNodeChainsInCd validates Proposition 2.3: the chain of every
// node of a valid document belongs to Cd (consecutive symbols related
// by ⇒d, rooted at sd).
func TestNodeChainsInCd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []*dtd.DTD{figure1, bib, d1} {
		for trial := 0; trial < 8; trial++ {
			tree, err := d.GenerateTree(rng, 0.6, 7)
			if err != nil {
				t.Fatal(err)
			}
			nu, err := d.TypeAssignment(tree)
			if err != nil {
				t.Fatal(err)
			}
			for l, c := range nodeChains(tree, nu) {
				if c[0] != d.Start {
					t.Fatalf("chain %v does not start at %s", c, d.Start)
				}
				for i := 0; i+1 < len(c); i++ {
					if !d.Reaches(c[i], c[i+1]) {
						t.Fatalf("chain %v of node %d breaks ⇒d at %d", c, l, i)
					}
				}
			}
		}
	}
}
