package infer

import (
	"math/rand"
	"testing"

	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

func TestCommutativityBasics(t *testing.T) {
	mustCommute := [][2]string{
		{"delete //author", "delete //price"},
		{"delete //price", "delete //book/price"},
		{"for $b in //book return insert <author/> into $b", "delete //price"},
	}
	for _, p := range mustCommute {
		v := Commutativity(bib, xquery.MustParseUpdate(p[0]), xquery.MustParseUpdate(p[1]))
		if !v.Commute {
			t.Errorf("should commute: %s || %s (conflicts %v)", p[0], p[1], v.Conflicts)
		}
	}
	mustNotCommute := [][2]string{
		// Both insert into the same nodes: order changes sibling order.
		{"for $b in //book return insert <author>a</author> into $b",
			"for $b in //book return insert <author>b</author> into $b"},
		// One deletes what the other's condition reads.
		{"delete //title",
			"for $b in //book return if ($b/title) then delete $b/price else ()"},
		// One inserts what the other deletes.
		{"for $b in //book return insert <author/> into $b", "delete //author"},
	}
	for _, p := range mustNotCommute {
		v := Commutativity(bib, xquery.MustParseUpdate(p[0]), xquery.MustParseUpdate(p[1]))
		if v.Commute {
			t.Errorf("should not commute: %s || %s", p[0], p[1])
		}
	}
}

// TestCommutativityDifferential: whenever the analysis says two
// updates commute, applying them in both orders on random valid
// documents must converge to value-equivalent documents.
func TestCommutativityDifferential(t *testing.T) {
	updates := []string{
		"delete //author",
		"delete //price",
		"delete //book/price",
		"for $b in //book return insert <author/> into $b",
		"for $b in //book return insert <author>x</author> into $b",
		"for $t in //title return rename $t as title",
		"for $b in //book return if ($b/author) then delete $b/price else ()",
		"for $p in //price return replace $p with <price>0</price>",
		"()",
	}
	rng := rand.New(rand.NewSource(4))
	var docs []xmltree.Tree
	for i := 0; i < 6; i++ {
		tr, err := bib.GenerateTree(rng, 0.6, 6)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, tr)
	}
	for i, s1 := range updates {
		for _, s2 := range updates[i:] {
			u1 := xquery.MustParseUpdate(s1)
			u2 := xquery.MustParseUpdate(s2)
			if !Commutativity(bib, u1, u2).Commute {
				continue
			}
			for _, doc := range docs {
				a := applyBoth(t, doc, u1, u2)
				b := applyBoth(t, doc, u2, u1)
				if a == nil || b == nil {
					continue // runtime error in one order: skip
				}
				if !xmltree.ValueEquivalent(a.Store, a.Root, b.Store, b.Root) {
					t.Errorf("UNSOUND commute verdict:\n  u1 = %s\n  u2 = %s\n  u1;u2 = %s\n  u2;u1 = %s",
						s1, s2, a.Store.String(a.Root), b.Store.String(b.Root))
				}
			}
		}
	}
}

func applyBoth(t *testing.T, doc xmltree.Tree, u1, u2 xquery.Update) *xmltree.Tree {
	t.Helper()
	s := xmltree.NewStore()
	root := s.Copy(doc.Store, doc.Root)
	if err := eval.Update(s, eval.RootEnv(root), u1); err != nil {
		return nil
	}
	if err := eval.Update(s, eval.RootEnv(root), u2); err != nil {
		return nil
	}
	tr := xmltree.NewTree(s, root)
	return &tr
}
