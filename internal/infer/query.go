package infer

import (
	"fmt"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Env is the static environment Γ, binding variables to chain sets.
type Env map[string]*chain.Set

// Bind returns a copy of g with v bound to s.
func (g Env) Bind(v string, s *chain.Set) Env {
	out := make(Env, len(g)+1)
	for k, val := range g {
		out[k] = val
	}
	out[v] = s
	return out
}

// RootEnv is the quasi-closed environment Γ = {x ↦ ds}.
func (in *Inferrer) RootEnv() Env {
	return Env{xquery.RootVar: chain.NewSet(in.RootChain())}
}

// QueryChains is the judgement result Γ ⊢C q : (r; v; e) — the
// return, used and element chain sets of Table 1.
type QueryChains struct {
	Ret  *chain.Set
	Used *chain.Set
	Elem *chain.Set
}

func emptyChains() QueryChains {
	return QueryChains{Ret: chain.NewSet(), Used: chain.NewSet(), Elem: chain.NewSet()}
}

// Query infers the chain sets of q under Γ, implementing Table 1.
func (in *Inferrer) Query(g Env, q xquery.Query) QueryChains {
	in.B.Tick()
	switch n := q.(type) {
	case xquery.Empty:
		return emptyChains() // (EMPTY)
	case xquery.StringLit:
		// (TEXT): a new text node, typed by the element chain S.
		out := emptyChains()
		out.Elem.Add(chain.New(dtd.StringType))
		return out
	case xquery.Var:
		// $x abbreviates x/self::node(): return chains are Γ(x).
		out := emptyChains()
		out.Ret.AddAll(g[n.Name])
		return out
	case xquery.Step:
		return in.stepRule(g, n)
	case xquery.Sequence:
		// (CONC)
		l, r := in.Query(g, n.Left), in.Query(g, n.Right)
		return QueryChains{
			Ret:  chain.Union(l.Ret, r.Ret),
			Used: chain.Union(l.Used, r.Used),
			Elem: chain.Union(l.Elem, r.Elem),
		}
	case xquery.If:
		// (IF): condition return chains become used.
		c0 := in.Query(g, n.Cond)
		c1 := in.Query(g, n.Then)
		c2 := in.Query(g, n.Else)
		return QueryChains{
			Ret:  chain.Union(c1.Ret, c2.Ret),
			Used: chain.Union(c0.Used, c1.Used, c2.Used, c0.Ret),
			Elem: chain.Union(c1.Elem, c2.Elem),
		}
	case xquery.For:
		return in.forRule(g, n)
	case xquery.Let:
		// (LET). The binding covers element chains too: when the bound
		// query constructs elements or strings, the variable holds
		// those items and the body still runs — iterating over return
		// chains only would lose the body entirely (caught by the
		// randomized differential test).
		c1 := in.Query(g, n.Bind)
		c2 := in.Query(g.Bind(n.Var, chain.Union(c1.Ret, c1.Elem)), n.Return)
		return QueryChains{
			Ret:  c2.Ret,
			Used: chain.Union(c1.Ret, c1.Used, c2.Used),
			Elem: c2.Elem,
		}
	case xquery.Element:
		return in.elementRule(g, n)
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("infer: unknown query node %T", q)})
	}
}

// stepRule implements (STEPF) and (STEPUH).
func (in *Inferrer) stepRule(g Env, n xquery.Step) QueryChains {
	ctx, ok := g[n.Var]
	if !ok {
		// An unbound variable contributes no chains; the analyzer
		// front-end checks quasi-closedness before inference.
		return emptyChains()
	}
	out := emptyChains()
	if n.Axis.IsForward() {
		// (STEPF): no used chains — return chains extend the context,
		// so every conflict is caught through them.
		for _, c := range ctx.Chains() {
			in.B.Tick()
			for _, rc := range in.StepChains(c, n.Axis, n.Test) {
				out.Ret.Add(rc)
			}
		}
		return out
	}
	// (STEPUH): upward/horizontal (and plain descendant) axes also
	// convert productive context chains to used chains, because the
	// result chains need not contain the context chain as a prefix.
	for _, c := range ctx.Chains() {
		in.B.Tick()
		rc := in.StepChains(c, n.Axis, n.Test)
		for _, r := range rc {
			out.Ret.Add(r)
		}
		if len(rc) > 0 {
			out.Used.Add(c)
		}
	}
	return out
}

// forRule implements (FOR): iterate the body once per return chain of
// the binding query, filtering out iterations that produce nothing.
//
// A productive binding chain c becomes used — except when it is
// subsumed: if the body constructs no elements and every return chain
// extends c, any update chain that is a prefix of c is also a prefix
// of those returns, so confl(U,r) already covers what confl(U,v) on c
// would add. This keeps pure navigation (desugared multi-step paths)
// from flooding the used set, matching the paper's treatment of paths
// by composed (STEPF) steps — see the //node() filtering example of
// Section 3.2.
func (in *Inferrer) forRule(g Env, n xquery.For) QueryChains {
	c1 := in.Query(g, n.In)
	out := emptyChains()
	out.Used.AddAll(c1.Used)
	// Bindings iterate over returned input nodes AND constructed
	// items: a for over an element or string query still executes its
	// body once per constructed item.
	for _, c := range chain.Union(c1.Ret, c1.Elem).Chains() {
		in.B.Tick()
		body := in.Query(g.Bind(n.Var, chain.NewSet(c)), n.Return)
		out.Ret.AddAll(body.Ret)
		out.Elem.AddAll(body.Elem)
		if body.Ret.IsEmpty() && body.Elem.IsEmpty() {
			continue // unproductive iteration: fully filtered
		}
		out.Used.AddAll(body.Used)
		if !body.Elem.IsEmpty() || !allExtend(c, body.Ret) {
			out.Used.Add(c)
		}
	}
	return out
}

// allExtend reports whether every chain of s has c as a prefix.
func allExtend(c chain.Chain, s *chain.Set) bool {
	for _, r := range s.Chains() {
		if !c.IsPrefixOf(r) {
			return false
		}
	}
	return true
}

// elementRule implements (ELT): constructed chains start at the new
// tag; return chains of the content become used (with their subtree
// extension r̄, preserving the "entire subtree" reading).
func (in *Inferrer) elementRule(g Env, n xquery.Element) QueryChains {
	inner := in.Query(g, n.Content)
	out := emptyChains()
	// e0 part 1: { a.α.c' | c.α ∈ r, c.α.c' ∈ C }.
	for _, rc := range inner.Ret.Chains() {
		for _, ext := range in.Extensions(rc) {
			suffix := ext[rc.Len()-1:] // α.c'
			out.Elem.Add(chain.New(n.Tag).Concat(suffix))
		}
	}
	// e0 part 2: { a.c | c ∈ e } — nested constructors compose.
	for _, ec := range inner.Elem.Chains() {
		out.Elem.Add(chain.New(n.Tag).Concat(ec))
	}
	// e0 part 3: { a } when the content contributes nothing.
	if inner.Ret.IsEmpty() && inner.Elem.IsEmpty() {
		out.Elem.Add(chain.New(n.Tag))
	}
	// Used: r̄ ∪ v.
	out.Used = chain.Union(in.ExtendSet(inner.Ret), inner.Used)
	return out
}
