// Package infer implements the paper's static chain inference: the
// step rules AC/TC (Section 3.1), the query rules of Table 1, the
// update rules of Table 2, and the multiplicity functions F and R of
// Table 3 that bound the finite analysis (Section 5).
//
// This package is the direct, auditable transcription of the calculus
// over explicit chain sets; it is exponential in the worst case
// (footnote 8 of the paper). Package cdag provides the polynomial
// production engine; both are cross-validated in tests.
package infer

import (
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// FQuery computes F(a, q) of Table 3: the frequency of tag a in the
// query, where node() and * steps stand for any label.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func FQuery(a string, q xquery.Query) int {
	switch n := q.(type) {
	case xquery.Empty, xquery.StringLit, xquery.Var:
		return 0
	case xquery.Step:
		if n.Axis.IsRecursive() {
			return 0
		}
		if testCountsFor(a, n.Test) {
			return 1
		}
		return 0
	case xquery.Sequence:
		return maxInt(FQuery(a, n.Left), FQuery(a, n.Right))
	case xquery.If:
		return maxInt(FQuery(a, n.Cond), maxInt(FQuery(a, n.Then), FQuery(a, n.Else)))
	case xquery.For:
		return FQuery(a, n.In) + FQuery(a, n.Return)
	case xquery.Let:
		return FQuery(a, n.Bind) + FQuery(a, n.Return)
	case xquery.Element:
		f := FQuery(a, n.Content)
		if n.Tag == a {
			f++
		}
		return f
	default:
		panic(&guard.InternalError{Value: "infer: unknown query node"})
	}
}

// testCountsFor reports φ ∈ {a, node()}: whether the node test can
// select an element labelled a.
func testCountsFor(a string, t xquery.NodeTest) bool {
	switch t.Kind {
	case xquery.TagTest:
		return t.Tag == a
	case xquery.NodeAny, xquery.WildcardTest:
		return true
	default: // text()
		return false
	}
}

// RQuery computes R(q) of Table 3: the number of recursive-axis
// steps, summed across iteration and maximised across alternatives.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func RQuery(q xquery.Query) int {
	switch n := q.(type) {
	case xquery.Empty, xquery.StringLit, xquery.Var:
		return 0
	case xquery.Step:
		if n.Axis.IsRecursive() {
			return 1
		}
		return 0
	case xquery.Sequence:
		return maxInt(RQuery(n.Left), RQuery(n.Right))
	case xquery.If:
		return maxInt(RQuery(n.Cond), maxInt(RQuery(n.Then), RQuery(n.Else)))
	case xquery.For:
		return RQuery(n.In) + RQuery(n.Return)
	case xquery.Let:
		return RQuery(n.Bind) + RQuery(n.Return)
	case xquery.Element:
		return RQuery(n.Content)
	default:
		panic(&guard.InternalError{Value: "infer: unknown query node"})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// queryTags collects every tag syntactically relevant to F: tag tests
// and constructed-element tags.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func queryTags(q xquery.Query, out map[string]bool) {
	switch n := q.(type) {
	case xquery.Step:
		if n.Test.Kind == xquery.TagTest {
			out[n.Test.Tag] = true
		} else if n.Test.Kind == xquery.NodeAny || n.Test.Kind == xquery.WildcardTest {
			out["*"] = true
		}
	case xquery.Sequence:
		queryTags(n.Left, out)
		queryTags(n.Right, out)
	case xquery.If:
		queryTags(n.Cond, out)
		queryTags(n.Then, out)
		queryTags(n.Else, out)
	case xquery.For:
		queryTags(n.In, out)
		queryTags(n.Return, out)
	case xquery.Let:
		queryTags(n.Bind, out)
		queryTags(n.Return, out)
	case xquery.Element:
		out[n.Tag] = true
		queryTags(n.Content, out)
	}
}

//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func updateTags(u xquery.Update, out map[string]bool) {
	switch n := u.(type) {
	case xquery.USeq:
		updateTags(n.Left, out)
		updateTags(n.Right, out)
	case xquery.UIf:
		queryTags(n.Cond, out)
		updateTags(n.Then, out)
		updateTags(n.Else, out)
	case xquery.UFor:
		queryTags(n.In, out)
		updateTags(n.Body, out)
	case xquery.ULet:
		queryTags(n.Bind, out)
		updateTags(n.Body, out)
	case xquery.Delete:
		queryTags(n.Target, out)
	case xquery.Insert:
		queryTags(n.Source, out)
		queryTags(n.Target, out)
	case xquery.Replace:
		queryTags(n.Target, out)
		queryTags(n.Source, out)
	case xquery.Rename:
		queryTags(n.Target, out)
		out[n.As] = true
	}
}

// maxF maximises a per-tag frequency function over the tags relevant
// to the expression. The pseudo-tag "*" (node()/* steps) is evaluated
// as a tag of its own: it matches every test that can select any
// label, which makes it the representative of tags not otherwise
// mentioned.
func maxF(tags map[string]bool, f func(string) int) int {
	max := 0
	for t := range tags {
		if v := f(t); v > max {
			max = v
		}
	}
	return max
}

// KQuery computes k_q = max_a F(a, q) + R(q) (Section 5), the tag
// multiplicity for which the k-chain analysis of q is representative.
func KQuery(q xquery.Query) int {
	tags := make(map[string]bool)
	queryTags(q, tags)
	return maxF(tags, func(a string) int { return FQuery(a, q) }) + RQuery(q)
}

// FUpdate computes F(a, u) per Table 3.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func FUpdate(a string, u xquery.Update) int {
	switch n := u.(type) {
	case xquery.UEmpty:
		return 0
	case xquery.USeq:
		return maxInt(FUpdate(a, n.Left), FUpdate(a, n.Right))
	case xquery.UIf:
		return maxInt(FQuery(a, n.Cond), maxInt(FUpdate(a, n.Then), FUpdate(a, n.Else)))
	case xquery.UFor:
		return FQuery(a, n.In) + FUpdate(a, n.Body)
	case xquery.ULet:
		return FQuery(a, n.Bind) + FUpdate(a, n.Body)
	case xquery.Delete:
		return FQuery(a, n.Target)
	case xquery.Insert:
		return FQuery(a, n.Source) + FQuery(a, n.Target)
	case xquery.Replace:
		return FQuery(a, n.Target) + FQuery(a, n.Source)
	case xquery.Rename:
		f := FQuery(a, n.Target)
		if n.As == a {
			f++
		}
		return f
	default:
		panic(&guard.InternalError{Value: "infer: unknown update node"})
	}
}

// RUpdate computes R(u) per Table 3.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func RUpdate(u xquery.Update) int {
	switch n := u.(type) {
	case xquery.UEmpty:
		return 0
	case xquery.USeq:
		return maxInt(RUpdate(n.Left), RUpdate(n.Right))
	case xquery.UIf:
		return maxInt(RQuery(n.Cond), maxInt(RUpdate(n.Then), RUpdate(n.Else)))
	case xquery.UFor:
		return RQuery(n.In) + RUpdate(n.Body)
	case xquery.ULet:
		return RQuery(n.Bind) + RUpdate(n.Body)
	case xquery.Delete:
		return RQuery(n.Target)
	case xquery.Insert:
		return RQuery(n.Source) + RQuery(n.Target)
	case xquery.Replace:
		return RQuery(n.Target) + RQuery(n.Source)
	case xquery.Rename:
		return RQuery(n.Target)
	default:
		panic(&guard.InternalError{Value: "infer: unknown update node"})
	}
}

// KUpdate computes k_u = max_a F(a, u) + R(u).
func KUpdate(u xquery.Update) int {
	tags := make(map[string]bool)
	updateTags(u, tags)
	return maxF(tags, func(a string) int { return FUpdate(a, u) }) + RUpdate(u)
}

// KPair computes the joint multiplicity k = k_q + k_u used by the
// finite analysis (Theorem 5.1); it is at least 1 so the chain
// universe is never empty. Either side may be nil when only one is
// analysed (single-sided engines pass nil for the absent side), so
// every caller — core, the CDAG engines, diagnostics — derives k
// through this one function and Table 3 is implemented exactly once.
func KPair(q xquery.Query, u xquery.Update) int {
	k := 0
	if q != nil {
		k += KQuery(q)
	}
	if u != nil {
		k += KUpdate(u)
	}
	if k < 1 {
		k = 1
	}
	return k
}
