package infer

import (
	"math/rand"
	"testing"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// TestProjectionSoundness validates Theorem 3.2 executably: projecting
// a valid document to the nodes covered by the inferred used∪return
// chains (ancestors of covered nodes, plus entire subtrees of return
// nodes) must preserve the query result up to value equivalence.
func TestProjectionSoundness(t *testing.T) {
	type c struct {
		d       *dtd.DTD
		queries []string
	}
	corpora := []c{
		{figure1, []string{"//a//c", "//b", "/doc", "//c/..", "//b/following-sibling::a",
			"for $v in //node() return if ($v/c) then $v else ()"}},
		{bib, []string{"//title", "//author/email", "//book[price]/title",
			"for $b in //book return if ($b/author) then $b/title else ()"}},
		{d1, []string{"/descendant::b", "/r/a/e", "/descendant::f/g"}},
	}
	rng := rand.New(rand.NewSource(11))
	for _, corpus := range corpora {
		for trial := 0; trial < 6; trial++ {
			tree, err := corpus.d.GenerateTree(rng, 0.6, 7)
			if err != nil {
				t.Fatal(err)
			}
			nu, err := corpus.d.TypeAssignment(tree)
			if err != nil {
				t.Fatal(err)
			}
			for _, qs := range corpus.queries {
				q := xquery.MustParseQuery(qs)
				in := New(corpus.d, KQuery(q)+2)
				qc := in.Query(in.RootEnv(), q)
				keep := coveredNodes(tree, nu, qc)
				tree.Store.UpwardClose(keep)
				projected, _ := xmltree.Project(tree, keep)

				origStore, origRes, err := eval.QueryTree(tree, q)
				if err != nil {
					t.Fatal(err)
				}
				projStore, projRes, err := eval.QueryTree(projected, q)
				if err != nil {
					t.Fatal(err)
				}
				if !xmltree.SequencesEquivalent(origStore, origRes, projStore, projRes) {
					t.Errorf("projection changed the result of %q\n doc:  %s\n proj: %s",
						qs, tree.Store.String(tree.Root), projected.Store.String(projected.Root))
				}
			}
		}
	}
}

// coveredNodes computes L_{r̄∪v}: nodes whose chain is a prefix of an
// inferred used/return chain, plus all descendants of return-typed
// nodes (the implicit subtree of a return chain).
func coveredNodes(tree xmltree.Tree, nu map[xmltree.Loc]string, qc QueryChains) map[xmltree.Loc]bool {
	keep := make(map[xmltree.Loc]bool)
	covered := chain.Union(qc.Ret, qc.Used)
	var walk func(l xmltree.Loc, c chain.Chain, inReturn bool)
	walk = func(l xmltree.Loc, c chain.Chain, inReturn bool) {
		cur := c.Extend(nu[l])
		isRet := inReturn || qc.Ret.Contains(cur)
		hit := isRet
		if !hit {
			for _, cc := range covered.Chains() {
				if cur.IsPrefixOf(cc) {
					hit = true
					break
				}
			}
		}
		if hit {
			keep[l] = true
		}
		for _, k := range tree.Store.Children(l) {
			walk(k, cur, isRet)
		}
	}
	walk(tree.Root, nil, false)
	return keep
}
