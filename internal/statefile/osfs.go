package statefile

// This file is the one place in the module allowed to touch the
// ambient os filesystem API: everything else goes through the FS
// interface so the crash-chaos harness can interpose. The xqvet
// fsdiscipline check enforces the confinement.

import (
	"io/fs"
	"os"
)

// osFS adapts the ambient os package to FS.
type osFS struct{}

// OS returns the real-filesystem FS used in production (cmd/xqindepd
// -state-dir). Tests use MemFS, usually behind faultinject.CrashFS.
func OS() FS { return osFS{} }

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error)  { return o.f.Read(p) }
func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Close() error                { return o.f.Close() }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Truncate(size int64) error   { return o.f.Truncate(size) }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

func (osFS) Rename(oldname, newname string) error        { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// SyncDir fsyncs the directory so renames and creations inside it are
// durable. Platforms where directories reject Sync report the error;
// callers treat SyncDir failures like any other fsync failure.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
