package statefile

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"strconv"
	"sync"
)

// SpoolStats is a point-in-time snapshot of a Spool's counters.
type SpoolStats struct {
	Writes       int64 `json:"writes"`
	WriteErrors  int64 `json:"write_errors"`
	Rotations    int64 `json:"rotations"`
	Flushes      int64 `json:"flushes"`
	FlushErrors  int64 `json:"flush_errors"`
	CurrentBytes int64 `json:"current_bytes"`
}

// Spool is a size-capped rotating append-only record spool: the
// incident JSONL trail's durable home. Each Write is one record (the
// sentinel's json.Encoder emits one line per call); when the current
// file would exceed the cap it rotates —
//
//	<base> → <base>.1 → <base>.2 → … (dropped past keep)
//
// with the outgoing file fsynced first, so rotation never loses
// acknowledged records. Writes land in the file immediately but are
// only guaranteed durable after Flush (the drain path flushes; a
// crash between writes can lose the unsynced tail, which for a
// diagnostic trail is the right trade against an fsync per incident).
// Safe for concurrent use.
type Spool struct {
	fsys     FS
	dir      string
	base     string
	maxBytes int64
	keep     int

	mu     sync.Mutex
	f      File
	size   int64
	closed bool

	writes, writeErrs, rotations, flushes, flushErrs int64
}

// OpenSpool opens (creating if necessary) the spool <dir>/<base>.
// maxBytes caps one file (default 8 MiB, minimum 4 KiB); keep is the
// number of rotated files retained besides the current one (default
// 4, minimum 1).
func OpenSpool(fsys FS, dir, base string, maxBytes int64, keep int) (*Spool, error) {
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	if maxBytes < 4<<10 {
		maxBytes = 4 << 10
	}
	if keep <= 0 {
		keep = 4
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statefile: spool mkdir: %w", err)
	}
	sp := &Spool{fsys: fsys, dir: dir, base: base, maxBytes: maxBytes, keep: keep}
	if err := sp.openCurrent(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Spool) current() string { return path.Join(sp.dir, sp.base) }

func (sp *Spool) rotated(i int) string {
	return path.Join(sp.dir, sp.base+"."+strconv.Itoa(i))
}

func (sp *Spool) openCurrent() error {
	f, err := sp.fsys.OpenFile(sp.current(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("statefile: open spool: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return fmt.Errorf("statefile: spool size: %w", err)
	}
	sp.f, sp.size = f, size
	return nil
}

// Write appends one record. Oversized records still land (a record is
// never split across files); the file simply rotates first.
func (sp *Spool) Write(p []byte) (int, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return 0, errors.New("statefile: spool closed")
	}
	if sp.size > 0 && sp.size+int64(len(p)) > sp.maxBytes {
		if err := sp.rotateLocked(); err != nil {
			sp.writeErrs++
			return 0, err
		}
	}
	n, err := sp.f.Write(p)
	sp.size += int64(n)
	if err != nil {
		sp.writeErrs++
		return n, fmt.Errorf("statefile: spool write: %w", err)
	}
	sp.writes++
	return n, nil
}

// rotateLocked fsyncs and closes the current file, shifts the rotated
// chain, and opens a fresh current file.
func (sp *Spool) rotateLocked() error {
	serr := sp.f.Sync()
	cerr := sp.f.Close()
	if serr != nil || cerr != nil {
		return fmt.Errorf("statefile: spool rotate flush: %w", errors.Join(serr, cerr))
	}
	if err := sp.fsys.Remove(sp.rotated(sp.keep)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("statefile: spool rotate drop: %w", err)
	}
	for i := sp.keep - 1; i >= 1; i-- {
		if err := sp.fsys.Rename(sp.rotated(i), sp.rotated(i+1)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("statefile: spool rotate shift: %w", err)
		}
	}
	if err := sp.fsys.Rename(sp.current(), sp.rotated(1)); err != nil {
		return fmt.Errorf("statefile: spool rotate: %w", err)
	}
	if err := sp.fsys.SyncDir(sp.dir); err != nil {
		return fmt.Errorf("statefile: spool rotate sync dir: %w", err)
	}
	sp.rotations++
	return sp.openCurrent()
}

// Flush makes every record written so far durable.
func (sp *Spool) Flush() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return nil
	}
	if err := sp.f.Sync(); err != nil {
		sp.flushErrs++
		return fmt.Errorf("statefile: spool flush: %w", err)
	}
	sp.flushes++
	return nil
}

// Close flushes and closes the spool.
func (sp *Spool) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return nil
	}
	sp.closed = true
	serr := sp.f.Sync()
	if serr == nil {
		sp.flushes++
	} else {
		sp.flushErrs++
	}
	cerr := sp.f.Close()
	if serr != nil || cerr != nil {
		return fmt.Errorf("statefile: spool close: %w", errors.Join(serr, cerr))
	}
	return nil
}

// Stats snapshots the spool counters.
func (sp *Spool) Stats() SpoolStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpoolStats{
		Writes:       sp.writes,
		WriteErrors:  sp.writeErrs,
		Rotations:    sp.rotations,
		Flushes:      sp.flushes,
		FlushErrors:  sp.flushErrs,
		CurrentBytes: sp.size,
	}
}
