package statefile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testNow() time.Time { return time.Unix(1700000000, 0) }

func mustOpen(t *testing.T, fsys FS, dir string) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(fsys, dir, Options{Now: testNow})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	mem := NewMemFS()
	s, rec := mustOpen(t, mem, "state")
	if rec.Snapshot != nil || rec.Recovered != 0 || rec.Discarded != 0 {
		t.Fatalf("fresh store recovered something: %+v", rec)
	}
	if err := s.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = mustOpen(t, mem, "state")
	if rec.Recovered != 2 || string(rec.Records[0]) != "one" || string(rec.Records[1]) != "two" {
		t.Fatalf("replay: %+v", rec)
	}
}

func TestSnapshotRotatesJournal(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	if err := s.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("SNAP")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Gen != 1 || st.Snapshots != 1 {
		t.Fatalf("stats after rotate: %+v", st)
	}
	s.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if string(rec.Snapshot) != "SNAP" {
		t.Fatalf("snapshot state: %q", rec.Snapshot)
	}
	if rec.Gen != 1 || rec.Recovered != 1 || string(rec.Records[0]) != "post" {
		t.Fatalf("replay after snapshot: %+v", rec)
	}
	if !rec.SnapshotTime.Equal(time.Unix(0, testNow().UnixNano())) {
		t.Fatalf("snapshot time: %v", rec.SnapshotTime)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	for i := 0; i < 3; i++ {
		if err := s.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the last record: chop one byte off the journal.
	name := "state/journal.0"
	buf, ok := mem.Contents(name)
	if !ok {
		t.Fatalf("no journal:\n%s", mem.Dump())
	}
	f, err := mem.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(len(buf) - 1)); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if rec.Recovered != 2 || rec.Discarded != 1 || rec.DiscardedBytes == 0 {
		t.Fatalf("torn replay: %+v", rec)
	}
	// The truncation is durable: a third open sees a clean journal.
	s2.Close()
	s3, rec := mustOpen(t, mem, "state")
	defer s3.Close()
	if rec.Recovered != 2 || rec.Discarded != 0 {
		t.Fatalf("recovery not idempotent: %+v", rec)
	}
}

func TestReplayStopsAtCorruptRecord(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	for _, p := range []string{"aa", "bb", "cc"} {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one payload byte of the middle record.
	name := "state/journal.0"
	buf, _ := mem.Contents(name)
	frame := frameHeader + 2
	buf[frame+frameHeader] ^= 0xff
	f, _ := mem.OpenFile(name, os.O_WRONLY|os.O_TRUNC, 0)
	f.Write(buf)
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if rec.Recovered != 1 || string(rec.Records[0]) != "aa" || rec.Discarded != 1 {
		t.Fatalf("corrupt replay: %+v", rec)
	}
}

func TestAbsurdLengthPrefixIsCorruption(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	s.Append([]byte("ok"))
	s.Close()

	name := "state/journal.0"
	buf, _ := mem.Contents(name)
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], 1<<31-1) // absurd length
	buf = append(buf, hdr[:]...)
	f, _ := mem.OpenFile(name, os.O_WRONLY|os.O_TRUNC, 0)
	f.Write(buf)
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if rec.Recovered != 1 || rec.Discarded != 1 {
		t.Fatalf("absurd length not treated as corruption: %+v", rec)
	}
}

func TestCorruptSnapshotFallsBackToJournal(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	s.Snapshot([]byte("SNAP"))
	s.Append([]byte("rec"))
	s.Close()

	buf, _ := mem.Contents("state/snapshot")
	buf[len(buf)-1] ^= 0xff
	f, _ := mem.OpenFile("state/snapshot", os.O_WRONLY|os.O_TRUNC, 0)
	f.Write(buf)
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if !rec.SnapshotCorrupt || rec.Snapshot != nil {
		t.Fatalf("snapshot corruption not detected: %+v", rec)
	}
	if rec.Gen != 1 || rec.Recovered != 1 || string(rec.Records[0]) != "rec" {
		t.Fatalf("journal fallback: %+v", rec)
	}
}

func TestLeftoverSnapshotTmpDiscarded(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	s.Append([]byte("rec"))
	s.Close()

	f, _ := mem.OpenFile("state/snapshot.tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("half a snapshot"))
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if rec.Snapshot != nil || rec.Recovered != 1 {
		t.Fatalf("tmp snapshot leaked into recovery: %+v", rec)
	}
	if _, ok := mem.Contents("state/snapshot.tmp"); ok {
		t.Fatal("snapshot.tmp survived Open")
	}
}

func TestStaleJournalGenerationsRemoved(t *testing.T) {
	mem := NewMemFS()
	s, _ := mustOpen(t, mem, "state")
	s.Append([]byte("old"))
	s.Snapshot([]byte("SNAP"))
	s.Close()

	// Plant a stale older generation as crash debris.
	f, _ := mem.OpenFile("state/journal.0", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write(appendFrame(nil, []byte("stale")))
	f.Sync()
	f.Close()

	s2, rec := mustOpen(t, mem, "state")
	defer s2.Close()
	if rec.Gen != 1 || rec.Recovered != 0 {
		t.Fatalf("stale journal replayed: %+v", rec)
	}
	if _, ok := mem.Contents("state/journal.0"); ok {
		t.Fatal("stale journal.0 not removed")
	}
}

func TestMaxRecordEnforced(t *testing.T) {
	mem := NewMemFS()
	s, _, err := Open(mem, "state", Options{Now: testNow, MaxRecord: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(bytes.Repeat([]byte("x"), 9)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if st := s.Stats(); st.AppendErrors != 1 {
		t.Fatalf("append error not counted: %+v", st)
	}
}

// TestOSFSRoundTrip exercises the production FS against a real
// directory: append, snapshot, rotate, reopen.
func TestOSFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	s, _, err := Open(OS(), dir, Options{Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(OS(), dir, Options{Now: testNow})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(rec.Snapshot) != "STATE" || rec.Recovered != 1 || string(rec.Records[0]) != "tail" {
		t.Fatalf("osfs recovery: %+v", rec)
	}
}
