// Package statefile is the crash-safe durable-state substrate of the
// serving layer: the quarantine registry's journaled state machine
// (package quarantine) and the sentinel's incident spool (package
// sentinel) must survive daemon restarts, or a restart silently
// forgets which schema fingerprints an audit already refuted and
// resumes serving full-strength verdicts from them.
//
// The package offers two durable primitives, both stdlib-only:
//
//   - Store (journal.go): a checksummed, length-prefixed append-only
//     journal with an atomic snapshot+rotate protocol (write temp,
//     fsync, rename, fsync dir, switch to a fresh journal generation).
//     Replay tolerates torn writes and corruption by truncating the
//     journal at the first bad record and counting what it recovered
//     and discarded.
//
//   - Spool (spool.go): a size-capped rotating append-only byte spool
//     (one record per Write) with explicit Flush-to-disk, used for the
//     incident JSONL trail.
//
// Everything reaches the disk through the FS interface below so the
// chaos harness (faultinject.CrashFS over MemFS) can simulate partial
// writes, failed fsyncs and kill-9 crashes deterministically. The one
// implementation touching the ambient os package is OS() in osfs.go;
// the xqvet fsdiscipline check confines it there mechanically.
//
// Crash model. Renames, removes and file creation are atomic and
// durable once SyncDir returns (the journaling-filesystem guarantee
// the snapshot protocol leans on); file *data* is durable only up to
// the last successful Sync, and a crash may persist any prefix of the
// unsynced tail — which is exactly the torn-write case replay
// truncates away.
package statefile

import (
	"io"
	"io/fs"
)

// File is one open file of an FS. Reads and writes share the usual
// os.File semantics for the flags the file was opened with; Sync
// makes previously written data durable; Truncate discards the tail
// (used by replay to cut a torn record).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
}

// FS is the filesystem seam of the durable-state layer. Path
// semantics follow the os package ("/"-separated, relative to the
// process working directory for OS()). Implementations must be safe
// for concurrent use.
type FS interface {
	// OpenFile opens name with os.O_* flags and perm (for creation).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name (fs.ErrNotExist when absent).
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// ReadDir lists the entry base names of dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes dir's entry metadata (renames, creations,
	// removals) durable.
	SyncDir(dir string) error
}
