// Crash-chaos suite for the durable-state layer: every run drives a
// deterministic append/snapshot workload against a Store mounted on a
// faultinject.CrashFS, which injects failed writes, torn writes,
// failed fsyncs, and kill-9 crashes at seeded operation indices. After
// the "machine dies", the store is re-opened on the surviving durable
// bytes and the recovered state is checked against the model:
//
//   - every acknowledged record (Append/Snapshot returned nil) is
//     recovered, in order — the acked sequence is a PREFIX of the
//     recovered sequence;
//   - anything extra is an unacknowledged write that happened to
//     survive, byte-identical to what was attempted — never a torn or
//     fabricated record;
//   - a second crash DURING recovery leaves all of the above intact
//     (recovery's mutations are idempotent).
//
// Schedules are deterministic per (CHAOS_SEED, run index); override
// the defaults with CHAOS_SEED / CHAOS_RUNS to reproduce or extend.
package statefile_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"xqindep/internal/faultinject"
	"xqindep/internal/statefile"
)

func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func chaosNow() time.Time { return time.Unix(1700000000, 0) }

// chaosModel tracks what the "application" believes is durable.
type chaosModel struct {
	acked     []string        // records whose Append (or covering Snapshot) was acknowledged
	attempted map[string]bool // every payload ever offered to the store
}

func (m *chaosModel) payload(i int) string { return fmt.Sprintf("rec-%04d", i) }

// snapshotState encodes the acked list the way the application under
// test would: the full in-memory state at snapshot time.
func (m *chaosModel) snapshotState() []byte {
	b, err := json.Marshal(m.acked)
	if err != nil {
		panic(err)
	}
	return b
}

// recovered flattens a Recovery into the application's reconstructed
// record sequence: snapshot state first, then journal records.
func recoveredSequence(t *testing.T, rec statefile.Recovery) []string {
	t.Helper()
	var seq []string
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &seq); err != nil {
			t.Fatalf("recovered snapshot does not decode: %v (%q)", err, rec.Snapshot)
		}
	}
	for _, r := range rec.Records {
		seq = append(seq, string(r))
	}
	return seq
}

func checkInvariant(t *testing.T, m *chaosModel, rec statefile.Recovery, phase string) {
	t.Helper()
	seq := recoveredSequence(t, rec)
	if len(seq) < len(m.acked) {
		t.Fatalf("%s: lost acknowledged records: acked %d, recovered %d\nacked=%v\nrecovered=%v",
			phase, len(m.acked), len(seq), m.acked, seq)
	}
	for i, want := range m.acked {
		if seq[i] != want {
			t.Fatalf("%s: acked record %d mutated: want %q, got %q", phase, i, want, seq[i])
		}
	}
	// Unacknowledged survivors are fine, torn or fabricated ones never:
	// every extra must be byte-identical to an attempted payload. This
	// also proves no torn frame was replayed — a truncated payload
	// would not be in the attempted set.
	for _, extra := range seq[len(m.acked):] {
		if !m.attempted[extra] {
			t.Fatalf("%s: recovered record %q was never written (torn/fabricated)", phase, extra)
		}
	}
}

// chaosFaults builds a deterministic schedule: 1-3 faults at distinct
// operation indices within the workload's expected op budget.
func chaosFaults(rng *rand.Rand) []faultinject.FSFault {
	n := 1 + rng.Intn(3)
	used := map[int]bool{}
	var faults []faultinject.FSFault
	for len(faults) < n {
		op := 1 + rng.Intn(120)
		if used[op] {
			continue
		}
		used[op] = true
		faults = append(faults, faultinject.FSFault{
			Op:   op,
			Kind: faultinject.FSFaultKind(rng.Intn(4)),
			Keep: rng.Intn(16),
		})
	}
	return faults
}

func runCrashChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mem := statefile.NewMemFS()
	cfs := faultinject.NewCrashFS(mem, chaosFaults(rng)...)
	opts := statefile.Options{Now: chaosNow}
	m := &chaosModel{attempted: map[string]bool{}}

	store, _, err := statefile.Open(cfs, "state", opts)
	alive := err == nil
	if err != nil && !errors.Is(err, faultinject.ErrCrashed) && !errors.Is(err, faultinject.ErrInjectedFS) {
		t.Fatalf("initial open failed with uninjected error: %v", err)
	}

	steps := 30 + rng.Intn(30)
	for i := 0; alive && i < steps; i++ {
		if rng.Intn(100) < 15 {
			if err := store.Snapshot(m.snapshotState()); err != nil {
				if errors.Is(err, faultinject.ErrCrashed) {
					alive = false
				}
				continue // not acked; store may be poisoned — keep driving
			}
			continue
		}
		p := m.payload(i)
		m.attempted[p] = true
		if err := store.Append([]byte(p)); err != nil {
			if errors.Is(err, faultinject.ErrCrashed) {
				alive = false
			}
			continue // not acked
		}
		m.acked = append(m.acked, p)
	}

	// If no injected crash ended the run, pull the plug now: kill -9
	// with a fixed per-run number of unsynced bytes surviving per file.
	if !cfs.Crashed() {
		keep := rng.Intn(8)
		mem.Crash(func(string, int) int { return keep })
	}

	// Reboot on the surviving bytes — recovery itself must succeed.
	s2, rec, err := statefile.Open(mem, "state", opts)
	if err != nil {
		t.Fatalf("recovery open failed: %v (fired: %v)\n%s", err, cfs.Fired(), mem.Dump())
	}
	checkInvariant(t, m, rec, "first recovery")
	s2.Close()

	// Crash DURING recovery: re-open through a fresh CrashFS armed
	// with one early fault, then recover once more on the bare FS.
	cfs2 := faultinject.NewCrashFS(mem, faultinject.FSFault{
		Op:   1 + rng.Intn(8),
		Kind: faultinject.FSFaultKind(rng.Intn(4)),
		Keep: rng.Intn(16),
	})
	if s3, _, err := statefile.Open(cfs2, "state", opts); err == nil {
		s3.Close()
	}
	if !cfs2.Crashed() {
		keep := rng.Intn(8)
		mem.Crash(func(string, int) int { return keep })
	}
	s4, rec2, err := statefile.Open(mem, "state", opts)
	if err != nil {
		t.Fatalf("post-recovery-crash open failed: %v (fired: %v)\n%s", err, cfs2.Fired(), mem.Dump())
	}
	checkInvariant(t, m, rec2, "recovery after crashed recovery")

	// The rebooted store must accept writes again.
	if err := s4.Append([]byte("post-recovery")); err != nil {
		t.Fatalf("rebooted store refuses appends: %v", err)
	}
	s4.Close()
}

func TestCrashChaos(t *testing.T) {
	seed := int64(chaosEnvInt("CHAOS_SEED", 20260807))
	runs := chaosEnvInt("CHAOS_RUNS", 200)
	if testing.Short() {
		runs = min(runs, 25)
	}
	for run := 0; run < runs && !t.Failed(); run++ {
		run := run
		t.Run(fmt.Sprintf("seed=%d", seed+int64(run)), func(t *testing.T) {
			runCrashChaos(t, seed+int64(run))
		})
	}
}
