package statefile

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Journal record framing, independent of record content:
//
//	| 4-byte big-endian payload length | 8-byte big-endian fnv64a(payload) | payload |
//
// A record is valid iff its full frame is present and the checksum
// matches. Replay stops at the first invalid record and truncates the
// journal there: under the append-then-fsync discipline a bad record
// can only be the torn tail of the write in flight at the crash, so
// everything before it is intact and everything after it is garbage.
const (
	frameHeader = 4 + 8
	// defaultMaxRecord caps one record's payload; a length prefix
	// beyond it is treated as corruption, not an allocation request.
	defaultMaxRecord = 16 << 20
)

func checksum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], checksum(payload))
	return append(append(dst, hdr[:]...), payload...)
}

// errBadRecord marks a torn or corrupt frame during replay.
var errBadRecord = errors.New("statefile: torn or corrupt record")

// nextFrame decodes the record starting at buf[off:]. It returns the
// payload and the offset past the record, or errBadRecord.
func nextFrame(buf []byte, off int, maxRecord int) (payload []byte, next int, err error) {
	if off+frameHeader > len(buf) {
		return nil, 0, errBadRecord
	}
	n := int(binary.BigEndian.Uint32(buf[off : off+4]))
	if n > maxRecord || off+frameHeader+n > len(buf) {
		return nil, 0, errBadRecord
	}
	sum := binary.BigEndian.Uint64(buf[off+4 : off+12])
	payload = buf[off+frameHeader : off+frameHeader+n]
	if checksum(payload) != sum {
		return nil, 0, errBadRecord
	}
	return payload, off + frameHeader + n, nil
}

// snapEnvelope is the snapshot file's single framed record.
type snapEnvelope struct {
	// Gen is the journal generation the snapshot covers: replay reads
	// the snapshot state and then journal.<Gen>.
	Gen uint64 `json:"gen"`
	// Unix is the snapshot time (from the injected clock), for the
	// /statz durability section and recovery logs.
	Unix int64 `json:"unix"`
	// State is the caller's opaque snapshot payload.
	State []byte `json:"state"`
}

// Options tunes a Store. Zero fields select defaults.
type Options struct {
	// MaxRecord caps one record payload (default 16 MiB); larger
	// appends fail, larger length prefixes on replay count as
	// corruption.
	MaxRecord int
	// Now stamps snapshots; it never influences replay decisions.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxRecord <= 0 {
		o.MaxRecord = defaultMaxRecord
	}
	if o.Now == nil {
		o.Now = time.Now //xqvet:ignore clockinject injectable-clock default; harnesses pass Options.Now
	}
	return o
}

// Recovery reports what Open reconstructed, for boot logs and the
// daemon's /statz durability section.
type Recovery struct {
	// Snapshot is the last durable snapshot state (nil when none).
	Snapshot []byte
	// SnapshotTime is the snapshot's stamp (zero when none).
	SnapshotTime time.Time
	// SnapshotCorrupt reports a snapshot file that failed its
	// checksum; recovery then proceeds from the journal alone.
	SnapshotCorrupt bool
	// Records are the journal records replayed after the snapshot, in
	// append order. Every returned record passed its checksum.
	Records [][]byte
	// Recovered is len(Records).
	Recovered int
	// Discarded counts journal tails truncated as torn/corrupt (0 or
	// 1 per Open: replay stops at the first bad record).
	Discarded int
	// DiscardedBytes is the byte length of the truncated tail.
	DiscardedBytes int64
	// Gen is the journal generation now in use.
	Gen uint64
}

// StoreStats is a point-in-time snapshot of a Store's counters.
type StoreStats struct {
	Gen                  uint64 `json:"gen"`
	Appends              int64  `json:"appends"`
	AppendErrors         int64  `json:"append_errors"`
	Snapshots            int64  `json:"snapshots"`
	SnapshotErrors       int64  `json:"snapshot_errors"`
	JournalBytes         int64  `json:"journal_bytes"`
	RecoveredRecords     int    `json:"recovered_records"`
	DiscardedRecords     int    `json:"discarded_records"`
	DiscardedBytes       int64  `json:"discarded_bytes"`
	SnapshotLoaded       bool   `json:"snapshot_loaded"`
	SnapshotCorrupt      bool   `json:"snapshot_corrupt,omitempty"`
	LastSnapshotUnixNano int64  `json:"last_snapshot_unix_nano,omitempty"`
	// Poisoned reports a store that refused further writes after an
	// unrecoverable I/O failure; restart (re-Open) to clear.
	Poisoned bool `json:"poisoned,omitempty"`
}

// Store is the durable journal+snapshot pair rooted at one directory:
//
//	<dir>/snapshot       last durable snapshot (one framed record)
//	<dir>/snapshot.tmp   in-flight snapshot (removed on Open)
//	<dir>/journal.<gen>  the append-only journal covering the snapshot
//
// Append makes one record durable (write + fsync). Snapshot writes
// the full state atomically (temp, fsync, rename, fsync dir) and
// rotates to a fresh journal generation, so the journal stays short.
// Open replays snapshot + journal with torn-write tolerance. All
// methods are safe for concurrent use.
type Store struct {
	fsys FS
	dir  string
	opts Options

	mu       sync.Mutex
	gen      uint64
	journal  File
	jBytes   int64
	closed   bool
	poisoned error
	recovery Recovery

	appends, appendErrs, snaps, snapErrs int64
	lastSnapUnix                         int64
}

const (
	snapName    = "snapshot"
	snapTmpName = "snapshot.tmp"
	journalPfx  = "journal."
)

// Open mounts (creating if necessary) the store at dir and replays
// its durable state. Recovery is idempotent: its only mutations —
// removing a leftover snapshot.tmp, truncating a torn journal tail,
// deleting stale journal generations, creating the current journal —
// are all safe to repeat, so a crash during recovery loses nothing.
func Open(fsys FS, dir string, opts Options) (*Store, Recovery, error) {
	opts = opts.withDefaults()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("statefile: mkdir %s: %w", dir, err)
	}
	// A leftover snapshot.tmp is an in-flight snapshot that never
	// became durable; discard it before it can shadow anything.
	if err := fsys.Remove(path.Join(dir, snapTmpName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, Recovery{}, fmt.Errorf("statefile: clear %s: %w", snapTmpName, err)
	}

	var rec Recovery
	env, loaded, corrupt, err := readSnapshot(fsys, path.Join(dir, snapName), opts.MaxRecord)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec.SnapshotCorrupt = corrupt
	if loaded {
		rec.Snapshot = env.State
		rec.SnapshotTime = time.Unix(0, env.Unix)
		rec.Gen = env.Gen
	}
	if corrupt {
		// The snapshot is atomic under the crash model, so a corrupt
		// one means storage damage, not a torn write. Fall back to the
		// newest journal generation on disk: its records are still
		// individually checksummed.
		if g, ok := newestJournalGen(fsys, dir); ok {
			rec.Gen = g
		}
	}

	jpath := path.Join(dir, journalName(rec.Gen))
	records, kept, discardedBytes, err := replayJournal(fsys, jpath, opts.MaxRecord)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec.Records = records
	rec.Recovered = len(records)
	if discardedBytes > 0 {
		rec.Discarded = 1
		rec.DiscardedBytes = discardedBytes
	}

	// Drop journals of other generations: older ones are covered by
	// the snapshot, newer ones can only be debris from a crash mid-
	// rotation (the snapshot rename precedes the new generation, so a
	// durable snapshot for them would have been found above).
	removeStaleJournals(fsys, dir, rec.Gen)

	j, err := fsys.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("statefile: open journal: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		j.Close()
		return nil, Recovery{}, fmt.Errorf("statefile: sync dir: %w", err)
	}

	s := &Store{
		fsys: fsys, dir: dir, opts: opts,
		gen: rec.Gen, journal: j, jBytes: kept, recovery: rec,
	}
	if loaded && !corrupt {
		s.lastSnapUnix = env.Unix
	}
	return s, rec, nil
}

func journalName(gen uint64) string { return journalPfx + strconv.FormatUint(gen, 10) }

// readSnapshot loads and validates the snapshot file. loaded reports
// a valid snapshot; corrupt reports a present-but-invalid one.
func readSnapshot(fsys FS, name string, maxRecord int) (env snapEnvelope, loaded, corrupt bool, err error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return env, false, false, nil
		}
		return env, false, false, fmt.Errorf("statefile: open snapshot: %w", err)
	}
	buf, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil || cerr != nil {
		return env, false, false, fmt.Errorf("statefile: read snapshot: %w", errors.Join(rerr, cerr))
	}
	payload, next, ferr := nextFrame(buf, 0, maxRecord)
	if ferr != nil || next != len(buf) {
		return env, false, true, nil
	}
	if jerr := json.Unmarshal(payload, &env); jerr != nil {
		return env, false, true, nil
	}
	return env, true, false, nil
}

// replayJournal reads every valid record of the journal and truncates
// the file at the first torn/corrupt one. A missing journal is an
// empty journal (crash after snapshot rename, before the new
// generation was created).
func replayJournal(fsys FS, name string, maxRecord int) (records [][]byte, kept, discarded int64, err error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("statefile: open journal: %w", err)
	}
	buf, rerr := io.ReadAll(f)
	cerr := f.Close()
	if rerr != nil || cerr != nil {
		return nil, 0, 0, fmt.Errorf("statefile: read journal: %w", errors.Join(rerr, cerr))
	}
	off := 0
	for off < len(buf) {
		payload, next, ferr := nextFrame(buf, off, maxRecord)
		if ferr != nil {
			break
		}
		records = append(records, append([]byte(nil), payload...))
		off = next
	}
	if off < len(buf) {
		discarded = int64(len(buf) - off)
		w, werr := fsys.OpenFile(name, os.O_WRONLY, 0)
		if werr != nil {
			return nil, 0, 0, fmt.Errorf("statefile: reopen journal for truncate: %w", werr)
		}
		terr := w.Truncate(int64(off))
		serr := w.Sync()
		cerr := w.Close()
		if terr != nil || serr != nil {
			return nil, 0, 0, fmt.Errorf("statefile: truncate torn journal tail: %w", errors.Join(terr, serr, cerr))
		}
	}
	return records, int64(off), discarded, nil
}

// newestJournalGen scans dir for the highest journal generation.
func newestJournalGen(fsys FS, dir string) (uint64, bool) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, false
	}
	var best uint64
	found := false
	for _, n := range names {
		rest, ok := strings.CutPrefix(n, journalPfx)
		if !ok {
			continue
		}
		g, perr := strconv.ParseUint(rest, 10, 64)
		if perr != nil {
			continue
		}
		if !found || g > best {
			best, found = g, true
		}
	}
	return best, found
}

// removeStaleJournals best-effort deletes journal files of other
// generations; failures are harmless (they are re-tried on the next
// Open and their records are never replayed).
func removeStaleJournals(fsys FS, dir string, gen uint64) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	sort.Strings(names)
	for _, n := range names {
		rest, ok := strings.CutPrefix(n, journalPfx)
		if !ok {
			continue
		}
		if g, perr := strconv.ParseUint(rest, 10, 64); perr == nil && g != gen {
			_ = fsys.Remove(path.Join(dir, n))
		}
	}
}

// Append makes one record durable: frame, write, fsync. It returns
// only after the record is on stable storage (or with the error that
// prevented that — the record must then be considered lost).
func (s *Store) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("statefile: store closed")
	}
	if s.poisoned != nil {
		s.appendErrs++
		return fmt.Errorf("statefile: store poisoned: %w", s.poisoned)
	}
	if len(payload) > s.opts.MaxRecord {
		s.appendErrs++
		return fmt.Errorf("statefile: record of %d bytes exceeds MaxRecord %d", len(payload), s.opts.MaxRecord)
	}
	frame := appendFrame(nil, payload)
	if _, err := s.journal.Write(frame); err != nil {
		s.appendErrs++
		s.repairTailLocked(err)
		return fmt.Errorf("statefile: append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		s.appendErrs++
		s.repairTailLocked(err)
		return fmt.Errorf("statefile: append fsync: %w", err)
	}
	s.jBytes += int64(len(frame))
	s.appends++
	return nil
}

// repairTailLocked restores the journal to its last acknowledged
// length after a failed append, so a partial frame cannot sit in the
// middle of the file and silently cut off later records at replay
// (replay stops at the first bad frame). If the repair itself fails
// the store is poisoned — further appends and snapshots are refused —
// which keeps every already-acknowledged record recoverable.
func (s *Store) repairTailLocked(cause error) {
	if terr := s.journal.Truncate(s.jBytes); terr != nil {
		s.poisoned = errors.Join(cause, terr)
		return
	}
	if serr := s.journal.Sync(); serr != nil {
		s.poisoned = errors.Join(cause, serr)
	}
}

// Snapshot atomically replaces the durable state with state and
// rotates to a fresh journal generation:
//
//  1. write snapshot.tmp (gen+1, state), fsync, close;
//  2. rename snapshot.tmp → snapshot, fsync dir  — the commit point;
//  3. create journal.<gen+1>, fsync dir;
//  4. best-effort remove journal.<gen>.
//
// A crash before (2) leaves the old snapshot+journal fully intact; a
// crash after (2) recovers the new snapshot with an empty journal
// (Open creates the missing generation); the stale journal left by a
// crash inside (3)-(4) is deleted on Open and never replayed.
func (s *Store) Snapshot(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("statefile: store closed")
	}
	if s.poisoned != nil {
		s.snapErrs++
		return fmt.Errorf("statefile: store poisoned: %w", s.poisoned)
	}
	if err := s.snapshotLocked(state); err != nil {
		s.snapErrs++
		return err
	}
	s.snaps++
	return nil
}

func (s *Store) snapshotLocked(state []byte) error {
	gen := s.gen + 1
	now := s.opts.Now().UnixNano()
	payload, err := json.Marshal(snapEnvelope{Gen: gen, Unix: now, State: state})
	if err != nil {
		return fmt.Errorf("statefile: marshal snapshot: %w", err)
	}
	tmp := path.Join(s.dir, snapTmpName)
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statefile: create snapshot.tmp: %w", err)
	}
	_, werr := f.Write(appendFrame(nil, payload))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		return fmt.Errorf("statefile: write snapshot.tmp: %w", errors.Join(werr, serr, cerr))
	}
	if err := s.fsys.Rename(tmp, path.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("statefile: commit snapshot: %w", err)
	}
	// From the rename on, disk may hold the NEW snapshot while the
	// in-memory handle still points at the OLD journal generation. Any
	// failure in that window poisons the store: appending to the old
	// generation would write records a reboot never replays. Poisoning
	// is safe in both directions — if the rename proved durable the new
	// snapshot covers every acknowledged record; if it did not, the old
	// snapshot+journal do.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		s.poisoned = err
		return fmt.Errorf("statefile: sync dir after snapshot commit: %w", err)
	}

	// The snapshot is durable; everything from here on only has to
	// converge eventually (Open repairs any prefix of it).
	j, err := s.fsys.OpenFile(path.Join(s.dir, journalName(gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.poisoned = err
		return fmt.Errorf("statefile: open journal.%d: %w", gen, err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		j.Close()
		s.poisoned = err
		return fmt.Errorf("statefile: sync dir after rotate: %w", err)
	}
	old, oldGen := s.journal, s.gen
	s.journal, s.gen, s.jBytes = j, gen, 0
	s.lastSnapUnix = now
	_ = old.Close()
	_ = s.fsys.Remove(path.Join(s.dir, journalName(oldGen)))
	return nil
}

// Close closes the journal handle. It does not snapshot; callers that
// want a final compaction call Snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.journal.Close()
}

// Recovery returns what Open reconstructed.
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Gen:                  s.gen,
		Appends:              s.appends,
		AppendErrors:         s.appendErrs,
		Snapshots:            s.snaps,
		SnapshotErrors:       s.snapErrs,
		JournalBytes:         s.jBytes,
		RecoveredRecords:     s.recovery.Recovered,
		DiscardedRecords:     s.recovery.Discarded,
		DiscardedBytes:       s.recovery.DiscardedBytes,
		SnapshotLoaded:       s.recovery.Snapshot != nil,
		SnapshotCorrupt:      s.recovery.SnapshotCorrupt,
		LastSnapshotUnixNano: s.lastSnapUnix,
		Poisoned:             s.poisoned != nil,
	}
}
