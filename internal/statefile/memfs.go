package statefile

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is the in-memory FS used by tests and the crash-chaos
// harness. It models the durability semantics the snapshot protocol
// assumes of a journaling filesystem:
//
//   - metadata operations (create, rename, remove) are atomic and
//     durable immediately;
//   - file data is durable only up to the last successful Sync; a
//     Crash may keep any prefix of the unsynced tail, which is how the
//     harness manufactures torn records.
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data   []byte
	synced int // bytes durable across a Crash
}

// NewMemFS returns an empty filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{".": true}}
}

// Crash simulates a kill-9: for every file, the unsynced tail is cut
// down to keep(name, unsyncedLen) bytes (clamped to [0, unsyncedLen]),
// modelling a power cut that persisted an arbitrary prefix of the
// buffered data. A nil keep drops every unsynced byte. Open handles
// are NOT invalidated — the harness layers faultinject.CrashFS on top
// to fail post-crash operations.
func (m *MemFS) Crash(keep func(name string, unsynced int) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		unsynced := len(f.data) - f.synced
		if unsynced <= 0 {
			continue
		}
		k := 0
		if keep != nil {
			k = keep(name, unsynced)
		}
		if k < 0 {
			k = 0
		}
		if k > unsynced {
			k = unsynced
		}
		f.data = f.data[:f.synced+k]
		f.synced = len(f.data)
	}
}

// Durable returns the durable contents of name (what a post-crash
// reboot would read), and whether the file exists.
func (m *MemFS) Durable(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data[:f.synced]...), true
}

// Contents returns the current (possibly unsynced) contents of name.
func (m *MemFS) Contents(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

type memHandle struct {
	fs    *MemFS
	name  string
	f     *memFile
	flag  int
	off   int64 // read offset; writes honour O_APPEND
	wrOff int64 // write offset when not appending
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.data = nil
		f.synced = 0
	}
	return &memHandle{fs: m, name: name, f: f, flag: flag}, nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrInvalid}
	}
	if h.flag&os.O_APPEND != 0 {
		h.f.data = append(h.f.data, p...)
		return len(p), nil
	}
	end := h.wrOff + int64(len(p))
	for int64(len(h.f.data)) < end {
		h.f.data = append(h.f.data, 0)
	}
	copy(h.f.data[h.wrOff:end], p)
	h.wrOff = end
	return len(p), nil
}

func (h *memHandle) Close() error { return nil }

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		return &fs.PathError{Op: "truncate", Path: h.name, Err: fs.ErrInvalid}
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.f.data)), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = path.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(dir string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path.Clean(dir)] = true
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = path.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	var names []string
	for name := range m.files {
		d, base := path.Split(name)
		if path.Clean(d) != dir {
			continue
		}
		if !seen[base] {
			seen[base] = true
			names = append(names, base)
		}
	}
	for d := range m.dirs {
		parent, base := path.Split(d)
		if path.Clean(parent) == dir && !seen[base] && base != "" {
			seen[base] = true
			names = append(names, base)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir is a no-op: MemFS metadata is modelled durable (see the
// type comment). It still participates in the crash harness's
// operation counting through CrashFS.
func (m *MemFS) SyncDir(dir string) error { return nil }

// Dump renders the filesystem for test failure messages.
func (m *MemFS) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := m.files[n]
		fmt.Fprintf(&b, "%s: %d bytes (%d synced)\n", n, len(f.data), f.synced)
	}
	return b.String()
}
