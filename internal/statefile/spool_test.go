package statefile

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpoolWriteAndReopen(t *testing.T) {
	mem := NewMemFS()
	sp, err := OpenSpool(mem, "state", "incidents.jsonl", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write([]byte("{\"a\":1}\n")); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen appends; the earlier record survives.
	sp2, err := OpenSpool(mem, "state", "incidents.jsonl", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp2.Write([]byte("{\"b\":2}\n")); err != nil {
		t.Fatal(err)
	}
	sp2.Close()
	buf, _ := mem.Contents("state/incidents.jsonl")
	if string(buf) != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("spool contents: %q", buf)
	}
}

func TestSpoolRotation(t *testing.T) {
	mem := NewMemFS()
	// maxBytes is clamped to 4 KiB; write 1 KiB records so each file
	// holds 4 and the chain keeps 2 rotated files.
	sp, err := OpenSpool(mem, "state", "sp", 4<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i int) []byte {
		return append(bytes.Repeat([]byte{byte('a' + i)}, 1023), '\n')
	}
	for i := 0; i < 12; i++ {
		if _, err := sp.Write(rec(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := sp.Stats()
	if st.Writes != 12 || st.Rotations != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	names, _ := mem.ReadDir("state")
	got := strings.Join(names, ",")
	if got != "sp,sp.1,sp.2" {
		t.Fatalf("chain: %s\n%s", got, mem.Dump())
	}
	// Rotated files were fsynced on rotation: fully durable.
	durable, _ := mem.Durable("state/sp.1")
	if len(durable) != 4<<10 {
		t.Fatalf("sp.1 durable bytes: %d", len(durable))
	}
	// Newest record is in the current file.
	cur, _ := mem.Contents("state/sp")
	if !bytes.HasPrefix(cur, []byte("iii")) {
		t.Fatalf("current head: %q", cur[:8])
	}
}

func TestSpoolDropsPastKeep(t *testing.T) {
	mem := NewMemFS()
	sp, err := OpenSpool(mem, "state", "sp", 4<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i int) []byte {
		return append(bytes.Repeat([]byte{byte('a' + i)}, 2047), '\n')
	}
	for i := 0; i < 9; i++ {
		if _, err := sp.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	sp.Close()
	names, _ := mem.ReadDir("state")
	if strings.Join(names, ",") != "sp,sp.1" {
		t.Fatalf("chain with keep=1: %v", names)
	}
}

func TestSpoolOversizedRecordStillLands(t *testing.T) {
	mem := NewMemFS()
	sp, err := OpenSpool(mem, "state", "sp", 4<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write([]byte("small\n")); err != nil {
		t.Fatal(err)
	}
	big := append(bytes.Repeat([]byte("x"), 8<<10), '\n')
	if _, err := sp.Write(big); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	if st.Rotations != 1 || st.CurrentBytes != int64(len(big)) {
		t.Fatalf("oversized handling: %+v", st)
	}
	sp.Close()
}

func TestSpoolFlushMakesDurable(t *testing.T) {
	mem := NewMemFS()
	sp, err := OpenSpool(mem, "state", "sp", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.Write([]byte("record\n"))
	if d, _ := mem.Durable("state/sp"); len(d) != 0 {
		t.Fatalf("durable before flush: %q", d)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if d, _ := mem.Durable("state/sp"); string(d) != "record\n" {
		t.Fatalf("durable after flush: %q", d)
	}
	if st := sp.Stats(); st.Flushes != 1 {
		t.Fatalf("flush counter: %+v", st)
	}
	sp.Close()
}
