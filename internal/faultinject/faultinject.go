// Package faultinject provides named, seeded, deterministic fault
// points for chaos testing the analysis engine and its serving layer.
//
// The engines mark their phase boundaries — parsing, chain inference,
// CDAG construction, conflict checking — with guard.Point /
// guard.FirePoint calls naming the boundary. In production no hook is
// installed and every point is a single atomic load. A chaos harness
// enables injection by building a Schedule (which faults fire at which
// points, on which hit) and attaching it to the request context:
//
//	faultinject.Enable()
//	sched := faultinject.NewSchedule(
//		faultinject.Fault{Point: "cdag.build", Kind: faultinject.KindBudget, After: 2},
//	)
//	ctx := faultinject.With(ctx, sched)
//	// every analysis under ctx hits the schedule; others are untouched
//
// Schedules are deterministic: a fault fires on exactly the After-th
// hit of its point within the schedule's context, so a fixed seed
// driving schedule construction reproduces a run bit-for-bit.
// Randomness belongs to the harness (see RandomSchedule), never to
// this package.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"xqindep/internal/guard"
)

// Kind selects what an armed fault injects.
type Kind int

const (
	// KindBudget injects a budget-exhaustion error
	// (errors.Is(err, guard.ErrBudgetExceeded)): the degradation
	// ladder must absorb it.
	KindBudget Kind = iota
	// KindError injects a plain (non-budget) error: the analysis must
	// fail cleanly, never produce a wrong verdict.
	KindError
	// KindPanic injects a panic with a PanicValue payload: the
	// engine's Recover boundary must convert it to *guard.InternalError
	// and the serving layer must isolate it to the one request.
	KindPanic
	// KindStall blocks the point until the context dies, then returns
	// the context error — a deterministic way to wedge an analysis for
	// overload, timeout and drain tests. Never drawn by
	// RandomSchedule.
	KindStall
	// KindCorruptArtifact fires only at the artifact-handoff points.
	// At "core.artifact" core swaps in a deterministically corrupted
	// copy of the compiled schema for the remainder of the request
	// (bypassing the plan cache so the damage is never amortised); at
	// "core.plan/artifact" the plan layer serves a corrupted clone of
	// the prepared plan while the cache resident stays intact. Both
	// simulate resident-artifact damage; the sentinel audit layer must
	// catch any unsound verdict that results. Never drawn by
	// RandomSchedule: fixed-seed schedules from earlier chaos suites
	// must keep reproducing bit-for-bit, so corruption schedules are
	// built explicitly (see RandomAuditSchedule, RandomPlanSchedule).
	KindCorruptArtifact
	// KindFlipVerdict fires only at "core.verdict": core flips the rung
	// verdict it is about to return, simulating an unsound engine edge
	// case the type system cannot rule out. Never drawn by
	// RandomSchedule (same compatibility argument as
	// KindCorruptArtifact).
	KindFlipVerdict
)

func (k Kind) String() string {
	switch k {
	case KindBudget:
		return "budget"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindCorruptArtifact:
		return "corrupt-artifact"
	case KindFlipVerdict:
		return "flip-verdict"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Points lists the canonical fault-point names, one per analyzer
// phase boundary. Harnesses draw from this list; the engines fire
// them via guard.Point/guard.FirePoint.
var Points = []string{
	"parse.schema",   // schema text → DTD (server layer)
	"parse.query",    // query text → AST (server layer)
	"parse.update",   // update text → AST (server layer)
	"parse.document", // document text → tree (server layer)
	"core.analyze",   // entry of one ladder rung
	"infer.chains",   // explicit-set chain inference start
	"infer.conflict", // explicit-set conflict check start
	"cdag.build",     // CDAG construction start
	"cdag.conflict",  // CDAG conflict check start
	"types.check",    // type-set baseline start
	"paths.check",    // path-overlap baseline start
	"core.artifact",  // compiled artifact selected for a request
	"core.verdict",   // rung verdict about to be returned
}

// PlanPoints lists the fault points of the prepared-analysis pipeline
// (internal/plan), one per stage. They live in their own list —
// Points is frozen: RandomSchedule indexes it, so appending would
// silently change which faults a fixed seed draws and break the
// reproducibility of every recorded chaos run. Plan-aware harnesses
// arm them via RandomPlanSchedule or explicit Faults.
var PlanPoints = []string{
	"core.plan/fingerprint", // normalize + content fingerprints (cache key)
	"core.plan/lookup",      // plan-cache consultation
	"core.plan/kfactors",    // Table 3 k-factors + admission (cold stage)
	"core.plan/infer",       // CDAG chain inference (cold stage)
	"core.plan/artifact",    // prepared plan handed to the caller
}

// ErrInjected is the sentinel wrapped by every KindError injection.
var ErrInjected = errors.New("injected fault")

// PanicValue is the payload of every KindPanic injection, so harness
// assertions can tell injected panics from genuine engine bugs.
type PanicValue struct{ Point string }

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Point)
}

// Fault arms one injection: at the After-th hit (1-based; 0 means
// first) of the named point, inject Kind. Each fault fires at most
// once.
type Fault struct {
	Point string
	Kind  Kind
	After int
}

// Schedule is a deterministic set of armed faults shared by every
// analysis under one context. It is safe for concurrent use.
type Schedule struct {
	// OnFire, when non-nil, is invoked each time an armed fault fires,
	// before the injection takes effect — in particular before a
	// KindStall blocks. Harnesses use it as a synchronization point
	// ("the worker is now wedged") instead of polling wall-clock
	// deadlines. Set it before attaching the schedule to a context;
	// it must not block.
	OnFire func(f Fault)

	mu     sync.Mutex
	faults []Fault
	done   []bool
	hits   map[string]int
	fired  []string
}

// NewSchedule arms the given faults.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{
		faults: faults,
		done:   make([]bool, len(faults)),
		hits:   make(map[string]int),
	}
}

// RandomSchedule draws n faults with random points, kinds and hit
// counts from rng — the harness's seeded source — keeping the result
// fully deterministic for a fixed seed.
func RandomSchedule(rng *rand.Rand, n int) *Schedule {
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{
			Point: Points[rng.Intn(len(Points))],
			Kind:  Kind(rng.Intn(3)),
			After: 1 + rng.Intn(3),
		}
	}
	return NewSchedule(faults...)
}

// RandomAuditSchedule draws n faults for the sentinel containment
// suite: each is either an unsoundness fault — corrupt-artifact at
// "core.artifact" or flip-verdict at "core.verdict" — or one of the
// classic kinds at a random point, all from rng so a fixed seed
// reproduces the schedule. At least one unsoundness fault is always
// armed (a containment run with nothing to contain proves nothing).
func RandomAuditSchedule(rng *rand.Rand, n int) *Schedule {
	if n < 1 {
		n = 1
	}
	faults := make([]Fault, n)
	for i := range faults {
		if i == 0 || rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				faults[i] = Fault{Point: "core.artifact", Kind: KindCorruptArtifact, After: 1 + rng.Intn(3)}
			} else {
				faults[i] = Fault{Point: "core.verdict", Kind: KindFlipVerdict, After: 1 + rng.Intn(3)}
			}
			continue
		}
		faults[i] = Fault{
			Point: Points[rng.Intn(len(Points))],
			Kind:  Kind(rng.Intn(3)),
			After: 1 + rng.Intn(3),
		}
	}
	return NewSchedule(faults...)
}

// RandomPlanSchedule draws n faults for the prepared-plan chaos
// suite: each is either a plan-stage fault — one of PlanPoints with a
// classic kind, or corrupt-artifact at "core.plan/artifact" — or a
// classic kind at a random legacy point, all from rng so a fixed seed
// reproduces the schedule. At least one plan-stage fault is always
// armed (a plan chaos run that never touches the pipeline proves
// nothing). Like RandomAuditSchedule it lives apart from
// RandomSchedule so legacy fixed-seed suites keep reproducing
// bit-for-bit.
func RandomPlanSchedule(rng *rand.Rand, n int) *Schedule {
	if n < 1 {
		n = 1
	}
	faults := make([]Fault, n)
	for i := range faults {
		if i == 0 || rng.Intn(2) == 0 {
			if rng.Intn(4) == 0 {
				faults[i] = Fault{Point: "core.plan/artifact", Kind: KindCorruptArtifact, After: 1 + rng.Intn(3)}
			} else {
				faults[i] = Fault{
					Point: PlanPoints[rng.Intn(len(PlanPoints))],
					Kind:  Kind(rng.Intn(3)),
					After: 1 + rng.Intn(3),
				}
			}
			continue
		}
		faults[i] = Fault{
			Point: Points[rng.Intn(len(Points))],
			Kind:  Kind(rng.Intn(3)),
			After: 1 + rng.Intn(3),
		}
	}
	return NewSchedule(faults...)
}

// Fired returns a description of every fault that has fired, in
// firing order.
func (s *Schedule) Fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.fired...)
}

// Hits returns the per-point hit counts observed so far.
func (s *Schedule) Hits() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.hits))
	for k, v := range s.hits {
		out[k] = v
	}
	return out
}

// String summarises the armed faults, sorted for stable output.
func (s *Schedule) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	descs := make([]string, len(s.faults))
	for i, f := range s.faults {
		descs[i] = fmt.Sprintf("%s/%s@%d", f.Point, f.Kind, f.After)
	}
	sort.Strings(descs)
	return fmt.Sprintf("schedule%v", descs)
}

// fire records a hit of point and injects the first matching armed
// fault, if any.
func (s *Schedule) fire(ctx context.Context, point string) error {
	s.mu.Lock()
	s.hits[point]++
	hit := s.hits[point]
	idx := -1
	for i, f := range s.faults {
		if s.done[i] || f.Point != point {
			continue
		}
		after := f.After
		if after <= 0 {
			after = 1
		}
		if hit == after {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return nil
	}
	f := s.faults[idx]
	s.done[idx] = true
	s.fired = append(s.fired, fmt.Sprintf("%s/%s@%d", f.Point, f.Kind, hit))
	s.mu.Unlock()

	if s.OnFire != nil {
		s.OnFire(f)
	}
	switch f.Kind {
	case KindBudget:
		return &guard.LimitError{Resource: "fault:" + point}
	case KindError:
		return fmt.Errorf("faultinject: at %s: %w", point, ErrInjected)
	case KindStall:
		<-ctx.Done()
		return ctx.Err()
	case KindCorruptArtifact:
		return guard.ErrArtifactCorrupt
	case KindFlipVerdict:
		return guard.ErrVerdictFlip
	default:
		//xqvet:ignore panicdiscipline KindPanic deliberately injects a raw panic so harnesses can prove the guard boundary converts it
		panic(PanicValue{Point: point})
	}
}

type ctxKey struct{}

// With attaches the schedule to ctx; every fault point fired under
// the returned context consults it.
func With(ctx context.Context, s *Schedule) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the schedule attached to ctx, if any.
func FromContext(ctx context.Context) *Schedule {
	s, _ := ctx.Value(ctxKey{}).(*Schedule)
	return s
}

var enableOnce sync.Once

// Enable installs the process-wide guard fault hook (idempotent).
// Contexts without a schedule are unaffected, so enabling in one test
// does not perturb others beyond one context lookup per point.
func Enable() {
	enableOnce.Do(func() {
		guard.SetFaultHook(func(ctx context.Context, point string) error {
			s := FromContext(ctx)
			if s == nil {
				return nil
			}
			return s.fire(ctx, point)
		})
	})
}
