package faultinject

// Filesystem fault injection for the durable-state layer (package
// statefile): CrashFS interposes on a statefile.FS and, at scheduled
// operation indices, injects the three failure modes a crash-safe
// store must survive — a failed write, a *partial* (torn) write, a
// failed fsync, and the kill-9 crash that ends the process mid-
// operation. Schedules are deterministic: the fault fires at the N-th
// counted operation, so a seeded harness reproduces a run exactly.

import (
	"errors"
	"io/fs"
	"sync"

	"xqindep/internal/statefile"
)

// FS fault sentinels.
var (
	// ErrInjectedFS marks a non-fatal injected filesystem error (the
	// operation failed; the process keeps running).
	ErrInjectedFS = errors.New("faultinject: injected fs error")
	// ErrCrashed marks every operation attempted after an FSCrash: the
	// process is "dead" and the harness must reboot onto a fresh FS
	// view to continue.
	ErrCrashed = errors.New("faultinject: fs crashed (kill-9)")
)

// FSFaultKind selects what an armed filesystem fault injects.
type FSFaultKind int

const (
	// FSErrWrite fails the write outright; nothing reaches the file.
	FSErrWrite FSFaultKind = iota
	// FSShortWrite persists only Keep bytes of the write, then fails —
	// the classic torn write.
	FSShortWrite
	// FSErrSync fails the fsync; the data stays volatile and is
	// subject to loss at a later crash.
	FSErrSync
	// FSCrash kills the process at this operation: the operation and
	// every later one fail with ErrCrashed, and the backing MemFS
	// drops unsynced data down to Keep bytes per file (the torn tail a
	// power cut leaves behind).
	FSCrash
)

func (k FSFaultKind) String() string {
	switch k {
	case FSErrWrite:
		return "err-write"
	case FSShortWrite:
		return "short-write"
	case FSErrSync:
		return "err-sync"
	case FSCrash:
		return "crash"
	}
	return "FSFaultKind(?)"
}

// FSFault arms one injection at the Op-th (1-based) counted mutating
// operation. Counted operations: OpenFile, Write, Sync, Truncate,
// Rename, Remove, SyncDir.
type FSFault struct {
	Op   int
	Kind FSFaultKind
	// Keep bounds what survives: bytes of the in-flight write for
	// FSShortWrite, unsynced bytes retained per file for FSCrash.
	Keep int
}

// CrashFS wraps a statefile.MemFS with a deterministic fault
// schedule. Faults target the write/sync/metadata operations the
// statefile protocols depend on; read-side operations pass through
// (until a crash, after which everything fails). Safe for concurrent
// use.
type CrashFS struct {
	mem *statefile.MemFS

	mu      sync.Mutex
	faults  []FSFault
	ops     int
	crashed bool
	fired   []string
}

// NewCrashFS arms faults over mem.
func NewCrashFS(mem *statefile.MemFS, faults ...FSFault) *CrashFS {
	return &CrashFS{mem: mem, faults: faults}
}

// Crashed reports whether an FSCrash has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Ops returns the count of mutating operations observed so far.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Fired describes the faults that have fired, in order.
func (c *CrashFS) Fired() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.fired...)
}

// step counts one mutating operation and returns the fault armed for
// it, if any. After a crash every operation reports ErrCrashed.
func (c *CrashFS) step(op string) (FSFault, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return FSFault{}, ErrCrashed
	}
	c.ops++
	for _, f := range c.faults {
		if f.Op != c.ops {
			continue
		}
		c.fired = append(c.fired, op+"/"+f.Kind.String())
		if f.Kind == FSCrash {
			c.crashed = true
			keep := f.Keep
			c.mu.Unlock()
			// The power cut: unsynced tails shrink to at most keep
			// bytes per file. Deterministic for a fixed schedule.
			c.mem.Crash(func(string, int) int { return keep })
			c.mu.Lock()
			return f, ErrCrashed
		}
		return f, nil
	}
	return FSFault{}, nil
}

func (c *CrashFS) OpenFile(name string, flag int, perm fs.FileMode) (statefile.File, error) {
	if _, err := c.step("open"); err != nil {
		return nil, err
	}
	f, err := c.mem.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) Rename(oldname, newname string) error {
	if _, err := c.step("rename"); err != nil {
		return err
	}
	return c.mem.Rename(oldname, newname)
}

func (c *CrashFS) Remove(name string) error {
	if _, err := c.step("remove"); err != nil {
		return err
	}
	return c.mem.Remove(name)
}

func (c *CrashFS) MkdirAll(dir string, perm fs.FileMode) error {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return c.mem.MkdirAll(dir, perm)
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return c.mem.ReadDir(dir)
}

func (c *CrashFS) SyncDir(dir string) error {
	f, err := c.step("syncdir")
	if err != nil {
		return err
	}
	if f.Kind == FSErrSync && f.Op > 0 {
		return ErrInjectedFS
	}
	return c.mem.SyncDir(dir)
}

// crashFile interposes on the per-file operations.
type crashFile struct {
	fs *CrashFS
	f  statefile.File
}

func (cf *crashFile) Read(p []byte) (int, error) {
	if cf.fs.Crashed() {
		return 0, ErrCrashed
	}
	return cf.f.Read(p)
}

func (cf *crashFile) Write(p []byte) (int, error) {
	f, err := cf.fs.step("write")
	if err != nil {
		return 0, err
	}
	if f.Op > 0 {
		switch f.Kind {
		case FSErrWrite:
			return 0, ErrInjectedFS
		case FSShortWrite:
			keep := f.Keep
			if keep < 0 {
				keep = 0
			}
			if keep > len(p) {
				keep = len(p)
			}
			n, _ := cf.f.Write(p[:keep])
			return n, ErrInjectedFS
		}
	}
	return cf.f.Write(p)
}

func (cf *crashFile) Sync() error {
	f, err := cf.fs.step("sync")
	if err != nil {
		return err
	}
	if f.Op > 0 && f.Kind == FSErrSync {
		return ErrInjectedFS
	}
	return cf.f.Sync()
}

func (cf *crashFile) Truncate(size int64) error {
	if _, err := cf.fs.step("truncate"); err != nil {
		return err
	}
	return cf.f.Truncate(size)
}

func (cf *crashFile) Size() (int64, error) {
	if cf.fs.Crashed() {
		return 0, ErrCrashed
	}
	return cf.f.Size()
}

func (cf *crashFile) Close() error {
	if cf.fs.Crashed() {
		return ErrCrashed
	}
	return cf.f.Close()
}
