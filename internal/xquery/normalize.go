package xquery

import "xqindep/internal/guard"

// Normalize rewrites nested for-expressions into binding-nested form:
//
//	for $x in E return for $y in F return R   (with $x not free in R)
//	⇒ for $y in (for $x in E return F) return R
//
// The rewriting is the standard FLWR un-nesting; it preserves the
// dynamic semantics (iteration order and bindings are unchanged) and
// lets chain inference process pure navigation prefixes in one pass.
// The CDAG engine normalizes its inputs; the explicit-set reference
// engine works on the paper-shaped AST.
func Normalize(q Query) Query {
	switch n := q.(type) {
	case Empty, StringLit, Var, Step:
		return q
	case Sequence:
		return Sequence{Left: Normalize(n.Left), Right: Normalize(n.Right)}
	case Element:
		return Element{Tag: n.Tag, Content: Normalize(n.Content)}
	case If:
		return If{Cond: Normalize(n.Cond), Then: Normalize(n.Then), Else: Normalize(n.Else)}
	case Let:
		return Let{Var: n.Var, Bind: Normalize(n.Bind), Return: Normalize(n.Return)}
	case For:
		f := For{Var: n.Var, In: Normalize(n.In), Return: Normalize(n.Return)}
		return rotateFor(f)
	default:
		panic(&guard.InternalError{Value: "xquery: Normalize: unknown node"})
	}
}

// rotateFor applies the un-nesting rotation at one for-node until it
// no longer applies.
func rotateFor(f For) Query {
	for {
		inner, ok := f.Return.(For)
		if !ok {
			return f
		}
		if inner.Var == f.Var {
			return f
		}
		free := make(map[string]bool)
		FreeQueryVars(inner.Return, free)
		if free[f.Var] {
			return f
		}
		// Guard against capture: the inner variable must not occur
		// free in the outer binding expression (always true for
		// parser-generated fresh variables, checked for safety).
		freeIn := make(map[string]bool)
		FreeQueryVars(f.In, freeIn)
		if freeIn[inner.Var] {
			return f
		}
		newIn := rotateFor(For{Var: f.Var, In: f.In, Return: inner.In})
		f = For{Var: inner.Var, In: asQuery(newIn), Return: inner.Return}
	}
}

func asQuery(q Query) Query { return q }

// NormalizeUpdate applies Normalize to every query embedded in u and
// un-nests update-level for-expressions the same way.
func NormalizeUpdate(u Update) Update {
	switch n := u.(type) {
	case UEmpty:
		return u
	case USeq:
		return USeq{Left: NormalizeUpdate(n.Left), Right: NormalizeUpdate(n.Right)}
	case UIf:
		return UIf{Cond: Normalize(n.Cond), Then: NormalizeUpdate(n.Then), Else: NormalizeUpdate(n.Else)}
	case ULet:
		return ULet{Var: n.Var, Bind: Normalize(n.Bind), Body: NormalizeUpdate(n.Body)}
	case UFor:
		f := UFor{Var: n.Var, In: Normalize(n.In), Body: NormalizeUpdate(n.Body)}
		return rotateUFor(f)
	case Delete:
		return Delete{Target: Normalize(n.Target)}
	case Rename:
		return Rename{Target: Normalize(n.Target), As: n.As}
	case Insert:
		return Insert{Source: Normalize(n.Source), Pos: n.Pos, Target: Normalize(n.Target)}
	case Replace:
		return Replace{Target: Normalize(n.Target), Source: Normalize(n.Source)}
	default:
		panic(&guard.InternalError{Value: "xquery: NormalizeUpdate: unknown node"})
	}
}

func rotateUFor(f UFor) Update {
	for {
		inner, ok := f.Body.(UFor)
		if !ok {
			return f
		}
		if inner.Var == f.Var {
			return f
		}
		free := make(map[string]bool)
		FreeUpdateVars(inner.Body, free)
		if free[f.Var] {
			return f
		}
		freeIn := make(map[string]bool)
		FreeQueryVars(f.In, freeIn)
		if freeIn[inner.Var] {
			return f
		}
		newIn := Normalize(For{Var: f.Var, In: f.In, Return: inner.In})
		f = UFor{Var: inner.Var, In: newIn, Body: inner.Body}
	}
}
