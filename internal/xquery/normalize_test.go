package xquery

import (
	"strings"
	"testing"
)

func TestNormalizeRotation(t *testing.T) {
	// The canonical nested navigation: rotation turns the right-nested
	// paper encoding into binding-nested form.
	q := MustParseQuery("//a//c")
	n := Normalize(q)
	s := n.String()
	// The outermost node must now be a for whose Return is the final
	// step (no further for inside the return).
	outer, ok := n.(For)
	if !ok {
		t.Fatalf("normalized root is %T", n)
	}
	if _, nested := outer.Return.(For); nested {
		t.Errorf("rotation incomplete: return still a for\n%s", s)
	}
	if !strings.HasSuffix(s, "child::c") {
		t.Errorf("normalized form should end with the last step: %s", s)
	}
}

func TestNormalizeStopsWhenVariableUsed(t *testing.T) {
	// The inner return references the outer variable: rotation must not
	// apply (it would unbind $x).
	q := MustParseQuery("for $x in //a return for $y in //b return ($x, $y)")
	n := Normalize(q)
	outer, ok := n.(For)
	if !ok {
		t.Fatalf("normalized root is %T", n)
	}
	if outer.Var != "$x" {
		t.Errorf("outer binding changed: %s", n)
	}
	if _, nested := outer.Return.(For); !nested {
		t.Errorf("rotation should not have fired: %s", n)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	inputs := []string{
		"//a//c",
		"//keyword/ancestor::listitem/text/keyword",
		"for $x in //a return <w>{$x/b}</w>",
		"if (//a) then //b else ()",
		"let $x := //a return $x/b",
		"()",
	}
	for _, in := range inputs {
		q := MustParseQuery(in)
		n1 := Normalize(q)
		n2 := Normalize(n1)
		if n1.String() != n2.String() {
			t.Errorf("Normalize not idempotent on %q:\n  %s\n  %s", in, n1, n2)
		}
	}
}

func TestNormalizeUpdate(t *testing.T) {
	u := MustParseUpdate("for $x in //a return for $y in $x/b return delete $y/c")
	n := NormalizeUpdate(u)
	// $y's body does not use $x, so the update fors rotate.
	outer, ok := n.(UFor)
	if !ok {
		t.Fatalf("normalized root is %T", n)
	}
	if outer.Var != "$y" {
		t.Errorf("rotation did not fire: %s", n)
	}
	// All primitive kinds survive normalization structurally.
	for _, in := range []string{
		"delete //a",
		"for $x in //a return rename $x as b",
		"for $x in //a return insert <b/> into $x",
		"for $x in //a return replace $x with <b/>",
		"if (//a) then delete //b else delete //c",
		"let $x := //a return delete $x/b",
		"(delete //a, delete //b)",
		"()",
	} {
		u := MustParseUpdate(in)
		n := NormalizeUpdate(u)
		n2 := NormalizeUpdate(n)
		if n.String() != n2.String() {
			t.Errorf("NormalizeUpdate not idempotent on %q", in)
		}
	}
}

// TestNormalizePreservesFreeVars: normalization never changes the free
// variables of an expression.
func TestNormalizePreservesFreeVars(t *testing.T) {
	queries := []string{
		"//a//c",
		"for $x in $z/a return for $y in $x/b return $y/c",
		"for $x in //a return ($x, $w)",
	}
	for _, in := range queries {
		q := MustParseQuery(in)
		before := map[string]bool{}
		FreeQueryVars(q, before)
		after := map[string]bool{}
		FreeQueryVars(Normalize(q), after)
		if len(before) != len(after) {
			t.Errorf("free vars changed for %q: %v vs %v", in, before, after)
			continue
		}
		for v := range before {
			if !after[v] {
				t.Errorf("free var %s lost in %q", v, in)
			}
		}
	}
}
