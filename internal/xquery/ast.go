// Package xquery defines the abstract syntax of the paper's XQuery
// fragment and XQuery Update Facility fragment (Section 2), together
// with a parser that desugars XPath path expressions into the core
// grammar (nested for-expressions over single steps), exactly as the
// paper prescribes.
//
// Core query grammar:
//
//	q ::= () | q,q | <a>q</a> | "s" | $x/step
//	    | for $x in q return q | let $x := q return q
//	    | if q then q else q
//
// Core update grammar:
//
//	u ::= () | u,u | for $x in q return u | let $x := q return u
//	    | if q then u else u
//	    | delete q | rename q as a | insert q pos q | replace q with q
//
// After parsing, every path expression has been decomposed: the only
// navigation construct is Step (one axis and node test applied to a
// variable).
package xquery

import (
	"fmt"

	"xqindep/internal/guard"
)

// RootVar is the reserved name of the single free variable of
// quasi-closed queries and updates, bound to the root of the input
// document (the paper's x with γ = {x ↦ lt}).
const RootVar = "$root"

// Axis enumerates the XPath axes of the fragment.
type Axis int

const (
	Self Axis = iota
	Child
	Descendant
	DescendantOrSelf
	Parent
	Ancestor
	AncestorOrSelf
	PrecedingSibling
	FollowingSibling
)

var axisNames = map[Axis]string{
	Self:             "self",
	Child:            "child",
	Descendant:       "descendant",
	DescendantOrSelf: "descendant-or-self",
	Parent:           "parent",
	Ancestor:         "ancestor",
	AncestorOrSelf:   "ancestor-or-self",
	PrecedingSibling: "preceding-sibling",
	FollowingSibling: "following-sibling",
}

func (a Axis) String() string { return axisNames[a] }

// IsRecursive reports whether the axis can traverse unboundedly many
// schema levels; this drives the R() component of the multiplicity
// analysis (Table 3).
func (a Axis) IsRecursive() bool {
	switch a {
	case Descendant, DescendantOrSelf, Ancestor, AncestorOrSelf:
		return true
	}
	return false
}

// IsForward reports membership in the (STEPF) axis set
// {self, child, descendant-or-self}; the remaining axes are handled by
// rule (STEPUH).
func (a Axis) IsForward() bool {
	switch a {
	case Self, Child, DescendantOrSelf:
		return true
	}
	return false
}

// TestKind discriminates node tests φ.
type TestKind int

const (
	// TagTest matches elements with a given tag (φ = a).
	TagTest TestKind = iota
	// TextTest matches text nodes (φ = text()).
	TextTest
	// NodeAny matches every node (φ = node()).
	NodeAny
	// WildcardTest matches every element node (φ = *).
	WildcardTest
)

// NodeTest is a node test φ.
type NodeTest struct {
	Kind TestKind
	Tag  string // TagTest only
}

func (t NodeTest) String() string {
	switch t.Kind {
	case TagTest:
		return t.Tag
	case TextTest:
		return "text()"
	case NodeAny:
		return "node()"
	case WildcardTest:
		return "*"
	}
	return "?"
}

// Tag builds a tag test.
func Tag(name string) NodeTest { return NodeTest{Kind: TagTest, Tag: name} }

// Text builds text().
func Text() NodeTest { return NodeTest{Kind: TextTest} }

// AnyNode builds node().
func AnyNode() NodeTest { return NodeTest{Kind: NodeAny} }

// Wildcard builds *.
func Wildcard() NodeTest { return NodeTest{Kind: WildcardTest} }

// Query is the interface of query AST nodes.
type Query interface {
	fmt.Stringer
	isQuery()
}

// Empty is the empty sequence ().
type Empty struct{}

// Sequence is q1, q2.
type Sequence struct{ Left, Right Query }

// StringLit is the constant string query "s".
type StringLit struct{ Value string }

// Var references a bound variable $x; it abbreviates $x/self::node()
// in the formal grammar but is kept distinct for readability and is
// treated as such by inference and evaluation.
type Var struct{ Name string }

// Step is the single-step path $x/axis::φ.
type Step struct {
	Var  string
	Axis Axis
	Test NodeTest
}

// Element is the constructor <a>q</a>.
type Element struct {
	Tag     string
	Content Query
}

// For is for $x in In return Return.
type For struct {
	Var    string
	In     Query
	Return Query
}

// Let is let $x := Bind return Return.
type Let struct {
	Var    string
	Bind   Query
	Return Query
}

// If is if Cond then Then else Else.
type If struct {
	Cond, Then, Else Query
}

func (Empty) isQuery()     {}
func (Sequence) isQuery()  {}
func (StringLit) isQuery() {}
func (Var) isQuery()       {}
func (Step) isQuery()      {}
func (Element) isQuery()   {}
func (For) isQuery()       {}
func (Let) isQuery()       {}
func (If) isQuery()        {}

func (Empty) String() string       { return "()" }
func (q Sequence) String() string  { return "(" + q.Left.String() + ", " + q.Right.String() + ")" }
func (q StringLit) String() string { return fmt.Sprintf("%q", q.Value) }
func (q Var) String() string       { return q.Name }
func (q Step) String() string {
	return fmt.Sprintf("%s/%s::%s", q.Var, q.Axis, q.Test)
}
func (q Element) String() string {
	if _, ok := q.Content.(Empty); ok {
		return "<" + q.Tag + "/>"
	}
	return "<" + q.Tag + ">{" + q.Content.String() + "}</" + q.Tag + ">"
}
func (q For) String() string {
	return fmt.Sprintf("for %s in %s return %s", q.Var, q.In, q.Return)
}
func (q Let) String() string {
	return fmt.Sprintf("let %s := %s return %s", q.Var, q.Bind, q.Return)
}
func (q If) String() string {
	return fmt.Sprintf("if (%s) then %s else %s", q.Cond, q.Then, q.Else)
}

// Update is the interface of update AST nodes.
type Update interface {
	fmt.Stringer
	isUpdate()
}

// UEmpty is the empty update ().
type UEmpty struct{}

// USeq is u1, u2.
type USeq struct{ Left, Right Update }

// UFor is for $x in In return Body.
type UFor struct {
	Var  string
	In   Query
	Body Update
}

// ULet is let $x := Bind return Body.
type ULet struct {
	Var  string
	Bind Query
	Body Update
}

// UIf is if Cond then Then else Else.
type UIf struct {
	Cond       Query
	Then, Else Update
}

// InsertPos is the position designator of insert updates.
type InsertPos int

const (
	// Into inserts among the target's children at an arbitrary
	// position (the implementation appends, as permitted by W3C).
	Into InsertPos = iota
	// IntoFirst inserts as first child of the target.
	IntoFirst
	// IntoLast inserts as last child of the target.
	IntoLast
	// Before inserts as preceding sibling of the target.
	Before
	// After inserts as following sibling of the target.
	After
)

func (p InsertPos) String() string {
	switch p {
	case Into:
		return "into"
	case IntoFirst:
		return "as first into"
	case IntoLast:
		return "as last into"
	case Before:
		return "before"
	case After:
		return "after"
	}
	return "?"
}

// IsInto reports whether p inserts below the target node (into / as
// first / as last) rather than beside it.
func (p InsertPos) IsInto() bool { return p == Into || p == IntoFirst || p == IntoLast }

// Delete is delete q0.
type Delete struct{ Target Query }

// Rename is rename q0 as a.
type Rename struct {
	Target Query
	As     string
}

// Insert is insert q pos q0.
type Insert struct {
	Source Query
	Pos    InsertPos
	Target Query
}

// Replace is replace q0 with q.
type Replace struct {
	Target Query
	Source Query
}

func (UEmpty) isUpdate()  {}
func (USeq) isUpdate()    {}
func (UFor) isUpdate()    {}
func (ULet) isUpdate()    {}
func (UIf) isUpdate()     {}
func (Delete) isUpdate()  {}
func (Rename) isUpdate()  {}
func (Insert) isUpdate()  {}
func (Replace) isUpdate() {}

func (UEmpty) String() string   { return "()" }
func (u USeq) String() string   { return "(" + u.Left.String() + ", " + u.Right.String() + ")" }
func (u UFor) String() string   { return fmt.Sprintf("for %s in %s return %s", u.Var, u.In, u.Body) }
func (u ULet) String() string   { return fmt.Sprintf("let %s := %s return %s", u.Var, u.Bind, u.Body) }
func (u UIf) String() string    { return fmt.Sprintf("if (%s) then %s else %s", u.Cond, u.Then, u.Else) }
func (u Delete) String() string { return "delete " + u.Target.String() }
func (u Rename) String() string { return fmt.Sprintf("rename %s as %s", u.Target, u.As) }
func (u Insert) String() string { return fmt.Sprintf("insert %s %s %s", u.Source, u.Pos, u.Target) }
func (u Replace) String() string {
	return fmt.Sprintf("replace %s with %s", u.Target, u.Source)
}

// FreeQueryVars collects the free variables of q into out.
func FreeQueryVars(q Query, out map[string]bool) {
	switch n := q.(type) {
	case Empty, StringLit:
	case Var:
		out[n.Name] = true
	case Step:
		out[n.Var] = true
	case Sequence:
		FreeQueryVars(n.Left, out)
		FreeQueryVars(n.Right, out)
	case Element:
		FreeQueryVars(n.Content, out)
	case For:
		FreeQueryVars(n.In, out)
		inner := make(map[string]bool)
		FreeQueryVars(n.Return, inner)
		delete(inner, n.Var)
		for v := range inner {
			out[v] = true
		}
	case Let:
		FreeQueryVars(n.Bind, out)
		inner := make(map[string]bool)
		FreeQueryVars(n.Return, inner)
		delete(inner, n.Var)
		for v := range inner {
			out[v] = true
		}
	case If:
		FreeQueryVars(n.Cond, out)
		FreeQueryVars(n.Then, out)
		FreeQueryVars(n.Else, out)
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("xquery: unknown query node %T", q)})
	}
}

// FreeUpdateVars collects the free variables of u into out.
func FreeUpdateVars(u Update, out map[string]bool) {
	switch n := u.(type) {
	case UEmpty:
	case USeq:
		FreeUpdateVars(n.Left, out)
		FreeUpdateVars(n.Right, out)
	case UFor:
		FreeQueryVars(n.In, out)
		inner := make(map[string]bool)
		FreeUpdateVars(n.Body, inner)
		delete(inner, n.Var)
		for v := range inner {
			out[v] = true
		}
	case ULet:
		FreeQueryVars(n.Bind, out)
		inner := make(map[string]bool)
		FreeUpdateVars(n.Body, inner)
		delete(inner, n.Var)
		for v := range inner {
			out[v] = true
		}
	case UIf:
		FreeQueryVars(n.Cond, out)
		FreeUpdateVars(n.Then, out)
		FreeUpdateVars(n.Else, out)
	case Delete:
		FreeQueryVars(n.Target, out)
	case Rename:
		FreeQueryVars(n.Target, out)
	case Insert:
		FreeQueryVars(n.Source, out)
		FreeQueryVars(n.Target, out)
	case Replace:
		FreeQueryVars(n.Target, out)
		FreeQueryVars(n.Source, out)
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("xquery: unknown update node %T", u)})
	}
}

// QuasiClosedQuery reports whether q's only free variable is RootVar
// (or none at all) — the form the analyzer accepts.
func QuasiClosedQuery(q Query) bool {
	free := make(map[string]bool)
	FreeQueryVars(q, free)
	delete(free, RootVar)
	return len(free) == 0
}

// QuasiClosedUpdate reports whether u's only free variable is RootVar.
func QuasiClosedUpdate(u Update) bool {
	free := make(map[string]bool)
	FreeUpdateVars(u, free)
	delete(free, RootVar)
	return len(free) == 0
}

// Size returns the number of AST nodes of q — the |exp| of the
// complexity statements (Theorem 6.1).
func Size(q Query) int {
	n := 0
	walkQuery(q, func(Query) { n++ })
	return n
}

// UpdateSize returns the number of AST nodes of u, counting embedded
// queries.
func UpdateSize(u Update) int {
	n := 0
	walkUpdate(u, func(Update) { n++ }, func(Query) { n++ })
	return n
}

func walkQuery(q Query, f func(Query)) {
	f(q)
	switch n := q.(type) {
	case Sequence:
		walkQuery(n.Left, f)
		walkQuery(n.Right, f)
	case Element:
		walkQuery(n.Content, f)
	case For:
		walkQuery(n.In, f)
		walkQuery(n.Return, f)
	case Let:
		walkQuery(n.Bind, f)
		walkQuery(n.Return, f)
	case If:
		walkQuery(n.Cond, f)
		walkQuery(n.Then, f)
		walkQuery(n.Else, f)
	}
}

func walkUpdate(u Update, fu func(Update), fq func(Query)) {
	fu(u)
	switch n := u.(type) {
	case USeq:
		walkUpdate(n.Left, fu, fq)
		walkUpdate(n.Right, fu, fq)
	case UFor:
		walkQuery(n.In, fq)
		walkUpdate(n.Body, fu, fq)
	case ULet:
		walkQuery(n.Bind, fq)
		walkUpdate(n.Body, fu, fq)
	case UIf:
		walkQuery(n.Cond, fq)
		walkUpdate(n.Then, fu, fq)
		walkUpdate(n.Else, fu, fq)
	case Delete:
		walkQuery(n.Target, fq)
	case Rename:
		walkQuery(n.Target, fq)
	case Insert:
		walkQuery(n.Source, fq)
		walkQuery(n.Target, fq)
	case Replace:
		walkQuery(n.Target, fq)
		walkQuery(n.Source, fq)
	}
}

// UsesElementInForLet reports whether an element constructor occurs in
// the left-hand side (binding) expression of a for/let — the syntactic
// restriction the paper imposes (Section 2). The parser rejects such
// inputs; this predicate lets other layers re-check invariants.
func UsesElementInForLet(q Query) bool {
	bad := false
	var inBind func(Query)
	inBind = func(x Query) {
		walkQuery(x, func(y Query) {
			if _, ok := y.(Element); ok {
				bad = true
			}
		})
	}
	walkQuery(q, func(x Query) {
		switch n := x.(type) {
		case For:
			inBind(n.In)
		case Let:
			inBind(n.Bind)
		}
	})
	return bad
}
