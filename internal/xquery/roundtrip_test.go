package xquery_test

// The printer/parser round-trip property test: for every XMark view
// and update, the canonical rendering re-parses, and re-printing the
// re-parsed AST reproduces the rendering byte for byte. This pins the
// canonical form that expression fingerprints hash — any printer or
// parser change that breaks the fixpoint breaks plan-cache keying and
// fails here first.

import (
	"testing"

	"xqindep/internal/xmark"
	"xqindep/internal/xquery"
)

func roundTripQuery(t *testing.T, name string, q xquery.Query) {
	t.Helper()
	c1 := xquery.CanonicalQuery(q)
	q2, err := xquery.ParseQuery(c1)
	if err != nil {
		t.Fatalf("%s: canonical form does not re-parse: %v\ncanonical: %s", name, err, c1)
	}
	c2 := xquery.CanonicalQuery(q2)
	if c1 != c2 {
		t.Fatalf("%s: print→parse→print is not a fixpoint:\nfirst:  %s\nsecond: %s", name, c1, c2)
	}
}

func roundTripUpdate(t *testing.T, name string, u xquery.Update) {
	t.Helper()
	c1 := xquery.CanonicalUpdate(u)
	u2, err := xquery.ParseUpdate(c1)
	if err != nil {
		t.Fatalf("%s: canonical form does not re-parse: %v\ncanonical: %s", name, err, c1)
	}
	c2 := xquery.CanonicalUpdate(u2)
	if c1 != c2 {
		t.Fatalf("%s: print→parse→print is not a fixpoint:\nfirst:  %s\nsecond: %s", name, c1, c2)
	}
}

func TestCanonicalRoundTripXMarkViews(t *testing.T) {
	views := xmark.Views()
	if len(views) != 36 {
		t.Fatalf("expected 36 XMark views, got %d", len(views))
	}
	for _, v := range views {
		roundTripQuery(t, v.Name, v.AST)
		// The fingerprint hashes the canonical form of the normalized
		// AST; normalization must not leave the printable fragment.
		roundTripQuery(t, v.Name+"/normalized", xquery.Normalize(v.AST))
	}
}

func TestCanonicalRoundTripXMarkUpdates(t *testing.T) {
	upds := xmark.Updates()
	if len(upds) != 31 {
		t.Fatalf("expected 31 XMark updates, got %d", len(upds))
	}
	for _, u := range upds {
		roundTripUpdate(t, u.Name, u.AST)
		roundTripUpdate(t, u.Name+"/normalized", xquery.NormalizeUpdate(u.AST))
	}
}

// TestCanonicalRoundTripHandCases covers constructs thin on the XMark
// workload: element constructors with holes, let, nested predicates
// with or/and/not, comparisons, update forms.
func TestCanonicalRoundTripHandCases(t *testing.T) {
	queries := []string{
		`()`,
		`"lit"`,
		`$root/child::a`,
		`(/a/b, //c, "x")`,
		`let $x := /site/regions return ($x/child::africa, $x/child::asia)`,
		`for $x in //item return <wrap>{$x/name, <sep/>}</wrap>`,
		`if (//bidder) then //seller else ()`,
		`//item[payment and not(shipping)]/name`,
		`//person[address/city = "Oslo" or watching]/name`,
		`/site/people/person[profile/age >= 18][interest]/name`,
		`for $x in //item return if ($x/payment) then $x/name else $x/id`,
	}
	for _, src := range queries {
		q, err := xquery.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		roundTripQuery(t, src, q)
		roundTripQuery(t, src+"/normalized", xquery.Normalize(q))
	}
	updates := []string{
		`delete //seller`,
		`delete nodes /site/regions/africa/item[payment]`,
		`rename node //person/name as alias`,
		`replace node //item/payment with <payment>{"cash"}</payment>`,
		`insert node <note/> as first into //open_auction`,
		`(delete //bidder, for $x in //item return insert node <sold/> into $x)`,
		`for $p in //person return if ($p/watching) then delete $p/address else ()`,
		`let $r := /site/regions return delete $r/namerica`,
	}
	for _, src := range updates {
		u, err := xquery.ParseUpdate(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		roundTripUpdate(t, src, u)
		roundTripUpdate(t, src+"/normalized", xquery.NormalizeUpdate(u))
	}
}

// TestFingerprintStability: fingerprints collapse whitespace, binder
// naming and path sugar; distinct expressions keep distinct prints.
func TestFingerprintStability(t *testing.T) {
	same := [][2]string{
		{`//item/name`, "  //item/name\n"},
		{`/site/regions`, `/site/child::regions`},
		{`for $x in //item return $x/name`, `for $y in //item return $y/name`},
		{`//a/b`, `for $z in //a return $z/b`},
	}
	for _, pair := range same {
		a := xquery.MustParseQuery(pair[0])
		b := xquery.MustParseQuery(pair[1])
		if xquery.FingerprintQuery(a) != xquery.FingerprintQuery(b) {
			t.Errorf("fingerprints of equivalent %q and %q differ:\n%s\n%s",
				pair[0], pair[1],
				xquery.CanonicalQuery(xquery.Normalize(a)),
				xquery.CanonicalQuery(xquery.Normalize(b)))
		}
	}
	if xquery.FingerprintQuery(xquery.MustParseQuery(`//item`)) ==
		xquery.FingerprintQuery(xquery.MustParseQuery(`//person`)) {
		t.Error("distinct queries share a fingerprint")
	}
	ua := xquery.MustParseUpdate(`delete //seller`)
	ub := xquery.MustParseUpdate(`delete node //seller`)
	if xquery.FingerprintUpdate(ua) != xquery.FingerprintUpdate(ub) {
		t.Error("delete / delete node should fingerprint equally")
	}
	// A pair fingerprint must not collide with a component reordering.
	q1, u1 := xquery.MustParseQuery(`//item`), xquery.MustParseUpdate(`delete //person`)
	q2, u2 := xquery.MustParseQuery(`//person`), xquery.MustParseUpdate(`delete //item`)
	if xquery.FingerprintPair(q1, u1) == xquery.FingerprintPair(q2, u2) {
		t.Error("pair fingerprint ignores component roles")
	}
}
