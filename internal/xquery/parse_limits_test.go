package xquery

import (
	"strings"
	"testing"

	"xqindep/internal/guard"
)

// nestedQuery builds n nested parenthesised expressions around $x.
func nestedQuery(n int) string {
	return strings.Repeat("(", n) + "$x" + strings.Repeat(")", n)
}

func TestParseQueryLimits(t *testing.T) {
	cases := []struct {
		name  string
		input string
		lim   guard.Limits
		ok    bool
	}{
		{"depth under limit", nestedQuery(10), guard.Limits{MaxParseDepth: 64}, true},
		{"depth at limit boundary", nestedQuery(30), guard.Limits{MaxParseDepth: 64}, true},
		{"depth over limit", nestedQuery(200), guard.Limits{MaxParseDepth: 64}, false},
		{"default depth accepts normal queries", "for $b in /bib/book return $b/title", guard.Limits{}, true},
		{"default depth rejects pathological nesting", nestedQuery(100000), guard.Limits{}, false},
		{"steps under limit", "/" + strings.Repeat("a/", 10) + "a", guard.Limits{MaxParseDepth: 64}, true},
		{"steps over limit", "/" + strings.Repeat("a/", 200) + "a", guard.Limits{MaxParseDepth: 64}, false},
		{"input under size limit", "//a", guard.Limits{MaxParseInput: 64}, true},
		{"input over size limit", "//" + strings.Repeat("a", 100), guard.Limits{MaxParseInput: 64}, false},
		{"nested predicates over limit", "//a" + strings.Repeat("[b", 200) + strings.Repeat("]", 200), guard.Limits{MaxParseDepth: 64}, false},
		{"nested elements over limit", strings.Repeat("<a>", 200) + strings.Repeat("</a>", 200), guard.Limits{MaxParseDepth: 64}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseQueryLimited(c.input, c.lim)
			if c.ok && err != nil {
				t.Errorf("ParseQueryLimited(%d bytes) = %v, want success", len(c.input), err)
			}
			if !c.ok && err == nil {
				t.Errorf("ParseQueryLimited(%d bytes) succeeded, want limit error", len(c.input))
			}
		})
	}
}

func TestParseUpdateLimits(t *testing.T) {
	deepUpdate := func(n int) string {
		return strings.Repeat("if ($x) then ", n) + "delete //a"
	}
	cases := []struct {
		name  string
		input string
		lim   guard.Limits
		ok    bool
	}{
		{"normal update", "delete //a", guard.Limits{MaxParseDepth: 64}, true},
		{"nesting under limit", deepUpdate(10), guard.Limits{MaxParseDepth: 64}, true},
		{"nesting over limit", deepUpdate(200), guard.Limits{MaxParseDepth: 64}, false},
		{"input over size limit", "delete //" + strings.Repeat("a", 100), guard.Limits{MaxParseInput: 64}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseUpdateLimited(c.input, c.lim)
			if c.ok && err != nil {
				t.Errorf("ParseUpdateLimited = %v, want success", err)
			}
			if !c.ok && err == nil {
				t.Errorf("ParseUpdateLimited succeeded, want limit error")
			}
		})
	}
}
