package xquery

import (
	"fmt"
	"strings"
)

// Canonical printing renders an AST of the core grammar back into a
// single, deterministic surface form that ParseQuery/ParseUpdate
// accept and re-parse into an AST printing identically — the
// print→parse→print fixpoint the round-trip property test pins. The
// canonical form is what expression fingerprints hash, so two inputs
// that differ only in whitespace, sugar (paths vs nested for), binder
// names or sequence association fingerprint equally once normalized.
//
// Canonicalization rules:
//
//   - every binder is alpha-renamed to $v0, $v1, … in traversal
//     order (parser-generated fresh variables like $%1 are not even
//     parseable, so renaming is required, not cosmetic);
//   - sequences are flattened and always parenthesized: (a, b, c);
//   - if-expressions always print an explicit else branch;
//   - steps print with an explicit axis: $x/child::a;
//   - if-conditions print in the predicate grammar the parser reads
//     them back through: Sequence as "or", the and/comparison If
//     shape as "and", the not() If shape as "not(…)".
type printer struct {
	b     strings.Builder
	next  int
	avoid map[string]bool
}

// CanonicalQuery renders q in canonical form. The result re-parses
// for every AST the parser can produce; hand-built ASTs using shapes
// outside the parseable fragment may not round-trip.
func CanonicalQuery(q Query) string {
	p := newPrinter(func(avoid map[string]bool) { FreeQueryVars(q, avoid) })
	p.query(map[string]string{}, q)
	return p.b.String()
}

// CanonicalUpdate renders u in canonical form; see CanonicalQuery.
func CanonicalUpdate(u Update) string {
	p := newPrinter(func(avoid map[string]bool) { FreeUpdateVars(u, avoid) })
	p.update(map[string]string{}, u)
	return p.b.String()
}

func newPrinter(free func(map[string]bool)) *printer {
	avoid := make(map[string]bool)
	free(avoid)
	return &printer{avoid: avoid}
}

// fresh returns the next canonical binder name, skipping any name
// that collides with a free variable of the whole expression (which
// must keep referring to its environment binding).
func (p *printer) fresh() string {
	for {
		name := fmt.Sprintf("$v%d", p.next)
		p.next++
		if !p.avoid[name] {
			return name
		}
	}
}

// scoped runs body with binder v mapped to canonical name nv,
// restoring the outer mapping afterwards. The binding expression of a
// for/let is printed before entering the scope, since the binder is
// not visible there.
func scoped(env map[string]string, v, nv string, body func()) {
	old, had := env[v]
	env[v] = nv
	body()
	if had {
		env[v] = old
	} else {
		delete(env, v)
	}
}

// rn resolves a variable reference: bound variables print their
// canonical name, free ones (in practice only $root) print as-is.
func rn(env map[string]string, name string) string {
	if nv, ok := env[name]; ok {
		return nv
	}
	return name
}

// quote renders a string literal. The parser has no escape sequences,
// so a value containing the double quote switches to single quotes; a
// value containing both is not parseable in the first place and never
// reaches a round-trip.
func quote(v string) string {
	if strings.Contains(v, `"`) {
		return "'" + v + "'"
	}
	return `"` + v + `"`
}

// query prints q at the parser's parseSingle level.
func (p *printer) query(env map[string]string, q Query) {
	switch n := q.(type) {
	case Empty:
		p.b.WriteString("()")
	case StringLit:
		p.b.WriteString(quote(n.Value))
	case Var:
		p.b.WriteString(rn(env, n.Name))
	case Step:
		fmt.Fprintf(&p.b, "%s/%s::%s", rn(env, n.Var), n.Axis, n.Test)
	case Sequence:
		p.b.WriteString("(")
		for i, item := range flattenSeq(n, nil) {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.query(env, item)
		}
		p.b.WriteString(")")
	case Element:
		if _, ok := n.Content.(Empty); ok {
			fmt.Fprintf(&p.b, "<%s/>", n.Tag)
			return
		}
		fmt.Fprintf(&p.b, "<%s>{", n.Tag)
		p.query(env, n.Content)
		fmt.Fprintf(&p.b, "}</%s>", n.Tag)
	case For:
		nv := p.fresh()
		fmt.Fprintf(&p.b, "for %s in ", nv)
		p.query(env, n.In)
		p.b.WriteString(" return ")
		scoped(env, n.Var, nv, func() { p.query(env, n.Return) })
	case Let:
		nv := p.fresh()
		fmt.Fprintf(&p.b, "let %s := ", nv)
		p.query(env, n.Bind)
		p.b.WriteString(" return ")
		scoped(env, n.Var, nv, func() { p.query(env, n.Return) })
	case If:
		p.b.WriteString("if (")
		p.condOr(env, n.Cond)
		p.b.WriteString(") then ")
		p.query(env, n.Then)
		p.b.WriteString(" else ")
		p.query(env, n.Else)
	default:
		// Foreign node types cannot occur in parsed ASTs; render a
		// marker that fails re-parsing instead of panicking mid-print.
		fmt.Fprintf(&p.b, "?%T?", q)
	}
}

// flattenSeq collects the items of a (possibly nested) sequence in
// order; the parser rebuilds the left-associated spine, which
// flattens back to the same list.
func flattenSeq(q Query, out []Query) []Query {
	if s, ok := q.(Sequence); ok {
		return flattenSeq(s.Right, flattenSeq(s.Left, out))
	}
	return append(out, q)
}

func flattenUSeq(u Update, out []Update) []Update {
	if s, ok := u.(USeq); ok {
		return flattenUSeq(s.Right, flattenUSeq(s.Left, out))
	}
	return append(out, u)
}

// isAndIf recognises the shape parsePredicateAnd/-Cmp build for both
// "a and b" and structural comparisons: if (a) then b else ().
func isAndIf(q Query) (If, bool) {
	n, ok := q.(If)
	if !ok {
		return If{}, false
	}
	if _, empty := n.Else.(Empty); !empty {
		return If{}, false
	}
	return n, true
}

// isNotIf recognises the shape parsePredicateValue builds for
// not(…): if (inner) then () else "true".
func isNotIf(q Query) (If, bool) {
	n, ok := q.(If)
	if !ok {
		return If{}, false
	}
	if _, empty := n.Then.(Empty); !empty {
		return If{}, false
	}
	lit, ok := n.Else.(StringLit)
	if !ok || lit.Value != "true" {
		return If{}, false
	}
	return n, true
}

// condOr prints an if-condition at the parser's parsePredicateExpr
// level: sequences are or-chains there.
func (p *printer) condOr(env map[string]string, q Query) {
	if s, ok := q.(Sequence); ok {
		for i, item := range flattenSeq(s, nil) {
			if i > 0 {
				p.b.WriteString(" or ")
			}
			p.condAnd(env, item)
		}
		return
	}
	p.condAnd(env, q)
}

// condAnd prints at the parsePredicateAnd level: the left spine of
// and-shaped ifs flattens to "a and b and c".
func (p *printer) condAnd(env map[string]string, q Query) {
	n, ok := isAndIf(q)
	if !ok {
		p.condValue(env, q)
		return
	}
	// The not() shape has a "true" else branch, so it can never be
	// mistaken for the and shape here.
	var operands []Query
	var collect func(Query)
	collect = func(x Query) {
		if a, ok := isAndIf(x); ok {
			collect(a.Cond)
			operands = append(operands, a.Then)
			return
		}
		operands = append(operands, x)
	}
	collect(n.Cond)
	operands = append(operands, n.Then)
	for i, op := range operands {
		if i > 0 {
			p.b.WriteString(" and ")
		}
		p.condValue(env, op)
	}
}

// condValue prints at the parsePredicateValue level, parenthesizing
// the shapes that only parse at a higher predicate level.
func (p *printer) condValue(env map[string]string, q Query) {
	switch n := q.(type) {
	case Sequence:
		p.b.WriteString("(")
		p.condOr(env, n)
		p.b.WriteString(")")
		return
	case If:
		if not, ok := isNotIf(n); ok {
			p.b.WriteString("not(")
			p.condOr(env, not.Cond)
			p.b.WriteString(")")
			return
		}
		if _, ok := isAndIf(n); ok {
			p.b.WriteString("(")
			p.condAnd(env, n)
			p.b.WriteString(")")
			return
		}
		// A genuine if with a non-trivial else: the predicate grammar
		// admits it at value level through the keyword lookahead.
		p.query(env, n)
		return
	}
	// Everything else — variables, steps, literals, for/let (keyword
	// lookahead), element constructors — parses at value level in its
	// parseSingle form.
	p.query(env, q)
}

// update prints u at the parser's parseUpdateSingle level.
func (p *printer) update(env map[string]string, u Update) {
	switch n := u.(type) {
	case UEmpty:
		p.b.WriteString("()")
	case USeq:
		p.b.WriteString("(")
		for i, item := range flattenUSeq(n, nil) {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.update(env, item)
		}
		p.b.WriteString(")")
	case UFor:
		nv := p.fresh()
		fmt.Fprintf(&p.b, "for %s in ", nv)
		p.query(env, n.In)
		p.b.WriteString(" return ")
		scoped(env, n.Var, nv, func() { p.update(env, n.Body) })
	case ULet:
		nv := p.fresh()
		fmt.Fprintf(&p.b, "let %s := ", nv)
		p.query(env, n.Bind)
		p.b.WriteString(" return ")
		scoped(env, n.Var, nv, func() { p.update(env, n.Body) })
	case UIf:
		p.b.WriteString("if (")
		p.condOr(env, n.Cond)
		p.b.WriteString(") then ")
		p.update(env, n.Then)
		p.b.WriteString(" else ")
		p.update(env, n.Else)
	case Delete:
		p.b.WriteString("delete ")
		p.query(env, n.Target)
	case Rename:
		p.b.WriteString("rename ")
		p.query(env, n.Target)
		p.b.WriteString(" as ")
		p.b.WriteString(n.As)
	case Insert:
		p.b.WriteString("insert ")
		p.query(env, n.Source)
		p.b.WriteString(" ")
		p.b.WriteString(n.Pos.String())
		p.b.WriteString(" ")
		p.query(env, n.Target)
	case Replace:
		p.b.WriteString("replace ")
		p.query(env, n.Target)
		p.b.WriteString(" with ")
		p.query(env, n.Source)
	default:
		fmt.Fprintf(&p.b, "?%T?", u)
	}
}
