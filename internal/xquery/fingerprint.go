package xquery

import (
	"fmt"
	"hash/fnv"
)

// Expression fingerprints key the prepared-analysis plan cache: two
// surface inputs that normalize to the same canonical form hash
// equally, so replayed (view, update) pairs hit one cached plan per
// schema no matter how they were spelled. The hash runs over the
// canonical rendering of the *normalized* AST — whitespace, sugar
// (surface paths vs nested for), binder names, sequence association
// and for-nesting rotations all collapse before hashing.

func fingerprint(domain string, canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(domain))
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	return fmt.Sprintf("%016x", h.Sum64())
}

// FingerprintQuery returns the content fingerprint of q, stable
// across sugar and binder-name variants.
func FingerprintQuery(q Query) string {
	return fingerprint("q", CanonicalQuery(Normalize(q)))
}

// FingerprintUpdate returns the content fingerprint of u.
func FingerprintUpdate(u Update) string {
	return fingerprint("u", CanonicalUpdate(NormalizeUpdate(u)))
}

// FingerprintPair combines the query and update fingerprints into the
// pair key the plan cache uses. The domain separators keep a pair
// fingerprint from colliding with either side's own fingerprint.
func FingerprintPair(q Query, u Update) string {
	return fingerprint("p", FingerprintQuery(q)+"\x00"+FingerprintUpdate(u))
}
