package xquery

import (
	"strings"
	"testing"
)

func TestParsePaths(t *testing.T) {
	cases := []struct {
		in   string
		want string // String() of the desugared AST
	}{
		{"()", "()"},
		{`"hello"`, `"hello"`},
		{"$x", "$x"},
		{"/a", "$root/self::a"},
		{"/a/b", "for $%1 in $root/self::a return $%1/child::b"},
		{"//c", "for $%1 in $root/descendant-or-self::node() return $%1/child::c"},
		{"$x/b", "$x/child::b"},
		{"$x/descendant::b", "$x/descendant::b"},
		{"$x/..", "$x/parent::node()"},
		{"$x/.", "$x/self::node()"},
		{"$x/*", "$x/child::*"},
		{"$x/text()", "$x/child::text()"},
		{"$x/node()", "$x/child::node()"},
		{"$x/ancestor::a", "$x/ancestor::a"},
		{"$x/following-sibling::c", "$x/following-sibling::c"},
		{"$x/preceding-sibling::*", "$x/preceding-sibling::*"},
		{"$x/ancestor-or-self::node()", "$x/ancestor-or-self::node()"},
		{
			"//a//c",
			"for $%1 in $root/descendant-or-self::node() return for $%2 in $%1/child::a return for $%3 in $%2/descendant-or-self::node() return $%3/child::c",
		},
		{"$x/a/b", "for $%1 in $x/child::a return $%1/child::b"},
		{"(), ()", "((), ())"},
		{"($x)", "$x"},
		{"($x)/b", "$x/child::b"},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("ParseQuery(%q) =\n  %s\nwant\n  %s", c.in, got, c.want)
		}
	}
}

func TestParseFLWR(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{
			"for $x in //a return $x/b",
			"for $x in for $%1 in $root/descendant-or-self::node() return $%1/child::a return $x/child::b",
		},
		{
			"let $x := /a return ($x, $x)",
			"let $x := $root/self::a return ($x, $x)",
		},
		{
			"if ($x/b) then $x/c else ()",
			"if ($x/child::b) then $x/child::c else ()",
		},
		{
			"if ($x/b) then $x/c",
			"if ($x/child::b) then $x/child::c else ()",
		},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("ParseQuery(%q) =\n  %s\nwant\n  %s", c.in, got, c.want)
		}
	}
}

func TestParsePredicates(t *testing.T) {
	q := MustParseQuery("//book[author]")
	want := "for $%1 in $root/descendant-or-self::node() return for $%2 in $%1/child::book return if ($%2/child::author) then $%2 else ()"
	// The exact fresh-variable numbering is an implementation detail;
	// compare shapes modulo numbering by stripping digits.
	if got := stripDigits(q.String()); got != stripDigits(want) {
		t.Errorf("predicate desugar:\n  %s\nwant shape\n  %s", q, want)
	}

	// Nested predicate: the inner context must bind to the inner step.
	q2 := MustParseQuery("$x/a[b[c]]")
	s := q2.String()
	if !strings.Contains(s, "/child::b return if (") || !strings.Contains(s, "/child::c)") {
		t.Errorf("nested predicate desugar wrong: %s", s)
	}

	// and / or / not / comparison.
	for _, in := range []string{
		"$x/a[b and c]",
		"$x/a[b or c]",
		"$x/a[not(b)]",
		"$x/a[b = 'x']",
		"$x/a[b = c]",
		"$x/a[price > 40]",
		"$x/a[.//k]",
		"$x/a[../b]",
	} {
		if _, err := ParseQuery(in); err != nil {
			t.Errorf("ParseQuery(%q): %v", in, err)
		}
	}

	// Comparison keeps both operand paths as condition queries.
	qc := MustParseQuery("$x/a[b = c]").String()
	if !strings.Contains(qc, "child::b") || !strings.Contains(qc, "child::c") {
		t.Errorf("comparison lost a path: %s", qc)
	}
}

func stripDigits(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' {
			return 'N'
		}
		return r
	}, s)
}

func TestParseElements(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"<a/>", "<a/>"},
		{"<a></a>", "<a/>"},
		{"<a>{$x/b}</a>", "<a>{$x/child::b}</a>"},
		{"<a>hello</a>", `<a>{"hello"}</a>`},
		{"<a><b/><c/></a>", "<a>{(<b/>, <c/>)}</a>"},
		{
			"<author><first>Umberto</first><second>Eco</second></author>",
			`<author>{(<first>{"Umberto"}</first>, <second>{"Eco"}</second>)}</author>`,
		},
		{"<r1>{$x/a, <r2>{$x/b}</r2>}</r1>", "<r1>{($x/child::a, <r2>{$x/child::b}</r2>)}</r1>"},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("ParseQuery(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseUpdates(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"delete //b", "delete for $%1 in $root/descendant-or-self::node() return $%1/child::b"},
		{"delete node $x/b", "delete $x/child::b"},
		{"rename $x/b as c", "rename $x/child::b as c"},
		{"replace $x/b with <c/>", "replace $x/child::b with <c/>"},
		{"insert <author/> into $x", "insert <author/> into $x"},
		{"insert <a/> as first into $x", "insert <a/> as first into $x"},
		{"insert <a/> as last into $x", "insert <a/> as last into $x"},
		{"insert <a/> before $x/b", "insert <a/> before $x/child::b"},
		{"insert <a/> after $x/b", "insert <a/> after $x/child::b"},
		{
			"for $x in //book return insert <author/> into $x",
			"for $x in for $%1 in $root/descendant-or-self::node() return $%1/child::book return insert <author/> into $x",
		},
		{"let $x := /a return delete $x/b", "let $x := $root/self::a return delete $x/child::b"},
		{"if ($x/b) then delete $x/c else ()", "if ($x/child::b) then delete $x/child::c else ()"},
		{"if ($x/b) then delete $x/c", "if ($x/child::b) then delete $x/child::c else ()"},
		{"delete $x/a, delete $x/b", "(delete $x/child::a, delete $x/child::b)"},
		{"()", "()"},
		{"(delete $x/a)", "delete $x/child::a"},
	}
	for _, c := range cases {
		u, err := ParseUpdate(c.in)
		if err != nil {
			t.Errorf("ParseUpdate(%q): %v", c.in, err)
			continue
		}
		if got := u.String(); got != c.want {
			t.Errorf("ParseUpdate(%q) =\n  %s\nwant\n  %s", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	badQueries := []string{
		"",
		"for $x in return $x",
		"for x in $y return $x",
		"let $x = $y return $x",
		"$x/",
		"(",
		"<a>",
		"<a></b>",
		"$x/unknown::b",
		`"unterminated`,
		"$x trailing",
		"a/b",          // relative path outside a predicate
		"if ($x) then", // missing branch
	}
	for _, in := range badQueries {
		if _, err := ParseQuery(in); err == nil {
			t.Errorf("ParseQuery(%q): want error", in)
		}
	}
	badUpdates := []string{
		"",
		"$x/b",
		"delete",
		"insert <a/> $x",
		"insert <a/> as middle into $x",
		"rename $x/b",
		"replace $x/b",
		"frobnicate $x",
	}
	for _, in := range badUpdates {
		if _, err := ParseUpdate(in); err == nil {
			t.Errorf("ParseUpdate(%q): want error", in)
		}
	}
}

func TestElementInForLetRejected(t *testing.T) {
	if _, err := ParseQuery("for $x in <a/> return $x"); err == nil {
		t.Errorf("element constructor in for binding must be rejected")
	}
	if _, err := ParseQuery("let $x := <a>{$y/b}</a> return $x"); err == nil {
		t.Errorf("element constructor in let binding must be rejected")
	}
	if _, err := ParseQuery("let $x := $y/b return <b>{$x}</b>"); err != nil {
		t.Errorf("constructor in return position is fine: %v", err)
	}
}

func TestFreeVars(t *testing.T) {
	q := MustParseQuery("for $x in //a return ($x/b, $y/c)")
	free := map[string]bool{}
	FreeQueryVars(q, free)
	if !free["$y"] || !free[RootVar] || free["$x"] {
		t.Errorf("free vars = %v", free)
	}
	if QuasiClosedQuery(q) {
		t.Errorf("query with $y free is not quasi-closed")
	}
	if !QuasiClosedQuery(MustParseQuery("//a//c")) {
		t.Errorf("//a//c is quasi-closed")
	}

	u := MustParseUpdate("for $x in //book return insert <author/> into $x")
	freeU := map[string]bool{}
	FreeUpdateVars(u, freeU)
	if !freeU[RootVar] || freeU["$x"] {
		t.Errorf("update free vars = %v", freeU)
	}
	if !QuasiClosedUpdate(u) {
		t.Errorf("update should be quasi-closed")
	}
	if QuasiClosedUpdate(MustParseUpdate("delete $z/a")) {
		t.Errorf("update with $z free is not quasi-closed")
	}
}

func TestSizes(t *testing.T) {
	if Size(MustParseQuery("()")) != 1 {
		t.Errorf("Size(()) != 1")
	}
	q := MustParseQuery("for $x in //a return $x/b")
	if Size(q) < 5 {
		t.Errorf("Size too small: %d", Size(q))
	}
	u := MustParseUpdate("delete //b")
	if UpdateSize(u) < 4 {
		t.Errorf("UpdateSize too small: %d", UpdateSize(u))
	}
}

func TestAxisPredicates(t *testing.T) {
	if Self.IsRecursive() || Child.IsRecursive() || FollowingSibling.IsRecursive() || Parent.IsRecursive() {
		t.Errorf("non-recursive axes misclassified")
	}
	if !Descendant.IsRecursive() || !Ancestor.IsRecursive() || !DescendantOrSelf.IsRecursive() || !AncestorOrSelf.IsRecursive() {
		t.Errorf("recursive axes misclassified")
	}
	if !Self.IsForward() || !Child.IsForward() || !DescendantOrSelf.IsForward() {
		t.Errorf("STEPF axes misclassified")
	}
	if Descendant.IsForward() || Parent.IsForward() || Ancestor.IsForward() || PrecedingSibling.IsForward() {
		t.Errorf("STEPUH axes misclassified")
	}
}

// TestPaperExpressions parses the expressions used throughout the
// paper's prose.
func TestPaperExpressions(t *testing.T) {
	queries := []string{
		"//a//c",
		"//title",
		"/r/a/b/f/a",
		"/r/a/b/f/a/parent::f",
		"/r/a/b/f/*",
		"/descendant::b/descendant::c/descendant::e",
		"/descendant::b/a/b",
		"/descendant::b/ancestor::c",
		"/descendant::c/following-sibling::b",
		"/a/b/following-sibling::c",
		"for $x in //node() return if ($x/b) then $x/a else ()",
		"for $x in /a/a return for $y in /a/b return ($x, $y)",
		"<r1>{($x/a, <r2>{$x/b}</r2>)}</r1>",
	}
	for _, in := range queries {
		if _, err := ParseQuery(in); err != nil {
			t.Errorf("ParseQuery(%q): %v", in, err)
		}
	}
	updates := []string{
		"delete //b//c",
		"for $x in //book return insert <author/> into $x",
		"for $x in //book return insert <author><first>Umberto</first><second>Eco</second></author> into $x",
		"for $x in /a/b return insert <b><b><c/></b></b> into $x",
		"delete /descendant::c",
	}
	for _, in := range updates {
		if _, err := ParseUpdate(in); err != nil {
			t.Errorf("ParseUpdate(%q): %v", in, err)
		}
	}
}

func TestSubstituteVarShadowing(t *testing.T) {
	// $x free under a for that rebinds $x: substitution must stop.
	q := MustParseQuery("for $x in $y/a return $x/b")
	got := substituteVar(q, "$x", "$z")
	if got.String() != q.String() {
		t.Errorf("substitution crossed a binder: %s", got)
	}
	got2 := substituteVar(q, "$y", "$w")
	if !strings.Contains(got2.String(), "$w/child::a") {
		t.Errorf("substitution missed free occurrence: %s", got2)
	}
}
