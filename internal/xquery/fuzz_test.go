package xquery_test

import (
	"testing"

	"xqindep/internal/xmark"
	"xqindep/internal/xquery"
)

// FuzzParseQuery feeds arbitrary bytes to the query parser. Garbage
// must come back as an error — never a panic or a hang — and anything
// that parses must survive the standard AST walks, since every
// analysis starts with them.
func FuzzParseQuery(f *testing.F) {
	for _, v := range xmark.Views() {
		f.Add(v.Text)
	}
	f.Add("for $x in //a return if ($x/b) then <w>{$x/c}</w> else ()")
	f.Add("//c/ancestor::b")
	f.Add("((((((((//a))))))))")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := xquery.ParseQuery(input)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("ParseQuery returned nil query with nil error")
		}
		_ = q.String()
		_ = xquery.QuasiClosedQuery(q)
	})
}

// FuzzParseUpdate is the update-side twin of FuzzParseQuery.
func FuzzParseUpdate(f *testing.F) {
	for _, u := range xmark.Updates() {
		f.Add(u.Text)
	}
	f.Add("for $x in //b return insert <c/> into $x")
	f.Add("for $x in //a/c return replace $x with <c/>")
	f.Add("delete //b//c")
	f.Add("()")
	f.Fuzz(func(t *testing.T, input string) {
		u, err := xquery.ParseUpdate(input)
		if err != nil {
			return
		}
		if u == nil {
			t.Fatal("ParseUpdate returned nil update with nil error")
		}
		_ = u.String()
		_ = xquery.QuasiClosedUpdate(u)
	})
}
