package xquery

import (
	"fmt"
	"strings"

	"xqindep/internal/guard"
)

// ParseQuery parses a query of the fragment. Surface XPath paths
// (absolute, //, abbreviated steps, predicates) are desugared into the
// core grammar during parsing, so the returned AST contains only core
// constructs. The free variable of absolute paths is RootVar.
//
// Sugar accepted beyond the core grammar:
//
//   - paths: /a/b, //a, $x/a//b, steps with explicit axes
//     (ancestor::a), abbreviations "." ".." "*" text() node();
//   - predicates: p[q], with "and", "or", "not(...)" and value
//     comparisons; comparisons are structural — following the paper's
//     benchmark rewriting, "[price > 40]" keeps only the path price —
//     both operand paths become condition queries;
//   - element constructors with nested content: <a><b/>{$x/c}</a>.
func ParseQuery(input string) (Query, error) {
	return ParseQueryLimited(input, guard.DefaultLimits())
}

// ParseQueryLimited is ParseQuery under explicit parser limits:
// MaxParseInput bounds the input size and MaxParseDepth bounds both
// expression nesting and the number of steps per path (which the
// desugaring turns into nesting). Zero limit fields take defaults.
func ParseQueryLimited(input string, lim guard.Limits) (Query, error) {
	lim = lim.OrDefaults()
	if len(input) > lim.MaxParseInput {
		return nil, fmt.Errorf("xquery: input of %d bytes exceeds the %d-byte limit", len(input), lim.MaxParseInput)
	}
	p := &parser{in: input, maxDepth: lim.MaxParseDepth}
	q := p.parseExpr()
	p.ws()
	if p.err == nil && p.pos != len(p.in) {
		p.fail("trailing input %q", p.in[p.pos:])
	}
	if p.err != nil {
		return nil, p.err
	}
	if UsesElementInForLet(q) {
		return nil, fmt.Errorf("xquery: element construction in for/let binding expression is outside the fragment (rewrite by variable substitution)")
	}
	return q, nil
}

// MustParseQuery is ParseQuery, panicking on error.
func MustParseQuery(input string) Query {
	q, err := ParseQuery(input)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseUpdate parses an update expression of the fragment, with the
// same path sugar as ParseQuery in embedded queries.
func ParseUpdate(input string) (Update, error) {
	return ParseUpdateLimited(input, guard.DefaultLimits())
}

// ParseUpdateLimited is ParseUpdate under explicit parser limits (see
// ParseQueryLimited).
func ParseUpdateLimited(input string, lim guard.Limits) (Update, error) {
	lim = lim.OrDefaults()
	if len(input) > lim.MaxParseInput {
		return nil, fmt.Errorf("xquery: input of %d bytes exceeds the %d-byte limit", len(input), lim.MaxParseInput)
	}
	p := &parser{in: input, maxDepth: lim.MaxParseDepth}
	u := p.parseUpdate()
	p.ws()
	if p.err == nil && p.pos != len(p.in) {
		p.fail("trailing input %q", p.in[p.pos:])
	}
	if p.err != nil {
		return nil, p.err
	}
	return u, nil
}

// MustParseUpdate is ParseUpdate, panicking on error.
func MustParseUpdate(input string) Update {
	u, err := ParseUpdate(input)
	if err != nil {
		panic(err)
	}
	return u
}

type parser struct {
	in    string
	pos   int
	err   error
	fresh int
	// ctxVar, when non-empty, is the context variable for relative
	// paths (inside predicates).
	ctxVar string
	// depth tracks recursive-production nesting; exceeding maxDepth is
	// a parse error, which bounds both parser stack use and the depth
	// of the produced AST (every later analysis walks it recursively).
	depth    int
	maxDepth int
}

// enter charges one nesting level, failing the parse past the limit.
// Callers must return immediately (with a dummy node) on false, which
// unwinds the recursion; leave undoes the charge on the success path.
func (p *parser) enter() bool {
	p.depth++
	if p.maxDepth > 0 && p.depth > p.maxDepth {
		p.fail("expression nesting exceeds the limit of %d", p.maxDepth)
		return false
	}
	return true
}

func (p *parser) leave() { p.depth-- }

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("xquery: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
	}
}

func (p *parser) freshVar() string {
	p.fresh++
	return fmt.Sprintf("$%%%d", p.fresh)
}

func (p *parser) ws() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peekByte() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *parser) hasPrefix(s string) bool { return strings.HasPrefix(p.in[p.pos:], s) }

// eat consumes s if present (after whitespace) and reports success.
func (p *parser) eat(s string) bool {
	p.ws()
	if p.hasPrefix(s) {
		p.pos += len(s)
		return true
	}
	return false
}

// expect consumes s or records an error.
func (p *parser) expect(s string) {
	if !p.eat(s) {
		p.fail("expected %q", s)
	}
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// peekWord returns the name starting at the cursor (after whitespace)
// without consuming it.
func (p *parser) peekWord() string {
	p.ws()
	i := p.pos
	for i < len(p.in) && isNameByte(p.in[i]) {
		i++
	}
	return p.in[p.pos:i]
}

// eatWord consumes w only when it is a whole word at the cursor.
func (p *parser) eatWord(w string) bool {
	if p.peekWord() == w {
		p.pos += len(w)
		return true
	}
	return false
}

func (p *parser) name() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.in) && isNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		p.fail("expected a name")
		return "?"
	}
	return p.in[start:p.pos]
}

func (p *parser) variable() string {
	p.ws()
	if p.peekByte() != '$' {
		p.fail("expected a variable")
		return "$?"
	}
	p.pos++
	return "$" + p.name()
}

func (p *parser) stringLit() string {
	p.ws()
	quote := p.peekByte()
	if quote != '"' && quote != '\'' {
		p.fail("expected a string literal")
		return ""
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != quote {
		p.pos++
	}
	if p.pos == len(p.in) {
		p.fail("unterminated string literal")
		return ""
	}
	s := p.in[start:p.pos]
	p.pos++
	return s
}

// parseExpr parses a comma sequence.
func (p *parser) parseExpr() Query {
	q := p.parseSingle()
	for p.err == nil && p.eat(",") {
		q = Sequence{Left: q, Right: p.parseSingle()}
	}
	return q
}

func (p *parser) parseSingle() Query {
	if !p.enter() {
		return Empty{}
	}
	defer p.leave()
	p.ws()
	switch p.peekWord() {
	case "for":
		p.eatWord("for")
		v := p.variable()
		p.expectWord("in")
		in := p.parseSingle()
		p.expectWord("return")
		ret := p.parseSingle()
		return For{Var: v, In: in, Return: ret}
	case "let":
		p.eatWord("let")
		v := p.variable()
		p.expect(":=")
		bind := p.parseSingle()
		p.expectWord("return")
		ret := p.parseSingle()
		return Let{Var: v, Bind: bind, Return: ret}
	case "if":
		p.eatWord("if")
		p.expect("(")
		cond := p.parsePredicateExpr()
		p.expect(")")
		p.expectWord("then")
		then := p.parseSingle()
		var els Query = Empty{}
		if p.peekWord() == "else" {
			p.eatWord("else")
			els = p.parseSingle()
		}
		return If{Cond: cond, Then: then, Else: els}
	}
	return p.parsePath()
}

func (p *parser) expectWord(w string) {
	if !p.eatWord(w) {
		p.fail("expected keyword %q", w)
	}
}

// stepSpec is a parsed-but-not-yet-desugared path step.
type stepSpec struct {
	axis  Axis
	test  NodeTest
	preds []Query // predicate queries over context variable ctxPredVar
}

// ctxPredVar is the placeholder variable that predicate queries are
// parsed against; substituted during desugaring.
const ctxPredVar = "$%ctx"

// parsePath parses a primary expression followed by optional path
// steps and desugars the result.
func (p *parser) parsePath() Query {
	if !p.enter() {
		return Empty{}
	}
	defer p.leave()
	p.ws()
	var base Query
	switch {
	case p.hasPrefix("//"):
		p.pos += 2
		base = Var{Name: p.rootName()}
		steps := p.parseSteps(true)
		return p.desugarPath(base, steps)
	case p.peekByte() == '/':
		p.pos++
		base = Var{Name: p.rootName()}
		// Absolute path: first step is matched with self (the root
		// variable denotes the root element; see package comment).
		steps := p.parseSteps(false)
		if len(steps) > 0 && steps[0].axis == Child {
			steps[0].axis = Self
		}
		return p.desugarPath(base, steps)
	case p.peekByte() == '$':
		v := p.variable()
		base = Var{Name: v}
		return p.parseTrailingSteps(base)
	case p.peekByte() == '(':
		p.pos++
		p.ws()
		if p.peekByte() == ')' {
			p.pos++
			base = Empty{}
		} else {
			base = p.parseExpr()
			p.expect(")")
		}
		return p.parseTrailingSteps(base)
	case p.peekByte() == '"' || p.peekByte() == '\'':
		return StringLit{Value: p.stringLit()}
	case p.peekByte() == '<':
		return p.parseElement()
	case p.ctxVar != "" && (p.peekByte() == '.' || p.peekByte() == '*' || isNameByte(p.peekByte())):
		// Relative path inside a predicate: starts at the context
		// variable with a child (or explicit) step.
		base = Var{Name: p.ctxVar}
		steps := p.parseSteps(false)
		return p.desugarPath(base, steps)
	default:
		p.fail("expected an expression")
		return Empty{}
	}
}

// rootName returns the variable absolute paths hang off.
func (p *parser) rootName() string { return RootVar }

// parseTrailingSteps attaches /step... or //step... to base.
func (p *parser) parseTrailingSteps(base Query) Query {
	p.ws()
	switch {
	case p.hasPrefix("//"):
		p.pos += 2
		return p.desugarPath(base, p.parseSteps(true))
	case p.peekByte() == '/' && !p.hasPrefix("/>"):
		p.pos++
		return p.desugarPath(base, p.parseSteps(false))
	default:
		return base
	}
}

// parseSteps parses one or more steps separated by / or //;
// firstDescends marks that the step list was introduced by // (the
// preceding descendant-or-self::node() is inserted).
func (p *parser) parseSteps(firstDescends bool) []stepSpec {
	var steps []stepSpec
	if firstDescends {
		steps = append(steps, stepSpec{axis: DescendantOrSelf, test: AnyNode()})
	}
	for {
		if p.maxDepth > 0 && len(steps) >= p.maxDepth {
			// Desugaring nests one for-expression per step, so the step
			// count is nesting depth in disguise.
			p.fail("path of more than %d steps exceeds the nesting limit", p.maxDepth)
			return steps
		}
		steps = append(steps, p.parseStep())
		if p.err != nil {
			return steps
		}
		p.ws()
		if p.hasPrefix("//") {
			p.pos += 2
			steps = append(steps, stepSpec{axis: DescendantOrSelf, test: AnyNode()})
			continue
		}
		if p.peekByte() == '/' && !p.hasPrefix("/>") {
			p.pos++
			continue
		}
		return steps
	}
}

var axisByName = map[string]Axis{
	"self":               Self,
	"child":              Child,
	"descendant":         Descendant,
	"descendant-or-self": DescendantOrSelf,
	"parent":             Parent,
	"ancestor":           Ancestor,
	"ancestor-or-self":   AncestorOrSelf,
	"preceding-sibling":  PrecedingSibling,
	"following-sibling":  FollowingSibling,
}

func (p *parser) parseStep() stepSpec {
	p.ws()
	st := stepSpec{axis: Child}
	switch {
	case p.hasPrefix(".."):
		p.pos += 2
		st.axis, st.test = Parent, AnyNode()
	case p.peekByte() == '.':
		p.pos++
		st.axis, st.test = Self, AnyNode()
	case p.peekByte() == '*':
		p.pos++
		st.test = Wildcard()
	default:
		w := p.peekWord()
		if w == "" {
			p.fail("expected a path step")
			return st
		}
		if ax, ok := axisByName[w]; ok && strings.HasPrefix(p.in[p.pos+len(w):], "::") {
			p.pos += len(w) + 2
			st.axis = ax
			p.ws()
			if p.peekByte() == '*' {
				p.pos++
				st.test = Wildcard()
			} else {
				st.test = p.parseNodeTest()
			}
		} else {
			st.test = p.parseNodeTest()
		}
	}
	for p.err == nil {
		p.ws()
		if p.peekByte() != '[' {
			break
		}
		p.pos++
		saved := p.ctxVar
		p.ctxVar = ctxPredVar
		pred := p.parsePredicateExpr()
		p.ctxVar = saved
		p.expect("]")
		st.preds = append(st.preds, pred)
	}
	return st
}

func (p *parser) parseNodeTest() NodeTest {
	w := p.name()
	if p.err != nil {
		return AnyNode()
	}
	p.ws()
	if p.peekByte() == '(' {
		switch w {
		case "text":
			p.expect("(")
			p.expect(")")
			return Text()
		case "node":
			p.expect("(")
			p.expect(")")
			return AnyNode()
		default:
			p.fail("unknown node test %s()", w)
			return AnyNode()
		}
	}
	return Tag(w)
}

// desugarPath turns base/step1/.../stepn into the paper's encoding
// for $x1 in base/step1 return for $x2 in $x1/step2 return ... —
// nested for-expressions over single Step nodes.
func (p *parser) desugarPath(base Query, steps []stepSpec) Query {
	if len(steps) == 0 {
		return base
	}
	v, wrapped := p.asVar(base)
	return wrapped(p.desugarSteps(v, steps))
}

func (p *parser) desugarSteps(v string, steps []stepSpec) Query {
	st := steps[0]
	var q Query = Step{Var: v, Axis: st.axis, Test: st.test}
	for _, pred := range st.preds {
		q = p.filter(q, pred)
	}
	if len(steps) == 1 {
		return q
	}
	f := p.freshVar()
	return For{Var: f, In: q, Return: p.desugarSteps(f, steps[1:])}
}

// asVar returns a variable name denoting cur's bindings plus a
// wrapper: when cur is already a variable the wrapper is the identity,
// otherwise it builds for $fresh in cur return body.
func (p *parser) asVar(cur Query) (string, func(Query) Query) {
	if v, ok := cur.(Var); ok {
		return v.Name, func(body Query) Query { return body }
	}
	f := p.freshVar()
	return f, func(body Query) Query { return For{Var: f, In: cur, Return: body} }
}

// filter implements predicate application:
// base[pred] = for $v in base return if (pred{ctx:=$v}) then $v else ().
func (p *parser) filter(base Query, pred Query) Query {
	v := p.freshVar()
	cond := substituteVar(pred, ctxPredVar, v)
	return For{Var: v, In: base, Return: If{Cond: cond, Then: Var{Name: v}, Else: Empty{}}}
}

// parsePredicateExpr parses a predicate condition with or/and/not and
// comparisons; see ParseQuery doc for the desugaring.
func (p *parser) parsePredicateExpr() Query {
	if !p.enter() {
		return Empty{}
	}
	defer p.leave()
	q := p.parsePredicateAnd()
	for p.err == nil && p.eatWord("or") {
		// EBV(q1, q2) is true iff either is non-empty.
		q = Sequence{Left: q, Right: p.parsePredicateAnd()}
	}
	return q
}

func (p *parser) parsePredicateAnd() Query {
	q := p.parsePredicateCmp()
	for p.err == nil && p.eatWord("and") {
		// if (q1) then q2 else (): non-empty iff both are.
		q = If{Cond: q, Then: p.parsePredicateCmp(), Else: Empty{}}
	}
	return q
}

func (p *parser) parsePredicateCmp() Query {
	q := p.parsePredicateValue()
	p.ws()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.hasPrefix(op) {
			// Element constructors cannot appear here, so < is
			// unambiguous in predicate position.
			p.pos += len(op)
			rhs := p.parsePredicateValue()
			// Structural comparison: both operands are navigated,
			// result is non-empty iff both are (path extraction à la
			// the paper's rewriting).
			return If{Cond: q, Then: rhs, Else: Empty{}}
		}
	}
	return q
}

func (p *parser) parsePredicateValue() Query {
	p.ws()
	c := p.peekByte()
	switch {
	case c == '"' || c == '\'':
		return StringLit{Value: p.stringLit()}
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.in) && (p.in[p.pos] >= '0' && p.in[p.pos] <= '9' || p.in[p.pos] == '.') {
			p.pos++
		}
		return StringLit{Value: p.in[start:p.pos]}
	case p.peekWord() == "not":
		save := p.pos
		p.eatWord("not")
		p.ws()
		if p.peekByte() == '(' {
			p.pos++
			inner := p.parsePredicateExpr()
			p.expect(")")
			// Non-empty iff inner is empty.
			return If{Cond: inner, Then: Empty{}, Else: StringLit{Value: "true"}}
		}
		p.pos = save // "not" was a tag name
		return p.parsePath()
	case p.peekWord() == "for" || p.peekWord() == "let" || p.peekWord() == "if":
		// The canonical printer emits desugared predicates (nested
		// for-expressions) back into condition position, so the
		// predicate grammar accepts the three expression keywords at
		// value level — but only with their introducer ahead ($ for
		// for/let, ( for if); otherwise the word is an element tag,
		// exactly as before.
		w := p.peekWord()
		rest := strings.TrimLeft(p.in[p.pos+len(w):], " \t\n\r")
		if (w == "if" && strings.HasPrefix(rest, "(")) ||
			(w != "if" && strings.HasPrefix(rest, "$")) {
			return p.parseSingle()
		}
		return p.parsePath()
	case c == '(':
		p.pos++
		inner := p.parsePredicateExpr()
		p.expect(")")
		return inner
	default:
		return p.parsePath()
	}
}

// parseElement parses <a/>, <a>…</a> with nested constructors, raw
// text and {expr} holes.
func (p *parser) parseElement() Query {
	if !p.enter() {
		return Empty{}
	}
	defer p.leave()
	p.expect("<")
	tag := p.name()
	p.ws()
	if p.eat("/>") {
		return Element{Tag: tag, Content: Empty{}}
	}
	p.expect(">")
	var items []Query
	for p.err == nil {
		if p.hasPrefix("</") {
			break
		}
		switch {
		case p.peekByte() == '{':
			p.pos++
			items = append(items, p.parseExpr())
			p.expect("}")
		case p.peekByte() == '<':
			items = append(items, p.parseElement())
		case p.pos >= len(p.in):
			p.fail("unterminated element <%s>", tag)
		default:
			start := p.pos
			for p.pos < len(p.in) && p.in[p.pos] != '<' && p.in[p.pos] != '{' {
				p.pos++
			}
			txt := p.in[start:p.pos]
			if strings.TrimSpace(txt) != "" {
				items = append(items, StringLit{Value: strings.TrimSpace(txt)})
			}
		}
	}
	p.expect("</")
	end := p.name()
	if p.err == nil && end != tag {
		p.fail("mismatched end tag </%s> for <%s>", end, tag)
	}
	p.expect(">")
	var content Query = Empty{}
	for i := len(items) - 1; i >= 0; i-- {
		if _, ok := content.(Empty); ok {
			content = items[i]
		} else {
			content = Sequence{Left: items[i], Right: content}
		}
	}
	return Element{Tag: tag, Content: content}
}

// parseUpdate parses the update grammar.
func (p *parser) parseUpdate() Update {
	u := p.parseUpdateSingle()
	for p.err == nil && p.eat(",") {
		u = USeq{Left: u, Right: p.parseUpdateSingle()}
	}
	return u
}

func (p *parser) parseUpdateSingle() Update {
	if !p.enter() {
		return UEmpty{}
	}
	defer p.leave()
	p.ws()
	switch p.peekWord() {
	case "for":
		p.eatWord("for")
		v := p.variable()
		p.expectWord("in")
		in := p.parseSingle()
		p.expectWord("return")
		body := p.parseUpdateSingle()
		return UFor{Var: v, In: in, Body: body}
	case "let":
		p.eatWord("let")
		v := p.variable()
		p.expect(":=")
		bind := p.parseSingle()
		p.expectWord("return")
		body := p.parseUpdateSingle()
		return ULet{Var: v, Bind: bind, Body: body}
	case "if":
		p.eatWord("if")
		p.expect("(")
		cond := p.parsePredicateExpr()
		p.expect(")")
		p.expectWord("then")
		then := p.parseUpdateSingle()
		var els Update = UEmpty{}
		if p.peekWord() == "else" {
			p.eatWord("else")
			els = p.parseUpdateSingle()
		}
		return UIf{Cond: cond, Then: then, Else: els}
	case "delete":
		p.eatWord("delete")
		p.eatWord("node")
		p.eatWord("nodes")
		return Delete{Target: p.parseSingle()}
	case "rename":
		p.eatWord("rename")
		p.eatWord("node")
		target := p.parseSingle()
		p.expectWord("as")
		return Rename{Target: target, As: p.name()}
	case "replace":
		p.eatWord("replace")
		p.eatWord("node")
		target := p.parseSingle()
		p.expectWord("with")
		return Replace{Target: target, Source: p.parseSingle()}
	case "insert":
		p.eatWord("insert")
		p.eatWord("node")
		p.eatWord("nodes")
		src := p.parseSingle()
		pos := Into
		switch {
		case p.eatWord("into"):
			pos = Into
		case p.eatWord("as"):
			switch {
			case p.eatWord("first"):
				pos = IntoFirst
			case p.eatWord("last"):
				pos = IntoLast
			default:
				p.fail("expected first or last")
			}
			p.expectWord("into")
		case p.eatWord("before"):
			pos = Before
		case p.eatWord("after"):
			pos = After
		default:
			p.fail("expected into/before/after")
		}
		return Insert{Source: src, Pos: pos, Target: p.parseSingle()}
	case "":
		p.ws()
		if p.peekByte() == '(' {
			p.pos++
			p.ws()
			if p.peekByte() == ')' {
				p.pos++
				return UEmpty{}
			}
			u := p.parseUpdate()
			p.expect(")")
			return u
		}
	}
	p.fail("expected an update expression")
	return UEmpty{}
}

// substituteVar replaces free occurrences of variable from with to.
func substituteVar(q Query, from, to string) Query {
	switch n := q.(type) {
	case Empty, StringLit:
		return q
	case Var:
		if n.Name == from {
			return Var{Name: to}
		}
		return q
	case Step:
		if n.Var == from {
			return Step{Var: to, Axis: n.Axis, Test: n.Test}
		}
		return q
	case Sequence:
		return Sequence{Left: substituteVar(n.Left, from, to), Right: substituteVar(n.Right, from, to)}
	case Element:
		return Element{Tag: n.Tag, Content: substituteVar(n.Content, from, to)}
	case For:
		in := substituteVar(n.In, from, to)
		if n.Var == from {
			return For{Var: n.Var, In: in, Return: n.Return}
		}
		return For{Var: n.Var, In: in, Return: substituteVar(n.Return, from, to)}
	case Let:
		bind := substituteVar(n.Bind, from, to)
		if n.Var == from {
			return Let{Var: n.Var, Bind: bind, Return: n.Return}
		}
		return Let{Var: n.Var, Bind: bind, Return: substituteVar(n.Return, from, to)}
	case If:
		return If{
			Cond: substituteVar(n.Cond, from, to),
			Then: substituteVar(n.Then, from, to),
			Else: substituteVar(n.Else, from, to),
		}
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("xquery: substituteVar: unknown node %T", q)})
	}
}
