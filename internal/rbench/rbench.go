// Package rbench builds the paper's R-benchmark (Section 6.2): a
// parametric schema dn with n fully mutually recursive types (every
// type defined in terms of all n types) and expressions em made of m
// consecutive descendant::node() steps. Parameters n and m trace the
// perimeter of applicability of the chain analysis; the schemas are
// deliberately harder than anything occurring in practice.
package rbench

import (
	"fmt"
	"strings"

	"xqindep/internal/dtd"
	"xqindep/internal/xquery"
)

// SchemaN builds dn: types t1..tn, each with content (t1 | ... | tn)*,
// rooted at t1. |dn| = n.
func SchemaN(n int) *dtd.DTD {
	if n < 1 {
		panic("rbench: n must be positive")
	}
	var alts []*dtd.Regex
	for i := 1; i <= n; i++ {
		alts = append(alts, dtd.Sym(typeName(i)))
	}
	content := make(map[string]*dtd.Regex, n)
	for i := 1; i <= n; i++ {
		content[typeName(i)] = dtd.Star(dtd.Alt(alts...))
	}
	d, err := dtd.New(typeName(1), content)
	if err != nil {
		panic(fmt.Sprintf("rbench: %v", err))
	}
	return d
}

func typeName(i int) string { return fmt.Sprintf("t%d", i) }

// ExprM builds em: m consecutive descendant::node() steps from the
// root. |em| = m.
func ExprM(m int) xquery.Query {
	if m < 1 {
		panic("rbench: m must be positive")
	}
	var b strings.Builder
	b.WriteString("/descendant::node()")
	for i := 1; i < m; i++ {
		b.WriteString("/descendant::node()")
	}
	return xquery.MustParseQuery(b.String())
}

// ExprText renders em's surface form.
func ExprText(m int) string {
	return strings.Repeat("/descendant::node()", m)
}

// UpdateM builds the natural update counterpart used by the
// scalability experiment when a pair is needed: delete em.
func UpdateM(m int) xquery.Update {
	return xquery.MustParseUpdate("delete " + ExprText(m))
}
