package rbench

import (
	"testing"
	"time"

	"xqindep/internal/cdag"
	"xqindep/internal/xquery"
)

func TestSchemaN(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		d := SchemaN(n)
		if d.Size() != n {
			t.Errorf("|d%d| = %d", n, d.Size())
		}
		if !d.IsRecursive() {
			t.Errorf("d%d must be recursive", n)
		}
		rec := d.RecursiveTypes()
		if len(rec) != n {
			t.Errorf("d%d: recursive types = %v", n, rec)
		}
		// Full mutual recursion: every type reaches every type.
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				if !d.Reaches(typeName(i), typeName(j)) {
					t.Errorf("d%d: t%d does not reach t%d", n, i, j)
				}
			}
		}
	}
}

func TestExprM(t *testing.T) {
	q := ExprM(3)
	if got := ExprText(3); got != "/descendant::node()/descendant::node()/descendant::node()" {
		t.Errorf("ExprText = %q", got)
	}
	// Three recursive steps: R = 3, F = 0.
	var count func(xquery.Query) int
	count = func(x xquery.Query) int {
		switch n := x.(type) {
		case xquery.Step:
			if n.Axis == xquery.Descendant {
				return 1
			}
			return 0
		case xquery.For:
			return count(n.In) + count(n.Return)
		default:
			return 0
		}
	}
	if got := count(q); got != 3 {
		t.Errorf("descendant steps = %d", got)
	}
	if _, ok := UpdateM(2).(xquery.Delete); !ok {
		t.Errorf("UpdateM should be a delete")
	}
}

// TestInferenceRunsOnHardInstances smoke-checks the scalability
// surface: chain inference over d3-e5 with elevated k stays well under
// a second.
func TestInferenceRunsOnHardInstances(t *testing.T) {
	d := SchemaN(3)
	q := ExprM(5)
	e := cdag.NewEngine(d, 10, 0)
	start := time.Now()
	qc := e.Query(e.RootEnv(), q)
	if qc.Ret.IsEmpty() {
		t.Errorf("no chains inferred for e5 over d3")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("d3-e5 inference took %v", elapsed)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SchemaN(0) },
		func() { ExprM(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}
