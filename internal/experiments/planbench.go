package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/plan"
	"xqindep/internal/xmark"
)

// The plan-cache benchmark measures what the prepared-analysis
// pipeline buys on repeated work: the full 36×31 XMark view×update
// matrix analysed cold (a fresh plan cache per pass, so every request
// fingerprints, infers and checks from scratch) against warm (one
// shared cache, so every request after the first pass is a
// fingerprint-keyed lookup plus the per-request admission recheck).
// cmd/xqbench -plan-bench renders it and writes BENCH_plancache.json;
// the same measurement is available as BenchmarkPreparedVsCold in the
// repository root. Warm and cold verdicts are compared pair by pair —
// a divergence fails the run, so the speedup number can never be
// bought with a wrong answer.

// PlanBench is the cold/warm comparison over the XMark matrix.
type PlanBench struct {
	Views      int `json:"views"`
	Updates    int `json:"updates"`
	Pairs      int `json:"pairs"`
	ColdPasses int `json:"cold_passes"`
	WarmPasses int `json:"warm_passes"`

	ColdP50Ns int64 `json:"cold_p50_ns"`
	ColdP90Ns int64 `json:"cold_p90_ns"`
	WarmP50Ns int64 `json:"warm_p50_ns"`
	WarmP90Ns int64 `json:"warm_p90_ns"`

	// Speedup is cold p50 over warm p50 — how much cheaper a repeated
	// analysis is once its plan is resident.
	Speedup float64 `json:"speedup"`

	// HitRatio is hits/(hits+misses) over the whole warm arm,
	// including the populating first pass.
	HitRatio float64 `json:"hit_ratio"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	Resident int64   `json:"resident"`

	// IndependentPairs counts Independent verdicts in the matrix (the
	// same number cold and warm; verified during the measurement).
	IndependentPairs int `json:"independent_pairs"`
}

func percentile(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// MeasurePlanBench runs coldPasses matrix passes against fresh caches
// and warmPasses timed passes against one populated cache, timing
// every request through the full AnalyzeContext path.
func MeasurePlanBench(coldPasses, warmPasses int) (PlanBench, error) {
	if coldPasses < 1 || warmPasses < 1 {
		return PlanBench{}, fmt.Errorf("passes must be positive (cold=%d warm=%d)", coldPasses, warmPasses)
	}
	d := xmark.Schema()
	a := core.NewAnalyzer(d)
	views, updates := xmark.Views(), xmark.Updates()
	ctx := context.Background() //xqvet:ignore ctxflow benchmarks run standalone; there is no caller context

	pb := PlanBench{
		Views:      len(views),
		Updates:    len(updates),
		Pairs:      len(views) * len(updates),
		ColdPasses: coldPasses,
		WarmPasses: warmPasses,
	}

	// Cold arm: a fresh cache per pass means every request builds its
	// plan. The first pass also records the ground-truth verdicts.
	verdicts := make(map[string]bool, pb.Pairs)
	coldNs := make([]int64, 0, pb.Pairs*coldPasses)
	for pass := 0; pass < coldPasses; pass++ {
		opts := core.Options{Plans: plan.NewCache(plan.DefaultCacheSize)}
		for _, v := range views {
			for _, u := range updates {
				start := time.Now()
				res, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts)
				if err != nil {
					return PlanBench{}, fmt.Errorf("cold %s×%s: %w", v.Name, u.Name, err)
				}
				coldNs = append(coldNs, time.Since(start).Nanoseconds())
				if res.Plan != "cold" {
					return PlanBench{}, fmt.Errorf("cold %s×%s served %q", v.Name, u.Name, res.Plan)
				}
				key := v.Name + "×" + u.Name
				if pass == 0 {
					verdicts[key] = res.Independent
					if res.Independent {
						pb.IndependentPairs++
					}
				} else if verdicts[key] != res.Independent {
					return PlanBench{}, fmt.Errorf("cold %s: verdict flapped across passes", key)
				}
			}
		}
	}

	// Warm arm: one cache. The populating pass is untimed (it is the
	// cold arm again); the timed passes must all hit, and every warm
	// verdict must equal its cold ground truth.
	cache := plan.NewCache(plan.DefaultCacheSize)
	opts := core.Options{Plans: cache}
	for _, v := range views {
		for _, u := range updates {
			if _, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts); err != nil {
				return PlanBench{}, fmt.Errorf("populate %s×%s: %w", v.Name, u.Name, err)
			}
		}
	}
	warmNs := make([]int64, 0, pb.Pairs*warmPasses)
	for pass := 0; pass < warmPasses; pass++ {
		for _, v := range views {
			for _, u := range updates {
				start := time.Now()
				res, err := a.AnalyzeContext(ctx, v.AST, u.AST, core.MethodChains, opts)
				if err != nil {
					return PlanBench{}, fmt.Errorf("warm %s×%s: %w", v.Name, u.Name, err)
				}
				warmNs = append(warmNs, time.Since(start).Nanoseconds())
				if res.Plan != "warm" {
					return PlanBench{}, fmt.Errorf("warm %s×%s served %q", v.Name, u.Name, res.Plan)
				}
				if verdicts[v.Name+"×"+u.Name] != res.Independent {
					return PlanBench{}, fmt.Errorf("warm %s×%s: verdict differs from cold", v.Name, u.Name)
				}
			}
		}
	}

	st := cache.Stats()
	pb.Hits, pb.Misses, pb.Resident = st.Hits, st.Misses, st.Resident
	if total := st.Hits + st.Misses; total > 0 {
		pb.HitRatio = float64(st.Hits) / float64(total)
	}
	pb.ColdP50Ns = percentile(coldNs, 0.50)
	pb.ColdP90Ns = percentile(coldNs, 0.90)
	pb.WarmP50Ns = percentile(warmNs, 0.50)
	pb.WarmP90Ns = percentile(warmNs, 0.90)
	if pb.WarmP50Ns > 0 {
		pb.Speedup = float64(pb.ColdP50Ns) / float64(pb.WarmP50Ns)
	}
	return pb, nil
}

// RenderPlanBench renders the comparison as a small table.
func RenderPlanBench(pb PlanBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prepared-plan cache vs cold analysis (%d×%d XMark matrix, %d cold / %d warm passes)\n",
		pb.Views, pb.Updates, pb.ColdPasses, pb.WarmPasses)
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "arm", "p50 ns", "p90 ns")
	fmt.Fprintf(&b, "%-6s %12d %12d\n", "cold", pb.ColdP50Ns, pb.ColdP90Ns)
	fmt.Fprintf(&b, "%-6s %12d %12d\n", "warm", pb.WarmP50Ns, pb.WarmP90Ns)
	fmt.Fprintf(&b, "speedup %.1fx   hit ratio %.1f%% (%d hits / %d misses, %d resident)   independent pairs %d/%d\n",
		pb.Speedup, 100*pb.HitRatio, pb.Hits, pb.Misses, pb.Resident, pb.IndependentPairs, pb.Pairs)
	return b.String()
}
