// Package experiments regenerates every panel of the paper's Figure 3
// (Section 6.2) as structured rows: per-update analysis runtime (3.a),
// precision of chains vs the type baseline (3.b), view
// re-materialisation savings (3.c) and the R-benchmark scalability
// surface (3.d). The rows are rendered by cmd/xqbench and measured by
// the testing.B benchmarks in the repository root.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xqindep/internal/cdag"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/guard"
	"xqindep/internal/pathanalysis"
	"xqindep/internal/rbench"
	"xqindep/internal/typeanalysis"
	"xqindep/internal/xmark"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// AnalysisTimeout and AnalysisLimits bound every individual chain
// analysis of the benchmark (zero values mean defaults / no deadline).
// cmd/xqbench wires its -timeout and -max-nodes flags here. A run
// that exceeds the budget is counted as "not independent" — the
// conservative reading, which keeps the soundness assertion of
// Figure3b meaningful.
var (
	AnalysisTimeout time.Duration
	AnalysisLimits  guard.Limits
)

// chainVerdict runs the CDAG analysis under the package budget.
func chainVerdict(d *dtd.DTD, q xquery.Query, u xquery.Update) cdag.Verdict {
	ctx := context.Background() //xqvet:ignore ctxflow experiments run standalone off package-level knobs; there is no caller context
	if AnalysisTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, AnalysisTimeout)
		defer cancel()
	}
	b := guard.New(ctx, AnalysisLimits)
	var v cdag.Verdict
	if err := guard.Do(func() { v = cdag.IndependenceBudget(d, q, u, b) }); err != nil {
		return cdag.Verdict{Independent: false, Reasons: []string{fmt.Sprintf("budget exceeded: %v", err)}}
	}
	return v
}

// Figure3aRow is one bar of Figure 3.a: the time to analyse one update
// against all 36 views, per technique.
type Figure3aRow struct {
	Update string
	// Chains is the CDAG engine time for the 36 pairs.
	Chains time.Duration
	// Types is the type-set baseline time for the 36 pairs.
	Types time.Duration
	// KMin and KMax are the multiplicity range across the views.
	KMin, KMax int
}

// Figure3a measures per-update analysis time against the whole view
// set.
func Figure3a() []Figure3aRow {
	d := xmark.Schema()
	views := xmark.Views()
	var rows []Figure3aRow
	for _, u := range xmark.Updates() {
		row := Figure3aRow{Update: u.Name, KMin: 1 << 30}
		start := time.Now()
		for _, v := range views {
			verdict := chainVerdict(d, v.AST, u.AST)
			if verdict.K < row.KMin {
				row.KMin = verdict.K
			}
			if verdict.K > row.KMax {
				row.KMax = verdict.K
			}
		}
		row.Chains = time.Since(start)
		start = time.Now()
		ta := typeanalysis.New(d)
		for _, v := range views {
			ta.CheckIndependence(v.AST, u.AST)
		}
		row.Types = time.Since(start)
		rows = append(rows, row)
	}
	return rows
}

// Figure3bRow is one group of Figure 3.b: how many of the truly
// independent (update, view) pairs each analysis detects.
type Figure3bRow struct {
	Update      string
	TrueIndep   int // ground truth: independent pairs out of 36
	ChainsFound int
	TypesFound  int
	PathsFound  int
}

// Percent renders found/true as the paper's percentage (100 when
// nothing is independent).
func Percent(found, trueIndep int) float64 {
	if trueIndep == 0 {
		return 100
	}
	return 100 * float64(found) / float64(trueIndep)
}

// Figure3b computes detection counts against the empirical ground
// truth. Soundness is asserted: an analysis may never deem a
// dependent pair independent.
func Figure3b(truth *xmark.Truth) ([]Figure3bRow, error) {
	d := xmark.Schema()
	views := xmark.Views()
	ta := typeanalysis.New(d)
	var rows []Figure3bRow
	for _, u := range xmark.Updates() {
		row := Figure3bRow{Update: u.Name}
		for _, v := range views {
			dep := truth.IsDependent(u.Name, v.Name)
			if !dep {
				row.TrueIndep++
			}
			cv := chainVerdict(d, v.AST, u.AST)
			tv := ta.CheckIndependence(v.AST, u.AST)
			pv, perr := pathanalysis.Independence(v.AST, u.AST)
			if perr != nil {
				return nil, fmt.Errorf("experiments: path analysis %s-%s: %v", u.Name, v.Name, perr)
			}
			if dep && (cv.Independent || tv.Independent || pv.Independent) {
				return nil, fmt.Errorf("experiments: unsound verdict for %s-%s (chains=%v types=%v paths=%v)",
					u.Name, v.Name, cv.Independent, tv.Independent, pv.Independent)
			}
			if !dep {
				if cv.Independent {
					row.ChainsFound++
				}
				if tv.Independent {
					row.TypesFound++
				}
				if pv.Independent {
					row.PathsFound++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Averages summarises Figure 3.b like the paper's prose: average
// detection percentage per technique.
func Averages(rows []Figure3bRow) (chains, types, paths float64) {
	for _, r := range rows {
		chains += Percent(r.ChainsFound, r.TrueIndep)
		types += Percent(r.TypesFound, r.TrueIndep)
		paths += Percent(r.PathsFound, r.TrueIndep)
	}
	n := float64(len(rows))
	return chains / n, types / n, paths / n
}

// Figure3cRow is one document scale of Figure 3.c: average view
// refresh cost after an update, for refresh-all versus
// refresh-only-dependent under each analysis.
type Figure3cRow struct {
	Factor     float64
	Bytes      int
	RefreshAll time.Duration // average over updates
	Types      time.Duration
	Chains     time.Duration
}

// SavingsTypes is the relative saving of the type-based analysis.
func (r Figure3cRow) SavingsTypes() float64 {
	return 100 * (1 - float64(r.Types)/float64(r.RefreshAll))
}

// SavingsChains is the relative saving of the chain analysis.
func (r Figure3cRow) SavingsChains() float64 {
	return 100 * (1 - float64(r.Chains)/float64(r.RefreshAll))
}

// Figure3c measures view re-materialisation time on documents of the
// given scale factors: for each update, all 36 views are re-evaluated
// on the updated document (refresh-all), and only the views not deemed
// independent under each static analysis (refresh-dependent). The
// evaluator substitutes the paper's commercial engines; the relative
// savings are the reproduced quantity.
func Figure3c(factors []float64) []Figure3cRow {
	d := xmark.Schema()
	views := xmark.Views()
	updates := xmark.Updates()

	// Static verdicts (computed once; their cost is Figure 3.a).
	ta := typeanalysis.New(d)
	chainIndep := make(map[string]map[string]bool)
	typeIndep := make(map[string]map[string]bool)
	for _, u := range updates {
		chainIndep[u.Name] = make(map[string]bool)
		typeIndep[u.Name] = make(map[string]bool)
		for _, v := range views {
			chainIndep[u.Name][v.Name] = chainVerdict(d, v.AST, u.AST).Independent
			typeIndep[u.Name][v.Name] = ta.CheckIndependence(v.AST, u.AST).Independent
		}
	}

	var rows []Figure3cRow
	for fi, factor := range factors {
		base := xmark.GenerateDocument(int64(500+fi), factor)
		row := Figure3cRow{Factor: factor, Bytes: len(base.Store.String(base.Root))}
		var all, types, chains time.Duration
		for _, u := range updates {
			s2 := xmltree.NewStore()
			root2 := s2.Copy(base.Store, base.Root)
			if err := eval.Update(s2, eval.RootEnv(root2), u.AST); err != nil {
				panic(fmt.Sprintf("experiments: update %s: %v", u.Name, err))
			}
			updated := xmltree.NewTree(s2, root2)
			all += refresh(updated, views, nil)
			types += refresh(updated, views, typeIndep[u.Name])
			chains += refresh(updated, views, chainIndep[u.Name])
		}
		n := time.Duration(len(updates))
		row.RefreshAll = all / n
		row.Types = types / n
		row.Chains = chains / n
		rows = append(rows, row)
	}
	return rows
}

// refresh evaluates the views not marked independent and returns the
// elapsed time.
func refresh(doc xmltree.Tree, views []xmark.View, indep map[string]bool) time.Duration {
	start := time.Now()
	for _, v := range views {
		if indep != nil && indep[v.Name] {
			continue
		}
		s := xmltree.NewStore()
		root := s.Copy(doc.Store, doc.Root)
		if _, err := eval.Query(s, eval.RootEnv(root), v.AST); err != nil {
			panic(fmt.Sprintf("experiments: view %s: %v", v.Name, err))
		}
	}
	return time.Since(start)
}

// Figure3dRow is one point of the scalability surface: chain inference
// time for em over dn (or the XMark schema) at multiplicity k.
type Figure3dRow struct {
	Schema   string // "d1".."d20" or "auctions"
	N        int    // schema parameter (0 for auctions)
	M        int    // expression parameter
	K        int    // multiplicity used
	Inferred time.Duration
}

// Figure3d runs the R-benchmark grid of the paper: n over ns, m over
// ms, and k ∈ {m, m+5, m+10} for each, plus the XMark column.
func Figure3d(ns, ms []int) []Figure3dRow {
	var rows []Figure3dRow
	for _, n := range ns {
		d := rbench.SchemaN(n)
		for _, m := range ms {
			q := rbench.ExprM(m)
			for _, dk := range []int{0, 5, 10} {
				k := m + dk
				e := cdag.NewEngine(d, k, 0)
				start := time.Now()
				e.Query(e.RootEnv(), q)
				rows = append(rows, Figure3dRow{
					Schema: fmt.Sprintf("d%d", n), N: n, M: m, K: k,
					Inferred: time.Since(start),
				})
			}
		}
	}
	// The "auctions" column: em over the XMark schema.
	d := xmark.Schema()
	for _, m := range ms {
		q := rbench.ExprM(m)
		for _, dk := range []int{0, 5, 10} {
			k := m + dk
			e := cdag.NewEngine(d, k, 0)
			start := time.Now()
			e.Query(e.RootEnv(), q)
			rows = append(rows, Figure3dRow{
				Schema: "auctions", M: m, K: k,
				Inferred: time.Since(start),
			})
		}
	}
	return rows
}

// RenderFigure3a formats the rows as an aligned table.
func RenderFigure3a(rows []Figure3aRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.a — static analysis time per update vs all 36 views\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %8s\n", "update", "chains", "types[6]", "k")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12s %12s %4d-%d\n",
			r.Update, r.Chains.Round(10*time.Microsecond), r.Types.Round(10*time.Microsecond), r.KMin, r.KMax)
	}
	return b.String()
}

// RenderFigure3b formats detection percentages like the paper's bars.
func RenderFigure3b(rows []Figure3bRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.b — independencies detected (%% of truly independent pairs)\n")
	fmt.Fprintf(&b, "%-6s %6s %8s %8s %8s\n", "update", "indep", "chains", "types[6]", "paths")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4d/36 %7.0f%% %7.0f%% %7.0f%%\n",
			r.Update, r.TrueIndep,
			Percent(r.ChainsFound, r.TrueIndep),
			Percent(r.TypesFound, r.TrueIndep),
			Percent(r.PathsFound, r.TrueIndep))
	}
	c, t, p := Averages(rows)
	fmt.Fprintf(&b, "%-6s %7s %7.0f%% %7.0f%% %7.0f%%\n", "avg", "", c, t, p)
	return b.String()
}

// RenderFigure3c formats re-materialisation times and savings.
func RenderFigure3c(rows []Figure3cRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.c — view re-materialisation time per update (avg)\n")
	fmt.Fprintf(&b, "%-8s %10s %12s %12s %12s %9s %9s\n",
		"factor", "doc size", "refresh-all", "types[6]", "chains", "sav-types", "sav-chains")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.1f %9dK %12s %12s %12s %8.0f%% %8.0f%%\n",
			r.Factor, r.Bytes/1024,
			r.RefreshAll.Round(10*time.Microsecond),
			r.Types.Round(10*time.Microsecond),
			r.Chains.Round(10*time.Microsecond),
			r.SavingsTypes(), r.SavingsChains())
	}
	return b.String()
}

// RenderFigure3d formats the scalability grid.
func RenderFigure3d(rows []Figure3dRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.d — chain inference time on the R-benchmark\n")
	fmt.Fprintf(&b, "%-10s %4s %4s %12s\n", "schema", "m", "k", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %4d %4d %12s\n", r.Schema, r.M, r.K, r.Inferred.Round(10*time.Microsecond))
	}
	return b.String()
}

// VerifyAnalysesAgainstTruth re-checks soundness of every technique on
// the benchmark matrix; used by the integration test.
func VerifyAnalysesAgainstTruth(truth *xmark.Truth) error {
	_, err := Figure3b(truth)
	return err
}

// AnalyzerPairCount is the size of the benchmark matrix.
func AnalyzerPairCount() int { return len(xmark.Views()) * len(xmark.Updates()) }
