package experiments

import (
	"fmt"
	"strings"
	"testing"

	"xqindep/internal/cdag"
	"xqindep/internal/refcdag"
	"xqindep/internal/xmark"
)

// The compiled-schema benchmark pits the dense engine (internal/cdag
// over a dtd.Compiled artifact) against the retained map-based
// reference (internal/refcdag) on one XMark pair, phase by phase:
// chain-DAG inference from scratch, and the isolated conflict-check
// step on prebuilt DAGs. cmd/xqbench -compiled-bench renders it and
// writes BENCH_compiledschema.json; the same measurement is available
// as BenchmarkCompiledVsReference in the repository root.

// BenchSample is one measured engine/phase cell.
type BenchSample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// BenchPhase compares the two engines on one phase. Speedup is
// reference-ns over dense-ns; AllocRatio is reference-allocs over
// dense-allocs (higher = dense better, for both).
type BenchPhase struct {
	Reference  BenchSample `json:"reference"`
	Dense      BenchSample `json:"dense"`
	Speedup    float64     `json:"speedup"`
	AllocRatio float64     `json:"alloc_ratio"`
}

// CompiledBench is the full comparison for one view/update pair.
type CompiledBench struct {
	View     string     `json:"view"`
	Update   string     `json:"update"`
	Infer    BenchPhase `json:"infer"`
	Conflict BenchPhase `json:"conflict"`
}

func sample(r testing.BenchmarkResult) BenchSample {
	return BenchSample{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func phase(ref, dense testing.BenchmarkResult) BenchPhase {
	p := BenchPhase{Reference: sample(ref), Dense: sample(dense)}
	if p.Dense.NsPerOp > 0 {
		p.Speedup = float64(p.Reference.NsPerOp) / float64(p.Dense.NsPerOp)
	}
	if p.Dense.AllocsPerOp > 0 {
		p.AllocRatio = float64(p.Reference.AllocsPerOp) / float64(p.Dense.AllocsPerOp)
	}
	return p
}

// MeasureCompiledBench runs the four benchmarks for the named XMark
// pair via testing.Benchmark.
func MeasureCompiledBench(view, update string) (CompiledBench, error) {
	d := xmark.Schema()
	v, ok := xmark.ViewByName(view)
	if !ok {
		return CompiledBench{}, fmt.Errorf("unknown view %q", view)
	}
	u, ok := xmark.UpdateByName(update)
	if !ok {
		return CompiledBench{}, fmt.Errorf("unknown update %q", update)
	}

	inferRef := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := refcdag.EngineFor(d, v.AST, u.AST)
			e.Query(e.RootEnv(), v.AST)
			e.Update(e.RootEnv(), u.AST)
		}
	})
	inferDense := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := cdag.EngineFor(d, v.AST, u.AST)
			e.Query(e.RootEnv(), v.AST)
			e.Update(e.RootEnv(), u.AST)
		}
	})

	re := refcdag.EngineFor(d, v.AST, u.AST)
	rq := re.Query(re.RootEnv(), v.AST)
	ru := re.Update(re.RootEnv(), u.AST)
	conflictRef := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refcdag.ConflictRetUpdate(rq.Ret, ru)
			refcdag.ConflictUpdateRet(ru, rq.Ret)
			refcdag.ConflictUpdateUsed(ru, rq.Used)
		}
	})
	de := cdag.EngineFor(d, v.AST, u.AST)
	dq := de.Query(de.RootEnv(), v.AST)
	du := de.Update(de.RootEnv(), u.AST)
	conflictDense := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cdag.ConflictRetUpdate(dq.Ret, du)
			cdag.ConflictUpdateRet(du, dq.Ret)
			cdag.ConflictUpdateUsed(du, dq.Used)
		}
	})

	return CompiledBench{
		View:     view,
		Update:   update,
		Infer:    phase(inferRef, inferDense),
		Conflict: phase(conflictRef, conflictDense),
	}, nil
}

// RenderCompiledBench renders the comparison as a small table.
func RenderCompiledBench(cb CompiledBench) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compiled-schema engine vs map reference (%s × %s)\n", cb.View, cb.Update)
	fmt.Fprintf(&b, "%-10s %14s %14s %8s %14s %14s %8s\n",
		"phase", "ref ns/op", "dense ns/op", "speedup", "ref allocs", "dense allocs", "ratio")
	row := func(name string, p BenchPhase) {
		fmt.Fprintf(&b, "%-10s %14d %14d %7.1fx %14d %14d %7.1fx\n",
			name, p.Reference.NsPerOp, p.Dense.NsPerOp, p.Speedup,
			p.Reference.AllocsPerOp, p.Dense.AllocsPerOp, p.AllocRatio)
	}
	row("infer", cb.Infer)
	row("conflict", cb.Conflict)
	return b.String()
}
