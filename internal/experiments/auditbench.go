package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
	"xqindep/internal/server"
	"xqindep/internal/xmark"
)

// The audit-overhead benchmark answers the operational question of the
// sentinel layer: what does runtime verdict auditing cost the request
// path? It runs the same XMark pair through two identically configured
// pools — one bare, one with an auditor sampling at the given rate —
// and compares request-latency percentiles. Observe is a non-blocking
// O(1) enqueue and the re-derivations run on dedicated audit workers,
// so the p50 overhead at production sample rates (~1%) must stay in
// the noise; cmd/xqbench -audit-bench renders the comparison and
// writes BENCH_sentinel.json.

// LatencySummary condenses one latency distribution.
type LatencySummary struct {
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	MeanNS int64 `json:"mean_ns"`
}

// AuditBench is the full audit-overhead comparison.
type AuditBench struct {
	View        string  `json:"view"`
	Update      string  `json:"update"`
	SampleRate  float64 `json:"sample_rate"`
	Requests    int     `json:"requests"`
	Independent bool    `json:"independent"` // verdict of the pair (audits fire only on true)

	Baseline LatencySummary `json:"baseline"`
	Audited  LatencySummary `json:"audited"`
	// OverheadP50Pct/P95Pct are (audited-baseline)/baseline × 100;
	// negative values are measurement noise.
	OverheadP50Pct float64 `json:"overhead_p50_pct"`
	OverheadP95Pct float64 `json:"overhead_p95_pct"`

	// Audits snapshots the auditor after the run: Sampled documents the
	// realized sampling, Disagreements must be zero on a healthy engine.
	Audits sentinel.Stats `json:"audits"`
}

func summarize(lat []time.Duration) LatencySummary {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pick := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i].Nanoseconds()
	}
	return LatencySummary{
		P50NS:  pick(0.50),
		P95NS:  pick(0.95),
		MeanNS: (sum / time.Duration(len(lat))).Nanoseconds(),
	}
}

func overheadPct(base, with int64) float64 {
	if base <= 0 {
		return 0
	}
	return (float64(with) - float64(base)) / float64(base) * 100
}

// MeasureAuditBench measures request latency with and without runtime
// auditing at rate over requests sequential analyses of the named
// XMark pair.
func MeasureAuditBench(view, update string, rate float64, requests int) (AuditBench, error) {
	d := xmark.Schema()
	v, ok := xmark.ViewByName(view)
	if !ok {
		return AuditBench{}, fmt.Errorf("unknown view %q", view)
	}
	u, ok := xmark.UpdateByName(update)
	if !ok {
		return AuditBench{}, fmt.Errorf("unknown update %q", update)
	}
	if requests <= 0 {
		requests = 2000
	}

	task := server.Task{
		Analyzer:   core.NewAnalyzer(d),
		Query:      v.AST,
		Update:     u.AST,
		QueryText:  v.Name,
		UpdateText: update,
	}

	bare := server.New(server.Config{Workers: 2})
	defer bare.Close()
	reg := quarantine.NewRegistry(quarantine.Config{})
	aud := sentinel.New(sentinel.Config{
		SampleRate: rate,
		Seed:       1,
		Quarantine: reg,
		OracleDocs: 2,
	})
	defer aud.Close()
	wired := server.New(server.Config{
		Workers:    2,
		Auditor:    aud,
		Quarantine: reg,
	})
	defer wired.Close()

	// Warmup both arms: compile the schema, fault in every lazy path.
	independent := false
	for i := 0; i < 32; i++ {
		res, err := bare.Do(nil, task)
		if err != nil {
			return AuditBench{}, err
		}
		independent = res.Independent
		if _, err := wired.Do(nil, task); err != nil {
			return AuditBench{}, err
		}
	}

	// Interleave the arms request by request so heap growth, GC pacing
	// and CPU frequency drift hit both distributions equally.
	base := make([]time.Duration, requests)
	audited := make([]time.Duration, requests)
	for i := 0; i < requests; i++ {
		start := time.Now()
		if _, err := bare.Do(nil, task); err != nil {
			return AuditBench{}, err
		}
		base[i] = time.Since(start)
		start = time.Now()
		if _, err := wired.Do(nil, task); err != nil {
			return AuditBench{}, err
		}
		audited[i] = time.Since(start)
	}
	aud.Flush()

	ab := AuditBench{
		View:        view,
		Update:      update,
		SampleRate:  rate,
		Requests:    requests,
		Independent: independent,
		Baseline:    summarize(base),
		Audited:     summarize(audited),
		Audits:      aud.Stats(),
	}
	ab.OverheadP50Pct = overheadPct(ab.Baseline.P50NS, ab.Audited.P50NS)
	ab.OverheadP95Pct = overheadPct(ab.Baseline.P95NS, ab.Audited.P95NS)
	return ab, nil
}

// RenderAuditBench renders the comparison as a small table.
func RenderAuditBench(ab AuditBench) string {
	var b strings.Builder
	verdict := "dependent"
	if ab.Independent {
		verdict = "independent"
	}
	fmt.Fprintf(&b, "Audit overhead (%s × %s, %s, sample rate %.2f%%, %d requests)\n",
		ab.View, ab.Update, verdict, ab.SampleRate*100, ab.Requests)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "", "p50 ns", "p95 ns", "mean ns")
	fmt.Fprintf(&b, "%-10s %12d %12d %12d\n", "baseline", ab.Baseline.P50NS, ab.Baseline.P95NS, ab.Baseline.MeanNS)
	fmt.Fprintf(&b, "%-10s %12d %12d %12d\n", "audited", ab.Audited.P50NS, ab.Audited.P95NS, ab.Audited.MeanNS)
	fmt.Fprintf(&b, "overhead   p50 %+.2f%%  p95 %+.2f%%\n", ab.OverheadP50Pct, ab.OverheadP95Pct)
	fmt.Fprintf(&b, "audits: observed=%d sampled=%d audited=%d agreements=%d disagreements=%d dropped=%d\n",
		ab.Audits.Observed, ab.Audits.Sampled, ab.Audits.Audited,
		ab.Audits.Agreements, ab.Audits.Disagreements, ab.Audits.Dropped)
	return b.String()
}
