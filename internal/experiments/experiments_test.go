package experiments

import (
	"testing"

	"xqindep/internal/xmark"
)

// truthCache shares one ground-truth computation across tests.
var truthCache *xmark.Truth

func truth(t *testing.T) *xmark.Truth {
	t.Helper()
	if truthCache == nil {
		tr, err := xmark.GroundTruth(xmark.SampleDocuments(3, 1.2))
		if err != nil {
			t.Fatal(err)
		}
		truthCache = tr
	}
	return truthCache
}

// TestFigure3bShape is the headline reproduction check: chains must be
// sound, more precise than the type baseline on average, and the type
// baseline more precise than the schema-less paths — the ordering the
// paper reports (96% vs 49%, with paths below both).
func TestFigure3bShape(t *testing.T) {
	rows, err := Figure3b(truth(t))
	if err != nil {
		t.Fatal(err) // soundness violation
	}
	if len(rows) != 31 {
		t.Fatalf("rows = %d", len(rows))
	}
	chains, types, paths := Averages(rows)
	t.Logf("average detection: chains %.0f%%, types %.0f%%, paths %.0f%%", chains, types, paths)
	if chains < types {
		t.Errorf("chains (%.0f%%) must dominate types (%.0f%%)", chains, types)
	}
	if chains < 70 {
		t.Errorf("chains average %.0f%% is far below the paper's 96%%", chains)
	}
	if types >= chains {
		t.Errorf("types should lose precision vs chains")
	}
	// Per-row dominance: chains never detects fewer than types.
	for _, r := range rows {
		if r.ChainsFound < r.TypesFound {
			t.Errorf("%s: chains %d < types %d", r.Update, r.ChainsFound, r.TypesFound)
		}
	}
	// The B updates (upward/horizontal axes) are where the paper sees
	// the largest gaps; check the gap exists in aggregate.
	var chainsB, typesB, nB int
	for _, r := range rows {
		if len(r.Update) >= 2 && r.Update[:2] == "UB" {
			chainsB += r.ChainsFound
			typesB += r.TypesFound
			nB += r.TrueIndep
		}
	}
	if chainsB <= typesB {
		t.Errorf("on UB updates chains (%d/%d) should beat types (%d/%d)", chainsB, nB, typesB, nB)
	}
	rendered := RenderFigure3b(rows)
	if len(rendered) == 0 {
		t.Errorf("empty render")
	}
	t.Logf("\n%s", rendered)
}

func TestFigure3aRuns(t *testing.T) {
	rows := Figure3a()
	if len(rows) != 31 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Chains <= 0 || r.Types <= 0 {
			t.Errorf("%s: non-positive timings", r.Update)
		}
		if r.KMin < 1 || r.KMax > 12 {
			t.Errorf("%s: k range %d-%d out of expectation", r.Update, r.KMin, r.KMax)
		}
	}
	t.Logf("\n%s", RenderFigure3a(rows))
}

func TestFigure3cRuns(t *testing.T) {
	rows := Figure3c([]float64{0.5, 1})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Chains > r.RefreshAll {
			t.Errorf("chains refresh slower than refresh-all: %v > %v", r.Chains, r.RefreshAll)
		}
		if r.SavingsChains() < r.SavingsTypes()-5 {
			t.Errorf("chains savings (%.0f%%) should dominate types (%.0f%%)",
				r.SavingsChains(), r.SavingsTypes())
		}
	}
	t.Logf("\n%s", RenderFigure3c(rows))
}

func TestFigure3dRuns(t *testing.T) {
	rows := Figure3d([]int{1, 3}, []int{1, 5})
	if len(rows) != 2*2*3+2*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Inferred < 0 {
			t.Errorf("negative time")
		}
	}
	t.Logf("\n%s", RenderFigure3d(rows))
}

func TestPercent(t *testing.T) {
	if Percent(3, 4) != 75 {
		t.Errorf("Percent(3,4) = %v", Percent(3, 4))
	}
	if Percent(0, 0) != 100 {
		t.Errorf("Percent(0,0) = %v", Percent(0, 0))
	}
}

func TestPairCount(t *testing.T) {
	if AnalyzerPairCount() != 36*31 {
		t.Errorf("pair count = %d", AnalyzerPairCount())
	}
}
