// Package quarantine is the containment registry behind the runtime
// verdict auditor (package sentinel): when an audit catches the fast
// engine producing an `Independent` verdict that the independent
// shadow machinery refutes, the schema's fingerprint is quarantined
// here, and every subsequent analysis for that fingerprint is
// *downgraded* to the conservative "not independent" rung of the
// degradation ladder until the schema proves itself clean again.
//
// The registry only ever weakens verdicts. Downgrading is always sound
// (PR 1's ladder argument: "not independent" can never be wrong), so
// the registry cannot introduce an unsoundness of its own — it can
// only cost precision while a fingerprint is under suspicion. Nothing
// in this package can flip a verdict to Independent; the xqvet
// verdictsites gate enforces that mechanically.
//
// Lifecycle of one fingerprint, mirroring the serving layer's circuit
// breaker (DESIGN.md §4c):
//
//	clean ──disagreement──▶ quarantined (active)
//	   ▲                         │ backoff elapses
//	   │                         ▼
//	   └──RecoverAfter clean──half-open ──dirty retrial──▶ quarantined
//	        retrials                                        (doubled backoff)
//
// On the FIRST disagreement the caller is told to purge the schema's
// CompileCache entry (Quarantine returns purge=true): a corrupted
// compiled artifact is the most likely benign cause, and recompiling
// from the source DTD repairs it. If disagreements continue on the
// fresh artifact the quarantine becomes sticky — backoff doubles on
// every re-trip and only clean half-open retrials lift it.
//
// All methods are safe for concurrent use. The clock is injectable so
// the sentinel chaos suite drives the state machine deterministically.
package quarantine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xqindep/internal/guard"
)

// ErrQuarantined marks a conservative verdict served because the
// schema's fingerprint is quarantined. It unwraps to ErrBudgetExceeded
// so the Degraded/Err reporting contract of the analysis ladder (and
// every chaos invariant stated over it) covers quarantine downgrades
// unchanged.
var ErrQuarantined = fmt.Errorf("quarantine: schema fingerprint quarantined after audit disagreement: %w", guard.ErrBudgetExceeded)

// IsQuarantined reports whether err marks a quarantine downgrade.
func IsQuarantined(err error) bool { return errors.Is(err, ErrQuarantined) }

// Config tunes a Registry. The zero value of every field selects a
// default.
type Config struct {
	// QuarantineAfter is the number of recorded disagreements on one
	// fingerprint that engages its quarantine (default 1: the first
	// unsound verdict is already an incident).
	QuarantineAfter int
	// Backoff is the initial quarantine duration before a half-open
	// retrial window opens (default 30s). It doubles on every re-trip
	// up to MaxBackoff (default 1h).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RecoverAfter is the number of consecutive clean half-open
	// retrials that lift the quarantine (default 3).
	RecoverAfter int
}

func (c Config) withDefaults() Config {
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 30 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Hour
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	return c
}

type qState int

const (
	qActive qState = iota
	qHalfOpen
)

// entry is the per-fingerprint state machine.
type entry struct {
	state         qState
	disagreements int // total recorded, across trips
	trips         int // times the quarantine engaged
	purged        bool
	backoff       time.Duration
	openUntil     time.Time
	clean         int  // consecutive clean retrials in half-open
	probing       bool // a retrial is in flight
}

// Stats is a point-in-time snapshot of a Registry, exposed by the
// daemon's /statz and /incidentz endpoints.
type Stats struct {
	Quarantined   int64 `json:"quarantined"` // fingerprints currently held
	Trips         int64 `json:"trips"`
	Disagreements int64 `json:"disagreements"`
	Probes        int64 `json:"probes"`
	Recovered     int64 `json:"recovered"`
	Downgrades    int64 `json:"downgrades"` // verdicts served conservatively
	// Fingerprints lists the held fingerprints with their state, sorted.
	Fingerprints []FingerprintState `json:"fingerprints,omitempty"`
}

// FingerprintState describes one held fingerprint.
type FingerprintState struct {
	Fingerprint   string `json:"fingerprint"`
	State         string `json:"state"` // "quarantined" or "half-open"
	Trips         int    `json:"trips"`
	Disagreements int    `json:"disagreements"`
	CleanRetrials int    `json:"clean_retrials"`
}

// Registry holds the quarantined fingerprints. The zero value is not
// usable; construct with NewRegistry or use Shared.
type Registry struct {
	mu      sync.Mutex
	cfg     Config
	m       map[string]*entry
	now     func() time.Time
	journal func(Record) // audit-lane transition hook; see persist.go

	trips, disagreements, probes, recovered, downgrades int64
}

// NewRegistry builds an empty registry with cfg (zero fields
// defaulted).
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg: cfg.withDefaults(),
		m:   make(map[string]*entry),
		now: time.Now, //xqvet:ignore clockinject injectable-clock default; tests and chaos harnesses replace via SetNow
	}
}

// SetNow injects the clock (tests and chaos harnesses only).
func (r *Registry) SetNow(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// shared is the process-wide registry consulted by core.AnalyzeContext
// when the caller does not supply one.
var shared = NewRegistry(Config{})

// Shared returns the process-wide registry. An empty registry
// downgrades nothing, so library users who never wire an auditor are
// unaffected.
func Shared() *Registry { return shared }

// Downgrade reports whether verdicts for fp must be served
// conservatively right now, and counts the downgrade when so. An
// active quarantine whose backoff has elapsed transitions to half-open
// here; half-open fingerprints are still downgraded — recovery is
// driven by the sentinel's retrials (TryProbe/RecordProbe), never by
// trusting an unaudited verdict.
func (r *Registry) Downgrade(fp string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[fp]
	if e == nil || e.trips == 0 {
		// Unknown, or disagreements recorded but still below the
		// engagement threshold.
		return false
	}
	if e.state == qActive && !r.now().Before(e.openUntil) {
		e.state = qHalfOpen
		e.clean = 0
		e.probing = false
	}
	r.downgrades++
	return true
}

// Quarantine records one audit disagreement for fp and engages (or
// re-engages) its quarantine once the configured threshold is
// reached. It returns purge=true exactly once per fingerprint — on the
// first engagement — telling the caller to purge and recompile the
// schema's cached compiled artifact before the quarantine becomes
// sticky.
func (r *Registry) Quarantine(fp string) (purge bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[fp]
	if e == nil {
		e = &entry{}
		r.m[fp] = e
	}
	e.disagreements++
	r.disagreements++
	if e.disagreements < r.cfg.QuarantineAfter && e.trips == 0 {
		r.journalLocked(fp)
		return false
	}
	if e.backoff == 0 {
		e.backoff = r.cfg.Backoff
	} else {
		e.backoff *= 2
		if e.backoff > r.cfg.MaxBackoff {
			e.backoff = r.cfg.MaxBackoff
		}
	}
	e.state = qActive
	e.openUntil = r.now().Add(e.backoff)
	e.clean = 0
	e.probing = false
	e.trips++
	r.trips++
	purge = !e.purged
	e.purged = true
	r.journalLocked(fp)
	return purge
}

// TryProbe claims the single half-open retrial slot for fp. It
// returns true when fp is half-open and no retrial is in flight; the
// caller must finish with RecordProbe.
func (r *Registry) TryProbe(fp string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[fp]
	if e == nil || e.trips == 0 {
		return false
	}
	if e.state == qActive && !r.now().Before(e.openUntil) {
		e.state = qHalfOpen
		e.clean = 0
		e.probing = false
	}
	if e.state != qHalfOpen || e.probing {
		return false
	}
	e.probing = true
	r.probes++
	return true
}

// ProbeOutcome classifies one finished retrial.
type ProbeOutcome int

const (
	// ProbeClean: the fresh verdict and its shadow re-derivation agree.
	ProbeClean ProbeOutcome = iota
	// ProbeDirty: the retrial disagreed again — re-trip with doubled
	// backoff.
	ProbeDirty
	// ProbeInconclusive: the retrial could not be judged (audit budget
	// exhausted, oracle error); the slot frees and the next retrial
	// decides.
	ProbeInconclusive
)

// RecordProbe releases the retrial slot claimed by TryProbe and feeds
// the outcome back: RecoverAfter consecutive clean retrials lift the
// quarantine, a dirty retrial re-trips it.
func (r *Registry) RecordProbe(fp string, o ProbeOutcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[fp]
	if e == nil {
		return
	}
	e.probing = false
	if e.state != qHalfOpen {
		return
	}
	switch o {
	case ProbeClean:
		e.clean++
		if e.clean >= r.cfg.RecoverAfter {
			delete(r.m, fp)
			r.recovered++
		}
		r.journalLocked(fp)
	case ProbeDirty:
		e.backoff *= 2
		if e.backoff > r.cfg.MaxBackoff {
			e.backoff = r.cfg.MaxBackoff
		}
		e.state = qActive
		e.openUntil = r.now().Add(e.backoff)
		e.clean = 0
		e.trips++
		r.trips++
		r.journalLocked(fp)
	}
}

// State reports fp's state: "clean", "quarantined" or "half-open". It
// does not advance the state machine.
func (r *Registry) State(fp string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.m[fp]
	switch {
	case e == nil || e.trips == 0:
		return "clean"
	case e.state == qHalfOpen:
		return "half-open"
	default:
		return "quarantined"
	}
}

// Stats snapshots the registry.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Trips:         r.trips,
		Disagreements: r.disagreements,
		Probes:        r.probes,
		Recovered:     r.recovered,
		Downgrades:    r.downgrades,
	}
	for fp, e := range r.m {
		if e.trips == 0 {
			// Watched but below the engagement threshold.
			continue
		}
		st.Quarantined++
		state := "quarantined"
		if e.state == qHalfOpen {
			state = "half-open"
		}
		st.Fingerprints = append(st.Fingerprints, FingerprintState{
			Fingerprint:   fp,
			State:         state,
			Trips:         e.trips,
			Disagreements: e.disagreements,
			CleanRetrials: e.clean,
		})
	}
	sort.Slice(st.Fingerprints, func(i, j int) bool {
		return st.Fingerprints[i].Fingerprint < st.Fingerprints[j].Fingerprint
	})
	return st
}
