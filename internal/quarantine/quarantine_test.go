package quarantine

import (
	"errors"
	"testing"
	"time"

	"xqindep/internal/guard"
)

func frozen(r *Registry) *time.Time {
	now := time.Unix(0, 0)
	r.SetNow(func() time.Time { return now })
	return &now
}

func TestErrQuarantinedIsBudgetError(t *testing.T) {
	if !errors.Is(ErrQuarantined, guard.ErrBudgetExceeded) {
		t.Fatal("ErrQuarantined must unwrap to ErrBudgetExceeded")
	}
}

func TestLifecycle(t *testing.T) {
	r := NewRegistry(Config{Backoff: 10 * time.Second, RecoverAfter: 2})
	now := frozen(r)
	const fp = "abc"

	if r.Downgrade(fp) {
		t.Fatal("clean fingerprint downgraded")
	}
	if got := r.State(fp); got != "clean" {
		t.Fatalf("state = %q, want clean", got)
	}

	// First disagreement: engages immediately (QuarantineAfter default
	// 1) and requests exactly one purge.
	if !r.Quarantine(fp) {
		t.Fatal("first quarantine must request a purge")
	}
	if !r.Downgrade(fp) {
		t.Fatal("quarantined fingerprint not downgraded")
	}
	if got := r.State(fp); got != "quarantined" {
		t.Fatalf("state = %q, want quarantined", got)
	}
	// A retrial before the backoff elapses must not be admitted.
	if r.TryProbe(fp) {
		t.Fatal("probe admitted before backoff elapsed")
	}

	// Backoff elapses: still downgraded (half-open never upgrades),
	// but a single retrial slot opens.
	*now = now.Add(11 * time.Second)
	if !r.Downgrade(fp) {
		t.Fatal("half-open fingerprint must still be downgraded")
	}
	if got := r.State(fp); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	if !r.TryProbe(fp) {
		t.Fatal("half-open must admit one probe")
	}
	if r.TryProbe(fp) {
		t.Fatal("second concurrent probe admitted")
	}

	// An inconclusive retrial frees the slot without progress.
	r.RecordProbe(fp, ProbeInconclusive)
	if !r.TryProbe(fp) {
		t.Fatal("slot not freed after inconclusive probe")
	}
	r.RecordProbe(fp, ProbeClean)
	if got := r.State(fp); got != "half-open" {
		t.Fatalf("one clean retrial of two lifted quarantine: %q", got)
	}
	if !r.TryProbe(fp) {
		t.Fatal("probe slot closed after clean retrial")
	}
	r.RecordProbe(fp, ProbeClean)
	if got := r.State(fp); got != "clean" {
		t.Fatalf("state after RecoverAfter clean retrials = %q, want clean", got)
	}
	if r.Downgrade(fp) {
		t.Fatal("recovered fingerprint still downgraded")
	}

	st := r.Stats()
	if st.Recovered != 1 || st.Trips != 1 || st.Quarantined != 0 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}

func TestDirtyRetrialDoublesBackoff(t *testing.T) {
	r := NewRegistry(Config{Backoff: 10 * time.Second, RecoverAfter: 1})
	now := frozen(r)
	const fp = "fp"

	if !r.Quarantine(fp) {
		t.Fatal("want purge on first trip")
	}
	*now = now.Add(11 * time.Second)
	if !r.TryProbe(fp) {
		t.Fatal("no probe slot after backoff")
	}
	r.RecordProbe(fp, ProbeDirty)
	if got := r.State(fp); got != "quarantined" {
		t.Fatalf("dirty retrial must re-trip, state %q", got)
	}
	// Doubled backoff: 20s now. 11s is not enough.
	*now = now.Add(11 * time.Second)
	if r.TryProbe(fp) {
		t.Fatal("probe admitted before doubled backoff elapsed")
	}
	*now = now.Add(10 * time.Second)
	if !r.TryProbe(fp) {
		t.Fatal("probe not admitted after doubled backoff")
	}
}

func TestPurgeRequestedExactlyOnce(t *testing.T) {
	r := NewRegistry(Config{Backoff: time.Second})
	frozen(r)
	if !r.Quarantine("fp") {
		t.Fatal("first trip must purge")
	}
	if r.Quarantine("fp") {
		t.Fatal("second trip must not purge again")
	}
	if r.Quarantine("fp") {
		t.Fatal("third trip must not purge again")
	}
}

func TestQuarantineAfterThreshold(t *testing.T) {
	r := NewRegistry(Config{QuarantineAfter: 3, Backoff: time.Second})
	frozen(r)
	const fp = "fp"
	if r.Quarantine(fp) || r.Downgrade(fp) {
		t.Fatal("one disagreement of three must not engage")
	}
	if r.Quarantine(fp) || r.Downgrade(fp) {
		t.Fatal("two disagreements of three must not engage")
	}
	if !r.Quarantine(fp) {
		t.Fatal("third disagreement must engage and purge")
	}
	if !r.Downgrade(fp) {
		t.Fatal("engaged fingerprint not downgraded")
	}
	// Once tripped, every further disagreement re-trips regardless of
	// the threshold.
	if got := r.State(fp); got != "quarantined" {
		t.Fatalf("state %q", got)
	}
}

func TestNilAndUnknownSafe(t *testing.T) {
	var r *Registry
	if r.Downgrade("x") {
		t.Fatal("nil registry downgraded")
	}
	reg := NewRegistry(Config{})
	reg.RecordProbe("never-seen", ProbeClean) // must not panic
	if reg.TryProbe("never-seen") {
		t.Fatal("probe on unknown fingerprint")
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := NewRegistry(Config{Backoff: time.Second})
	frozen(r)
	r.Quarantine("b")
	r.Quarantine("a")
	r.Downgrade("a")
	st := r.Stats()
	if st.Quarantined != 2 || st.Disagreements != 2 || st.Downgrades != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Fingerprints) != 2 || st.Fingerprints[0].Fingerprint != "a" {
		t.Fatalf("fingerprints not sorted: %+v", st.Fingerprints)
	}
}
