package quarantine

import (
	"testing"
	"time"
)

// fakeClock is a settable clock for driving backoff windows.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func TestJournalHookEmitsAuditLaneTransitions(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Backoff: 10 * time.Second, RecoverAfter: 2})
	r.SetNow(clk.now)
	var recs []Record
	r.SetJournal(func(rec Record) { recs = append(recs, rec) })

	r.Quarantine("fp1")
	if len(recs) != 1 || recs[0].State != StateQuarantined || recs[0].Remaining != 10*time.Second {
		t.Fatalf("after quarantine: %+v", recs)
	}

	clk.advance(11 * time.Second)
	if !r.Downgrade("fp1") {
		t.Fatal("fp1 not downgraded")
	}
	// The active→half-open aging inside Downgrade is clock-derived and
	// must NOT journal.
	if len(recs) != 1 {
		t.Fatalf("clock transition journaled: %+v", recs)
	}

	if !r.TryProbe("fp1") {
		t.Fatal("probe slot not claimed")
	}
	r.RecordProbe("fp1", ProbeClean)
	if len(recs) != 2 || recs[1].State != StateHalfOpen || recs[1].Clean != 1 {
		t.Fatalf("after clean probe: %+v", recs)
	}

	r.TryProbe("fp1")
	r.RecordProbe("fp1", ProbeClean) // second clean lifts it
	if len(recs) != 3 || recs[2].State != StateClean {
		t.Fatalf("after recovery: %+v", recs)
	}
}

func TestRestoreRebasesBackoffOntoNewClock(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Backoff: 30 * time.Second})
	r.SetNow(clk.now)
	r.Quarantine("fp1")
	clk.advance(10 * time.Second) // 20s of backoff left
	recs := r.Export()
	if len(recs) != 1 || recs[0].Remaining != 20*time.Second {
		t.Fatalf("export: %+v", recs)
	}

	// "Reboot" onto a clock that jumped far backwards: the quarantine
	// must still hold for its remaining 20s, not expire or extend.
	clk2 := &fakeClock{t: time.Unix(1000, 0)}
	r2 := NewRegistry(Config{Backoff: 30 * time.Second})
	r2.SetNow(clk2.now)
	if held := r2.Restore(recs); held != 1 {
		t.Fatalf("restored %d held", held)
	}
	if !r2.Downgrade("fp1") {
		t.Fatal("restored quarantine not downgrading")
	}
	if r2.State("fp1") != "quarantined" {
		t.Fatalf("state: %s", r2.State("fp1"))
	}
	clk2.advance(21 * time.Second)
	r2.Downgrade("fp1")
	if r2.State("fp1") != "half-open" {
		t.Fatalf("after remaining elapsed: %s", r2.State("fp1"))
	}
}

func TestRestoreLastWriterWinsAndClean(t *testing.T) {
	r := NewRegistry(Config{})
	n := r.Restore([]Record{
		{Fingerprint: "a", State: StateQuarantined, Trips: 1, Backoff: time.Second},
		{Fingerprint: "b", State: StateQuarantined, Trips: 2, Backoff: time.Second},
		{Fingerprint: "a", State: StateClean}, // later record wins
		{Fingerprint: "c", State: StateWatched, Disagreements: 1},
		{Fingerprint: "", State: StateQuarantined}, // garbage: ignored
	})
	if n != 1 {
		t.Fatalf("held after restore: %d", n)
	}
	if r.State("a") != "clean" || r.State("b") != "quarantined" || r.State("c") != "clean" {
		t.Fatalf("states: a=%s b=%s c=%s", r.State("a"), r.State("b"), r.State("c"))
	}
	// The watched entry's disagreement count survived: one more
	// disagreement with QuarantineAfter=2 engages.
	r2 := NewRegistry(Config{QuarantineAfter: 2})
	r2.Restore([]Record{{Fingerprint: "c", State: StateWatched, Disagreements: 1}})
	if purge := r2.Quarantine("c"); !purge {
		t.Fatal("restored watched count did not engage quarantine")
	}
}

func TestRestoreHalfOpenForgetsProbe(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Backoff: time.Second})
	r.SetNow(clk.now)
	r.Quarantine("fp")
	clk.advance(2 * time.Second)
	r.TryProbe("fp") // slot claimed, probe in flight
	recs := r.Export()

	r2 := NewRegistry(Config{Backoff: time.Second})
	r2.SetNow(clk.now)
	r2.Restore(recs)
	if r2.State("fp") != "half-open" {
		t.Fatalf("state: %s", r2.State("fp"))
	}
	if !r2.TryProbe("fp") {
		t.Fatal("probe slot still held across restart")
	}
}

func TestExportRestoreRoundTripReproducesRegistry(t *testing.T) {
	clk := newClock()
	r := NewRegistry(Config{Backoff: 5 * time.Second, RecoverAfter: 3})
	r.SetNow(clk.now)
	r.Quarantine("x")
	r.Quarantine("y")
	r.Quarantine("y") // re-trip: doubled backoff
	clk.advance(3 * time.Second)

	r2 := NewRegistry(Config{Backoff: 5 * time.Second, RecoverAfter: 3})
	r2.SetNow(clk.now)
	r2.Restore(r.Export())
	for _, fp := range []string{"x", "y"} {
		if r.State(fp) != r2.State(fp) {
			t.Fatalf("%s: %s vs %s", fp, r.State(fp), r2.State(fp))
		}
		if !r2.Downgrade(fp) {
			t.Fatalf("%s not downgraded after restore", fp)
		}
	}
	// x had 2s of its 5s backoff left; y re-tripped to 10s with 7s
	// advanced... confirm the windows re-open independently.
	clk.advance(3 * time.Second) // x's remaining elapsed, y's (10s-? ) not
	r2.Downgrade("x")
	r2.Downgrade("y")
	if r2.State("x") != "half-open" || r2.State("y") != "quarantined" {
		t.Fatalf("windows: x=%s y=%s", r2.State("x"), r2.State("y"))
	}
}
