package quarantine

import (
	"sort"
	"time"
)

// Durable persistence for the containment registry.
//
// Quarantine decisions are the one piece of runtime state whose loss
// changes verdict behaviour: a fingerprint quarantined before a crash
// must still be downgraded after the restart, or the process reboots
// into trusting an engine the auditor already caught lying. The
// registry therefore journals every AUDIT-LANE transition — the ones
// driven by evidence (Quarantine, RecordProbe) — through a hook
// installed with SetJournal, and rebuilds itself from the replayed
// records via Restore at boot.
//
// Clock-derived transitions (an active quarantine aging into
// half-open inside Downgrade/TryProbe, a probe slot being claimed)
// are deliberately NOT journaled: they carry no evidence, they are
// recomputed from the restored deadlines, and journaling them would
// put an fsync on the verdict-serving path.
//
// Deadlines are persisted as durations-remaining, not wall-clock
// instants: a Record captured with 20s of backoff left is restored as
// openUntil = now+20s on whatever clock the rebooted process runs,
// so a clock jump across the restart can only lengthen a quarantine,
// never silently expire one.

// Record is the durable snapshot of one fingerprint's containment
// state. Records are last-writer-wins per fingerprint: replaying a
// sequence of them in order and keeping the final state per
// fingerprint reproduces the registry, which makes journal replay
// trivially idempotent.
type Record struct {
	Fingerprint string `json:"fp"`
	// State is one of "watched" (disagreements below the engagement
	// threshold), "quarantined", "half-open", or "clean" (lifted —
	// replay removes the fingerprint).
	State         string        `json:"state"`
	Disagreements int           `json:"disagreements,omitempty"`
	Trips         int           `json:"trips,omitempty"`
	Purged        bool          `json:"purged,omitempty"`
	Backoff       time.Duration `json:"backoff,omitempty"`
	// Remaining is how much of the active backoff window was left when
	// the record was captured; Restore rebases it onto its own clock.
	Remaining time.Duration `json:"remaining,omitempty"`
	Clean     int           `json:"clean,omitempty"`
}

// Record state names.
const (
	StateWatched     = "watched"
	StateQuarantined = "quarantined"
	StateHalfOpen    = "half-open"
	StateClean       = "clean"
)

// SetJournal installs the journal hook. After every audit-lane
// transition the registry calls fn with the fingerprint's new Record,
// under the registry lock — so transition order on disk matches
// transition order in memory. fn must not call back into the registry
// and should return quickly (it typically appends to a
// statefile.Store, i.e. one fsync); audit-lane transitions are rare
// and off the verdict-serving path, so the held lock is acceptable.
// A nil fn disables journaling.
func (r *Registry) SetJournal(fn func(Record)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = fn
}

// recordLocked captures fp's current state as a Record.
func (r *Registry) recordLocked(fp string) Record {
	e := r.m[fp]
	if e == nil {
		return Record{Fingerprint: fp, State: StateClean}
	}
	rec := Record{
		Fingerprint:   fp,
		Disagreements: e.disagreements,
		Trips:         e.trips,
		Purged:        e.purged,
		Backoff:       e.backoff,
		Clean:         e.clean,
	}
	switch {
	case e.trips == 0:
		rec.State = StateWatched
	case e.state == qHalfOpen:
		rec.State = StateHalfOpen
	default:
		rec.State = StateQuarantined
		if rem := e.openUntil.Sub(r.now()); rem > 0 {
			rec.Remaining = rem
		}
	}
	return rec
}

// journalLocked emits fp's current record to the installed hook.
func (r *Registry) journalLocked(fp string) {
	if r.journal != nil {
		r.journal(r.recordLocked(fp))
	}
}

// Export captures every tracked fingerprint, sorted, for a snapshot.
// Replaying Restore(Export()) on a fresh registry reproduces the
// containment state (with backoff deadlines rebased).
func (r *Registry) Export() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fps := make([]string, 0, len(r.m))
	for fp := range r.m {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	recs := make([]Record, 0, len(fps))
	for _, fp := range fps {
		recs = append(recs, r.recordLocked(fp))
	}
	return recs
}

// Restore replays records into the registry, last writer winning per
// fingerprint, rebasing every Remaining onto the registry clock. It
// is meant to run once at boot, before the registry serves Downgrade
// decisions; restored records are NOT re-journaled (the caller's next
// snapshot compacts them). A restored half-open fingerprint forgets
// any in-flight probe — the slot re-opens, which can only delay
// recovery, never weaken containment. Restore returns the number of
// fingerprints held (quarantined or half-open) afterwards.
func (r *Registry) Restore(recs []Record) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range recs {
		if rec.Fingerprint == "" {
			continue
		}
		if rec.State == StateClean {
			delete(r.m, rec.Fingerprint)
			continue
		}
		e := &entry{
			disagreements: rec.Disagreements,
			trips:         rec.Trips,
			purged:        rec.Purged,
			backoff:       rec.Backoff,
			clean:         rec.Clean,
		}
		switch rec.State {
		case StateHalfOpen:
			e.state = qHalfOpen
		default:
			// "watched" entries have trips == 0 and never downgrade;
			// "quarantined" entries re-arm with the remaining backoff on
			// this process's clock.
			e.state = qActive
			e.openUntil = r.now().Add(rec.Remaining)
		}
		r.m[rec.Fingerprint] = e
	}
	held := 0
	for _, e := range r.m {
		if e.trips > 0 {
			held++
		}
	}
	return held
}
