// Package guard provides the resource-budget and panic-safety
// substrate of the analysis engine. A single pathological input — a
// deeply recursive schema driving the exponential explicit-set engine,
// a hostile AST, an adversarial parse — must never crash or wedge the
// process. The package offers three tools:
//
//   - Limits and Budget: a per-analysis resource budget (wall-clock
//     deadline and cancellation via context.Context, maximum
//     multiplicity k, maximum chain-set cardinality, maximum CDAG
//     growth, maximum parser nesting depth and input size) with a
//     cheap Tick()/Check() API that engine hot loops call
//     cooperatively.
//
//   - Abort-by-panic with a typed sentinel: hot loops must stay free
//     of error plumbing, so Tick and the Add* counters abort by
//     panicking with an internal marker that Recover translates back
//     into the budget error at the engine boundary (the idiom of
//     encoding/json and text/template).
//
//   - Recover: the panic-to-error boundary. Any other panic escaping
//     an internal package is converted into a *InternalError carrying
//     the recovered value and stack, so callers see a diagnosable
//     error instead of a crashed process.
//
// Budget errors satisfy errors.Is(err, ErrBudgetExceeded); the caller
// (package core) reacts by descending a sound degradation ladder. A
// cancelled context is deliberately NOT a budget error: cancellation
// means the caller no longer wants any verdict, so context.Canceled
// propagates unchanged.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// ErrBudgetExceeded is the sentinel matched by errors.Is for every
// limit violation (deadline, k, chains, nodes, depth, input size).
var ErrBudgetExceeded = errors.New("analysis budget exceeded")

// Chaos sentinels. A fault hook can only return an error or panic —
// it cannot reach into engine state — so the corrupt-artifact and
// flip-verdict fault kinds (package faultinject) signal their effect
// with these sentinels, which core interprets at the matching fault
// points ("core.artifact", "core.verdict") and converts into the
// actual corruption/flip. They never escape the analysis entry points;
// the sentinel audit layer exists to prove the damage they cause is
// contained.
var (
	// ErrArtifactCorrupt instructs core to run the analysis on a
	// deterministically corrupted copy of the compiled schema artifact.
	ErrArtifactCorrupt = errors.New("faultinject: corrupt compiled artifact")
	// ErrVerdictFlip instructs core to flip the rung verdict it is
	// about to return — simulating an unsound engine edge case.
	ErrVerdictFlip = errors.New("faultinject: flip verdict")
)

// Limits bounds one analysis. The zero value of each field means "use
// the package default" (see DefaultLimits); set a field to NoLimit to
// disable that bound entirely.
type Limits struct {
	// MaxK bounds the multiplicity k = kq + ku of the finite chain
	// analysis; pairs requiring a larger k exceed the budget.
	MaxK int
	// MaxChains bounds the number of chains materialised by the
	// explicit-set engine (and pattern count of the path baseline).
	MaxChains int
	// MaxNodes bounds graph growth: CDAG edge insertions in the
	// polynomial engine and node counts of parsed XML trees.
	MaxNodes int
	// MaxParseDepth bounds the nesting depth accepted by the schema,
	// query/update and document parsers.
	MaxParseDepth int
	// MaxParseInput bounds parser input size in bytes.
	MaxParseInput int
}

// NoLimit disables an individual bound.
const NoLimit = int(^uint(0) >> 1) // MaxInt

// Default limit values. They are deliberately generous: ordinary
// analyses stay far below them, while degenerate inputs hit them long
// before exhausting memory.
const (
	DefaultMaxK          = 64
	DefaultMaxChains     = 1 << 18
	DefaultMaxNodes      = 1 << 22
	DefaultMaxParseDepth = 512
	DefaultMaxParseInput = 8 << 20
)

// DefaultLimits returns the default budget.
func DefaultLimits() Limits {
	return Limits{
		MaxK:          DefaultMaxK,
		MaxChains:     DefaultMaxChains,
		MaxNodes:      DefaultMaxNodes,
		MaxParseDepth: DefaultMaxParseDepth,
		MaxParseInput: DefaultMaxParseInput,
	}
}

// OrDefaults replaces every zero field with its default value.
func (l Limits) OrDefaults() Limits {
	d := DefaultLimits()
	if l.MaxK == 0 {
		l.MaxK = d.MaxK
	}
	if l.MaxChains == 0 {
		l.MaxChains = d.MaxChains
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxParseDepth == 0 {
		l.MaxParseDepth = d.MaxParseDepth
	}
	if l.MaxParseInput == 0 {
		l.MaxParseInput = d.MaxParseInput
	}
	return l
}

// Subdivide returns the per-share limits for splitting this budget
// across n concurrent consumers (a serving pool's workers): the
// cumulative resources — chain and node counts — are divided by n,
// while the structural bounds (k, parser depth, input size), which
// describe a single input rather than aggregate consumption, carry
// over unchanged. Zero fields are defaulted first so the division is
// well defined; NoLimit stays NoLimit; every share keeps at least a
// minimal usable budget.
func (l Limits) Subdivide(n int) Limits {
	if n <= 1 {
		return l.OrDefaults()
	}
	l = l.OrDefaults()
	div := func(v int) int {
		if v == NoLimit {
			return NoLimit
		}
		v /= n
		if v < 1 {
			v = 1
		}
		return v
	}
	l.MaxChains = div(l.MaxChains)
	l.MaxNodes = div(l.MaxNodes)
	return l
}

// LimitError reports which bound was violated; it unwraps to
// ErrBudgetExceeded.
type LimitError struct {
	// Resource names the exhausted bound: "deadline", "k", "chains",
	// "nodes", "depth" or "input".
	Resource string
	// Limit is the configured bound (0 when not applicable, e.g. for
	// the deadline).
	Limit int
}

func (e *LimitError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("guard: %s limit %d exceeded: %v", e.Resource, e.Limit, ErrBudgetExceeded)
	}
	return fmt.Sprintf("guard: %s exceeded: %v", e.Resource, ErrBudgetExceeded)
}

func (e *LimitError) Unwrap() error { return ErrBudgetExceeded }

// InternalError wraps a panic recovered at the engine boundary: an
// internal invariant was violated (or a hostile AST reached an
// impossible case). The stack identifies the faulty package without
// taking the process down.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("guard: internal error (recovered panic): %v", e.Value)
}

// Budget tracks consumption against Limits for one analysis run. A
// nil *Budget is valid and unlimited, so call sites never need to
// branch. Budgets are not safe for concurrent use; every analysis
// runs on one goroutine.
type Budget struct {
	ctx    context.Context
	lim    Limits
	nodes  int
	chains int
	ticks  uint
}

// tickStride is how many Ticks pass between context checks; ctx.Err
// costs an atomic load plus a mutex in the worst case, so hot loops
// amortise it.
const tickStride = 1 << 10

// New builds a budget enforcing lim (zero fields defaulted) under
// ctx. A nil ctx means context.Background().
func New(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, lim: lim.OrDefaults()}
}

// Limits returns the effective (defaulted) limits.
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{
			MaxK: NoLimit, MaxChains: NoLimit, MaxNodes: NoLimit,
			MaxParseDepth: NoLimit, MaxParseInput: NoLimit,
		}
	}
	return b.lim
}

// Context returns the budget's context (Background for a nil budget).
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Tick is the cooperative checkpoint for hot loops: roughly every
// tickStride calls it checks the deadline/cancellation and aborts by
// panicking with the budget error (translated back by Recover). The
// common path is one increment and one branch.
func (b *Budget) Tick() {
	if b == nil {
		return
	}
	b.ticks++
	if b.ticks%tickStride != 0 {
		return
	}
	if err := b.ctxErr(); err != nil {
		Abort(err)
	}
}

// Check is the non-panicking checkpoint for error-returning code: it
// reports the deadline/cancellation state without aborting.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	return b.ctxErr()
}

// ctxErr translates the context state: a missed deadline is a budget
// error (the ladder may still degrade), explicit cancellation
// propagates as context.Canceled.
func (b *Budget) ctxErr() error {
	if err := b.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return &LimitError{Resource: "deadline"}
		}
		return err
	}
	return nil
}

// AddNodes charges n units of graph growth (CDAG edges, tree nodes)
// and aborts when the node budget is exhausted.
func (b *Budget) AddNodes(n int) {
	if b == nil {
		return
	}
	b.nodes += n
	if b.nodes > b.lim.MaxNodes {
		Abort(&LimitError{Resource: "nodes", Limit: b.lim.MaxNodes})
	}
	b.Tick()
}

// AddChains charges n materialised chains (or path patterns) and
// aborts when the chain budget is exhausted.
func (b *Budget) AddChains(n int) {
	if b == nil {
		return
	}
	b.chains += n
	if b.chains > b.lim.MaxChains {
		Abort(&LimitError{Resource: "chains", Limit: b.lim.MaxChains})
	}
	b.Tick()
}

// Nodes returns the graph-growth units charged so far.
func (b *Budget) Nodes() int {
	if b == nil {
		return 0
	}
	return b.nodes
}

// Chains returns the chains charged so far.
func (b *Budget) Chains() int {
	if b == nil {
		return 0
	}
	return b.chains
}

// CheckK reports a budget error when the multiplicity k exceeds the
// bound; the caller decides before starting a chain analysis.
func (b *Budget) CheckK(k int) error {
	if b == nil || k <= b.lim.MaxK {
		return nil
	}
	return &LimitError{Resource: "k", Limit: b.lim.MaxK}
}

// Fault and trace hooks. The analysis engines mark their phase
// boundaries — chain inference, CDAG construction, conflict check,
// parsing — by calling Point (inside budgeted code) or FirePoint
// (outside it). In production with both hooks absent a point costs
// two nil atomic loads; the faultinject package installs the fault
// hook during chaos testing to deterministically turn named points
// into injected budget exhaustion, errors, or panics, and the obs
// package installs the trace hook (once, on first trace) to turn the
// same points into per-request phase marks.

// FaultHook inspects a named point under the given context and
// returns a non-nil error to make the point fail.
type FaultHook func(ctx context.Context, point string) error

// TraceHook observes a named point under the given context — the
// observability twin of FaultHook, fired at the same boundaries just
// before the fault hook so a trace records the phase even when a
// fault then kills it. nodes and chains snapshot the firing budget's
// consumption (zero at points outside budgeted code). The hook must
// not panic and must be cheap: it runs on the analysis hot path.
type TraceHook func(ctx context.Context, point string, nodes, chains int)

var (
	faultHook atomic.Pointer[FaultHook]
	traceHook atomic.Pointer[TraceHook]
)

// SetTraceHook installs (or, with nil, removes) the process-wide
// trace hook. Package obs installs it once, lazily, when the first
// trace is created; until then — and forever on processes that never
// trace — every point pays exactly one nil atomic load for it.
func SetTraceHook(h TraceHook) {
	if h == nil {
		traceHook.Store(nil)
		return
	}
	traceHook.Store(&h)
}

// SetFaultHook installs (or, with nil, removes) the process-wide
// fault hook. Only test harnesses should call this.
func SetFaultHook(h FaultHook) {
	if h == nil {
		faultHook.Store(nil)
		return
	}
	faultHook.Store(&h)
}

// FirePoint consults the fault hook for a named point; it returns nil
// when no hook is installed or the hook lets the point pass. For a
// hook-injected panic the panic propagates (callers sit behind a
// Recover boundary or isolate it themselves).
func FirePoint(ctx context.Context, point string) error {
	if th := traceHook.Load(); th != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		(*th)(ctx, point, 0, 0)
	}
	h := faultHook.Load()
	if h == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return (*h)(ctx, point)
}

// Point marks a phase boundary inside budgeted engine code: a
// hook-injected error aborts the analysis exactly like a budget
// overrun (translated back by Recover at the engine boundary).
func (b *Budget) Point(name string) {
	if th := traceHook.Load(); th != nil {
		(*th)(b.Context(), name, b.Nodes(), b.Chains())
	}
	h := faultHook.Load()
	if h == nil {
		return
	}
	if err := (*h)(b.Context(), name); err != nil {
		Abort(err)
	}
}

// abort is the typed panic payload distinguishing budget aborts from
// genuine engine panics.
type abort struct{ err error }

// Abort unwinds to the nearest Recover, which returns err from the
// enclosing function. Only budget-style control flow should use it.
func Abort(err error) { panic(&abort{err: err}) }

// Recover is the engine boundary: deferred as
//
//	defer guard.Recover(&err)
//
// it translates an Abort back into its error and converts any other
// panic into a *InternalError with the captured stack. A panic that
// already carries a *InternalError — the typed form every defensive
// "impossible case" panic in the analyzer packages uses — passes
// through unwrapped. With no panic in flight it does nothing.
func Recover(errp *error) {
	switch r := recover().(type) {
	case nil:
	case *abort:
		*errp = r.err
	case *InternalError:
		if r.Stack == nil {
			r.Stack = debug.Stack()
		}
		*errp = r
	default:
		*errp = &InternalError{Value: r, Stack: debug.Stack()}
	}
}

// OnPanic is the goroutine entry boundary: deferred first in a
// goroutine body,
//
//	defer guard.OnPanic(func(e *guard.InternalError) { ... })
//
// it stops an escaping panic from killing the process, handing the
// translated *InternalError to f instead. A budget Abort is
// re-panicked: aborts belong to a Recover boundary inside the
// analysis, and swallowing one here would hide a missing boundary.
func OnPanic(f func(*InternalError)) {
	switch r := recover().(type) {
	case nil:
	case *abort:
		panic(r)
	case *InternalError:
		if r.Stack == nil {
			r.Stack = debug.Stack()
		}
		f(r)
	default:
		f(&InternalError{Value: r, Stack: debug.Stack()})
	}
}

// Do runs f under a Recover boundary and returns the translated
// error; a convenience for call sites outside package core (the
// experiments driver, fuzz harnesses).
func Do(f func()) (err error) {
	defer Recover(&err)
	f()
	return nil
}
