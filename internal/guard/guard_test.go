package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	b.Tick()
	b.AddNodes(1 << 30)
	b.AddChains(1 << 30)
	if err := b.Check(); err != nil {
		t.Fatalf("nil budget Check: %v", err)
	}
	if err := b.CheckK(1 << 30); err != nil {
		t.Fatalf("nil budget CheckK: %v", err)
	}
	if b.Context() == nil {
		t.Fatal("nil budget Context is nil")
	}
}

func TestNodeLimitAborts(t *testing.T) {
	b := New(context.Background(), Limits{MaxNodes: 10})
	err := Do(func() {
		for i := 0; i < 100; i++ {
			b.AddNodes(1)
		}
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Resource != "nodes" || le.Limit != 10 {
		t.Fatalf("want nodes LimitError{10}, got %#v", err)
	}
}

func TestChainLimitAborts(t *testing.T) {
	b := New(context.Background(), Limits{MaxChains: 5})
	err := Do(func() { b.AddChains(6) })
	var le *LimitError
	if !errors.As(err, &le) || le.Resource != "chains" {
		t.Fatalf("want chains LimitError, got %v", err)
	}
}

func TestDeadlineBecomesBudgetError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	b := New(ctx, Limits{})
	err := Do(func() {
		for {
			b.Tick()
		}
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("deadline should be a budget error, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline must not look like cancellation: %v", err)
	}
}

func TestCancellationIsNotBudgetError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{})
	err := Do(func() {
		for {
			b.Tick()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("cancellation must not be a budget error: %v", err)
	}
}

func TestCheckKBoundary(t *testing.T) {
	b := New(context.Background(), Limits{MaxK: 4})
	if err := b.CheckK(4); err != nil {
		t.Fatalf("k at limit should pass: %v", err)
	}
	if err := b.CheckK(5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("k above limit should fail, got %v", err)
	}
}

func TestRecoverTranslatesPanicToInternalError(t *testing.T) {
	err := Do(func() { panic("engine invariant violated") })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %T %v", err, err)
	}
	if ie.Value != "engine invariant violated" {
		t.Fatalf("value not preserved: %v", ie.Value)
	}
	if !strings.Contains(string(ie.Stack), "guard") {
		t.Fatalf("stack missing: %q", ie.Stack)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("internal errors must not read as budget errors")
	}
}

func TestRecoverNoopWithoutPanic(t *testing.T) {
	if err := Do(func() {}); err != nil {
		t.Fatalf("no panic, no error: %v", err)
	}
}

func TestOrDefaultsFillsZeroFieldsOnly(t *testing.T) {
	l := Limits{MaxNodes: 7}.OrDefaults()
	if l.MaxNodes != 7 {
		t.Fatalf("explicit field overwritten: %d", l.MaxNodes)
	}
	if l.MaxK != DefaultMaxK || l.MaxChains != DefaultMaxChains ||
		l.MaxParseDepth != DefaultMaxParseDepth || l.MaxParseInput != DefaultMaxParseInput {
		t.Fatalf("defaults not applied: %+v", l)
	}
	if NoLimit <= 0 {
		t.Fatal("NoLimit must be positive")
	}
}
