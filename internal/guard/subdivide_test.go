package guard

import "testing"

// The sentinel audit layer carves its sub-budget out of the serving
// budget with Subdivide; these tests pin the edge cases it relies on.

func TestSubdivideZeroAndOneWorker(t *testing.T) {
	l := Limits{MaxChains: 1000, MaxNodes: 2000}
	for _, n := range []int{-3, 0, 1} {
		got := l.Subdivide(n)
		if got.MaxChains != 1000 || got.MaxNodes != 2000 {
			t.Fatalf("Subdivide(%d) divided cumulative bounds: %+v", n, got)
		}
		// Zero fields must still be defaulted on the n<=1 path.
		if got.MaxK != DefaultMaxK || got.MaxParseDepth != DefaultMaxParseDepth {
			t.Fatalf("Subdivide(%d) skipped defaulting: %+v", n, got)
		}
	}
}

func TestSubdivideDividesCumulativeOnly(t *testing.T) {
	l := Limits{MaxK: 8, MaxChains: 1000, MaxNodes: 2000, MaxParseDepth: 64, MaxParseInput: 4096}
	got := l.Subdivide(4)
	if got.MaxChains != 250 || got.MaxNodes != 500 {
		t.Fatalf("cumulative bounds not divided by 4: %+v", got)
	}
	if got.MaxK != 8 || got.MaxParseDepth != 64 || got.MaxParseInput != 4096 {
		t.Fatalf("structural bounds must carry over unchanged: %+v", got)
	}
}

func TestSubdivideExhaustedParentKeepsMinimalShare(t *testing.T) {
	// A parent budget already ground down to (or below) one unit per
	// resource must still hand every worker a usable share of 1, never
	// 0 (a zero field would read as "use the default" downstream).
	l := Limits{MaxChains: 1, MaxNodes: 3}
	got := l.Subdivide(8)
	if got.MaxChains != 1 || got.MaxNodes != 1 {
		t.Fatalf("exhausted parent must floor shares at 1: %+v", got)
	}
}

func TestSubdivideNoLimitStaysNoLimit(t *testing.T) {
	l := Limits{MaxChains: NoLimit, MaxNodes: NoLimit}
	got := l.Subdivide(16)
	if got.MaxChains != NoLimit || got.MaxNodes != NoLimit {
		t.Fatalf("NoLimit must survive subdivision: %+v", got)
	}
}

func TestSubdivideOfSubdivide(t *testing.T) {
	// The audit layer subdivides an already-subdivided worker budget;
	// two rounds must compose multiplicatively for the cumulative
	// bounds.
	l := Limits{MaxChains: 1200, MaxNodes: 2400}
	got := l.Subdivide(3).Subdivide(4)
	if got.MaxChains != 100 || got.MaxNodes != 200 {
		t.Fatalf("nested subdivision: %+v", got)
	}
}
