package sentinel

import (
	"encoding/json"
	"io"
	"time"
)

// Incident is the structured record of one audit disagreement: the
// fast engine served Independent=true and the independent re-derivation
// (shadow engine and/or oracle replay) refuted it. Incidents land in
// the auditor's in-memory ring (served by /incidentz) and, when a
// spool is configured, as one JSON line each.
type Incident struct {
	// Time is stamped from the auditor's injectable clock.
	Time time.Time `json:"time"`
	// Kind is "audit-disagreement" for a sampled live verdict or
	// "probe-dirty" for a failed half-open retrial.
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	QueryText   string `json:"query"`
	UpdateText  string `json:"update"`
	// QueryChains / UpdateChains are the inferred chain evidence of the
	// pair (dotted notation), when the exact engine could derive them
	// within the audit budget.
	QueryChains  []string `json:"query_chains,omitempty"`
	UpdateChains []string `json:"update_chains,omitempty"`
	// FastIndependent is the verdict that was served; always true for
	// an audited incident (only Independent verdicts are audited).
	FastIndependent bool `json:"fast_independent"`
	// ShadowIndependent is the reference engine's re-derivation;
	// ShadowErr records why it is missing when the audit budget ran out.
	ShadowIndependent bool   `json:"shadow_independent"`
	ShadowErr         string `json:"shadow_err,omitempty"`
	// ShadowReasons lists the conflict checks that fired in the shadow.
	ShadowReasons []string `json:"shadow_reasons,omitempty"`
	// OracleWitness is the index of the example document on which
	// replaying the pair changed the query result (-1: no witness or
	// oracle disabled). A witness is a concrete counterexample — proof,
	// not suspicion.
	OracleWitness int `json:"oracle_witness"`
	// Method and FallbackChain echo the served result's provenance.
	Method        string   `json:"method"`
	FallbackChain []string `json:"fallback_chain,omitempty"`
	// FaultSchedule describes the chaos schedule active on the audited
	// request, when any — it ties an incident back to its injection.
	FaultSchedule string `json:"fault_schedule,omitempty"`
}

// ring is a fixed-size overwrite-oldest incident buffer.
type ring struct {
	buf  []Incident
	next int
	n    int
}

func newRing(size int) *ring {
	if size < 1 {
		size = 1
	}
	return &ring{buf: make([]Incident, size)}
}

func (r *ring) add(in Incident) {
	r.buf[r.next] = in
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the retained incidents, oldest first.
func (r *ring) snapshot() []Incident {
	out := make([]Incident, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// spool writes in as one JSON line; errors are reported to the caller
// (the auditor counts them but never fails an audit over a spool).
func spool(w io.Writer, in Incident) error {
	return json.NewEncoder(w).Encode(in)
}
