package sentinel

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/faultinject"
	"xqindep/internal/quarantine"
	"xqindep/internal/statefile"
	"xqindep/internal/xquery"
)

// The drain-vs-budget satellite proof: an in-flight audit whose guard
// budget would outlive the drain deadline is hard-cancelled by
// Shutdown, and nothing already journaled — neither the spooled
// incident nor the quarantine transition — is lost. The wedge is a
// KindStall fault on the audit lane's own base context: the shadow
// engine blocks at "cdag.build" until that context dies, which is
// exactly an audit that will never finish on its own.
func TestShutdownHardCancelsWedgedAuditWithoutLosingState(t *testing.T) {
	faultinject.Enable()

	mem := statefile.NewMemFS()
	store, _, err := statefile.Open(mem, "state", statefile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spool, err := statefile.OpenSpool(mem, "state", "incidents.jsonl", 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	reg.SetJournal(func(rec quarantine.Record) {
		b, merr := json.Marshal(rec)
		if merr != nil {
			t.Errorf("marshal quarantine record: %v", merr)
			return
		}
		if aerr := store.Append(b); aerr != nil {
			t.Errorf("journal quarantine record: %v", aerr)
		}
	})

	// The audit lane's schedule: the SECOND audit to reach the shadow
	// engine stalls until the base context is cancelled. (The first
	// audit — the one that must land an incident — passes untouched.)
	wedged := make(chan struct{})
	sched := faultinject.NewSchedule(faultinject.Fault{
		Point: "cdag.build", Kind: faultinject.KindStall, After: 2,
	})
	sched.OnFire = func(faultinject.Fault) { close(wedged) }

	aud := New(Config{
		SampleRate:  1,
		Quarantine:  reg,
		OracleDocs:  -1, // shadow-only: keeps the stall the sole blocker
		Spool:       spool,
		BaseContext: faultinject.With(context.Background(), sched),
	})

	// Audit 1: a flipped Independent verdict for a dependent pair →
	// disagreement → incident spooled, fingerprint quarantined and
	// journaled.
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //title")
	flip := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	res, err := core.NewAnalyzer(bib).AnalyzeContext(
		faultinject.With(context.Background(), flip), q, u,
		core.MethodChains, core.Options{Quarantine: reg})
	if err != nil || !res.Independent {
		t.Fatalf("flip not served: %+v, %v", res, err)
	}
	aud.Observe(Observation{D: bib, Query: q, Update: u, QueryText: "//title", UpdateText: "delete //title", Result: res})
	aud.Flush()
	if st := aud.Stats(); st.Disagreements != 1 || st.Incidents != 1 {
		t.Fatalf("incident not recorded: %+v", st)
	}

	// Audit 2: a legitimate Independent verdict; its shadow wedges at
	// cdag.build and would hold the worker forever.
	q2 := xquery.MustParseQuery("//title")
	u2 := xquery.MustParseUpdate("delete //price")
	res2, err := core.NewAnalyzer(bib).AnalyzeContext(context.Background(), q2, u2, core.MethodChains, core.Options{})
	if err != nil || !res2.Independent {
		t.Fatalf("independent pair not served: %+v, %v", res2, err)
	}
	aud.Observe(Observation{D: bib, Query: q2, Update: u2, QueryText: "//title", UpdateText: "delete //price", Result: res2})
	<-wedged // the worker is now provably stuck inside the audit

	// Drain with a deadline the wedged audit cannot meet.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := aud.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (hard cancel)", err)
	}

	// The wedged audit was cancelled and counted inconclusive, not
	// lost in limbo; no disagreement was fabricated for it.
	st := aud.Stats()
	if st.Audited != 2 || st.Inconclusive != 1 || st.Disagreements != 1 {
		t.Fatalf("post-shutdown stats: %+v", st)
	}

	// The incident spool was flushed during drain: the pre-crash
	// incident is durable (what a reboot would read), not just
	// buffered.
	durable, ok := mem.Durable("state/incidents.jsonl")
	if !ok || !strings.Contains(string(durable), `"audit-disagreement"`) {
		t.Fatalf("incident not durable after drain: %q", durable)
	}

	// The quarantine journal survived too: a fresh registry restored
	// from the replayed records still refuses the fingerprint.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := statefile.Open(mem, "state", statefile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recs []quarantine.Record
	for _, raw := range rec.Records {
		var qr quarantine.Record
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("replayed record does not decode: %v (%q)", err, raw)
		}
		recs = append(recs, qr)
	}
	reg2 := quarantine.NewRegistry(quarantine.Config{})
	if held := reg2.Restore(recs); held != 1 {
		t.Fatalf("restored %d held fingerprints, want 1 (records %+v)", held, recs)
	}
	if !reg2.Downgrade(bib.Fingerprint()) {
		t.Fatal("restored registry does not downgrade the pre-shutdown quarantine")
	}
}
