// Package sentinel is the runtime audit-and-quarantine layer: it
// samples live Independent verdicts and re-derives them on machinery
// independent of the fast path — the retained reference CDAG engine
// (refcdag.Shadow, run from the source DTD, never from a compiled
// artifact) and, when example documents are available, concrete oracle
// replay (eval.DependentOnAny on schema-valid documents). A
// disagreement is an incident: the schema fingerprint is quarantined
// (package quarantine; core downgrades every later verdict for it to
// the conservative rung), its CompileCache entry is purged once so a
// corrupted artifact recompiles, and a structured Incident lands in an
// in-memory ring (served via /incidentz) and an optional JSONL spool.
//
// Auditing is off the request path: Observe only samples, packages and
// enqueues — the bounded queue never blocks, and when it is full the
// audit is dropped and counted. Workers run under their own
// guard.Limits sub-budget, so auditing can never starve serving.
//
// Soundness: the sentinel only ever *downgrades*. A caught
// disagreement does not retract the already-served verdict (it
// cannot); it prevents the next one, which is the strongest containment
// available to a runtime checker. Nothing in this package can turn a
// verdict into Independent; the xqvet verdictsites gate checks that
// mechanically.
package sentinel

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/refcdag"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// Config tunes an Auditor. Zero fields select defaults.
type Config struct {
	// SampleRate is the fraction of Independent verdicts audited
	// (0 < rate <= 1; default 0.01). Non-Independent verdicts are never
	// audited: a conservative verdict cannot be unsound.
	SampleRate float64
	// Seed drives the sampling and document-generation randomness;
	// audits are reproducible for a fixed seed and observation order.
	Seed int64
	// QueueDepth bounds the audit queue (default 256). A full queue
	// drops the audit (counted in Stats.Dropped) rather than block the
	// request path.
	QueueDepth int
	// Workers is the number of audit goroutines (default 1).
	Workers int
	// Budget bounds each single audit; zero fields take guard defaults.
	// Callers typically pass their serving limits Subdivide()'d so the
	// audit lane is strictly smaller than a serving lane.
	Budget guard.Limits
	// Quarantine is the registry incidents trip; nil selects the
	// process-wide quarantine.Shared().
	Quarantine *quarantine.Registry
	// Plans is the prepared-plan cache the serving pool consults (see
	// internal/plan); nil selects the process-wide plan.Shared(). When
	// a disagreement quarantines a fingerprint, every plan inferred
	// under that schema is purged from it alongside the CompileCache
	// entry: a cached verdict must not outlive the suspicion about the
	// schema it was derived from.
	Plans *plan.Cache
	// OracleDocs is the number of schema-valid example documents
	// generated per fingerprint for oracle replay (default 4; negative
	// disables the oracle).
	OracleDocs int
	// RingSize bounds the in-memory incident ring (default 128).
	RingSize int
	// BaseContext, when non-nil, parents the auditor's lifecycle
	// context (default context.Background()). Chaos harnesses attach
	// fault schedules here to inject faults into the audit lane itself;
	// cancelling it is equivalent to the hard-cancel leg of Shutdown.
	BaseContext context.Context
	// Spool, when non-nil, receives every incident as one JSON line.
	Spool io.Writer
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Quarantine == nil {
		c.Quarantine = quarantine.Shared()
	}
	if c.OracleDocs == 0 {
		c.OracleDocs = 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 128
	}
	return c
}

// Observation is one served analysis handed to Observe. The auditor
// keeps references to D, Query and Update across goroutines; all three
// are immutable by engine convention.
type Observation struct {
	D          *dtd.DTD
	Query      xquery.Query
	Update     xquery.Update
	QueryText  string
	UpdateText string
	Result     core.Result
	// FaultSchedule describes the chaos schedule active on the request,
	// if any; it is threaded into the incident record.
	FaultSchedule string
}

// job is one queued audit or retrial probe.
type job struct {
	obs   Observation
	probe bool
}

// Stats is a point-in-time snapshot of an Auditor.
type Stats struct {
	Observed      int64 `json:"observed"`
	Sampled       int64 `json:"sampled"`
	Dropped       int64 `json:"dropped"`
	Audited       int64 `json:"audited"`
	Agreements    int64 `json:"agreements"`
	Disagreements int64 `json:"disagreements"`
	Inconclusive  int64 `json:"inconclusive"`
	OracleWitness int64 `json:"oracle_witness"`
	Probes        int64 `json:"probes"`
	ProbesClean   int64 `json:"probes_clean"`
	ProbesDirty   int64 `json:"probes_dirty"`
	SpoolErrors   int64 `json:"spool_errors"`
	Incidents     int64 `json:"incidents"`
}

// Auditor samples, audits and quarantines. Construct with New; Close
// when done.
type Auditor struct {
	cfg Config
	reg *quarantine.Registry

	// base is the auditor's own lifecycle context: every audit budget
	// derives from it, so Shutdown can hard-cancel in-flight audits
	// whose guard.Limits budget would otherwise outlive the drain
	// deadline.
	base   context.Context
	cancel context.CancelFunc

	queue   chan job
	workers sync.WaitGroup
	pending sync.WaitGroup

	mu     sync.Mutex
	closed bool
	rng    *rand.Rand
	now    func() time.Time
	ring   *ring
	docs   map[string][]xmltree.Tree
	st     Stats
}

// New starts an auditor with cfg's workers running.
func New(cfg Config) *Auditor {
	cfg = cfg.withDefaults()
	parent := cfg.BaseContext
	if parent == nil {
		parent = context.Background()
	}
	base, cancel := context.WithCancel(parent)
	a := &Auditor{
		cfg:    cfg,
		reg:    cfg.Quarantine,
		base:   base,
		cancel: cancel,
		queue:  make(chan job, cfg.QueueDepth),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		now:    time.Now, //xqvet:ignore clockinject injectable-clock default; tests replace via SetNow
		ring:   newRing(cfg.RingSize),
		docs:   make(map[string][]xmltree.Tree),
	}
	for i := 0; i < cfg.Workers; i++ {
		a.workers.Add(1)
		go a.run()
	}
	return a
}

// SetNow injects the incident clock (tests only).
func (a *Auditor) SetNow(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
}

// Registry returns the quarantine registry incidents trip.
func (a *Auditor) Registry() *quarantine.Registry { return a.reg }

// Observe hands one served analysis to the auditor. It never blocks:
// sampling, the quarantine retrial check and the bounded enqueue are
// all O(1). Nil-safe, so serving layers can leave auditing unwired.
func (a *Auditor) Observe(o Observation) {
	if a == nil || o.D == nil || o.Query == nil || o.Update == nil {
		return
	}
	fp := o.D.Fingerprint()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.st.Observed++
	// A downgraded-by-quarantine verdict is the retrial trigger: claim
	// the single half-open probe slot and re-run the pair off-path.
	if o.Result.Err != nil && quarantine.IsQuarantined(o.Result.Err) {
		if a.reg.TryProbe(fp) {
			a.st.Probes++
			a.enqueueLocked(job{obs: o, probe: true}, fp)
		}
		return
	}
	// Only Independent verdicts can be unsound; everything else is
	// conservative by construction.
	if !o.Result.Independent {
		return
	}
	if a.cfg.SampleRate < 1 && a.rng.Float64() >= a.cfg.SampleRate {
		return
	}
	a.st.Sampled++
	a.enqueueLocked(job{obs: o}, fp)
}

// enqueueLocked enqueues without blocking; a full queue drops (and,
// for a probe, releases the retrial slot so recovery is not wedged).
func (a *Auditor) enqueueLocked(j job, fp string) {
	a.pending.Add(1)
	select {
	case a.queue <- j:
	default:
		a.pending.Done()
		a.st.Dropped++
		if j.probe {
			a.reg.RecordProbe(fp, quarantine.ProbeInconclusive)
		}
	}
}

// Flush blocks until every enqueued audit has completed. It does not
// stop the auditor.
func (a *Auditor) Flush() { a.pending.Wait() }

// Close drains and stops the workers, waiting however long the
// in-flight audits take. Observe becomes a no-op.
func (a *Auditor) Close() {
	//xqvet:ignore ctxflow lifecycle teardown: Close is the unbounded variant of Shutdown
	_ = a.Shutdown(context.Background())
}

// Shutdown stops the auditor within ctx's deadline. New observations
// are refused immediately; queued and in-flight audits run until ctx
// expires, at which point the auditor's base context is cancelled —
// hard-cancelling any audit whose own guard budget would outlive the
// drain — and Shutdown waits for the workers to unwind (prompt, since
// every audit budget observes the base context at its guard points).
// The spool, when it supports flushing (statefile.Spool does), is
// flushed after the workers exit so every recorded incident is
// durable before the process goes away. Returns ctx.Err() when the
// deadline forced a hard cancel, nil on a clean drain.
func (a *Auditor) Shutdown(ctx context.Context) error {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.queue)
	}
	a.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer guard.OnPanic(func(*guard.InternalError) {})
		a.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		a.cancel()
		<-done
	}
	a.cancel()
	a.flushSpool()
	return err
}

// flushSpool makes spooled incidents durable when the spool supports
// it; flush failures are counted, not fatal (the process is going
// away either way).
func (a *Auditor) flushSpool() {
	f, ok := a.cfg.Spool.(interface{ Flush() error })
	if !ok {
		return
	}
	if err := f.Flush(); err != nil {
		a.mu.Lock()
		a.st.SpoolErrors++
		a.mu.Unlock()
	}
}

// Stats snapshots the auditor counters.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// Incidents returns the retained incident records, oldest first.
func (a *Auditor) Incidents() []Incident {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ring.snapshot()
}

func (a *Auditor) run() {
	defer a.workers.Done()
	// Goroutine boundary: process contains per-audit panics behind its
	// own Recover; anything unwinding to here is a bug in the loop
	// itself — absorb it rather than crash the daemon (the lost worker
	// still releases its WaitGroup slot).
	defer guard.OnPanic(func(*guard.InternalError) {})
	for j := range a.queue {
		a.process(j)
		a.pending.Done()
	}
}

// process audits one job behind a Recover boundary: a panic out of the
// shadow engine or oracle is itself an engine bug, but it must be
// contained to this one audit (counted inconclusive), never crash the
// daemon.
func (a *Auditor) process(j job) {
	var err error
	func() {
		defer guard.Recover(&err)
		if j.probe {
			a.retrial(j.obs)
		} else {
			a.audit(j.obs)
		}
	}()
	if err != nil {
		a.mu.Lock()
		a.st.Inconclusive++
		a.mu.Unlock()
		if j.probe {
			a.reg.RecordProbe(j.obs.D.Fingerprint(), quarantine.ProbeInconclusive)
		}
	}
}

// verdictOf re-derives the pair on the independent machinery. It
// reports (unsound, witness, shadow, shadowErr): unsound means the
// served Independent verdict is refuted — by the shadow engine
// deciding dependent, or by a concrete oracle witness.
func (a *Auditor) verdictOf(o Observation) (unsound bool, witness int, shadow refcdag.Verdict, shadowErr error) {
	// Shadow re-derivation under the audit budget, on a context free
	// of the request's fault schedule: the auditor must not inherit the
	// faults it is auditing.
	func() {
		defer guard.Recover(&shadowErr)
		// The audit budget derives from the auditor's base context — not
		// the audited request's (fault-schedule isolation), and not a
		// bare Background (Shutdown must be able to hard-cancel it).
		b := guard.New(a.base, a.cfg.Budget)
		shadow = refcdag.IndependenceBudget(o.D, o.Query, o.Update, b)
	}()
	witness = -1
	if a.cfg.OracleDocs > 0 {
		trees := a.docsFor(o.D)
		// The oracle is best-effort: replay errors on individual trees
		// are skipped inside DependentOnAny, and a panic (hostile AST
		// shape) is absorbed here.
		_ = guard.Do(func() {
			witness = eval.DependentOnAny(trees, o.Query, o.Update)
		})
	}
	if shadowErr == nil && !shadow.Independent {
		unsound = true
	}
	if witness >= 0 {
		unsound = true
	}
	return unsound, witness, shadow, shadowErr
}

// audit re-derives one sampled Independent verdict and, on
// disagreement, quarantines the fingerprint and records the incident.
func (a *Auditor) audit(o Observation) {
	unsound, witness, shadow, shadowErr := a.verdictOf(o)
	fp := o.D.Fingerprint()

	a.mu.Lock()
	a.st.Audited++
	if witness >= 0 {
		a.st.OracleWitness++
	}
	switch {
	case unsound:
		a.st.Disagreements++
	case shadowErr != nil:
		a.st.Inconclusive++
	default:
		a.st.Agreements++
	}
	a.mu.Unlock()

	if !unsound {
		return
	}
	if purge := a.reg.Quarantine(fp); purge {
		// First engagement: the likeliest benign cause is a corrupted
		// compiled artifact — purge it so the next request recompiles
		// from source before the quarantine becomes sticky. Prepared
		// plans were inferred under the suspect artifact, so they go
		// with it: after recovery the first request per pair re-infers
		// cold from the fresh compilation.
		dtd.PurgeCompiled(fp)
		a.plans().PurgeSchema(fp)
	}
	a.record("audit-disagreement", o, shadow, shadowErr, witness)
}

// retrial is the half-open recovery probe: the pair is re-analyzed on
// the fast path (quarantine bypassed — the served verdict stays
// conservative; only this off-path copy runs the suspect engines) and
// re-audited. Clean retrials accumulate toward recovery, a dirty one
// re-trips the quarantine with doubled backoff.
func (a *Auditor) retrial(o Observation) {
	fp := o.D.Fingerprint()
	bypass := quarantine.NewRegistry(quarantine.Config{})
	res, err := core.NewAnalyzer(o.D).AnalyzeContext(
		// Retrials run off the request path on the auditor's base
		// context, so Shutdown can hard-cancel a wedged one. The plan
		// cache is bypassed with a throwaway: a retrial must actually
		// re-run the suspect engines, not be answered by a verdict
		// cached before the quarantine tripped.
		a.base, o.Query, o.Update, core.MethodChains,
		core.Options{Limits: a.cfg.Budget, Quarantine: bypass, Plans: plan.NewCache(1)})
	if err != nil || res.Degraded {
		a.reg.RecordProbe(fp, quarantine.ProbeInconclusive)
		return
	}
	if !res.Independent {
		// Conservative on the fast path: nothing to refute.
		a.markProbe(fp, true)
		return
	}
	unsound, witness, shadow, shadowErr := a.verdictOf(o)
	if shadowErr != nil && witness < 0 {
		a.reg.RecordProbe(fp, quarantine.ProbeInconclusive)
		return
	}
	if unsound {
		a.markProbe(fp, false)
		a.record("probe-dirty", o, shadow, shadowErr, witness)
		return
	}
	a.markProbe(fp, true)
}

// plans resolves the prepared-plan cache containment purges.
func (a *Auditor) plans() *plan.Cache {
	if a.cfg.Plans != nil {
		return a.cfg.Plans
	}
	return plan.Shared()
}

func (a *Auditor) markProbe(fp string, clean bool) {
	a.mu.Lock()
	if clean {
		a.st.ProbesClean++
	} else {
		a.st.ProbesDirty++
	}
	a.mu.Unlock()
	if clean {
		a.reg.RecordProbe(fp, quarantine.ProbeClean)
	} else {
		a.reg.RecordProbe(fp, quarantine.ProbeDirty)
	}
}

// record builds the structured incident, appends it to the ring and
// spools it.
func (a *Auditor) record(kind string, o Observation, shadow refcdag.Verdict, shadowErr error, witness int) {
	in := Incident{
		Kind:            kind,
		Fingerprint:     o.D.Fingerprint(),
		QueryText:       o.QueryText,
		UpdateText:      o.UpdateText,
		FastIndependent: o.Result.Independent || kind == "probe-dirty",
		OracleWitness:   witness,
		Method:          o.Result.Method.String(),
		FaultSchedule:   o.FaultSchedule,
	}
	if shadowErr != nil {
		in.ShadowErr = shadowErr.Error()
	} else {
		in.ShadowIndependent = shadow.Independent
		in.ShadowReasons = shadow.Reasons
	}
	for _, m := range o.Result.FallbackChain {
		in.FallbackChain = append(in.FallbackChain, m.String())
	}
	// Chain evidence is diagnostic garnish: derive it with the exact
	// engine when it is cheap enough, skip it when not.
	_ = guard.Do(func() {
		ret, used, _, upd, _, cerr := core.NewAnalyzer(o.D).Chains(o.Query, o.Update)
		if cerr == nil {
			in.QueryChains = append(ret, used...)
			in.UpdateChains = upd
		}
	})

	a.mu.Lock()
	in.Time = a.now()
	a.st.Incidents++
	a.ring.add(in)
	w := a.cfg.Spool
	a.mu.Unlock()
	if w != nil {
		if err := spool(w, in); err != nil {
			a.mu.Lock()
			a.st.SpoolErrors++
			a.mu.Unlock()
		}
	}
}

// docsFor returns (generating and caching on first use) the example
// documents for o's schema, used by oracle replay. Generation is
// deterministic per fingerprint and seed.
func (a *Auditor) docsFor(d *dtd.DTD) []xmltree.Tree {
	fp := d.Fingerprint()
	a.mu.Lock()
	if trees, ok := a.docs[fp]; ok {
		a.mu.Unlock()
		return trees
	}
	seed := a.cfg.Seed
	a.mu.Unlock()

	h := fnv.New64a()
	fmt.Fprint(h, fp)
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	var trees []xmltree.Tree
	for attempt := 0; attempt < a.cfg.OracleDocs*3 && len(trees) < a.cfg.OracleDocs; attempt++ {
		t, err := d.GenerateTree(rng, 0.4, 12)
		if err != nil {
			continue
		}
		trees = append(trees, t)
	}

	a.mu.Lock()
	if prior, ok := a.docs[fp]; ok {
		trees = prior
	} else {
		if len(a.docs) >= 64 {
			// Bounded cache: drop an arbitrary entry; regeneration is
			// deterministic, so eviction only costs time.
			for k := range a.docs {
				delete(a.docs, k)
				break
			}
		}
		a.docs[fp] = trees
	}
	a.mu.Unlock()
	return trees
}
