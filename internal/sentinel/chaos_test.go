package sentinel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/quarantine"
	"xqindep/internal/xquery"
)

// The chaos containment proof: under seeded fault schedules that
// include the unsoundness faults (corrupt-artifact, flip-verdict),
// with auditing at sample rate 1.0,
//
//  1. zero unsound Independent verdicts escape un-audited — every
//     serve of Independent=true for a ground-truth-dependent pair is
//     matched by a recorded disagreement,
//  2. every disagreement quarantines its fingerprint within the
//     request window (here: by the next request after Flush),
//  3. nothing ever upgrades a verdict — once quarantined, every
//     served verdict is conservative until clean retrials recover it,
//  4. no goroutine leaks.
//
// CHAOS_SEED and CHAOS_RUNS override the defaults for soak runs.

func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// chaosPair is one corpus entry with its ground-truth verdict,
// established once by the clean engines (differentially tested
// elsewhere) before any fault is armed.
type chaosPair struct {
	qs, us string
	q      xquery.Query
	u      xquery.Update
	indep  bool
}

func chaosCorpus(t *testing.T) []chaosPair {
	t.Helper()
	pairs := []chaosPair{
		{qs: "//title", us: "delete //price"},
		{qs: "//title", us: "delete //title"},
		{qs: "//author", us: "for $x in //book return insert <author>x</author> into $x"},
		{qs: "//price", us: "delete //author"},
		{qs: "/bib/book/title", us: "delete /bib/book/price"},
		{qs: "//book[price]/title", us: "delete //price"},
	}
	a := core.NewAnalyzer(bib)
	for i := range pairs {
		pairs[i].q = xquery.MustParseQuery(pairs[i].qs)
		pairs[i].u = xquery.MustParseUpdate(pairs[i].us)
		r, err := a.Analyze(pairs[i].q, pairs[i].u, core.MethodChains)
		if err != nil {
			t.Fatalf("ground truth for %s | %s: %v", pairs[i].qs, pairs[i].us, err)
		}
		pairs[i].indep = r.Independent
	}
	return pairs
}

func TestChaosAuditContainment(t *testing.T) {
	faultinject.Enable()
	runs := chaosEnvInt("CHAOS_RUNS", 200)
	seed := int64(chaosEnvInt("CHAOS_SEED", 1))
	if testing.Short() {
		runs = 40
	}
	pairs := chaosCorpus(t)
	g0 := runtime.NumGoroutine()

	for run := 0; run < runs; run++ {
		run := run
		t.Run(fmt.Sprintf("run%03d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			sched := faultinject.RandomAuditSchedule(rng, 1+rng.Intn(3))
			reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
			aud := New(Config{
				SampleRate: 1,
				Seed:       seed + int64(run),
				Quarantine: reg,
				QueueDepth: 64,
				Workers:    1 + rng.Intn(2),
				OracleDocs: 2,
			})
			defer aud.Close()

			analyzer := core.NewAnalyzer(bib)
			ctx := faultinject.With(context.Background(), sched)
			unsoundServed := 0
			for round := 0; round < 3; round++ {
				for _, p := range pairs {
					res, err := analyzer.AnalyzeContext(ctx, p.q, p.u, core.MethodChains, core.Options{Quarantine: reg})
					if err != nil {
						// Injected errors/panics must come back typed —
						// never a raw panic, never a wrong verdict.
						var ierr *guard.InternalError
						if !errors.As(err, &ierr) && !errors.Is(err, faultinject.ErrInjected) &&
							!errors.Is(err, guard.ErrBudgetExceeded) && !errors.Is(err, context.Canceled) {
							t.Fatalf("unexpected error class: %v", err)
						}
						continue
					}
					if res.Independent && !p.indep {
						unsoundServed++
					}
					if res.Independent && quarantine.IsQuarantined(res.Err) {
						t.Fatalf("quarantine path upgraded a verdict: %+v", res)
					}
					aud.Observe(Observation{
						D: bib, Query: p.q, Update: p.u,
						QueryText: p.qs, UpdateText: p.us,
						Result: res, FaultSchedule: sched.String(),
					})
				}
			}
			aud.Flush()
			st := aud.Stats()

			// Invariant 1: every unsound serve was audited and refuted.
			// (Sample rate 1.0 and Flush make this deterministic; the
			// shadow engine is immune to both fault kinds, so it
			// refutes every flip/corruption that changed a verdict.)
			if unsoundServed > 0 && st.Disagreements == 0 {
				t.Fatalf("%d unsound verdicts served, zero disagreements recorded (schedule %s, stats %+v)",
					unsoundServed, sched, st)
			}
			if st.Dropped != 0 {
				t.Fatalf("audits dropped in chaos run: %+v", st)
			}

			// Invariant 2: a disagreement quarantines the fingerprint by
			// the next request.
			if st.Disagreements > 0 {
				if got := reg.State(bib.Fingerprint()); got != "quarantined" {
					t.Fatalf("disagreements recorded but fingerprint %s", got)
				}
				res, err := analyzer.AnalyzeContext(context.Background(), pairs[0].q, pairs[0].u, core.MethodChains, core.Options{Quarantine: reg})
				if err != nil {
					t.Fatalf("post-quarantine request: %v", err)
				}
				// Invariant 3: only downgrades.
				if res.Independent || res.Method != core.MethodConservative {
					t.Fatalf("post-quarantine request not conservative: %+v", res)
				}
				if len(aud.Incidents()) == 0 {
					t.Fatal("disagreements recorded but incident ring empty")
				}
			}
		})
	}

	// Invariant 4: no goroutine leaks once every auditor is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= g0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: started with %d, now %d", g0, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosRecoveryAfterQuarantine drives the full lifecycle under a
// one-shot flip schedule: trip, half-open retrials, recovery, full
// service — mirroring the PR 2 breaker proof at the audit layer.
func TestChaosRecoveryAfterQuarantine(t *testing.T) {
	faultinject.Enable()
	pairs := chaosCorpus(t)
	seed := int64(chaosEnvInt("CHAOS_SEED", 1))
	for run := 0; run < 20; run++ {
		rng := rand.New(rand.NewSource(seed + 1000 + int64(run)))
		reg := quarantine.NewRegistry(quarantine.Config{Backoff: 10 * time.Second, RecoverAfter: 1 + rng.Intn(3)})
		now := time.Unix(0, 0)
		reg.SetNow(func() time.Time { return now })
		aud := New(Config{SampleRate: 1, Seed: seed + int64(run), Quarantine: reg, OracleDocs: 2})

		// Pick a dependent pair and flip its verdict once.
		var dep chaosPair
		for _, p := range pairs {
			if !p.indep {
				dep = p
				break
			}
		}
		sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
		analyzer := core.NewAnalyzer(bib)
		res, err := analyzer.AnalyzeContext(faultinject.With(context.Background(), sched), dep.q, dep.u, core.MethodChains, core.Options{Quarantine: reg})
		if err != nil || !res.Independent {
			t.Fatalf("run %d: flip not served: %+v, %v", run, res, err)
		}
		aud.Observe(Observation{D: bib, Query: dep.q, Update: dep.u, QueryText: dep.qs, UpdateText: dep.us, Result: res, FaultSchedule: sched.String()})
		aud.Flush()
		if got := reg.State(bib.Fingerprint()); got != "quarantined" {
			t.Fatalf("run %d: not quarantined: %s", run, got)
		}

		// Backoff elapses; clean retrials (no fault armed now) recover.
		now = now.Add(11 * time.Second)
		for i := 0; i < 16 && reg.State(bib.Fingerprint()) != "clean"; i++ {
			res, err := analyzer.AnalyzeContext(context.Background(), pairs[0].q, pairs[0].u, core.MethodChains, core.Options{Quarantine: reg})
			if err != nil {
				t.Fatalf("run %d: retrial request: %v", run, err)
			}
			if res.Independent {
				t.Fatalf("run %d: upgraded verdict before recovery: %+v", run, res)
			}
			aud.Observe(Observation{D: bib, Query: pairs[0].q, Update: pairs[0].u, QueryText: pairs[0].qs, UpdateText: pairs[0].us, Result: res})
			aud.Flush()
		}
		if got := reg.State(bib.Fingerprint()); got != "clean" {
			t.Fatalf("run %d: never recovered: %s (stats %+v / %+v)", run, got, aud.Stats(), reg.Stats())
		}
		res, err = analyzer.AnalyzeContext(context.Background(), pairs[0].q, pairs[0].u, core.MethodChains, core.Options{Quarantine: reg})
		if err != nil || !res.Independent {
			t.Fatalf("run %d: full service not restored: %+v, %v", run, res, err)
		}
		aud.Close()
	}
}
