package sentinel

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/faultinject"
	"xqindep/internal/quarantine"
	"xqindep/internal/xquery"
)

var bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- #PCDATA
price <- #PCDATA
`)

// analyzeAndObserve runs the pair under ctx and hands the result to
// the auditor the way a serving layer would.
func analyzeAndObserve(t *testing.T, a *Auditor, reg *quarantine.Registry, ctx context.Context, qs, us string, sched string) core.Result {
	t.Helper()
	q := xquery.MustParseQuery(qs)
	u := xquery.MustParseUpdate(us)
	res, err := core.NewAnalyzer(bib).AnalyzeContext(ctx, q, u, core.MethodChains, core.Options{Quarantine: reg})
	if err != nil {
		t.Fatalf("analyze(%s | %s): %v", qs, us, err)
	}
	a.Observe(Observation{
		D: bib, Query: q, Update: u,
		QueryText: qs, UpdateText: us,
		Result: res, FaultSchedule: sched,
	})
	return res
}

func TestAuditAgreesOnSoundVerdict(t *testing.T) {
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	a := New(Config{SampleRate: 1, Quarantine: reg, Seed: 1})
	defer a.Close()

	res := analyzeAndObserve(t, a, reg, context.Background(), "//title", "delete //price", "")
	if !res.Independent {
		t.Fatal("pair should be independent")
	}
	a.Flush()
	st := a.Stats()
	if st.Agreements != 1 || st.Disagreements != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if got := reg.State(bib.Fingerprint()); got != "clean" {
		t.Fatalf("sound verdict quarantined: %s", got)
	}
}

func TestAuditCatchesFlippedVerdict(t *testing.T) {
	faultinject.Enable()
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	var spooled bytes.Buffer
	a := New(Config{SampleRate: 1, Quarantine: reg, Seed: 2, Spool: &spooled})
	defer a.Close()

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	ctx := faultinject.With(context.Background(), sched)
	// Dependent pair; the flip serves the unsound Independent=true.
	res := analyzeAndObserve(t, a, reg, ctx, "//title", "delete //title", sched.String())
	if !res.Independent {
		t.Fatal("flip did not produce the unsound verdict this test audits")
	}
	a.Flush()

	st := a.Stats()
	if st.Disagreements != 1 {
		t.Fatalf("disagreement not recorded: %+v", st)
	}
	if got := reg.State(bib.Fingerprint()); got != "quarantined" {
		t.Fatalf("fingerprint not quarantined: %s", got)
	}
	incs := a.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents: %d", len(incs))
	}
	in := incs[0]
	if in.Kind != "audit-disagreement" || !in.FastIndependent || in.ShadowIndependent {
		t.Fatalf("incident: %+v", in)
	}
	if in.Fingerprint != bib.Fingerprint() || in.QueryText != "//title" {
		t.Fatalf("incident provenance: %+v", in)
	}
	if !strings.Contains(in.FaultSchedule, "flip-verdict") {
		t.Fatalf("fault schedule not threaded into incident: %q", in.FaultSchedule)
	}
	// The oracle replay should also have found a concrete witness for
	// this pair on the generated documents.
	if in.OracleWitness < 0 {
		t.Logf("no oracle witness (acceptable: witness depends on generated docs): %+v", in)
	}
	// Spooled as one JSON line that round-trips.
	var back Incident
	if err := json.Unmarshal(spooled.Bytes(), &back); err != nil {
		t.Fatalf("spool line does not parse: %v (%q)", err, spooled.String())
	}
	if back.Fingerprint != in.Fingerprint {
		t.Fatalf("spool round-trip mismatch: %+v", back)
	}

	// The next request for the fingerprint is downgraded.
	res = analyzeAndObserve(t, a, reg, context.Background(), "//title", "delete //price", "")
	if res.Independent || res.Method != core.MethodConservative {
		t.Fatalf("quarantined fingerprint served %+v", res)
	}
}

func TestProbeRecoveryLiftsQuarantine(t *testing.T) {
	faultinject.Enable()
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: 10 * time.Second, RecoverAfter: 2})
	now := time.Unix(0, 0)
	reg.SetNow(func() time.Time { return now })
	a := New(Config{SampleRate: 1, Quarantine: reg, Seed: 3})
	defer a.Close()

	// Trip the quarantine with one flipped verdict.
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	analyzeAndObserve(t, a, reg, faultinject.With(context.Background(), sched), "//title", "delete //title", sched.String())
	a.Flush()
	if got := reg.State(bib.Fingerprint()); got != "quarantined" {
		t.Fatalf("state: %s", got)
	}

	// While active, downgraded requests do not probe.
	analyzeAndObserve(t, a, reg, context.Background(), "//title", "delete //price", "")
	a.Flush()
	if st := a.Stats(); st.Probes != 0 {
		t.Fatalf("probe before backoff elapsed: %+v", st)
	}

	// Backoff elapses: each downgraded request claims the retrial slot;
	// two clean retrials lift the quarantine.
	now = now.Add(11 * time.Second)
	for i := 0; i < 2; i++ {
		res := analyzeAndObserve(t, a, reg, context.Background(), "//title", "delete //price", "")
		if res.Independent {
			t.Fatalf("half-open served an Independent verdict (upgrade): %+v", res)
		}
		a.Flush()
	}
	st := a.Stats()
	if st.Probes != 2 || st.ProbesClean != 2 {
		t.Fatalf("probe stats: %+v", st)
	}
	if got := reg.State(bib.Fingerprint()); got != "clean" {
		t.Fatalf("quarantine not lifted after clean retrials: %s", got)
	}
	// Full-ladder service restored.
	res := analyzeAndObserve(t, a, reg, context.Background(), "//title", "delete //price", "")
	if !res.Independent {
		t.Fatalf("service not restored: %+v", res)
	}
}

func TestDirtyProbeReTrips(t *testing.T) {
	faultinject.Enable()
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: 10 * time.Second, RecoverAfter: 1})
	now := time.Unix(0, 0)
	reg.SetNow(func() time.Time { return now })
	a := New(Config{SampleRate: 1, Quarantine: reg, Seed: 4})
	defer a.Close()

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	analyzeAndObserve(t, a, reg, faultinject.With(context.Background(), sched), "//title", "delete //title", sched.String())
	a.Flush()

	now = now.Add(11 * time.Second)
	// The probe re-runs the *observed* pair; this dependent pair now
	// re-derives dependent on the fast path too, so the probe is clean
	// — but a pair that still flips would be dirty. Simulate the dirty
	// case by observing a downgraded request whose original pair still
	// disagrees under a fresh flip on the probe's own re-analysis:
	// easiest deterministic route is a pair whose oracle replay refutes
	// independence while the fast path (clean) proves it — impossible
	// for a sound engine — so instead assert the machinery via
	// RecordProbe directly.
	if !reg.TryProbe(bib.Fingerprint()) {
		t.Fatal("no probe slot after backoff")
	}
	reg.RecordProbe(bib.Fingerprint(), quarantine.ProbeDirty)
	if got := reg.State(bib.Fingerprint()); got != "quarantined" {
		t.Fatalf("dirty probe did not re-trip: %s", got)
	}
}

func TestSamplingRespectsRate(t *testing.T) {
	reg := quarantine.NewRegistry(quarantine.Config{})
	a := New(Config{SampleRate: 0.2, Quarantine: reg, Seed: 5})
	defer a.Close()
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")
	res, err := core.NewAnalyzer(bib).Analyze(q, u, core.MethodChains)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		a.Observe(Observation{D: bib, Query: q, Update: u, Result: res})
	}
	a.Flush()
	st := a.Stats()
	if st.Observed != n {
		t.Fatalf("observed %d, want %d", st.Observed, n)
	}
	if st.Sampled < n/10 || st.Sampled > n/2 {
		t.Fatalf("sampled %d of %d at rate 0.2", st.Sampled, n)
	}
}

func TestObserveAfterCloseIsNoop(t *testing.T) {
	reg := quarantine.NewRegistry(quarantine.Config{})
	a := New(Config{SampleRate: 1, Quarantine: reg})
	a.Close()
	a.Close() // idempotent
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")
	a.Observe(Observation{D: bib, Query: q, Update: u, Result: core.Result{Independent: true}})
	if st := a.Stats(); st.Observed != 0 {
		t.Fatalf("observe after close counted: %+v", st)
	}
	var nilA *Auditor
	nilA.Observe(Observation{}) // nil-safe
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	reg := quarantine.NewRegistry(quarantine.Config{})
	// Workers=1 with a stalled queue is hard to arrange without hooks;
	// instead drive overflow deterministically with depth 1 and a
	// worker kept busy by many audits.
	a := New(Config{SampleRate: 1, Quarantine: reg, QueueDepth: 1, Workers: 1, Seed: 6})
	defer a.Close()
	q := xquery.MustParseQuery("//title")
	u := xquery.MustParseUpdate("delete //price")
	res, err := core.NewAnalyzer(bib).Analyze(q, u, core.MethodChains)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			a.Observe(Observation{D: bib, Query: q, Update: u, Result: res})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Observe blocked on a full queue")
	}
	a.Flush()
	st := a.Stats()
	if st.Sampled != 500 || st.Audited+st.Dropped != 500 {
		t.Fatalf("accounting: %+v", st)
	}
}
