package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

func collect(s Set) []int {
	var out []int
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

func TestAddHasRemove(t *testing.T) {
	var s Set
	if s.Has(0) || s.Any() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	if !s.Add(3) {
		t.Error("Add(3) not new")
	}
	if s.Add(3) {
		t.Error("Add(3) twice reported new")
	}
	if !s.Add(200) {
		t.Error("Add(200) not new")
	}
	if got := collect(s); !reflect.DeepEqual(got, []int{3, 200}) {
		t.Errorf("bits = %v", got)
	}
	s.Remove(3)
	s.Remove(9999) // out of range: no-op
	if got := collect(s); !reflect.DeepEqual(got, []int{200}) {
		t.Errorf("after remove = %v", got)
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestOrCountsNewBits(t *testing.T) {
	var a, b Set
	a.Add(1)
	a.Add(64)
	b.Add(1)
	b.Add(2)
	b.Add(130)
	if got := a.Or(b); got != 2 {
		t.Errorf("Or new bits = %d, want 2", got)
	}
	if got := collect(a); !reflect.DeepEqual(got, []int{1, 2, 64, 130}) {
		t.Errorf("union = %v", got)
	}
	if got := a.Or(b); got != 0 {
		t.Errorf("repeat Or new bits = %d, want 0", got)
	}
	// Or into a longer set from a shorter one.
	var c Set
	c.Add(500)
	if got := c.Or(a); got != 4 {
		t.Errorf("short<-long Or = %d", got)
	}
}

func TestAndIntersects(t *testing.T) {
	var a, b Set
	for _, i := range []int{0, 5, 70, 128} {
		a.Add(i)
	}
	for _, i := range []int{5, 128, 300} {
		b.Add(i)
	}
	if got := collect(a.And(b)); !reflect.DeepEqual(got, []int{5, 128}) {
		t.Errorf("And = %v", got)
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects false negative")
	}
	var c Set
	c.Add(9)
	if a.Intersects(c) {
		t.Error("Intersects false positive")
	}
	a.AndWith(b)
	if got := collect(a); !reflect.DeepEqual(got, []int{5, 128}) {
		t.Errorf("AndWith = %v", got)
	}
	// AndWith against a shorter operand zeroes the tail.
	var d Set
	d.Add(1)
	d.Add(400)
	var e Set
	e.Add(1)
	d.AndWith(e)
	if got := collect(d); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("AndWith tail = %v", got)
	}
}

func TestEqualLengthTolerant(t *testing.T) {
	var a, b Set
	a.Add(7)
	b.Add(7)
	b.Add(700)
	b.Remove(700) // leaves trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal must ignore trailing zero words")
	}
	b.Add(8)
	if a.Equal(b) {
		t.Error("Equal false positive")
	}
	if !Set(nil).Equal(Set(nil)) {
		t.Error("nil sets must be equal")
	}
}

func TestCloneIndependent(t *testing.T) {
	var a Set
	a.Add(42)
	c := a.Clone()
	c.Add(43)
	if a.Has(43) {
		t.Error("Clone aliases the original")
	}
	if Set(nil).Clone() != nil {
		t.Error("nil Clone must stay nil")
	}
}

func TestNewPresized(t *testing.T) {
	s := New(129)
	if len(s) != 3 {
		t.Errorf("New(129) words = %d", len(s))
	}
	if New(0) != nil || New(-1) != nil {
		t.Error("New(<=0) must be nil")
	}
}

func TestOrAnd(t *testing.T) {
	var a, b Set
	for _, i := range []int{0, 5, 70, 128} {
		a.Add(i)
	}
	for _, i := range []int{5, 128, 300} {
		b.Add(i)
	}
	var s Set
	s.Add(9)
	s.OrAnd(a, b)
	if got := collect(s); !reflect.DeepEqual(got, []int{5, 9, 128}) {
		t.Errorf("OrAnd = %v", got)
	}
	// Accumulation: a second OrAnd unions on top of the first.
	var c Set
	c.Add(0)
	s.OrAnd(a, c)
	if got := collect(s); !reflect.DeepEqual(got, []int{0, 5, 9, 128}) {
		t.Errorf("accumulated OrAnd = %v", got)
	}
	// Empty operands leave the target untouched (and never grow it).
	s.OrAnd(nil, b)
	s.OrAnd(a, nil)
	if got := collect(s); !reflect.DeepEqual(got, []int{0, 5, 9, 128}) {
		t.Errorf("OrAnd with empty operand = %v", got)
	}
}

func TestIntersectsAll(t *testing.T) {
	var a, b, c Set
	for _, i := range []int{3, 70, 200} {
		a.Add(i)
	}
	for _, i := range []int{70, 200} {
		b.Add(i)
	}
	c.Add(200)
	if !IntersectsAll(a, b, c) {
		t.Error("IntersectsAll false negative")
	}
	c.Remove(200)
	c.Add(70)
	if !IntersectsAll(a, b, c) {
		t.Error("IntersectsAll false negative at word 1")
	}
	c.Remove(70)
	c.Add(3) // in a only
	if IntersectsAll(a, b, c) {
		t.Error("IntersectsAll false positive: pairwise but not three-way")
	}
	if IntersectsAll(a, b, nil) || IntersectsAll(nil, nil, nil) {
		t.Error("IntersectsAll with an empty operand must be false")
	}
}

func TestOrAndRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var a, b, s Set
		ref := map[int]bool{}
		for i := 0; i < 40; i++ {
			a.Add(rng.Intn(256))
			b.Add(rng.Intn(256))
			n := rng.Intn(256)
			s.Add(n)
			ref[n] = true
		}
		want3 := false
		for i := 0; i < 256; i++ {
			if a.Has(i) && b.Has(i) {
				ref[i] = true
			}
			if a.Has(i) && b.Has(i) && s.Has(i) {
				want3 = true
			}
		}
		if IntersectsAll(a, b, s) != want3 {
			t.Fatalf("trial %d: IntersectsAll disagrees with reference", trial)
		}
		s.OrAnd(a, b)
		if s.Count() != len(ref) {
			t.Fatalf("trial %d: OrAnd count = %d, reference %d", trial, s.Count(), len(ref))
		}
		for i := range ref {
			if !s.Has(i) {
				t.Fatalf("trial %d: OrAnd missing bit %d", trial, i)
			}
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Set
	ref := map[int]bool{}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(512)
		switch rng.Intn(3) {
		case 0:
			if s.Add(n) == ref[n] {
				t.Fatalf("Add(%d) newness disagrees with reference", n)
			}
			ref[n] = true
		case 1:
			s.Remove(n)
			delete(ref, n)
		case 2:
			if s.Has(n) != ref[n] {
				t.Fatalf("Has(%d) disagrees with reference", n)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, reference %d", s.Count(), len(ref))
	}
}
