// Package bitset provides the dense fixed-universe bit sets backing
// the compiled-schema engines. A Set is a plain []uint64 word slice;
// the universe is the interned symbol space of one schema, so sets
// are tiny (a handful of words for realistic DTDs) and every engine
// operation — union, intersection, prefix-conflict probing — becomes
// a short word-wise loop instead of a nested map walk.
//
// Sets grow automatically on Add/Or and tolerate operands of
// different lengths (missing words read as zero), so callers never
// pre-size them.
package bitset

import "math/bits"

// Set is a growable bit set over a small integer universe.
type Set []uint64

// New returns a set pre-sized to hold bits [0, n).
func New(n int) Set {
	if n <= 0 {
		return nil
	}
	return make(Set, (n+63)/64)
}

// grow ensures the set can hold bit i.
func (s *Set) grow(i int) {
	w := i/64 + 1
	if len(*s) >= w {
		return
	}
	ns := make(Set, w)
	copy(ns, *s)
	*s = ns
}

// Add sets bit i and reports whether it was newly set. This is the
// hook the engines use to charge the guard budget only for genuinely
// new nodes/edges.
func (s *Set) Add(i int) bool {
	s.grow(i)
	w, m := i/64, uint64(1)<<(i%64)
	if (*s)[w]&m != 0 {
		return false
	}
	(*s)[w] |= m
	return true
}

// Remove clears bit i.
func (s Set) Remove(i int) {
	w := i / 64
	if w < len(s) {
		s[w] &^= uint64(1) << (i % 64)
	}
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(uint64(1)<<(i%64)) != 0
}

// Or unions t into s and returns the number of newly set bits.
func (s *Set) Or(t Set) int {
	if len(t) > len(*s) {
		s.grow(len(t)*64 - 1)
	}
	n := 0
	d := *s
	for w, tw := range t {
		if tw == 0 {
			continue
		}
		nw := d[w] | tw
		n += bits.OnesCount64(nw ^ d[w])
		d[w] = nw
	}
	return n
}

// AndWith intersects s with t in place.
func (s Set) AndWith(t Set) {
	for w := range s {
		if w < len(t) {
			s[w] &= t[w]
		} else {
			s[w] = 0
		}
	}
}

// And returns the intersection of s and t as a fresh set.
func (s Set) And(t Set) Set {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	out := make(Set, n)
	for w := 0; w < n; w++ {
		out[w] = s[w] & t[w]
	}
	return out
}

// OrAnd unions a∧b into s without materialising the intersection —
// the conflict engine's inner loop, which would otherwise allocate a
// temporary per symbol per depth.
func (s *Set) OrAnd(a, b Set) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return
	}
	if len(*s) < n {
		s.grow(n*64 - 1)
	}
	d := *s
	for w := 0; w < n; w++ {
		d[w] |= a[w] & b[w]
	}
}

// IntersectsAll reports whether some bit is set in all three operands
// (a ∧ b ∧ c ≠ ∅), without materialising any intersection.
func IntersectsAll(a, b, c Set) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(c) < n {
		n = len(c)
	}
	for w := 0; w < n; w++ {
		if a[w]&b[w]&c[w] != 0 {
			return true
		}
	}
	return false
}

// Intersects reports whether s and t share any bit.
func (s Set) Intersects(t Set) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for w := 0; w < n; w++ {
		if s[w]&t[w] != 0 {
			return true
		}
	}
	return false
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every set bit in ascending order.
func (s Set) ForEach(f func(i int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w*64 + b)
			word &= word - 1
		}
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and t contain exactly the same bits,
// regardless of trailing zero words.
func (s Set) Equal(t Set) bool {
	long, short := s, t
	if len(t) > len(s) {
		long, short = t, s
	}
	for w := range short {
		if long[w] != short[w] {
			return false
		}
	}
	for _, word := range long[len(short):] {
		if word != 0 {
			return false
		}
	}
	return true
}
