// Package typeanalysis reimplements the schema-based *type-set*
// independence analysis of Benedikt and Cheney ("Schema-based
// independence analysis for XML updates", VLDB 2009) — the state of
// the art the paper compares against, cited there as [6].
//
// Instead of chains, the analysis infers flat sets of node types:
//
//   - the query's accessed types — every type on a navigation path of
//     the query (ancestors included) plus the descendant closure of
//     returned types (the returned subtrees);
//   - the update's impacted types — the types of nodes whose label,
//     content or existence the update changes, plus the types of
//     inserted content (kept for soundness).
//
// The pair is deemed independent when the two sets are disjoint.
// Text nodes are typed by their parent element ("S@parent"): a bare
// text type would either overlap everything or, if excluded, miss
// queries that return text (the randomized differential test pins
// both failure modes).
//
// This reproduces the published behaviour on the paper's own
// examples: it cannot separate //a//c from delete //b//c (both sets
// contain c) nor //title from inserting authors into books (both
// contain book), while chains can (Section 1 of the reproduced
// paper).
package typeanalysis

import (
	"fmt"
	"sort"

	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// TypeSet is a set of schema types.
type TypeSet map[string]bool

func (t TypeSet) add(sym string) { t[sym] = true }
func (t TypeSet) addAll(other TypeSet) {
	for s := range other {
		t[s] = true
	}
}

// Sorted returns the members in sorted order.
func (t TypeSet) Sorted() []string {
	out := make([]string, 0, len(t))
	for s := range t {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (t TypeSet) String() string { return fmt.Sprintf("%v", t.Sorted()) }

// Analyzer performs type-set inference over one DTD.
type Analyzer struct {
	D *dtd.DTD
	// C is the compiled form of D (from the shared compilation cache),
	// used for its precomputed parent and sibling indexes; nil when
	// compilation failed, in which case the analyzer scans the DTD's
	// declarations directly.
	C *dtd.Compiled
	// B, when non-nil, checks the wall-clock deadline cooperatively in
	// the closure and inference loops.
	B *guard.Budget
}

// New builds an analyzer.
func New(d *dtd.DTD) *Analyzer {
	c, _ := dtd.Compile(d)
	return &Analyzer{D: d, C: c}
}

// NewBudget builds an analyzer charging b (nil means unlimited).
func NewBudget(d *dtd.DTD, b *guard.Budget) *Analyzer {
	a := New(d)
	a.B = b
	return a
}

// Env binds variables to the type sets their bindings may have.
type Env map[string]TypeSet

func (g Env) bind(v string, t TypeSet) Env {
	out := make(Env, len(g)+1)
	for k, val := range g {
		out[k] = val
	}
	out[v] = t
	return out
}

// QueryTypes is the inference result for a query: the types of
// returned nodes and the types accessed during navigation (the
// returned types are always accessed too). Constructs records whether
// the query can build new elements or strings — needed to judge
// iteration productivity.
type QueryTypes struct {
	Returned   TypeSet
	Accessed   TypeSet
	Constructs bool
}

// rootEnv is {x ↦ {sd}}.
func (a *Analyzer) rootEnv() Env {
	return Env{xquery.RootVar: TypeSet{a.D.Start: true}}
}

// Query infers the type sets of q.
func (a *Analyzer) Query(g Env, q xquery.Query) QueryTypes {
	a.B.Tick()
	switch n := q.(type) {
	case xquery.Empty:
		return QueryTypes{Returned: TypeSet{}, Accessed: TypeSet{}}
	case xquery.StringLit:
		return QueryTypes{Returned: TypeSet{}, Accessed: TypeSet{}, Constructs: true}
	case xquery.Var:
		ret := TypeSet{}
		ret.addAll(g[n.Name])
		return QueryTypes{Returned: ret, Accessed: TypeSet{}}
	case xquery.Step:
		// Forward steps contribute no accessed types of their own: the
		// returned types (plus closure at check time) and the binding
		// types recorded by the For rule cover every conflict, exactly
		// like the chain engine's (STEPF). Upward and horizontal steps
		// record their productive context types, like (STEPUH).
		ctx := g[n.Var]
		ret := a.stepTypes(ctx, n.Axis, n.Test)
		acc := TypeSet{}
		if !n.Axis.IsForward() && n.Axis != xquery.Descendant {
			for s := range ctx {
				if len(a.stepTypes(TypeSet{s: true}, n.Axis, n.Test)) > 0 {
					acc.add(s)
				}
			}
		}
		return QueryTypes{Returned: ret, Accessed: acc}
	case xquery.Sequence:
		l, r := a.Query(g, n.Left), a.Query(g, n.Right)
		return merge(l, r)
	case xquery.If:
		c0, c1, c2 := a.Query(g, n.Cond), a.Query(g, n.Then), a.Query(g, n.Else)
		out := merge(c1, c2)
		out.Accessed.addAll(c0.Accessed)
		out.Accessed.addAll(c0.Returned)
		return out
	case xquery.For:
		// Iterate per binding type, filtering unproductive iterations —
		// the type-level analogue of the chain analysis' (FOR) filter.
		// Without it every //-step would make the whole schema
		// "accessed". The binding query's own accessed types (condition
		// navigation, upward steps) always propagate.
		c1 := a.Query(g, n.In)
		out := QueryTypes{Returned: TypeSet{}, Accessed: TypeSet{}}
		out.Accessed.addAll(c1.Accessed)
		for _, tau := range c1.Returned.Sorted() {
			body := a.Query(g.bind(n.Var, TypeSet{tau: true}), n.Return)
			if len(body.Returned) == 0 && !body.Constructs {
				continue
			}
			out.Returned.addAll(body.Returned)
			out.Accessed.addAll(body.Accessed)
			out.Accessed.add(tau)
			out.Constructs = out.Constructs || body.Constructs
		}
		if c1.Constructs {
			// The binding may hold constructed items: the body still
			// runs for those, with no input type bound.
			body := a.Query(g.bind(n.Var, TypeSet{}), n.Return)
			out.Returned.addAll(body.Returned)
			out.Accessed.addAll(body.Accessed)
			out.Constructs = out.Constructs || body.Constructs
		}
		return out
	case xquery.Let:
		c1 := a.Query(g, n.Bind)
		body := a.Query(g.bind(n.Var, c1.Returned), n.Return)
		body.Accessed.addAll(c1.Accessed)
		body.Accessed.addAll(c1.Returned)
		body.Constructs = body.Constructs || c1.Constructs
		return body
	case xquery.Element:
		inner := a.Query(g, n.Content)
		// Constructed elements copy their content: the content types
		// and their subtrees are accessed.
		acc := TypeSet{}
		acc.addAll(inner.Accessed)
		acc.addAll(a.closure(inner.Returned))
		return QueryTypes{Returned: TypeSet{}, Accessed: acc, Constructs: true}
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("typeanalysis: unknown query node %T", q)})
	}
}

func merge(l, r QueryTypes) QueryTypes {
	out := QueryTypes{Returned: TypeSet{}, Accessed: TypeSet{}, Constructs: l.Constructs || r.Constructs}
	out.Returned.addAll(l.Returned)
	out.Returned.addAll(r.Returned)
	out.Accessed.addAll(l.Accessed)
	out.Accessed.addAll(r.Accessed)
	return out
}

// textType is the parent-qualified type of text content.
func textType(parent string) string { return "S@" + parent }

// isTextType reports whether s is a parent-qualified text type.
func isTextType(s string) bool { return len(s) > 2 && s[0] == 'S' && s[1] == '@' }

// closure adds the descendant closure of the given types, with text
// content typed by its parent.
func (a *Analyzer) closure(t TypeSet) TypeSet {
	out := TypeSet{}
	out.addAll(t)
	var stack []string
	for s := range t {
		if !isTextType(s) {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		a.B.Tick()
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range a.D.ChildTypes(x) {
			if c == dtd.StringType {
				out.add(textType(x))
				continue
			}
			if !out[c] {
				out.add(c)
				stack = append(stack, c)
			}
		}
	}
	return out
}

// descendants is the proper descendant closure: types reachable from
// the set via one or more ⇒d steps (a recursive seed type can be its
// own descendant), with text typed by its parent.
func (a *Analyzer) descendants(t TypeSet) TypeSet {
	out := TypeSet{}
	seen := TypeSet{}
	var stack []string
	for s := range t {
		if !isTextType(s) {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		a.B.Tick()
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range a.D.ChildTypes(x) {
			if c == dtd.StringType {
				out.add(textType(x))
				continue
			}
			out.add(c)
			if !seen[c] {
				seen.add(c)
				stack = append(stack, c)
			}
		}
	}
	return out
}

// stepTypes applies an axis + test on the type graph; without chains
// the context of a type is lost, which is the imprecision the
// chain-based technique removes.
func (a *Analyzer) stepTypes(ctx TypeSet, axis xquery.Axis, test xquery.NodeTest) TypeSet {
	res := TypeSet{}
	switch axis {
	case xquery.Self:
		res.addAll(ctx)
	case xquery.Child:
		for s := range ctx {
			if isTextType(s) {
				continue
			}
			for _, c := range a.D.ChildTypes(s) {
				if c == dtd.StringType {
					res.add(textType(s))
				} else {
					res.add(c)
				}
			}
		}
	case xquery.Descendant:
		res.addAll(a.descendants(ctx))
	case xquery.DescendantOrSelf:
		res.addAll(ctx)
		res.addAll(a.descendants(ctx))
	case xquery.Parent:
		res.addAll(a.parentTypes(ctx))
	case xquery.Ancestor, xquery.AncestorOrSelf:
		if axis == xquery.AncestorOrSelf {
			res.addAll(ctx)
		}
		frontier := ctx
		for len(frontier) > 0 {
			parents := a.parentTypes(frontier)
			next := TypeSet{}
			for p := range parents {
				if !res[p] {
					res.add(p)
					next.add(p)
				}
			}
			frontier = next
		}
	case xquery.PrecedingSibling, xquery.FollowingSibling:
		for s := range ctx {
			// Possible parents of s: its declared parents, or the
			// qualifying parent for text types.
			var parentsOf []string
			sym := s
			switch {
			case isTextType(s):
				parentsOf = []string{s[2:]}
				sym = dtd.StringType
			case a.C != nil:
				parentsOf = a.C.ParentNames(s)
			default:
				for _, t := range a.D.Types {
					for _, c := range a.D.ChildTypes(t) {
						if c == s {
							parentsOf = append(parentsOf, t)
							break
						}
					}
				}
			}
			for _, t := range parentsOf {
				var sibs []string
				if axis == xquery.PrecedingSibling {
					sibs = a.D.PrecedingSiblingTypes(t, sym)
				} else {
					sibs = a.D.FollowingSiblingTypes(t, sym)
				}
				for _, b := range sibs {
					if b == dtd.StringType {
						res.add(textType(t))
					} else {
						res.add(b)
					}
				}
			}
		}
	default:
		panic(&guard.InternalError{Value: "typeanalysis: unknown axis"})
	}
	// Node test.
	out := TypeSet{}
	for s := range res {
		switch test.Kind {
		case xquery.NodeAny:
			out.add(s)
		case xquery.TextTest:
			if isTextType(s) {
				out.add(s)
			}
		case xquery.TagTest:
			if !isTextType(s) && a.D.LabelOf(s) == test.Tag {
				out.add(s)
			}
		case xquery.WildcardTest:
			if !isTextType(s) {
				out.add(s)
			}
		}
	}
	return out
}

// UpdateTypes is the impacted-type set of an update.
type UpdateTypes struct {
	Impacted TypeSet
}

// Update infers the impacted types of u.
func (a *Analyzer) Update(g Env, u xquery.Update) UpdateTypes {
	a.B.Tick()
	switch n := u.(type) {
	case xquery.UEmpty:
		return UpdateTypes{Impacted: TypeSet{}}
	case xquery.USeq:
		l, r := a.Update(g, n.Left), a.Update(g, n.Right)
		out := TypeSet{}
		out.addAll(l.Impacted)
		out.addAll(r.Impacted)
		return UpdateTypes{Impacted: out}
	case xquery.UIf:
		l, r := a.Update(g, n.Then), a.Update(g, n.Else)
		out := TypeSet{}
		out.addAll(l.Impacted)
		out.addAll(r.Impacted)
		return UpdateTypes{Impacted: out}
	case xquery.UFor:
		c1 := a.Query(g, n.In)
		return a.Update(g.bind(n.Var, c1.Returned), n.Body)
	case xquery.ULet:
		c1 := a.Query(g, n.Bind)
		return a.Update(g.bind(n.Var, c1.Returned), n.Body)
	case xquery.Delete:
		// Deleted nodes and their subtrees vanish.
		r0 := a.Query(g, n.Target).Returned
		return UpdateTypes{Impacted: a.closure(r0)}
	case xquery.Rename:
		r0 := a.Query(g, n.Target).Returned
		out := TypeSet{}
		out.addAll(r0)
		out.add(n.As)
		return UpdateTypes{Impacted: out}
	case xquery.Insert:
		r0 := a.Query(g, n.Target).Returned
		out := TypeSet{}
		var under TypeSet
		if n.Pos.IsInto() {
			out.addAll(r0) // the node whose content changes
			under = r0
		} else {
			// before/after change the parent's content
			under = a.parentTypes(r0)
			out.addAll(under)
		}
		src, hasText := a.sourceTypes(g, n.Source)
		out.addAll(src)
		if hasText {
			for t := range under {
				out.add(textType(t))
			}
		}
		return UpdateTypes{Impacted: out}
	case xquery.Replace:
		r0 := a.Query(g, n.Target).Returned
		out := TypeSet{}
		out.addAll(a.closure(r0)) // removed subtree
		under := a.parentTypes(r0)
		out.addAll(under)
		src, hasText := a.sourceTypes(g, n.Source)
		out.addAll(src)
		if hasText {
			for t := range under {
				out.add(textType(t))
			}
		}
		return UpdateTypes{Impacted: out}
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("typeanalysis: unknown update node %T", u)})
	}
}

func (a *Analyzer) parentTypes(t TypeSet) TypeSet {
	out := TypeSet{}
	for s := range t {
		switch {
		case isTextType(s):
			out.add(s[2:])
		case a.C != nil:
			for _, p := range a.C.ParentNames(s) {
				out.add(p)
			}
		}
	}
	if a.C != nil {
		return out
	}
	for _, p := range a.D.Types {
		for _, c := range a.D.ChildTypes(p) {
			if t[c] {
				out.add(p)
			}
		}
	}
	return out
}

// sourceTypes collects the types of inserted content: constructed
// element tags (when declared in the schema) and the subtree closure
// of copied input nodes. Keeping these makes the baseline sound for
// queries that select the new nodes.
func (a *Analyzer) sourceTypes(g Env, src xquery.Query) (TypeSet, bool) {
	out := TypeSet{}
	st := a.Query(g, src)
	cl := a.closure(st.Returned)
	out.addAll(cl)
	hasText := false
	for s := range cl {
		if isTextType(s) {
			hasText = true
		}
	}
	var walk func(q xquery.Query)
	walk = func(q xquery.Query) {
		switch n := q.(type) {
		case xquery.StringLit:
			hasText = true
		case xquery.Element:
			out.add(n.Tag)
			walk(n.Content)
		case xquery.Sequence:
			walk(n.Left)
			walk(n.Right)
		case xquery.For:
			walk(n.Return)
		case xquery.Let:
			walk(n.Return)
		case xquery.If:
			walk(n.Then)
			walk(n.Else)
		}
	}
	walk(src)
	return out, hasText
}

// Verdict is the baseline's independence decision.
type Verdict struct {
	Independent bool
	Overlap     []string
	Query       QueryTypes
	Update      UpdateTypes
}

// CheckIndependence deems q and u independent when the accessed and
// impacted type sets do not overlap (text excluded).
func (a *Analyzer) CheckIndependence(q xquery.Query, u xquery.Update) Verdict {
	qt := a.Query(a.rootEnv(), q)
	// Returned subtrees belong to the result: their descendant closure
	// is accessed.
	qt.Accessed.addAll(a.closure(qt.Returned))
	ut := a.Update(a.rootEnv(), u)
	var overlap []string
	for s := range ut.Impacted {
		if qt.Accessed[s] {
			overlap = append(overlap, s)
		}
	}
	sort.Strings(overlap)
	return Verdict{
		Independent: len(overlap) == 0,
		Overlap:     overlap,
		Query:       qt,
		Update:      ut,
	}
}

// Independence is the package-level convenience.
func Independence(d *dtd.DTD, q xquery.Query, u xquery.Update) Verdict {
	return New(d).CheckIndependence(q, u)
}

// IndependenceBudget is Independence under a resource budget: the
// analyzer checks the deadline cooperatively, aborting via guard.Abort
// when exhausted (recover with guard.Recover or guard.Do).
func IndependenceBudget(d *dtd.DTD, q xquery.Query, u xquery.Update, b *guard.Budget) Verdict {
	b.Point("types.check")
	return NewBudget(d, b).CheckIndependence(q, u)
}
