package typeanalysis

import (
	"math/rand"
	"reflect"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

var (
	figure1 = dtd.MustParse(`
doc <- (a | b)*
a <- c
b <- c
c <- ()
`)
	bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)
)

// TestPaperReportedWeaknesses pins the two introduction examples the
// chain analysis wins on: the type baseline must NOT detect
// independence there (that is the published behaviour of [6]).
func TestPaperReportedWeaknesses(t *testing.T) {
	// q1 = //a//c vs u1 = delete //b//c: both sets contain c.
	v1 := Independence(figure1, xquery.MustParseQuery("//a//c"), xquery.MustParseUpdate("delete //b//c"))
	if v1.Independent {
		t.Errorf("type baseline unexpectedly separates q1/u1")
	}
	if !contains(v1.Overlap, "c") {
		t.Errorf("q1/u1 overlap = %v, want c", v1.Overlap)
	}
	// q2 = //title vs u2 = insert author into books: both contain book.
	v2 := Independence(bib, xquery.MustParseQuery("//title"),
		xquery.MustParseUpdate("for $x in //book return insert <author/> into $x"))
	if v2.Independent {
		t.Errorf("type baseline unexpectedly separates q2/u2")
	}
	if !contains(v2.Overlap, "book") {
		t.Errorf("q2/u2 overlap = %v, want book", v2.Overlap)
	}
}

func contains(ss []string, w string) bool {
	for _, s := range ss {
		if s == w {
			return true
		}
	}
	return false
}

// TestQueryTypeSetsPaperExample checks the accessed types of //title
// match the paper's account of [6]: book and title are traced (bib may
// or may not be, depending on filtering; the published set was
// {bib, book, title}).
func TestQueryTypeSetsPaperExample(t *testing.T) {
	a := New(bib)
	qt := a.Query(a.rootEnv(), xquery.MustParseQuery("//title"))
	if !reflect.DeepEqual(qt.Returned.Sorted(), []string{"title"}) {
		t.Errorf("returned = %v", qt.Returned)
	}
	// The full accessed set (as the independence check sees it) adds
	// the returned types' closure.
	qt.Accessed.addAll(a.closure(qt.Returned))
	for _, want := range []string{"book", "title"} {
		if !qt.Accessed[want] {
			t.Errorf("accessed missing %s: %v", want, qt.Accessed)
		}
	}
	if qt.Accessed["author"] || qt.Accessed["price"] {
		t.Errorf("accessed too large: %v", qt.Accessed)
	}
}

func TestUpdateImpactedTypes(t *testing.T) {
	a := New(bib)
	cases := []struct {
		u    string
		want []string
	}{
		{"delete //price", []string{"S@price", "price"}},
		{"for $x in //book return insert <author/> into $x", []string{"author", "book"}},
		{"for $x in //title return rename $x as price", []string{"price", "title"}},
	}
	for _, c := range cases {
		ut := a.Update(a.rootEnv(), xquery.MustParseUpdate(c.u))
		if got := ut.Impacted.Sorted(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("impacted(%q) = %v, want %v", c.u, got, c.want)
		}
	}
}

// TestBaselineDetectsEasyCases: the baseline is weaker than chains but
// not useless — structurally disjoint pairs are detected.
func TestBaselineDetectsEasyCases(t *testing.T) {
	cases := []struct {
		q, u string
		want bool
	}{
		{"//price", "delete //author/email", true},
		{"//title", "delete //price", true},
		{"//title", "delete //title", false},
		{"//title", "delete //book", false},
		// Chains separate this pair; the flat type sets cannot (author
		// is in both) — a documented imprecision of the baseline.
		{"//author/first", "for $x in //author return insert <email/> into $x", false},
	}
	for _, c := range cases {
		v := Independence(bib, xquery.MustParseQuery(c.q), xquery.MustParseUpdate(c.u))
		if v.Independent != c.want {
			t.Errorf("type baseline (%q,%q) = %v, want %v (overlap %v, accessed %v, impacted %v)",
				c.q, c.u, v.Independent, c.want, v.Overlap, v.Query.Accessed, v.Update.Impacted)
		}
	}
}

// TestBaselineSoundness: like the chain engines, the baseline must be
// sound — independence claims must survive differential execution.
func TestBaselineSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schemas := []*dtd.DTD{figure1, bib}
	queries := []string{"//a//c", "//c", "//title", "//price", "//author/email", "/doc", "//c/.."}
	updates := []string{
		"delete //b//c", "delete //c", "delete //price",
		"for $x in //book return insert <author/> into $x",
		"for $x in //c return rename $x as c",
		"for $b in //book return delete $b/author",
	}
	for _, d := range schemas {
		var trees []xmltree.Tree
		for i := 0; i < 10; i++ {
			tr, err := d.GenerateTree(rng, 0.6, 6)
			if err != nil {
				t.Fatal(err)
			}
			trees = append(trees, tr)
		}
		for _, qs := range queries {
			for _, us := range updates {
				q := xquery.MustParseQuery(qs)
				u := xquery.MustParseUpdate(us)
				if !Independence(d, q, u).Independent {
					continue
				}
				if i := eval.DependentOnAny(trees, q, u); i >= 0 {
					t.Errorf("UNSOUND type baseline for q=%s u=%s (doc %s)",
						qs, us, trees[i].Store.String(trees[i].Root))
				}
			}
		}
	}
}
