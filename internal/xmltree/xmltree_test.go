package xmltree

import (
	"strings"
	"testing"
)

// buildFigure1 constructs the paper's Figure 1 document:
// <doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>
func buildFigure1(t *testing.T) Tree {
	t.Helper()
	s := NewStore()
	doc := s.NewElement("doc")
	for _, tag := range []string{"a", "a", "b", "a"} {
		el := s.NewElement(tag)
		s.AppendChild(el, s.NewElement("c"))
		s.AppendChild(doc, el)
	}
	return NewTree(s, doc)
}

func TestBuildAndRender(t *testing.T) {
	tr := buildFigure1(t)
	want := "<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>"
	if got := tr.Store.String(tr.Root); got != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>",
		"<a/>",
		"<a>hello</a>",
		"<a><b>x</b><b>y</b><c/></a>",
		"<r><x>1</x><x>2</x><x>3</x></r>",
	}
	for _, doc := range cases {
		tr, err := ParseString(doc)
		if err != nil {
			t.Fatalf("ParseString(%q): %v", doc, err)
		}
		if got := tr.Store.String(tr.Root); got != doc {
			t.Errorf("round trip of %q = %q", doc, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"<a><b></a>",
		"<a/><b/>",
	}
	for _, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q): want error, got none", doc)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	tr, err := ParseString("<?xml version=\"1.0\"?><!-- c --><a >  <b x=\"1\">t</b> </a>")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Store.String(tr.Root), "<a><b>t</b></a>"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestTextEscaping(t *testing.T) {
	s := NewStore()
	a := s.NewElement("a")
	s.AppendChild(a, s.NewText("x<y&z"))
	if got, want := s.String(a), "<a>x&lt;y&amp;z</a>"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	tr, err := ParseString(s.String(a))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Store.Text(tr.Store.Child(tr.Root, 0)); got != "x<y&z" {
		t.Errorf("re-parsed text = %q", got)
	}
}

func TestAxes(t *testing.T) {
	tr := buildFigure1(t)
	s := tr.Store
	kids := s.Children(tr.Root)
	if len(kids) != 4 {
		t.Fatalf("root has %d children, want 4", len(kids))
	}
	if got := len(s.Descendants(tr.Root)); got != 8 {
		t.Errorf("descendants of root = %d, want 8", got)
	}
	c := s.Child(kids[0], 0)
	anc := s.Ancestors(c)
	if len(anc) != 2 || anc[0] != kids[0] || anc[1] != tr.Root {
		t.Errorf("Ancestors(c) = %v", anc)
	}
	fs := s.FollowingSiblings(kids[1])
	if len(fs) != 2 || fs[0] != kids[2] || fs[1] != kids[3] {
		t.Errorf("FollowingSiblings = %v", fs)
	}
	ps := s.PrecedingSiblings(kids[2])
	if len(ps) != 2 || ps[0] != kids[0] || ps[1] != kids[1] {
		t.Errorf("PrecedingSiblings = %v", ps)
	}
	if s.Root(c) != tr.Root {
		t.Errorf("Root(c) = %v, want %v", s.Root(c), tr.Root)
	}
	if got := len(s.Domain(tr.Root)); got != 9 {
		t.Errorf("|Domain| = %d, want 9", got)
	}
}

func TestMutations(t *testing.T) {
	tr := buildFigure1(t)
	s := tr.Store
	kids := s.Children(tr.Root)
	b := kids[2]

	s.Detach(b)
	if s.Parent(b) != NilLoc {
		t.Errorf("detached node still has parent")
	}
	if got := s.ChildCount(tr.Root); got != 3 {
		t.Errorf("after detach, root has %d children", got)
	}
	s.Detach(b) // idempotent
	if got := s.ChildCount(tr.Root); got != 3 {
		t.Errorf("double detach changed children: %d", got)
	}

	s.InsertChildren(tr.Root, 1, []Loc{b})
	if got := s.IndexInParent(b); got != 1 {
		t.Errorf("reinserted at %d, want 1", got)
	}
	want := "<doc><a><c/></a><b><c/></b><a><c/></a><a><c/></a></doc>"
	if got := s.String(tr.Root); got != want {
		t.Errorf("after reinsert: %q, want %q", got, want)
	}

	s.SetTag(b, "bb")
	if s.Tag(b) != "bb" {
		t.Errorf("SetTag did not apply")
	}
}

func TestInsertChildrenPanics(t *testing.T) {
	s := NewStore()
	a := s.NewElement("a")
	b := s.NewElement("b")
	s.AppendChild(a, b)
	mustPanic(t, "re-parenting", func() { s.AppendChild(a, b) })
	mustPanic(t, "bad index", func() { s.InsertChildren(a, 5, []Loc{s.NewElement("c")}) })
	txt := s.NewText("x")
	s.AppendChild(a, txt)
	mustPanic(t, "insert under text", func() { s.AppendChild(txt, s.NewElement("c")) })
	mustPanic(t, "Tag on text", func() { s.Tag(txt) })
	mustPanic(t, "Text on element", func() { s.Text(a) })
	mustPanic(t, "bad loc", func() { s.Children(Loc(99)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestValueEquivalence(t *testing.T) {
	t1 := MustParse("<a><b>x</b><c/></a>")
	t2 := MustParse("<a><b>x</b><c/></a>")
	t3 := MustParse("<a><c/><b>x</b></a>")
	t4 := MustParse("<a><b>y</b><c/></a>")
	if !ValueEquivalent(t1.Store, t1.Root, t2.Store, t2.Root) {
		t.Errorf("isomorphic trees not equivalent")
	}
	if ValueEquivalent(t1.Store, t1.Root, t3.Store, t3.Root) {
		t.Errorf("order-swapped trees deemed equivalent")
	}
	if ValueEquivalent(t1.Store, t1.Root, t4.Store, t4.Root) {
		t.Errorf("different text deemed equivalent")
	}
	if !SequencesEquivalent(t1.Store, []Loc{t1.Root}, t2.Store, []Loc{t2.Root}) {
		t.Errorf("sequences not equivalent")
	}
	if SequencesEquivalent(t1.Store, []Loc{t1.Root, t1.Root}, t2.Store, []Loc{t2.Root}) {
		t.Errorf("length mismatch not caught")
	}
}

func TestHashConsistentWithEquivalence(t *testing.T) {
	docs := []string{
		"<a><b>x</b><c/></a>",
		"<a><c/><b>x</b></a>",
		"<a><b>y</b><c/></a>",
		"<a/>",
		"<b/>",
		"<a>x</a>",
	}
	trees := make([]Tree, len(docs))
	for i, d := range docs {
		trees[i] = MustParse(d)
	}
	for i := range trees {
		for j := range trees {
			eq := ValueEquivalent(trees[i].Store, trees[i].Root, trees[j].Store, trees[j].Root)
			he := Hash(trees[i].Store, trees[i].Root) == Hash(trees[j].Store, trees[j].Root)
			if eq && !he {
				t.Errorf("equivalent trees %d,%d hash differently", i, j)
			}
			if !eq && he {
				t.Errorf("hash collision between %q and %q", docs[i], docs[j])
			}
		}
	}
}

func TestCopyAcrossStores(t *testing.T) {
	src := MustParse("<a><b>x</b><c><d/></c></a>")
	dst := NewStore()
	cp := dst.Copy(src.Store, src.Root)
	if dst.Parent(cp) != NilLoc {
		t.Errorf("copy is not detached")
	}
	if !ValueEquivalent(src.Store, src.Root, dst, cp) {
		t.Errorf("copy not value-equivalent to source")
	}
	// Mutating the copy must not affect the source.
	dst.SetTag(cp, "z")
	if src.Store.Tag(src.Root) != "a" {
		t.Errorf("copy aliases source")
	}
}

func TestDocOrder(t *testing.T) {
	tr := MustParse("<r><a><x/><y/></a><b/><c><z/></c></r>")
	s := tr.Store
	dom := s.Domain(tr.Root)
	// Domain is produced in document order already; verify comparator
	// agrees and sorting a shuffled copy restores it.
	for i := 0; i < len(dom); i++ {
		for j := 0; j < len(dom); j++ {
			got := s.CompareDocOrder(dom[i], dom[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("CompareDocOrder(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	shuffled := []Loc{dom[5], dom[0], dom[5], dom[3], dom[1], dom[2], dom[4], dom[6]}
	sorted := s.SortDocOrder(shuffled)
	if len(sorted) != 7 {
		t.Fatalf("SortDocOrder kept %d locations, want 7 (dedup)", len(sorted))
	}
	for i, l := range sorted {
		if l != dom[i] {
			t.Errorf("sorted[%d] = %v, want %v", i, l, dom[i])
		}
	}
}

func TestProjection(t *testing.T) {
	tr := MustParse("<r><a><x/><y/></a><b/><c><z/></c></r>")
	s := tr.Store
	// Keep only the y node; projection must add its ancestors.
	var y Loc
	s.Walk(tr.Root, func(l Loc) bool {
		if s.IsElement(l) && s.Tag(l) == "y" {
			y = l
		}
		return true
	})
	keep := s.UpwardClose(map[Loc]bool{y: true})
	pt, m := Project(tr, keep)
	if got, want := pt.Store.String(pt.Root), "<r><a><y/></a></r>"; got != want {
		t.Errorf("projection = %q, want %q", got, want)
	}
	if m[y] == NilLoc {
		t.Errorf("mapping lost the kept node")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := buildFigure1(t)
	n := 0
	tr.Store.Walk(tr.Root, func(Loc) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("walk visited %d nodes, want 3", n)
	}
}

func TestKindString(t *testing.T) {
	if ElementKind.String() != "element" || TextKind.String() != "text" {
		t.Errorf("Kind.String broken")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Errorf("unknown kind string")
	}
}
