package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into a fresh store and returns
// the resulting tree. Attributes, comments, processing instructions
// and whitespace-only text between elements are discarded: the
// paper's data model has element and text nodes only, and its
// benchmark rewriting removes attribute use.
func Parse(r io.Reader) (Tree, error) {
	dec := xml.NewDecoder(r)
	s := NewStore()
	var stack []Loc
	var root Loc
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Tree{}, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := s.NewElement(t.Name.Local)
			if len(stack) == 0 {
				if root != NilLoc {
					return Tree{}, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = el
			} else {
				s.AppendChild(stack[len(stack)-1], el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return Tree{}, fmt.Errorf("xmltree: parse: unbalanced end tag %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // ignore text outside the root
			}
			txt := string(t)
			if strings.TrimSpace(txt) == "" {
				continue
			}
			s.AppendChild(stack[len(stack)-1], s.NewText(txt))
		}
	}
	if root == NilLoc {
		return Tree{}, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return Tree{}, fmt.Errorf("xmltree: parse: unclosed elements")
	}
	return NewTree(s, root), nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string) (Tree, error) { return Parse(strings.NewReader(doc)) }

// MustParse is ParseString, panicking on error; intended for tests and
// examples with literal documents.
func MustParse(doc string) Tree {
	t, err := ParseString(doc)
	if err != nil {
		panic(err)
	}
	return t
}
