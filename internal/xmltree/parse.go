package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xqindep/internal/guard"
)

// limitedReader errors once more than max bytes have been read,
// instead of silently truncating like io.LimitReader.
type limitedReader struct {
	r    io.Reader
	left int
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.left <= 0 {
		return 0, fmt.Errorf("xmltree: input exceeds the size limit")
	}
	if len(p) > l.left {
		p = p[:l.left]
	}
	n, err := l.r.Read(p)
	l.left -= n
	return n, err
}

// Parse reads an XML document from r into a fresh store and returns
// the resulting tree. Attributes, comments, processing instructions
// and whitespace-only text between elements are discarded: the
// paper's data model has element and text nodes only, and its
// benchmark rewriting removes attribute use.
func Parse(r io.Reader) (Tree, error) {
	return ParseLimited(r, guard.DefaultLimits())
}

// ParseLimited is Parse under explicit resource limits: MaxParseInput
// bounds the raw input size, MaxParseDepth the element nesting depth
// and MaxNodes the total node count of the resulting tree. Zero limit
// fields take defaults.
func ParseLimited(r io.Reader, lim guard.Limits) (Tree, error) {
	lim = lim.OrDefaults()
	dec := xml.NewDecoder(&limitedReader{r: r, left: lim.MaxParseInput})
	s := NewStore()
	var stack []Loc
	var root Loc
	nodes := 0
	addNode := func() error {
		nodes++
		if nodes > lim.MaxNodes {
			return fmt.Errorf("xmltree: parse: document has more than %d nodes", lim.MaxNodes)
		}
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Tree{}, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= lim.MaxParseDepth {
				return Tree{}, fmt.Errorf("xmltree: parse: element nesting exceeds the limit of %d", lim.MaxParseDepth)
			}
			if err := addNode(); err != nil {
				return Tree{}, err
			}
			el := s.NewElement(t.Name.Local)
			if len(stack) == 0 {
				if root != NilLoc {
					return Tree{}, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = el
			} else {
				s.AppendChild(stack[len(stack)-1], el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return Tree{}, fmt.Errorf("xmltree: parse: unbalanced end tag %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // ignore text outside the root
			}
			txt := string(t)
			if strings.TrimSpace(txt) == "" {
				continue
			}
			if err := addNode(); err != nil {
				return Tree{}, err
			}
			s.AppendChild(stack[len(stack)-1], s.NewText(txt))
		}
	}
	if root == NilLoc {
		return Tree{}, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return Tree{}, fmt.Errorf("xmltree: parse: unclosed elements")
	}
	return NewTree(s, root), nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc string) (Tree, error) { return Parse(strings.NewReader(doc)) }

// MustParse is ParseString, panicking on error; intended for tests and
// examples with literal documents.
func MustParse(doc string) Tree {
	t, err := ParseString(doc)
	if err != nil {
		panic(err)
	}
	return t
}
