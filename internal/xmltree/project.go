package xmltree

// UpwardClose extends the location set keep so that it is upward
// closed w.r.t. the parent-child relation of s: whenever a location is
// kept, so are all its ancestors. The receiver set is modified in
// place and returned.
func (s *Store) UpwardClose(keep map[Loc]bool) map[Loc]bool {
	for l, ok := range keep {
		if !ok {
			continue
		}
		for p := s.at(l).parent; p != NilLoc && !keep[p]; p = s.at(p).parent {
			keep[p] = true
		}
	}
	return keep
}

// Project builds the projection t|L of the tree t: a fresh tree
// containing copies of exactly the locations of t present in keep
// (which must be upward closed and contain the root), with sibling
// order preserved. It returns the projected tree and a mapping from
// original locations to projected ones.
func Project(t Tree, keep map[Loc]bool) (Tree, map[Loc]Loc) {
	s := t.Store
	out := NewStore()
	m := make(map[Loc]Loc, len(keep))
	var build func(Loc) Loc
	build = func(l Loc) Loc {
		var nl Loc
		if s.IsText(l) {
			nl = out.NewText(s.Text(l))
		} else {
			nl = out.NewElement(s.Tag(l))
			for _, c := range s.at(l).children {
				if keep[c] {
					cc := build(c)
					out.at(cc).parent = nl
					n := out.at(nl)
					n.children = append(n.children, cc)
				}
			}
		}
		m[l] = nl
		return nl
	}
	if !keep[t.Root] {
		keep[t.Root] = true
	}
	root := build(t.Root)
	return NewTree(out, root), m
}
