// Package xmltree implements the XML data model of the paper
// (Bidoit-Tollu, Colazzo, Ulliana, "Type-Based Detection of XML
// Query-Update Independence", VLDB 2012, Section 2).
//
// An instance of the data model is a store σ: an environment
// associating each node location l with either an element node a[L]
// (a tag plus an ordered list of children locations) or a text node s.
// A tree is a pair (σ, l) of a store and a root location.
//
// Stores are mutable: the update semantics in package eval applies
// update pending lists by rewriting children lists in place. Locations
// are stable — a detached node keeps its location, it just becomes
// unreachable from the root (the paper's σu@lt discards disconnected
// locations only logically).
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"xqindep/internal/guard"
)

// Loc identifies a node in a Store. The zero value NilLoc is not a
// valid location.
type Loc int

// NilLoc is the absent location.
const NilLoc Loc = 0

// Kind discriminates element and text nodes.
type Kind int

const (
	// ElementKind marks element nodes a[L].
	ElementKind Kind = iota
	// TextKind marks text nodes s.
	TextKind
)

func (k Kind) String() string {
	switch k {
	case ElementKind:
		return "element"
	case TextKind:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// node is the store-internal representation of σ(l).
type node struct {
	kind     Kind
	tag      string // element tag, element nodes only
	text     string // text value, text nodes only
	parent   Loc    // NilLoc when detached or a root
	children []Loc  // element nodes only, ordered
}

// Store is the environment σ. The zero value is not usable; call
// NewStore.
type Store struct {
	nodes []node // index = int(Loc) - 1
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Size reports the number of locations ever allocated in the store,
// reachable or not.
func (s *Store) Size() int { return len(s.nodes) }

// Contains reports whether l is a location allocated in s.
func (s *Store) Contains(l Loc) bool { return l > 0 && int(l) <= len(s.nodes) }

func (s *Store) at(l Loc) *node {
	if !s.Contains(l) {
		panic(&guard.InternalError{Value: fmt.Sprintf("xmltree: location %d not in store", l)})
	}
	return &s.nodes[int(l)-1]
}

// NewElement allocates a fresh element node with the given tag and no
// children, and returns its location.
func (s *Store) NewElement(tag string) Loc {
	s.nodes = append(s.nodes, node{kind: ElementKind, tag: tag})
	return Loc(len(s.nodes))
}

// NewText allocates a fresh text node holding value and returns its
// location.
func (s *Store) NewText(value string) Loc {
	s.nodes = append(s.nodes, node{kind: TextKind, text: value})
	return Loc(len(s.nodes))
}

// KindOf returns the kind of the node at l.
func (s *Store) KindOf(l Loc) Kind { return s.at(l).kind }

// IsElement reports whether l is an element node.
func (s *Store) IsElement(l Loc) bool { return s.at(l).kind == ElementKind }

// IsText reports whether l is a text node.
func (s *Store) IsText(l Loc) bool { return s.at(l).kind == TextKind }

// Tag returns the element tag of l; it panics when l is a text node.
func (s *Store) Tag(l Loc) string {
	n := s.at(l)
	if n.kind != ElementKind {
		panic(&guard.InternalError{Value: "xmltree: Tag on text node"})
	}
	return n.tag
}

// Text returns the text value of l; it panics when l is an element.
func (s *Store) Text(l Loc) string {
	n := s.at(l)
	if n.kind != TextKind {
		panic(&guard.InternalError{Value: "xmltree: Text on element node"})
	}
	return n.text
}

// Parent returns the parent location of l, or NilLoc when l has none.
func (s *Store) Parent(l Loc) Loc { return s.at(l).parent }

// Children returns the ordered children of l. Text nodes have none.
// The returned slice is a copy and may be retained by the caller.
func (s *Store) Children(l Loc) []Loc {
	n := s.at(l)
	if len(n.children) == 0 {
		return nil
	}
	out := make([]Loc, len(n.children))
	copy(out, n.children)
	return out
}

// ChildCount returns the number of children of l.
func (s *Store) ChildCount(l Loc) int { return len(s.at(l).children) }

// Child returns the i-th child of l.
func (s *Store) Child(l Loc, i int) Loc { return s.at(l).children[i] }

// SetTag renames the element at l to tag (the ren(l,a) elementary
// update command).
func (s *Store) SetTag(l Loc, tag string) {
	n := s.at(l)
	if n.kind != ElementKind {
		panic(&guard.InternalError{Value: "xmltree: SetTag on text node"})
	}
	n.tag = tag
}

// SetText replaces the value of the text node at l.
func (s *Store) SetText(l Loc, value string) {
	n := s.at(l)
	if n.kind != TextKind {
		panic(&guard.InternalError{Value: "xmltree: SetText on element node"})
	}
	n.text = value
}

// AppendChild appends child to parent's children list. The child must
// currently be detached (no parent); it panics otherwise, since a
// location has at most one parent in a store.
func (s *Store) AppendChild(parent, child Loc) {
	s.InsertChildren(parent, s.ChildCount(parent), []Loc{child})
}

// InsertChildren inserts the detached locations kids into parent's
// children list so that the first of them ends up at index i.
func (s *Store) InsertChildren(parent Loc, i int, kids []Loc) {
	p := s.at(parent)
	if p.kind != ElementKind {
		panic(&guard.InternalError{Value: "xmltree: insert under text node"})
	}
	if i < 0 || i > len(p.children) {
		panic(&guard.InternalError{Value: fmt.Sprintf("xmltree: insert index %d out of range [0,%d]", i, len(p.children))})
	}
	for _, k := range kids {
		kn := s.at(k)
		if kn.parent != NilLoc {
			panic(&guard.InternalError{Value: "xmltree: inserting a node that already has a parent"})
		}
		kn.parent = parent
	}
	p.children = append(p.children[:i:i], append(append([]Loc{}, kids...), p.children[i:]...)...)
}

// Detach removes l from its parent's children list and clears its
// parent pointer. Detaching an already detached node is a no-op.
func (s *Store) Detach(l Loc) {
	n := s.at(l)
	if n.parent == NilLoc {
		return
	}
	p := s.at(n.parent)
	for i, c := range p.children {
		if c == l {
			p.children = append(p.children[:i:i], p.children[i+1:]...)
			break
		}
	}
	n.parent = NilLoc
}

// IndexInParent returns the position of l in its parent's children
// list, or -1 when l is detached.
func (s *Store) IndexInParent(l Loc) int {
	n := s.at(l)
	if n.parent == NilLoc {
		return -1
	}
	for i, c := range s.at(n.parent).children {
		if c == l {
			return i
		}
	}
	return -1
}

// Root walks parent pointers from l up to the connected root.
func (s *Store) Root(l Loc) Loc {
	for {
		p := s.at(l).parent
		if p == NilLoc {
			return l
		}
		l = p
	}
}

// Tree is the pair t = (σ, lt) of a store and its root location.
type Tree struct {
	Store *Store
	Root  Loc
}

// NewTree wraps a store and root location.
func NewTree(s *Store, root Loc) Tree { return Tree{Store: s, Root: root} }

// Domain returns the set of locations connected to l (the domain of
// the subtree σ@l), in document order.
func (s *Store) Domain(l Loc) []Loc {
	var out []Loc
	s.Walk(l, func(x Loc) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Walk visits l and all its descendants in document order, calling f
// on each; when f returns false the walk stops.
func (s *Store) Walk(l Loc, f func(Loc) bool) {
	stack := []Loc{l}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f(x) {
			return
		}
		kids := s.at(x).children
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
}

// Descendants returns all proper descendants of l in document order.
func (s *Store) Descendants(l Loc) []Loc {
	var out []Loc
	for _, c := range s.at(l).children {
		s.Walk(c, func(x Loc) bool {
			out = append(out, x)
			return true
		})
	}
	return out
}

// Ancestors returns the proper ancestors of l, nearest first.
func (s *Store) Ancestors(l Loc) []Loc {
	var out []Loc
	for p := s.at(l).parent; p != NilLoc; p = s.at(p).parent {
		out = append(out, p)
	}
	return out
}

// FollowingSiblings returns the siblings of l after it, in order.
func (s *Store) FollowingSiblings(l Loc) []Loc {
	n := s.at(l)
	if n.parent == NilLoc {
		return nil
	}
	sib := s.at(n.parent).children
	for i, c := range sib {
		if c == l {
			out := make([]Loc, len(sib)-i-1)
			copy(out, sib[i+1:])
			return out
		}
	}
	return nil
}

// PrecedingSiblings returns the siblings of l before it, in document
// order.
func (s *Store) PrecedingSiblings(l Loc) []Loc {
	n := s.at(l)
	if n.parent == NilLoc {
		return nil
	}
	sib := s.at(n.parent).children
	for i, c := range sib {
		if c == l {
			out := make([]Loc, i)
			copy(out, sib[:i])
			return out
		}
	}
	return nil
}

// pathFromRoot returns the child-index path from the connected root
// down to l; used for document-order comparison.
func (s *Store) pathFromRoot(l Loc) []int {
	var rev []int
	for {
		p := s.at(l).parent
		if p == NilLoc {
			break
		}
		rev = append(rev, s.IndexInParent(l))
		l = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// CompareDocOrder orders two locations of the same tree: -1 when a
// precedes b in document order, +1 when it follows, 0 when a == b.
// An ancestor precedes its descendants.
func (s *Store) CompareDocOrder(a, b Loc) int {
	if a == b {
		return 0
	}
	pa, pb := s.pathFromRoot(a), s.pathFromRoot(b)
	for i := 0; i < len(pa) && i < len(pb); i++ {
		switch {
		case pa[i] < pb[i]:
			return -1
		case pa[i] > pb[i]:
			return 1
		}
	}
	if len(pa) < len(pb) {
		return -1
	}
	return 1
}

// SortDocOrder sorts locs in document order in place and removes
// duplicates, returning the (possibly shorter) slice.
func (s *Store) SortDocOrder(locs []Loc) []Loc {
	if len(locs) < 2 {
		return locs
	}
	sort.Slice(locs, func(i, j int) bool { return s.CompareDocOrder(locs[i], locs[j]) < 0 })
	out := locs[:1]
	for _, l := range locs[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// Copy deep-copies the subtree rooted at src (which may live in a
// different store) into dst and returns the fresh, detached root
// location. This is the copy performed by XQuery element construction
// and by insert/replace sources.
func (dst *Store) Copy(src *Store, l Loc) Loc {
	n := src.at(l)
	if n.kind == TextKind {
		return dst.NewText(n.text)
	}
	el := dst.NewElement(n.tag)
	for _, c := range n.children {
		cc := dst.Copy(src, c)
		dst.at(cc).parent = el
		dn := dst.at(el)
		dn.children = append(dn.children, cc)
	}
	return el
}

// String renders the subtree at l as XML text (elements and text
// nodes only, no escaping of markup beyond the five predefined
// entities).
func (s *Store) String(l Loc) string {
	var b strings.Builder
	s.write(&b, l)
	return b.String()
}

func (s *Store) write(b *strings.Builder, l Loc) {
	n := s.at(l)
	if n.kind == TextKind {
		b.WriteString(escapeText(n.text))
		return
	}
	b.WriteByte('<')
	b.WriteString(n.tag)
	if len(n.children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range n.children {
		s.write(b, c)
	}
	b.WriteString("</")
	b.WriteString(n.tag)
	b.WriteByte('>')
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
