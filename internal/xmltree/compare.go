package xmltree

// ValueEquivalent reports whether the subtrees σ@a and σ'@b are
// isomorphic: the paper's value equivalence (σ,a) ≅ (σ',b). Two nodes
// are value-equivalent when they have the same kind, the same tag or
// text value, and pairwise value-equivalent children in order;
// locations themselves are ignored.
func ValueEquivalent(s *Store, a Loc, t *Store, b Loc) bool {
	na, nb := s.at(a), t.at(b)
	if na.kind != nb.kind {
		return false
	}
	if na.kind == TextKind {
		return na.text == nb.text
	}
	if na.tag != nb.tag || len(na.children) != len(nb.children) {
		return false
	}
	for i := range na.children {
		if !ValueEquivalent(s, na.children[i], t, nb.children[i]) {
			return false
		}
	}
	return true
}

// SequencesEquivalent reports value equivalence of two location
// sequences, (σ,L) ≅ (σ',L'): equal lengths and pointwise
// value-equivalent roots.
func SequencesEquivalent(s *Store, ls []Loc, t *Store, ms []Loc) bool {
	if len(ls) != len(ms) {
		return false
	}
	for i := range ls {
		if !ValueEquivalent(s, ls[i], t, ms[i]) {
			return false
		}
	}
	return true
}

// Hash returns a structural hash of the subtree at l, consistent with
// ValueEquivalent: equivalent subtrees hash equal. It is used to
// compare large query results cheaply in benchmarks.
func Hash(s *Store, l Loc) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(bs string) {
		for i := 0; i < len(bs); i++ {
			h ^= uint64(bs[i])
			h *= prime64
		}
	}
	var walk func(Loc)
	walk = func(x Loc) {
		n := s.at(x)
		if n.kind == TextKind {
			mix("t:")
			mix(n.text)
			mix(";")
			return
		}
		mix("e:")
		mix(n.tag)
		mix("(")
		for _, c := range n.children {
			walk(c)
		}
		mix(")")
	}
	walk(l)
	return h
}
