package xmltree

import (
	"strings"
	"testing"

	"xqindep/internal/guard"
)

func nestedDoc(n int) string {
	return strings.Repeat("<a>", n) + strings.Repeat("</a>", n)
}

func wideDoc(n int) string {
	var b strings.Builder
	b.WriteString("<doc>")
	for i := 0; i < n; i++ {
		b.WriteString("<a/>")
	}
	b.WriteString("</doc>")
	return b.String()
}

func TestParseLimits(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		lim  guard.Limits
		ok   bool
	}{
		{"normal document", "<doc><a>x</a></doc>", guard.Limits{MaxParseDepth: 16, MaxNodes: 64}, true},
		{"depth at boundary", nestedDoc(16), guard.Limits{MaxParseDepth: 16}, true},
		{"depth one past boundary", nestedDoc(17), guard.Limits{MaxParseDepth: 16}, false},
		{"default depth rejects pathological nesting", nestedDoc(100000), guard.Limits{}, false},
		{"node count at boundary", wideDoc(63), guard.Limits{MaxNodes: 64}, true},
		{"node count past boundary", wideDoc(64), guard.Limits{MaxNodes: 64}, false},
		{"input under size limit", "<doc/>", guard.Limits{MaxParseInput: 64}, true},
		{"input over size limit", "<doc>" + strings.Repeat("x", 100) + "</doc>", guard.Limits{MaxParseInput: 64}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseLimited(strings.NewReader(c.doc), c.lim)
			if c.ok && err != nil {
				t.Errorf("ParseLimited = %v, want success", err)
			}
			if !c.ok && err == nil {
				t.Errorf("ParseLimited succeeded, want limit error")
			}
		})
	}
}
