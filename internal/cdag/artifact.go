package cdag

import (
	"encoding/binary"
	"hash"
	"hash/fnv"

	"xqindep/internal/bitset"
	"xqindep/internal/dtd"
)

// This file is the artifact-integrity seam between the CDAG engine
// and the prepared-analysis plan cache (internal/plan): a cached
// CompiledExpr embeds a fully evaluated Verdict, and the cache's
// verify-on-hit protocol needs a deterministic content digest of that
// verdict's chain DAGs to detect a resident mutated after
// construction. CorruptedCopy is the matching chaos support, the
// Verdict analogue of dtd.Compiled.WithCorruption.

func digestInt(h hash.Hash64, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func digestBits(h hash.Hash64, s bitset.Set) {
	digestInt(h, len(s))
	var buf [8]byte
	for _, w := range s {
		binary.LittleEndian.PutUint64(buf[:], w)
		h.Write(buf[:])
	}
}

// digestSet hashes a chain set's rows in deterministic order: roots,
// adjacency rows by (depth, symbol), endpoint rows by depth. A nil
// set hashes as a distinct marker so presence is part of the digest.
func digestSet(h hash.Hash64, s *Set) {
	if s == nil {
		digestInt(h, -1)
		return
	}
	digestBits(h, s.roots)
	digestInt(h, len(s.out))
	for _, row := range s.out {
		digestInt(h, len(row))
		for _, bits := range row {
			digestBits(h, bits)
		}
	}
	digestInt(h, len(s.ends))
	for _, bits := range s.ends {
		digestBits(h, bits)
	}
}

func digestMarks(h hash.Hash64, m Marks) {
	digestInt(h, len(m))
	for _, bits := range m {
		digestBits(h, bits)
	}
}

// Digest returns a deterministic content hash of the verdict: the
// decision, the multiplicity, the conflict reasons, the engine
// context (k, depth bound, interned extra tags) and every chain-DAG
// row of the query and update sets. Equal verdicts digest equally
// across processes; any stray write through a shared row changes the
// digest. The plan cache folds it into the CompiledExpr checksum its
// verify-on-hit protocol re-derives.
func (v Verdict) Digest() uint64 {
	h := fnv.New64a()
	if v.Independent {
		digestInt(h, 1)
	} else {
		digestInt(h, 0)
	}
	digestInt(h, v.K)
	digestInt(h, len(v.Reasons))
	for _, r := range v.Reasons {
		digestInt(h, len(r))
		h.Write([]byte(r))
	}
	// Engine context: every set of one verdict shares one engine.
	var eng *Engine
	for _, s := range []*Set{v.Query.Ret, v.Query.Used, v.Query.Elem} {
		if s != nil {
			eng = s.eng
			break
		}
	}
	if eng == nil && v.Update != nil && v.Update.Full != nil {
		eng = v.Update.Full.eng
	}
	if eng != nil {
		digestInt(h, eng.K)
		digestInt(h, eng.MaxDepth)
		digestInt(h, eng.base)
		digestInt(h, len(eng.extraNames))
		for _, name := range eng.extraNames {
			digestInt(h, len(name))
			h.Write([]byte(name))
		}
	}
	digestSet(h, v.Query.Ret)
	digestSet(h, v.Query.Used)
	digestSet(h, v.Query.Elem)
	if v.Update == nil {
		digestInt(h, -1)
	} else {
		digestSet(h, v.Update.Full)
		digestMarks(h, v.Update.ChangeRegion)
	}
	return h.Sum64()
}

// CorruptedCopy returns a copy of the verdict with the decision
// flipped and one endpoint bit of a *cloned* return-chain row
// toggled — exactly the damage a stray write through a shared row
// would do, applied to a private copy so the original verdict (a
// cache resident) stays intact. It is chaos-test support for the
// corrupt-artifact fault kind at the plan layer: Digest (and the plan
// checksum built on it) changes, Verify on the corrupted plan fails,
// and any engine reading the flipped verdict produces exactly the
// unsoundness the sentinel audit layer must contain. Never use it
// outside tests and chaos harnesses.
func (v Verdict) CorruptedCopy(seed int64) Verdict {
	out := v
	//xqvet:ignore verdictflow deliberate chaos corruption of a private copy; the sentinel audit layer catches the unsound verdicts it causes
	out.Independent = !v.Independent
	if r := v.Query.Ret; r != nil && r.eng != nil {
		c := r.Clone()
		if n := c.eng.total(); n > 0 {
			sym := int(uint64(seed) % uint64(n))
			if c.isEnd(0, dtd.SymID(sym)) {
				c.ends[0].Remove(sym)
			} else {
				c.addEnd(0, dtd.SymID(sym))
			}
		}
		out.Query.Ret = c
	}
	return out
}
