package cdag

import (
	"fmt"
	"sort"
	"strings"

	"xqindep/internal/dtd"
)

// Dot renders the set as a Graphviz digraph, with endpoints drawn as
// double circles — the debugging view of the paper's Figure 2. The
// output is rendered over type names and sorted exactly like the
// map-based reference engine's, so isomorphic DAGs produce identical
// bytes regardless of which engine built them (the differential suite
// relies on this).
func (s *Set) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n", name)
	type dnode struct {
		depth int
		sym   string
	}
	var nodes []dnode
	seen := map[dnode]bool{}
	s.roots.ForEach(func(r int) {
		n := dnode{0, s.eng.symName(dtd.SymID(r))}
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	})
	type dedge struct {
		from dnode
		to   string
	}
	var edges []dedge
	for d, row := range s.out {
		for from, bits := range row {
			if !bits.Any() {
				continue
			}
			fn := dnode{d, s.eng.symName(dtd.SymID(from))}
			if !seen[fn] {
				seen[fn] = true
				nodes = append(nodes, fn)
			}
			bits.ForEach(func(to int) {
				tn := dnode{d + 1, s.eng.symName(dtd.SymID(to))}
				if !seen[tn] {
					seen[tn] = true
					nodes = append(nodes, tn)
				}
				edges = append(edges, dedge{fn, tn.sym})
			})
		}
	}
	isEnd := map[dnode]bool{}
	for d, bits := range s.ends {
		bits.ForEach(func(i int) {
			n := dnode{d, s.eng.symName(dtd.SymID(i))}
			isEnd[n] = true
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].depth != nodes[j].depth {
			return nodes[i].depth < nodes[j].depth
		}
		return nodes[i].sym < nodes[j].sym
	})
	for _, n := range nodes {
		shape := "circle"
		if isEnd[n] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %s [label=%q, shape=%s];\n", dotID(n.depth, n.sym), n.sym, shape)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			if edges[i].from.depth != edges[j].from.depth {
				return edges[i].from.depth < edges[j].from.depth
			}
			return edges[i].from.sym < edges[j].from.sym
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s;\n", dotID(e.from.depth, e.from.sym), dotID(e.from.depth+1, e.to))
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID is the stable Graphviz node identifier "depth:sym", quoted.
func dotID(depth int, sym string) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%d:%s", depth, sym))
}
