package cdag

import (
	"fmt"
	"reflect"
	"testing"

	"xqindep/internal/refcdag"
	"xqindep/internal/xmark"
)

// TestDifferentialDenseVsReference runs the full XMark view × update
// matrix through both CDAG engines — this dense compiled-schema one
// and the retained map-based reference (internal/refcdag) — and
// demands bit-for-bit agreement: same verdict, same firing reasons,
// and byte-identical Dot renderings of every judgement component's
// DAG (which pins the chain sets too). The pairs run in parallel so the
// shared compiled artifact sees concurrent readers; `go test -race`
// turns that into a synchronization oracle too.
func TestDifferentialDenseVsReference(t *testing.T) {
	d := xmark.Schema()
	views, updates := xmark.Views(), xmark.Updates()
	if testing.Short() {
		// A quarter of the matrix still exercises every rule; the full
		// cross product runs in CI.
		views, updates = views[:(len(views)+1)/2], updates[:(len(updates)+1)/2]
	}
	for _, v := range views {
		for _, u := range updates {
			v, u := v, u
			t.Run(fmt.Sprintf("%s/%s", v.Name, u.Name), func(t *testing.T) {
				t.Parallel()
				dense := Independence(d, v.AST, u.AST)
				ref := refcdag.Independence(d, v.AST, u.AST)

				if dense.Independent != ref.Independent {
					t.Fatalf("verdict: dense %v, reference %v", dense.Independent, ref.Independent)
				}
				if !reflect.DeepEqual(dense.Reasons, ref.Reasons) {
					t.Errorf("reasons: dense %v, reference %v", dense.Reasons, ref.Reasons)
				}
				if dense.K != ref.K {
					t.Errorf("k: dense %d, reference %d", dense.K, ref.K)
				}

				sets := []struct {
					name string
					dn   *Set
					rf   *refcdag.Set
				}{
					{"ret", dense.Query.Ret, ref.Query.Ret},
					{"used", dense.Query.Used, ref.Query.Used},
					{"elem", dense.Query.Elem, ref.Query.Elem},
					{"update", dense.Update.Full, ref.Update.Full},
				}
				for _, s := range sets {
					// The Dot rendering spells out the complete DAG —
					// every node, edge and endpoint — so byte equality
					// is a full structural check, and the chain sets
					// (a pure function of that structure) agree too.
					// Materialising the chains themselves is off the
					// table: on the recursive XMark schema their count
					// is exponential in the depth bound.
					if got, want := s.dn.Dot(s.name), s.rf.Dot(s.name); got != want {
						t.Errorf("%s dot:\ndense:\n%s\nreference:\n%s", s.name, got, want)
					}
				}

				// The change regions must mark the same nodes: every
				// reference mark is set densely and the counts match.
				eng := dense.Update.Full.eng
				marks := 0
				for n, on := range ref.Update.ChangeRegion {
					if !on {
						continue
					}
					marks++
					sym, ok := eng.lookupSym(n.Sym)
					if !ok {
						t.Errorf("change-region symbol %q unknown to the dense engine", n.Sym)
						continue
					}
					if !dense.Update.ChangeRegion.Has(Node{n.Depth, sym}) {
						t.Errorf("change region missing %d:%s", n.Depth, n.Sym)
					}
				}
				got := 0
				for _, bits := range dense.Update.ChangeRegion {
					got += bits.Count()
				}
				if got != marks {
					t.Errorf("change region size: dense %d, reference %d", got, marks)
				}
			})
		}
	}
}
