package cdag

import (
	"fmt"
	mathbits "math/bits"

	"xqindep/internal/bitset"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/infer"
	"xqindep/internal/xquery"
)

// commonNodes returns the nodes reachable from shared roots by edges
// present in both DAGs — the nodes n such that some common path spells
// a shared chain prefix ending at n. The walk is one descending sweep:
// common nodes at depth d+1 are the union over common symbols α at
// depth d of out_a[d][α] ∧ out_b[d][α].
func commonNodes(a, b *Set) Marks {
	if !a.roots.Intersects(b.roots) {
		return nil
	}
	maxd := len(a.out)
	if len(b.out) < maxd {
		maxd = len(b.out)
	}
	seen := a.eng.newMarks(maxd + 1)
	seen[0].OrAnd(a.roots, b.roots)
	for d := 0; d < maxd; d++ {
		cur := seen[d]
		if !cur.Any() {
			break
		}
		// Word-wise iteration, no closure: this and endReach are the
		// only loops on the per-check path.
		for w, word := range cur {
			for word != 0 {
				f := dtd.SymID(w*64 + mathbits.TrailingZeros64(word))
				word &= word - 1
				a.eng.budget.Tick()
				seen[d+1].OrAnd(a.outAt(d, f), b.outAt(d, f))
			}
		}
	}
	return seen
}

// endReach returns, per depth, the symbols from which some endpoint of
// s is forward-reachable within s's edges (zero-length paths count):
// back[d] = ends[d] ∪ {α : out[d][α] ∩ back[d+1] ≠ ∅}. One descending
// sweep answers every "does an end survive below this node?" probe the
// conflict checks make, replacing a forward walk per candidate node.
func (s *Set) endReach() Marks {
	maxd := len(s.out)
	if len(s.ends)-1 > maxd {
		maxd = len(s.ends) - 1
	}
	back := s.eng.newMarks(maxd + 1)
	for d := maxd; d >= 0; d-- {
		s.eng.budget.Tick()
		back[d].Or(s.endsAt(d))
		if d >= len(s.out) {
			continue
		}
		below := back[d+1]
		if !below.Any() {
			continue
		}
		for f, bits := range s.out[d] {
			if bits.Intersects(below) {
				back[d].Add(f)
			}
		}
	}
	return back
}

// ConflictRetUpdate decides confl(r, U) over DAGs: some return chain
// is a prefix of some full update chain.
func ConflictRetUpdate(r *Set, u *UpdateSet) bool {
	return prefixConflict(r, u.Full)
}

// ConflictUpdateRet decides confl(U, r): some full update chain is a
// prefix of some return chain.
func ConflictUpdateRet(u *UpdateSet, r *Set) bool {
	return prefixConflict(u.Full, r)
}

// prefixConflict reports whether some chain of a is a prefix of some
// chain of b (Definition 4.1 specialised to one direction): an a-end
// sits on a common prefix and some b-end is reachable at or below it.
// With b's ends-reachability precomputed, every depth is answered by
// one three-way word-wise intersection — the whole check allocates
// only the two Marks sweeps.
func prefixConflict(a, b *Set) bool {
	common := commonNodes(a, b)
	if !common.any() {
		return false
	}
	reach := b.endReach()
	for d, bits := range a.ends {
		if bitset.IntersectsAll(bits, common.at(d), reach.at(d)) {
			return true
		}
	}
	return false
}

// ConflictUpdateUsed decides the used-chain check: either a full
// update chain is a prefix of a used chain (change at or above the
// used node), or a used chain ends inside a change branch (a node
// typed by it appears on or vanishes from the branch). Both probes
// share one commonNodes sweep and run as three-way intersections.
func ConflictUpdateUsed(u *UpdateSet, v *Set) bool {
	common := commonNodes(u.Full, v)
	if common.any() {
		reach := v.endReach()
		for d, bits := range u.Full.ends {
			if bitset.IntersectsAll(bits, common.at(d), reach.at(d)) {
				return true
			}
		}
	}
	for d, bits := range v.ends {
		if bitset.IntersectsAll(bits, common.at(d), u.ChangeRegion.at(d)) {
			return true
		}
	}
	return false
}

// Verdict is the outcome of a CDAG independence check.
type Verdict struct {
	Independent bool
	// Reasons lists which checks fired, e.g. "confl(r,U)".
	Reasons []string
	Query   QueryChains
	Update  *UpdateSet
	K       int
}

// CheckIndependence runs the full CDAG analysis for the pair under
// this engine's depth bound.
func (e *Engine) CheckIndependence(q xquery.Query, u xquery.Update) Verdict {
	// Un-nest for-chains first so pure navigation prefixes batch
	// (xquery.Normalize); the semantics is unchanged.
	qc := e.Query(e.RootEnv(), xquery.Normalize(q))
	uc := e.Update(e.RootEnv(), xquery.NormalizeUpdate(u))
	e.budget.Point("cdag.conflict")
	var reasons []string
	if ConflictRetUpdate(qc.Ret, uc) {
		reasons = append(reasons, "confl(r,U)")
	}
	if ConflictUpdateRet(uc, qc.Ret) {
		reasons = append(reasons, "confl(U,r)")
	}
	if ConflictUpdateUsed(uc, qc.Used) {
		reasons = append(reasons, "confl(U,v)")
	}
	return Verdict{
		Independent: len(reasons) == 0,
		Reasons:     reasons,
		Query:       qc,
		Update:      uc,
		K:           e.K,
	}
}

func (v Verdict) String() string {
	if v.Independent {
		return "independent"
	}
	return fmt.Sprintf("dependent (%v)", v.Reasons)
}

// Independence runs the complete finite CDAG analysis of Section 5/6:
// k = kq + ku from Table 3, with the depth bound widened by the tags
// the pair constructs beyond the schema alphabet.
func Independence(d *dtd.DTD, q xquery.Query, u xquery.Update) Verdict {
	e := EngineFor(d, q, u)
	return e.CheckIndependence(q, u)
}

// IndependenceCompiled is Independence over a pre-compiled schema.
func IndependenceCompiled(c *dtd.Compiled, q xquery.Query, u xquery.Update) Verdict {
	return EngineForCompiled(c, q, u).CheckIndependence(q, u)
}

// IndependenceBudget is Independence under a resource budget: the
// engine charges b for every unit of graph growth and checks the
// deadline cooperatively, aborting via guard.Abort when exhausted
// (recover with guard.Recover or guard.Do at the caller).
func IndependenceBudget(d *dtd.DTD, q xquery.Query, u xquery.Update, b *guard.Budget) Verdict {
	b.Point("cdag.build")
	e := EngineFor(d, q, u).WithBudget(b)
	return e.CheckIndependence(q, u)
}

// IndependenceBudgetCompiled is IndependenceBudget over a pre-compiled
// schema — the serving-path entry point: the compilation cache resolves
// the artifact once and every request shares it.
func IndependenceBudgetCompiled(c *dtd.Compiled, q xquery.Query, u xquery.Update, b *guard.Budget) Verdict {
	b.Point("cdag.build")
	e := EngineForCompiled(c, q, u).WithBudget(b)
	return e.CheckIndependence(q, u)
}

// EngineFor builds the engine with the multiplicity and alphabet
// extension appropriate for the pair; q or u may be nil when only one
// side is analysed. The multiplicity k = kq + ku of Table 3 comes
// from infer.KPair, the single implementation all engines share.
func EngineFor(d *dtd.DTD, q xquery.Query, u xquery.Update) *Engine {
	return NewEngine(d, infer.KPair(q, u), pairExtras(d, q, u))
}

// EngineForCompiled is EngineFor over a pre-compiled schema.
func EngineForCompiled(c *dtd.Compiled, q xquery.Query, u xquery.Update) *Engine {
	return NewEngineCompiled(c, infer.KPair(q, u), pairExtras(c.DTD(), q, u))
}

// pairExtras counts the constructed tags outside the schema alphabet.
func pairExtras(d *dtd.DTD, q xquery.Query, u xquery.Update) int {
	extra := 0
	for tag := range constructedTags(q, u) {
		if !d.HasType(tag) {
			extra++
		}
	}
	return extra
}

// constructedTags collects element-constructor tags and rename targets
// of the pair.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func constructedTags(q xquery.Query, u xquery.Update) map[string]bool {
	out := make(map[string]bool)
	var walkQ func(xquery.Query)
	var walkU func(xquery.Update)
	walkQ = func(x xquery.Query) {
		switch n := x.(type) {
		case xquery.Sequence:
			walkQ(n.Left)
			walkQ(n.Right)
		case xquery.Element:
			out[n.Tag] = true
			walkQ(n.Content)
		case xquery.For:
			walkQ(n.In)
			walkQ(n.Return)
		case xquery.Let:
			walkQ(n.Bind)
			walkQ(n.Return)
		case xquery.If:
			walkQ(n.Cond)
			walkQ(n.Then)
			walkQ(n.Else)
		}
	}
	walkU = func(x xquery.Update) {
		switch n := x.(type) {
		case xquery.USeq:
			walkU(n.Left)
			walkU(n.Right)
		case xquery.UFor:
			walkQ(n.In)
			walkU(n.Body)
		case xquery.ULet:
			walkQ(n.Bind)
			walkU(n.Body)
		case xquery.UIf:
			walkQ(n.Cond)
			walkU(n.Then)
			walkU(n.Else)
		case xquery.Delete:
			walkQ(n.Target)
		case xquery.Rename:
			walkQ(n.Target)
			out[n.As] = true
		case xquery.Insert:
			walkQ(n.Source)
			walkQ(n.Target)
		case xquery.Replace:
			walkQ(n.Target)
			walkQ(n.Source)
		}
	}
	if q != nil {
		walkQ(q)
	}
	if u != nil {
		walkU(u)
	}
	return out
}
