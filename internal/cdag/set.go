// Package cdag is the production chain-inference engine: it
// represents inferred chain sets as depth-indexed DAGs over
// (depth, type) nodes, the paper's CDAG (Section 6.1), making the
// finite analysis polynomial in the schema size and multiplicity k
// (Theorem 6.1).
//
// A Set stands for the set of chains spelled by its root-to-endpoint
// paths. Sharing a node per (depth, type) pair keeps the width bounded
// by the schema size; the price is that merging may introduce artifact
// paths, which can only make the independence analysis more
// conservative, never unsound. Where the paper separates chains of
// different sub-expressions with edge codes, this implementation gives
// every inferred set its own DAG, which isolates sub-expressions at
// least as strongly.
//
// The k-chain bound of the finite analysis (Section 5) is enforced by
// depth: a chain longer than k·|Σeff| must repeat some symbol more
// than k times (pigeonhole), so the DAG is truncated at that depth.
// The resulting universe is a superset of Ck_d, which preserves both
// soundness and completeness relative to the infinite analysis.
//
// This is the dense, compiled-schema implementation: symbols are
// interned dtd.SymID values from a dtd.Compiled artifact, adjacency is
// a bitset row per (depth, symbol), and the set algebra — union,
// intersection, pruning, prefix-conflict probing — runs as word-wise
// bitset operations. The retained map-based engine lives in
// internal/refcdag as the differential-testing reference.
package cdag

import (
	"sort"
	"strings"

	"xqindep/internal/bitset"
	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Node identifies a CDAG node: an interned type symbol at a depth.
type Node struct {
	Depth int
	Sym   dtd.SymID
}

// Marks is a per-depth bitset marking of CDAG nodes — the dense
// replacement for map[Node]bool (productivity flags, change regions,
// endpoint overrides). The zero value is an empty marking.
type Marks []bitset.Set

// add marks (d, sym).
func (m *Marks) add(d int, sym dtd.SymID) {
	for len(*m) <= d {
		*m = append(*m, nil)
	}
	(*m)[d].Add(int(sym))
}

// or marks every bit of bits at depth d.
func (m *Marks) or(d int, bits bitset.Set) {
	for len(*m) <= d {
		*m = append(*m, nil)
	}
	(*m)[d].Or(bits)
}

// union merges t into m.
func (m *Marks) union(t Marks) {
	for d, bits := range t {
		if bits.Any() {
			m.or(d, bits)
		}
	}
}

// at returns the marked symbols at depth d (nil when none).
func (m Marks) at(d int) bitset.Set {
	if d < 0 || d >= len(m) {
		return nil
	}
	return m[d]
}

// Has reports whether n is marked.
func (m Marks) Has(n Node) bool { return m.at(n.Depth).Has(int(n.Sym)) }

// any reports whether anything is marked.
func (m Marks) any() bool {
	for _, bits := range m {
		if bits.Any() {
			return true
		}
	}
	return false
}

// clone returns an independent copy.
func (m Marks) clone() Marks {
	if m == nil {
		return nil
	}
	out := make(Marks, len(m))
	for d, bits := range m {
		out[d] = bits.Clone()
	}
	return out
}

// Set is a chain set in CDAG representation. The zero value is not
// usable; obtain Sets from an Engine. Successors of node (d, α) are
// the bits of out[d][α] at depth d+1; there is no predecessor index —
// backward steps scan one adjacency row, which for dense rows is
// cheaper than maintaining the inverse maps the map-based engine kept.
type Set struct {
	eng   *Engine
	roots bitset.Set     // symbols at depth 0
	out   [][]bitset.Set // out[d][α] = successor symbols at depth d+1
	ends  []bitset.Set   // ends[d] = endpoint symbols at depth d
}

// Engine holds the schema context shared by all sets of one analysis.
type Engine struct {
	D *dtd.DTD
	// C is the compiled schema artifact all sets index by.
	C *dtd.Compiled
	// K is the multiplicity the engine was built for.
	K int
	// MaxDepth bounds chain length; see the package comment.
	MaxDepth int
	// budget, when non-nil, bounds graph growth and wall-clock time;
	// the hot loops charge it cooperatively (see package guard).
	budget *guard.Budget

	// base is C.NumSyms(); IDs at or above it are extra symbols
	// (constructed tags outside Σ) interned per engine.
	base       int
	extraNames []string
	extraIdx   map[string]dtd.SymID
}

// WithBudget attaches a resource budget to the engine and returns it;
// a nil budget means unlimited.
func (e *Engine) WithBudget(b *guard.Budget) *Engine {
	e.budget = b
	return e
}

// NewEngine builds an engine for the DTD with the depth bound implied
// by multiplicity k and the number of extra tags constructed by the
// analysed expressions. The schema is compiled through the shared
// compilation cache; a schema beyond the compiled-symbol limit aborts
// via guard (recover with guard.Recover), degrading the analysis
// ladder to the non-compiled methods.
//
// The bound is #nonrecursive + extraTags + k·#recursive + 2: a
// non-recursive type can never occur twice on a chain (a repetition
// would close a ⇒d cycle through it), recursive types occur at most k
// times on a k-chain, and constructed tags and the string type occur
// at most once per junction. Any longer chain is not a k-chain, so
// truncating there preserves both soundness and completeness of the
// finite analysis.
func NewEngine(d *dtd.DTD, k int, extraTags int) *Engine {
	c, err := dtd.Compile(d)
	if err != nil {
		guard.Abort(err)
	}
	return NewEngineCompiled(c, k, extraTags)
}

// NewEngineCompiled is NewEngine over an already-compiled schema; use
// it on hot serving paths where the artifact is resolved once per
// request batch.
func NewEngineCompiled(c *dtd.Compiled, k int, extraTags int) *Engine {
	if k < 1 {
		k = 1
	}
	rec := c.RecursiveCount()
	nonrec := c.DTD().Size() - rec
	return &Engine{
		D:        c.DTD(),
		C:        c,
		K:        k,
		MaxDepth: nonrec + extraTags + k*rec + 2,
		base:     c.NumSyms(),
	}
}

// total is the size of the engine's symbol universe, extras included.
func (e *Engine) total() int { return e.base + len(e.extraNames) }

// newMarks returns a Marks with the given number of depth rows, each
// pre-sized to the engine's symbol universe and all carved out of one
// backing array: two allocations for the whole sweep, and no row ever
// grows again. The conflict probes build several of these per check,
// so incremental row growth would dominate their allocation profile.
func (e *Engine) newMarks(depths int) Marks {
	if depths <= 0 {
		return nil
	}
	words := (e.total() + 63) / 64
	backing := make(bitset.Set, depths*words)
	m := make(Marks, depths)
	for d := range m {
		m[d] = backing[d*words : (d+1)*words : (d+1)*words]
	}
	return m
}

// symName resolves an interned ID to its type name.
func (e *Engine) symName(s dtd.SymID) string {
	if int(s) < e.base {
		return e.C.NameOf(s)
	}
	return e.extraNames[int(s)-e.base]
}

// lookupSym resolves a name without interning.
func (e *Engine) lookupSym(name string) (dtd.SymID, bool) {
	if s, ok := e.C.SymOf(name); ok {
		return s, true
	}
	s, ok := e.extraIdx[name]
	return s, ok
}

// internSym resolves a name, interning it as an extra symbol when it
// lies outside Σ (a constructed tag or rename target).
func (e *Engine) internSym(name string) dtd.SymID {
	if s, ok := e.lookupSym(name); ok {
		return s
	}
	if e.total() >= int(^dtd.SymID(0)) {
		guard.Abort(&guard.LimitError{Resource: "symbols", Limit: int(^dtd.SymID(0))})
	}
	s := dtd.SymID(e.total())
	if e.extraIdx == nil {
		e.extraIdx = make(map[string]dtd.SymID)
	}
	e.extraIdx[name] = s
	e.extraNames = append(e.extraNames, name)
	return s
}

// childSet returns the schema successor bitset of s; extras and the
// string type have no children.
func (e *Engine) childSet(s dtd.SymID) bitset.Set {
	if int(s) < e.base {
		return e.C.ChildSet(s)
	}
	return nil
}

// childSyms returns the schema child list of s.
func (e *Engine) childSyms(s dtd.SymID) []dtd.SymID {
	if int(s) < e.base {
		return e.C.Children(s)
	}
	return nil
}

// testMask returns the bitset of symbols passing the node test over
// the engine's current universe. One mask evaluation turns per-node
// test checks into word-wise intersections.
func (e *Engine) testMask(test xquery.NodeTest) bitset.Set {
	str := int(e.C.StringSym())
	m := bitset.New(e.total())
	switch test.Kind {
	case xquery.NodeAny:
		for i := 0; i < e.total(); i++ {
			m.Add(i)
		}
	case xquery.TextTest:
		m.Add(str)
	case xquery.WildcardTest:
		for i := 0; i < e.total(); i++ {
			m.Add(i)
		}
		m.Remove(str)
	case xquery.TagTest:
		if ls := e.C.LabelSyms(test.Tag); ls != nil {
			m.Or(ls)
		}
		// µ⁻¹ may include the string type (its label is itself);
		// node tests never select text nodes by tag.
		m.Remove(str)
		for i, name := range e.extraNames {
			if name == test.Tag {
				m.Add(e.base + i)
			}
		}
	}
	return m
}

// NewSet returns an empty set.
func (e *Engine) NewSet() *Set { return &Set{eng: e} }

// outRow returns the adjacency row at depth d, grown to the current
// symbol universe.
func (s *Set) outRow(d int) []bitset.Set {
	for len(s.out) <= d {
		s.out = append(s.out, nil)
	}
	if n := s.eng.total(); len(s.out[d]) < n {
		row := make([]bitset.Set, n)
		copy(row, s.out[d])
		s.out[d] = row
	}
	return s.out[d]
}

// outAt returns the successor bitset of (d, from); nil when absent.
func (s *Set) outAt(d int, from dtd.SymID) bitset.Set {
	if d < 0 || d >= len(s.out) || int(from) >= len(s.out[d]) {
		return nil
	}
	return s.out[d][from]
}

// addEdge inserts (d, from) → (d+1, to). Every insertion charges the
// engine budget: edge growth is the engine's unit of work, so a
// runaway analysis aborts here long before exhausting memory.
func (s *Set) addEdge(d int, from, to dtd.SymID) {
	s.eng.budget.AddNodes(1)
	s.outRow(d)[from].Add(int(to))
}

// mergeRow unions src into the successors of (d, from), charging the
// budget one unit per source edge — the same rate addEdge charges the
// map-based engine per insertion, kept so budget-limit behaviour is
// comparable across the ladder.
func (s *Set) mergeRow(d int, from dtd.SymID, src bitset.Set) {
	s.eng.budget.AddNodes(src.Count())
	s.outRow(d)[from].Or(src)
}

// hasEdge reports the presence of (d, from) → (d+1, to).
func (s *Set) hasEdge(d int, from, to dtd.SymID) bool {
	return s.outAt(d, from).Has(int(to))
}

// endsAt returns the endpoint symbols at depth d (nil when none).
func (s *Set) endsAt(d int) bitset.Set {
	if d < 0 || d >= len(s.ends) {
		return nil
	}
	return s.ends[d]
}

// addEnd marks (d, sym) as an endpoint.
func (s *Set) addEnd(d int, sym dtd.SymID) {
	for len(s.ends) <= d {
		s.ends = append(s.ends, nil)
	}
	s.ends[d].Add(int(sym))
}

// endsOr marks every bit of bits as endpoints at depth d.
func (s *Set) endsOr(d int, bits bitset.Set) {
	for len(s.ends) <= d {
		s.ends = append(s.ends, nil)
	}
	s.ends[d].Or(bits)
}

// isEnd reports whether (d, sym) is an endpoint.
func (s *Set) isEnd(d int, sym dtd.SymID) bool { return s.endsAt(d).Has(int(sym)) }

// predBits returns the predecessor symbols of n, scanning the
// adjacency row above it.
func (s *Set) predBits(n Node) bitset.Set {
	return s.predsOfBit(n.Depth, n.Sym)
}

func (s *Set) predsOfBit(d int, sym dtd.SymID) bitset.Set {
	if d <= 0 || d-1 >= len(s.out) {
		return nil
	}
	var out bitset.Set
	for from, bits := range s.out[d-1] {
		if bits.Has(int(sym)) {
			out.Add(from)
		}
	}
	return out
}

// predsOfSet returns the symbols at depth d-1 with an edge into any
// target symbol at depth d.
func (s *Set) predsOfSet(d int, targets bitset.Set) bitset.Set {
	if d <= 0 || d-1 >= len(s.out) || !targets.Any() {
		return nil
	}
	var out bitset.Set
	for from, bits := range s.out[d-1] {
		if bits.Intersects(targets) {
			out.Add(from)
		}
	}
	return out
}

// RootSet returns the set holding the single chain {sd}.
func (e *Engine) RootSet() *Set {
	s := e.NewSet()
	start := e.C.Start()
	s.roots.Add(int(start))
	s.addEnd(0, start)
	return s
}

// SingletonSet returns the set holding exactly the given chain.
func (e *Engine) SingletonSet(c chain.Chain) *Set {
	s := e.NewSet()
	if c.IsEmpty() {
		return s
	}
	syms := make([]dtd.SymID, len(c))
	for i, name := range c {
		syms[i] = e.internSym(name)
	}
	s.roots.Add(int(syms[0]))
	for i := 0; i+1 < len(syms); i++ {
		s.addEdge(i, syms[i], syms[i+1])
	}
	s.addEnd(len(syms)-1, syms[len(syms)-1])
	return s
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := s.eng.NewSet()
	out.AddAll(s)
	return out
}

// IsEmpty reports whether the set holds no chains.
func (s *Set) IsEmpty() bool {
	for _, bits := range s.ends {
		if bits.Any() {
			return false
		}
	}
	return true
}

// EndCount returns the number of endpoint nodes (not chains — several
// chains may share an endpoint).
func (s *Set) EndCount() int {
	n := 0
	for _, bits := range s.ends {
		n += bits.Count()
	}
	return n
}

// endNodes lists the endpoints in depth order (symbol-ID order within
// a depth) without the name sort Ends performs.
func (s *Set) endNodes() []Node {
	var out []Node
	for d, bits := range s.ends {
		bits.ForEach(func(i int) {
			out = append(out, Node{d, dtd.SymID(i)})
		})
	}
	return out
}

// Ends returns the endpoints in deterministic order: by depth, then by
// type name.
func (s *Set) Ends() []Node {
	out := s.endNodes()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return s.eng.symName(out[i].Sym) < s.eng.symName(out[j].Sym)
	})
	return out
}

// EndpointParent describes one endpoint of a set together with the
// parent symbols of its incoming edges; IsRoot marks endpoints at
// depth 0 (document-root chains).
type EndpointParent struct {
	Sym     string
	Parents []string
	IsRoot  bool
}

// EndpointParents lists every endpoint with its possible parent
// symbols, the information schema-preservation checks need.
func (s *Set) EndpointParents() []EndpointParent {
	var out []EndpointParent
	for _, n := range s.Ends() {
		ep := EndpointParent{Sym: s.eng.symName(n.Sym), IsRoot: n.Depth == 0}
		s.predBits(n).ForEach(func(p int) {
			ep.Parents = append(ep.Parents, s.eng.symName(dtd.SymID(p)))
		})
		sort.Strings(ep.Parents)
		out = append(out, ep)
	}
	return out
}

// AddAll unions t into s (both must come from the same engine).
func (s *Set) AddAll(t *Set) {
	if t == nil {
		return
	}
	s.roots.Or(t.roots)
	for d, row := range t.out {
		for from, bits := range row {
			if bits.Any() {
				s.mergeRow(d, dtd.SymID(from), bits)
			}
		}
	}
	for d, bits := range t.ends {
		if bits.Any() {
			s.endsOr(d, bits)
		}
	}
}

// Union returns a fresh union of the operands.
func (e *Engine) Union(sets ...*Set) *Set {
	out := e.NewSet()
	for _, s := range sets {
		out.AddAll(s)
	}
	return out
}

// withEnds returns a copy of s's graph with the given endpoints,
// pruned to the edges that spell its chains.
func (s *Set) withEnds(ends Marks) *Set {
	out := s.Clone()
	out.ends = []bitset.Set(ends)
	return out.prune()
}

// prune returns the sub-DAG of s containing exactly the edges on some
// root→endpoint path. This plays the role of the paper's edge codes:
// growth performed while exploring one step must not become spellable
// context for the next step or for backward navigation. Both closures
// run level-wise over whole bitset rows rather than node-at-a-time.
func (s *Set) prune() *Set {
	depths := len(s.ends)
	if d := len(s.out) + 1; d > depths {
		depths = d
	}
	if depths == 0 {
		depths = 1
	}
	// Forward closure from the roots.
	fwd := make([]bitset.Set, depths)
	fwd[0] = s.roots.Clone()
	for d := 0; d+1 < depths; d++ {
		s.eng.budget.Tick()
		var next bitset.Set
		if d < len(s.out) {
			for from, bits := range s.out[d] {
				if fwd[d].Has(from) && bits.Any() {
					next.Or(bits)
				}
			}
		}
		fwd[d+1] = next
	}
	// Backward closure from the forward-reachable endpoints.
	back := make([]bitset.Set, depths)
	for d := depths - 1; d >= 0; d-- {
		s.eng.budget.Tick()
		var b bitset.Set
		b.Or(s.endsAt(d).And(fwd[d]))
		if d+1 < depths && back[d+1].Any() {
			p := s.predsOfSet(d+1, back[d+1])
			p.AndWith(fwd[d])
			b.Or(p)
		}
		back[d] = b
	}
	out := s.eng.NewSet()
	out.roots = bitset.Set(s.roots.And(back[0]))
	for d := 0; d < len(s.out) && d+1 < depths; d++ {
		keep := fwd[d].And(back[d])
		if !keep.Any() {
			continue
		}
		row := s.out[d]
		keep.ForEach(func(from int) {
			if int(from) >= len(row) {
				return
			}
			kept := row[from].And(back[d+1])
			if kept.Any() {
				out.mergeRow(d, dtd.SymID(from), kept)
			}
		})
	}
	for d := range s.ends {
		kept := s.ends[d].And(fwd[d])
		if kept.Any() {
			out.endsOr(d, kept)
		}
	}
	return out
}

// subWithEnd returns the backward cone of a single endpoint: exactly
// the edges on root→n paths, with n as the only endpoint. It is the
// per-binding view of FOR iteration; extracting the cone directly is
// much cheaper than cloning and pruning the whole DAG when the parent
// set has many endpoints.
func (s *Set) subWithEnd(n Node) *Set {
	out := s.eng.NewSet()
	out.addEnd(n.Depth, n.Sym)
	cone := make([]bitset.Set, n.Depth+1)
	cone[n.Depth].Add(int(n.Sym))
	for d := n.Depth; d > 0; d-- {
		s.eng.budget.Tick()
		if d-1 >= len(s.out) {
			continue
		}
		for from, bits := range s.out[d-1] {
			kept := bits.And(cone[d])
			if kept.Any() {
				cone[d-1].Add(from)
				out.mergeRow(d-1, dtd.SymID(from), kept)
			}
		}
	}
	out.roots = bitset.Set(s.roots.And(cone[0]))
	return out
}

// Step applies one XPath step (axis + node test) to the set,
// implementing AC/TC over the DAG. It returns the result set and, for
// each input endpoint, whether the step produced anything from it (the
// (STEPUH) used-chain filter).
func (s *Set) Step(axis xquery.Axis, test xquery.NodeTest) (*Set, Marks) {
	if axis == xquery.Descendant || axis == xquery.DescendantOrSelf {
		return s.descendantStep(axis, test)
	}
	out := s.Clone()
	out.ends = nil
	mask := s.eng.testMask(test)
	var productive Marks
	for _, end := range s.endNodes() {
		var results []Node
		switch axis {
		case xquery.Self:
			results = []Node{end}
		case xquery.Child:
			results = out.growChildren(end)
		case xquery.Parent:
			s.predBits(end).ForEach(func(p int) {
				results = append(results, Node{end.Depth - 1, dtd.SymID(p)})
			})
		case xquery.Ancestor:
			results = s.properAncestors(end)
		case xquery.AncestorOrSelf:
			results = append(s.properAncestors(end), end)
		case xquery.PrecedingSibling:
			results = out.growSiblings(s, end, true)
		case xquery.FollowingSibling:
			results = out.growSiblings(s, end, false)
		default:
			panic(&guard.InternalError{Value: "cdag: unknown axis"})
		}
		any := false
		for _, n := range results {
			if mask.Has(int(n.Sym)) {
				out.addEnd(n.Depth, n.Sym)
				any = true
			}
		}
		if any {
			productive.add(end.Depth, end.Sym)
		}
	}
	return out.prune(), productive
}

// descendantStep handles descendant and descendant-or-self for all
// endpoints in one ascending sweep: since ⇒d edges always step one
// depth down, every (depth, symbol) pair is expanded exactly once with
// one bitset union of its schema successors. Per-endpoint
// productivity — needed by (STEPUH) for plain descendant — is
// recovered from a single descending backward closure of the passing
// nodes.
func (s *Set) descendantStep(axis xquery.Axis, test xquery.NodeTest) (*Set, Marks) {
	out := s.Clone()
	out.ends = nil
	mask := s.eng.testMask(test)

	// Forward closure below every endpoint, shared.
	var active, reached Marks
	for d, bits := range s.ends {
		if bits.Any() {
			active.or(d, bits)
		}
	}
	for d := 0; d < len(active) && d < s.eng.MaxDepth; d++ {
		bits := active.at(d)
		if !bits.Any() {
			continue
		}
		s.eng.budget.Tick()
		var kids bitset.Set
		bits.ForEach(func(i int) {
			cs := s.eng.childSet(dtd.SymID(i))
			if !cs.Any() {
				return
			}
			s.eng.budget.AddNodes(cs.Count())
			out.outRow(d)[i].Or(cs)
			kids.Or(cs)
		})
		if kids.Any() {
			reached.or(d+1, kids)
			active.or(d+1, kids)
		}
	}

	// Results: passing reached nodes, plus the endpoints themselves
	// for descendant-or-self.
	passing := make(Marks, len(reached))
	for d, bits := range reached {
		p := bits.And(mask)
		if p.Any() {
			passing[d] = bitset.Set(p)
			out.endsOr(d, p)
		}
	}
	if axis == xquery.DescendantOrSelf {
		for d, bits := range s.ends {
			p := bits.And(mask)
			if p.Any() {
				out.endsOr(d, p)
			}
		}
	}

	// Productivity: an endpoint is productive when a passing node is
	// forward-reachable (strictly below for descendant; or itself for
	// descendant-or-self). hasBelow = backward closure of passing.
	hasBelow := passing.clone()
	for d := len(hasBelow) - 1; d > 0; d-- {
		if !hasBelow.at(d).Any() {
			continue
		}
		s.eng.budget.Tick()
		p := out.predsOfSet(d, hasBelow.at(d))
		if p.Any() {
			hasBelow.or(d-1, p)
		}
	}
	var productive Marks
	for d, bits := range s.ends {
		below := hasBelow.at(d + 1)
		bits.ForEach(func(i int) {
			sym := dtd.SymID(i)
			kidsBelow := out.outAt(d, sym).Intersects(below)
			switch {
			case axis == xquery.DescendantOrSelf && (mask.Has(i) || kidsBelow):
				productive.add(d, sym)
			case axis == xquery.Descendant && kidsBelow:
				productive.add(d, sym)
			}
		})
	}
	return out.prune(), productive
}

// growChildren adds schema child edges below n and returns the child
// nodes.
func (s *Set) growChildren(n Node) []Node {
	if n.Depth+1 > s.eng.MaxDepth {
		return nil
	}
	kids := s.eng.childSyms(n.Sym)
	out := make([]Node, 0, len(kids))
	for _, beta := range kids {
		s.addEdge(n.Depth, n.Sym, beta)
		out = append(out, Node{n.Depth + 1, beta})
	}
	return out
}

// properAncestors walks s's own edges upward from n and returns every
// node on a path from a root to n, excluding n.
func (s *Set) properAncestors(n Node) []Node {
	var out []Node
	cur := s.predBits(n)
	for d := n.Depth - 1; d >= 0 && cur.Any(); d-- {
		s.eng.budget.Tick()
		cur.ForEach(func(i int) {
			out = append(out, Node{d, dtd.SymID(i)})
		})
		cur = s.predsOfSet(d, cur)
	}
	return out
}

// growSiblings adds sibling nodes of endpoint end: for each parent
// node reachable in the context set, the types ordered before/after
// end's type in that parent's content model (<r from the compiled
// sibling tables).
func (s *Set) growSiblings(ctx *Set, end Node, preceding bool) []Node {
	if end.Depth == 0 || int(end.Sym) >= s.eng.base {
		return nil
	}
	var out []Node
	ctx.predBits(end).ForEach(func(pi int) {
		if pi >= s.eng.base {
			return
		}
		p := dtd.SymID(pi)
		var sibs bitset.Set
		if preceding {
			sibs = s.eng.C.PrecedingSiblings(p, end.Sym)
		} else {
			sibs = s.eng.C.FollowingSiblings(p, end.Sym)
		}
		sibs.ForEach(func(bi int) {
			beta := dtd.SymID(bi)
			s.addEdge(end.Depth-1, p, beta)
			out = append(out, Node{end.Depth, beta})
		})
	})
	return out
}

// allExtendNode reports whether every chain of s has the chain(s)
// ending at n as a prefix: every endpoint lies at depth ≥ n.Depth and
// every backward path from an endpoint passes through n. Since each
// root→end path crosses each depth exactly once, it suffices that n is
// the only depth-n symbol backward-reachable from the endpoints.
func (s *Set) allExtendNode(n Node) bool {
	anyEnd := false
	var seen Marks
	for d, bits := range s.ends {
		if !bits.Any() {
			continue
		}
		if d < n.Depth {
			return false
		}
		seen.or(d, bits)
		anyEnd = true
	}
	if !anyEnd {
		return true
	}
	for d := len(seen) - 1; d > n.Depth; d-- {
		if !seen.at(d).Any() {
			continue
		}
		s.eng.budget.Tick()
		p := s.predsOfSet(d, seen.at(d))
		if p.Any() {
			seen.or(d-1, p)
		}
	}
	ok := true
	seen.at(n.Depth).ForEach(func(i int) {
		if dtd.SymID(i) != n.Sym {
			ok = false
		}
	})
	return ok
}

// Extend returns the set τ̄ = { c.c' | c ∈ s }: s plus the forward
// schema closure below every endpoint, all of it marked as endpoints.
func (s *Set) Extend() *Set {
	out := s.Clone()
	for d := 0; d < len(out.ends) && d < s.eng.MaxDepth; d++ {
		bits := out.ends[d]
		if !bits.Any() {
			continue
		}
		s.eng.budget.Tick()
		var kids bitset.Set
		bits.ForEach(func(i int) {
			cs := s.eng.childSet(dtd.SymID(i))
			if !cs.Any() {
				return
			}
			s.eng.budget.AddNodes(cs.Count())
			out.outRow(d)[i].Or(cs)
			kids.Or(cs)
		})
		if kids.Any() {
			out.endsOr(d+1, kids)
		}
	}
	return out
}

// graft attaches t under endpoint base: t's roots become children of
// base, every t edge is copied shifted by base.Depth+1, and t's
// endpoints become endpoints of the result (added in place to s).
// Nodes beyond MaxDepth are dropped — such chains exceed every k-chain
// length. Both sets must come from the same engine so interned IDs
// agree.
func (s *Set) graft(base Node, t *Set) {
	off := base.Depth + 1
	if off > s.eng.MaxDepth {
		return
	}
	t.roots.ForEach(func(r int) {
		s.addEdge(base.Depth, base.Sym, dtd.SymID(r))
	})
	for d, row := range t.out {
		if off+d+1 > s.eng.MaxDepth {
			continue
		}
		for from, bits := range row {
			if bits.Any() {
				s.mergeRow(off+d, dtd.SymID(from), bits)
			}
		}
	}
	for d, bits := range t.ends {
		if off+d <= s.eng.MaxDepth && bits.Any() {
			s.endsOr(off+d, bits)
		}
	}
}

// Rebase returns a set whose chains are tag.c for every chain c of s —
// the element-chain composition a.c of the (ELT) rule.
func (s *Set) Rebase(tag string) *Set {
	out := s.eng.NewSet()
	sym := s.eng.internSym(tag)
	out.roots.Add(int(sym))
	out.graft(Node{Depth: 0, Sym: sym}, s)
	return out
}

// SuffixExtensions returns the element-style set
// { sym.c” | c” schema extension of sym } rooted at depth 0 — the
// suffix α.c' used by (ELT) and by copied-source update chains.
func (e *Engine) SuffixExtensions(sym string, budget int) *Set {
	return e.suffixExtensions(e.internSym(sym), budget)
}

// suffixExtensions is SuffixExtensions over an interned symbol. The
// whole closure is one ascending sweep of the endpoint rows: every
// reached node is an endpoint, so the frontier at depth d is exactly
// ends[d].
func (e *Engine) suffixExtensions(sym dtd.SymID, budget int) *Set {
	out := e.NewSet()
	out.roots.Add(int(sym))
	out.addEnd(0, sym)
	if budget > e.MaxDepth {
		budget = e.MaxDepth
	}
	for d := 0; d < len(out.ends) && d < budget; d++ {
		bits := out.ends[d]
		if !bits.Any() {
			continue
		}
		var kids bitset.Set
		bits.ForEach(func(i int) {
			cs := e.childSet(dtd.SymID(i))
			if !cs.Any() {
				return
			}
			e.budget.AddNodes(cs.Count())
			out.outRow(d)[i].Or(cs)
			kids.Or(cs)
		})
		if kids.Any() {
			out.endsOr(d+1, kids)
		}
	}
	return out
}

// Chains enumerates the chain set spelled by the DAG, up to limit
// chains (0 = no limit). Intended for tests and diagnostics; the
// enumeration is exponential in general.
func (s *Set) Chains(limit int) []chain.Chain {
	var out []chain.Chain
	var path []string
	var rec func(d int, sym dtd.SymID)
	rec = func(d int, sym dtd.SymID) {
		if limit > 0 && len(out) >= limit {
			return
		}
		s.eng.budget.Tick()
		path = append(path, s.eng.symName(sym))
		if s.isEnd(d, sym) {
			out = append(out, chain.New(append([]string(nil), path...)...))
		}
		s.outAt(d, sym).ForEach(func(to int) {
			rec(d+1, dtd.SymID(to))
		})
		path = path[:len(path)-1]
	}
	var roots []dtd.SymID
	s.roots.ForEach(func(r int) { roots = append(roots, dtd.SymID(r)) })
	sort.Slice(roots, func(i, j int) bool {
		return s.eng.symName(roots[i]) < s.eng.symName(roots[j])
	})
	for _, r := range roots {
		rec(0, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Strings renders the enumerated chains; for tests.
func (s *Set) Strings(limit int) []string {
	cs := s.Chains(limit)
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// String summarises the DAG contents (up to 16 chains).
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("cdag{")
	for i, e := range s.Strings(16) {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e)
	}
	b.WriteString("}")
	return b.String()
}
