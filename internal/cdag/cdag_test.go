package cdag

import (
	"math/rand"
	"reflect"
	"testing"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/infer"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

var (
	figure1 = dtd.MustParse(`
doc <- (a | b)*
a <- c
b <- c
c <- ()
`)
	bib = dtd.MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)
	d1 = dtd.MustParse(`
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`)
	// figure2 is the schema behind the CDAG illustration of Section 6.1.
	figure2 = dtd.MustParse(`
a <- b?, d?
b <- c?
d <- c?
c <- e?, f?
e <- ()
f <- ()
`)
)

func TestSingletonAndChains(t *testing.T) {
	e := NewEngine(figure1, 1, 0)
	s := e.SingletonSet(chain.MustParseChain("doc.a.c"))
	if got := s.Strings(0); !reflect.DeepEqual(got, []string{"doc.a.c"}) {
		t.Errorf("singleton chains = %v", got)
	}
	if s.IsEmpty() || s.EndCount() != 1 {
		t.Errorf("singleton shape wrong")
	}
	if got := e.NewSet().Strings(0); len(got) != 0 {
		t.Errorf("empty set chains = %v", got)
	}
}

// TestFigure2NoArtifacts replays the Figure 2 discussion: per-set DAGs
// keep q1 = //c/e and q2 = /a/d/c/f apart, and q1's own merge of
// a.b.c.e and a.d.c.e does not fabricate a.b.c.f.
func TestFigure2NoArtifacts(t *testing.T) {
	e := NewEngine(figure2, 2, 0)
	q1 := e.Query(e.RootEnv(), xquery.MustParseQuery("//c/e"))
	q2 := e.Query(e.RootEnv(), xquery.MustParseQuery("/a/d/c/f"))
	want1 := []string{"a.b.c.e", "a.d.c.e"}
	if got := q1.Ret.Strings(0); !reflect.DeepEqual(got, want1) {
		t.Errorf("q1 chains = %v, want %v", got, want1)
	}
	if got := q2.Ret.Strings(0); !reflect.DeepEqual(got, []string{"a.d.c.f"}) {
		t.Errorf("q2 chains = %v", got)
	}
	// Backward navigation from q2's endpoint stays within q2's DAG:
	// ancestor::* from a.d.c.f never reaches a b node.
	q2b := e.Query(e.RootEnv(), xquery.MustParseQuery("for $x in /a/d/c/f return $x/ancestor::b"))
	if !q2b.Ret.IsEmpty() {
		t.Errorf("backward navigation leaked into foreign chains: %v", q2b.Ret)
	}
}

func TestStepOverDAGMatchesSetEngine(t *testing.T) {
	// For a battery of queries over non-recursive schemas, the CDAG
	// chain sets coincide exactly with the explicit-set engine. The
	// engines are inferred on normalized ASTs for a fair comparison.
	queries := []string{
		"//a//c", "//c", "/doc/a", "//c/..", "//b/following-sibling::a",
		"//a/preceding-sibling::b", "/doc",
		"for $x in //a return $x/c",
		"for $x in //node() return if ($x/c) then $x else ()",
	}
	for _, qs := range queries {
		q := xquery.MustParseQuery(qs)
		ce := NewEngine(figure1, 2, 0)
		cc := ce.Query(ce.RootEnv(), q)
		ie := infer.New(figure1, 2)
		ic := ie.Query(ie.RootEnv(), q)
		if got, want := cc.Ret.Strings(0), ic.Ret.Strings(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: CDAG ret %v, set ret %v", qs, got, want)
		}
		if got, want := cc.Used.Strings(0), ic.Used.Strings(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: CDAG used %v, set used %v", qs, got, want)
		}
	}
	// Purely navigational upward bodies are processed set-wise by the
	// CDAG engine ((STEPUH) granularity): binding chains subsumed by
	// the step's productive contexts and returns. The reference engine
	// follows the printed (FOR) rule and also records the outer
	// bindings, so the CDAG used set is a (sound) subset there.
	q := xquery.MustParseQuery("//c/ancestor::node()")
	ce := NewEngine(figure1, 2, 0)
	cc := ce.Query(ce.RootEnv(), q)
	ie := infer.New(figure1, 2)
	ic := ie.Query(ie.RootEnv(), q)
	if got, want := cc.Ret.Strings(0), ic.Ret.Strings(); !reflect.DeepEqual(got, want) {
		t.Errorf("ancestor ret: CDAG %v, set %v", got, want)
	}
	if got, want := cc.Used.Strings(0), []string{"doc.a.c", "doc.b.c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ancestor used: CDAG %v, want %v", got, want)
	}
	setUsed := chain.NewSet()
	for _, c := range ic.Used.Chains() {
		setUsed.Add(c)
	}
	for _, c := range cc.Used.Chains(0) {
		if !setUsed.Contains(c) {
			t.Errorf("CDAG used chain %v not among reference used chains %v", c, ic.Used)
		}
	}
}

func TestUpdateDAGPaperExamples(t *testing.T) {
	e := NewEngine(figure1, 2, 0)
	u1 := e.Update(e.RootEnv(), xquery.MustParseUpdate("delete //b//c"))
	if got := u1.Full.Strings(0); !reflect.DeepEqual(got, []string{"doc.b.c"}) {
		t.Errorf("u1 full chains = %v", got)
	}
	cSym, _ := e.C.SymOf("c")
	bSym, _ := e.C.SymOf("b")
	if !u1.ChangeRegion.Has(Node{2, cSym}) {
		t.Errorf("u1 change region misses 2:c")
	}
	if u1.ChangeRegion.Has(Node{1, bSym}) {
		t.Errorf("target prefix wrongly in change region")
	}

	e2 := NewEngine(bib, 2, 1)
	u2 := e2.Update(e2.RootEnv(), xquery.MustParseUpdate("for $x in //book return insert <author/> into $x"))
	if got := u2.Full.Strings(0); !reflect.DeepEqual(got, []string{"bib.book.author"}) {
		t.Errorf("u2 full chains = %v", got)
	}
}

func TestCDAGIndependencePaperExamples(t *testing.T) {
	cases := []struct {
		name string
		d    *dtd.DTD
		q, u string
		want bool
	}{
		{"q1-u1", figure1, "//a//c", "delete //b//c", true},
		{"q1-u1-dep", figure1, "//a//c", "delete //a//c", false},
		{"q2-u2", bib, "//title", "for $x in //book return insert <author/> into $x", true},
		{"author-email", bib, "//author/email",
			"for $x in //book return insert <author><first>U</first><last>E</last></author> into $x", true},
		{"author-first", bib, "//author/first",
			"for $x in //book return insert <author><first>U</first></author> into $x", false},
		{"delete-book", bib, "//title", "delete //book", false},
		{"recursive-dep", d1, "/descendant::b", "delete /descendant::c", false},
		{"recursive-indep", d1, "/r/a/e", "delete /r/a/b", true},
		{"cond-insert", bib, "for $b in //book return if ($b/author) then $b/title else ()",
			"for $x in //book return insert <author><first>U</first></author> into $x", false},
	}
	for _, c := range cases {
		q := xquery.MustParseQuery(c.q)
		u := xquery.MustParseUpdate(c.u)
		v := Independence(c.d, q, u)
		if v.Independent != c.want {
			t.Errorf("%s: CDAG says %v, want %v (reasons %v; q ret %v used %v; u %v)",
				c.name, v.Independent, c.want, v.Reasons,
				v.Query.Ret.Strings(12), v.Query.Used.Strings(12), v.Update.Full.Strings(12))
		}
	}
}

// TestCDAGConservativeVsSetEngine checks the designed relationship:
// whenever the CDAG analysis concludes independence, the explicit-set
// analysis does too (the CDAG may only be more conservative).
func TestCDAGConservativeVsSetEngine(t *testing.T) {
	schemas := []*dtd.DTD{figure1, bib, figure2}
	queries := []string{
		"//a//c", "//c", "/doc", "//title", "//author/email", "//c/e",
		"//c/..", "for $x in //node() return if ($x/e) then $x/f else ()",
		"//b/following-sibling::node()",
	}
	updates := []string{
		"delete //b//c", "delete //c", "delete //author",
		"for $x in //book return insert <author/> into $x",
		"for $x in //c return rename $x as e",
		"for $x in //c/e return replace $x with <f/>",
		"()",
	}
	for _, d := range schemas {
		for _, qs := range queries {
			q := xquery.MustParseQuery(qs)
			for _, us := range updates {
				u := xquery.MustParseUpdate(us)
				cv := Independence(d, q, u)
				iv := infer.Independence(d, q, u)
				if cv.Independent && !iv.Independent {
					t.Errorf("CDAG more liberal than set engine for q=%s u=%s", qs, us)
				}
			}
		}
	}
}

// TestCDAGSoundnessDifferential mirrors the set engine's soundness
// test: CDAG independence must never contradict runtime execution.
func TestCDAGSoundnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schemas := []*dtd.DTD{figure1, bib, d1, figure2}
	queries := []string{
		"//a//c", "//c", "//title", "//author/email", "//c/e", "//b",
		"/descendant::g", "//c/..", "for $x in //node() return if ($x/b) then $x else ()",
	}
	updates := []string{
		"delete //b//c", "delete //c", "delete //b",
		"for $x in //book return insert <author/> into $x",
		"for $x in //b return rename $x as zz",
		"delete /descendant::c",
	}
	for _, d := range schemas {
		var trees []xmltree.Tree
		for i := 0; i < 8; i++ {
			tr, err := d.GenerateTree(rng, 0.55, 6)
			if err != nil {
				t.Fatal(err)
			}
			trees = append(trees, tr)
		}
		for _, qs := range queries {
			q := xquery.MustParseQuery(qs)
			for _, us := range updates {
				u := xquery.MustParseUpdate(us)
				// Skip updates renaming/inserting tags the schema does
				// not declare only when inference would reject; the
				// analysis itself must stay sound regardless.
				v := Independence(d, q, u)
				if !v.Independent {
					continue
				}
				if i := eval.DependentOnAny(trees, q, u); i >= 0 {
					t.Errorf("UNSOUND CDAG verdict for q=%s u=%s on %s\ndoc: %s",
						qs, us, d.Start, trees[i].Store.String(trees[i].Root))
				}
			}
		}
	}
}

func TestEngineDepthBound(t *testing.T) {
	// Depth bound k·|Σeff|+1: chains longer than that are truncated.
	e := NewEngine(d1, 1, 0)
	s := e.RootSet()
	desc, _ := s.Step(xquery.Descendant, xquery.AnyNode())
	for _, end := range desc.Ends() {
		if end.Depth > e.MaxDepth {
			t.Errorf("endpoint beyond depth bound: %v", end)
		}
	}
	if e.K != 1 {
		t.Errorf("K = %d", e.K)
	}
}

func TestRebaseAndSuffixExtensions(t *testing.T) {
	e := NewEngine(bib, 1, 1)
	inner := e.SingletonSet(chain.MustParseChain("first.S"))
	reb := inner.Rebase("author")
	if got := reb.Strings(0); !reflect.DeepEqual(got, []string{"author.first.S"}) {
		t.Errorf("Rebase = %v", got)
	}
	ext := e.SuffixExtensions("author", e.MaxDepth)
	want := []string{"author", "author.email", "author.email.S", "author.first",
		"author.first.S", "author.last", "author.last.S"}
	if got := ext.Strings(0); !reflect.DeepEqual(got, want) {
		t.Errorf("SuffixExtensions = %v, want %v", got, want)
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Independent: true}
	if v.String() != "independent" {
		t.Errorf("String = %q", v.String())
	}
	v2 := Verdict{Reasons: []string{"confl(r,U)"}}
	if v2.String() != "dependent ([confl(r,U)])" {
		t.Errorf("String = %q", v2.String())
	}
}
