package cdag

import (
	"reflect"
	"strings"
	"testing"

	"xqindep/internal/xquery"
)

func TestDot(t *testing.T) {
	e := NewEngine(figure2, 2, 0)
	qc := e.Query(e.RootEnv(), xquery.MustParseQuery("//c/e"))
	dot := qc.Ret.Dot("q1")
	for _, want := range []string{
		"digraph \"q1\"",
		`"0:a"`, `"2:c"`, `"3:e"`,
		"doublecircle", // the endpoint
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
	// The Figure 2 property: no artifact edge towards f in q1's DAG.
	if strings.Contains(dot, `"3:f"`) {
		t.Errorf("q1 DAG contains f: %s", dot)
	}
	// Deterministic output.
	if dot != qc.Ret.Dot("q1") {
		t.Errorf("Dot not deterministic")
	}
}

func TestEndpointParents(t *testing.T) {
	e := NewEngine(figure1, 1, 0)
	qc := e.Query(e.RootEnv(), xquery.MustParseQuery("//c"))
	eps := qc.Ret.EndpointParents()
	if len(eps) != 1 {
		t.Fatalf("endpoints = %v", eps)
	}
	if eps[0].Sym != "c" || eps[0].IsRoot {
		t.Errorf("endpoint = %+v", eps[0])
	}
	if !reflect.DeepEqual(eps[0].Parents, []string{"a", "b"}) {
		t.Errorf("parents = %v", eps[0].Parents)
	}
	// Root endpoint.
	root := e.RootSet().EndpointParents()
	if len(root) != 1 || !root[0].IsRoot || root[0].Sym != "doc" {
		t.Errorf("root endpoint = %+v", root)
	}
}
