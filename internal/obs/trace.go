package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one finished trace interval, offsets relative to the trace
// start. Spans form a tree via Depth (pre-order listing). A span with
// Mark set was recorded as an instant phase point (a guard fault-point
// boundary); its duration extends to the next point at the same level
// or its parent's end, so the flat mark sequence fingerprint → lookup
// → infer reads as a phase breakdown.
type Span struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Detail  string `json:"detail,omitempty"`
	Mark    bool   `json:"mark,omitempty"`
	// Nodes and Chains snapshot the request budget's consumption at
	// the point (phase marks inside budgeted engine code only).
	Nodes  int `json:"nodes,omitempty"`
	Chains int `json:"chains,omitempty"`
}

// rec is the mutable in-flight form of a span.
type rec struct {
	name          string
	detail        string
	parent        int
	depth         int
	start         time.Duration
	end           time.Duration // -1 while open
	mark          bool
	nodes, chains int
}

// maxSpans bounds one trace; a pathological ladder cannot balloon the
// recorder. Overflow is counted, not grown.
const maxSpans = 256

// Trace records the span tree of one request. Construct with
// NewTrace, carry through the request with NewContext, finish exactly
// once with Finish. A nil *Trace is valid: every method no-ops, so
// instrumentation sites never branch on whether tracing is on.
//
// The handler and the pool worker touch the trace from different
// goroutines (sequentially in the normal case, concurrently only when
// the client gives up and the worker finishes in the background), so
// every method takes the mutex; after Finish, late records are
// dropped.
type Trace struct {
	mu       sync.Mutex
	now      func() time.Time
	t0       time.Time
	recs     []rec
	stack    []int // open span indices, innermost last
	dropped  int
	finished bool
	total    time.Duration
}

// NewTrace starts a trace on the given clock (required: the serving
// layer injects its clock so tests freeze it). Creating the first
// trace in the process installs the guard trace hook, turning the
// existing fault-point boundaries into phase marks.
func NewTrace(now func() time.Time) *Trace {
	arm()
	t := &Trace{now: now, t0: now()}
	t.recs = make([]rec, 0, 32)
	return t
}

// SpanHandle ends or annotates one started span. The zero value (from
// a nil trace) no-ops.
type SpanHandle struct {
	t   *Trace
	idx int
}

// Start opens a span under the innermost open span and returns its
// handle. On a nil trace it returns a no-op handle.
func (t *Trace) Start(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished || len(t.recs) >= maxSpans {
		t.dropped++
		return SpanHandle{}
	}
	parent := -1
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	idx := len(t.recs)
	t.recs = append(t.recs, rec{
		name:   name,
		parent: parent,
		depth:  len(t.stack),
		start:  t.now().Sub(t.t0),
		end:    -1,
	})
	t.stack = append(t.stack, idx)
	return SpanHandle{t: t, idx: idx}
}

// End closes the span (and any forgotten children still open inside
// it, so a panic unwinding past instrumentation cannot wedge the
// stack).
func (s SpanHandle) End() {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return
	}
	end := t.now().Sub(t.t0)
	for len(t.stack) > 0 {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.recs[top].end = end
		if top == s.idx {
			return
		}
	}
}

// Annotate attaches a short detail string ("plan=warm",
// "degraded from chains-exact") to the span.
func (s SpanHandle) Annotate(detail string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.t.finished {
		return
	}
	s.t.recs[s.idx].detail = detail
}

// Mark records an instant phase point under the innermost open span —
// the guard trace hook calls it at every fault-point boundary. Nodes
// and chains snapshot the budget's consumption (zero outside budgeted
// code). Finish extends each mark to the next sibling or the parent's
// end, so marks become the phase breakdown of their parent span.
func (t *Trace) Mark(point string, nodes, chains int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished || len(t.recs) >= maxSpans {
		t.dropped++
		return
	}
	parent := -1
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	at := t.now().Sub(t.t0)
	t.recs = append(t.recs, rec{
		name:   point,
		parent: parent,
		depth:  len(t.stack),
		start:  at,
		end:    at,
		mark:   true,
		nodes:  nodes,
		chains: chains,
	})
}

// Dropped reports spans discarded after the recorder filled.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Finish seals the trace and returns the span tree in recording
// (pre-order) order: open spans are closed at the finish instant,
// each mark is extended to the start of the next record under the
// same parent (or the parent's end), and late records from a
// background worker are dropped from then on. Finish is idempotent —
// later calls return the sealed result.
func (t *Trace) Finish() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		t.finished = true
		t.total = t.now().Sub(t.t0)
		for i := range t.recs {
			if t.recs[i].end < 0 {
				t.recs[i].end = t.total
			}
		}
		// Extend marks: a mark's phase lasts until the next record under
		// the same parent begins, bounded by the parent's end.
		for i := range t.recs {
			if !t.recs[i].mark {
				continue
			}
			end := t.total
			if p := t.recs[i].parent; p >= 0 {
				end = t.recs[p].end
			}
			for j := i + 1; j < len(t.recs); j++ {
				if t.recs[j].parent == t.recs[i].parent {
					if t.recs[j].start < end {
						end = t.recs[j].start
					}
					break
				}
			}
			if end > t.recs[i].start {
				t.recs[i].end = end
			}
		}
	}
	out := make([]Span, len(t.recs))
	for i, r := range t.recs {
		out[i] = Span{
			Name:    r.name,
			Depth:   r.depth,
			StartUS: r.start.Microseconds(),
			DurUS:   (r.end - r.start).Microseconds(),
			Detail:  r.detail,
			Mark:    r.mark,
			Nodes:   r.nodes,
			Chains:  r.chains,
		}
	}
	return out
}

// Total returns the sealed trace duration (zero before Finish).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteTree renders a finished span list as an indented tree — the
// output of xqindep -trace. Marks render with a leading "· ".
func WriteTree(w io.Writer, spans []Span) {
	for _, sp := range spans {
		indent := strings.Repeat("  ", sp.Depth)
		bullet := ""
		if sp.Mark {
			bullet = "· "
		}
		fmt.Fprintf(w, "%s%s%-*s %8dµs", indent, bullet, 30-len(indent)-len(bullet), sp.Name, sp.DurUS)
		if sp.Nodes > 0 || sp.Chains > 0 {
			fmt.Fprintf(w, "  nodes=%d chains=%d", sp.Nodes, sp.Chains)
		}
		if sp.Detail != "" {
			fmt.Fprintf(w, "  [%s]", sp.Detail)
		}
		fmt.Fprintln(w)
	}
}
