package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. Inc/Add are single
// atomic adds: safe for concurrent use on the hot path, no allocation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram. Observe is lock-free: one
// short linear scan over the bucket bounds (they are few and sit on
// one cache line), one atomic add into the bucket, one CAS loop for
// the float sum. No allocation, safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the base unit every
// latency family uses).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the bucket the q-th observation falls in; an
// observation in the +Inf bucket reports the largest finite bound.
// With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best bound we can report.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if n == 0 {
			return hi
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return 0
}

// DefLatencyBuckets are the default latency bounds in seconds: a
// µs-to-seconds spread matching the workload's two regimes — tens of
// microseconds for a warm plan hit, milliseconds-to-seconds for cold
// compiles and budget-bounded degradations (the paper's ms-scale XMark
// measurements sit in the middle).
var DefLatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// metricKind is the Prometheus family type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // canonical rendered label set, "" or `{k="v",...}`
	c      *Counter
	h      *Histogram
	fn     func() float64 // collected gauges / counter funcs
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration (typically once, at handler
// construction) takes the lock; the returned instruments are used
// lock-free afterwards.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels builds the canonical label string from alternating
// key, value arguments.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register adds a series to its family, creating the family on first
// sight and enforcing one kind and help text per name.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as both %s and %s", name, f.kind, kind))
	}
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
}

// Counter registers (and returns) a counter series. labels are
// alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), c: c})
	return c
}

// Histogram registers (and returns) a histogram series with the given
// ascending upper bounds (seconds for latency families).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: renderLabels(labels), h: h})
	return h
}

// GaugeFunc registers a gauge collected by calling fn at render time —
// the bridge from the existing Stats snapshots (cache residents,
// in-flight counts, quarantined fingerprints) into the registry
// without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), fn: fn})
}

// CounterFunc registers a counter collected by calling fn at render
// time, for monotonic counters that already live in a Stats snapshot.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), fn: fn})
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels appends le="bound" to an already-rendered label set.
func mergeLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WriteTo renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series by label
// set, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var total int64
	var werr error
	p := func(format string, args ...any) {
		if werr != nil {
			return
		}
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		werr = err
	}
	for _, f := range fams {
		p("# HELP %s %s\n", f.name, f.help)
		p("# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.h != nil:
				var cum uint64
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					p("%s_bucket%s %d\n", f.name, mergeLabels(s.labels, formatFloat(b)), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				p("%s_bucket%s %d\n", f.name, mergeLabels(s.labels, "+Inf"), cum)
				p("%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
				p("%s_count%s %d\n", f.name, s.labels, cum)
			case s.c != nil:
				p("%s%s %d\n", f.name, s.labels, s.c.Value())
			default:
				p("%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			}
		}
	}
	return total, werr
}

// Summary is the /statz quantile digest of one histogram series.
type Summary struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Summaries digests every histogram series (sorted by name then label
// set) for the /statz metrics section: count, sum and interpolated
// p50/p90/p99. Quantiles are bucket estimates — the same numbers a
// Prometheus histogram_quantile would produce from /metricz.
func (r *Registry) Summaries() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Summary
	for _, n := range names {
		f := r.fams[n]
		if f.kind != kindHistogram {
			continue
		}
		for _, s := range f.series {
			out = append(out, Summary{
				Name:   f.name,
				Labels: s.labels,
				Count:  s.h.Count(),
				Sum:    s.h.Sum(),
				P50:    s.h.Quantile(0.50),
				P90:    s.h.Quantile(0.90),
				P99:    s.h.Quantile(0.99),
			})
		}
	}
	return out
}
