package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// The exposition output is the contract with every scraper: golden-test
// it exactly. A standalone registry is fully deterministic — no clock,
// no process-global state.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests by outcome.", "outcome", "ok")
	cBad := r.Counter("test_requests_total", "Requests by outcome.", "outcome", "bad")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	r.GaugeFunc("test_resident", "Resident things.", func() float64 { return 3 })

	c.Add(5)
	cBad.Inc()
	h.Observe(0.0005) // first bucket
	h.Observe(0.0005) // first bucket
	h.Observe(0.05)   // third bucket
	h.Observe(2)      // +Inf bucket

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 2
test_latency_seconds_bucket{le="0.01"} 2
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 2.051
test_latency_seconds_count 4
# HELP test_requests_total Requests by outcome.
# TYPE test_requests_total counter
test_requests_total{outcome="bad"} 1
test_requests_total{outcome="ok"} 5
# HELP test_resident Resident things.
# TYPE test_resident gauge
test_resident 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 10 observations uniform in (0,1]: p50 interpolates inside the
	// first bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q != 0.5 {
		t.Errorf("p50 of 10 first-bucket observations = %v, want 0.5 (interpolated)", q)
	}
	// An observation beyond every bound reports the largest finite
	// bound — the histogram cannot know more.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("p99 in +Inf bucket = %v, want largest bound 2", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", q)
	}
}

func TestSummaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s_latency_seconds", "x", []float64{1, 2}, "rung", "chains")
	r.Counter("s_total", "x") // counters must not appear in summaries
	h.Observe(0.5)
	h.Observe(1.5)
	sums := r.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d entries, want 1", len(sums))
	}
	s := sums[0]
	if s.Name != "s_latency_seconds" || s.Labels != `{rung="chains"}` {
		t.Errorf("summary identity = %q %q", s.Name, s.Labels)
	}
	if s.Count != 2 || s.Sum != 2 {
		t.Errorf("summary count/sum = %d/%v, want 2/2", s.Count, s.Sum)
	}
	if s.P50 <= 0 || s.P99 > 2 {
		t.Errorf("summary quantiles out of range: %+v", s)
	}
}

func TestRegisterMisusePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("m_total", "x")
	mustPanic("duplicate series", func() { r.Counter("m_total", "x") })
	mustPanic("kind mismatch", func() { r.Histogram("m_total", "x", []float64{1}) })
	mustPanic("odd labels", func() { r.Counter("m2_total", "x", "k") })
	mustPanic("unsorted bounds", func() { newHistogram([]float64{2, 1}) })
}

// The instruments are written from every pool worker concurrently; the
// race detector must stay silent and the float sum must not lose
// updates to a torn CAS.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	h := r.Histogram("cc_seconds", "x", DefLatencyBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := float64(workers*per) * 0.001; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// The hot-path instruments must never allocate: they run inside every
// request on every worker.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("al_total", "x")
	h := r.Histogram("al_seconds", "x", DefLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %v per call", n)
	}
}
