package obs

import (
	"sync"
	"time"
)

// RingEntry is one retained trace: the request summary the operator
// needs to reproduce it, plus the finished span tree.
type RingEntry struct {
	// When is the request start on the serving clock.
	When time.Time `json:"when"`
	// TotalUS is the request wall-clock total in microseconds — the
	// ranking key of the ring.
	TotalUS int64 `json:"total_us"`
	// Schema is the schema fingerprint; Query/Update are the (possibly
	// truncated) source texts; Method/Plan/Outcome summarise what
	// happened.
	Schema  string `json:"schema,omitempty"`
	Query   string `json:"query,omitempty"`
	Update  string `json:"update,omitempty"`
	Method  string `json:"method,omitempty"`
	Plan    string `json:"plan,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Spans   []Span `json:"spans"`
}

// SlowRing retains the N slowest finished traces, slowest first — the
// store behind GET /tracez. Add is called once per traced request
// (after Finish), under one short mutex hold; a request faster than
// the current N slowest is discarded immediately, so steady state
// costs one comparison.
type SlowRing struct {
	mu      sync.Mutex
	max     int
	entries []RingEntry
	added   uint64
	evicted uint64
}

// NewSlowRing returns a ring keeping the max slowest traces
// (minimum 1).
func NewSlowRing(max int) *SlowRing {
	if max < 1 {
		max = 1
	}
	return &SlowRing{max: max}
}

// Add offers a finished trace to the ring. Entries are kept sorted
// slowest first; among equal totals the earlier arrival ranks higher,
// so a flood of identical requests cannot churn the ring.
func (r *SlowRing) Add(e RingEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.added++
	if len(r.entries) >= r.max && e.TotalUS <= r.entries[len(r.entries)-1].TotalUS {
		r.evicted++
		return
	}
	// Insert after the last entry at least as slow (stable for ties).
	i := len(r.entries)
	for i > 0 && r.entries[i-1].TotalUS < e.TotalUS {
		i--
	}
	r.entries = append(r.entries, RingEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
	if len(r.entries) > r.max {
		r.entries = r.entries[:r.max]
		r.evicted++
	}
}

// RingStatus snapshots the ring counters for /statz and /tracez.
type RingStatus struct {
	Capacity int    `json:"capacity"`
	Held     int    `json:"held"`
	Added    uint64 `json:"added"`
	Evicted  uint64 `json:"evicted"`
}

// Status reports the ring counters (zero for a nil ring).
func (r *SlowRing) Status() RingStatus {
	if r == nil {
		return RingStatus{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStatus{Capacity: r.max, Held: len(r.entries), Added: r.added, Evicted: r.evicted}
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRing) Snapshot() []RingEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RingEntry, len(r.entries))
	copy(out, r.entries)
	return out
}
