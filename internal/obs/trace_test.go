package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"xqindep/internal/guard"
)

// tick returns a deterministic clock advancing step per read — every
// trace timestamp in these tests is exact, never approximate.
func tick(step time.Duration) func() time.Time {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// The span tree and the mark-extension semantics: an instant mark
// lasts until the next record under the same parent begins, bounded by
// the parent's end — so a flat sequence of phase marks reads as a
// phase breakdown.
func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(tick(10 * time.Microsecond)) // t0 = tick 0
	a := tr.Start("a")                          // tick 1: start 10µs
	tr.Mark("m1", 7, 3)                         // tick 2: at 20µs
	tr.Mark("m2", 0, 0)                         // tick 3: at 30µs
	a.End()                                     // tick 4: end 40µs
	spans := tr.Finish()                        // tick 5: total 50µs

	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3: %+v", len(spans), spans)
	}
	if s := spans[0]; s.Name != "a" || s.Depth != 0 || s.StartUS != 10 || s.DurUS != 30 || s.Mark {
		t.Errorf("span a = %+v, want start 10 dur 30 depth 0", s)
	}
	// m1 extends to m2's start, m2 to the parent's end.
	if s := spans[1]; s.Name != "m1" || s.Depth != 1 || s.StartUS != 20 || s.DurUS != 10 || !s.Mark || s.Nodes != 7 || s.Chains != 3 {
		t.Errorf("mark m1 = %+v, want start 20 dur 10 nodes 7 chains 3", s)
	}
	if s := spans[2]; s.Name != "m2" || s.StartUS != 30 || s.DurUS != 10 {
		t.Errorf("mark m2 = %+v, want start 30 dur 10 (extends to parent end)", s)
	}
	if got := tr.Total(); got != 50*time.Microsecond {
		t.Errorf("total = %v, want 50µs", got)
	}
}

// Finish is idempotent, seals open spans at the finish instant, and
// drops late records (a background worker finishing after the caller
// gave up must not mutate a served trace).
func TestTraceFinishSealsAndDropsLate(t *testing.T) {
	tr := NewTrace(tick(10 * time.Microsecond))
	tr.Start("open") // tick 1; never ended
	spans := tr.Finish()
	if len(spans) != 1 || spans[0].DurUS != 10 {
		t.Fatalf("open span not sealed at finish: %+v", spans)
	}
	tr.Mark("late", 0, 0)
	tr.Start("later").End()
	again := tr.Finish()
	if len(again) != 1 {
		t.Errorf("late records leaked into a sealed trace: %+v", again)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

// End closes forgotten children, so a panic unwinding past
// instrumentation cannot wedge the open-span stack.
func TestEndClosesForgottenChildren(t *testing.T) {
	tr := NewTrace(tick(10 * time.Microsecond))
	outer := tr.Start("outer") // tick 1
	tr.Start("inner")          // tick 2; never explicitly ended
	outer.End()                // tick 3: closes both
	spans := tr.Finish()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Name != "inner" || spans[1].DurUS != 10 {
		t.Errorf("forgotten child not closed with its parent: %+v", spans[1])
	}
}

// A nil trace is the disabled path: every method must no-op, and a
// context without a trace must yield nil.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.Annotate("y")
	sp.End()
	tr.Mark("m", 0, 0)
	if tr.Finish() != nil || tr.Dropped() != 0 || tr.Total() != 0 {
		t.Error("nil trace methods must return zero values")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on a bare context must be nil")
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	if got := NewContext(context.Background(), nil); got != context.Background() {
		t.Error("NewContext with a nil trace must not wrap the context")
	}
}

// The recorder is bounded: past maxSpans records are counted, not
// stored — a pathological ladder cannot balloon one trace.
func TestTraceBounded(t *testing.T) {
	tr := NewTrace(tick(time.Microsecond))
	for i := 0; i < maxSpans+10; i++ {
		tr.Mark("m", 0, 0)
	}
	if got := len(tr.Finish()); got != maxSpans {
		t.Errorf("spans = %d, want bound %d", got, maxSpans)
	}
	if tr.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", tr.Dropped())
	}
}

// Creating a trace arms the guard hook: fault points fired under a
// trace-carrying context become marks, and contexts without a trace
// stay allocation-free through the armed hook.
func TestGuardHookMarks(t *testing.T) {
	tr := NewTrace(tick(10 * time.Microsecond))
	ctx := NewContext(context.Background(), tr)
	if err := guard.FirePoint(ctx, "test.point"); err != nil {
		t.Fatalf("FirePoint: %v", err)
	}
	spans := tr.Finish()
	if len(spans) != 1 || spans[0].Name != "test.point" || !spans[0].Mark {
		t.Fatalf("fault point did not become a mark: %+v", spans)
	}

	bare := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		if err := guard.FirePoint(bare, "test.point"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("armed hook allocates %v per untraced FirePoint, want 0", n)
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTrace(tick(10 * time.Microsecond))
	a := tr.Start("serve")
	tr.Mark("parse.schema", 5, 2)
	a.Annotate("cold")
	a.End()
	var b strings.Builder
	WriteTree(&b, tr.Finish())
	out := b.String()
	for _, want := range []string{"serve", "· parse.schema", "nodes=5 chains=2", "[cold]"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}
