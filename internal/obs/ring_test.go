package obs

import "testing"

// The ring keeps exactly the N slowest traces, slowest first, and ties
// rank by arrival so a flood of identical requests cannot churn it.
func TestSlowRingOrderAndEviction(t *testing.T) {
	r := NewSlowRing(3)
	for _, us := range []int64{100, 300, 200, 50, 250, 300} {
		r.Add(RingEntry{TotalUS: us, Outcome: "ok"})
	}
	got := r.Snapshot()
	want := []int64{300, 300, 250}
	if len(got) != len(want) {
		t.Fatalf("ring holds %d, want %d", len(got), len(want))
	}
	for i, us := range want {
		if got[i].TotalUS != us {
			t.Errorf("ring[%d] = %dµs, want %dµs (full: %+v)", i, got[i].TotalUS, us, got)
		}
	}
	st := r.Status()
	if st.Capacity != 3 || st.Held != 3 || st.Added != 6 || st.Evicted != 3 {
		t.Errorf("status = %+v, want capacity 3 held 3 added 6 evicted 3", st)
	}
}

// Equal totals keep arrival order: the earlier entry ranks higher and
// a later equal entry at capacity is discarded, not swapped in.
func TestSlowRingStableTies(t *testing.T) {
	r := NewSlowRing(2)
	r.Add(RingEntry{TotalUS: 100, Query: "first"})
	r.Add(RingEntry{TotalUS: 100, Query: "second"})
	r.Add(RingEntry{TotalUS: 100, Query: "third"}) // not slower: discarded
	got := r.Snapshot()
	if len(got) != 2 || got[0].Query != "first" || got[1].Query != "second" {
		t.Errorf("tie order churned: %+v", got)
	}
}

func TestSlowRingNilAndMin(t *testing.T) {
	var r *SlowRing
	r.Add(RingEntry{TotalUS: 1}) // must not panic
	if r.Snapshot() != nil || r.Status() != (RingStatus{}) {
		t.Error("nil ring must report zero values")
	}
	one := NewSlowRing(0) // clamped to 1
	one.Add(RingEntry{TotalUS: 1})
	one.Add(RingEntry{TotalUS: 2})
	if got := one.Snapshot(); len(got) != 1 || got[0].TotalUS != 2 {
		t.Errorf("min-capacity ring = %+v, want the single slowest", got)
	}
}
