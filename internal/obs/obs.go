// Package obs is the observability layer of the analysis service: a
// stdlib-only metrics registry (fixed-bucket histograms, counters and
// collected gauges rendered in the Prometheus text exposition format)
// and a per-request span tracer hung off the context, fired at the
// same phase boundaries the fault-injection points already mark.
//
// The design constraints mirror package faultinject:
//
//   - Zero cost when off. A request served without a trace pays one
//     atomic pointer load per phase point (the guard trace hook) and
//     nothing else — no context values are installed, no spans
//     allocated. TestDisabledPathAllocs pins the disabled path at zero
//     allocations.
//
//   - Cheap when on. Counter.Inc and Histogram.Observe are single
//     atomic adds (the histogram adds a short linear scan over its
//     bucket bounds) — safe for concurrent use from every worker, no
//     allocation, no locks. Tracing does allocate (spans are data),
//     but only on requests that asked for it or when the server keeps
//     a slow-trace ring.
//
//   - Injectable time. Every wall-clock read goes through a caller
//     supplied clock, so handler tests freeze it and golden outputs
//     are deterministic; the xqvet clockinject check enforces this for
//     the package.
//
// The pieces: Registry (metrics.go of the server registers its
// families here and /metricz renders it), Trace (a bounded span
// recorder; spans come from explicit Start/End instrumentation in the
// serving and core layers, marks from the guard trace hook at
// fault-point boundaries), and SlowRing (a bounded ring of the
// slowest finished traces, served on /tracez).
package obs

import (
	"context"
	"sync"

	"xqindep/internal/guard"
)

// ctxKey carries the active *Trace through a request context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace. Engine code retrieves it
// with FromContext; everything between (the pool queue, the budget,
// the fault hook) forwards the context unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace
// methods are nil-safe, so call sites never branch.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// armOnce installs the guard trace hook the first time any trace is
// created. Before that, every Budget.Point/guard.FirePoint pays only
// the nil atomic load it always paid; after it, points on contexts
// without a trace pay the load plus one context probe — still zero
// allocations (pinned by test).
var armOnce sync.Once

func arm() {
	armOnce.Do(func() {
		guard.SetTraceHook(func(ctx context.Context, point string, nodes, chains int) {
			FromContext(ctx).Mark(point, nodes, chains)
		})
	})
}
