package chain

import "xqindep/internal/dtd"

// Interned is a chain over the dense symbol IDs of one compiled
// schema — the representation the CDAG engine's tables are indexed
// by. Comparing interned chains is integer-wise (no string hashing),
// which is what makes bulk prefix probes over large chain sets cheap;
// the string Chain remains the canonical interchange and display
// form. An Interned chain is only meaningful against the Compiled
// artifact whose IDs it carries.
type Interned []dtd.SymID

// Intern resolves every symbol of c against the compiled schema. The
// second result is false when some symbol is not part of Σ (e.g. a
// constructed tag), in which case no interned form exists.
func Intern(c Chain, comp *dtd.Compiled) (Interned, bool) {
	if len(c) == 0 {
		return nil, true
	}
	out := make(Interned, len(c))
	for i, name := range c {
		s, ok := comp.SymOf(name)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// Names maps the interned chain back to its string form.
func (c Interned) Names(comp *dtd.Compiled) Chain {
	if len(c) == 0 {
		return nil
	}
	out := make(Chain, len(c))
	for i, s := range c {
		out[i] = comp.NameOf(s)
	}
	return out
}

// Len returns the number of symbols.
func (c Interned) Len() int { return len(c) }

// IsEmpty reports whether c is the empty chain.
func (c Interned) IsEmpty() bool { return len(c) == 0 }

// Last returns the final symbol; it panics on the empty chain.
func (c Interned) Last() dtd.SymID { return c[len(c)-1] }

// Equal reports symbol-wise equality.
func (c Interned) Equal(d Interned) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports c ⪯ d over interned symbols.
func (c Interned) IsPrefixOf(d Interned) bool {
	if len(c) > len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Valid reports whether consecutive symbols are related by ⇒d — the
// Definition 2.1 side condition, checkable in O(n) bitset probes
// against the compiled successor tables.
func (c Interned) Valid(comp *dtd.Compiled) bool {
	for i := 0; i+1 < len(c); i++ {
		if !comp.ChildSet(c[i]).Has(int(c[i+1])) {
			return false
		}
	}
	return true
}
