package chain

import (
	"reflect"
	"testing"

	"xqindep/internal/dtd"
)

func TestParseChainRejectsEmptySymbols(t *testing.T) {
	cases := []struct {
		in   string
		want Chain // nil means error expected when wantErr
		err  bool
	}{
		{in: "", want: nil},
		{in: "doc", want: Chain{"doc"}},
		{in: "doc.a.c", want: Chain{"doc", "a", "c"}},
		{in: ".", err: true},
		{in: "a..b", err: true},
		{in: ".a", err: true},
		{in: "a.", err: true},
		{in: "..", err: true},
		{in: "a...b", err: true},
	}
	for _, c := range cases {
		got, err := ParseChain(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseChain(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseChain(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseChain(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseUpdateChainRejectsEmptySymbols(t *testing.T) {
	good, err := ParseUpdateChain("bib.book:author.first")
	if err != nil || good.Target.String() != "bib.book" || good.Change.String() != "author.first" {
		t.Fatalf("ParseUpdateChain = %v, %v", good, err)
	}
	for _, in := range []string{"a..b:c", "a:b..c", ".a:b", "a.:b", "a:.b", "a:b."} {
		if u, err := ParseUpdateChain(in); err == nil {
			t.Errorf("ParseUpdateChain(%q) = %v, want error", in, u)
		}
	}
}

func TestMustParsePanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseChain on malformed input did not panic")
		}
	}()
	MustParseChain("a..b")
}

var internDTD = dtd.MustParse(`
bib <- book*
book <- title, author*
title <- #PCDATA
author <- #PCDATA
`)

func TestInternedRoundTrip(t *testing.T) {
	comp, err := dtd.NewCompiled(internDTD)
	if err != nil {
		t.Fatal(err)
	}
	c := MustParseChain("bib.book.title.S")
	ic, ok := Intern(c, comp)
	if !ok {
		t.Fatal("Intern failed on schema symbols")
	}
	if got := ic.Names(comp); !got.Equal(c) {
		t.Errorf("round trip = %v, want %v", got, c)
	}
	if ic.Len() != 4 || ic.IsEmpty() || comp.NameOf(ic.Last()) != dtd.StringType {
		t.Errorf("interned shape wrong: %v", ic)
	}
	if !ic.Valid(comp) {
		t.Error("schema-valid chain reported invalid")
	}
	if empty, ok := Intern(nil, comp); !ok || empty != nil || !empty.IsEmpty() {
		t.Errorf("empty chain interning = %v, %v", empty, ok)
	}
	if _, ok := Intern(MustParseChain("bib.nosuch"), comp); ok {
		t.Error("interning an out-of-alphabet symbol must fail")
	}
}

func TestInternedPrefixAndEqual(t *testing.T) {
	comp, err := dtd.NewCompiled(internDTD)
	if err != nil {
		t.Fatal(err)
	}
	intern := func(s string) Interned {
		ic, ok := Intern(MustParseChain(s), comp)
		if !ok {
			t.Fatalf("intern %q", s)
		}
		return ic
	}
	a, ab := intern("bib.book"), intern("bib.book.author")
	if !a.IsPrefixOf(ab) || ab.IsPrefixOf(a) {
		t.Error("interned prefix relation wrong")
	}
	if !a.Equal(intern("bib.book")) || a.Equal(ab) {
		t.Error("interned equality wrong")
	}
	// Mirrors the string-level relation exactly.
	if a.IsPrefixOf(ab) != MustParseChain("bib.book").IsPrefixOf(MustParseChain("bib.book.author")) {
		t.Error("interned and string prefix disagree")
	}
	bad := Interned{comp.StringSym(), comp.Start()}
	if bad.Valid(comp) {
		t.Error("S cannot derive further symbols")
	}
}
