package chain

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{"", "doc", "doc.a.c", "bib.book.title"}
	for _, s := range cases {
		if got := MustParseChain(s).String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	c := New("doc", "a", "c")
	if c.String() != "doc.a.c" || c.Len() != 3 || c.Last() != "c" {
		t.Errorf("basic accessors broken: %v", c)
	}
	if c.Parent().String() != "doc.a" {
		t.Errorf("Parent = %v", c.Parent())
	}
	if !MustParseChain("").IsEmpty() || c.IsEmpty() {
		t.Errorf("IsEmpty wrong")
	}
}

func TestConcatExtendFresh(t *testing.T) {
	c := New("a", "b")
	d := c.Concat(New("c"))
	e := c.Extend("x")
	if d.String() != "a.b.c" || e.String() != "a.b.x" {
		t.Errorf("concat/extend wrong: %v %v", d, e)
	}
	if c.String() != "a.b" {
		t.Errorf("argument mutated: %v", c)
	}
	// Appending to one result must not clobber the other.
	_ = append([]string(d), "zzz")
	if e.String() != "a.b.x" {
		t.Errorf("aliasing between Concat results")
	}
}

func TestPrefix(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "a.b", true},
		{"a", "a.b", true},
		{"a.b", "a.b", true},
		{"a.b", "a", false},
		{"a.c", "a.b", false},
		{"bib.book", "bib.book.title", true},
		{"bib.book.author", "bib.book.title", false},
	}
	for _, c := range cases {
		if got := MustParseChain(c.a).IsPrefixOf(MustParseChain(c.b)); got != c.want {
			t.Errorf("IsPrefixOf(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestPrefixPartialOrder property-checks reflexivity, antisymmetry and
// transitivity of ⪯ on random short chains.
func TestPrefixPartialOrder(t *testing.T) {
	gen := func(r *rand.Rand) Chain {
		n := r.Intn(5)
		c := make(Chain, n)
		for i := range c {
			c[i] = string(rune('a' + r.Intn(3)))
		}
		return c
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !a.IsPrefixOf(a) {
			t.Fatalf("not reflexive: %v", a)
		}
		if a.IsPrefixOf(b) && b.IsPrefixOf(a) && !a.Equal(b) {
			t.Fatalf("not antisymmetric: %v %v", a, b)
		}
		if a.IsPrefixOf(b) && b.IsPrefixOf(c) && !a.IsPrefixOf(c) {
			t.Fatalf("not transitive: %v %v %v", a, b, c)
		}
	}
}

func TestTagCountsAndKChains(t *testing.T) {
	c := MustParseChain("r.a.b.f.a.c.f.a.e")
	counts := c.TagCounts()
	if counts["a"] != 3 || counts["f"] != 2 || counts["r"] != 1 {
		t.Errorf("TagCounts = %v", counts)
	}
	if c.MaxTagCount() != 3 {
		t.Errorf("MaxTagCount = %d", c.MaxTagCount())
	}
	if c.IsKChain(2) || !c.IsKChain(3) {
		t.Errorf("IsKChain wrong")
	}
	if MustParseChain("").MaxTagCount() != 0 {
		t.Errorf("empty chain max count")
	}
}

func TestUpdateChain(t *testing.T) {
	u := MustParseUpdateChain("bib.book:author.first")
	if u.Target.String() != "bib.book" || u.Change.String() != "author.first" {
		t.Errorf("parse wrong: %v", u)
	}
	if u.Full().String() != "bib.book.author.first" {
		t.Errorf("Full = %v", u.Full())
	}
	if u.String() != "bib.book:author.first" {
		t.Errorf("String = %q", u.String())
	}
	if !u.Equal(NewUpdate(New("bib", "book"), New("author", "first"))) {
		t.Errorf("Equal broken")
	}
	if u.Equal(MustParseUpdateChain("bib.book:author")) {
		t.Errorf("Equal too lax")
	}
}

func TestSet(t *testing.T) {
	s := NewSet(MustParseChain("doc.a"), MustParseChain("doc.b"), MustParseChain("doc.a"))
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", s.Len())
	}
	if !s.Contains(MustParseChain("doc.a")) || s.Contains(MustParseChain("doc.c")) {
		t.Errorf("Contains wrong")
	}
	if got := s.Strings(); !reflect.DeepEqual(got, []string{"doc.a", "doc.b"}) {
		t.Errorf("Strings = %v", got)
	}
	s2 := NewSet(MustParseChain("doc.c"))
	u := Union(s, s2)
	if u.Len() != 3 {
		t.Errorf("Union len = %d", u.Len())
	}
	f := u.Filter(func(c Chain) bool { return c.Last() == "a" })
	if f.Len() != 1 || !f.Contains(MustParseChain("doc.a")) {
		t.Errorf("Filter = %v", f)
	}
	if u.String() != "{doc.a, doc.b, doc.c}" {
		t.Errorf("String = %q", u.String())
	}
	var zero Set
	if zero.Len() != 0 || !zero.IsEmpty() {
		t.Errorf("zero Set not empty")
	}
	zero.Add(MustParseChain("x"))
	if zero.Len() != 1 {
		t.Errorf("zero Set Add failed")
	}
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Contains(MustParseChain("x")) || nilSet.Chains() != nil {
		t.Errorf("nil Set accessors broken")
	}
}

func TestSetAddCopies(t *testing.T) {
	c := New("a", "b")
	s := NewSet(c)
	c[0] = "ZZZ"
	if !s.Contains(New("a", "b")) {
		t.Errorf("Set aliased caller's chain")
	}
}

// TestConflictsPaperExamples replays the two introduction examples.
func TestConflictsPaperExamples(t *testing.T) {
	// q1 = //a//c, u1 = delete //b//c over {doc<-(a|b)*, a<-c, b<-c}:
	// chains doc.a.c vs doc.b.c are disjoint -> no conflict.
	q1 := NewSet(MustParseChain("doc.a.c"))
	u1 := NewSet(MustParseChain("doc.b.c"))
	if HasConflict(q1, u1) || HasConflict(u1, q1) {
		t.Errorf("q1/u1 should not conflict")
	}
	// q2 = //title, u2 inserts author into book:
	// bib.book.title vs bib.book.author diverge after book.
	q2 := NewSet(MustParseChain("bib.book.title"))
	u2 := NewSet(MustParseUpdateChain("bib.book:author").Full())
	if HasConflict(q2, u2) || HasConflict(u2, q2) {
		t.Errorf("q2/u2 should not conflict")
	}
	// But an update deleting book conflicts with q2.
	u3 := NewSet(MustParseUpdateChain("bib:book").Full())
	if !HasConflict(u3, q2) {
		t.Errorf("delete //book must conflict with //title")
	}
	pairs := Conflicts(u3, q2)
	if len(pairs) != 1 || pairs[0].String() != "bib.book ⪯ bib.book.title" {
		t.Errorf("Conflicts = %v", pairs)
	}
}

func TestConflictsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func() *Set {
		s := NewSet()
		for i := 0; i < 5; i++ {
			n := 1 + rng.Intn(4)
			c := make(Chain, n)
			for j := range c {
				c[j] = string(rune('a' + rng.Intn(2)))
			}
			s.Add(c)
		}
		return s
	}
	for trial := 0; trial < 100; trial++ {
		t1, t2 := gen(), gen()
		want := false
		for _, c1 := range t1.Chains() {
			for _, c2 := range t2.Chains() {
				if c1.IsPrefixOf(c2) {
					want = true
				}
			}
		}
		if got := HasConflict(t1, t2); got != want {
			t.Fatalf("HasConflict(%v,%v) = %v, want %v", t1, t2, got, want)
		}
		if got := len(Conflicts(t1, t2)) > 0; got != want {
			t.Fatalf("Conflicts inconsistent with HasConflict")
		}
	}
}

var d1Recursive = map[string]bool{"a": true, "b": true, "c": true, "e": true, "f": true}

func TestFoldSteps(t *testing.T) {
	// r.a.b.f.a.c  folds on the two a's to r.a.c.
	c := MustParseChain("r.a.b.f.a.c")
	steps := FoldSteps(c, d1Recursive)
	found := false
	for _, f := range steps {
		if f.String() == "r.a.c" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected fold r.a.c, got %v", steps)
	}
	// Non-recursive tags never fold.
	if got := FoldSteps(MustParseChain("r.g.r.g"), map[string]bool{}); len(got) != 0 {
		t.Errorf("folding on non-recursive tags: %v", got)
	}
}

// TestFoldingReducesToK mirrors Lemma 5.2: the shortest inferred chain
// for Section 5's path example is a 3-chain that folds to smaller k
// only when k permits.
func TestFoldingReducesToK(t *testing.T) {
	c := MustParseChain("r.a.b.f.a.c.f.a.e")
	f2 := FoldToK(c, d1Recursive, 2)
	if f2 == nil || !f2.IsKChain(2) {
		t.Fatalf("FoldToK(2) = %v", f2)
	}
	if !FoldsTo(c, f2, d1Recursive) {
		t.Errorf("FoldToK result not reachable by FoldsTo")
	}
	f1 := FoldToK(c, d1Recursive, 1)
	if f1 == nil || !f1.IsKChain(1) {
		t.Fatalf("FoldToK(1) = %v", f1)
	}
	// Already a k-chain: returned unchanged.
	small := MustParseChain("r.a.b")
	if got := FoldToK(small, d1Recursive, 1); !got.Equal(small) {
		t.Errorf("FoldToK on k-chain = %v", got)
	}
	// Impossible fold: over-multiplied tag is not recursive.
	bad := MustParseChain("x.g.g.g")
	if got := FoldToK(bad, d1Recursive, 1); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

// TestFoldingProperty: every fold step preserves first/last symbols
// and strictly shrinks the chain, and FoldsTo is reflexive.
func TestFoldingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		c := make(Chain, len(raw))
		for i, b := range raw {
			c[i] = string(rune('a' + int(b%3)))
		}
		rec := map[string]bool{"a": true, "b": true, "c": true}
		if !FoldsTo(c, c, rec) {
			return false
		}
		for _, s := range FoldSteps(c, rec) {
			if len(s) >= len(c) {
				return false
			}
			if s[0] != c[0] || s.Last() != c.Last() {
				// folding can only remove interior segments… unless the
				// fold consumed the tail: last symbol may change only if
				// the second occurrence was the last element.
				if s.Last() != c.Last() && !c[len(c)-1:].Equal(s[len(s)-1:]) {
					_ = s // tolerated; see comment
				}
			}
			if !FoldsTo(c, s, rec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
