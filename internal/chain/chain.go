// Package chain implements the paper's central data objects: chains
// of types (Definition 2.1), update chains c:c' (Section 3), the
// prefix relation and conflict sets (Definition 4.1), k-chains and the
// folding relation ↪→d (Section 5).
package chain

import (
	"fmt"
	"sort"
	"strings"
)

// A Chain is a sequence of type symbols α1.α2...αn such that
// consecutive symbols are related by ⇒d (for chains over a DTD) — or,
// for element chains, a constructed-tag followed by a schema suffix.
// Chains are value-like: functions return fresh slices and never
// mutate their arguments.
type Chain []string

// New builds a chain from symbols.
func New(syms ...string) Chain { return Chain(syms) }

// ParseChain parses the dotted notation "doc.a.c". An empty string is
// the empty chain. Input spelling an empty symbol — consecutive,
// leading or trailing dots — is malformed and rejected: silently
// producing a chain with "" symbols would corrupt prefix comparisons
// (every chain would appear to extend "a."-style prefixes).
func ParseChain(s string) (Chain, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("chain: malformed %q: empty symbol", s)
		}
	}
	return Chain(parts), nil
}

// MustParseChain is ParseChain for known-good literals (tests,
// fixtures); it panics on malformed input.
func MustParseChain(s string) Chain {
	c, err := ParseChain(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the chain in the paper's dotted notation.
func (c Chain) String() string { return strings.Join([]string(c), ".") }

// Len returns the number of symbols.
func (c Chain) Len() int { return len(c) }

// IsEmpty reports whether c is the empty chain.
func (c Chain) IsEmpty() bool { return len(c) == 0 }

// Last returns the final symbol; it panics on the empty chain.
func (c Chain) Last() string { return c[len(c)-1] }

// Parent returns the chain without its final symbol (the chain of the
// parent node); it panics on the empty chain.
func (c Chain) Parent() Chain { return c[:len(c)-1] }

// Concat returns c.c2 as a fresh chain.
func (c Chain) Concat(c2 Chain) Chain {
	out := make(Chain, 0, len(c)+len(c2))
	out = append(out, c...)
	out = append(out, c2...)
	return out
}

// Extend returns c.α as a fresh chain.
func (c Chain) Extend(sym string) Chain {
	out := make(Chain, 0, len(c)+1)
	out = append(out, c...)
	return append(out, sym)
}

// Equal reports symbol-wise equality.
func (c Chain) Equal(d Chain) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports c ⪯ d: d = c.c' for some (possibly empty) c'.
func (c Chain) IsPrefixOf(d Chain) bool {
	if len(c) > len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// TagCounts returns the multiplicity of each symbol in c.
func (c Chain) TagCounts() map[string]int {
	m := make(map[string]int, len(c))
	for _, s := range c {
		m[s]++
	}
	return m
}

// MaxTagCount returns the largest multiplicity of any symbol in c;
// 0 for the empty chain.
func (c Chain) MaxTagCount() int {
	max := 0
	for _, n := range c.TagCounts() {
		if n > max {
			max = n
		}
	}
	return max
}

// IsKChain reports whether c is a k-chain: every tag occurs at most k
// times (Section 5).
func (c Chain) IsKChain(k int) bool { return c.MaxTagCount() <= k }

// Clone returns a copy of c.
func (c Chain) Clone() Chain { return append(Chain(nil), c...) }

// An UpdateChain c:c' types a change made by an update: the Target
// prefix c types the node whose content may change, the Change suffix
// c' types the modified children or new/removed descendants involved
// (Section 3). The change suffix of a well-formed update chain is
// never empty.
type UpdateChain struct {
	Target Chain
	Change Chain
}

// NewUpdate builds an update chain.
func NewUpdate(target, change Chain) UpdateChain {
	return UpdateChain{Target: target.Clone(), Change: change.Clone()}
}

// ParseUpdateChain parses "doc.a:b.c" notation, rejecting empty
// symbols in either component under the same rule as ParseChain.
func ParseUpdateChain(s string) (UpdateChain, error) {
	t, c, _ := strings.Cut(s, ":")
	tc, err := ParseChain(t)
	if err != nil {
		return UpdateChain{}, err
	}
	cc, err := ParseChain(c)
	if err != nil {
		return UpdateChain{}, err
	}
	return UpdateChain{Target: tc, Change: cc}, nil
}

// MustParseUpdateChain is ParseUpdateChain for known-good literals; it
// panics on malformed input.
func MustParseUpdateChain(s string) UpdateChain {
	u, err := ParseUpdateChain(s)
	if err != nil {
		panic(err)
	}
	return u
}

// Full returns the concatenation c.c' — the chain typing the deepest
// changed nodes.
func (u UpdateChain) Full() Chain { return u.Target.Concat(u.Change) }

// String renders the paper's c:c' notation.
func (u UpdateChain) String() string { return u.Target.String() + ":" + u.Change.String() }

// Equal reports component-wise equality.
func (u UpdateChain) Equal(v UpdateChain) bool {
	return u.Target.Equal(v.Target) && u.Change.Equal(v.Change)
}

// A Set is a set of chains with canonical string keys. The zero value
// is an empty set ready for use (but prefer NewSet for clarity).
type Set struct {
	m map[string]Chain
}

// NewSet builds a set holding the given chains.
func NewSet(chains ...Chain) *Set {
	s := &Set{m: make(map[string]Chain, len(chains))}
	for _, c := range chains {
		s.Add(c)
	}
	return s
}

// Add inserts c, returning true when it was not yet present.
func (s *Set) Add(c Chain) bool {
	if s.m == nil {
		s.m = make(map[string]Chain)
	}
	k := c.String()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = c.Clone()
	return true
}

// AddAll inserts every chain of t.
func (s *Set) AddAll(t *Set) {
	if t == nil {
		return
	}
	for _, c := range t.m {
		s.Add(c)
	}
}

// Contains reports membership.
func (s *Set) Contains(c Chain) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[c.String()]
	return ok
}

// Len returns the number of chains.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// IsEmpty reports whether the set has no chains.
func (s *Set) IsEmpty() bool { return s.Len() == 0 }

// Chains returns the chains sorted by their string form.
func (s *Set) Chains() []Chain {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Chain, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Strings returns the sorted dotted forms; convenient in tests.
func (s *Set) Strings() []string {
	cs := s.Chains()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// Union returns a fresh set holding all chains of the operands.
func Union(sets ...*Set) *Set {
	out := NewSet()
	for _, s := range sets {
		out.AddAll(s)
	}
	return out
}

// Filter returns the chains satisfying pred.
func (s *Set) Filter(pred func(Chain) bool) *Set {
	out := NewSet()
	if s == nil {
		return out
	}
	for _, c := range s.m {
		if pred(c) {
			out.Add(c)
		}
	}
	return out
}

// String renders the set as {c1, c2, ...} in sorted order.
func (s *Set) String() string {
	return "{" + strings.Join(s.Strings(), ", ") + "}"
}

// A ConflictPair witnesses a prefix conflict (c1, c2) with c1 ⪯ c2
// (Definition 4.1); Left/Right record which chain played which role.
type ConflictPair struct {
	Left, Right Chain
}

func (p ConflictPair) String() string {
	return p.Left.String() + " ⪯ " + p.Right.String()
}

// Conflicts computes confl(τ1, τ2) = {(c1,c2) | c1∈τ1, c2∈τ2, c1 ⪯ c2}.
func Conflicts(t1, t2 *Set) []ConflictPair {
	var out []ConflictPair
	for _, c1 := range t1.Chains() {
		for _, c2 := range t2.Chains() {
			if c1.IsPrefixOf(c2) {
				out = append(out, ConflictPair{Left: c1, Right: c2})
			}
		}
	}
	return out
}

// HasConflict reports whether confl(τ1, τ2) is non-empty, without
// materialising the pairs.
func HasConflict(t1, t2 *Set) bool {
	for _, c1 := range t1.Chains() {
		for _, c2 := range t2.Chains() {
			if c1.IsPrefixOf(c2) {
				return true
			}
		}
	}
	return false
}
