package chain

// This file implements the folding relation ↪→d of Section 5:
//
//	↪→d = { (c1, c2) | c1 = c.a.c'.a.c''  ∧  c2 = c.a.c'' }
//
// where a is a recursive type of the schema. Folding removes one
// recursive "loop" from a chain; its reflexive-transitive closure maps
// every chain inferred for an expression to a representative k-chain
// (Lemma 5.2), which is what makes the finite analysis complete
// relative to the infinite one.

// FoldSteps returns every chain obtainable from c by a single folding
// step on a recursive type: pick two occurrences of a recursive type a
// and splice out the segment between them (keeping the first a).
func FoldSteps(c Chain, recursive map[string]bool) []Chain {
	var out []Chain
	for i := 0; i < len(c); i++ {
		if !recursive[c[i]] {
			continue
		}
		for j := i + 1; j < len(c); j++ {
			if c[j] != c[i] {
				continue
			}
			// c = c[0:i] . a . c' . a . c'' with the second a at j;
			// fold to c[0:i] . a . c''.
			folded := make(Chain, 0, len(c)-(j-i))
			folded = append(folded, c[:i+1]...)
			folded = append(folded, c[j+1:]...)
			out = append(out, folded)
		}
	}
	return out
}

// FoldToK folds c repeatedly until it is a k-chain, greedily removing
// the longest loops first. It returns nil when no sequence of foldings
// reaches a k-chain (which cannot happen for k ≥ 1 when every
// over-multiplied tag is recursive, per Lemma 5.2).
func FoldToK(c Chain, recursive map[string]bool, k int) Chain {
	if c.IsKChain(k) {
		return c.Clone()
	}
	seen := map[string]bool{c.String(): true}
	frontier := []Chain{c}
	for len(frontier) > 0 {
		var next []Chain
		for _, cur := range frontier {
			for _, f := range FoldSteps(cur, recursive) {
				if f.IsKChain(k) {
					return f
				}
				key := f.String()
				if !seen[key] {
					seen[key] = true
					next = append(next, f)
				}
			}
		}
		frontier = next
	}
	return nil
}

// FoldsTo reports c1 ↪→*d c2: c2 is reachable from c1 by zero or more
// folding steps.
func FoldsTo(c1, c2 Chain, recursive map[string]bool) bool {
	if c1.Equal(c2) {
		return true
	}
	if len(c2) >= len(c1) {
		return false
	}
	seen := map[string]bool{c1.String(): true}
	frontier := []Chain{c1}
	for len(frontier) > 0 {
		var next []Chain
		for _, cur := range frontier {
			for _, f := range FoldSteps(cur, recursive) {
				if f.Equal(c2) {
					return true
				}
				if len(f) <= len(c2) {
					continue
				}
				key := f.String()
				if !seen[key] {
					seen[key] = true
					next = append(next, f)
				}
			}
		}
		frontier = next
	}
	return false
}
