package refcdag

import (
	"fmt"

	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// UpdateSet is the CDAG form of an inferred update-chain set. Full
// chains c.c' are the root→endpoint paths of Full; ChangeRegion marks
// the nodes strictly below a target prefix (the change branches),
// which is what the used-chain conflict check needs.
type UpdateSet struct {
	Full         *Set
	ChangeRegion map[Node]bool
}

func (e *Engine) newUpdateSet() *UpdateSet {
	return &UpdateSet{Full: e.NewSet(), ChangeRegion: make(map[Node]bool)}
}

// AddAll unions t into u.
func (u *UpdateSet) AddAll(t *UpdateSet) {
	u.Full.AddAll(t.Full)
	for n := range t.ChangeRegion {
		u.ChangeRegion[n] = true
	}
}

// IsEmpty reports whether no update chains were inferred.
func (u *UpdateSet) IsEmpty() bool { return u.Full.IsEmpty() }

// Update infers the update-chain DAG of u under Γ, mirroring Table 2
// (with the same (REPLACE) correction as package infer).
func (e *Engine) Update(g Env, u xquery.Update) *UpdateSet {
	e.budget.Tick()
	switch n := u.(type) {
	case xquery.UEmpty:
		return e.newUpdateSet()
	case xquery.USeq:
		out := e.Update(g, n.Left)
		out.AddAll(e.Update(g, n.Right))
		return out
	case xquery.UIf:
		out := e.Update(g, n.Then)
		out.AddAll(e.Update(g, n.Else))
		return out
	case xquery.UFor:
		c1 := e.Query(g, n.In)
		bindings := c1.Ret
		if !c1.Elem.IsEmpty() {
			bindings = e.Union(c1.Ret, c1.Elem)
		}
		out := e.newUpdateSet()
		for _, end := range bindings.Ends() {
			out.AddAll(e.Update(g.Bind(n.Var, bindings.subWithEnd(end)), n.Body))
		}
		return out
	case xquery.ULet:
		c1 := e.Query(g, n.Bind)
		return e.Update(g.Bind(n.Var, e.Union(c1.Ret, c1.Elem)), n.Body)
	case xquery.Delete:
		// Full chains are the target chains; the change suffix is the
		// final symbol.
		r0 := e.Query(g, n.Target).Ret
		out := e.newUpdateSet()
		out.Full.AddAll(r0)
		for end := range r0.ends {
			out.ChangeRegion[end] = true
		}
		return out
	case xquery.Rename:
		r0 := e.Query(g, n.Target).Ret
		out := e.newUpdateSet()
		out.Full.AddAll(r0)
		for end := range r0.ends {
			out.ChangeRegion[end] = true
			if end.Depth == 0 {
				// Renaming the root: the new name becomes a root chain.
				out.Full.roots[n.As] = true
				nn := Node{0, n.As}
				out.Full.ends[nn] = true
				out.ChangeRegion[nn] = true
				continue
			}
			for _, p := range r0.preds(end) {
				out.Full.addEdge(p, n.As)
				nn := Node{end.Depth, n.As}
				out.Full.ends[nn] = true
				out.ChangeRegion[nn] = true
			}
		}
		return out
	case xquery.Insert:
		src := e.Query(g, n.Source)
		r0 := e.Query(g, n.Target).Ret
		out := e.newUpdateSet()
		out.Full.AddAll(r0)
		out.Full.ends = make(map[Node]bool) // targets are prefixes, not ends
		for end := range r0.ends {
			if n.Pos.IsInto() {
				e.graftSource(out, end, src)
				continue
			}
			// before/after: the change happens under the target's
			// parent (INSERT-2); inserting beside the root is
			// impossible.
			for _, p := range r0.preds(end) {
				e.graftSource(out, p, src)
			}
		}
		return out
	case xquery.Replace:
		src := e.Query(g, n.Source)
		r0 := e.Query(g, n.Target).Ret
		out := e.newUpdateSet()
		out.Full.AddAll(r0)
		out.Full.ends = make(map[Node]bool)
		for end := range r0.ends {
			// Removal of the target node: full chain = target chain.
			out.Full.ends[end] = true
			out.ChangeRegion[end] = true
			// Insertion of the source in the target's place.
			for _, p := range r0.preds(end) {
				e.graftSource(out, p, src)
			}
			if end.Depth == 0 {
				// Replacing the root: the source chains become
				// root-level change chains.
				e.graftAtRoots(out, src.Elem)
				for _, sEnd := range src.Ret.Ends() {
					e.graftAtRoots(out, e.SuffixExtensions(sEnd.Sym, e.MaxDepth))
				}
			}
		}
		return out
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("cdag: unknown update node %T", u)})
	}
}

// graftSource attaches the source chains (constructed elements and
// copied input subtrees) below the prefix node, marking the grafted
// branch as change region and its leaves as full-chain ends.
func (e *Engine) graftSource(out *UpdateSet, prefix Node, src QueryChains) {
	e.graftMarked(out, prefix, src.Elem)
	for _, end := range src.Ret.Ends() {
		ext := e.SuffixExtensions(end.Sym, e.MaxDepth)
		e.graftMarked(out, prefix, ext)
	}
}

// graftMarked is Set.graft plus change-region bookkeeping.
func (e *Engine) graftMarked(out *UpdateSet, base Node, t *Set) {
	off := base.Depth + 1
	if off > e.MaxDepth {
		return
	}
	for r := range t.roots {
		out.Full.addEdge(base, r)
		out.ChangeRegion[Node{off, r}] = true
	}
	for from, tos := range t.out {
		if off+from.Depth+1 > e.MaxDepth {
			continue
		}
		sf := Node{off + from.Depth, from.Sym}
		for to := range tos {
			out.Full.addEdge(sf, to)
			out.ChangeRegion[Node{off + from.Depth + 1, to}] = true
		}
	}
	for n := range t.ends {
		if off+n.Depth <= e.MaxDepth {
			nn := Node{off + n.Depth, n.Sym}
			out.Full.ends[nn] = true
			out.ChangeRegion[nn] = true
		}
	}
}

// graftAtRoots merges t as root-level chains of the update DAG,
// marking everything as change region (used when replacing the
// document root).
func (e *Engine) graftAtRoots(out *UpdateSet, t *Set) {
	for r := range t.roots {
		out.Full.roots[r] = true
		out.ChangeRegion[Node{0, r}] = true
	}
	for from, tos := range t.out {
		for to := range tos {
			out.Full.addEdge(from, to)
			out.ChangeRegion[Node{from.Depth + 1, to}] = true
		}
	}
	for n := range t.ends {
		out.Full.ends[n] = true
		out.ChangeRegion[n] = true
	}
}
