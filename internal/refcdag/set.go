// Package cdag is the production chain-inference engine: it
// represents inferred chain sets as depth-indexed DAGs over
// (depth, type) nodes, the paper's CDAG (Section 6.1), making the
// finite analysis polynomial in the schema size and multiplicity k
// (Theorem 6.1).
//
// A Set stands for the set of chains spelled by its root-to-endpoint
// paths. Sharing a node per (depth, type) pair keeps the width bounded
// by the schema size; the price is that merging may introduce artifact
// paths, which can only make the independence analysis more
// conservative, never unsound. Where the paper separates chains of
// different sub-expressions with edge codes, this implementation gives
// every inferred set its own DAG, which isolates sub-expressions at
// least as strongly.
//
// The k-chain bound of the finite analysis (Section 5) is enforced by
// depth: a chain longer than k·|Σeff| must repeat some symbol more
// than k times (pigeonhole), so the DAG is truncated at that depth.
// The resulting universe is a superset of Ck_d, which preserves both
// soundness and completeness relative to the infinite analysis.
package refcdag

import (
	"sort"
	"strings"

	"xqindep/internal/chain"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Node identifies a CDAG node: a type symbol at a depth.
type Node struct {
	Depth int
	Sym   string
}

// Set is a chain set in CDAG representation. The zero value is not
// usable; obtain Sets from an Engine.
type Set struct {
	eng   *Engine
	roots map[string]bool          // symbols at depth 0
	out   map[Node]map[string]bool // successors: node → child symbols
	in    map[Node]map[string]bool // predecessors: node → parent symbols
	ends  map[Node]bool            // endpoints: chains are root→endpoint paths
}

// Engine holds the schema context shared by all sets of one analysis.
type Engine struct {
	D *dtd.DTD
	// K is the multiplicity the engine was built for.
	K int
	// MaxDepth bounds chain length; see the package comment.
	MaxDepth int
	// budget, when non-nil, bounds graph growth and wall-clock time;
	// the hot loops charge it cooperatively (see package guard).
	budget *guard.Budget
}

// WithBudget attaches a resource budget to the engine and returns it;
// a nil budget means unlimited.
func (e *Engine) WithBudget(b *guard.Budget) *Engine {
	e.budget = b
	return e
}

// NewEngine builds an engine for the DTD with the depth bound implied
// by multiplicity k and the number of extra tags constructed by the
// analysed expressions.
//
// The bound is #nonrecursive + extraTags + k·#recursive + 2: a
// non-recursive type can never occur twice on a chain (a repetition
// would close a ⇒d cycle through it), recursive types occur at most k
// times on a k-chain, and constructed tags and the string type occur
// at most once per junction. Any longer chain is not a k-chain, so
// truncating there preserves both soundness and completeness of the
// finite analysis.
func NewEngine(d *dtd.DTD, k int, extraTags int) *Engine {
	if k < 1 {
		k = 1
	}
	rec := len(d.RecursiveTypes())
	nonrec := d.Size() - rec
	return &Engine{D: d, K: k, MaxDepth: nonrec + extraTags + k*rec + 2}
}

// NewSet returns an empty set.
func (e *Engine) NewSet() *Set {
	return &Set{
		eng:   e,
		roots: make(map[string]bool),
		out:   make(map[Node]map[string]bool),
		in:    make(map[Node]map[string]bool),
		ends:  make(map[Node]bool),
	}
}

// addEdge inserts from → (from.Depth+1, to). Every insertion charges
// the engine budget: edge growth is the engine's unit of work, so a
// runaway analysis aborts here long before exhausting memory.
func (s *Set) addEdge(from Node, to string) {
	s.eng.budget.AddNodes(1)
	m := s.out[from]
	if m == nil {
		m = make(map[string]bool)
		s.out[from] = m
	}
	m[to] = true
	tn := Node{from.Depth + 1, to}
	mi := s.in[tn]
	if mi == nil {
		mi = make(map[string]bool)
		s.in[tn] = mi
	}
	mi[from.Sym] = true
}

// hasEdge reports the presence of from → to.
func (s *Set) hasEdge(from Node, to string) bool { return s.out[from][to] }

// RootSet returns the set holding the single chain {sd}.
func (e *Engine) RootSet() *Set {
	s := e.NewSet()
	s.roots[e.D.Start] = true
	s.ends[Node{0, e.D.Start}] = true
	return s
}

// SingletonSet returns the set holding exactly the given chain.
func (e *Engine) SingletonSet(c chain.Chain) *Set {
	s := e.NewSet()
	if c.IsEmpty() {
		return s
	}
	s.roots[c[0]] = true
	for i := 0; i+1 < len(c); i++ {
		s.addEdge(Node{i, c[i]}, c[i+1])
	}
	s.ends[Node{len(c) - 1, c.Last()}] = true
	return s
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := s.eng.NewSet()
	out.AddAll(s)
	return out
}

// IsEmpty reports whether the set holds no chains.
func (s *Set) IsEmpty() bool { return len(s.ends) == 0 }

// EndCount returns the number of endpoint nodes (not chains — several
// chains may share an endpoint).
func (s *Set) EndCount() int { return len(s.ends) }

// Ends returns the endpoints in deterministic order.
func (s *Set) Ends() []Node {
	out := make([]Node, 0, len(s.ends))
	for n := range s.ends {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		return out[i].Sym < out[j].Sym
	})
	return out
}

// EndpointParent describes one endpoint of a set together with the
// parent symbols of its incoming edges; IsRoot marks endpoints at
// depth 0 (document-root chains).
type EndpointParent struct {
	Sym     string
	Parents []string
	IsRoot  bool
}

// EndpointParents lists every endpoint with its possible parent
// symbols, the information schema-preservation checks need.
func (s *Set) EndpointParents() []EndpointParent {
	var out []EndpointParent
	for _, n := range s.Ends() {
		ep := EndpointParent{Sym: n.Sym, IsRoot: n.Depth == 0}
		seen := map[string]bool{}
		for _, p := range s.preds(n) {
			if !seen[p.Sym] {
				seen[p.Sym] = true
				ep.Parents = append(ep.Parents, p.Sym)
			}
		}
		sort.Strings(ep.Parents)
		out = append(out, ep)
	}
	return out
}

// AddAll unions t into s (both must come from the same engine).
func (s *Set) AddAll(t *Set) {
	if t == nil {
		return
	}
	for r := range t.roots {
		s.roots[r] = true
	}
	for from, tos := range t.out {
		for to := range tos {
			s.addEdge(from, to)
		}
	}
	for n := range t.ends {
		s.ends[n] = true
	}
}

// Union returns a fresh union of the operands.
func (e *Engine) Union(sets ...*Set) *Set {
	out := e.NewSet()
	for _, s := range sets {
		out.AddAll(s)
	}
	return out
}

// withEnds returns a copy of s's graph with the given endpoints,
// pruned to the edges that spell its chains.
func (s *Set) withEnds(ends map[Node]bool) *Set {
	out := s.Clone()
	out.ends = ends
	return out.prune()
}

// prune returns the sub-DAG of s containing exactly the edges on some
// root→endpoint path. This plays the role of the paper's edge codes:
// growth performed while exploring one step must not become spellable
// context for the next step or for backward navigation.
func (s *Set) prune() *Set {
	// Forward closure from roots.
	fwd := make(map[Node]bool)
	var frontier []Node
	for r := range s.roots {
		n := Node{0, r}
		fwd[n] = true
		frontier = append(frontier, n)
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			s.eng.budget.Tick()
			for _, c := range s.succs(f) {
				if !fwd[c] {
					fwd[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	// Backward closure from endpoints reachable forward.
	back := make(map[Node]bool)
	frontier = frontier[:0]
	for n := range s.ends {
		if fwd[n] {
			back[n] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			s.eng.budget.Tick()
			for _, p := range s.preds(f) {
				if !back[p] {
					back[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	out := s.eng.NewSet()
	for r := range s.roots {
		if back[Node{0, r}] {
			out.roots[r] = true
		}
	}
	for from, tos := range s.out {
		if !fwd[from] || !back[from] {
			continue
		}
		for to := range tos {
			if back[Node{from.Depth + 1, to}] {
				out.addEdge(from, to)
			}
		}
	}
	for n := range s.ends {
		if fwd[n] {
			out.ends[n] = true
		}
	}
	return out
}

// subWithEnd returns the backward cone of a single endpoint: exactly
// the edges on root→n paths, with n as the only endpoint. It is the
// per-binding view of FOR iteration; extracting the cone directly is
// much cheaper than cloning and pruning the whole DAG when the parent
// set has many endpoints.
func (s *Set) subWithEnd(n Node) *Set {
	out := s.eng.NewSet()
	out.ends[n] = true
	seen := map[Node]bool{n: true}
	frontier := []Node{n}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			if f.Depth == 0 {
				if s.roots[f.Sym] {
					out.roots[f.Sym] = true
				}
				continue
			}
			for _, p := range s.preds(f) {
				out.addEdge(p, f.Sym)
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return out
}

// succs lists the DAG successors of n.
func (s *Set) succs(n Node) []Node {
	tos := s.out[n]
	out := make([]Node, 0, len(tos))
	for to := range tos {
		out = append(out, Node{n.Depth + 1, to})
	}
	return out
}

// preds lists the DAG predecessors of n; a root node has none.
func (s *Set) preds(n Node) []Node {
	froms := s.in[n]
	out := make([]Node, 0, len(froms))
	for f := range froms {
		out = append(out, Node{n.Depth - 1, f})
	}
	return out
}

// Step applies one XPath step (axis + node test) to the set,
// implementing AC/TC over the DAG. It returns the result set and, for
// each input endpoint, whether the step produced anything from it (the
// (STEPUH) used-chain filter).
func (s *Set) Step(axis xquery.Axis, test xquery.NodeTest) (*Set, map[Node]bool) {
	if axis == xquery.Descendant || axis == xquery.DescendantOrSelf {
		return s.descendantStep(axis, test)
	}
	out := s.Clone()
	out.ends = make(map[Node]bool)
	productive := make(map[Node]bool)
	for end := range s.ends {
		var results []Node
		switch axis {
		case xquery.Self:
			results = []Node{end}
		case xquery.Child:
			results = out.growChildren(end)
		case xquery.Parent:
			if end.Depth > 0 {
				results = s.preds(end)
			}
		case xquery.Ancestor:
			results = s.properAncestors(end)
		case xquery.AncestorOrSelf:
			results = append(s.properAncestors(end), end)
		case xquery.PrecedingSibling:
			results = out.growSiblings(s, end, true)
		case xquery.FollowingSibling:
			results = out.growSiblings(s, end, false)
		default:
			panic(&guard.InternalError{Value: "cdag: unknown axis"})
		}
		any := false
		for _, n := range results {
			if s.eng.testOK(n.Sym, test) {
				out.ends[n] = true
				any = true
			}
		}
		if any {
			productive[end] = true
		}
	}
	return out.prune(), productive
}

// descendantStep handles descendant and descendant-or-self for all
// endpoints in one traversal: the schema closure is grown from the
// whole endpoint frontier at once (one BFS instead of one per
// endpoint), results are the test-passing reached nodes, and
// per-endpoint productivity — needed by (STEPUH) for plain descendant
// — is recovered from a single backward closure of the passing nodes.
func (s *Set) descendantStep(axis xquery.Axis, test xquery.NodeTest) (*Set, map[Node]bool) {
	out := s.Clone()
	out.ends = make(map[Node]bool)

	// Forward closure below every endpoint, shared: reached nodes are
	// results; expanded tracks expansion so each node grows once (a
	// node may be both an endpoint and another endpoint's descendant).
	reached := make(map[Node]bool)
	expanded := make(map[Node]bool)
	var frontier []Node
	for end := range s.ends {
		frontier = append(frontier, end)
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			if expanded[f] {
				continue
			}
			expanded[f] = true
			for _, c := range out.growChildren(f) {
				if !reached[c] {
					reached[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}

	// Results: passing reached nodes, plus the endpoints themselves
	// for descendant-or-self.
	passing := make(map[Node]bool)
	for n := range reached {
		if s.eng.testOK(n.Sym, test) {
			passing[n] = true
			out.ends[n] = true
		}
	}
	if axis == xquery.DescendantOrSelf {
		for end := range s.ends {
			if s.eng.testOK(end.Sym, test) {
				out.ends[end] = true
			}
		}
	}

	// Productivity: an endpoint is productive when a passing node is
	// forward-reachable (strictly below for descendant; or itself for
	// descendant-or-self). hasBelow = backward closure of passing.
	hasBelow := make(map[Node]bool)
	frontier = frontier[:0]
	for n := range passing {
		hasBelow[n] = true
		frontier = append(frontier, n)
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			s.eng.budget.Tick()
			for _, p := range out.preds(f) {
				if !hasBelow[p] {
					hasBelow[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	productive := make(map[Node]bool)
	for end := range s.ends {
		switch {
		case axis == xquery.DescendantOrSelf && (s.eng.testOK(end.Sym, test) || childInSet(out, end, hasBelow)):
			productive[end] = true
		case axis == xquery.Descendant && childInSet(out, end, hasBelow):
			productive[end] = true
		}
	}
	return out.prune(), productive
}

// childInSet reports whether some child of n belongs to set.
func childInSet(s *Set, n Node, set map[Node]bool) bool {
	for to := range s.out[n] {
		if set[Node{n.Depth + 1, to}] {
			return true
		}
	}
	return false
}

func (e *Engine) testOK(sym string, test xquery.NodeTest) bool {
	switch test.Kind {
	case xquery.NodeAny:
		return true
	case xquery.TextTest:
		return sym == dtd.StringType
	case xquery.TagTest:
		return sym != dtd.StringType && e.D.LabelOf(sym) == test.Tag
	case xquery.WildcardTest:
		return sym != dtd.StringType
	}
	return false
}

// growChildren adds schema child edges below n and returns the child
// nodes.
func (s *Set) growChildren(n Node) []Node {
	if n.Depth+1 > s.eng.MaxDepth {
		return nil
	}
	kids := s.eng.D.ChildTypes(n.Sym)
	out := make([]Node, 0, len(kids))
	for _, beta := range kids {
		s.addEdge(n, beta)
		out = append(out, Node{n.Depth + 1, beta})
	}
	return out
}

// growDescendants adds the forward schema closure below n (bounded by
// MaxDepth) and returns every reached node.
func (s *Set) growDescendants(n Node) []Node {
	var out []Node
	seen := map[Node]bool{}
	frontier := []Node{n}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			for _, c := range s.growChildren(f) {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return out
}

// properAncestors walks s's own edges upward from n and returns every
// node on a path from a root to n, excluding n.
func (s *Set) properAncestors(n Node) []Node {
	var out []Node
	seen := map[Node]bool{}
	frontier := []Node{n}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			s.eng.budget.Tick()
			for _, p := range s.preds(f) {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return out
}

// growSiblings adds sibling nodes of endpoint end: for each parent
// node reachable in the context set, the types ordered before/after
// end's type in that parent's content model.
func (s *Set) growSiblings(ctx *Set, end Node, preceding bool) []Node {
	if end.Depth == 0 {
		return nil
	}
	var out []Node
	for _, p := range ctx.preds(end) {
		var sibs []string
		if preceding {
			sibs = s.eng.D.PrecedingSiblingTypes(p.Sym, end.Sym)
		} else {
			sibs = s.eng.D.FollowingSiblingTypes(p.Sym, end.Sym)
		}
		for _, beta := range sibs {
			s.addEdge(p, beta)
			out = append(out, Node{end.Depth, beta})
		}
	}
	return out
}

// allExtendNode reports whether every chain of s has the chain(s)
// ending at n as a prefix: every endpoint lies at depth ≥ n.Depth and
// every backward path from an endpoint passes through n. Since each
// root→end path crosses each depth exactly once, it suffices that n is
// the only depth-n node backward-reachable from the endpoints.
func (s *Set) allExtendNode(n Node) bool {
	for end := range s.ends {
		if end.Depth < n.Depth {
			return false
		}
	}
	seen := make(map[Node]bool)
	var frontier []Node
	for end := range s.ends {
		seen[end] = true
		frontier = append(frontier, end)
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			if f.Depth == n.Depth {
				if f != n {
					return false
				}
				continue // no need to walk above the split point
			}
			for _, p := range s.preds(f) {
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	return true
}

// Extend returns the set τ̄ = { c.c' | c ∈ s }: s plus the forward
// schema closure below every endpoint, all of it marked as endpoints.
func (s *Set) Extend() *Set {
	out := s.Clone()
	for end := range s.ends {
		for _, n := range out.growDescendants(end) {
			out.ends[n] = true
		}
	}
	return out
}

// graft attaches t under endpoint base: t's roots become children of
// base, every t edge is copied shifted by base.Depth+1, and t's
// endpoints become endpoints of the result (added in place to s).
// Nodes beyond MaxDepth are dropped — such chains exceed every k-chain
// length.
func (s *Set) graft(base Node, t *Set) {
	off := base.Depth + 1
	if off > s.eng.MaxDepth {
		return
	}
	for r := range t.roots {
		s.addEdge(base, r)
	}
	for from, tos := range t.out {
		if off+from.Depth+1 > s.eng.MaxDepth {
			continue
		}
		sf := Node{off + from.Depth, from.Sym}
		for to := range tos {
			s.addEdge(sf, to)
		}
	}
	for n := range t.ends {
		if off+n.Depth <= s.eng.MaxDepth {
			s.ends[Node{off + n.Depth, n.Sym}] = true
		}
	}
}

// Rebase returns a set whose chains are tag.c for every chain c of s —
// the element-chain composition a.c of the (ELT) rule.
func (s *Set) Rebase(tag string) *Set {
	out := s.eng.NewSet()
	out.roots[tag] = true
	out.graft(Node{Depth: 0, Sym: tag}, s)
	return out
}

// SuffixExtensions returns the element-style set
// { sym.c” | c” schema extension of sym } rooted at depth 0 — the
// suffix α.c' used by (ELT) and by copied-source update chains.
func (e *Engine) SuffixExtensions(sym string, budget int) *Set {
	out := e.NewSet()
	out.roots[sym] = true
	root := Node{0, sym}
	out.ends[root] = true
	if budget > e.MaxDepth {
		budget = e.MaxDepth
	}
	seen := map[Node]bool{root: true}
	frontier := []Node{root}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			if f.Depth+1 > budget {
				continue
			}
			for _, beta := range e.D.ChildTypes(f.Sym) {
				out.addEdge(f, beta)
				n := Node{f.Depth + 1, beta}
				if !seen[n] {
					seen[n] = true
					out.ends[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return out
}

// Chains enumerates the chain set spelled by the DAG, up to limit
// chains (0 = no limit). Intended for tests and diagnostics; the
// enumeration is exponential in general.
func (s *Set) Chains(limit int) []chain.Chain {
	var out []chain.Chain
	var path []string
	var rec func(n Node)
	rec = func(n Node) {
		if limit > 0 && len(out) >= limit {
			return
		}
		s.eng.budget.Tick()
		path = append(path, n.Sym)
		if s.ends[n] {
			out = append(out, chain.New(append([]string(nil), path...)...))
		}
		for _, c := range s.succs(n) {
			rec(c)
		}
		path = path[:len(path)-1]
	}
	var roots []string
	for r := range s.roots {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		rec(Node{0, r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Strings renders the enumerated chains; for tests.
func (s *Set) Strings(limit int) []string {
	cs := s.Chains(limit)
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// String summarises the DAG contents (up to 16 chains).
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("cdag{")
	for i, e := range s.Strings(16) {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e)
	}
	b.WriteString("}")
	return b.String()
}
