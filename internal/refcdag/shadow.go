package refcdag

import (
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Shadow is the audit layer's entry point (package sentinel): it
// re-derives an independence verdict on this retained reference engine
// — machinery deliberately independent of the dense compiled-schema
// path that serves production verdicts — behind its own Recover
// boundary, so a budget abort or internal panic comes back to the
// auditor as an error instead of unwinding through it. It runs from
// the source DTD, never from a compiled artifact, which is exactly why
// it can catch artifact corruption the fast path cannot see.
func Shadow(d *dtd.DTD, q xquery.Query, u xquery.Update, b *guard.Budget) (v Verdict, err error) {
	defer guard.Recover(&err)
	return IndependenceBudget(d, q, u, b), nil
}
