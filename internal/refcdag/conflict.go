package refcdag

import (
	"fmt"

	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/infer"
	"xqindep/internal/xquery"
)

// commonNodes returns the nodes reachable from shared roots by edges
// present in both DAGs — the nodes n such that some common path spells
// a shared chain prefix ending at n.
func commonNodes(a, b *Set) map[Node]bool {
	seen := make(map[Node]bool)
	var frontier []Node
	for r := range a.roots {
		if b.roots[r] {
			n := Node{0, r}
			seen[n] = true
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			a.eng.budget.Tick()
			for to := range a.out[f] {
				if !b.hasEdge(f, to) {
					continue
				}
				n := Node{f.Depth + 1, to}
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return seen
}

// reachesEnd reports whether some endpoint of s is forward-reachable
// from n within s's edges (zero-length paths count).
func (s *Set) reachesEnd(n Node) bool {
	if s.ends[n] {
		return true
	}
	seen := map[Node]bool{n: true}
	frontier := []Node{n}
	for len(frontier) > 0 {
		var next []Node
		for _, f := range frontier {
			s.eng.budget.Tick()
			for _, c := range s.succs(f) {
				if s.ends[c] {
					return true
				}
				if !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return false
}

// ConflictRetUpdate decides confl(r, U) over DAGs: some return chain
// is a prefix of some full update chain.
func ConflictRetUpdate(r *Set, u *UpdateSet) bool {
	common := commonNodes(r, u.Full)
	for n := range r.ends {
		if common[n] && u.Full.reachesEnd(n) {
			return true
		}
	}
	return false
}

// ConflictUpdateRet decides confl(U, r): some full update chain is a
// prefix of some return chain.
func ConflictUpdateRet(u *UpdateSet, r *Set) bool {
	common := commonNodes(u.Full, r)
	for n := range u.Full.ends {
		if common[n] && r.reachesEnd(n) {
			return true
		}
	}
	return false
}

// ConflictUpdateUsed decides the used-chain check: either a full
// update chain is a prefix of a used chain (change at or above the
// used node), or a used chain ends inside a change branch (a node
// typed by it appears on or vanishes from the branch).
func ConflictUpdateUsed(u *UpdateSet, v *Set) bool {
	common := commonNodes(u.Full, v)
	for n := range u.Full.ends {
		if common[n] && v.reachesEnd(n) {
			return true
		}
	}
	for n := range v.ends {
		if common[n] && u.ChangeRegion[n] {
			return true
		}
	}
	return false
}

// Verdict is the outcome of a CDAG independence check.
type Verdict struct {
	Independent bool
	// Reasons lists which checks fired, e.g. "confl(r,U)".
	Reasons []string
	Query   QueryChains
	Update  *UpdateSet
	K       int
}

// CheckIndependence runs the full CDAG analysis for the pair under
// this engine's depth bound.
func (e *Engine) CheckIndependence(q xquery.Query, u xquery.Update) Verdict {
	// Un-nest for-chains first so pure navigation prefixes batch
	// (xquery.Normalize); the semantics is unchanged.
	qc := e.Query(e.RootEnv(), xquery.Normalize(q))
	uc := e.Update(e.RootEnv(), xquery.NormalizeUpdate(u))
	e.budget.Point("cdag.conflict")
	var reasons []string
	if ConflictRetUpdate(qc.Ret, uc) {
		reasons = append(reasons, "confl(r,U)")
	}
	if ConflictUpdateRet(uc, qc.Ret) {
		reasons = append(reasons, "confl(U,r)")
	}
	if ConflictUpdateUsed(uc, qc.Used) {
		reasons = append(reasons, "confl(U,v)")
	}
	return Verdict{
		Independent: len(reasons) == 0,
		Reasons:     reasons,
		Query:       qc,
		Update:      uc,
		K:           e.K,
	}
}

func (v Verdict) String() string {
	if v.Independent {
		return "independent"
	}
	return fmt.Sprintf("dependent (%v)", v.Reasons)
}

// Independence runs the complete finite CDAG analysis of Section 5/6:
// k = kq + ku from Table 3, with the depth bound widened by the tags
// the pair constructs beyond the schema alphabet.
func Independence(d *dtd.DTD, q xquery.Query, u xquery.Update) Verdict {
	e := EngineFor(d, q, u)
	return e.CheckIndependence(q, u)
}

// IndependenceBudget is Independence under a resource budget: the
// engine charges b for every unit of graph growth and checks the
// deadline cooperatively, aborting via guard.Abort when exhausted
// (recover with guard.Recover or guard.Do at the caller).
func IndependenceBudget(d *dtd.DTD, q xquery.Query, u xquery.Update, b *guard.Budget) Verdict {
	b.Point("cdag.build")
	e := EngineFor(d, q, u).WithBudget(b)
	return e.CheckIndependence(q, u)
}

// EngineFor builds the engine with the multiplicity and alphabet
// extension appropriate for the pair; q or u may be nil when only one
// side is analysed.
func EngineFor(d *dtd.DTD, q xquery.Query, u xquery.Update) *Engine {
	k := infer.KPair(q, u)
	extra := 0
	for tag := range constructedTags(q, u) {
		if !d.HasType(tag) {
			extra++
		}
	}
	return NewEngine(d, k, extra)
}

// constructedTags collects element-constructor tags and rename targets
// of the pair.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func constructedTags(q xquery.Query, u xquery.Update) map[string]bool {
	out := make(map[string]bool)
	var walkQ func(xquery.Query)
	var walkU func(xquery.Update)
	walkQ = func(x xquery.Query) {
		switch n := x.(type) {
		case xquery.Sequence:
			walkQ(n.Left)
			walkQ(n.Right)
		case xquery.Element:
			out[n.Tag] = true
			walkQ(n.Content)
		case xquery.For:
			walkQ(n.In)
			walkQ(n.Return)
		case xquery.Let:
			walkQ(n.Bind)
			walkQ(n.Return)
		case xquery.If:
			walkQ(n.Cond)
			walkQ(n.Then)
			walkQ(n.Else)
		}
	}
	walkU = func(x xquery.Update) {
		switch n := x.(type) {
		case xquery.USeq:
			walkU(n.Left)
			walkU(n.Right)
		case xquery.UFor:
			walkQ(n.In)
			walkU(n.Body)
		case xquery.ULet:
			walkQ(n.Bind)
			walkU(n.Body)
		case xquery.UIf:
			walkQ(n.Cond)
			walkU(n.Then)
			walkU(n.Else)
		case xquery.Delete:
			walkQ(n.Target)
		case xquery.Rename:
			walkQ(n.Target)
			out[n.As] = true
		case xquery.Insert:
			walkQ(n.Source)
			walkQ(n.Target)
		case xquery.Replace:
			walkQ(n.Target)
			walkQ(n.Source)
		}
	}
	if q != nil {
		walkQ(q)
	}
	if u != nil {
		walkU(u)
	}
	return out
}
