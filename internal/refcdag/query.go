package refcdag

import (
	"fmt"

	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// Env is the static environment Γ over CDAG sets.
type Env map[string]*Set

// Bind returns a copy of g with v bound to s.
func (g Env) Bind(v string, s *Set) Env {
	out := make(Env, len(g)+1)
	for k, val := range g {
		out[k] = val
	}
	out[v] = s
	return out
}

// RootEnv is Γ = {x ↦ ds}.
func (e *Engine) RootEnv() Env {
	return Env{xquery.RootVar: e.RootSet()}
}

// QueryChains is the CDAG form of the judgement Γ ⊢C q : (r; v; e).
type QueryChains struct {
	Ret  *Set
	Used *Set
	Elem *Set
}

func (e *Engine) emptyChains() QueryChains {
	return QueryChains{Ret: e.NewSet(), Used: e.NewSet(), Elem: e.NewSet()}
}

// Query infers the chain sets of q over CDAGs, mirroring Table 1.
// The (FOR) rule iterates bindings at endpoint granularity — the
// number of endpoints is polynomial in |d| and k, unlike the number of
// chains.
func (e *Engine) Query(g Env, q xquery.Query) QueryChains {
	e.budget.Tick()
	switch n := q.(type) {
	case xquery.Empty:
		return e.emptyChains()
	case xquery.StringLit:
		out := e.emptyChains()
		out.Elem.AddAll(e.stringChainSet())
		return out
	case xquery.Var:
		out := e.emptyChains()
		if b, ok := g[n.Name]; ok {
			out.Ret.AddAll(b)
		}
		return out
	case xquery.Step:
		return e.stepRule(g, n)
	case xquery.Sequence:
		l, r := e.Query(g, n.Left), e.Query(g, n.Right)
		return QueryChains{
			Ret:  e.Union(l.Ret, r.Ret),
			Used: e.Union(l.Used, r.Used),
			Elem: e.Union(l.Elem, r.Elem),
		}
	case xquery.If:
		c0, c1, c2 := e.Query(g, n.Cond), e.Query(g, n.Then), e.Query(g, n.Else)
		return QueryChains{
			Ret:  e.Union(c1.Ret, c2.Ret),
			Used: e.Union(c0.Used, c1.Used, c2.Used, c0.Ret),
			Elem: e.Union(c1.Elem, c2.Elem),
		}
	case xquery.For:
		return e.forRule(g, n)
	case xquery.Let:
		// The binding includes constructed items (see package infer's
		// (LET) comment).
		c1 := e.Query(g, n.Bind)
		c2 := e.Query(g.Bind(n.Var, e.Union(c1.Ret, c1.Elem)), n.Return)
		return QueryChains{
			Ret:  c2.Ret,
			Used: e.Union(c1.Ret, c1.Used, c2.Used),
			Elem: c2.Elem,
		}
	case xquery.Element:
		return e.elementRule(g, n)
	default:
		panic(&guard.InternalError{Value: fmt.Sprintf("cdag: unknown query node %T", q)})
	}
}

// stringChainSet is the element chain {S}.
func (e *Engine) stringChainSet() *Set {
	s := e.NewSet()
	s.roots["S"] = true
	s.ends[Node{0, "S"}] = true
	return s
}

func (e *Engine) stepRule(g Env, n xquery.Step) QueryChains {
	out := e.emptyChains()
	ctx, ok := g[n.Var]
	if !ok {
		return out
	}
	res, productive := ctx.Step(n.Axis, n.Test)
	out.Ret = res
	if !n.Axis.IsForward() {
		// (STEPUH): productive context endpoints become used chains.
		used := ctx.withEnds(productive)
		out.Used = used
	}
	return out
}

// forRule implements (FOR). Two regimes keep the engine polynomial
// (the paper's CDAG processes each sub-expression once):
//
//   - When the body's returns provably extend the binding chain
//     (returnsExtendBinding — pure navigation, filters, conditionals
//     over them), the body is inferred once over the whole binding
//     set: binding chains are subsumed by the returns, per-binding
//     filtering cannot change the result, and the rules are additive.
//   - Otherwise the body is inferred per binding endpoint (their
//     number is polynomial), filtering unproductive iterations and
//     applying the semantic subsumption check.
func (e *Engine) forRule(g Env, n xquery.For) QueryChains {
	c1 := e.Query(g, n.In)
	out := e.emptyChains()
	out.Used.AddAll(c1.Used)
	// Bindings cover returned input nodes and constructed items alike.
	bindings := c1.Ret
	if !c1.Elem.IsEmpty() {
		bindings = e.Union(c1.Ret, c1.Elem)
	}
	if returnsExtendBinding(n.Return, n.Var) || navigational(n.Return, n.Var) {
		// Batch regimes. Extension bodies need no binding-used chains
		// at all. Navigational bodies (upward or horizontal steps, no
		// constructors, no conditionals) are processed set-wise like
		// the paper's single shared CDAG: (STEPUH) records the
		// productive context endpoints, which is exactly the (FOR)
		// used-chain filter at the engine's granularity. Backward
		// navigation then walks the merged cones of all bindings —
		// the same over-approximation the paper accepts for nodes
		// shared between chains of one expression.
		body := e.Query(g.Bind(n.Var, bindings), n.Return)
		out.Ret.AddAll(body.Ret)
		out.Used.AddAll(body.Used)
		out.Elem.AddAll(body.Elem)
		return out
	}
	single := bindings.EndCount() == 1
	for _, end := range bindings.Ends() {
		binding := bindings
		if !single {
			binding = bindings.subWithEnd(end)
		}
		body := e.Query(g.Bind(n.Var, binding), n.Return)
		if body.Ret.IsEmpty() && body.Elem.IsEmpty() {
			continue
		}
		out.Ret.AddAll(body.Ret)
		out.Elem.AddAll(body.Elem)
		out.Used.AddAll(body.Used)
		if !body.Elem.IsEmpty() || !body.Ret.allExtendNode(end) {
			out.Used.AddAll(binding)
		}
	}
	return out
}

// returnsExtendBinding reports whether every chain q can return
// extends the binding of v (and q constructs no elements): paths
// forward from v, the variable itself, conditionals and sequences over
// such, and nested for-loops that continue forward. For these bodies
// conflicts through the binding chain are subsumed by conflicts on the
// returns.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func returnsExtendBinding(q xquery.Query, v string) bool {
	switch n := q.(type) {
	case xquery.Empty:
		return true
	case xquery.Var:
		return n.Name == v
	case xquery.Step:
		// Self, child, descendant and descendant-or-self results all
		// contain their context chain as a prefix (plain descendant is
		// STEPUH for used-chain purposes, but still extends).
		return n.Var == v && (n.Axis.IsForward() || n.Axis == xquery.Descendant)
	case xquery.Sequence:
		return returnsExtendBinding(n.Left, v) && returnsExtendBinding(n.Right, v)
	case xquery.If:
		// The condition may navigate anywhere (its chains become used,
		// which is handled by the (IF) rule); only the branches must
		// extend the binding.
		return returnsExtendBinding(n.Then, v) && returnsExtendBinding(n.Else, v)
	case xquery.For:
		return returnsExtendBinding(n.In, v) && extendsVar(n.Return, n.Var)
	default:
		return false
	}
}

// extendsVar is returnsExtendBinding for the inner variable of a
// nested for: the body must extend y, whose bindings already extend
// the outer binding.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func extendsVar(q xquery.Query, y string) bool { return returnsExtendBinding(q, y) }

// navigational reports whether q is pure navigation from v: steps of
// any axis, nested for-loops over navigation, the variable itself, or
// sequences of those — but no element construction, strings, let or
// conditionals. Such bodies are processed set-wise: every used chain
// they need is produced by the (STEPUH) productivity filter inside
// Step, and their returns carry all remaining conflicts.
//
//xqvet:ignore budgetpoints structural recursion on the parsed AST, depth-bounded by guard's parser limits
func navigational(q xquery.Query, v string) bool {
	switch n := q.(type) {
	case xquery.Empty:
		return true
	case xquery.Var:
		return n.Name == v
	case xquery.Step:
		return n.Var == v
	case xquery.Sequence:
		return navigational(n.Left, v) && navigational(n.Right, v)
	case xquery.For:
		return navigational(n.In, v) && navigational(n.Return, n.Var)
	default:
		return false
	}
}

func (e *Engine) elementRule(g Env, n xquery.Element) QueryChains {
	inner := e.Query(g, n.Content)
	out := e.emptyChains()
	// e0 part 1: a.α.c' for each return endpoint α and its schema
	// extensions.
	elem := e.NewSet()
	elem.roots[n.Tag] = true
	base := Node{0, n.Tag}
	for _, end := range inner.Ret.Ends() {
		ext := e.SuffixExtensions(end.Sym, e.MaxDepth)
		elem.graft(base, ext)
	}
	// e0 part 2: a.c for nested element chains.
	elem.graft(base, inner.Elem)
	// e0 part 3: bare a when the content contributes nothing.
	if inner.Ret.IsEmpty() && inner.Elem.IsEmpty() {
		elem.ends[base] = true
	}
	out.Elem = elem
	// Used: r̄ ∪ v.
	out.Used = e.Union(inner.Ret.Extend(), inner.Used)
	return out
}
