package refcdag

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the set as a Graphviz digraph, with endpoints drawn as
// double circles — the debugging view of the paper's Figure 2.
//
//xqvet:ignore budgetpoints diagnostic rendering of an already-budgeted CDAG; does no analysis work
func (s *Set) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle, fontsize=10];\n", name)
	id := func(n Node) string { return fmt.Sprintf("%q", fmt.Sprintf("%d:%s", n.Depth, n.Sym)) }
	var nodes []Node
	seen := map[Node]bool{}
	addNode := func(n Node) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for r := range s.roots {
		addNode(Node{0, r})
	}
	type edge struct {
		from Node
		to   string
	}
	var edges []edge
	for from, tos := range s.out {
		addNode(from)
		for to := range tos {
			addNode(Node{from.Depth + 1, to})
			edges = append(edges, edge{from, to})
		}
	}
	for n := range s.ends {
		addNode(n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Depth != nodes[j].Depth {
			return nodes[i].Depth < nodes[j].Depth
		}
		return nodes[i].Sym < nodes[j].Sym
	})
	for _, n := range nodes {
		shape := "circle"
		if s.ends[n] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %s [label=%q, shape=%s];\n", id(n), n.Sym, shape)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			if edges[i].from.Depth != edges[j].from.Depth {
				return edges[i].from.Depth < edges[j].from.Depth
			}
			return edges[i].from.Sym < edges[j].from.Sym
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s;\n", id(e.from), id(Node{e.from.Depth + 1, e.to}))
	}
	b.WriteString("}\n")
	return b.String()
}
