package dtd

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"xqindep/internal/bitset"
)

// This file is the artifact-integrity layer of the compiled schema:
// every Compiled carries a content checksum stamped at construction,
// and Verify re-derives it together with the structural invariants the
// dense engines rely on. The CompileCache validates resident artifacts
// on every hit, so a corrupted artifact (a stray write through a
// shared bitset view, a future refactor mutating "immutable" tables)
// is caught and recompiled *before* it can reach an analysis and
// produce an unsound verdict. The sentinel's audit layer is the second
// line of defense for corruption that slips past this one.

// checksum digests the analysis-relevant tables of c. The walk order
// is fully deterministic (dense SymID order, raw bitset words), so
// equal artifacts hash equally across processes.
func (c *Compiled) computeChecksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wSet := func(s bitset.Set) {
		wInt(len(s))
		for _, w := range s {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
	}
	n := len(c.syms)
	wInt(n)
	wInt(int(c.start))
	wInt(int(c.stringSym))
	for _, s := range c.syms {
		wInt(len(s))
		h.Write([]byte(s))
	}
	for i := 0; i < n; i++ {
		wInt(len(c.children[i]))
		for _, k := range c.children[i] {
			wInt(int(k))
		}
		wSet(c.childSet[i])
		wSet(c.reach[i])
		wInt(c.minHeight[i])
		// Sibling tables, in dense ID order; absent rows hash as empty.
		for a := SymID(0); int(a) < n; a++ {
			if fw := c.follow[i]; fw != nil {
				if s, ok := fw[a]; ok {
					wInt(int(a))
					wSet(s)
				}
			}
		}
	}
	wSet(c.recursive)
	wInt(c.recCount)
	return h.Sum64()
}

// Verify checks the artifact's structural invariants and content
// checksum, returning a descriptive error on the first violation. It
// is cheap relative to compilation (no regex work, no closure
// computation) and runs on every CompileCache hit; a nil error means
// the dense engines may trust every table.
func (c *Compiled) Verify() error {
	n := len(c.syms)
	if n == 0 {
		return fmt.Errorf("dtd: compiled artifact: empty symbol table")
	}
	if len(c.index) != n || len(c.children) != n || len(c.childSet) != n ||
		len(c.reach) != n || len(c.minHeight) != n || len(c.parents) != n {
		return fmt.Errorf("dtd: compiled artifact: table lengths disagree with |Σ|=%d", n)
	}
	if int(c.start) >= n || int(c.stringSym) >= n {
		return fmt.Errorf("dtd: compiled artifact: start/string symbol out of range")
	}
	if c.syms[c.stringSym] != StringType {
		return fmt.Errorf("dtd: compiled artifact: string symbol %d is %q", c.stringSym, c.syms[c.stringSym])
	}
	for i, name := range c.syms {
		if got, ok := c.index[name]; !ok || int(got) != i {
			return fmt.Errorf("dtd: compiled artifact: symbol index broken at %q", name)
		}
	}
	for i := 0; i < n; i++ {
		// Child list and successor bitset must agree exactly.
		if got, want := c.childSet[i].Count(), len(c.children[i]); got != want {
			return fmt.Errorf("dtd: compiled artifact: childSet[%s] has %d bits, child list %d", c.syms[i], got, want)
		}
		for _, k := range c.children[i] {
			if int(k) >= n {
				return fmt.Errorf("dtd: compiled artifact: child id %d of %s out of range", k, c.syms[i])
			}
			if !c.childSet[i].Has(int(k)) {
				return fmt.Errorf("dtd: compiled artifact: childSet[%s] missing child %s", c.syms[i], c.syms[k])
			}
			// Closure property: reach is transitively closed over ⇒d.
			if !c.reach[i].Has(int(k)) {
				return fmt.Errorf("dtd: compiled artifact: reach[%s] missing direct child %s", c.syms[i], c.syms[k])
			}
			missing := -1
			c.reach[k].ForEach(func(t int) {
				if missing < 0 && !c.reach[i].Has(t) {
					missing = t
				}
			})
			if missing >= 0 {
				return fmt.Errorf("dtd: compiled artifact: reach[%s] not closed: missing %s via %s",
					c.syms[i], c.syms[missing], c.syms[k])
			}
		}
	}
	if got := c.computeChecksum(); got != c.checksum {
		return fmt.Errorf("dtd: compiled artifact: content checksum mismatch (stamped %x, recomputed %x)", c.checksum, got)
	}
	return nil
}

// Checksum returns the content checksum stamped at compilation.
func (c *Compiled) Checksum() uint64 { return c.checksum }

// WithCorruption returns a copy of c whose reachability table has one
// deterministically-chosen bit flipped and whose checksum is left
// stale — exactly the damage a stray write through a shared bitset
// view would do. It is chaos-test support for the faultinject
// corrupt-artifact kind: the copy's tables are independent of c (the
// original stays intact), Verify on the copy fails, and the dense
// engines run on it without crashing — possibly producing wrong
// verdicts, which is precisely what the sentinel's audit layer must
// contain. Never use it outside tests and chaos harnesses.
func (c *Compiled) WithCorruption(seed int64) *Compiled {
	cc := *c
	cc.reach = make([]bitset.Set, len(c.reach))
	for i := range c.reach {
		cc.reach[i] = c.reach[i].Clone()
	}
	n := len(cc.syms)
	if n == 0 {
		return &cc
	}
	i := int(uint64(seed) % uint64(n))
	j := int((uint64(seed) / uint64(n)) % uint64(n))
	if cc.reach[i].Has(j) {
		cc.reach[i].Remove(j)
	} else {
		cc.reach[i].Add(j)
	}
	return &cc
}
