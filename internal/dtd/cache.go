package dtd

import (
	"container/list"
	"sort"
	"sync"
)

// CompileCache is a bounded, fingerprint-keyed cache of Compiled
// schemas. The analysis layers share one immutable artifact per
// schema across concurrent requests: Get compiles at most once per
// fingerprint (modulo a benign race where two first requests compile
// concurrently and one result wins) and evicts in deterministic LRU
// order — least-recently-hit first — so quarantine→purge→recompile
// behavior is reproducible under chaos schedules. Every hit also
// re-runs the artifact's Verify self-check: a corrupted resident is
// evicted and recompiled instead of being served.
type CompileCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	// lru orders residents most-recently-hit first; Back() is the
	// eviction victim. Element values are *cacheEntry.
	lru            list.List
	hits           int64
	misses         int64
	evictions      int64
	purges         int64
	verifyFailures int64
}

type cacheEntry struct {
	fp string
	c  *Compiled
}

// NewCompileCache returns a cache holding at most max schemas
// (minimum 1).
func NewCompileCache(max int) *CompileCache {
	if max < 1 {
		max = 1
	}
	cc := &CompileCache{max: max, m: make(map[string]*list.Element)}
	cc.lru.Init()
	return cc
}

// Get returns the compiled artifact for d, compiling and caching it
// on first sight of the fingerprint. Compilation runs outside the
// lock so a slow compile never blocks hits on other schemas. A hit
// whose resident fails Verify is treated as a miss: the corrupted
// artifact is evicted and a fresh compilation replaces it.
func (cc *CompileCache) Get(d *DTD) (*Compiled, error) {
	fp := d.Fingerprint()
	cc.mu.Lock()
	if el := cc.m[fp]; el != nil {
		ent := el.Value.(*cacheEntry)
		if err := ent.c.Verify(); err != nil {
			// Corrupted resident: drop it and fall through to a fresh
			// compile. The failure is counted so /statz surfaces it.
			cc.verifyFailures++
			cc.lru.Remove(el)
			delete(cc.m, fp)
		} else {
			cc.hits++
			cc.lru.MoveToFront(el)
			cc.mu.Unlock()
			return ent.c, nil
		}
	}
	cc.misses++
	cc.mu.Unlock()

	c, err := NewCompiled(d)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el := cc.m[fp]; el != nil {
		// Lost a compile race; keep the resident artifact so every
		// caller shares one instance.
		cc.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).c, nil
	}
	for cc.lru.Len() >= cc.max {
		victim := cc.lru.Back()
		cc.lru.Remove(victim)
		delete(cc.m, victim.Value.(*cacheEntry).fp)
		cc.evictions++
	}
	cc.m[fp] = cc.lru.PushFront(&cacheEntry{fp: fp, c: c})
	return c, nil
}

// Purge drops the resident artifact for fingerprint fp, reporting
// whether one was resident. The quarantine path uses it after an
// audit disagreement so the next Get recompiles from the source DTD —
// repairing the common benign cause (a corrupted compiled artifact)
// before the quarantine becomes sticky.
func (cc *CompileCache) Purge(fp string) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	el := cc.m[fp]
	if el == nil {
		return false
	}
	cc.lru.Remove(el)
	delete(cc.m, fp)
	cc.purges++
	return true
}

// CacheStats is a point-in-time snapshot of a CompileCache, exposed
// by the daemon's /statz endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Purges counts explicit Purge calls that dropped a resident
	// (quarantine repair path).
	Purges int64 `json:"purges"`
	// VerifyFailures counts cache hits whose resident failed its
	// Verify self-check and was recompiled.
	VerifyFailures int64 `json:"verify_failures"`
	Resident       int64 `json:"resident"`
	// Schemas describes each resident compiled schema, sorted by
	// fingerprint.
	Schemas []SchemaStat `json:"schemas,omitempty"`
}

// SchemaStat summarises one resident compiled schema.
type SchemaStat struct {
	Fingerprint string `json:"fingerprint"`
	Types       int    `json:"types"`
	Recursive   bool   `json:"recursive"`
}

// Stats returns a snapshot of the cache counters and residents.
func (cc *CompileCache) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	st := CacheStats{
		Hits:           cc.hits,
		Misses:         cc.misses,
		Evictions:      cc.evictions,
		Purges:         cc.purges,
		VerifyFailures: cc.verifyFailures,
		Resident:       int64(cc.lru.Len()),
	}
	for fp, el := range cc.m {
		c := el.Value.(*cacheEntry).c
		st.Schemas = append(st.Schemas, SchemaStat{
			Fingerprint: fp,
			Types:       len(c.d.Types),
			Recursive:   c.recCount > 0,
		})
	}
	sort.Slice(st.Schemas, func(i, j int) bool {
		return st.Schemas[i].Fingerprint < st.Schemas[j].Fingerprint
	})
	return st
}

// ResidentFingerprints returns the resident fingerprints in LRU order,
// most-recently-hit first (test support: pins eviction order).
func (cc *CompileCache) ResidentFingerprints() []string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]string, 0, cc.lru.Len())
	for el := cc.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).fp)
	}
	return out
}

// defaultCache is the process-wide compilation cache shared by core,
// the server pool and the CLIs.
var defaultCache = NewCompileCache(256)

// Compile returns the cached compiled artifact for d, compiling on
// first use. This is the construction path production code should
// use; the xqvet compilecache check flags ad-hoc NewCompiled calls in
// the serving layers.
func Compile(d *DTD) (*Compiled, error) { return defaultCache.Get(d) }

// CompileCacheStats snapshots the process-wide compilation cache.
func CompileCacheStats() CacheStats { return defaultCache.Stats() }

// PurgeCompiled drops fp from the process-wide compilation cache
// (quarantine repair path).
func PurgeCompiled(fp string) bool { return defaultCache.Purge(fp) }
