package dtd

import (
	"sort"
	"sync"
)

// CompileCache is a bounded, fingerprint-keyed cache of Compiled
// schemas. The analysis layers share one immutable artifact per
// schema across concurrent requests: Get compiles at most once per
// fingerprint (modulo a benign race where two first requests compile
// concurrently and one result wins) and evicts arbitrarily at
// capacity, mirroring the serving layer's schema-text cache.
type CompileCache struct {
	mu        sync.Mutex
	max       int
	m         map[string]*Compiled
	hits      int64
	misses    int64
	evictions int64
}

// NewCompileCache returns a cache holding at most max schemas
// (minimum 1).
func NewCompileCache(max int) *CompileCache {
	if max < 1 {
		max = 1
	}
	return &CompileCache{max: max, m: make(map[string]*Compiled)}
}

// Get returns the compiled artifact for d, compiling and caching it
// on first sight of the fingerprint. Compilation runs outside the
// lock so a slow compile never blocks hits on other schemas.
func (cc *CompileCache) Get(d *DTD) (*Compiled, error) {
	fp := d.Fingerprint()
	cc.mu.Lock()
	if c := cc.m[fp]; c != nil {
		cc.hits++
		cc.mu.Unlock()
		return c, nil
	}
	cc.misses++
	cc.mu.Unlock()

	c, err := NewCompiled(d)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if prev := cc.m[fp]; prev != nil {
		// Lost a compile race; keep the resident artifact so every
		// caller shares one instance.
		return prev, nil
	}
	if len(cc.m) >= cc.max {
		for k := range cc.m {
			delete(cc.m, k)
			cc.evictions++
			break
		}
	}
	cc.m[fp] = c
	return c, nil
}

// CacheStats is a point-in-time snapshot of a CompileCache, exposed
// by the daemon's /statz endpoint.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Resident  int64 `json:"resident"`
	// Schemas describes each resident compiled schema, sorted by
	// fingerprint.
	Schemas []SchemaStat `json:"schemas,omitempty"`
}

// SchemaStat summarises one resident compiled schema.
type SchemaStat struct {
	Fingerprint string `json:"fingerprint"`
	Types       int    `json:"types"`
	Recursive   bool   `json:"recursive"`
}

// Stats returns a snapshot of the cache counters and residents.
func (cc *CompileCache) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	st := CacheStats{
		Hits:      cc.hits,
		Misses:    cc.misses,
		Evictions: cc.evictions,
		Resident:  int64(len(cc.m)),
	}
	for fp, c := range cc.m {
		st.Schemas = append(st.Schemas, SchemaStat{
			Fingerprint: fp,
			Types:       len(c.d.Types),
			Recursive:   c.recCount > 0,
		})
	}
	sort.Slice(st.Schemas, func(i, j int) bool {
		return st.Schemas[i].Fingerprint < st.Schemas[j].Fingerprint
	})
	return st
}

// defaultCache is the process-wide compilation cache shared by core,
// the server pool and the CLIs.
var defaultCache = NewCompileCache(256)

// Compile returns the cached compiled artifact for d, compiling on
// first use. This is the construction path production code should
// use; the xqvet compilecache check flags ad-hoc NewCompiled calls in
// the serving layers.
func Compile(d *DTD) (*Compiled, error) { return defaultCache.Get(d) }

// CompileCacheStats snapshots the process-wide compilation cache.
func CompileCacheStats() CacheStats { return defaultCache.Stats() }
