package dtd

import "sort"

// This file provides regular-language inclusion over content models,
// the machinery behind the static schema-preservation checker
// (package preserve): L(candidate) ⊆ L(model) is decided by running
// the candidate NFA against the determinised complement of the model.

// dfa is a deterministic automaton over an explicit alphabet; moves
// outside the alphabet go to the implicit dead state.
type dfa struct {
	alphabet []string
	// trans[state][symbol index] = next state; -1 = dead.
	trans  [][]int
	accept []bool
}

// determinize builds a DFA for the NFA by subset construction over the
// given alphabet.
func (n *nfa) determinize(alphabet []string) *dfa {
	type stateSet string // canonical key
	key := func(set map[int]bool) stateSet {
		states := make([]int, 0, len(set))
		for s := range set {
			states = append(states, s)
		}
		sort.Ints(states)
		b := make([]byte, 0, len(states)*3)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return stateSet(b)
	}
	start := map[int]bool{0: true}
	n.closure(start)
	d := &dfa{alphabet: alphabet}
	ids := map[stateSet]int{}
	var sets []map[int]bool
	add := func(set map[int]bool) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(sets)
		ids[k] = id
		sets = append(sets, set)
		d.trans = append(d.trans, make([]int, len(alphabet)))
		for i := range d.trans[id] {
			d.trans[id][i] = -1
		}
		d.accept = append(d.accept, set[n.accept])
		return id
	}
	add(start)
	for work := 0; work < len(sets); work++ {
		cur := sets[work]
		for ai, sym := range alphabet {
			next := make(map[int]bool)
			for s := range cur {
				if n.symTo[s] >= 0 && n.symLbl[s] == sym {
					next[n.symTo[s]] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			n.closure(next)
			d.trans[work][ai] = add(next)
		}
	}
	return d
}

// includedIn reports whether every word accepted by the NFA (over the
// DFA's alphabet — symbols outside it make the word rejected by the
// DFA, hence a counterexample) is accepted by the DFA.
func (n *nfa) includedIn(d *dfa) bool {
	idx := make(map[string]int, len(d.alphabet))
	for i, s := range d.alphabet {
		idx[s] = i
	}
	type pair struct {
		nKey string
		dSt  int // -1 = dead
	}
	nStart := map[int]bool{0: true}
	n.closure(nStart)
	canon := func(set map[int]bool) string {
		states := make([]int, 0, len(set))
		for s := range set {
			states = append(states, s)
		}
		sort.Ints(states)
		b := make([]byte, 0, len(states)*3)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return string(b)
	}
	type item struct {
		nSet map[int]bool
		dSt  int
	}
	seen := map[pair]bool{}
	queue := []item{{nStart, 0}}
	seen[pair{canon(nStart), 0}] = true
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// If the NFA accepts here and the DFA does not, inclusion fails.
		if cur.nSet[n.accept] && (cur.dSt < 0 || !d.accept[cur.dSt]) {
			return false
		}
		// Group NFA moves by symbol.
		moves := map[string]map[int]bool{}
		for s := range cur.nSet {
			if n.symTo[s] >= 0 {
				m := moves[n.symLbl[s]]
				if m == nil {
					m = map[int]bool{}
					moves[n.symLbl[s]] = m
				}
				m[n.symTo[s]] = true
			}
		}
		for sym, next := range moves {
			n.closure(next)
			dNext := -1
			if cur.dSt >= 0 {
				if ai, ok := idx[sym]; ok {
					dNext = d.trans[cur.dSt][ai]
				}
			}
			p := pair{canon(next), dNext}
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{next, dNext})
			}
		}
	}
	return true
}

// Included reports L(r1) ⊆ L(r2): every word the candidate generates
// is allowed by the model.
func Included(candidate, model *Regex) bool {
	alpha := map[string]bool{}
	candidate.Symbols(alpha)
	model.Symbols(alpha)
	alphabet := make([]string, 0, len(alpha))
	for s := range alpha {
		alphabet = append(alphabet, s)
	}
	sort.Strings(alphabet)
	nf := compileNFA(candidate)
	df := compileNFA(model).determinize(alphabet)
	return nf.includedIn(df)
}

// InsertionSafe reports whether interleaving any number of the given
// symbols anywhere into any word of r always yields a word of r — the
// shuffle L(r) ⧢ T* ⊆ L(r). The shuffle NFA is r's NFA with self-loops
// on every T symbol at every state; since Thompson states carry at
// most one symbol transition, the loops are added via fresh states.
func InsertionSafe(r *Regex, tags []string) bool {
	if len(tags) == 0 {
		return true
	}
	n := compileNFA(r)
	states := len(n.eps)
	for st := 0; st < states; st++ {
		for _, tg := range tags {
			// st --tg--> st, encoded as st -ε-> fresh -tg-> fresh2 -ε-> st.
			f1 := n.addState()
			f2 := n.addState()
			n.addEps(st, f1)
			n.addSym(f1, tg, f2)
			n.addEps(f2, st)
		}
	}
	alpha := map[string]bool{}
	r.Symbols(alpha)
	for _, tg := range tags {
		alpha[tg] = true
	}
	alphabet := make([]string, 0, len(alpha))
	for s := range alpha {
		alphabet = append(alphabet, s)
	}
	sort.Strings(alphabet)
	df := compileNFA(r).determinize(alphabet)
	return n.includedIn(df)
}

// DeletionSafe reports whether removing any subset of α occurrences
// from any word of r always yields a word of r: L(subst(r, α → α?))
// ⊆ L(r).
func DeletionSafe(r *Regex, alpha string) bool {
	return Included(substOpt(r, alpha), r)
}

// ReplaceSafe reports whether replacing any subset of α occurrences by
// the exact word w (in place) always yields a word of r:
// L(subst(r, α → α | w)) ⊆ L(r).
func ReplaceSafe(r *Regex, alpha string, w []string) bool {
	repl := make([]*Regex, len(w))
	for i, s := range w {
		repl[i] = Sym(s)
	}
	cand := mapSyms(r, func(s string) *Regex {
		if s == alpha {
			return Alt(Sym(alpha), Seq(repl...))
		}
		return Sym(s)
	})
	return Included(cand, r)
}

// RenameSafe reports whether renaming any subset of α occurrences to β
// in any word of r always yields a word of r:
// L(subst(r, α → α|β)) ⊆ L(r).
func RenameSafe(r *Regex, alpha, beta string) bool {
	return Included(substAlt(r, alpha, beta), r)
}

// substOpt replaces every occurrence of sym by sym?.
func substOpt(r *Regex, sym string) *Regex {
	return mapSyms(r, func(s string) *Regex {
		if s == sym {
			return Opt(Sym(s))
		}
		return Sym(s)
	})
}

// substAlt replaces every occurrence of a by (a|b).
func substAlt(r *Regex, a, b string) *Regex {
	return mapSyms(r, func(s string) *Regex {
		if s == a {
			return Alt(Sym(a), Sym(b))
		}
		return Sym(s)
	})
}

func mapSyms(r *Regex, f func(string) *Regex) *Regex {
	switch r.Op {
	case OpEpsilon:
		return Epsilon()
	case OpSym:
		return f(r.Sym)
	default:
		kids := make([]*Regex, len(r.Kids))
		for i, k := range r.Kids {
			kids[i] = mapSyms(k, f)
		}
		return &Regex{Op: r.Op, Kids: kids}
	}
}
