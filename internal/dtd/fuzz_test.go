package dtd_test

import (
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/xmark"
)

// FuzzParseSchema feeds arbitrary bytes to the schema parser (both
// compact and classic <!ELEMENT> notation go through it). The parser
// must reject garbage with an error — never panic, never hang: the
// nesting-depth and input-size limits bound the work on any input.
func FuzzParseSchema(f *testing.F) {
	seeds := []string{
		xmark.SchemaText,
		"doc <- (a | b)*\na <- c\nb <- c\nc <- #PCDATA",
		"r <- a\na <- (b, c, e)*\nb <- f\nc <- #PCDATA\ne <- f?\nf <- (g | e)\ng <- #PCDATA",
		"bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- first?, last\nfirst <- #PCDATA\nlast <- #PCDATA\nprice <- #PCDATA",
		"<!ELEMENT doc (a|b)*>\n<!ELEMENT a (c)>\n<!ELEMENT b (c)>\n<!ELEMENT c (#PCDATA)>",
		"r <- (x | y | z)*\nx <- (x | y | z)*\ny <- (x | y | z)*\nz <- #PCDATA",
		"a <- ((((((b))))))\nb <- ()",
		"a <- b+, c*\nb <- ()\nc <- ()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := dtd.Parse(input)
		if err != nil {
			return
		}
		if d == nil {
			t.Fatal("Parse returned nil DTD with nil error")
		}
	})
}
