package dtd

import (
	"strings"
	"testing"

	"xqindep/internal/guard"
)

func TestParseLimits(t *testing.T) {
	nestedModel := func(n int) string {
		return "doc <- " + strings.Repeat("(", n) + "a" + strings.Repeat(")", n) + "\na <- ()\n"
	}
	cases := []struct {
		name  string
		input string
		lim   guard.Limits
		ok    bool
	}{
		{"normal schema", "doc <- (a | b)*\na <- ()\nb <- ()", guard.Limits{MaxParseDepth: 64}, true},
		{"nesting under limit", nestedModel(10), guard.Limits{MaxParseDepth: 64}, true},
		{"nesting over limit", nestedModel(200), guard.Limits{MaxParseDepth: 64}, false},
		{"default depth rejects pathological nesting", nestedModel(100000), guard.Limits{}, false},
		{"input under size limit", "doc <- ()", guard.Limits{MaxParseInput: 64}, true},
		{"input over size limit", "doc <- ()" + strings.Repeat(" ", 100), guard.Limits{MaxParseInput: 64}, false},
		{"classic notation nesting over limit",
			"<!ELEMENT doc " + strings.Repeat("(", 200) + "a" + strings.Repeat(")", 200) + "><!ELEMENT a EMPTY>",
			guard.Limits{MaxParseDepth: 64}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseLimited(c.input, c.lim)
			if c.ok && err != nil {
				t.Errorf("ParseLimited = %v, want success", err)
			}
			if !c.ok && err == nil {
				t.Errorf("ParseLimited succeeded, want limit error")
			}
		})
	}
}

func TestRegexValidate(t *testing.T) {
	cases := []struct {
		name string
		r    *Regex
		ok   bool
	}{
		{"epsilon", Epsilon(), true},
		{"symbol", Sym("a"), true},
		{"well-formed composite", Star(Alt(Sym("a"), Seq(Sym("b"), Sym("c")))), true},
		{"nil regex", nil, false},
		{"unknown op", &Regex{Op: Op(99)}, false},
		{"empty symbol", &Regex{Op: OpSym}, false},
		{"unary sequence", &Regex{Op: OpSeq, Kids: []*Regex{Sym("a")}}, false},
		{"childless star", &Regex{Op: OpStar}, false},
		{"invalid nested child", Star(&Regex{Op: Op(99)}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.r.Validate()
			if c.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !c.ok && err == nil {
				t.Errorf("Validate = nil, want error")
			}
		})
	}
}

// TestNewRejectsInvalidRegex: DTD construction validates content
// models instead of panicking later in NFA compilation.
func TestNewRejectsInvalidRegex(t *testing.T) {
	_, err := New("doc", map[string]*Regex{"doc": {Op: Op(99)}})
	if err == nil {
		t.Fatal("New accepted an invalid content model")
	}
}
