package dtd

import (
	"math/rand"
	"testing"
)

func re(t *testing.T, s string) *Regex {
	t.Helper()
	r, err := parseRegex(s)
	if err != nil {
		t.Fatalf("parseRegex(%q): %v", s, err)
	}
	return r
}

func TestIncluded(t *testing.T) {
	cases := []struct {
		cand, model string
		want        bool
	}{
		{"a", "a", true},
		{"a", "a?", true},
		{"a?", "a", false}, // ε not in L(a)
		{"a, b", "a, b?", true},
		{"a, b?", "a, b", false},
		{"(a | b)*", "(a | b | c)*", true},
		{"(a | b | c)*", "(a | b)*", false},
		{"a+", "a*", true},
		{"a*", "a+", false},
		{"a, a", "a+", true},
		{"a+", "a, a", false},
		{"()", "a*", true},
		{"b", "a*", false}, // symbol outside the model
	}
	for _, c := range cases {
		if got := Included(re(t, c.cand), re(t, c.model)); got != c.want {
			t.Errorf("Included(%q, %q) = %v, want %v", c.cand, c.model, got, c.want)
		}
	}
}

// TestIncludedAgainstSampling property-checks inclusion against word
// sampling: if inclusion holds, every sampled candidate word must
// match the model; if it fails, sampling should eventually find a
// witness (not asserted — sampling is incomplete).
func TestIncludedAgainstSampling(t *testing.T) {
	exprs := []string{"a", "a?", "a, b", "(a | b)*", "a+", "(a, b?)+", "a, (b | c)*", "()"}
	rng := rand.New(rand.NewSource(8))
	for _, cs := range exprs {
		for _, ms := range exprs {
			cand, model := re(t, cs), re(t, ms)
			if !Included(cand, model) {
				continue
			}
			for i := 0; i < 100; i++ {
				w := cand.Sample(rng, 0.5, nil)
				if !model.Matches(w) {
					t.Fatalf("Included(%q,%q) but word %v not in model", cs, ms, w)
				}
			}
		}
	}
}

func TestDeletionSafe(t *testing.T) {
	cases := []struct {
		model string
		sym   string
		want  bool
	}{
		{"a*", "a", true},
		{"a+", "a", false}, // deleting the last a empties it
		{"a?", "a", true},
		{"a, b*", "b", true},
		{"a, b*", "a", false},
		{"(a | b)*", "a", true},
		{"title, author*", "author", true},
		{"title, author*", "title", false},
	}
	for _, c := range cases {
		if got := DeletionSafe(re(t, c.model), c.sym); got != c.want {
			t.Errorf("DeletionSafe(%q, %s) = %v, want %v", c.model, c.sym, got, c.want)
		}
	}
}

func TestInsertionSafe(t *testing.T) {
	cases := []struct {
		model string
		tags  []string
		want  bool
	}{
		{"a*", []string{"a"}, true},
		{"a?", []string{"a"}, false}, // two a's break a?
		{"(a | b)*", []string{"a", "b"}, true},
		{"(a | b)*", []string{"c"}, false},
		{"a, b*", []string{"b"}, false}, // b before a breaks order (arbitrary position)
		{"b*, a", []string{"b"}, false},
		{"(S | b)*", []string{"S"}, true},
		{"a*", nil, true},
	}
	for _, c := range cases {
		if got := InsertionSafe(re(t, c.model), c.tags); got != c.want {
			t.Errorf("InsertionSafe(%q, %v) = %v, want %v", c.model, c.tags, got, c.want)
		}
	}
}

func TestRenameSafe(t *testing.T) {
	cases := []struct {
		model string
		a, b  string
		want  bool
	}{
		{"(a | b)*", "a", "b", true},
		{"(a | b)*", "b", "a", true},
		{"a, b", "a", "b", false},
		{"(bold | keyword | emph)*", "bold", "emph", true},
	}
	for _, c := range cases {
		if got := RenameSafe(re(t, c.model), c.a, c.b); got != c.want {
			t.Errorf("RenameSafe(%q, %s→%s) = %v, want %v", c.model, c.a, c.b, got, c.want)
		}
	}
}
