package dtd

import (
	"sort"

	"xqindep/internal/bitset"
	"xqindep/internal/guard"
)

// SymID is a dense interned symbol ID, valid for one Compiled schema.
// IDs follow the DTD's canonical type order (start symbol first, then
// sorted), with StringType interned last; dense engines use them to
// index flat tables and bitset rows instead of hashing strings.
type SymID uint16

// MaxCompiledTypes bounds the number of element types a schema may
// declare and still be compiled. The cap keeps the precomputed
// closure tables (|Σ| bitsets of |Σ| bits each) small; schemas beyond
// it — only adversarial inputs get anywhere near — fail compilation
// with a "symbols" LimitError and the analysis ladder degrades to the
// map-based methods, which have no such bound.
const MaxCompiledTypes = 4096

// Compiled is the compile-once/analyze-many schema artifact: Σ
// interned into dense symbol IDs plus every schema-derived table the
// analysis engines consult per step — child lists and successor
// bitsets (⇒d), the reachability closure, sibling order (<r) in both
// directions, recursion flags, minimal heights, and the label index.
// A Compiled is immutable after construction and safe for concurrent
// use; all returned slices, maps and bitsets are shared read-only
// views that callers must not mutate.
//
// Obtain instances through Compile (or a CompileCache), which keys on
// DTD.Fingerprint so concurrent analyses of the same schema share one
// artifact.
type Compiled struct {
	d         *DTD
	syms      []string
	index     map[string]SymID
	start     SymID
	stringSym SymID

	children  [][]SymID
	childSet  []bitset.Set
	parents   [][]SymID
	parentNms [][]string
	reach     []bitset.Set

	follow     []map[SymID]bitset.Set
	precede    []map[SymID]bitset.Set
	followNms  []map[SymID][]string
	precedeNms []map[SymID][]string

	recursive bitset.Set
	recCount  int
	minHeight []int
	byLabel   map[string]bitset.Set

	// checksum digests the analysis-relevant tables at compilation
	// time; Verify recomputes it so the CompileCache can reject a
	// corrupted resident on hit (see verify.go).
	checksum uint64
}

// NewCompiled compiles d into its dense artifact. It fails with a
// *guard.LimitError (Resource "symbols", unwrapping to
// ErrBudgetExceeded) when the schema exceeds MaxCompiledTypes.
// Production callers should prefer Compile, which memoizes the result
// by fingerprint; constructing ad hoc in serving paths defeats the
// cache (and is flagged by the xqvet compilecache check).
func NewCompiled(d *DTD) (*Compiled, error) {
	if len(d.Types) > MaxCompiledTypes {
		return nil, &guard.LimitError{Resource: "symbols", Limit: MaxCompiledTypes}
	}
	n := len(d.Types) + 1 // + StringType
	c := &Compiled{
		d:          d,
		syms:       make([]string, n),
		index:      make(map[string]SymID, n),
		children:   make([][]SymID, n),
		childSet:   make([]bitset.Set, n),
		parents:    make([][]SymID, n),
		parentNms:  make([][]string, n),
		reach:      make([]bitset.Set, n),
		follow:     make([]map[SymID]bitset.Set, n),
		precede:    make([]map[SymID]bitset.Set, n),
		followNms:  make([]map[SymID][]string, n),
		precedeNms: make([]map[SymID][]string, n),
		minHeight:  make([]int, n),
		byLabel:    make(map[string]bitset.Set),
	}
	for i, t := range d.Types {
		c.syms[i] = t
		c.index[t] = SymID(i)
	}
	c.stringSym = SymID(len(d.Types))
	c.syms[c.stringSym] = StringType
	c.index[StringType] = c.stringSym
	c.start = c.index[d.Start]

	// ⇒d: child lists, successor bitsets, reverse edges.
	for i, t := range d.Types {
		kids := d.ChildTypes(t)
		row := make([]SymID, len(kids))
		set := bitset.New(n)
		for j, k := range kids {
			row[j] = c.index[k]
			set.Add(int(row[j]))
		}
		c.children[i] = row
		c.childSet[i] = set
		for _, k := range row {
			c.parents[k] = append(c.parents[k], SymID(i))
		}
	}
	for i := range c.parents {
		sort.Slice(c.parents[i], func(a, b int) bool {
			return c.syms[c.parents[i][a]] < c.syms[c.parents[i][b]]
		})
		nms := make([]string, len(c.parents[i]))
		for j, p := range c.parents[i] {
			nms[j] = c.syms[p]
		}
		c.parentNms[i] = nms
	}

	c.computeReach(n)

	// Sibling order <r, from the per-parent precedes relation the DTD
	// already derives from each content model.
	for i, t := range d.Types {
		pre := d.precedes[t]
		if len(pre) == 0 {
			continue
		}
		fw := make(map[SymID]bitset.Set)
		fwN := make(map[SymID][]string)
		bw := make(map[SymID]bitset.Set)
		for alpha, after := range pre {
			a := c.index[alpha]
			set := bitset.New(n)
			nms := make([]string, 0, len(after))
			for beta := range after {
				b := c.index[beta]
				set.Add(int(b))
				nms = append(nms, beta)
				bs := bw[b]
				if bs == nil {
					bs = bitset.New(n)
					bw[b] = bs
				}
				bs.Add(int(a))
			}
			sort.Strings(nms)
			fw[a] = set
			fwN[a] = nms
		}
		bwN := make(map[SymID][]string, len(bw))
		for b, set := range bw {
			nms := make([]string, 0, set.Count())
			set.ForEach(func(a int) { nms = append(nms, c.syms[a]) })
			sort.Strings(nms)
			bwN[b] = nms
		}
		c.follow[i] = fw
		c.followNms[i] = fwN
		c.precede[i] = bw
		c.precedeNms[i] = bwN
	}

	rec := d.RecursiveTypes()
	c.recursive = bitset.New(n)
	for t := range rec {
		c.recursive.Add(int(c.index[t]))
	}
	c.recCount = len(rec)
	for t, h := range d.MinHeights() {
		c.minHeight[c.index[t]] = h
	}
	for i, t := range c.syms {
		l := d.LabelOf(t)
		set := c.byLabel[l]
		if set == nil {
			set = bitset.New(n)
			c.byLabel[l] = set
		}
		set.Add(i)
	}
	c.checksum = c.computeChecksum()
	return c, nil
}

// computeReach fills the ⇒d transitive closure. Types are processed
// in DFS postorder (children before parents), which makes the outer
// fixpoint converge in one pass plus a verification pass on acyclic
// schemas; cycles add passes proportional to the recursion depth.
func (c *Compiled) computeReach(n int) {
	for i := range c.reach {
		c.reach[i] = c.childSet[i].Clone()
		if c.reach[i] == nil {
			c.reach[i] = bitset.New(n)
		}
	}
	post := make([]SymID, 0, n)
	state := make([]uint8, n) // 0 unseen, 1 on stack, 2 done
	var stack []SymID
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		stack = append(stack[:0], SymID(s))
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			if state[t] == 0 {
				state[t] = 1
				for _, k := range c.children[t] {
					if state[k] == 0 {
						stack = append(stack, k)
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if state[t] == 1 {
				state[t] = 2
				post = append(post, t)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range post {
			r := &c.reach[t]
			for _, k := range c.children[t] {
				if r.Or(c.reach[k]) > 0 {
					changed = true
				}
			}
		}
	}
}

// DTD returns the source schema.
func (c *Compiled) DTD() *DTD { return c.d }

// NumSyms returns the size of the interned symbol space, including
// StringType.
func (c *Compiled) NumSyms() int { return len(c.syms) }

// SymOf resolves a type name to its dense ID.
func (c *Compiled) SymOf(name string) (SymID, bool) {
	s, ok := c.index[name]
	return s, ok
}

// NameOf returns the type name of a dense ID.
func (c *Compiled) NameOf(s SymID) string { return c.syms[s] }

// Start returns the interned start symbol sd.
func (c *Compiled) Start() SymID { return c.start }

// StringSym returns the interned StringType symbol.
func (c *Compiled) StringSym() SymID { return c.stringSym }

// Children returns the interned child list of s (the β with s ⇒d β),
// in the DTD's sorted child order.
func (c *Compiled) Children(s SymID) []SymID { return c.children[s] }

// ChildSet returns the successor bitset of s.
func (c *Compiled) ChildSet(s SymID) bitset.Set { return c.childSet[s] }

// Parents returns the interned parent symbols of s, sorted by name.
func (c *Compiled) Parents(s SymID) []SymID { return c.parents[s] }

// ParentNames returns the parent type names of name, sorted. The
// slice is shared; callers must not mutate it.
func (c *Compiled) ParentNames(name string) []string {
	if s, ok := c.index[name]; ok {
		return c.parentNms[s]
	}
	return nil
}

// Reach returns the ⇒d transitive-closure bitset of s: every symbol
// reachable in one or more derivation steps.
func (c *Compiled) Reach(s SymID) bitset.Set { return c.reach[s] }

// Reachable reports s ⇒d* t in one or more steps.
func (c *Compiled) Reachable(s, t SymID) bool { return c.reach[s].Has(int(t)) }

// FollowingSiblings returns the symbols that may follow alpha among
// the children of parent (α <r β); nil when none.
func (c *Compiled) FollowingSiblings(parent, alpha SymID) bitset.Set {
	return c.follow[parent][alpha]
}

// PrecedingSiblings returns the symbols that may precede beta among
// the children of parent; nil when none.
func (c *Compiled) PrecedingSiblings(parent, beta SymID) bitset.Set {
	return c.precede[parent][beta]
}

// FollowingSiblingNames is DTD.FollowingSiblingTypes served from the
// precomputed tables: same sorted contents, but a shared slice with
// no per-call allocation. Callers must not mutate it.
func (c *Compiled) FollowingSiblingNames(parent, alpha string) []string {
	p, ok := c.index[parent]
	if !ok || p == c.stringSym {
		return nil
	}
	a, ok := c.index[alpha]
	if !ok {
		return nil
	}
	return c.followNms[p][a]
}

// PrecedingSiblingNames is DTD.PrecedingSiblingTypes from the
// precomputed tables; the returned slice is shared.
func (c *Compiled) PrecedingSiblingNames(parent, beta string) []string {
	p, ok := c.index[parent]
	if !ok || p == c.stringSym {
		return nil
	}
	b, ok := c.index[beta]
	if !ok {
		return nil
	}
	return c.precedeNms[p][b]
}

// IsRecursive reports whether s lies on a ⇒d cycle.
func (c *Compiled) IsRecursive(s SymID) bool { return c.recursive.Has(int(s)) }

// RecursiveCount returns the number of recursive types.
func (c *Compiled) RecursiveCount() int { return c.recCount }

// MinHeight returns the minimal valid-tree height of s (-1 when no
// finite tree exists).
func (c *Compiled) MinHeight(s SymID) int { return c.minHeight[s] }

// LabelSyms returns the symbols whose element label is label (µ⁻¹);
// nil when the label is not produced by the schema.
func (c *Compiled) LabelSyms(label string) bitset.Set { return c.byLabel[label] }

// Fingerprint returns the source schema's content fingerprint — the
// compilation-cache key.
func (c *Compiled) Fingerprint() string { return c.d.Fingerprint() }
