package dtd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xqindep/internal/xmltree"
)

// figure1DTD is the DTD of the paper's Figure 1:
// sd=doc, d(doc)=(a|b)*, d(a)=c, d(b)=c.
const figure1DTD = `
doc <- (a | b)*
a <- c
b <- c
c <- ()
`

func TestParseCompact(t *testing.T) {
	d := MustParse(figure1DTD)
	if d.Start != "doc" {
		t.Errorf("start = %q", d.Start)
	}
	if d.Size() != 4 {
		t.Errorf("size = %d, want 4", d.Size())
	}
	if !d.Reaches("doc", "a") || !d.Reaches("a", "c") || !d.Reaches("doc", "b") || !d.Reaches("b", "c") {
		t.Errorf("reachability wrong: %v", d)
	}
	if d.Reaches("a", "b") || d.Reaches("c", "doc") {
		t.Errorf("spurious reachability")
	}
}

func TestParseStartDirectiveAndComments(t *testing.T) {
	d := MustParse(`
# bibliography
start bib
other <- ()
bib <- book*          # the root
book <- title, author*
title <- #PCDATA
author <- #PCDATA
`)
	if d.Start != "bib" {
		t.Errorf("start = %q", d.Start)
	}
	if got := d.Content["book"].String(); got != "title, author*" {
		t.Errorf("book model = %q", got)
	}
}

func TestParseClassic(t *testing.T) {
	d := MustParse(`
<!ELEMENT bib (book*)>
<!ELEMENT book (title, (author+ | editor+)?, price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT empty EMPTY>
`)
	if d.Start != "bib" {
		t.Errorf("start = %q", d.Start)
	}
	if !d.Reaches("book", "editor") {
		t.Errorf("book should reach editor")
	}
	if d.Content["empty"].Op != OpEpsilon {
		t.Errorf("EMPTY should parse to epsilon")
	}
	if !d.Reaches("title", StringType) {
		t.Errorf("title should contain text")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"a <- b",              // b undeclared
		"a <- (b",             // unbalanced
		"a <- ()\na <- ()",    // duplicate
		"S <- ()",             // reserved
		"a <- ()\nstart zz\n", // unknown start: zz has no content model
		"a",                   // missing arrow
		"<!ELEMENT a ANY>",    // ANY unsupported
		"a! <- ()",            // bad name
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestRegexStringRoundTrip(t *testing.T) {
	exprs := []string{
		"(a | b)*",
		"title, author*",
		"a, (b | c)+, d?",
		"#PCDATA",
		"(a, b) | (c, d)",
		"()",
		"(#PCDATA | a)*",
	}
	for _, e := range exprs {
		r, err := parseRegex(e)
		if err != nil {
			t.Fatalf("parseRegex(%q): %v", e, err)
		}
		r2, err := parseRegex(r.String())
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", e, r.String(), err)
		}
		if r.String() != r2.String() {
			t.Errorf("print not stable: %q -> %q -> %q", e, r.String(), r2.String())
		}
	}
}

func TestRegexMatches(t *testing.T) {
	cases := []struct {
		re   string
		word []string
		want bool
	}{
		{"(a | b)*", nil, true},
		{"(a | b)*", []string{"a", "a", "b", "a"}, true},
		{"(a | b)*", []string{"a", "c"}, false},
		{"a, b", []string{"a", "b"}, true},
		{"a, b", []string{"b", "a"}, false},
		{"a, b", []string{"a"}, false},
		{"a+", nil, false},
		{"a+", []string{"a", "a", "a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a", "a"}, false},
		{"title, (author+ | editor+)?, price", []string{"title", "price"}, true},
		{"title, (author+ | editor+)?, price", []string{"title", "author", "author", "price"}, true},
		{"title, (author+ | editor+)?, price", []string{"title", "author", "editor", "price"}, false},
		{"()", nil, true},
		{"()", []string{"a"}, false},
	}
	for _, c := range cases {
		r, err := parseRegex(c.re)
		if err != nil {
			t.Fatalf("parseRegex(%q): %v", c.re, err)
		}
		if got := r.Matches(c.word); got != c.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", c.re, c.word, got, c.want)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		re   string
		want bool
	}{
		{"a*", true}, {"a+", false}, {"a?", true}, {"()", true},
		{"a, b*", false}, {"a?, b*", true}, {"a | b*", true}, {"a | b", false},
	}
	for _, c := range cases {
		r, _ := parseRegex(c.re)
		if got := r.Nullable(); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.re, got, c.want)
		}
	}
}

// TestPrecedesPaperExample checks the paper's worked example:
// <_{a,(b|c)*} = {(a,b),(a,c),(b,c),(c,b),(c,c),(b,b)}.
func TestPrecedesPaperExample(t *testing.T) {
	r, _ := parseRegex("a, (b | c)*")
	p := r.Precedes()
	want := map[[2]string]bool{
		{"a", "b"}: true, {"a", "c"}: true, {"b", "c"}: true,
		{"c", "b"}: true, {"c", "c"}: true, {"b", "b"}: true,
	}
	got := make(map[[2]string]bool)
	for a, m := range p {
		for b := range m {
			got[[2]string{a, b}] = true
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	for pr := range want {
		if !got[pr] {
			t.Errorf("missing pair %v", pr)
		}
	}
	for pr := range got {
		if !want[pr] {
			t.Errorf("spurious pair %v", pr)
		}
	}
}

// TestPrecedesConsistentWithSamples property-checks that for random
// sampled words, observed orderings are always in Precedes.
func TestPrecedesConsistentWithSamples(t *testing.T) {
	exprs := []string{"a, (b | c)*", "(a | b)+, c?", "(a?, b)*", "a, b, a"}
	rng := rand.New(rand.NewSource(7))
	for _, e := range exprs {
		r, _ := parseRegex(e)
		p := r.Precedes()
		for trial := 0; trial < 200; trial++ {
			w := r.Sample(rng, 0.5, nil)
			if !r.Matches(w) {
				t.Fatalf("Sample(%q) produced non-member %v", e, w)
			}
			for i := 0; i < len(w); i++ {
				for j := i + 1; j < len(w); j++ {
					if !p[w[i]][w[j]] {
						t.Fatalf("observed %s before %s in %v of %q, not in Precedes", w[i], w[j], w, e)
					}
				}
			}
		}
	}
}

func TestSiblingTypes(t *testing.T) {
	d := MustParse("a <- b+, c*\nb <- ()\nc <- ()")
	if got := d.FollowingSiblingTypes("a", "b"); strings.Join(got, ",") != "b,c" {
		t.Errorf("following of b = %v", got)
	}
	if got := d.FollowingSiblingTypes("a", "c"); strings.Join(got, ",") != "c" {
		t.Errorf("following of c = %v", got)
	}
	if got := d.PrecedingSiblingTypes("a", "c"); strings.Join(got, ",") != "b,c" {
		t.Errorf("preceding of c = %v", got)
	}
	if got := d.PrecedingSiblingTypes("a", "b"); strings.Join(got, ",") != "b" {
		t.Errorf("preceding of b = %v", got)
	}
}

func TestClosures(t *testing.T) {
	d := MustParse(figure1DTD)
	desc := d.DescendantClosure([]string{"doc"})
	for _, want := range []string{"a", "b", "c"} {
		if !desc[want] {
			t.Errorf("descendant closure missing %s", want)
		}
	}
	if desc["doc"] {
		t.Errorf("doc descends from itself in non-recursive schema")
	}
	anc := d.AncestorClosure([]string{"c"})
	for _, want := range []string{"a", "b", "doc"} {
		if !anc[want] {
			t.Errorf("ancestor closure missing %s", want)
		}
	}
}

// d1 is the recursive schema of Section 5:
// r ← a  b,c,e ← f  a ← (b,c,e)*  f ← a,g
const d1DTD = `
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`

func TestRecursion(t *testing.T) {
	d := MustParse(d1DTD)
	rec := d.RecursiveTypes()
	for _, want := range []string{"a", "b", "c", "e", "f"} {
		if !rec[want] {
			t.Errorf("type %s should be recursive", want)
		}
	}
	for _, not := range []string{"r", "g"} {
		if rec[not] {
			t.Errorf("type %s should not be recursive", not)
		}
	}
	if !d.IsRecursive() {
		t.Errorf("d1 is vertically recursive")
	}
	if MustParse(figure1DTD).IsRecursive() {
		t.Errorf("figure 1 DTD is not recursive")
	}
	if !MustParse("a <- a?").IsRecursive() {
		t.Errorf("self-loop is recursive")
	}
	// Recursive but unreachable from start: not vertically recursive.
	d2 := MustParse("root <- ()\nx <- x?")
	if d2.IsRecursive() {
		t.Errorf("unreachable recursion should not count")
	}
}

func TestMinHeights(t *testing.T) {
	d := MustParse(d1DTD)
	h := d.MinHeights()
	// a can be empty: height 1. r <- a: height 2. b <- f, f <- a,g.
	want := map[string]int{"a": 1, "r": 2, "g": 1, "f": 2, "b": 3, "c": 3, "e": 3, StringType: 0}
	for ty, w := range want {
		if h[ty] != w {
			t.Errorf("minHeight(%s) = %d, want %d", ty, h[ty], w)
		}
	}
	// A type with no finite expansion.
	bad := MustParse("a <- b\nb <- a")
	hb := bad.MinHeights()
	if hb["a"] != -1 || hb["b"] != -1 {
		t.Errorf("unsatisfiable types should map to -1: %v", hb)
	}
}

func TestValidateFigure1(t *testing.T) {
	d := MustParse(figure1DTD)
	tr := xmltree.MustParse("<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>")
	nu, err := d.TypeAssignment(tr)
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if nu[tr.Root] != "doc" {
		t.Errorf("root typed %q", nu[tr.Root])
	}
	s := tr.Store
	for _, k := range s.Children(tr.Root) {
		if nu[k] != s.Tag(k) {
			t.Errorf("child typed %q, tagged %q", nu[k], s.Tag(k))
		}
	}

	for _, invalid := range []string{
		"<doc><c/></doc>",            // c not allowed under doc
		"<a><c/></a>",                // wrong root
		"<doc><a/></doc>",            // a must contain c
		"<doc><a><c/><c/></a></doc>", // a has exactly one c
		"<doc>text</doc>",            // no text under doc
	} {
		tr := xmltree.MustParse(invalid)
		if d.IsValid(tr) {
			t.Errorf("invalid document accepted: %s", invalid)
		}
	}
}

func TestValidateTextContent(t *testing.T) {
	d := MustParse("a <- (#PCDATA | b)*\nb <- ()")
	for _, valid := range []string{"<a/>", "<a>x</a>", "<a>x<b/>y</a>", "<a><b/><b/></a>"} {
		if !d.IsValid(xmltree.MustParse(valid)) {
			t.Errorf("valid mixed content rejected: %s", valid)
		}
	}
	d2 := MustParse("a <- #PCDATA\n")
	if d2.IsValid(xmltree.MustParse("<a/>")) {
		t.Errorf("missing mandatory text accepted")
	}
}

func TestValidateEDTD(t *testing.T) {
	// XML-Schema-style: a "name" element has different content under
	// person than under company.
	d := MustParse(`
start db
db <- person*, company*
person <- pname
company <- cname
pname[name] <- first, last
cname[name] <- #PCDATA
first <- #PCDATA
last <- #PCDATA
`)
	if !d.IsExtended() {
		t.Errorf("schema should be an EDTD")
	}
	if d.LabelOf("pname") != "name" || d.LabelOf("first") != "first" {
		t.Errorf("labels wrong")
	}
	okDoc := xmltree.MustParse("<db><person><name><first>a</first><last>b</last></name></person><company><name>acme</name></company></db>")
	nu, err := d.TypeAssignment(okDoc)
	if err != nil {
		t.Fatalf("valid EDTD document rejected: %v", err)
	}
	// The two <name> elements must get different types.
	var sawP, sawC bool
	for l, ty := range nu {
		if okDoc.Store.IsElement(l) && okDoc.Store.Tag(l) == "name" {
			switch ty {
			case "pname":
				sawP = true
			case "cname":
				sawC = true
			}
		}
	}
	if !sawP || !sawC {
		t.Errorf("EDTD typing did not distinguish name types: %v %v", sawP, sawC)
	}
	// Structured name under company is invalid.
	bad := xmltree.MustParse("<db><company><name><first>a</first><last>b</last></name></company></db>")
	if d.IsValid(bad) {
		t.Errorf("invalid EDTD document accepted")
	}
}

func TestGenerateTreeValid(t *testing.T) {
	schemas := []string{figure1DTD, d1DTD, `
bib <- book*
book <- title, author+, price?
title <- #PCDATA
author <- #PCDATA
price <- #PCDATA
`}
	rng := rand.New(rand.NewSource(42))
	for _, schema := range schemas {
		d := MustParse(schema)
		for trial := 0; trial < 25; trial++ {
			tr, err := d.GenerateTree(rng, 0.55, 8)
			if err != nil {
				t.Fatalf("GenerateTree: %v", err)
			}
			if err := d.Validate(tr); err != nil {
				t.Fatalf("generated document invalid for\n%s: %v\ndoc: %s", schema, err, tr.Store.String(tr.Root))
			}
		}
	}
	// Unsatisfiable start symbol errors out.
	bad := MustParse("a <- b\nb <- a")
	if _, err := bad.GenerateTree(rng, 0.5, 5); err == nil {
		t.Errorf("expected error for unsatisfiable schema")
	}
}

// TestGeneratedTreesAlwaysValid is the package's main property test:
// for random repetition probabilities and depths, generation always
// yields valid documents of the recursive schema d1.
func TestGeneratedTreesAlwaysValid(t *testing.T) {
	d := MustParse(d1DTD)
	f := func(seed int64, pRaw uint8, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(pRaw%90) / 100.0
		depth := 2 + int(depthRaw%10)
		tr, err := d.GenerateTree(rng, p, depth)
		if err != nil {
			return false
		}
		return d.IsValid(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDTDString(t *testing.T) {
	d := MustParse(figure1DTD)
	s := d.String()
	if !strings.HasPrefix(s, "doc <- ") {
		t.Errorf("String should start with start symbol: %q", s)
	}
	// Round-trip: parse the printed form.
	d2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse of String(): %v\n%s", err, s)
	}
	if d2.Start != d.Start || d2.Size() != d.Size() {
		t.Errorf("round trip changed schema")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Errorf("empty start accepted")
	}
	if _, err := New("a", map[string]*Regex{"b": Epsilon()}); err == nil {
		t.Errorf("undeclared start accepted")
	}
	if _, err := New("a", map[string]*Regex{"a": Sym("zz")}); err == nil {
		t.Errorf("undeclared referenced type accepted")
	}
	if _, err := NewExtended("a", map[string]*Regex{"a": Epsilon()}, map[string]string{"zz": "x"}); err == nil {
		t.Errorf("label for undeclared type accepted")
	}
	if _, err := NewExtended("a", map[string]*Regex{"a": Epsilon()}, map[string]string{"a": ""}); err == nil {
		t.Errorf("empty label accepted")
	}
}
