package dtd

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"xqindep/internal/guard"
)

var compBib = MustParse(`
bib <- book*
book <- title, author*, price?
title <- #PCDATA
author <- first?, last?, email?
first <- #PCDATA
last <- #PCDATA
email <- #PCDATA
price <- #PCDATA
`)

var compRec = MustParse(`
r <- a
a <- (b, c, e)*
b <- f
c <- f
e <- f
f <- a, g
g <- ()
`)

func mustCompile(t *testing.T, d *DTD) *Compiled {
	t.Helper()
	c, err := NewCompiled(d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompiledInterning(t *testing.T) {
	c := mustCompile(t, compBib)
	if c.NumSyms() != len(compBib.Types)+1 {
		t.Fatalf("NumSyms = %d", c.NumSyms())
	}
	// Symbol order is the DTD's canonical Types order, StringType last.
	for i, name := range compBib.Types {
		s, ok := c.SymOf(name)
		if !ok || s != SymID(i) || c.NameOf(s) != name {
			t.Errorf("SymOf(%q) = %d,%v", name, s, ok)
		}
	}
	if c.NameOf(c.StringSym()) != StringType {
		t.Errorf("StringSym name = %q", c.NameOf(c.StringSym()))
	}
	if c.NameOf(c.Start()) != "bib" {
		t.Errorf("Start name = %q", c.NameOf(c.Start()))
	}
	if _, ok := c.SymOf("nosuch"); ok {
		t.Error("SymOf on undeclared type succeeded")
	}
	if c.DTD() != compBib || c.Fingerprint() != compBib.Fingerprint() {
		t.Error("DTD/Fingerprint do not round-trip")
	}
}

func TestCompiledChildrenParentsMatchDTD(t *testing.T) {
	for _, d := range []*DTD{compBib, compRec} {
		c := mustCompile(t, d)
		for _, name := range d.Types {
			s, _ := c.SymOf(name)
			want := d.ChildTypes(name)
			var got []string
			for _, k := range c.Children(s) {
				got = append(got, c.NameOf(k))
			}
			if !reflect.DeepEqual(got, append([]string(nil), want...)) {
				t.Errorf("%s: Children(%s) = %v, want %v", d.Start, name, got, want)
			}
			for _, k := range want {
				ks, _ := c.SymOf(k)
				if !c.ChildSet(s).Has(int(ks)) {
					t.Errorf("%s: ChildSet(%s) missing %s", d.Start, name, k)
				}
			}
			if c.ChildSet(s).Count() != len(dedup(want)) {
				t.Errorf("%s: ChildSet(%s) count %d vs %v", d.Start, name, c.ChildSet(s).Count(), want)
			}
		}
		// Parents invert children.
		for _, name := range append(append([]string(nil), d.Types...), StringType) {
			s, _ := c.SymOf(name)
			var want []string
			for _, p := range d.Types {
				if d.Reaches(p, name) {
					want = append(want, p)
				}
			}
			sort.Strings(want)
			if got := c.ParentNames(name); !reflect.DeepEqual(append([]string{}, got...), append([]string{}, want...)) {
				t.Errorf("%s: ParentNames(%s) = %v, want %v", d.Start, name, got, want)
			}
			if len(c.Parents(s)) != len(want) {
				t.Errorf("%s: Parents(%s) len mismatch", d.Start, name)
			}
		}
	}
	if ParentNames := mustCompile(t, compBib).ParentNames("nosuch"); ParentNames != nil {
		t.Error("ParentNames on undeclared type non-nil")
	}
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestCompiledReachMatchesClosure(t *testing.T) {
	for _, d := range []*DTD{compBib, compRec} {
		c := mustCompile(t, d)
		for _, name := range d.Types {
			s, _ := c.SymOf(name)
			want := d.DescendantClosure([]string{name})
			for _, o := range append(append([]string(nil), d.Types...), StringType) {
				os, _ := c.SymOf(o)
				if c.Reachable(s, os) != want[o] {
					t.Errorf("%s: Reachable(%s,%s) = %v, closure says %v",
						d.Start, name, o, c.Reachable(s, os), want[o])
				}
			}
			if c.Reach(s).Count() != len(want) {
				t.Errorf("%s: Reach(%s) count %d, want %d", d.Start, name, c.Reach(s).Count(), len(want))
			}
		}
	}
}

func TestCompiledSiblingsMatchDTD(t *testing.T) {
	for _, d := range []*DTD{compBib, compRec} {
		c := mustCompile(t, d)
		all := append(append([]string(nil), d.Types...), StringType)
		for _, parent := range d.Types {
			for _, x := range all {
				wantF := d.FollowingSiblingTypes(parent, x)
				gotF := c.FollowingSiblingNames(parent, x)
				if !reflect.DeepEqual(append([]string{}, gotF...), append([]string{}, wantF...)) {
					t.Errorf("%s: following(%s,%s) = %v, want %v", d.Start, parent, x, gotF, wantF)
				}
				wantP := d.PrecedingSiblingTypes(parent, x)
				gotP := c.PrecedingSiblingNames(parent, x)
				if !reflect.DeepEqual(append([]string{}, gotP...), append([]string{}, wantP...)) {
					t.Errorf("%s: preceding(%s,%s) = %v, want %v", d.Start, parent, x, gotP, wantP)
				}
				// Bitset views agree with the name views.
				ps, _ := c.SymOf(parent)
				xs, _ := c.SymOf(x)
				if got := c.FollowingSiblings(ps, xs).Count(); got != len(wantF) {
					t.Errorf("%s: FollowingSiblings(%s,%s) count %d, want %d", d.Start, parent, x, got, len(wantF))
				}
				if got := c.PrecedingSiblings(ps, xs).Count(); got != len(wantP) {
					t.Errorf("%s: PrecedingSiblings(%s,%s) count %d, want %d", d.Start, parent, x, got, len(wantP))
				}
			}
		}
		if c.FollowingSiblingNames(StringType, "a") != nil || c.PrecedingSiblingNames(StringType, "a") != nil {
			t.Error("string type must have no sibling order")
		}
	}
}

func TestCompiledRecursionHeightsLabels(t *testing.T) {
	c := mustCompile(t, compRec)
	rec := compRec.RecursiveTypes()
	if c.RecursiveCount() != len(rec) {
		t.Errorf("RecursiveCount = %d, want %d", c.RecursiveCount(), len(rec))
	}
	mh := compRec.MinHeights()
	for _, name := range append(append([]string(nil), compRec.Types...), StringType) {
		s, _ := c.SymOf(name)
		if c.IsRecursive(s) != rec[name] {
			t.Errorf("IsRecursive(%s) = %v, want %v", name, c.IsRecursive(s), rec[name])
		}
		if c.MinHeight(s) != mh[name] {
			t.Errorf("MinHeight(%s) = %d, want %d", name, c.MinHeight(s), mh[name])
		}
	}
	// Plain DTD: every type labels itself; labels index the type.
	for _, name := range compRec.Types {
		s, _ := c.SymOf(name)
		set := c.LabelSyms(name)
		if set == nil || !set.Has(int(s)) || set.Count() != 1 {
			t.Errorf("LabelSyms(%s) = %v", name, set)
		}
	}
	if c.LabelSyms("nosuch") != nil {
		t.Error("LabelSyms on unknown label non-nil")
	}
}

func TestCompiledExtendedLabels(t *testing.T) {
	// An EDTD where two types share a label: µ⁻¹ must group them.
	d, err := Parse(`
doc <- a1, a2
a1[a] <- #PCDATA
a2[a] <- ()
`)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompile(t, d)
	set := c.LabelSyms("a")
	if set == nil || set.Count() != 2 {
		t.Fatalf("LabelSyms(a) = %v", set)
	}
	s1, _ := c.SymOf("a1")
	s2, _ := c.SymOf("a2")
	if !set.Has(int(s1)) || !set.Has(int(s2)) {
		t.Errorf("LabelSyms(a) misses a type: %v", set)
	}
	if c.LabelSyms("a1") != nil {
		t.Error("type name with a foreign label must not be a label")
	}
}

func TestCompiledSymbolLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("root <- ()\n")
	for i := 0; i < MaxCompiledTypes; i++ {
		fmt.Fprintf(&b, "t%04d <- ()\n", i)
	}
	d := MustParse(b.String())
	_, err := NewCompiled(d)
	if err == nil {
		t.Fatal("compiling an oversized schema must fail")
	}
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "symbols" {
		t.Fatalf("err = %v, want symbols LimitError", err)
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("err %v must unwrap to ErrBudgetExceeded", err)
	}
}

func TestCompileCacheCounters(t *testing.T) {
	cc := NewCompileCache(1)
	c1, err := cc.Get(compBib)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cc.Get(compBib)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second Get must return the resident artifact")
	}
	// A semantically identical schema written differently shares the
	// fingerprint, so it hits.
	same := MustParse(compBib.String())
	if c3, err := cc.Get(same); err != nil || c3 != c1 {
		t.Errorf("fingerprint-equal schema missed the cache (err %v)", err)
	}
	// A different schema evicts at capacity 1.
	if _, err := cc.Get(compRec); err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Resident != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Schemas) != 1 || st.Schemas[0].Fingerprint != compRec.Fingerprint() ||
		st.Schemas[0].Types != len(compRec.Types) || !st.Schemas[0].Recursive {
		t.Errorf("schemas = %+v", st.Schemas)
	}
	// Compile errors are reported, not cached as artifacts.
	var b strings.Builder
	b.WriteString("root <- ()\n")
	for i := 0; i < MaxCompiledTypes; i++ {
		fmt.Fprintf(&b, "t%04d <- ()\n", i)
	}
	if _, err := cc.Get(MustParse(b.String())); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Errorf("oversized schema through cache: %v", err)
	}
}

func TestCompileCacheConcurrent(t *testing.T) {
	cc := NewCompileCache(8)
	var wg sync.WaitGroup
	got := make([]*Compiled, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := cc.Get(compRec)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = c
		}(i)
	}
	wg.Wait()
	for _, c := range got[1:] {
		if c != got[0] {
			t.Fatal("concurrent Gets returned distinct artifacts")
		}
	}
	st := cc.Stats()
	if st.Resident != 1 || st.Hits+st.Misses != 16 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPackageCompileShared(t *testing.T) {
	a, err := Compile(compBib)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(compBib)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("package-level Compile must share one artifact per fingerprint")
	}
	if CompileCacheStats().Resident < 1 {
		t.Error("default cache reports no residents")
	}
}
