// Package dtd implements the schema substrate of the paper: DTDs
// (Σ, sd, d) whose content models are regular expressions over
// Σ ∪ {S} (S is the string type), validation of xmltree documents,
// the reachability relation α ⇒d β and the sibling-order relation
// α <r β used by chain inference, recursion analysis, random valid
// document generation, and Extended DTDs (Definition 7.1).
package dtd

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"xqindep/internal/guard"
)

// StringType is the reserved symbol S denoting the string (text)
// type. Element types may not use this name.
const StringType = "S"

// Op enumerates regular-expression constructors.
type Op int

const (
	// OpEpsilon matches the empty word. The empty regular
	// expression д(S) = ε is represented this way.
	OpEpsilon Op = iota
	// OpSym matches exactly one occurrence of Sym.
	OpSym
	// OpSeq matches the concatenation of Kids.
	OpSeq
	// OpAlt matches any one of Kids.
	OpAlt
	// OpStar matches zero or more repetitions of Kids[0].
	OpStar
	// OpPlus matches one or more repetitions of Kids[0].
	OpPlus
	// OpOpt matches zero or one occurrence of Kids[0].
	OpOpt
)

// Regex is a content-model regular expression over Σ ∪ {S}.
// Regexes are immutable after construction.
type Regex struct {
	Op   Op
	Sym  string   // OpSym only
	Kids []*Regex // OpSeq/OpAlt: 2+; OpStar/OpPlus/OpOpt: 1
}

// Epsilon returns the empty-word expression.
func Epsilon() *Regex { return &Regex{Op: OpEpsilon} }

// Sym returns the single-symbol expression.
func Sym(s string) *Regex { return &Regex{Op: OpSym, Sym: s} }

// Seq returns the concatenation of rs, flattening trivial cases.
func Seq(rs ...*Regex) *Regex {
	switch len(rs) {
	case 0:
		return Epsilon()
	case 1:
		return rs[0]
	}
	return &Regex{Op: OpSeq, Kids: rs}
}

// Alt returns the alternation of rs, flattening trivial cases.
func Alt(rs ...*Regex) *Regex {
	switch len(rs) {
	case 0:
		return Epsilon()
	case 1:
		return rs[0]
	}
	return &Regex{Op: OpAlt, Kids: rs}
}

// Star returns r*.
func Star(r *Regex) *Regex { return &Regex{Op: OpStar, Kids: []*Regex{r}} }

// Plus returns r+.
func Plus(r *Regex) *Regex { return &Regex{Op: OpPlus, Kids: []*Regex{r}} }

// Opt returns r?.
func Opt(r *Regex) *Regex { return &Regex{Op: OpOpt, Kids: []*Regex{r}} }

// Validate checks that r is structurally well formed: every node has a
// known Op and the child count the Op demands. DTD constructors run it
// on every content model so the traversal helpers below can assume a
// valid tree and degrade conservatively (instead of panicking) if one
// is mutated behind their back.
func (r *Regex) Validate() error {
	if r == nil {
		return fmt.Errorf("dtd: nil regex")
	}
	switch r.Op {
	case OpEpsilon:
		if len(r.Kids) != 0 {
			return fmt.Errorf("dtd: epsilon regex with %d children", len(r.Kids))
		}
	case OpSym:
		if r.Sym == "" {
			return fmt.Errorf("dtd: symbol regex with empty symbol")
		}
		if len(r.Kids) != 0 {
			return fmt.Errorf("dtd: symbol regex with %d children", len(r.Kids))
		}
	case OpSeq, OpAlt:
		if len(r.Kids) < 2 {
			return fmt.Errorf("dtd: %d-ary sequence/alternation", len(r.Kids))
		}
	case OpStar, OpPlus, OpOpt:
		if len(r.Kids) != 1 {
			return fmt.Errorf("dtd: postfix regex with %d children", len(r.Kids))
		}
	default:
		return fmt.Errorf("dtd: unknown regex op %d", int(r.Op))
	}
	for _, k := range r.Kids {
		if err := k.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Nullable reports whether r matches the empty word. An invalid Op is
// read as non-nullable — the conservative choice (it forces validation
// to demand content that can never appear, failing loudly rather than
// silently accepting).
func (r *Regex) Nullable() bool {
	switch r.Op {
	case OpEpsilon, OpStar, OpOpt:
		return true
	case OpSym:
		return false
	case OpSeq:
		for _, k := range r.Kids {
			if !k.Nullable() {
				return false
			}
		}
		return true
	case OpAlt:
		for _, k := range r.Kids {
			if k.Nullable() {
				return true
			}
		}
		return false
	case OpPlus:
		return r.Kids[0].Nullable()
	}
	return false
}

// Symbols appends every symbol syntactically occurring in r to set.
// Since the grammar has no empty-language constructor, every such
// symbol occurs in some word of L(r).
func (r *Regex) Symbols(set map[string]bool) {
	switch r.Op {
	case OpSym:
		set[r.Sym] = true
	case OpSeq, OpAlt, OpStar, OpPlus, OpOpt:
		for _, k := range r.Kids {
			k.Symbols(set)
		}
	}
}

// SymbolList returns the symbols of r in sorted order.
func (r *Regex) SymbolList() []string {
	set := make(map[string]bool)
	r.Symbols(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders r in the compact DTD notation used throughout the
// paper: sequence with ",", alternation with "|", postfix * + ?.
func (r *Regex) String() string {
	var b strings.Builder
	r.format(&b, 0)
	return b.String()
}

// precedence levels: 0 alt, 1 seq, 2 postfix/atom
func (r *Regex) format(b *strings.Builder, prec int) {
	wrap := func(p int, f func()) {
		if prec > p {
			b.WriteByte('(')
			f()
			b.WriteByte(')')
		} else {
			f()
		}
	}
	switch r.Op {
	case OpEpsilon:
		b.WriteString("()")
	case OpSym:
		if r.Sym == StringType {
			b.WriteString("#PCDATA")
		} else {
			b.WriteString(r.Sym)
		}
	case OpSeq:
		wrap(1, func() {
			for i, k := range r.Kids {
				if i > 0 {
					b.WriteString(", ")
				}
				k.format(b, 2)
			}
		})
	case OpAlt:
		wrap(0, func() {
			for i, k := range r.Kids {
				if i > 0 {
					b.WriteString(" | ")
				}
				k.format(b, 1)
			}
		})
	case OpStar, OpPlus, OpOpt:
		k := r.Kids[0]
		if k.Op == OpSym || k.Op == OpEpsilon {
			k.format(b, 2)
		} else {
			b.WriteByte('(')
			k.format(b, 0)
			b.WriteByte(')')
		}
		switch r.Op {
		case OpStar:
			b.WriteByte('*')
		case OpPlus:
			b.WriteByte('+')
		case OpOpt:
			b.WriteByte('?')
		}
	default:
		fmt.Fprintf(b, "<bad op %d>", int(r.Op))
	}
}

// nfa is a Thompson construction of a Regex, used for word matching.
// State 0 is the start state; accept is the single accepting state.
type nfa struct {
	// eps[s] lists ε-successors of s; sym[s] is the symbol transition
	// (at most one per state in Thompson form).
	eps    [][]int
	symTo  []int
	symLbl []string
	accept int
}

func (n *nfa) addState() int {
	n.eps = append(n.eps, nil)
	n.symTo = append(n.symTo, -1)
	n.symLbl = append(n.symLbl, "")
	return len(n.eps) - 1
}

func (n *nfa) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }
func (n *nfa) addSym(from int, s string, to int) {
	n.symTo[from] = to
	n.symLbl[from] = s
}

// compile builds states for r between fresh start/end states and
// returns (start, end).
func (n *nfa) compile(r *Regex) (int, int) {
	switch r.Op {
	case OpEpsilon:
		s := n.addState()
		e := n.addState()
		n.addEps(s, e)
		return s, e
	case OpSym:
		s := n.addState()
		e := n.addState()
		n.addSym(s, r.Sym, e)
		return s, e
	case OpSeq:
		s, e := n.compile(r.Kids[0])
		for _, k := range r.Kids[1:] {
			s2, e2 := n.compile(k)
			n.addEps(e, s2)
			e = e2
		}
		return s, e
	case OpAlt:
		s := n.addState()
		e := n.addState()
		for _, k := range r.Kids {
			ks, ke := n.compile(k)
			n.addEps(s, ks)
			n.addEps(ke, e)
		}
		return s, e
	case OpStar, OpPlus, OpOpt:
		s := n.addState()
		e := n.addState()
		ks, ke := n.compile(r.Kids[0])
		n.addEps(s, ks)
		n.addEps(ke, e)
		if r.Op != OpPlus {
			n.addEps(s, e)
		}
		if r.Op != OpOpt {
			n.addEps(ke, ks)
		}
		return s, e
	}
	// Invalid op: compile to the empty-language fragment (no path from
	// start to end), so no word validates against a corrupted model.
	return n.addState(), n.addState()
}

func compileNFA(r *Regex) *nfa {
	n := &nfa{}
	s, e := n.compile(r)
	if s != 0 {
		// compile always allocates the start state first
		panic(&guard.InternalError{Value: "dtd: unexpected start state"})
	}
	n.accept = e
	return n
}

func (n *nfa) closure(set map[int]bool) {
	var stack []int
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// matchWord reports whether the symbol word w is in L(r) for the NFA.
// member, when non-nil, generalises symbols to symbol sets: position i
// of the word may be read as any symbol σ with member(i, σ); this is
// used for EDTD validation where a child label admits several types.
func (n *nfa) matchWord(w int, symAt func(i int, sym string) bool) bool {
	cur := map[int]bool{0: true}
	n.closure(cur)
	for i := 0; i < w; i++ {
		next := make(map[int]bool)
		for s := range cur {
			if n.symTo[s] >= 0 && symAt(i, n.symLbl[s]) {
				next[n.symTo[s]] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		n.closure(next)
		cur = next
	}
	return cur[n.accept]
}

// Matches reports whether the word w belongs to L(r).
func (r *Regex) Matches(w []string) bool {
	n := compileNFA(r)
	return n.matchWord(len(w), func(i int, sym string) bool { return w[i] == sym })
}

// Precedes computes the paper's relation <r: the set of ordered pairs
// (α, β) such that some word of L(r) contains an occurrence of α
// strictly before an occurrence of β. The result maps α to the set of
// such β.
func (r *Regex) Precedes() map[string]map[string]bool {
	pairs := make(map[string]map[string]bool)
	add := func(a, b string) {
		m := pairs[a]
		if m == nil {
			m = make(map[string]bool)
			pairs[a] = m
		}
		m[b] = true
	}
	var walk func(r *Regex) map[string]bool // returns Occ(r)
	walk = func(r *Regex) map[string]bool {
		switch r.Op {
		case OpEpsilon:
			return nil
		case OpSym:
			return map[string]bool{r.Sym: true}
		case OpSeq:
			occ := make(map[string]bool)
			for _, k := range r.Kids {
				ko := walk(k)
				for a := range occ {
					for b := range ko {
						add(a, b)
					}
				}
				for b := range ko {
					occ[b] = true
				}
			}
			return occ
		case OpAlt:
			occ := make(map[string]bool)
			for _, k := range r.Kids {
				for b := range walk(k) {
					occ[b] = true
				}
			}
			return occ
		case OpStar, OpPlus:
			occ := walk(r.Kids[0])
			for a := range occ {
				for b := range occ {
					add(a, b)
				}
			}
			return occ
		case OpOpt:
			return walk(r.Kids[0])
		}
		return nil // invalid op: no occurrences, no order pairs
	}
	walk(r)
	return pairs
}

// Sample draws a uniform-ish random word from L(r). Repetition counts
// for * and + follow a geometric distribution with the given
// continuation probability pRepeat in [0,1). When allow is non-nil, a
// symbol σ may only be emitted if allow(σ) is true; Sample then picks
// among permitted alternatives and repeats zero times when the body
// contains forbidden mandatory symbols — callers must ensure a
// permitted word exists (see DTD.GenerateTree).
func (r *Regex) Sample(rng *rand.Rand, pRepeat float64, allow func(string) bool) []string {
	var out []string
	var emit func(r *Regex)
	mandatoryAllowed := func(r *Regex) bool {
		return allow == nil || regexSatisfiable(r, allow)
	}
	emit = func(r *Regex) {
		switch r.Op {
		case OpEpsilon:
		case OpSym:
			out = append(out, r.Sym)
		case OpSeq:
			for _, k := range r.Kids {
				emit(k)
			}
		case OpAlt:
			var ok []*Regex
			for _, k := range r.Kids {
				if mandatoryAllowed(k) {
					ok = append(ok, k)
				}
			}
			if len(ok) == 0 {
				ok = r.Kids // caller guaranteed satisfiability; fall back
			}
			emit(ok[rng.Intn(len(ok))])
		case OpStar:
			for mandatoryAllowed(r.Kids[0]) && rng.Float64() < pRepeat {
				emit(r.Kids[0])
			}
		case OpPlus:
			emit(r.Kids[0])
			for mandatoryAllowed(r.Kids[0]) && rng.Float64() < pRepeat {
				emit(r.Kids[0])
			}
		case OpOpt:
			if mandatoryAllowed(r.Kids[0]) && rng.Float64() < 0.5 {
				emit(r.Kids[0])
			}
		}
	}
	emit(r)
	return out
}

// regexSatisfiable reports whether L(r) contains a word composed only
// of allowed symbols.
func regexSatisfiable(r *Regex, allow func(string) bool) bool {
	switch r.Op {
	case OpEpsilon:
		return true
	case OpSym:
		return allow(r.Sym)
	case OpSeq:
		for _, k := range r.Kids {
			if !regexSatisfiable(k, allow) {
				return false
			}
		}
		return true
	case OpAlt:
		for _, k := range r.Kids {
			if regexSatisfiable(k, allow) {
				return true
			}
		}
		return false
	case OpStar, OpOpt:
		return true
	case OpPlus:
		return regexSatisfiable(r.Kids[0], allow)
	}
	return false // invalid op: nothing can be emitted from it
}
