package dtd

import (
	"fmt"

	"xqindep/internal/xmltree"
)

// Validate checks t ∈ d: there must exist a typing ν assigning the
// start symbol to the root, the string type to text nodes, and to each
// element a type whose label matches its tag and whose content model
// generates the word of its children's types. For plain DTDs the
// typing is unique; for Extended DTDs it is found by bottom-up
// candidate-set computation. A nil error means the tree is valid.
func (d *DTD) Validate(t xmltree.Tree) error {
	_, err := d.TypeAssignment(t)
	return err
}

// IsValid reports t ∈ d.
func (d *DTD) IsValid(t xmltree.Tree) bool { return d.Validate(t) == nil }

// TypeAssignment computes a typing ν: dom(t) → Σ' ∪ {S} witnessing
// validity of t, or an error describing the first violation found.
func (d *DTD) TypeAssignment(t xmltree.Tree) (map[xmltree.Loc]string, error) {
	s := t.Store
	// typesByLabel caches the candidate types for each element label.
	typesByLabel := make(map[string][]string)
	for _, ty := range d.Types {
		l := d.LabelOf(ty)
		typesByLabel[l] = append(typesByLabel[l], ty)
	}

	// cand[l] = set of types that can be assigned to location l such
	// that the subtree at l validates. Computed bottom-up (post-order).
	cand := make(map[xmltree.Loc]map[string]bool, 16)
	var compute func(l xmltree.Loc) error
	compute = func(l xmltree.Loc) error {
		if s.IsText(l) {
			cand[l] = map[string]bool{StringType: true}
			return nil
		}
		kids := s.Children(l)
		for _, c := range kids {
			if err := compute(c); err != nil {
				return err
			}
		}
		tag := s.Tag(l)
		set := make(map[string]bool)
		for _, ty := range typesByLabel[tag] {
			ok := d.nfas[ty].matchWord(len(kids), func(i int, sym string) bool {
				return cand[kids[i]][sym]
			})
			if ok {
				set[ty] = true
			}
		}
		if len(set) == 0 {
			if len(typesByLabel[tag]) == 0 {
				return fmt.Errorf("dtd: element <%s> has no declared type", tag)
			}
			return fmt.Errorf("dtd: children of <%s> match no content model of its types", tag)
		}
		cand[l] = set
		return nil
	}
	if s.IsText(t.Root) {
		return nil, fmt.Errorf("dtd: root is a text node")
	}
	if err := compute(t.Root); err != nil {
		return nil, err
	}
	if !cand[t.Root][d.Start] {
		return nil, fmt.Errorf("dtd: root <%s> cannot be typed by start symbol %q", s.Tag(t.Root), d.Start)
	}

	// Top-down pass: fix a concrete typing. At each element typed ty,
	// re-run the content NFA and extract one accepting sequence of
	// child types via backtracking over candidate sets.
	nu := make(map[xmltree.Loc]string, len(cand))
	var assign func(l xmltree.Loc, ty string) error
	assign = func(l xmltree.Loc, ty string) error {
		nu[l] = ty
		if ty == StringType {
			return nil
		}
		kids := s.Children(l)
		choice, ok := d.nfas[ty].matchWordChoice(len(kids), func(i int, sym string) bool {
			return cand[kids[i]][sym]
		})
		if !ok {
			return fmt.Errorf("dtd: internal: no witness for <%s> as %s", s.Tag(l), ty)
		}
		for i, c := range kids {
			if err := assign(c, choice[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(t.Root, d.Start); err != nil {
		return nil, err
	}
	return nu, nil
}

// matchWordChoice is matchWord but additionally reconstructs, for an
// accepted word, one symbol chosen at each position.
func (n *nfa) matchWordChoice(w int, symAt func(i int, sym string) bool) ([]string, bool) {
	type layer struct {
		states map[int]bool
		// pred[s] records, for state s entered at this layer, the
		// symbol consumed to reach it and the predecessor state of the
		// previous layer.
		predState map[int]int
		predSym   map[int]string
	}
	layers := make([]layer, w+1)
	cur := map[int]bool{0: true}
	n.closure(cur)
	layers[0] = layer{states: cur}
	for i := 0; i < w; i++ {
		next := make(map[int]bool)
		ps := make(map[int]int)
		py := make(map[int]string)
		for s := range cur {
			if n.symTo[s] >= 0 && symAt(i, n.symLbl[s]) {
				t := n.symTo[s]
				if !next[t] {
					next[t] = true
					ps[t] = s
					py[t] = n.symLbl[s]
				}
			}
		}
		if len(next) == 0 {
			return nil, false
		}
		// ε-closure, tracking which pre-closure state each new state
		// came from so the consuming transition stays attributed.
		var stack []int
		origin := make(map[int]int)
		for s := range next {
			stack = append(stack, s)
			origin[s] = s
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range n.eps[s] {
				if !next[t] {
					next[t] = true
					origin[t] = origin[s]
					stack = append(stack, t)
				}
			}
		}
		for s, o := range origin {
			if s != o {
				ps[s] = ps[o]
				py[s] = py[o]
			}
		}
		layers[i+1] = layer{states: next, predState: ps, predSym: py}
		cur = next
	}
	if !cur[n.accept] {
		return nil, false
	}
	// Walk back from accept, collecting one symbol per layer.
	out := make([]string, w)
	st := n.accept
	for i := w; i > 0; i-- {
		out[i-1] = layers[i].predSym[st]
		st = layers[i].predState[st]
	}
	return out, true
}
