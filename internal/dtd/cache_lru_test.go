package dtd

import (
	"fmt"
	"reflect"
	"testing"
)

// smallSchema builds a distinct tiny DTD; i varies the root label so
// each schema has its own fingerprint.
func smallSchema(t *testing.T, i int) *DTD {
	t.Helper()
	d, err := Parse(fmt.Sprintf("r%d <- a, b\na <- #PCDATA\nb <- #PCDATA", i))
	if err != nil {
		t.Fatalf("parse schema %d: %v", i, err)
	}
	return d
}

// TestLRUEvictionOrder pins the deterministic eviction order: the
// least-recently-hit resident is evicted first, and a hit refreshes
// recency.
func TestLRUEvictionOrder(t *testing.T) {
	cc := NewCompileCache(3)
	d := make([]*DTD, 4)
	for i := range d {
		d[i] = smallSchema(t, i)
	}
	for i := 0; i < 3; i++ {
		if _, err := cc.Get(d[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Recency now 2 > 1 > 0. Hit 0 to refresh it: 0 > 2 > 1.
	if _, err := cc.Get(d[0]); err != nil {
		t.Fatal(err)
	}
	want := []string{d[0].Fingerprint(), d[2].Fingerprint(), d[1].Fingerprint()}
	if got := cc.ResidentFingerprints(); !reflect.DeepEqual(got, want) {
		t.Fatalf("LRU order after hit = %v, want %v", got, want)
	}
	// Insert a fourth schema: d[1] (least recently hit) must go.
	if _, err := cc.Get(d[3]); err != nil {
		t.Fatal(err)
	}
	want = []string{d[3].Fingerprint(), d[0].Fingerprint(), d[2].Fingerprint()}
	if got := cc.ResidentFingerprints(); !reflect.DeepEqual(got, want) {
		t.Fatalf("LRU order after eviction = %v, want %v", got, want)
	}
	st := cc.Stats()
	if st.Evictions != 1 || st.Resident != 3 {
		t.Fatalf("stats after one eviction: %+v", st)
	}
	// The evicted schema recompiles as a miss and evicts d[2] next.
	if _, err := cc.Get(d[1]); err != nil {
		t.Fatal(err)
	}
	if got := cc.ResidentFingerprints(); got[0] != d[1].Fingerprint() {
		t.Fatalf("recompiled schema not most recent: %v", got)
	}
	if st := cc.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}

func TestCachePurge(t *testing.T) {
	cc := NewCompileCache(4)
	d := smallSchema(t, 0)
	c1, err := cc.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Purge(d.Fingerprint()) {
		t.Fatal("purge of resident fingerprint reported false")
	}
	if cc.Purge(d.Fingerprint()) {
		t.Fatal("purge of absent fingerprint reported true")
	}
	c2, err := cc.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("purge did not force a recompile")
	}
	st := cc.Stats()
	if st.Purges != 1 || st.Misses != 2 {
		t.Fatalf("stats after purge+recompile: %+v", st)
	}
}

// TestVerifyOnHitRepairsCorruption corrupts the resident artifact in
// place and checks the next Get detects it, recompiles, and serves a
// valid artifact.
func TestVerifyOnHitRepairsCorruption(t *testing.T) {
	cc := NewCompileCache(4)
	d := smallSchema(t, 0)
	c1, err := cc.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the resident's reachability table the way a stray shared
	// write would.
	if c1.reach[0].Has(0) {
		c1.reach[0].Remove(0)
	} else {
		c1.reach[0].Add(0)
	}
	c2, err := cc.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("corrupted resident served from cache")
	}
	if err := c2.Verify(); err != nil {
		t.Fatalf("recompiled artifact fails Verify: %v", err)
	}
	st := cc.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1: %+v", st.VerifyFailures, st)
	}
}
