package dtd

import (
	"fmt"
	"strings"
	"unicode"

	"xqindep/internal/guard"
)

// Parse reads a schema in either of two syntaxes and builds a DTD.
//
// Compact notation (one declaration per line, the paper's style; the
// first declaration is the start symbol unless a "start NAME" line is
// present; "#" starts a comment; a type may carry an EDTD label in
// brackets):
//
//	start doc
//	doc  <- (a | b)*
//	a    <- c
//	b    <- c
//	c    <- #PCDATA
//	t1[a] <- t2*        # EDTD: type t1 labels <a>
//
// Classic DTD notation:
//
//	<!ELEMENT doc (a | b)*>
//	<!ELEMENT a (c)>
//	<!ELEMENT c (#PCDATA)>
//	<!ELEMENT e EMPTY>
//
// In classic notation the first declared element is the start symbol.
// <!ATTLIST ...> declarations are accepted and ignored (the paper's
// benchmark rewriting removes attribute use).
func Parse(input string) (*DTD, error) {
	return ParseLimited(input, guard.DefaultLimits())
}

// ParseLimited is Parse under explicit parser limits: MaxParseInput
// bounds the schema text size and MaxParseDepth bounds parenthesis
// nesting in content models. Zero limit fields take defaults.
func ParseLimited(input string, lim guard.Limits) (*DTD, error) {
	lim = lim.OrDefaults()
	if len(input) > lim.MaxParseInput {
		return nil, fmt.Errorf("dtd: input of %d bytes exceeds the %d-byte limit", len(input), lim.MaxParseInput)
	}
	if strings.Contains(input, "<!ELEMENT") {
		return parseClassic(input, lim)
	}
	return parseCompact(input, lim)
}

// MustParse is Parse, panicking on error; for fixtures.
func MustParse(input string) *DTD {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

func parseCompact(input string, lim guard.Limits) (*DTD, error) {
	content := make(map[string]*Regex)
	label := make(map[string]string)
	start := ""
	for ln, line := range strings.Split(input, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 && !strings.Contains(line, "#PCDATA") {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "start "); ok {
			start = strings.TrimSpace(rest)
			continue
		}
		lhs, rhs, ok := strings.Cut(line, "<-")
		if !ok {
			return nil, fmt.Errorf("dtd: line %d: missing \"<-\" in %q", ln+1, line)
		}
		name := strings.TrimSpace(lhs)
		lbl := ""
		if i := strings.IndexByte(name, '['); i >= 0 && strings.HasSuffix(name, "]") {
			lbl = name[i+1 : len(name)-1]
			name = strings.TrimSpace(name[:i])
		}
		if err := checkName(name); err != nil {
			return nil, fmt.Errorf("dtd: line %d: %w", ln+1, err)
		}
		if _, dup := content[name]; dup {
			return nil, fmt.Errorf("dtd: line %d: type %q declared twice", ln+1, name)
		}
		r, err := parseRegexLimited(strings.TrimSpace(rhs), lim.MaxParseDepth)
		if err != nil {
			return nil, fmt.Errorf("dtd: line %d: %w", ln+1, err)
		}
		content[name] = r
		if lbl != "" {
			label[name] = lbl
		}
		if start == "" {
			start = name
		}
	}
	if len(label) == 0 {
		label = nil
	}
	if start == "" {
		return nil, fmt.Errorf("dtd: no declarations")
	}
	return NewExtended(start, content, label)
}

func parseClassic(input string, lim guard.Limits) (*DTD, error) {
	content := make(map[string]*Regex)
	start := ""
	rest := input
	for {
		i := strings.Index(rest, "<!")
		if i < 0 {
			break
		}
		j := strings.IndexByte(rest[i:], '>')
		if j < 0 {
			return nil, fmt.Errorf("dtd: unterminated declaration")
		}
		decl := rest[i+2 : i+j]
		rest = rest[i+j+1:]
		fields := strings.Fields(decl)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ELEMENT":
			if len(fields) < 3 {
				return nil, fmt.Errorf("dtd: malformed ELEMENT declaration %q", decl)
			}
			name := fields[1]
			if err := checkName(name); err != nil {
				return nil, err
			}
			if _, dup := content[name]; dup {
				return nil, fmt.Errorf("dtd: type %q declared twice", name)
			}
			model := strings.TrimSpace(strings.Join(fields[2:], " "))
			r, err := parseContentModel(model, lim.MaxParseDepth)
			if err != nil {
				return nil, fmt.Errorf("dtd: element %s: %w", name, err)
			}
			content[name] = r
			if start == "" {
				start = name
			}
		case "ATTLIST", "ENTITY", "NOTATION", "--":
			// ignored
		default:
			// comments and unknown declarations are ignored
		}
	}
	if start == "" {
		return nil, fmt.Errorf("dtd: no ELEMENT declarations")
	}
	return New(start, content)
}

func parseContentModel(model string, maxDepth int) (*Regex, error) {
	switch model {
	case "EMPTY":
		return Epsilon(), nil
	case "ANY":
		return nil, fmt.Errorf("ANY content is not supported")
	}
	return parseRegexLimited(model, maxDepth)
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty type name")
	}
	if name == StringType {
		return fmt.Errorf("%q is reserved for the string type", StringType)
	}
	for _, r := range name {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '.' {
			return fmt.Errorf("invalid character %q in type name %q", r, name)
		}
	}
	return nil
}

// parseRegex parses the content-model expression grammar:
//
//	alt  := seq ("|" seq)*
//	seq  := post ("," post)*
//	post := atom ("*" | "+" | "?")*
//	atom := "(" alt ")" | "#PCDATA" | name | "()"
type regexParser struct {
	in       string
	pos      int
	depth    int
	maxDepth int
}

func parseRegex(s string) (*Regex, error) {
	return parseRegexLimited(s, guard.DefaultMaxParseDepth)
}

func parseRegexLimited(s string, maxDepth int) (*Regex, error) {
	p := &regexParser{in: s, maxDepth: maxDepth}
	r, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("trailing input %q in content model", p.in[p.pos:])
	}
	return r, nil
}

func (p *regexParser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *regexParser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *regexParser) alt() (*Regex, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.maxDepth > 0 && p.depth > p.maxDepth {
		return nil, fmt.Errorf("content model nesting exceeds the limit of %d", p.maxDepth)
	}
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	kids := []*Regex{first}
	for {
		p.ws()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.seq()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	return Alt(kids...), nil
}

func (p *regexParser) seq() (*Regex, error) {
	first, err := p.post()
	if err != nil {
		return nil, err
	}
	kids := []*Regex{first}
	for {
		p.ws()
		if p.peek() != ',' {
			break
		}
		p.pos++
		next, err := p.post()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	return Seq(kids...), nil
}

func (p *regexParser) post() (*Regex, error) {
	r, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		switch p.peek() {
		case '*':
			p.pos++
			r = Star(r)
		case '+':
			p.pos++
			r = Plus(r)
		case '?':
			p.pos++
			r = Opt(r)
		default:
			return r, nil
		}
	}
}

func (p *regexParser) atom() (*Regex, error) {
	p.ws()
	switch {
	case p.peek() == '(':
		p.pos++
		p.ws()
		if p.peek() == ')' { // "()" is ε
			p.pos++
			return Epsilon(), nil
		}
		r, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at offset %d of %q", p.pos, p.in)
		}
		p.pos++
		return r, nil
	case strings.HasPrefix(p.in[p.pos:], "#PCDATA"):
		p.pos += len("#PCDATA")
		return Sym(StringType), nil
	case p.peek() == 0:
		return nil, fmt.Errorf("unexpected end of content model %q", p.in)
	default:
		start := p.pos
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			if c == ' ' || c == '\t' || c == ',' || c == '|' || c == ')' || c == '(' || c == '*' || c == '+' || c == '?' {
				break
			}
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("unexpected character %q at offset %d of %q", p.in[p.pos], p.pos, p.in)
		}
		name := p.in[start:p.pos]
		if name == StringType {
			return Sym(StringType), nil
		}
		if err := checkName(name); err != nil {
			return nil, err
		}
		return Sym(name), nil
	}
}
