package dtd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"xqindep/internal/guard"
	"xqindep/internal/xmltree"
)

// DTD is a schema (Σ, sd, d) — and, when Label is non-trivial, an
// Extended DTD (Σ, Σ', sd, d, µ) in the sense of Definition 7.1: Types
// play the role of Σ', Label the role of µ, and the element labels the
// role of Σ. For a plain DTD every type labels itself.
//
// The reserved symbol S (StringType) denotes text content; d(S) = ε.
type DTD struct {
	// Start is the start symbol sd.
	Start string
	// Types lists the element types in declaration order. It never
	// contains StringType.
	Types []string
	// Content maps each type to its content model d(a).
	Content map[string]*Regex
	// Label maps a type to the element label it produces (the EDTD µ).
	// Types absent from the map label themselves. StringType always
	// maps to itself.
	Label map[string]string

	nfas     map[string]*nfa
	precedes map[string]map[string]map[string]bool
	children map[string][]string

	// Lazily-memoized derived state. A DTD is immutable after New, and
	// the analysis layers share one *DTD across many concurrent
	// analyses (a serving pool runs AnalyzeContext from many
	// goroutines), so each cache is computed exactly once under a
	// sync.Once and the cached maps are returned as shared read-only
	// views — callers must not mutate them.
	recOnce sync.Once
	recSet  map[string]bool
	recAny  bool
	mhOnce  sync.Once
	mh      map[string]int
	fpOnce  sync.Once
	fp      string
}

// New builds a DTD from a start symbol and content map, checking
// basic well-formedness. The content map keys determine Σ'; iteration
// order of Types is sorted with Start first for determinism.
func New(start string, content map[string]*Regex) (*DTD, error) {
	return NewExtended(start, content, nil)
}

// NewExtended builds an Extended DTD with an explicit type-to-label
// map (nil for a plain DTD).
func NewExtended(start string, content map[string]*Regex, label map[string]string) (*DTD, error) {
	if start == "" {
		return nil, fmt.Errorf("dtd: empty start symbol")
	}
	if _, ok := content[start]; !ok {
		return nil, fmt.Errorf("dtd: start symbol %q has no content model", start)
	}
	if _, ok := content[StringType]; ok {
		return nil, fmt.Errorf("dtd: %q is reserved for the string type", StringType)
	}
	types := make([]string, 0, len(content))
	for t := range content {
		if t != start {
			types = append(types, t)
		}
	}
	sort.Strings(types)
	types = append([]string{start}, types...)
	d := &DTD{Start: start, Types: types, Content: content, Label: label}
	for _, t := range types {
		if err := content[t].Validate(); err != nil {
			return nil, fmt.Errorf("dtd: content model of %q: %w", t, err)
		}
		for _, s := range content[t].SymbolList() {
			if s != StringType {
				if _, ok := content[s]; !ok {
					return nil, fmt.Errorf("dtd: type %q used in d(%s) but never declared", s, t)
				}
			}
		}
	}
	for t, l := range label {
		if _, ok := content[t]; !ok {
			return nil, fmt.Errorf("dtd: label map mentions undeclared type %q", t)
		}
		if l == StringType || l == "" {
			return nil, fmt.Errorf("dtd: type %q has invalid label %q", t, l)
		}
	}
	d.build()
	return d, nil
}

// MustNew is New, panicking on error; for tests and fixtures.
func MustNew(start string, content map[string]*Regex) *DTD {
	d, err := New(start, content)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *DTD) build() {
	d.nfas = make(map[string]*nfa, len(d.Types))
	d.precedes = make(map[string]map[string]map[string]bool, len(d.Types))
	d.children = make(map[string][]string, len(d.Types))
	for _, t := range d.Types {
		r := d.Content[t]
		d.nfas[t] = compileNFA(r)
		d.precedes[t] = r.Precedes()
		d.children[t] = r.SymbolList()
	}
}

// LabelOf returns the element label produced by type t (µ(t)); the
// string type labels itself.
func (d *DTD) LabelOf(t string) string {
	if t == StringType {
		return StringType
	}
	if d.Label != nil {
		if l, ok := d.Label[t]; ok {
			return l
		}
	}
	return t
}

// IsExtended reports whether some type's label differs from its name.
func (d *DTD) IsExtended() bool {
	for t, l := range d.Label {
		if t != l {
			return true
		}
	}
	return false
}

// HasType reports whether t is a declared element type or StringType.
func (d *DTD) HasType(t string) bool {
	if t == StringType {
		return true
	}
	_, ok := d.Content[t]
	return ok
}

// Size returns |d|, the number of declared element types.
func (d *DTD) Size() int { return len(d.Types) }

// ChildTypes returns the symbols β with α ⇒d β (β occurs in d(α)),
// sorted; StringType included when text is allowed. The string type
// has no children.
func (d *DTD) ChildTypes(alpha string) []string {
	if alpha == StringType {
		return nil
	}
	return d.children[alpha]
}

// Reaches reports α ⇒d β.
func (d *DTD) Reaches(alpha, beta string) bool {
	for _, c := range d.ChildTypes(alpha) {
		if c == beta {
			return true
		}
	}
	return false
}

// FollowingSiblingTypes returns the types β such that a β-typed
// sibling may follow an α-typed child under a parent of type parent,
// i.e. α <d(parent) β.
func (d *DTD) FollowingSiblingTypes(parent, alpha string) []string {
	if parent == StringType {
		return nil
	}
	m := d.precedes[parent][alpha]
	out := make([]string, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// PrecedingSiblingTypes returns the types α such that an α-typed
// sibling may precede a β-typed child under parent: α <d(parent) β.
func (d *DTD) PrecedingSiblingTypes(parent, beta string) []string {
	if parent == StringType {
		return nil
	}
	var out []string
	for a, m := range d.precedes[parent] {
		if m[beta] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// DescendantClosure returns the set of types reachable from any type
// in seed via one or more ⇒d steps.
func (d *DTD) DescendantClosure(seed []string) map[string]bool {
	out := make(map[string]bool)
	var stack []string
	for _, s := range seed {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range d.ChildTypes(t) {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

// AncestorClosure returns the set of types from which some type in
// seed is reachable via one or more ⇒d steps.
func (d *DTD) AncestorClosure(seed []string) map[string]bool {
	parents := make(map[string][]string)
	for _, t := range d.Types {
		for _, c := range d.ChildTypes(t) {
			parents[c] = append(parents[c], t)
		}
	}
	out := make(map[string]bool)
	stack := append([]string(nil), seed...)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range parents[t] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// RecursiveTypes returns the set of types that lie on a ⇒d cycle
// (the recursive types of §5): members of a strongly connected
// component of size ≥ 2, or with a self-loop. The SCC computation is
// memoized (the CDAG engine consults it on every analysis); the
// returned map is a shared read-only view and must not be mutated.
func (d *DTD) RecursiveTypes() map[string]bool {
	d.recOnce.Do(d.computeRecursive)
	return d.recSet
}

func (d *DTD) computeRecursive() {
	// Tarjan's SCC algorithm, iterative indexes via recursion (depth is
	// bounded by |d|, fine for schemas).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	rec := make(map[string]bool)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range d.ChildTypes(v) {
			if w == StringType {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					rec[w] = true
				}
			} else if d.Reaches(comp[0], comp[0]) {
				rec[comp[0]] = true
			}
		}
	}
	for _, t := range d.Types {
		if _, seen := index[t]; !seen {
			strongconnect(t)
		}
	}
	d.recSet = rec
	if rec[d.Start] {
		d.recAny = true
		return
	}
	for t := range d.DescendantClosure([]string{d.Start}) {
		if rec[t] {
			d.recAny = true
			return
		}
	}
}

// IsRecursive reports whether the DTD has any recursive type reachable
// from the start symbol (vertical recursion: Cd is infinite iff this
// holds).
func (d *DTD) IsRecursive() bool {
	d.recOnce.Do(d.computeRecursive)
	return d.recAny
}

// MinHeights computes, for every type, the minimal height of a valid
// tree rooted at that type (a leaf element has height 1; text adds 0).
// Types admitting no finite valid tree map to -1. The fixpoint is
// memoized; the returned map is a shared read-only view and must not
// be mutated.
func (d *DTD) MinHeights() map[string]int {
	d.mhOnce.Do(func() { d.mh = d.computeMinHeights() })
	return d.mh
}

func (d *DTD) computeMinHeights() map[string]int {
	const inf = 1 << 30
	h := make(map[string]int, len(d.Types)+1)
	h[StringType] = 0
	for _, t := range d.Types {
		h[t] = inf
	}
	// Fixpoint: h(a) = 1 + min over words w in L(d(a)) of max h(sym).
	// The inner minimisation is done on the regex structure.
	var mh func(r *Regex) int
	mh = func(r *Regex) int {
		switch r.Op {
		case OpEpsilon:
			return 0
		case OpSym:
			return h[r.Sym]
		case OpSeq:
			m := 0
			for _, k := range r.Kids {
				if v := mh(k); v > m {
					m = v
				}
			}
			return m
		case OpAlt:
			m := inf
			for _, k := range r.Kids {
				if v := mh(k); v < m {
					m = v
				}
			}
			return m
		case OpStar, OpOpt:
			return 0
		case OpPlus:
			return mh(r.Kids[0])
		}
		panic(&guard.InternalError{Value: "dtd: bad regex op"})
	}
	for changed := true; changed; {
		changed = false
		for _, t := range d.Types {
			v := mh(d.Content[t])
			if v < inf && 1+v < h[t] {
				h[t] = 1 + v
				changed = true
			}
		}
	}
	for t, v := range h {
		if v >= inf {
			h[t] = -1
		}
	}
	return h
}

// String renders the DTD in the paper's compact notation, start symbol
// first.
func (d *DTD) String() string {
	var b strings.Builder
	for _, t := range d.Types {
		b.WriteString(t)
		if l := d.LabelOf(t); l != t {
			b.WriteByte('[')
			b.WriteString(l)
			b.WriteByte(']')
		}
		b.WriteString(" <- ")
		b.WriteString(d.Content[t].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint returns a stable content hash of the schema (over the
// canonical compact rendering, which sorts types deterministically):
// two DTDs with the same declarations share a fingerprint regardless
// of how they were written. The serving layer keys its per-schema
// circuit breakers on it.
func (d *DTD) Fingerprint() string {
	d.fpOnce.Do(func() {
		sum := sha256.Sum256([]byte(d.String()))
		d.fp = hex.EncodeToString(sum[:16])
	})
	return d.fp
}

// GenerateTree builds a random tree valid w.r.t. d into a fresh store.
// pRepeat controls the expected repetition count of starred content;
// maxDepth bounds tree height (recursion is cut off by restricting to
// symbols whose minimal height fits the remaining budget). Text nodes
// get short pseudo-random words. It returns an error when the start
// symbol admits no finite tree.
func (d *DTD) GenerateTree(rng *rand.Rand, pRepeat float64, maxDepth int) (xmltree.Tree, error) {
	heights := d.MinHeights()
	if heights[d.Start] < 0 {
		return xmltree.Tree{}, fmt.Errorf("dtd: start symbol %q admits no finite document", d.Start)
	}
	s := xmltree.NewStore()
	var gen func(t string, budget int) xmltree.Loc
	gen = func(t string, budget int) xmltree.Loc {
		if t == StringType {
			return s.NewText(randWord(rng))
		}
		if min := heights[t]; budget < min {
			// Too deep to honour the budget: fall back to a minimal
			// subtree so generation always terminates.
			budget = min
		}
		el := s.NewElement(d.LabelOf(t))
		allow := func(sym string) bool {
			h := heights[sym]
			return h >= 0 && h <= budget-1
		}
		word := d.Content[t].Sample(rng, pRepeat, allow)
		for _, c := range word {
			s.AppendChild(el, gen(c, budget-1))
		}
		return el
	}
	root := gen(d.Start, maxDepth)
	return xmltree.NewTree(s, root), nil
}

func randWord(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 3 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
