package dtd

import (
	"strings"
	"testing"
)

const verifySchema = `lib <- book*
book <- (title, author*, note?)
title <- #PCDATA
author <- #PCDATA
note <- (note | title)*`

func compiledFor(t *testing.T, src string) *Compiled {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompiled(d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerifyFreshArtifact(t *testing.T) {
	c := compiledFor(t, verifySchema)
	if err := c.Verify(); err != nil {
		t.Fatalf("fresh artifact fails Verify: %v", err)
	}
	if c.Checksum() == 0 {
		t.Fatal("checksum not stamped")
	}
}

func TestChecksumDeterministic(t *testing.T) {
	a := compiledFor(t, verifySchema)
	b := compiledFor(t, verifySchema)
	if a.Checksum() != b.Checksum() {
		t.Fatalf("checksums differ for identical schemas: %x vs %x", a.Checksum(), b.Checksum())
	}
	other := compiledFor(t, "r <- a*\na <- #PCDATA")
	if a.Checksum() == other.Checksum() {
		t.Fatal("distinct schemas share a checksum")
	}
}

func TestWithCorruptionFailsVerify(t *testing.T) {
	c := compiledFor(t, verifySchema)
	for seed := int64(1); seed <= 16; seed++ {
		bad := c.WithCorruption(seed)
		if err := bad.Verify(); err == nil {
			t.Fatalf("seed %d: corrupted artifact passes Verify", seed)
		}
		// The original must stay intact: corruption clones the tables.
		if err := c.Verify(); err != nil {
			t.Fatalf("seed %d: corruption leaked into the original: %v", seed, err)
		}
	}
}

func TestVerifyDetectsStructuralDamage(t *testing.T) {
	c := compiledFor(t, verifySchema)
	// Flip a reach bit directly (stale checksum + possibly broken
	// closure): Verify must fail either way.
	if c.reach[0].Has(len(c.syms) - 1) {
		c.reach[0].Remove(len(c.syms) - 1)
	} else {
		c.reach[0].Add(len(c.syms) - 1)
	}
	err := c.Verify()
	if err == nil {
		t.Fatal("damaged reach table passes Verify")
	}
	if !strings.Contains(err.Error(), "compiled artifact") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}
