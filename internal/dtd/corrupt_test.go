package dtd_test

import (
	"context"
	"errors"
	"testing"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// A regex op that Validate rejects at construction can still appear at
// runtime if a future refactor mutates a content model in place. The
// defense is layered: every switch over Op aborts with a typed
// *guard.InternalError (never a bare-string panic), so any
// guard.Recover boundary — guard.Do here, core's analyzeOnce in
// production — turns the corruption into an error. A crash is never an
// acceptable outcome.
func TestCorruptedRegexOpSurfacesAsInternalError(t *testing.T) {
	d, err := dtd.Parse("bib <- book*\nbook <- title\ntitle <- #PCDATA")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the content model behind Validate's back, the way a
	// future in-place rewrite bug would.
	d.Content["book"].Op = dtd.Op(99)

	// MinHeights walks the content models directly: the bad op must
	// abort with the typed panic and be converted at the guard
	// boundary, not escape as a raw panic.
	gerr := guard.Do(func() { d.MinHeights() })
	var ie *guard.InternalError
	if !errors.As(gerr, &ie) {
		t.Fatalf("corrupted op through MinHeights: want *guard.InternalError, got %v", gerr)
	}
	if ie.Value != "dtd: bad regex op" {
		t.Fatalf("unexpected panic payload: %v", ie.Value)
	}

	// The independence analysis reads only the relations precomputed at
	// construction time, so it completes on the corrupted schema; and
	// if a future change does reach the bad op mid-analysis, the typed
	// panic is absorbed by analyzeOnce's guard.Recover. Either way
	// AnalyzeContext returns a result — never a crash.
	q, err := xquery.ParseQuery("//title")
	if err != nil {
		t.Fatal(err)
	}
	u, err := xquery.ParseUpdate("delete //title")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewAnalyzer(d).AnalyzeContext(context.Background(), q, u, core.MethodChains, core.Options{})
	if err != nil && !errors.As(err, &ie) {
		t.Fatalf("corruption must surface as *guard.InternalError, got %v", err)
	}
	if err == nil && res.Independent && res.Method == core.MethodChains {
		// //title vs delete //title is dependent: the precomputed
		// relations are intact, so the verdict must still be sound.
		t.Fatalf("unsound verdict on corrupted schema: %+v", res)
	}
}
