package server

import (
	"net/http"
	"time"

	"xqindep/internal/dtd"
	"xqindep/internal/obs"
)

// Metric family names, all in one place so the operations reference in
// the README can be checked against reality (scripts/ci.sh greps every
// xqindep_ name the docs mention against this file). Units follow the
// Prometheus conventions: latencies in seconds, counts unitless,
// _total suffix on monotonic counters.
const (
	// Request-path families, recorded by the handler per request.
	MetricRequestLatency = "xqindep_request_latency_seconds"
	MetricRungLatency    = "xqindep_rung_latency_seconds"
	MetricRequests       = "xqindep_requests_total"
	MetricVerdicts       = "xqindep_verdicts_total"
	MetricPlanRequests   = "xqindep_plan_requests_total"

	// Pool and breaker families, bridged from the server counters.
	MetricPoolAdmitted  = "xqindep_pool_admitted_total"
	MetricPoolShed      = "xqindep_pool_shed_total"
	MetricPoolMemShed   = "xqindep_pool_mem_shed_total"
	MetricPoolRejected  = "xqindep_pool_rejected_total"
	MetricPoolCompleted = "xqindep_pool_completed_total"
	MetricPoolDegraded  = "xqindep_pool_degraded_total"
	MetricPoolFailed    = "xqindep_pool_failed_total"
	MetricPoolPanics    = "xqindep_pool_panics_total"
	MetricPoolInflight  = "xqindep_pool_inflight"
	MetricBreakerTrips  = "xqindep_breaker_trips_total"
	MetricBreakerReject = "xqindep_breaker_rejected_total"
	MetricBreakerProbes = "xqindep_breaker_probes_total"

	// Cache families, bridged from the compile and plan cache stats.
	MetricCompileCacheHits      = "xqindep_compile_cache_hits_total"
	MetricCompileCacheMisses    = "xqindep_compile_cache_misses_total"
	MetricCompileCacheEvictions = "xqindep_compile_cache_evictions_total"
	MetricCompileCacheResident  = "xqindep_compile_cache_resident"
	MetricPlanCacheHits         = "xqindep_plan_cache_hits_total"
	MetricPlanCacheMisses       = "xqindep_plan_cache_misses_total"
	MetricPlanCacheEvictions    = "xqindep_plan_cache_evictions_total"
	MetricPlanCachePurges       = "xqindep_plan_cache_purges_total"
	MetricPlanCacheVerifyFails  = "xqindep_plan_cache_verify_failures_total"
	MetricPlanCacheResident     = "xqindep_plan_cache_resident"

	// Containment families, bridged from the quarantine registry.
	MetricQuarantineTrips      = "xqindep_quarantine_trips_total"
	MetricQuarantineDowngrades = "xqindep_quarantine_downgrades_total"
	MetricQuarantineRecovered  = "xqindep_quarantine_recovered_total"
	MetricQuarantined          = "xqindep_quarantined"

	// Audit families, bridged from the sentinel auditor (registered
	// only when an auditor is wired).
	MetricAuditObserved      = "xqindep_audit_observed_total"
	MetricAuditSampled       = "xqindep_audit_sampled_total"
	MetricAuditDropped       = "xqindep_audit_dropped_total"
	MetricAuditCompleted     = "xqindep_audit_completed_total"
	MetricAuditDisagreements = "xqindep_audit_disagreements_total"
	MetricAuditPending       = "xqindep_audit_pending"

	// Trace-ring families (registered only when the ring is on).
	MetricTraceRingAdded   = "xqindep_trace_ring_added_total"
	MetricTraceRingEvicted = "xqindep_trace_ring_evicted_total"
)

// Request outcome label values of MetricRequests.
const (
	outcomeLabelOK          = "ok"
	outcomeLabelDegraded    = "degraded"
	outcomeLabelBadRequest  = "bad_request"
	outcomeLabelShed        = "shed"
	outcomeLabelUnavailable = "unavailable"
	outcomeLabelInternal    = "internal"
)

// rungLabels are the MetricRungLatency label values, one per ladder
// rung; registering every series up front keeps /metricz output stable
// from the first scrape.
var rungLabels = []string{"chains", "chains-exact", "types", "paths", "conservative"}

// handlerMetrics holds the handler's pre-registered instruments. The
// per-request hot path only touches them through map lookups on
// constant keys and atomic adds — no allocation, safe for every
// worker (pinned by TestRecordAllocs).
type handlerMetrics struct {
	reg      *obs.Registry
	latency  *obs.Histogram
	rungs    map[string]*obs.Histogram
	outcomes map[string]*obs.Counter
	verdicts map[string]*obs.Counter
	plans    map[string]*obs.Counter
}

// newHandlerMetrics registers the request-path families plus the
// bridges from every existing Stats snapshot (pool, breakers, caches,
// quarantine, audit) into reg. Bridged values are collected at scrape
// time by calling the snapshot, so there is no double bookkeeping and
// /metricz can never disagree with /statz.
func newHandlerMetrics(reg *obs.Registry, s *Server) *handlerMetrics {
	m := &handlerMetrics{
		reg: reg,
		latency: reg.Histogram(MetricRequestLatency,
			"End-to-end analyze latency in seconds (parse, queue, verdict).",
			obs.DefLatencyBuckets),
		rungs:    make(map[string]*obs.Histogram, len(rungLabels)),
		outcomes: make(map[string]*obs.Counter, 6),
		verdicts: make(map[string]*obs.Counter, 2),
		plans:    make(map[string]*obs.Counter, 2),
	}
	for _, r := range rungLabels {
		m.rungs[r] = reg.Histogram(MetricRungLatency,
			"Analyze latency in seconds by the ladder rung that produced the verdict.",
			obs.DefLatencyBuckets, "rung", r)
	}
	for _, o := range []string{
		outcomeLabelOK, outcomeLabelDegraded, outcomeLabelBadRequest,
		outcomeLabelShed, outcomeLabelUnavailable, outcomeLabelInternal,
	} {
		m.outcomes[o] = reg.Counter(MetricRequests,
			"Analyze requests by outcome.", "outcome", o)
	}
	for _, v := range []string{"independent", "dependent"} {
		m.verdicts[v] = reg.Counter(MetricVerdicts,
			"Verdicts served, by answer. Independent verdicts are proofs; dependent includes every conservative downgrade.",
			"verdict", v)
	}
	for _, p := range []string{"warm", "cold"} {
		m.plans[p] = reg.Counter(MetricPlanRequests,
			"Chain-rung verdicts by prepared-plan provenance (warm = plan cache hit).",
			"provenance", p)
	}

	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}
	reg.CounterFunc(MetricPoolAdmitted, "Requests accepted into the pool queue.", stat(func(st Stats) float64 { return float64(st.Admitted) }))
	reg.CounterFunc(MetricPoolShed, "Requests shed by admission control (queue full or memory watermark).", stat(func(st Stats) float64 { return float64(st.Shed) }))
	reg.CounterFunc(MetricPoolMemShed, "Of the shed requests, those rejected by the memory watermark.", stat(func(st Stats) float64 { return float64(st.MemShed) }))
	reg.CounterFunc(MetricPoolRejected, "Requests rejected while draining or closed.", stat(func(st Stats) float64 { return float64(st.Rejected) }))
	reg.CounterFunc(MetricPoolCompleted, "Analyses finished by a worker, any outcome.", stat(func(st Stats) float64 { return float64(st.Completed) }))
	reg.CounterFunc(MetricPoolDegraded, "Completed analyses whose verdict came from a weaker ladder rung.", stat(func(st Stats) float64 { return float64(st.Degraded) }))
	reg.CounterFunc(MetricPoolFailed, "Completed analyses that returned an error.", stat(func(st Stats) float64 { return float64(st.Failed) }))
	reg.CounterFunc(MetricPoolPanics, "Panics converted to internal errors (engine or serving glue).", stat(func(st Stats) float64 { return float64(st.Panics) }))
	reg.GaugeFunc(MetricPoolInflight, "Requests admitted but not yet completed.", stat(func(st Stats) float64 { return float64(st.InFlight) }))
	reg.CounterFunc(MetricBreakerTrips, "Per-schema circuit breaker closed/half-open to open transitions.", stat(func(st Stats) float64 { return float64(st.BreakerTrips) }))
	reg.CounterFunc(MetricBreakerReject, "Requests served a conservative verdict because the schema breaker was open.", stat(func(st Stats) float64 { return float64(st.BreakerRejected) }))
	reg.CounterFunc(MetricBreakerProbes, "Half-open breaker probes admitted.", stat(func(st Stats) float64 { return float64(st.BreakerProbes) }))

	cc := func(f func(dtd.CacheStats) float64) func() float64 {
		return func() float64 { return f(dtd.CompileCacheStats()) }
	}
	reg.CounterFunc(MetricCompileCacheHits, "Compiled-schema cache hits.", cc(func(st dtd.CacheStats) float64 { return float64(st.Hits) }))
	reg.CounterFunc(MetricCompileCacheMisses, "Compiled-schema cache misses (full schema compilations).", cc(func(st dtd.CacheStats) float64 { return float64(st.Misses) }))
	reg.CounterFunc(MetricCompileCacheEvictions, "Compiled-schema cache evictions.", cc(func(st dtd.CacheStats) float64 { return float64(st.Evictions) }))
	reg.GaugeFunc(MetricCompileCacheResident, "Compiled schemas currently resident.", cc(func(st dtd.CacheStats) float64 { return float64(st.Resident) }))

	plans := resolvePlans(s.cfg)
	reg.CounterFunc(MetricPlanCacheHits, "Prepared-plan cache hits (verdict served from a cached artifact).", func() float64 { return float64(plans.Stats().Hits) })
	reg.CounterFunc(MetricPlanCacheMisses, "Prepared-plan cache misses (inference pipeline ran).", func() float64 { return float64(plans.Stats().Misses) })
	reg.CounterFunc(MetricPlanCacheEvictions, "Prepared-plan LRU evictions.", func() float64 { return float64(plans.Stats().Evictions) })
	reg.CounterFunc(MetricPlanCachePurges, "Prepared plans purged by quarantine containment.", func() float64 { return float64(plans.Stats().Purges) })
	reg.CounterFunc(MetricPlanCacheVerifyFails, "Plan cache hits whose resident failed verification and was rebuilt.", func() float64 { return float64(plans.Stats().VerifyFailures) })
	reg.GaugeFunc(MetricPlanCacheResident, "Prepared plans currently resident.", func() float64 { return float64(plans.Stats().Resident) })

	quar := resolveQuarantine(s.cfg)
	reg.CounterFunc(MetricQuarantineTrips, "Schema fingerprints placed in quarantine after an audit disagreement.", func() float64 { return float64(quar.Stats().Trips) })
	reg.CounterFunc(MetricQuarantineDowngrades, "Verdicts served conservatively because the schema was quarantined.", func() float64 { return float64(quar.Stats().Downgrades) })
	reg.CounterFunc(MetricQuarantineRecovered, "Quarantined fingerprints released after clean retrials.", func() float64 { return float64(quar.Stats().Recovered) })
	reg.GaugeFunc(MetricQuarantined, "Schema fingerprints currently quarantined.", func() float64 { return float64(quar.Stats().Quarantined) })

	if a := s.cfg.Auditor; a != nil {
		reg.CounterFunc(MetricAuditObserved, "Completed analyses offered to the audit sampler.", func() float64 { return float64(a.Stats().Observed) })
		reg.CounterFunc(MetricAuditSampled, "Observations accepted into the audit queue.", func() float64 { return float64(a.Stats().Sampled) })
		reg.CounterFunc(MetricAuditDropped, "Observations dropped because the audit queue was full.", func() float64 { return float64(a.Stats().Dropped) })
		reg.CounterFunc(MetricAuditCompleted, "Audits completed against the dynamic oracle.", func() float64 { return float64(a.Stats().Audited) })
		reg.CounterFunc(MetricAuditDisagreements, "Audits where the oracle contradicted an Independent verdict.", func() float64 { return float64(a.Stats().Disagreements) })
		reg.GaugeFunc(MetricAuditPending, "Sampled observations waiting for an audit worker (audit lag).", func() float64 {
			st := a.Stats()
			if lag := st.Sampled - st.Dropped - st.Audited; lag > 0 {
				return float64(lag)
			}
			return 0
		})
	}
	return m
}

// registerRing adds the trace-ring families once the ring exists.
func (m *handlerMetrics) registerRing(ring *obs.SlowRing) {
	m.reg.CounterFunc(MetricTraceRingAdded, "Finished traces offered to the slow-trace ring.", func() float64 { return float64(ring.Status().Added) })
	m.reg.CounterFunc(MetricTraceRingEvicted, "Traces discarded because the ring held slower ones.", func() float64 { return float64(ring.Status().Evicted) })
}

// outcomeOf classifies a finished wire response for MetricRequests.
func outcomeOf(code int, resp AnalyzeResponse) string {
	switch code {
	case http.StatusOK:
		if resp.Degraded {
			return outcomeLabelDegraded
		}
		return outcomeLabelOK
	case http.StatusBadRequest:
		return outcomeLabelBadRequest
	case http.StatusTooManyRequests:
		return outcomeLabelShed
	case http.StatusServiceUnavailable:
		return outcomeLabelUnavailable
	default:
		return outcomeLabelInternal
	}
}

// record updates the request-path families for one finished request
// and returns its outcome label. Constant-key map lookups and atomic
// adds only: zero allocations on the hot path.
func (m *handlerMetrics) record(resp AnalyzeResponse, code int, elapsed time.Duration) string {
	outcome := outcomeOf(code, resp)
	m.latency.ObserveDuration(elapsed)
	if c := m.outcomes[outcome]; c != nil {
		c.Inc()
	}
	if code == http.StatusOK && resp.Error == "" {
		if h := m.rungs[resp.Method]; h != nil {
			h.ObserveDuration(elapsed)
		}
		if resp.Independent {
			m.verdicts["independent"].Inc()
		} else {
			m.verdicts["dependent"].Inc()
		}
		if c := m.plans[resp.Plan]; c != nil {
			c.Inc()
		}
	}
	return outcome
}
