package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"xqindep/internal/plan"
)

func analyzeBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{Schema: bibSchema, Query: "//title", Update: "delete //price"})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRetryAfterOnShed(t *testing.T) {
	// The memory watermark gives a deterministic shed without having to
	// wedge the queue: every admission is ErrOverloaded.
	s := New(Config{
		Workers:         1,
		MemoryWatermark: 1,
		MemoryUsage:     func() uint64 { return 2 },
		Breaker:         BreakerConfig{Backoff: 7 * time.Second},
	})
	defer s.Close()
	h := NewHandler(s)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(analyzeBody(t))))
	if rw.Code != 429 {
		t.Fatalf("code %d: %s", rw.Code, rw.Body.String())
	}
	if got := rw.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want 7 (breaker base backoff)", got)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RetryAfterSec != 7 {
		t.Fatalf("retry_after_sec %d", resp.RetryAfterSec)
	}
}

func TestRetryAfterOnDrain(t *testing.T) {
	s := New(Config{Workers: 1, DrainTimeout: 30 * time.Second})
	// Deadline-free Shutdown: the hint is the configured DrainTimeout,
	// independent of the wall clock.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(s)
	h.now = func() time.Time { return time.Unix(1000, 0) }

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(analyzeBody(t))))
	if rw.Code != 503 {
		t.Fatalf("code %d: %s", rw.Code, rw.Body.String())
	}
	if got := rw.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("analyze Retry-After %q, want 30 (drain timeout)", got)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/readyz", nil))
	if rw.Code != 503 {
		t.Fatalf("readyz code %d", rw.Code)
	}
	if got := rw.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("readyz Retry-After %q, want 30", got)
	}
}

// TestDrainHintDeadline pins the deadline arithmetic under an injected
// clock: remaining window while it lasts, a one-second floor after it
// expires, the configured DrainTimeout before Shutdown begins.
func TestDrainHintDeadline(t *testing.T) {
	s := New(Config{Workers: 1, DrainTimeout: 10 * time.Second})
	defer s.Close()
	base := time.Unix(5000, 0)

	if got := s.drainHint(base); got != 10*time.Second {
		t.Fatalf("pre-shutdown hint %v", got)
	}
	s.drainUntil.Store(base.Add(42 * time.Second).UnixNano())
	if got := s.drainHint(base); got != 42*time.Second {
		t.Fatalf("mid-drain hint %v", got)
	}
	if got := s.drainHint(base.Add(time.Minute)); got != time.Second {
		t.Fatalf("expired-deadline hint %v, want the 1s floor", got)
	}
}

func TestRetryAfterOnCircuitOpen(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Breaker: BreakerConfig{Threshold: 1, Backoff: 10 * time.Second},
		Plans:   plan.NewCache(64), // the blowup fires inside a cold build
	})
	defer s.Close()
	frozen := time.Unix(9000, 0)
	s.breakers.now = func() time.Time { return frozen }
	h := NewHandler(s)

	task := mustTask(t, bibSchema, "//title", "delete //price")
	fp := task.Analyzer.D.Fingerprint()

	// One budget blowup trips the threshold-1 breaker. The breaker is
	// fed after the job's done signal, so wait on the trip counter.
	if _, err := s.Do(blowupCtx(t), task); err != nil {
		t.Fatal(err)
	}
	waitStat(t, s, func(st Stats) bool { return st.BreakerTrips == 1 }, "breaker trip")
	if got := s.BreakerState(fp); got != "open" {
		t.Fatalf("breaker %s after blowup", got)
	}

	// Breaker-served verdicts are 200s that still carry the hint: the
	// remaining open window (exactly the backoff under the frozen clock
	// and zero jitter).
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(analyzeBody(t))))
	if rw.Code != 200 {
		t.Fatalf("code %d: %s", rw.Code, rw.Body.String())
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.CircuitOpen || resp.Independent {
		t.Fatalf("breaker-served response: %+v", resp)
	}
	if resp.RetryAfterSec != 10 {
		t.Fatalf("retry_after_sec %d, want 10", resp.RetryAfterSec)
	}
	if got := rw.Header().Get("Retry-After"); got != "10" {
		t.Fatalf("Retry-After %q, want 10", got)
	}

	// Half the window gone, hint shrinks with it.
	frozen = frozen.Add(4 * time.Second)
	if got := s.breakers.retryAfter(fp); got != 6*time.Second {
		t.Fatalf("remaining window %v, want 6s", got)
	}
}
