package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"xqindep/internal/quarantine"
	"xqindep/internal/statefile"
)

// DurableState composes the statefile primitives into the daemon's
// crash-safe runtime state:
//
//   - the quarantine registry's containment decisions, journaled on
//     every audit-lane transition and compacted into a snapshot at
//     drain (so a restarted daemon still refuses a fingerprint the
//     auditor caught lying before the crash);
//   - the incident JSONL spool, size-capped and rotated, flushed at
//     drain.
//
// Both live under one state directory:
//
//	<dir>/snapshot, <dir>/journal.<gen>   quarantine records
//	<dir>/incidents.jsonl[.N]             incident spool chain
//
// OpenState replays the journal into the registry BEFORE the first
// request can ask for a downgrade decision; wiring the journal hook
// happens after replay, so restored records are not re-journaled.
type DurableState struct {
	dir   string
	store *statefile.Store
	spool *statefile.Spool
	reg   *quarantine.Registry

	recovery  statefile.Recovery
	restored  int
	malformed int

	journalErrs atomic.Int64
	closed      atomic.Bool
}

// StateConfig tunes OpenState. Zero fields select defaults.
type StateConfig struct {
	// Dir is the state directory (required).
	Dir string
	// SpoolMaxBytes caps one incident spool file (default 8 MiB).
	SpoolMaxBytes int64
	// SpoolKeep is the number of rotated spool files kept (default 4).
	SpoolKeep int
	// Options tunes the underlying journal store.
	Options statefile.Options
}

// DurabilityStatus is the /statz durability section and the boot
// recovery summary.
type DurabilityStatus struct {
	Dir string `json:"dir"`
	// RestoredFingerprints is how many quarantined/half-open
	// fingerprints the replay re-armed at boot.
	RestoredFingerprints int `json:"restored_fingerprints"`
	// RecoveredRecords / DiscardedRecords / DiscardedBytes describe
	// journal replay: records replayed, torn tails truncated, bytes
	// discarded with them.
	RecoveredRecords int   `json:"recovered_records"`
	DiscardedRecords int   `json:"discarded_records"`
	DiscardedBytes   int64 `json:"discarded_bytes,omitempty"`
	// MalformedRecords counts replayed records that passed their
	// checksum but failed to decode — storage damage, never a torn
	// write.
	MalformedRecords int  `json:"malformed_records,omitempty"`
	SnapshotLoaded   bool `json:"snapshot_loaded"`
	SnapshotCorrupt  bool `json:"snapshot_corrupt,omitempty"`
	// JournalErrors counts audit-lane transitions that failed to reach
	// disk (the in-memory registry still holds them; only a crash
	// before the next successful snapshot would lose them).
	JournalErrors int64                `json:"journal_errors"`
	Journal       statefile.StoreStats `json:"journal"`
	Spool         statefile.SpoolStats `json:"spool"`
}

// OpenState mounts the state directory, replays the quarantine
// journal into reg (rebasing backoff deadlines onto reg's clock) and
// starts journaling reg's audit-lane transitions. Call before the
// first request is admitted.
func OpenState(fsys statefile.FS, cfg StateConfig, reg *quarantine.Registry) (*DurableState, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: state dir required")
	}
	if reg == nil {
		return nil, fmt.Errorf("server: state requires a quarantine registry")
	}
	store, rec, err := statefile.Open(fsys, cfg.Dir, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("server: open state: %w", err)
	}
	spool, err := statefile.OpenSpool(fsys, cfg.Dir, "incidents.jsonl", cfg.SpoolMaxBytes, cfg.SpoolKeep)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("server: open incident spool: %w", err)
	}
	ds := &DurableState{dir: cfg.Dir, store: store, spool: spool, reg: reg, recovery: rec}

	// Replay: snapshot (a full Export) first, then the journal records
	// appended after it, last writer winning per fingerprint.
	var recs []quarantine.Record
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &recs); err != nil {
			// The snapshot passed its checksum, so this is damage the
			// frame cannot see; fall back to the journal alone.
			ds.malformed++
			recs = nil
		}
	}
	for _, raw := range rec.Records {
		var qr quarantine.Record
		if err := json.Unmarshal(raw, &qr); err != nil {
			ds.malformed++
			continue
		}
		recs = append(recs, qr)
	}
	ds.restored = reg.Restore(recs)

	// Journal from here on: every audit-lane transition becomes one
	// durable record. Failures are counted, not fatal — the in-memory
	// registry stays authoritative and the next snapshot retries.
	reg.SetJournal(func(qr quarantine.Record) {
		b, merr := json.Marshal(qr)
		if merr != nil {
			ds.journalErrs.Add(1)
			return
		}
		if aerr := store.Append(b); aerr != nil {
			ds.journalErrs.Add(1)
		}
	})
	return ds, nil
}

// Spool returns the incident spool as the io.Writer the sentinel
// Config expects (it also satisfies the Flush interface the auditor's
// drain path probes for).
func (ds *DurableState) Spool() io.Writer { return ds.spool }

// Snapshot compacts the registry's full state into the snapshot file
// and rotates the journal.
func (ds *DurableState) Snapshot() error {
	b, err := json.Marshal(ds.reg.Export())
	if err != nil {
		return fmt.Errorf("server: marshal state snapshot: %w", err)
	}
	return ds.store.Snapshot(b)
}

// Drain makes the runtime state durable on the way down: the incident
// spool is flushed always (cheap, one fsync), the snapshot compaction
// runs only while ctx is alive — with the journal's per-append
// durability it is an optimisation, not a correctness step, so a
// blown drain deadline skips it rather than stall the exit.
func (ds *DurableState) Drain(ctx context.Context) error {
	if ds == nil {
		return nil
	}
	ferr := ds.spool.Flush()
	var serr error
	if ctx.Err() == nil {
		serr = ds.Snapshot()
	}
	if ferr != nil {
		return ferr
	}
	return serr
}

// Close snapshots once more and releases the files. Safe after Drain;
// second and later calls are no-ops.
func (ds *DurableState) Close() error {
	if ds == nil || !ds.closed.CompareAndSwap(false, true) {
		return nil
	}
	serr := ds.Snapshot()
	cerr := ds.store.Close()
	perr := ds.spool.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return cerr
	}
	return perr
}

// Status reports the durability counters for /statz and boot logs.
func (ds *DurableState) Status() DurabilityStatus {
	if ds == nil {
		return DurabilityStatus{}
	}
	return DurabilityStatus{
		Dir:                  ds.dir,
		RestoredFingerprints: ds.restored,
		RecoveredRecords:     ds.recovery.Recovered,
		DiscardedRecords:     ds.recovery.Discarded,
		DiscardedBytes:       ds.recovery.DiscardedBytes,
		MalformedRecords:     ds.malformed,
		SnapshotLoaded:       ds.recovery.Snapshot != nil,
		SnapshotCorrupt:      ds.recovery.SnapshotCorrupt,
		JournalErrors:        ds.journalErrs.Load(),
		Journal:              ds.store.Stats(),
		Spool:                ds.spool.Stats(),
	}
}
