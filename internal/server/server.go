// Package server is the fault-tolerant serving layer above the
// per-call analysis engine: PR 1 made a single AnalyzeContext call
// budgeted, cancellable and panic-safe; this package makes *many
// concurrent* calls safe to operate as an always-on service in front
// of an update stream.
//
// The design is defense in depth, outermost first:
//
//   - Admission control: a bounded worker pool fed by a bounded queue.
//     When the queue is full the request is shed immediately with
//     ErrOverloaded — the server never queues unboundedly, so latency
//     stays bounded under bursty load and memory under pathological
//     load.
//
//   - Budget subdivision: the pool-wide guard.Limits are subdivided
//     across workers (guard.Limits.Subdivide), so W concurrent
//     pathological analyses cannot multiply resource consumption W
//     times past what the operator configured for the whole process.
//     Per-request limits are clamped to the per-worker share.
//
//   - Circuit breaking: repeated budget blowups on the same schema
//     (keyed by dtd.Fingerprint) open a per-schema breaker. While
//     open, requests for that schema get an immediate *conservative
//     degraded* verdict — "not independent", which is always sound —
//     instead of burning a worker on an analysis that keeps failing.
//     After a jittered exponential backoff the breaker goes half-open
//     and admits one probe; success closes it, failure re-opens it
//     with a doubled backoff.
//
//   - Panic isolation: the engine already converts panics to
//     *guard.InternalError; the worker adds a second recover so even a
//     bug in the serving glue takes down one request, not the pool.
//
//   - Graceful drain: Shutdown stops admission, lets in-flight (queued
//     and running) work finish until the deadline, then hard-cancels
//     the remainder. Every analysis observes cancellation
//     cooperatively, so drain always terminates.
//
// The soundness invariant of the degradation ladder — a verdict of
// "independent" is a proof, under any budget, fault or overload — is
// preserved by construction: every short-circuit path (shed, breaker
// open, drain, cancellation) answers either an error or the
// conservative "not independent". The chaos suite drives randomized
// fault schedules (package faultinject) through this layer and
// cross-checks against the dynamic oracle to enforce exactly that.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/obs"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
	"xqindep/internal/xquery"
)

// Sentinel errors of the serving layer.
var (
	// ErrOverloaded: the admission queue is full; the request was shed
	// without queueing. Retry with backoff.
	ErrOverloaded = errors.New("server: overloaded, request shed")
	// ErrDraining: the server is shutting down and no longer admits.
	ErrDraining = errors.New("server: draining, not admitting")
	// ErrClosed: the server has fully shut down.
	ErrClosed = errors.New("server: closed")
)

// ErrCircuitOpen marks a conservative verdict served because the
// schema's circuit breaker is open. It unwraps to ErrBudgetExceeded:
// an open breaker is the memory of recent budget blowups, so callers
// (and the Degraded/Err reporting contract) treat it as one.
var ErrCircuitOpen = fmt.Errorf("server: circuit breaker open: %w", guard.ErrBudgetExceeded)

// Config tunes the serving layer. The zero value of every field
// selects a sensible default.
type Config struct {
	// Workers is the size of the analysis pool (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers).
	// Admissions beyond Workers+QueueDepth are shed with
	// ErrOverloaded.
	QueueDepth int
	// Limits is the pool-wide resource budget; it is subdivided across
	// workers and each request runs under its share (zero fields take
	// guard defaults before subdividing).
	Limits guard.Limits
	// RequestTimeout bounds one analysis' wall-clock time once a
	// worker picks it up (default 5s; negative disables).
	RequestTimeout time.Duration
	// NoFallback disables the degradation ladder pool-wide.
	NoFallback bool
	// Breaker configures the per-schema circuit breakers.
	Breaker BreakerConfig
	// DrainTimeout bounds Close's graceful drain (default 10s).
	DrainTimeout time.Duration
	// Auditor, when non-nil, receives every completed analysis for
	// sampling and runtime re-verification (package sentinel). The pool
	// never waits on it: Observe is a bounded non-blocking enqueue.
	Auditor *sentinel.Auditor
	// Quarantine is the containment registry threaded into every
	// analysis; nil selects the process-wide quarantine.Shared(). Wire
	// the same registry here and into the Auditor.
	Quarantine *quarantine.Registry
	// Plans is the prepared-plan cache threaded into every analysis
	// (see internal/plan): the CDAG chain rung resolves repeated
	// logical pairs to one cached artifact, so steady-state traffic
	// serves warm plans. Nil selects the process-wide plan.Shared().
	// Wire the same cache here and into the sentinel so quarantine
	// containment purges it.
	Plans *plan.Cache
	// MemoryWatermark, when positive, sheds admissions with
	// ErrOverloaded while the process heap (per MemoryUsage) exceeds
	// this many bytes — a soft limit in the spirit of
	// runtime/debug.SetMemoryLimit that keeps audit buffers and queue
	// growth from OOMing the daemon.
	MemoryWatermark uint64
	// MemoryUsage reads current heap usage for the watermark check;
	// nil selects a runtime.ReadMemStats-based reader. Injectable for
	// tests.
	MemoryUsage func() uint64
	// State, when non-nil, is the durable runtime state (quarantine
	// journal + incident spool). The server flushes it during drain —
	// bounded by the drain deadline — and reports it under /statz.
	State *DurableState
	// Metrics is the registry NewHandler registers its metric families
	// in (served on /metricz); nil gives the handler a private one.
	// Supply a registry to add your own families to the same scrape.
	Metrics *obs.Registry
	// TraceRing sizes the handler's ring of slowest request traces
	// (served on /tracez). Zero disables the ring; per-request traces
	// (AnalyzeRequest.Trace) work either way.
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.MemoryUsage == nil {
		c.MemoryUsage = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	return c
}

// Task is one independence question.
type Task struct {
	// Analyzer wraps the schema; callers reuse one per schema (it is
	// safe for concurrent use).
	Analyzer *core.Analyzer
	// Query and Update are the parsed pair.
	Query  xquery.Query
	Update xquery.Update
	// Method is the requested analysis technique.
	Method core.Method
	// Limits optionally tightens the per-request budget; fields are
	// clamped to the pool's per-worker share (zero = use the share).
	Limits guard.Limits
	// NoFallback disables the degradation ladder for this request.
	NoFallback bool
	// QueryText and UpdateText are the original source texts; optional,
	// threaded into audit incident records when auditing is wired.
	QueryText, UpdateText string
}

// Stats is a snapshot of the server counters.
type Stats struct {
	Admitted        uint64 // requests accepted into the queue
	Shed            uint64 // rejected with ErrOverloaded
	MemShed         uint64 // of Shed: rejected by the memory watermark
	Rejected        uint64 // rejected with ErrDraining/ErrClosed
	Completed       uint64 // analyses finished (any outcome)
	Degraded        uint64 // completed with a degraded verdict
	Failed          uint64 // completed with an error
	Panics          uint64 // *guard.InternalError outcomes
	BreakerRejected uint64 // served conservatively, breaker open
	BreakerTrips    uint64 // closed/half-open → open transitions
	BreakerProbes   uint64 // half-open probes admitted
	InFlight        int64  // admitted but not yet completed
}

type serverState int32

const (
	stateAccepting serverState = iota
	stateDraining
	stateClosed
)

// job carries one admitted task through the queue.
type job struct {
	ctx   context.Context
	task  Task
	fp    string
	probe bool
	res   core.Result
	err   error
	done  chan struct{}
}

// Server is the concurrent analysis service.
type Server struct {
	cfg      Config
	share    guard.Limits // per-worker subdivision of cfg.Limits
	queue    chan *job
	breakers *breakerSet
	// admitMu serializes admission against shutdown: Do pushes to the
	// queue under the read lock, Shutdown flips the state under the
	// write lock, so after Shutdown observes the state change no new
	// push can race the queue close.
	admitMu  sync.RWMutex
	state    atomic.Int32
	baseCtx  context.Context
	cancel   context.CancelFunc
	workers  sync.WaitGroup
	inflight sync.WaitGroup

	admitted, shed, rejected    atomic.Uint64
	memShed                     atomic.Uint64
	completed, degraded, failed atomic.Uint64
	panics                      atomic.Uint64
	inFlightN                   atomic.Int64

	shutdownOnce sync.Once
	shutdownErr  error
	closed       chan struct{}
	// drainUntil is the drain deadline (unix nanos; 0 before Shutdown),
	// the basis of Retry-After hints on 503 responses.
	drainUntil atomic.Int64
}

// New starts a server with cfg's workers running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	//xqvet:ignore ctxflow server root context: request contexts arrive via Do, teardown cancels this one
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		share:    cfg.Limits.Subdivide(cfg.Workers),
		queue:    make(chan *job, cfg.QueueDepth),
		breakers: newBreakerSet(cfg.Breaker),
		baseCtx:  ctx,
		cancel:   cancel,
		closed:   make(chan struct{}),
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.workers.Done()
			// Goroutine boundary: runJob isolates per-job panics, so
			// anything reaching here is a bug in the loop itself; eat
			// it rather than crash the process (the lost worker is
			// visible in the panic counter).
			defer guard.OnPanic(func(*guard.InternalError) { s.panics.Add(1) })
			s.worker()
		}()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Accepting reports whether new work is admitted.
func (s *Server) Accepting() bool {
	return serverState(s.state.Load()) == stateAccepting
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	bs := s.breakers.snapshot()
	return Stats{
		Admitted:        s.admitted.Load(),
		Shed:            s.shed.Load(),
		MemShed:         s.memShed.Load(),
		Rejected:        s.rejected.Load(),
		Completed:       s.completed.Load(),
		Degraded:        s.degraded.Load(),
		Failed:          s.failed.Load(),
		Panics:          s.panics.Load(),
		BreakerRejected: bs.rejected,
		BreakerTrips:    bs.trips,
		BreakerProbes:   bs.probes,
		InFlight:        s.inFlightN.Load(),
	}
}

// BreakerState reports the breaker state for a schema fingerprint
// ("closed", "open" or "half-open").
func (s *Server) BreakerState(fingerprint string) string {
	return s.breakers.stateOf(fingerprint)
}

// conservative builds the sound immediate verdict served when the
// breaker is open: "not independent" can never be wrong.
func conservative(reason string, err error) core.Result {
	return core.Result{
		Independent:   false,
		Method:        core.MethodConservative,
		Degraded:      true,
		FallbackChain: []core.Method{core.MethodConservative},
		Witnesses:     []string{reason},
		Err:           err,
	}
}

// Do runs one task through admission control and the pool,
// synchronously. It returns:
//
//   - the analysis result (possibly degraded, per the engine's ladder);
//   - a conservative degraded result with Err == ErrCircuitOpen when
//     the schema's breaker is open;
//   - ErrOverloaded when the queue is full, ErrDraining/ErrClosed
//     during shutdown;
//   - ctx's error when the caller gives up first (the admitted job
//     still completes in the background and feeds the breaker).
func (s *Server) Do(ctx context.Context, t Task) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.Analyzer == nil || t.Analyzer.D == nil {
		return core.Result{}, fmt.Errorf("server: task without analyzer")
	}
	fp := t.Analyzer.D.Fingerprint()
	j, err := s.admit(ctx, t, fp)
	if err != nil {
		return core.Result{}, err
	}
	if j == nil {
		return conservative("circuit breaker open for this schema; conservatively assuming dependence", ErrCircuitOpen), nil
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// The worker will observe the dead context and finish the job
		// cheaply; we just stop waiting.
		return core.Result{}, ctx.Err()
	}
}

// admit runs admission control under the read lock: state check,
// breaker check, bounded enqueue. It returns (nil, nil) for a
// breaker-rejected request (served conservatively by the caller).
func (s *Server) admit(ctx context.Context, t Task, fp string) (*job, error) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	switch serverState(s.state.Load()) {
	case stateDraining:
		s.rejected.Add(1)
		return nil, ErrDraining
	case stateClosed:
		s.rejected.Add(1)
		return nil, ErrClosed
	}
	if s.cfg.MemoryWatermark > 0 && s.cfg.MemoryUsage() > s.cfg.MemoryWatermark {
		// Soft memory watermark exceeded: shed before touching the
		// queue, so queued requests and audit buffers stop growing
		// while the heap is hot.
		s.memShed.Add(1)
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	admit, probe := s.breakers.allow(fp)
	if !admit {
		return nil, nil
	}
	j := &job{ctx: ctx, task: t, fp: fp, probe: probe, done: make(chan struct{})}
	s.inflight.Add(1)
	select {
	case s.queue <- j:
		s.admitted.Add(1)
		s.inFlightN.Add(1)
		return j, nil
	default:
		s.inflight.Done()
		if probe {
			s.breakers.record(fp, outcomeNeutral, true)
		}
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
}

func (s *Server) worker() {
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob is the per-job panic boundary of the serving glue: the engine
// converts its own panics to errors inside analyze, so a panic landing
// here is a server bug — confine it to this one job and keep the
// worker alive. The job's done channel is closed by process's deferred
// close even while unwinding, so the caller never hangs.
func (s *Server) runJob(j *job) {
	defer guard.OnPanic(func(*guard.InternalError) { s.panics.Add(1) })
	s.process(j)
}

// clamp bounds the per-request limits by the per-worker share: a
// request may tighten its budget but never exceed the pool's
// subdivision.
func clamp(req, share guard.Limits) guard.Limits {
	req = req.OrDefaults()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	return guard.Limits{
		MaxK:          min(req.MaxK, share.MaxK),
		MaxChains:     min(req.MaxChains, share.MaxChains),
		MaxNodes:      min(req.MaxNodes, share.MaxNodes),
		MaxParseDepth: min(req.MaxParseDepth, share.MaxParseDepth),
		MaxParseInput: min(req.MaxParseInput, share.MaxParseInput),
	}
}

// process runs one job on the worker goroutine with panic isolation
// and feeds its outcome to the schema's breaker.
func (s *Server) process(j *job) {
	defer s.inflight.Done()
	defer s.inFlightN.Add(-1)
	defer close(j.done)

	if err := j.ctx.Err(); err != nil {
		// The caller gave up while the job was queued: don't burn a
		// worker, don't signal the breaker.
		j.err = err
		if j.probe {
			s.breakers.record(j.fp, outcomeNeutral, true)
		}
		return
	}

	jctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	// Hard drain: when the server's base context dies, every running
	// analysis is cancelled too.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if s.cfg.RequestTimeout > 0 {
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeout(jctx, s.cfg.RequestTimeout)
		defer tcancel()
	}

	j.res, j.err = s.analyze(jctx, j.task)

	s.completed.Add(1)
	outcome := outcomeOK
	switch {
	case j.err != nil:
		s.failed.Add(1)
		var ie *guard.InternalError
		switch {
		case errors.As(j.err, &ie):
			s.panics.Add(1)
			outcome = outcomeBlowup
		case errors.Is(j.err, guard.ErrBudgetExceeded):
			outcome = outcomeBlowup
		case errors.Is(j.err, context.Canceled) || errors.Is(j.err, context.DeadlineExceeded):
			// Caller-driven cancellation says nothing about the schema.
			outcome = outcomeNeutral
		default:
			// Malformed input etc.: not a resource blowup.
			outcome = outcomeNeutral
		}
	case j.res.Degraded:
		s.degraded.Add(1)
		if quarantine.IsQuarantined(j.res.Err) {
			// A quarantine downgrade is containment working as designed,
			// not a resource blowup on this schema: feeding it to the
			// breaker would conflate the two state machines and trap the
			// schema in the breaker long after the quarantine recovers.
			outcome = outcomeNeutral
		} else {
			outcome = outcomeBlowup
		}
	}
	s.breakers.record(j.fp, outcome, j.probe)

	if s.cfg.Auditor != nil && j.err == nil {
		obs.FromContext(j.ctx).Mark("audit.observe", 0, 0)
		var sched string
		if sc := faultinject.FromContext(j.ctx); sc != nil {
			sched = sc.String()
		}
		s.cfg.Auditor.Observe(sentinel.Observation{
			D:             j.task.Analyzer.D,
			Query:         j.task.Query,
			Update:        j.task.Update,
			QueryText:     j.task.QueryText,
			UpdateText:    j.task.UpdateText,
			Result:        j.res,
			FaultSchedule: sched,
		})
	}
}

// analyze is the panic-isolation boundary of the serving glue; the
// engine has its own, so a panic surfacing here is a server bug — it
// is still confined to the one request.
func (s *Server) analyze(ctx context.Context, t Task) (res core.Result, err error) {
	defer guard.Recover(&err)
	return t.Analyzer.AnalyzeContext(ctx, t.Query, t.Update, t.Method, core.Options{
		Limits:     clamp(t.Limits, s.share),
		NoFallback: t.NoFallback || s.cfg.NoFallback,
		Quarantine: s.cfg.Quarantine,
		Plans:      s.cfg.Plans,
	})
}

// Shutdown gracefully drains the server: admission stops immediately,
// queued and running work keeps the workers until it finishes or ctx
// expires, at which point the remaining analyses are hard-cancelled
// (they observe cancellation cooperatively and return promptly).
// Shutdown returns nil when the drain completed before the deadline
// and ctx.Err() otherwise; either way the server is fully stopped —
// workers exited — when it returns. Subsequent calls return the first
// call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		if dl, ok := ctx.Deadline(); ok {
			s.drainUntil.Store(dl.UnixNano())
		} else {
			// Deadline-free drain: advertise the configured DrainTimeout
			// as a relative hint (negative marker keeps the field free of
			// wall-clock reads).
			s.drainUntil.Store(-int64(s.cfg.DrainTimeout))
		}
		s.admitMu.Lock()
		s.state.Store(int32(stateDraining))
		s.admitMu.Unlock()
		drained := make(chan struct{})
		go func() {
			// drained must close even if Wait panics (which would mean
			// WaitGroup misuse — a server bug): Shutdown would
			// otherwise hang on a channel nobody can close.
			defer close(drained)
			defer guard.OnPanic(func(*guard.InternalError) { s.panics.Add(1) })
			s.inflight.Wait()
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			s.shutdownErr = ctx.Err()
			s.cancel() // hard-cancel in-flight analyses
			<-drained  // cancellation is cooperative, so this terminates
		}
		close(s.queue)
		s.workers.Wait()
		s.cancel()
		// Drain-time state flush, after the last worker that could
		// journal a transition has exited and still bounded by the
		// caller's drain deadline (a blown deadline skips the snapshot
		// compaction; per-append journal durability already holds).
		if s.cfg.State != nil {
			if err := s.cfg.State.Drain(ctx); err != nil && s.shutdownErr == nil {
				s.shutdownErr = err
			}
		}
		s.state.Store(int32(stateClosed))
		close(s.closed)
	})
	<-s.closed
	return s.shutdownErr
}

// drainHint reports the suggested client Retry-After at now while the
// server is draining or closed: the remaining drain window once
// Shutdown has begun, the configured DrainTimeout before that, and a
// floor of one second so clients never busy-loop on an expired
// deadline.
func (s *Server) drainHint(now time.Time) time.Duration {
	v := s.drainUntil.Load()
	switch {
	case v == 0:
		return s.cfg.DrainTimeout
	case v < 0:
		return time.Duration(-v)
	default:
		if d := time.Unix(0, v).Sub(now); d > time.Second {
			return d
		}
		return time.Second
	}
}

// Close shuts down with the configured DrainTimeout.
func (s *Server) Close() error {
	//xqvet:ignore ctxflow Close is the no-caller-context teardown API; its deadline is DrainTimeout
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}
