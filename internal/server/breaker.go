package server

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerConfig tunes the per-schema circuit breakers. The breaker
// protects the pool from schemas whose analyses keep blowing their
// budget (deeply recursive DTDs under the exact engine, adversarial
// content models): after Threshold consecutive blowups every request
// for that schema is answered immediately with the conservative
// verdict until a backoff elapses, then a single half-open probe
// decides between closing and re-opening with doubled backoff.
type BreakerConfig struct {
	// Threshold is the number of consecutive budget blowups that
	// opens the breaker (default 5; negative disables breaking).
	Threshold int
	// Backoff is the initial open duration (default 1s).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 60s).
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized around its
	// nominal value, in [0,1) (default 0.2). Jitter desynchronizes
	// probe storms when many schemas trip together.
	Jitter float64
	// Seed seeds the jitter source, making backoff schedules
	// deterministic for tests (default 1).
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 60 * time.Second
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// outcome classifies a completed analysis for the breaker.
type outcome int

const (
	// outcomeOK: full-strength verdict within budget.
	outcomeOK outcome = iota
	// outcomeBlowup: budget exceeded (degraded verdict or budget
	// error) or an internal panic.
	outcomeBlowup
	// outcomeNeutral: says nothing about the schema (caller
	// cancelled, malformed input, shed probe).
	outcomeNeutral
)

type breakerState int

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stClosed:
		return "closed"
	case stOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker is the per-fingerprint state machine.
type breaker struct {
	state       breakerState
	consecutive int           // blowups since the last success (closed)
	backoff     time.Duration // current open duration
	openUntil   time.Time
	probing     bool // half-open: the single probe slot is taken
}

// breakerStats aggregates counters across all breakers.
type breakerStats struct {
	rejected uint64
	trips    uint64
	probes   uint64
}

// breakerSet holds one breaker per schema fingerprint. All methods
// are safe for concurrent use; the clock is injectable for tests.
type breakerSet struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	rng   *rand.Rand
	m     map[string]*breaker
	now   func() time.Time
	stats breakerStats
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		m:   make(map[string]*breaker),
		now: time.Now, //xqvet:ignore clockinject injectable-clock default; tests and chaos harnesses replace breakerSet.now
	}
}

func (bs *breakerSet) disabled() bool { return bs.cfg.Threshold < 0 }

func (bs *breakerSet) get(fp string) *breaker {
	b := bs.m[fp]
	if b == nil {
		b = &breaker{}
		bs.m[fp] = b
	}
	return b
}

// allow decides admission for a schema: (true, false) when closed,
// (true, true) for the single half-open probe, (false, false) while
// open or while a probe is already in flight.
func (bs *breakerSet) allow(fp string) (admit, probe bool) {
	if bs.disabled() {
		return true, false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(fp)
	switch b.state {
	case stClosed:
		return true, false
	case stOpen:
		if bs.now().Before(b.openUntil) {
			bs.stats.rejected++
			return false, false
		}
		b.state = stHalfOpen
		b.probing = true
		bs.stats.probes++
		return true, true
	default: // half-open
		if b.probing {
			bs.stats.rejected++
			return false, false
		}
		b.probing = true
		bs.stats.probes++
		return true, true
	}
}

// record feeds one analysis outcome back.
func (bs *breakerSet) record(fp string, o outcome, probe bool) {
	if bs.disabled() {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.get(fp)
	if probe {
		b.probing = false
		switch o {
		case outcomeOK:
			// Recovery: reset completely.
			*b = breaker{}
		case outcomeBlowup:
			bs.trip(b)
		default:
			// Neutral probe: stay half-open, the next allow re-probes.
		}
		return
	}
	if b.state != stClosed {
		// A request admitted before the trip finished late; the open
		// timer already reflects the failure pattern.
		return
	}
	switch o {
	case outcomeOK:
		b.consecutive = 0
	case outcomeBlowup:
		b.consecutive++
		if b.consecutive >= bs.cfg.Threshold {
			bs.trip(b)
		}
	}
}

// trip opens the breaker with the next (jittered, capped) backoff.
// Callers hold bs.mu.
func (bs *breakerSet) trip(b *breaker) {
	if b.backoff == 0 {
		b.backoff = bs.cfg.Backoff
	} else {
		b.backoff *= 2
		if b.backoff > bs.cfg.MaxBackoff {
			b.backoff = bs.cfg.MaxBackoff
		}
	}
	d := b.backoff
	if j := bs.cfg.Jitter; j > 0 {
		f := 1 + j*(2*bs.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	b.state = stOpen
	b.openUntil = bs.now().Add(d)
	b.consecutive = 0
	b.probing = false
	bs.stats.trips++
}

// retryAfter reports how long requests for fp will keep being
// rejected: the remaining open window while the breaker is open, zero
// otherwise (closed, half-open, or unknown fingerprint).
func (bs *breakerSet) retryAfter(fp string) time.Duration {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[fp]
	if b == nil || b.state != stOpen {
		return 0
	}
	if d := b.openUntil.Sub(bs.now()); d > 0 {
		return d
	}
	return 0
}

// stateOf reports the state name for a fingerprint (a never-seen
// schema is closed).
func (bs *breakerSet) stateOf(fp string) string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[fp]
	if b == nil {
		return stClosed.String()
	}
	// An expired open breaker reads as open until the next allow
	// flips it; report it as-is for observability.
	return b.state.String()
}

func (bs *breakerSet) snapshot() breakerStats {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.stats
}
