package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xqindep/internal/obs"
	"xqindep/internal/plan"
)

// A schema no other test uses, so its plan-cache behaviour here is
// deterministic.
const obsSchema = "store <- item*\nitem <- (name, cost?)\nname <- #PCDATA\ncost <- #PCDATA"

func obsHandler(t *testing.T, ringSize int) *Handler {
	t.Helper()
	s := New(Config{Workers: 1, Plans: plan.NewCache(16), TraceRing: ringSize})
	t.Cleanup(func() { s.Close() })
	h := NewHandler(s)
	frozen := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	h.now = func() time.Time { return frozen }
	return h
}

func obsAnalyze(t *testing.T, h *Handler, req AnalyzeRequest) AnalyzeResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(body)))
	if rw.Code != 200 {
		t.Fatalf("POST /analyze = %d: %s", rw.Code, rw.Body.String())
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding verdict: %v", err)
	}
	return resp
}

// /metricz under a frozen clock: every latency observation is exactly
// zero seconds, so the handler-recorded families have fully
// deterministic bucket counts — golden-assert them line by line. (The
// scrape-bridged families read process-global caches, so only their
// presence is asserted.)
func TestMetriczFrozenClock(t *testing.T) {
	h := obsHandler(t, 0)
	req := AnalyzeRequest{Schema: obsSchema, Query: "//name", Update: "delete //cost"}
	r1 := obsAnalyze(t, h, req)
	if r1.ElapsedUS != 0 {
		t.Errorf("frozen clock but elapsed_us = %d; handler read ambient time", r1.ElapsedUS)
	}
	if r1.Plan != "cold" {
		t.Fatalf("first analysis plan = %q, want cold", r1.Plan)
	}
	r2 := obsAnalyze(t, h, req)
	if r2.Plan != "warm" {
		t.Fatalf("repeat analysis plan = %q, want warm", r2.Plan)
	}

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metricz", nil))
	if rw.Code != 200 {
		t.Fatalf("GET /metricz = %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	out := rw.Body.String()

	verdict := "dependent"
	if r1.Independent {
		verdict = "independent"
	}
	exact := []string{
		"# TYPE " + MetricRequestLatency + " histogram",
		MetricRequestLatency + `_bucket{le="5e-05"} 2`, // 0s observations land in the first bucket
		MetricRequestLatency + "_sum 0",
		MetricRequestLatency + "_count 2",
		MetricRungLatency + `_count{rung="chains"} 2`,
		MetricRequests + `{outcome="ok"} 2`,
		MetricRequests + `{outcome="bad_request"} 0`,
		fmt.Sprintf("%s{verdict=%q} 2", MetricVerdicts, verdict),
		MetricPlanRequests + `{provenance="cold"} 1`,
		MetricPlanRequests + `{provenance="warm"} 1`,
	}
	for _, line := range exact {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("/metricz missing exact line %q", line)
		}
	}
	// Bridged families: presence (their values track process-global
	// state other tests share).
	for _, fam := range []string{
		MetricPoolAdmitted, MetricPoolCompleted, MetricPoolInflight,
		MetricBreakerTrips, MetricCompileCacheHits, MetricCompileCacheResident,
		MetricPlanCacheHits, MetricPlanCacheResident,
		MetricQuarantineTrips, MetricQuarantined,
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("/metricz missing family %s", fam)
		}
	}

	// /statz carries the same histograms as quantile digests.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/statz", nil))
	var p StatzPayload
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("decoding /statz: %v", err)
	}
	found := false
	for _, s := range p.Metrics {
		if s.Name == MetricRequestLatency && s.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("/statz metrics digest missing %s count 2: %+v", MetricRequestLatency, p.Metrics)
	}
}

// /tracez serves the ring slowest-first with exact eviction
// accounting, and a traced request returns its span tree (root span,
// parse marks, ladder rung) in the response.
func TestTracezRingAndRequestTrace(t *testing.T) {
	h := obsHandler(t, 2)

	resp := obsAnalyze(t, h, AnalyzeRequest{Schema: obsSchema, Query: "//name", Update: "delete //cost", Trace: true})
	if len(resp.Trace) == 0 {
		t.Fatal("trace requested but response carries no spans")
	}
	names := make(map[string]bool)
	for _, sp := range resp.Trace {
		names[sp.Name] = true
	}
	for _, want := range []string{"serve", "parse.schema", "parse.query", "parse.update", "rung:chains", "core.analyze", "core.verdict"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, resp.Trace)
		}
	}
	if resp.Trace[0].Name != "serve" || resp.Trace[0].Depth != 0 {
		t.Errorf("trace root = %+v, want the serve span at depth 0", resp.Trace[0])
	}

	// Synthetic entries pin the eviction order deterministically (the
	// real request above recorded 0µs under the frozen clock).
	h.ring.Add(obs.RingEntry{TotalUS: 100, Outcome: "ok"})
	h.ring.Add(obs.RingEntry{TotalUS: 300, Outcome: "ok"})
	h.ring.Add(obs.RingEntry{TotalUS: 200, Outcome: "ok"})

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/tracez", nil))
	if rw.Code != 200 {
		t.Fatalf("GET /tracez = %d", rw.Code)
	}
	var p TracezPayload
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("decoding /tracez: %v", err)
	}
	if p.Ring.Capacity != 2 || p.Ring.Held != 2 {
		t.Errorf("ring status = %+v, want capacity 2 held 2", p.Ring)
	}
	if p.Ring.Added != 4 || p.Ring.Evicted != 2 {
		t.Errorf("ring accounting = %+v, want added 4 evicted 2 (real trace + 3 synthetic)", p.Ring)
	}
	if len(p.Slowest) != 2 || p.Slowest[0].TotalUS != 300 || p.Slowest[1].TotalUS != 200 {
		t.Errorf("slowest = %+v, want [300 200]µs", p.Slowest)
	}
}

// With the ring off, /tracez still answers (empty), and an untraced
// request carries no trace.
func TestTracezDisabled(t *testing.T) {
	h := obsHandler(t, 0)
	resp := obsAnalyze(t, h, AnalyzeRequest{Schema: obsSchema, Query: "//name", Update: "delete //cost"})
	if resp.Trace != nil {
		t.Errorf("untraced request returned spans: %+v", resp.Trace)
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/tracez", nil))
	if rw.Code != 200 {
		t.Fatalf("GET /tracez = %d", rw.Code)
	}
	var p TracezPayload
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("decoding /tracez: %v", err)
	}
	if p.Ring.Capacity != 0 || len(p.Slowest) != 0 {
		t.Errorf("disabled ring payload = %+v, want empty", p)
	}
}

// The observability layer's per-request overhead with tracing off is
// the metrics record call — it must not allocate at all, from any
// number of concurrent workers.
func TestRecordAllocFreeAndConcurrent(t *testing.T) {
	h := obsHandler(t, 0)
	resp := AnalyzeResponse{Independent: true, Method: "chains", Plan: "warm"}
	if n := testing.AllocsPerRun(1000, func() {
		h.metrics.record(resp, 200, time.Millisecond)
	}); n != 0 {
		t.Errorf("metrics record allocates %v per request, want 0", n)
	}
	base := h.metrics.latency.Count()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 500; i++ {
				h.metrics.record(resp, 200, time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := h.metrics.latency.Count(); got != base+2000 {
		t.Errorf("latency count = %d after 2000 concurrent records over %d, lost updates", got, base)
	}
}
