package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/guard"
	"xqindep/internal/obs"
	"xqindep/internal/quarantine"
	"xqindep/internal/xquery"
)

// AnalyzeRequest is the wire form of one independence question, used
// by both the HTTP endpoint and the stdin line protocol.
type AnalyzeRequest struct {
	// Schema is the schema text (compact or <!ELEMENT> notation).
	// The batch runner lets it default to a session schema.
	Schema string `json:"schema,omitempty"`
	// Query and Update are the expression texts.
	Query  string `json:"query"`
	Update string `json:"update"`
	// Method names the analysis ("chains" when empty).
	Method string `json:"method,omitempty"`
	// TimeoutMS optionally tightens the per-request wall clock.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxNodes/MaxChains/MaxK optionally tighten the budget (always
	// clamped to the pool share).
	MaxNodes  int `json:"max_nodes,omitempty"`
	MaxChains int `json:"max_chains,omitempty"`
	MaxK      int `json:"max_k,omitempty"`
	// NoFallback turns budget overruns into errors for this request.
	NoFallback bool `json:"no_fallback,omitempty"`
	// Trace requests a per-phase span trace of this request; the
	// finished tree is returned in AnalyzeResponse.Trace.
	Trace bool `json:"trace,omitempty"`
}

// AnalyzeResponse is the wire form of a verdict.
type AnalyzeResponse struct {
	Independent   bool     `json:"independent"`
	Method        string   `json:"method,omitempty"`
	K             int      `json:"k,omitempty"`
	Degraded      bool     `json:"degraded,omitempty"`
	FallbackChain []string `json:"fallback_chain,omitempty"`
	Witnesses     []string `json:"witnesses,omitempty"`
	ElapsedUS     int64    `json:"elapsed_us"`
	CircuitOpen   bool     `json:"circuit_open,omitempty"`
	Quarantined   bool     `json:"quarantined,omitempty"`
	Schema        string   `json:"schema_fingerprint,omitempty"`
	// Plan reports prepared-plan provenance for chain verdicts:
	// "warm" (served from the plan cache) or "cold" (this request ran
	// the inference stages). Empty for other methods.
	Plan  string `json:"plan,omitempty"`
	Error string `json:"error,omitempty"`
	// RetryAfterSec, when positive, suggests how long to back off
	// before retrying (mirrored into the HTTP Retry-After header on
	// 429/503 and breaker-served responses).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// Trace is the finished span tree, present when the request set
	// AnalyzeRequest.Trace.
	Trace []obs.Span `json:"trace,omitempty"`
}

// schemaCache memoizes schema text → analyzer so a hot serving loop
// parses each schema once. It is bounded: at capacity an arbitrary
// entry is evicted (the workload's few live schemas win statistically
// without LRU bookkeeping).
type schemaCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*core.Analyzer
}

func newSchemaCache(max int) *schemaCache {
	if max <= 0 {
		max = 128
	}
	return &schemaCache{max: max, m: make(map[string]*core.Analyzer)}
}

func (c *schemaCache) get(text string) (*core.Analyzer, error) {
	c.mu.Lock()
	if a := c.m[text]; a != nil {
		c.mu.Unlock()
		return a, nil
	}
	c.mu.Unlock()
	// Parse outside the lock; concurrent duplicate parses are benign
	// (last writer wins, both analyzers are valid).
	d, err := dtd.Parse(text)
	if err != nil {
		return nil, err
	}
	a := core.NewAnalyzer(d)
	c.mu.Lock()
	if len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[text] = a
	c.mu.Unlock()
	return a, nil
}

// Handler serves the analysis API over HTTP:
//
//	POST /analyze   — AnalyzeRequest JSON in, AnalyzeResponse JSON out
//	GET  /healthz   — liveness (200 while the process runs)
//	GET  /readyz    — readiness (200 while admitting, 503 draining)
//	GET  /statz     — JSON server counters and histogram digests
//	GET  /metricz   — Prometheus text exposition of the registry
//	GET  /tracez    — the N slowest request traces (span trees)
//	GET  /incidentz — audit incident ring and quarantine state
//
// Status codes: 200 verdicts (including degraded and breaker-served),
// 400 malformed input, 429 shed by admission control, 503 draining or
// closed, 500 internal errors.
type Handler struct {
	srv     *Server
	schemas *schemaCache
	mux     *http.ServeMux
	metrics *handlerMetrics
	// ring retains the slowest finished traces for /tracez; nil when
	// Config.TraceRing is zero (then only per-request Trace works).
	ring *obs.SlowRing
	// now is the injectable clock behind the latency telemetry
	// (ElapsedUS, the metrics histograms and trace timestamps);
	// verdicts never depend on it, but injecting it keeps every
	// wall-clock read in the serving layer test-controllable.
	now func() time.Time
}

// NewHandler builds the HTTP front end of a server. Metric families
// are registered in s's Config.Metrics registry (a private one when
// nil) and the slow-trace ring is sized by Config.TraceRing.
func NewHandler(s *Server) *Handler {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &Handler{
		srv:     s,
		schemas: newSchemaCache(0),
		mux:     http.NewServeMux(),
		metrics: newHandlerMetrics(reg, s),
		now:     time.Now, //xqvet:ignore clockinject injectable-clock default; tests and chaos harnesses replace Handler.now
	}
	if s.cfg.TraceRing > 0 {
		h.ring = obs.NewSlowRing(s.cfg.TraceRing)
		h.metrics.registerRing(h.ring)
	}
	h.mux.HandleFunc("POST /analyze", h.handleAnalyze)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /readyz", h.handleReadyz)
	h.mux.HandleFunc("GET /statz", h.handleStatz)
	h.mux.HandleFunc("GET /metricz", h.handleMetricz)
	h.mux.HandleFunc("GET /tracez", h.handleTracez)
	h.mux.HandleFunc("GET /incidentz", h.handleIncidentz)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (h *Handler) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if !h.srv.Accepting() {
		setRetryAfter(w, ceilSeconds(h.srv.drainHint(h.now())))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// ceilSeconds renders a backoff as whole seconds, the granularity of
// the Retry-After header, rounding up so a hint is never zero.
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func setRetryAfter(w http.ResponseWriter, seconds int) {
	if seconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(seconds))
	}
}

func (h *Handler) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, AnalyzeResponse{Error: "bad request: " + err.Error()})
		return
	}
	resp, code := h.Analyze(r.Context(), req)
	setRetryAfter(w, resp.RetryAfterSec)
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// truncate bounds a source text for trace-ring retention.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// Analyze runs one wire-form request through parsing (with fault
// points at every parser boundary) and the pool, returning the wire
// response and the HTTP status it maps to. It is the shared core of
// the HTTP endpoint and the batch line protocol.
//
// Observability happens here so both fronts get it: the latency,
// outcome, verdict and plan-provenance metrics record every request,
// and a span trace is recorded when the request asked for one
// (req.Trace) or the slow-trace ring is on. An untraced request
// allocates nothing for tracing — no trace object, no context value.
func (h *Handler) Analyze(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, int) {
	start := h.now()
	var tr *obs.Trace
	if req.Trace || h.ring != nil {
		tr = obs.NewTrace(h.now)
		ctx = obs.NewContext(ctx, tr)
	}
	root := tr.Start("serve")
	resp, code := h.doAnalyze(ctx, req)
	root.End()
	elapsed := h.now().Sub(start)
	outcome := h.metrics.record(resp, code, elapsed)
	if tr != nil {
		spans := tr.Finish()
		if req.Trace {
			resp.Trace = spans
		}
		h.ring.Add(obs.RingEntry{
			When:    start,
			TotalUS: elapsed.Microseconds(),
			Schema:  resp.Schema,
			Query:   truncate(req.Query, 200),
			Update:  truncate(req.Update, 200),
			Method:  resp.Method,
			Plan:    resp.Plan,
			Outcome: outcome,
			Spans:   spans,
		})
	}
	return resp, code
}

// doAnalyze is the uninstrumented request path shared by Analyze.
func (h *Handler) doAnalyze(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, int) {
	start := h.now()
	fail := func(code int, format string, args ...any) (AnalyzeResponse, int) {
		return AnalyzeResponse{
			Error:     fmt.Sprintf(format, args...),
			ElapsedUS: h.now().Sub(start).Microseconds(),
		}, code
	}
	if req.Schema == "" {
		return fail(http.StatusBadRequest, "missing schema")
	}
	if err := guard.FirePoint(ctx, "parse.schema"); err != nil {
		return fail(http.StatusBadRequest, "schema: %v", err)
	}
	a, err := h.schemas.get(req.Schema)
	if err != nil {
		return fail(http.StatusBadRequest, "schema: %v", err)
	}
	if err := guard.FirePoint(ctx, "parse.query"); err != nil {
		return fail(http.StatusBadRequest, "query: %v", err)
	}
	q, err := xquery.ParseQuery(req.Query)
	if err != nil {
		return fail(http.StatusBadRequest, "query: %v", err)
	}
	if err := guard.FirePoint(ctx, "parse.update"); err != nil {
		return fail(http.StatusBadRequest, "update: %v", err)
	}
	u, err := xquery.ParseUpdate(req.Update)
	if err != nil {
		return fail(http.StatusBadRequest, "update: %v", err)
	}
	method := core.MethodChains
	if req.Method != "" {
		method, err = core.ParseMethod(req.Method)
		if err != nil {
			return fail(http.StatusBadRequest, "%v", err)
		}
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := h.srv.Do(ctx, Task{
		Analyzer:   a,
		Query:      q,
		Update:     u,
		Method:     method,
		Limits:     guard.Limits{MaxNodes: req.MaxNodes, MaxChains: req.MaxChains, MaxK: req.MaxK},
		NoFallback: req.NoFallback,
		QueryText:  req.Query,
		UpdateText: req.Update,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			// Shed by admission control: suggest the breaker's base
			// backoff as the retry interval — it is the operator's one
			// configured notion of "how long this workload needs to
			// cool off".
			r, code := fail(http.StatusTooManyRequests, "%v", err)
			r.RetryAfterSec = ceilSeconds(h.srv.cfg.Breaker.Backoff)
			return r, code
		case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
			r, code := fail(http.StatusServiceUnavailable, "%v", err)
			r.RetryAfterSec = ceilSeconds(h.srv.drainHint(h.now()))
			return r, code
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return fail(http.StatusServiceUnavailable, "%v", err)
		default:
			var ie *guard.InternalError
			if errors.As(err, &ie) {
				return fail(http.StatusInternalServerError, "internal error")
			}
			return fail(http.StatusBadRequest, "%v", err)
		}
	}
	resp := AnalyzeResponse{
		Independent: res.Independent,
		Method:      res.Method.String(),
		K:           res.K,
		Degraded:    res.Degraded,
		Witnesses:   res.Witnesses,
		ElapsedUS:   h.now().Sub(start).Microseconds(),
		CircuitOpen: errors.Is(res.Err, ErrCircuitOpen),
		Quarantined: quarantine.IsQuarantined(res.Err),
		Schema:      a.D.Fingerprint(),
		Plan:        res.Plan,
	}
	if resp.CircuitOpen {
		// Breaker-served conservative verdict: tell the client when the
		// breaker's open window ends.
		resp.RetryAfterSec = ceilSeconds(h.srv.breakers.retryAfter(a.D.Fingerprint()))
	}
	for _, m := range res.FallbackChain {
		resp.FallbackChain = append(resp.FallbackChain, m.String())
	}
	return resp, http.StatusOK
}

// RunBatch is the stdin line protocol: one AnalyzeRequest JSON object
// per input line, one AnalyzeResponse JSON object per output line, in
// order. Blank lines and #-comments are skipped. A request without a
// schema inherits defaultSchema (the daemon's -schema flag). The
// first read or write error stops the loop; per-request failures are
// reported in the response's error field and do not stop it.
func RunBatch(ctx context.Context, h *Handler, r io.Reader, w io.Writer, defaultSchema string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var req AnalyzeRequest
		var resp AnalyzeResponse
		if err := json.Unmarshal(line, &req); err != nil {
			resp = AnalyzeResponse{Error: "bad request line: " + err.Error()}
		} else {
			if req.Schema == "" {
				req.Schema = defaultSchema
			}
			resp, _ = h.Analyze(ctx, req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
	return sc.Err()
}
