package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"xqindep/internal/faultinject"
	"xqindep/internal/quarantine"
	"xqindep/internal/statefile"
)

// The restart-refusal proof: a fingerprint quarantined before a
// "crash" (process restart onto the same state directory) is still
// refused — downgraded to the conservative verdict — by the restarted
// server, before any new audit evidence exists.
func TestRestartRefusesPreCrashQuarantinedFingerprint(t *testing.T) {
	mem := statefile.NewMemFS()
	task := mustTask(t, bibSchema, "//title", "delete //price")
	fp := task.Analyzer.D.Fingerprint()

	// Life 1: quarantine the fingerprint (as the auditor would on a
	// disagreement), serve one downgraded verdict, drain.
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	ds, err := OpenState(mem, StateConfig{Dir: "state"}, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, Quarantine: reg, State: ds})
	reg.Quarantine(fp)
	res, err := srv.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent || !quarantine.IsQuarantined(res.Err) {
		t.Fatalf("life 1 verdict not downgraded: %+v", res)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: everything unsynced is gone. Journal appends and the
	// drain snapshot are individually fsynced, so this must lose
	// nothing that was acknowledged.
	mem.Crash(nil)

	// Life 2: fresh registry, fresh server, same state directory.
	reg2 := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	ds2, err := OpenState(mem, StateConfig{Dir: "state"}, reg2)
	if err != nil {
		t.Fatalf("reopen state: %v", err)
	}
	if st := ds2.Status(); st.RestoredFingerprints != 1 {
		t.Fatalf("restored fingerprints: %+v", st)
	}
	srv2 := New(Config{Workers: 1, Quarantine: reg2, State: ds2})
	res, err = srv2.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent || !quarantine.IsQuarantined(res.Err) {
		t.Fatalf("restart served the quarantined schema un-downgraded: %+v", res)
	}

	// /statz reports the durability section.
	h := NewHandler(srv2)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/statz", nil))
	var payload StatzPayload
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Durability == nil || payload.Durability.RestoredFingerprints != 1 || payload.Durability.Dir != "state" {
		t.Fatalf("statz durability: %+v", payload.Durability)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	ds2.Close()
}

// Registry-level crash chaos: quarantine transitions journaled through
// OpenState on a faulty filesystem, killed at seeded points. Invariant:
// every transition whose journal append was ACKNOWLEDGED (observable
// as a clean append in the store stats) survives the crash — the
// restored registry still refuses those fingerprints.
func TestStateCrashChaosQuarantineJournal(t *testing.T) {
	runs := 100
	if testing.Short() {
		runs = 20
	}
	for run := 0; run < runs && !t.Failed(); run++ {
		run := run
		t.Run(fmt.Sprintf("run%03d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(20260807 + run)))
			mem := statefile.NewMemFS()
			var faults []faultinject.FSFault
			for i := 0; i < 1+rng.Intn(2); i++ {
				faults = append(faults, faultinject.FSFault{
					Op:   1 + rng.Intn(60),
					Kind: faultinject.FSFaultKind(rng.Intn(4)),
					Keep: rng.Intn(16),
				})
			}
			cfs := faultinject.NewCrashFS(mem, faults...)

			reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
			ds, err := OpenState(cfs, StateConfig{Dir: "state"}, reg)
			if err != nil {
				// Fault during mount: nothing acked, nothing to check.
				return
			}
			acked := map[string]bool{}
			for i := 0; i < 12 && !cfs.Crashed(); i++ {
				fp := fmt.Sprintf("fp-%02d", i%5)
				before := ds.Status()
				if rng.Intn(6) == 0 {
					_ = ds.Snapshot()
					continue
				}
				reg.Quarantine(fp)
				after := ds.Status()
				// The transition is acknowledged iff its journal append
				// reached stable storage.
				if after.Journal.Appends == before.Journal.Appends+1 &&
					after.JournalErrors == before.JournalErrors {
					acked[fp] = true
				}
			}
			if !cfs.Crashed() {
				keep := rng.Intn(8)
				mem.Crash(func(string, int) int { return keep })
			}

			reg2 := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
			ds2, err := OpenState(mem, StateConfig{Dir: "state"}, reg2)
			if err != nil {
				t.Fatalf("recovery mount failed: %v (fired %v)\n%s", err, cfs.Fired(), mem.Dump())
			}
			for fp := range acked {
				if !reg2.Downgrade(fp) {
					t.Fatalf("acked quarantine of %s lost across crash (fired %v, status %+v)\n%s",
						fp, cfs.Fired(), ds2.Status(), mem.Dump())
				}
			}
			ds2.Close()
		})
	}
}
