package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

// The chaos harness drives randomized fault schedules through the
// full serving stack and asserts the invariants that make degradation
// *sound* rather than merely survivable:
//
//  1. No wrong "independent" verdict, ever. Ground truth comes from
//     the internal/eval dynamic oracle evaluated on a sample of
//     schema-valid documents: when some document witnesses dependence,
//     any static verdict of independence — degraded, faulted,
//     breaker-served or not — is a soundness bug.
//  2. Panics never escape the request that caused them, and every
//     surfaced internal error traces back to an injected fault.
//  3. Drain always completes: Close returns within its deadline no
//     matter which faults are in flight.
//  4. No goroutine leaks across hundreds of server lifecycles.
//
// Schedules are deterministic per (CHAOS_SEED, run index); override
// the defaults with CHAOS_SEED / CHAOS_RUNS to reproduce or extend.

const recSchema = "r <- (x | y | z)*\nx <- (x | y | z)*\ny <- (x | y | z)*\nz <- #PCDATA"

// chaosPair is one corpus entry with oracle ground truth.
type chaosPair struct {
	name      string
	analyzer  *core.Analyzer
	query     xquery.Query
	update    xquery.Update
	dependent bool // some sampled document witnesses dependence
}

func buildChaosCorpus(t testing.TB) []chaosPair {
	t.Helper()
	type spec struct{ schema, q, u string }
	specs := []spec{
		{bibSchema, "//title", "delete //price"},
		{bibSchema, "//title", "delete //title"},
		{bibSchema, "//book", "delete //author"},
		{bibSchema, "//book/title", "for $x in //book return insert <author/> into $x"},
		{bibSchema, "//author", "for $x in //book return insert <author/> into $x"},
		{bibSchema, "//price", "for $b in //bib return delete $b/book"},
		{recSchema, "//y//z", "delete //x//z"},
		{recSchema, "//z", "delete //y"},
		{recSchema, "//x//y", "delete //z"},
	}
	analyzers := map[string]*core.Analyzer{}
	docs := map[string][]xmltree.Tree{}
	var corpus []chaosPair
	for i, sp := range specs {
		a := analyzers[sp.schema]
		if a == nil {
			d, err := dtd.Parse(sp.schema)
			if err != nil {
				t.Fatal(err)
			}
			a = core.NewAnalyzer(d)
			analyzers[sp.schema] = a
			// A fixed sample of valid documents for the oracle.
			for s := int64(1); s <= 24; s++ {
				tree, err := d.GenerateTree(rand.New(rand.NewSource(s)), 0.45, 7)
				if err != nil {
					t.Fatal(err)
				}
				docs[sp.schema] = append(docs[sp.schema], tree)
			}
		}
		q, err := xquery.ParseQuery(sp.q)
		if err != nil {
			t.Fatal(err)
		}
		u, err := xquery.ParseUpdate(sp.u)
		if err != nil {
			t.Fatal(err)
		}
		dep := eval.DependentOnAny(docs[sp.schema], q, u) >= 0
		corpus = append(corpus, chaosPair{
			name:      fmt.Sprintf("pair%d(%s|%s)", i, sp.q, sp.u),
			analyzer:  a,
			query:     q,
			update:    u,
			dependent: dep,
		})
	}
	// The corpus must exercise both truth values or the soundness
	// check is vacuous.
	deps := 0
	for _, p := range corpus {
		if p.dependent {
			deps++
		}
	}
	if deps == 0 || deps == len(corpus) {
		t.Fatalf("degenerate corpus: %d/%d dependent", deps, len(corpus))
	}
	return corpus
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func TestChaosRandomFaultSchedules(t *testing.T) {
	faultinject.Enable()
	seed := int64(envInt("CHAOS_SEED", 20260806))
	runs := envInt("CHAOS_RUNS", 200)
	if testing.Short() {
		runs = min(runs, 25)
	}
	corpus := buildChaosCorpus(t)

	before := runtime.NumGoroutine()
	var totalReqs, totalTrips uint64

	for run := 0; run < runs && !t.Failed(); run++ {
		rng := rand.New(rand.NewSource(seed + int64(run)))
		reqs, trips := chaosRun(t, rng, corpus, run)
		totalReqs += reqs
		totalTrips += trips
	}
	t.Logf("chaos: %d runs, %d requests, %d breaker trips", runs, totalReqs, totalTrips)

	// Goroutine-leak check: after every server has shut down, the
	// count must settle back to (about) the starting level. Timer
	// channels bound the wait — no wall-clock arithmetic.
	timeout := time.After(5 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for runtime.NumGoroutine() > before+4 {
		select {
		case <-tick.C:
		case <-timeout:
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
	}
}

// mustDrain runs drain and returns its error, failing the test if it
// does not terminate within limit. The bound is a channel select, not
// a wall-clock measurement.
func mustDrain(t *testing.T, run int, limit time.Duration, drain func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- drain() }()
	select {
	case err := <-done:
		return err
	case <-time.After(limit):
		t.Fatalf("run %d: drain did not terminate within %v", run, limit)
		return nil
	}
}

// chaosRun drives one randomized server lifecycle and returns the
// request and breaker-trip counts.
func chaosRun(t *testing.T, rng *rand.Rand, corpus []chaosPair, run int) (uint64, uint64) {
	cfg := Config{
		Workers:        1 + rng.Intn(4),
		QueueDepth:     1 + rng.Intn(4),
		RequestTimeout: time.Duration(30+rng.Intn(120)) * time.Millisecond,
		DrainTimeout:   3 * time.Second,
		Breaker: BreakerConfig{
			Threshold: 1 + rng.Intn(3),
			Backoff:   time.Duration(1+rng.Intn(5)) * time.Millisecond,
			Seed:      rng.Int63(),
		},
	}
	if rng.Intn(2) == 0 {
		// Sometimes a starvation budget, so real (non-injected) budget
		// exhaustion and deep degradation happen too.
		cfg.Limits = guard.Limits{
			MaxNodes:  1 << (4 + rng.Intn(10)),
			MaxChains: 1 << (3 + rng.Intn(8)),
			MaxK:      1 + rng.Intn(8),
		}
	}
	s := New(cfg)

	type outcome struct {
		pair  chaosPair
		res   core.Result
		err   error
		sched *faultinject.Schedule
	}
	n := 6 + rng.Intn(10)
	outs := make(chan outcome, n)
	var wg sync.WaitGroup
	var cancels []context.CancelFunc
	for i := 0; i < n; i++ {
		pair := corpus[rng.Intn(len(corpus))]
		sched := faultinject.RandomSchedule(rng, rng.Intn(4))
		ctx := faultinject.With(context.Background(), sched)
		if rng.Intn(5) == 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(40))*time.Millisecond)
			cancels = append(cancels, cancel)
		}
		method := core.Method(rng.Intn(2)) // chains or chains-exact
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Do(ctx, Task{
				Analyzer: pair.analyzer,
				Query:    pair.query,
				Update:   pair.update,
				Method:   method,
			})
			outs <- outcome{pair: pair, res: res, err: err, sched: sched}
		}()
	}
	// A quarter of the runs shut down while requests are in flight,
	// exercising the drain paths under fault load.
	earlyDrain := rng.Intn(4) == 0

	if earlyDrain {
		if err := mustDrain(t, run, cfg.DrainTimeout+2*time.Second, s.Close); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("run %d: drain error: %v", run, err)
		}
	}
	wg.Wait()
	if !earlyDrain {
		if err := mustDrain(t, run, cfg.DrainTimeout+2*time.Second, s.Close); err != nil {
			t.Errorf("run %d: clean drain error: %v", run, err)
		}
	}
	for _, c := range cancels {
		c()
	}

	close(outs)
	for o := range outs {
		if o.err != nil {
			var ie *guard.InternalError
			if errors.As(o.err, &ie) {
				// Panics must trace back to an injected fault; anything
				// else is a genuine engine bug the chaos run uncovered.
				if _, injected := ie.Value.(faultinject.PanicValue); !injected {
					t.Errorf("run %d %s: non-injected panic: %v\nschedule %v fired %v",
						run, o.pair.name, o.err, o.sched, o.sched.Fired())
				}
			}
			continue
		}
		// THE invariant: no wrong independent verdict, under any fault
		// schedule, budget, breaker state or drain race.
		if o.res.Independent && o.pair.dependent {
			t.Errorf("run %d: UNSOUND: %s verdict independent (method %v degraded %v fallback %v) but oracle found a dependence witness\nschedule %v fired %v",
				run, o.pair.name, o.res.Method, o.res.Degraded, o.res.FallbackChain, o.sched, o.sched.Fired())
		}
		if o.res.Degraded && !errors.Is(o.res.Err, guard.ErrBudgetExceeded) {
			t.Errorf("run %d %s: degraded verdict without budget cause: %+v", run, o.pair.name, o.res)
		}
	}
	st := s.Stats()
	return st.Admitted, st.BreakerTrips
}

// TestChaosBreakerStorm pins the breaker lifecycle end to end under a
// deterministic fault storm: repeated injected budget blowups on one
// schema must open its breaker (serving conservative verdicts
// immediately), and a clean probe after the backoff must close it.
func TestChaosBreakerStorm(t *testing.T) {
	faultinject.Enable()
	// A private plan cache: the storm's faults fire inside cold plan
	// builds, so a warm hit from another test would defuse them.
	s := New(Config{Workers: 2, Breaker: BreakerConfig{Threshold: 2, Backoff: 50 * time.Millisecond}, Plans: plan.NewCache(64)})
	defer s.Close()
	now := time.Unix(0, 0)
	s.breakers.now = func() time.Time { return now }
	s.breakers.cfg.Jitter = 0

	task := mustTask(t, bibSchema, "//title", "delete //price")
	fp := task.Analyzer.D.Fingerprint()

	// Storm: every request blows its budget at a random phase point.
	rng := rand.New(rand.NewSource(7))
	points := []string{"cdag.build", "cdag.conflict", "core.analyze"}
	sawConservative := false
	for i := 0; i < 12; i++ {
		sched := faultinject.NewSchedule(faultinject.Fault{
			Point: points[rng.Intn(len(points))],
			Kind:  faultinject.KindBudget,
		})
		res, err := s.Do(faultinject.With(context.Background(), sched), task)
		if err != nil {
			t.Fatalf("storm %d: %v", i, err)
		}
		if !res.Degraded {
			t.Fatalf("storm %d: injected blowup produced a clean verdict: %+v", i, res)
		}
		if errors.Is(res.Err, ErrCircuitOpen) {
			sawConservative = true
		}
	}
	if !sawConservative {
		t.Fatal("breaker never served a conservative verdict during the storm")
	}
	if st := s.BreakerState(fp); st != "open" {
		t.Fatalf("after storm want open, got %s", st)
	}

	// Recovery: past the backoff a clean probe closes the breaker and
	// full-strength verdicts resume.
	now = now.Add(10 * time.Minute)
	res, err := s.Do(context.Background(), task)
	if err != nil || res.Degraded || !res.Independent {
		t.Fatalf("recovery probe: %v %+v", err, res)
	}
	if st := s.BreakerState(fp); st != "closed" {
		t.Fatalf("after recovery want closed, got %s", st)
	}
}
