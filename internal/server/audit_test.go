package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"xqindep/internal/faultinject"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
)

func TestMemoryWatermarkSheds(t *testing.T) {
	var heap uint64 = 1 << 20
	s := New(Config{
		Workers:         1,
		MemoryWatermark: 10 << 20,
		MemoryUsage:     func() uint64 { return heap },
	})
	defer s.Close()

	// Below the watermark: served normally.
	if _, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price")); err != nil {
		t.Fatalf("below watermark: %v", err)
	}

	// Above: shed with ErrOverloaded before touching the queue.
	heap = 11 << 20
	_, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("above watermark: want ErrOverloaded, got %v", err)
	}
	st := s.Stats()
	if st.MemShed != 1 || st.Shed != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Pressure relieved: admission resumes.
	heap = 1 << 20
	if _, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price")); err != nil {
		t.Fatalf("after relief: %v", err)
	}
}

// auditServer builds a pool wired to a fresh registry and auditor at
// sample rate 1.
func auditServer(t *testing.T, qcfg quarantine.Config) (*Server, *sentinel.Auditor, *quarantine.Registry) {
	t.Helper()
	reg := quarantine.NewRegistry(qcfg)
	aud := sentinel.New(sentinel.Config{SampleRate: 1, Quarantine: reg, OracleDocs: 2, Seed: 1})
	s := New(Config{Workers: 2, Auditor: aud, Quarantine: reg})
	t.Cleanup(func() {
		s.Close()
		aud.Close()
	})
	return s, aud, reg
}

func TestPoolFeedsAuditorAndQuarantines(t *testing.T) {
	faultinject.Enable()
	s, aud, reg := auditServer(t, quarantine.Config{Backoff: time.Hour})

	task := mustTask(t, bibSchema, "//title", "delete //title") // dependent
	task.QueryText, task.UpdateText = "//title", "delete //title"
	fp := task.Analyzer.D.Fingerprint()

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	res, err := s.Do(faultinject.With(context.Background(), sched), task)
	if err != nil || !res.Independent {
		t.Fatalf("flip not served through the pool: %+v, %v", res, err)
	}
	aud.Flush()

	if st := aud.Stats(); st.Disagreements != 1 {
		t.Fatalf("pool did not feed the auditor: %+v", st)
	}
	if got := reg.State(fp); got != "quarantined" {
		t.Fatalf("fingerprint %s", got)
	}
	in := aud.Incidents()
	if len(in) != 1 || in[0].QueryText != "//title" || in[0].FaultSchedule == "" {
		t.Fatalf("incident provenance through the pool: %+v", in)
	}

	// Subsequent pool requests for the fingerprint are downgraded.
	res, err = s.Do(context.Background(), task)
	if err != nil || res.Independent || !quarantine.IsQuarantined(res.Err) {
		t.Fatalf("post-quarantine pool verdict: %+v, %v", res, err)
	}
}

// TestQuarantineDowngradesDontTripBreaker pins the state-machine
// separation: containment downgrades are breaker-neutral, so a
// quarantined schema does not also rack up breaker trips.
func TestQuarantineDowngradesDontTripBreaker(t *testing.T) {
	faultinject.Enable()
	reg := quarantine.NewRegistry(quarantine.Config{Backoff: time.Hour})
	aud := sentinel.New(sentinel.Config{SampleRate: 1, Quarantine: reg, OracleDocs: 2, Seed: 2})
	s := New(Config{Workers: 1, Auditor: aud, Quarantine: reg, Breaker: BreakerConfig{Threshold: 2}})
	defer func() { s.Close(); aud.Close() }()

	task := mustTask(t, bibSchema, "//title", "delete //title")
	fp := task.Analyzer.D.Fingerprint()
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	if _, err := s.Do(faultinject.With(context.Background(), sched), task); err != nil {
		t.Fatal(err)
	}
	aud.Flush()
	if got := reg.State(fp); got != "quarantined" {
		t.Fatalf("state %s", got)
	}
	// Many quarantine-downgraded completions, all breaker-neutral.
	for i := 0; i < 10; i++ {
		res, err := s.Do(context.Background(), task)
		if err != nil || res.Independent {
			t.Fatalf("downgraded request %d: %+v, %v", i, res, err)
		}
	}
	if st := s.Stats(); st.BreakerTrips != 0 {
		t.Fatalf("quarantine downgrades tripped the breaker: %+v", st)
	}
	if got := s.BreakerState(fp); got != "closed" {
		t.Fatalf("breaker %s", got)
	}
}

func TestIncidentzEndpoint(t *testing.T) {
	faultinject.Enable()
	s, aud, _ := auditServer(t, quarantine.Config{Backoff: time.Hour})
	h := NewHandler(s)

	// Empty ring first.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/incidentz", nil))
	if rw.Code != 200 {
		t.Fatalf("incidentz: %d", rw.Code)
	}
	var p IncidentzPayload
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("incidentz payload: %v", err)
	}
	if len(p.Incidents) != 0 {
		t.Fatalf("incidents before any audit: %+v", p.Incidents)
	}

	// Drive one incident through the HTTP surface.
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.verdict", Kind: faultinject.KindFlipVerdict})
	body, _ := json.Marshal(AnalyzeRequest{Schema: bibSchema, Query: "//title", Update: "delete //title"})
	req := httptest.NewRequest("POST", "/analyze", bytes.NewReader(body))
	req = req.WithContext(faultinject.With(req.Context(), sched))
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("analyze: %d %s", rw.Code, rw.Body.String())
	}
	aud.Flush()

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/incidentz", nil))
	p = IncidentzPayload{}
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Incidents) != 1 || p.Audit.Disagreements != 1 || p.Quarantine.Quarantined != 1 {
		t.Fatalf("incidentz after incident: %+v", p)
	}
	if p.Incidents[0].QueryText != "//title" {
		t.Fatalf("incident texts not threaded from the wire: %+v", p.Incidents[0])
	}

	// statz mirrors the audit and quarantine sections.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/statz", nil))
	var sp StatzPayload
	if err := json.Unmarshal(rw.Body.Bytes(), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Audit.Audited == 0 || sp.Quarantine.Quarantined != 1 {
		t.Fatalf("statz audit sections: %+v", sp)
	}

	// The quarantined fingerprint is flagged on the wire.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(body)))
	var ar AnalyzeResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Independent || !ar.Quarantined || ar.Method != "conservative" {
		t.Fatalf("wire verdict under quarantine: %+v", ar)
	}
}
