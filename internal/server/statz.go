package server

// This file assembles every introspection payload the daemon serves,
// in one place: /statz (JSON counters), /incidentz (audit incident
// ring), /metricz (Prometheus text exposition) and /tracez (slowest
// traces).

import (
	"encoding/json"
	"net/http"

	"xqindep/internal/dtd"
	"xqindep/internal/obs"
	"xqindep/internal/plan"
	"xqindep/internal/quarantine"
	"xqindep/internal/sentinel"
)

// resolveQuarantine resolves the registry the pool consults.
func resolveQuarantine(cfg Config) *quarantine.Registry {
	if cfg.Quarantine != nil {
		return cfg.Quarantine
	}
	return quarantine.Shared()
}

// resolvePlans resolves the prepared-plan cache the pool consults.
func resolvePlans(cfg Config) *plan.Cache {
	if cfg.Plans != nil {
		return cfg.Plans
	}
	return plan.Shared()
}

// StatzPayload is the /statz response: the server counters plus the
// process-wide schema-compilation cache counters (every analyzer the
// schema cache builds resolves its compiled schema through that
// cache, so hits/misses there measure real recompilation avoided).
type StatzPayload struct {
	Server       Stats          `json:"server"`
	CompileCache dtd.CacheStats `json:"compile_cache"`
	// PlanCache reports the prepared-plan cache the pool consults
	// (cfg.Plans, or the process-wide plan.Shared()).
	PlanCache plan.CacheStats `json:"plan_cache"`
	// Audit and Quarantine report the runtime verdict-audit layer;
	// zero-valued when no auditor is wired.
	Audit      sentinel.Stats   `json:"audit"`
	Quarantine quarantine.Stats `json:"quarantine"`
	// Durability reports the crash-safe state layer (journal, snapshot,
	// incident spool); nil when the daemon runs without -state-dir.
	Durability *DurabilityStatus `json:"durability,omitempty"`
	// Metrics digests every latency histogram (count, sum and
	// interpolated p50/p90/p99) — the same data /metricz exposes in
	// full, summarized for humans.
	Metrics []obs.Summary `json:"metrics,omitempty"`
	// TraceRing reports the slow-trace ring counters; nil when the
	// ring is disabled.
	TraceRing *obs.RingStatus `json:"trace_ring,omitempty"`
}

// statz assembles the full status payload — the one place every
// introspection section is wired together.
func (h *Handler) statz() StatzPayload {
	p := StatzPayload{
		Server:       h.srv.Stats(),
		CompileCache: dtd.CompileCacheStats(),
		PlanCache:    resolvePlans(h.srv.cfg).Stats(),
		Quarantine:   resolveQuarantine(h.srv.cfg).Stats(),
		Metrics:      h.metrics.reg.Summaries(),
	}
	if a := h.srv.cfg.Auditor; a != nil {
		p.Audit = a.Stats()
	}
	if ds := h.srv.cfg.State; ds != nil {
		st := ds.Status()
		p.Durability = &st
	}
	if h.ring != nil {
		rs := h.ring.Status()
		p.TraceRing = &rs
	}
	return p
}

func (h *Handler) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h.statz())
}

// IncidentzPayload is the /incidentz response: the audit incident ring
// plus the quarantine registry snapshot that explains the containment
// currently in force.
type IncidentzPayload struct {
	Audit      sentinel.Stats      `json:"audit"`
	Quarantine quarantine.Stats    `json:"quarantine"`
	Incidents  []sentinel.Incident `json:"incidents"`
}

func (h *Handler) handleIncidentz(w http.ResponseWriter, r *http.Request) {
	p := IncidentzPayload{
		Quarantine: resolveQuarantine(h.srv.cfg).Stats(),
		Incidents:  []sentinel.Incident{},
	}
	if a := h.srv.cfg.Auditor; a != nil {
		p.Audit = a.Stats()
		p.Incidents = a.Incidents()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p)
}

// handleMetricz serves the metrics registry in the Prometheus text
// exposition format.
func (h *Handler) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = h.metrics.reg.WriteTo(w)
}

// TracezPayload is the /tracez response: the ring counters and the
// retained traces, slowest first.
type TracezPayload struct {
	Ring    obs.RingStatus  `json:"ring"`
	Slowest []obs.RingEntry `json:"slowest"`
}

func (h *Handler) handleTracez(w http.ResponseWriter, r *http.Request) {
	p := TracezPayload{Ring: h.ring.Status(), Slowest: h.ring.Snapshot()}
	if p.Slowest == nil {
		p.Slowest = []obs.RingEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p)
}
