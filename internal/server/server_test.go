package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"xqindep/internal/core"
	"xqindep/internal/dtd"
	"xqindep/internal/faultinject"
	"xqindep/internal/guard"
	"xqindep/internal/plan"
	"xqindep/internal/xquery"
)

const bibSchema = "bib <- book*\nbook <- title, author*, price?\ntitle <- #PCDATA\nauthor <- #PCDATA\nprice <- #PCDATA"

func mustTask(t *testing.T, schema, q, u string) Task {
	t.Helper()
	d, err := dtd.Parse(schema)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := xquery.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := xquery.ParseUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	return Task{Analyzer: core.NewAnalyzer(d), Query: qa, Update: ua, Method: core.MethodChains}
}

func TestDoBasic(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	res, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Independent || res.Degraded {
		t.Fatalf("want clean independent verdict, got %+v", res)
	}
	res, err = s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //title"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent {
		t.Fatalf("want dependent verdict, got %+v", res)
	}
	st := s.Stats()
	if st.Admitted != 2 || st.Completed != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// stalledTask returns a task whose analysis wedges at the core.analyze
// fault point until its context dies, a channel closed the moment the
// stall takes hold (the worker is provably wedged inside the job), and
// the context cancel that releases it.
func stalledTask(t *testing.T, schema string) (Task, context.Context, context.CancelFunc, <-chan struct{}) {
	t.Helper()
	faultinject.Enable()
	stalled := make(chan struct{})
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "core.analyze", Kind: faultinject.KindStall})
	sched.OnFire = func(faultinject.Fault) { close(stalled) }
	ctx, cancel := context.WithCancel(context.Background())
	return mustTask(t, schema, "//title", "delete //price"), faultinject.With(ctx, sched), cancel, stalled
}

// waitStat blocks until cond holds for the server's stats, failing the
// test if it doesn't within a generous timeout. Synchronization is by
// timer channels only — no wall-clock arithmetic.
func waitStat(t *testing.T, s *Server, cond func(Stats) bool, msg string) {
	t.Helper()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	timeout := time.After(10 * time.Second)
	for !cond(s.Stats()) {
		select {
		case <-tick.C:
		case <-timeout:
			t.Fatalf("timeout waiting for %s (stats %+v)", msg, s.Stats())
		}
	}
}

func TestOverloadSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RequestTimeout: -1})
	defer s.Close()

	var wg sync.WaitGroup
	doStalled := func(ctx context.Context, task Task) {
		defer wg.Done()
		if _, err := s.Do(ctx, task); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("stalled request: %v", err)
		}
	}

	// Wedge the lone worker: once <-stalledA fires, request A has been
	// admitted, dequeued, and is provably stalled inside its job.
	taskA, ctxA, cancelA, stalledA := stalledTask(t, bibSchema)
	defer cancelA()
	wg.Add(1)
	go doStalled(ctxA, taskA)
	<-stalledA

	// The worker holds A and the queue is empty, so request B is
	// admitted into the queue deterministically — no shed race. It
	// never reaches a worker, so its admission is observed via stats.
	taskB, ctxB, cancelB, _ := stalledTask(t, bibSchema)
	defer cancelB()
	wg.Add(1)
	go doStalled(ctxB, taskB)
	waitStat(t, s, func(st Stats) bool { return st.InFlight == 2 }, "second stalled request admitted")

	// Worker wedged and queue full: the next admission must shed.
	shedBefore := s.Stats().Shed
	_, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if got := s.Stats().Shed; got != shedBefore+1 {
		t.Fatalf("shed %d -> %d, want +1 (stats %+v)", shedBefore, got, s.Stats())
	}
	cancelA()
	cancelB()
	wg.Wait()
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RequestTimeout: -1})

	task, ctx, cancel, stalled := stalledTask(t, bibSchema)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, task)
		done <- err
	}()
	// The stall firing proves the request was admitted and is wedged
	// inside the worker — no stats polling needed.
	<-stalled

	// Shutdown with a short deadline: the stalled analysis cannot
	// finish voluntarily, so the drain must hard-cancel it and still
	// terminate. If it doesn't, Shutdown never returns and the test
	// fails by package timeout.
	sctx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	err := s.Shutdown(sctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from forced drain, got %v", err)
	}
	if err := <-done; err == nil {
		t.Fatal("stalled request should have been cancelled")
	}

	// After shutdown, admission fails with ErrClosed.
	if _, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	res, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price"))
	if err != nil || !res.Independent {
		t.Fatalf("warmup: %v %+v", err, res)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	faultinject.Enable()
	// A private plan cache: the injected fault fires during a cold plan
	// build, so a warm hit from another test would mask it.
	s := New(Config{Workers: 1, Plans: plan.NewCache(64)})
	defer s.Close()

	sched := faultinject.NewSchedule(faultinject.Fault{Point: "cdag.build", Kind: faultinject.KindPanic})
	ctx := faultinject.With(context.Background(), sched)
	_, err := s.Do(ctx, mustTask(t, bibSchema, "//title", "delete //price"))
	var ie *guard.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError, got %v", err)
	}
	if _, ok := ie.Value.(faultinject.PanicValue); !ok {
		t.Fatalf("unexpected panic payload %v", ie.Value)
	}
	// The pool survives: the next request succeeds.
	res, err := s.Do(context.Background(), mustTask(t, bibSchema, "//title", "delete //price"))
	if err != nil || !res.Independent {
		t.Fatalf("pool did not survive panic: %v %+v", err, res)
	}
	if s.Stats().Panics != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestBudgetSubdivisionClamps(t *testing.T) {
	lim := guard.Limits{MaxNodes: 1000, MaxChains: 800}
	s := New(Config{Workers: 4, Limits: lim})
	defer s.Close()
	if s.share.MaxNodes != 250 || s.share.MaxChains != 200 {
		t.Fatalf("share: %+v", s.share)
	}
	// A request asking for more than the share is clamped to it; one
	// asking for less keeps its own bound.
	got := clamp(guard.Limits{MaxNodes: guard.NoLimit, MaxChains: 50}, s.share)
	if got.MaxNodes != 250 || got.MaxChains != 50 {
		t.Fatalf("clamp: %+v", got)
	}
}

// blowupCtx returns a context whose analysis hits an injected budget
// fault at the CDAG build, forcing a degraded verdict.
func blowupCtx(t *testing.T) context.Context {
	t.Helper()
	faultinject.Enable()
	sched := faultinject.NewSchedule(faultinject.Fault{Point: "cdag.build", Kind: faultinject.KindBudget})
	return faultinject.With(context.Background(), sched)
}

func TestBreakerLifecycle(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Breaker: BreakerConfig{Threshold: 3, Backoff: 100 * time.Millisecond},
		Plans:   plan.NewCache(64), // blowups fire inside cold builds
	})
	defer s.Close()
	// Deterministic clock and no jitter, so the backoff arithmetic
	// below is exact.
	now := time.Unix(0, 0)
	s.breakers.now = func() time.Time { return now }
	s.breakers.cfg.Jitter = 0

	task := mustTask(t, bibSchema, "//title", "delete //price")
	fp := task.Analyzer.D.Fingerprint()

	// Three consecutive budget blowups trip the breaker.
	for i := 0; i < 3; i++ {
		res, err := s.Do(blowupCtx(t), task)
		if err != nil {
			t.Fatalf("blowup %d: %v", i, err)
		}
		if !res.Degraded {
			t.Fatalf("blowup %d: want degraded, got %+v", i, res)
		}
	}
	if st := s.BreakerState(fp); st != "open" {
		t.Fatalf("after 3 blowups want open, got %s (stats %+v)", st, s.Stats())
	}

	// While open: immediate conservative verdict, no analysis burned.
	res, err := s.Do(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent || !res.Degraded || !errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("open-breaker verdict: %+v", res)
	}
	if !errors.Is(res.Err, guard.ErrBudgetExceeded) {
		t.Fatal("ErrCircuitOpen must unwrap to ErrBudgetExceeded")
	}
	completedBefore := s.Stats().Completed

	// A failed probe after the backoff re-opens with doubled backoff.
	now = now.Add(150 * time.Millisecond)
	res, err = s.Do(blowupCtx(t), task)
	if err != nil || !res.Degraded || errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("probe should run a real (failing) analysis: %v %+v", err, res)
	}
	if st := s.BreakerState(fp); st != "open" {
		t.Fatalf("failed probe should re-open, got %s", st)
	}
	// Doubled backoff: 100ms was not enough to half-open again.
	now = now.Add(150 * time.Millisecond)
	res, _ = s.Do(context.Background(), task)
	if !errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("breaker should still be open under doubled backoff: %+v", res)
	}

	// After the doubled backoff a clean probe closes the breaker.
	now = now.Add(200 * time.Millisecond)
	res, err = s.Do(context.Background(), task)
	if err != nil || res.Degraded || !res.Independent {
		t.Fatalf("recovery probe: %v %+v", err, res)
	}
	if st := s.BreakerState(fp); st != "closed" {
		t.Fatalf("after clean probe want closed, got %s", st)
	}
	// And subsequent traffic flows normally.
	res, err = s.Do(context.Background(), task)
	if err != nil || !res.Independent {
		t.Fatalf("after recovery: %v %+v", err, res)
	}
	if s.Stats().Completed <= completedBefore {
		t.Fatal("post-recovery requests should reach the pool")
	}
	if s.Stats().BreakerTrips != 2 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestBreakerIsPerSchema(t *testing.T) {
	s := New(Config{Workers: 1, Breaker: BreakerConfig{Threshold: 1, Backoff: time.Hour}, Plans: plan.NewCache(64)})
	defer s.Close()

	bib := mustTask(t, bibSchema, "//title", "delete //price")
	other := mustTask(t, "doc <- a*\na <- #PCDATA", "//a", "delete //a")
	if _, err := s.Do(blowupCtx(t), bib); err != nil {
		t.Fatal(err)
	}
	if st := s.BreakerState(bib.Analyzer.D.Fingerprint()); st != "open" {
		t.Fatalf("bib breaker: %s", st)
	}
	// The other schema is unaffected.
	res, err := s.Do(context.Background(), other)
	if err != nil || errors.Is(res.Err, ErrCircuitOpen) {
		t.Fatalf("other schema tripped too: %v %+v", err, res)
	}
}

func TestConservativeVerdictIsSound(t *testing.T) {
	// The breaker-served verdict must never claim independence, even
	// for a pair that IS independent — conservatism costs precision,
	// never soundness.
	res := conservative("x", ErrCircuitOpen)
	if res.Independent {
		t.Fatal("conservative verdict claims independence")
	}
	if !res.Degraded || res.Method != core.MethodConservative {
		t.Fatalf("conservative shape: %+v", res)
	}
}

func TestSubdivideLimits(t *testing.T) {
	l := guard.Limits{MaxNodes: 100, MaxChains: guard.NoLimit}.Subdivide(8)
	if l.MaxNodes != 12 {
		t.Fatalf("MaxNodes: %d", l.MaxNodes)
	}
	if l.MaxChains != guard.NoLimit {
		t.Fatalf("NoLimit must survive subdivision: %d", l.MaxChains)
	}
	if l.MaxK != guard.DefaultMaxK || l.MaxParseDepth != guard.DefaultMaxParseDepth {
		t.Fatalf("structural bounds must not be divided: %+v", l)
	}
	one := guard.Limits{MaxNodes: 3}.Subdivide(100)
	if one.MaxNodes != 1 {
		t.Fatalf("share floor: %+v", one)
	}
}

func TestSchemaFingerprintStability(t *testing.T) {
	a, err := dtd.Parse(bibSchema)
	if err != nil {
		t.Fatal(err)
	}
	// Same declarations in <!ELEMENT> notation → same fingerprint.
	classic := `<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*, price?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>`
	b, err := dtd.Parse(classic)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := dtd.Parse(strings.Replace(bibSchema, "price?", "price*", 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different schemas must not collide")
	}
}
