package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// The /statz endpoint must surface the process-wide compilation-cache
// counters next to the server counters, and the handler must run on
// its injected clock (a frozen clock yields a zero latency reading —
// proof no ambient wall-clock read sneaks into the serving path).
func TestStatzExposesCompileCache(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := NewHandler(s)
	frozen := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	h.now = func() time.Time { return frozen }

	statz := func() StatzPayload {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/statz", nil))
		if rw.Code != 200 {
			t.Fatalf("GET /statz = %d", rw.Code)
		}
		var p StatzPayload
		if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
			t.Fatalf("decoding /statz: %v", err)
		}
		return p
	}
	analyze := func(schema string) AnalyzeResponse {
		body, _ := json.Marshal(AnalyzeRequest{Schema: schema, Query: "//title", Update: "delete //price"})
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("POST", "/analyze", bytes.NewReader(body)))
		if rw.Code != 200 {
			t.Fatalf("POST /analyze = %d: %s", rw.Code, rw.Body.String())
		}
		var resp AnalyzeResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding verdict: %v", err)
		}
		return resp
	}

	before := statz().CompileCache

	// A schema no other test compiles, so the first sight really is a
	// miss of the process-global cache.
	const statzSchema = "catalog <- entry*\nentry <- title, price?\ntitle <- #PCDATA\nprice <- #PCDATA"
	resp := analyze(statzSchema)
	if resp.ElapsedUS != 0 {
		t.Errorf("frozen clock but elapsed_us = %d; handler read ambient time", resp.ElapsedUS)
	}
	after := statz()
	if after.Server.Completed < 1 {
		t.Errorf("server counters missing from /statz: %+v", after.Server)
	}
	if after.CompileCache.Misses <= before.Misses {
		t.Errorf("first analysis did not register a compile-cache miss: before %+v after %+v",
			before, after.CompileCache)
	}
	if after.CompileCache.Resident < 1 {
		t.Errorf("compiled schema not resident: %+v", after.CompileCache)
	}

	// The same declarations under a different text spelling miss the
	// text-keyed schema cache but share a fingerprint — the compile
	// cache must serve the artifact without recompiling.
	analyze(statzSchema + "\n")
	final := statz().CompileCache
	if final.Misses != after.CompileCache.Misses {
		t.Errorf("equal-fingerprint schema recompiled: %+v -> %+v", after.CompileCache, final)
	}
	if final.Hits <= after.CompileCache.Hits {
		t.Errorf("equal-fingerprint schema did not hit the compile cache: %+v -> %+v", after.CompileCache, final)
	}
	found := false
	for _, sc := range final.Schemas {
		if sc.Types > 0 && sc.Fingerprint != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("per-schema stats missing: %+v", final.Schemas)
	}
}
