package pathanalysis

import (
	"math/rand"
	"testing"

	"xqindep/internal/dtd"
	"xqindep/internal/eval"
	"xqindep/internal/xmltree"
	"xqindep/internal/xquery"
)

func pat(items ...item) Pattern { return Pattern(items) }

// mustIndep runs Independence failing the test on error.
func mustIndep(t *testing.T, q xquery.Query, u xquery.Update) Verdict {
	t.Helper()
	v, err := Independence(q, u)
	if err != nil {
		t.Fatalf("Independence: %v", err)
	}
	return v
}

func sym(s string) item { return item{kind: itemSym, sym: s} }
func anyItem() item     { return item{kind: itemAny} }
func desc() item        { return item{kind: itemDesc} }

func TestOverlap(t *testing.T) {
	cases := []struct {
		p, q Pattern
		want bool
	}{
		{pat(sym("a")), pat(sym("a")), true},
		{pat(sym("a")), pat(sym("b")), false},
		{pat(sym("a")), pat(sym("a"), sym("b")), true}, // prefix
		{pat(sym("a"), sym("b")), pat(sym("a")), true}, // prefix other way
		{pat(desc(), sym("c")), pat(desc(), sym("c")), true},
		// The paper's motivating case: //a//c and //b//c overlap
		// without a schema (e.g. /a/b/c matches both).
		{pat(desc(), sym("a"), desc(), sym("c")), pat(desc(), sym("b"), desc(), sym("c")), true},
		{pat(sym("a"), sym("c")), pat(sym("b"), sym("c")), false},
		{pat(anyItem()), pat(sym("z")), true},
		{pat(desc()), pat(sym("x"), sym("y")), true},
		{pat(), pat(sym("x")), true},                                     // root is a prefix of everything
		{pat(sym("a"), desc(), sym("b")), pat(sym("a"), sym("c")), true}, // /a/c prefix of /a/c/.../b? no — but /a/c extends to /a/c/b which matches p
	}
	for _, c := range cases {
		if got := Overlap(c.p, c.q); got != c.want {
			t.Errorf("Overlap(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := Overlap(c.q, c.p); got != c.want {
			t.Errorf("Overlap(%s, %s) (swapped) = %v, want %v", c.q, c.p, got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	p := pat(desc(), sym("a"), anyItem())
	if p.String() != "////a/*" {
		t.Errorf("String = %q", p.String())
	}
}

// TestPaperIntroCases: the schema-less analysis cannot detect
// independence for q1/u1 and q2/u2 (Section 1) — both are flagged
// dependent.
func TestPaperIntroCases(t *testing.T) {
	v1 := mustIndep(t, xquery.MustParseQuery("//a//c"), xquery.MustParseUpdate("delete //b//c"))
	if v1.Independent {
		t.Errorf("path analysis unexpectedly separates //a//c from delete //b//c")
	}
	v2 := mustIndep(t, xquery.MustParseQuery("//title"),
		xquery.MustParseUpdate("for $x in //book return insert <author/> into $x"))
	if v2.Independent {
		t.Errorf("path analysis unexpectedly separates //title from the author insert")
	}
	// But lexically disjoint downward paths are detected.
	v3 := mustIndep(t, xquery.MustParseQuery("/a/b"), xquery.MustParseUpdate("delete /a/c"))
	if !v3.Independent {
		t.Errorf("path analysis missed a trivially disjoint pair: %v vs %v (witness %v)",
			v3.QueryPatterns, v3.UpdatePatterns, v3.Witness)
	}
}

func TestUpwardAxesDegrade(t *testing.T) {
	v := mustIndep(t, xquery.MustParseQuery("//c/.."), xquery.MustParseUpdate("delete /x/y"))
	if v.Independent {
		t.Errorf("upward navigation must degrade to 'anywhere' and conflict")
	}
}

// TestPathSoundness: differential soundness of the schema-less
// baseline over generated documents.
func TestPathSoundness(t *testing.T) {
	d := dtd.MustParse(`
doc <- (a | b)*
a <- c
b <- c
c <- ()
`)
	rng := rand.New(rand.NewSource(6))
	var trees []xmltree.Tree
	for i := 0; i < 10; i++ {
		tr, err := d.GenerateTree(rng, 0.6, 5)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	queries := []string{"//a//c", "//b", "/doc/a", "//c", "/doc"}
	updates := []string{"delete //b//c", "delete //c", "delete /doc/a",
		"for $x in //b return insert <c/> into $x"}
	for _, qs := range queries {
		for _, us := range updates {
			q := xquery.MustParseQuery(qs)
			u := xquery.MustParseUpdate(us)
			if !mustIndep(t, q, u).Independent {
				continue
			}
			if i := eval.DependentOnAny(trees, q, u); i >= 0 {
				t.Errorf("UNSOUND path baseline for q=%s u=%s (doc %s)",
					qs, us, trees[i].Store.String(trees[i].Root))
			}
		}
	}
}
