// Package pathanalysis implements a schema-less path-overlap
// independence analysis in the spirit of Ghelli, Rose and Siméon's
// commutativity analysis and Benedikt–Cheney's destabilizers (the
// paper's citations [15] and [5]). It abstracts queries and updates to
// downward path patterns over an infinite alphabet and deems a pair
// independent when no query pattern is prefix-compatible with an
// update pattern.
//
// Being schema-less, it cannot separate //a//c from //b//c (both match
// /a/b/c) — exactly the weakness the chain-based technique addresses.
// It serves as the second comparison point of the evaluation.
package pathanalysis

import (
	"fmt"
	"sort"
	"strings"

	"xqindep/internal/guard"
	"xqindep/internal/xquery"
)

// itemKind describes one pattern element.
type itemKind int

const (
	// itemSym matches exactly one specific label.
	itemSym itemKind = iota
	// itemAny matches exactly one arbitrary label.
	itemAny
	// itemDesc matches any (possibly empty) sequence of labels.
	itemDesc
)

type item struct {
	kind itemKind
	sym  string
}

// Pattern is a downward path pattern.
type Pattern []item

func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, it := range p {
		switch it.kind {
		case itemSym:
			parts[i] = it.sym
		case itemAny:
			parts[i] = "*"
		case itemDesc:
			parts[i] = "//"
		}
	}
	return "/" + strings.Join(parts, "/")
}

func (p Pattern) extend(it item) Pattern {
	out := make(Pattern, 0, len(p)+1)
	out = append(out, p...)
	return append(out, it)
}

// anywhere is the fully unconstrained pattern //.
var anywhere = Pattern{{kind: itemDesc}}

// closureIdx returns the index set reachable from i by skipping Desc
// items (zero-width matches).
func (p Pattern) closureIdx(i int) []int {
	out := []int{i}
	for i < len(p) && p[i].kind == itemDesc {
		i++
		out = append(out, i)
	}
	return out
}

// Overlap reports whether some word matched by p is a prefix of some
// word matched by q or vice versa — the destabilization test.
func Overlap(p, q Pattern) bool {
	return overlap(nil, p, q, func(i, j int, np, nq int) bool { return i == np || j == nq })
}

// OverlapBelow reports whether some word matched by up is a prefix of
// (an extension of) a word matched by qp — the directional test used
// for inspected nodes: a change at or above an inspected node matters,
// a change strictly below it does not.
func OverlapBelow(up, qp Pattern) bool {
	return overlap(nil, up, qp, func(i, j int, np, nq int) bool { return i == np })
}

// overlap runs a product search over pattern positions; accept decides
// the conflict condition given the positions (after ε-closure) and the
// pattern lengths.
func overlap(b *guard.Budget, p, q Pattern, accept func(i, j, np, nq int) bool) bool {
	type state struct{ i, j int }
	var queue []state
	seen := map[state]bool{}
	push := func(i, j int) {
		for _, ci := range p.closureIdx(i) {
			for _, cj := range q.closureIdx(j) {
				s := state{ci, cj}
				if !seen[s] {
					seen[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	push(0, 0)
	for len(queue) > 0 {
		b.Tick()
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if accept(s.i, s.j, len(p), len(q)) {
			return true
		}
		if s.i == len(p) || s.j == len(q) {
			continue // one side exhausted without acceptance
		}
		a, b := p[s.i], q[s.j]
		if a.kind == itemSym && b.kind == itemSym && a.sym != b.sym {
			continue // cannot consume a common symbol here
		}
		// Consume one common symbol; Desc items may stay put.
		nexts := func(it item, idx int) []int {
			if it.kind == itemDesc {
				return []int{idx} // consume and stay
			}
			return []int{idx + 1}
		}
		for _, ni := range nexts(a, s.i) {
			for _, nj := range nexts(b, s.j) {
				push(ni, nj)
			}
		}
	}
	return false
}

// extraction computes the patterns of nodes a query may return or
// inspect. Variables map to the pattern sets of their bindings.
type env map[string][]Pattern

func (g env) bind(v string, ps []Pattern) env {
	out := make(env, len(g)+1)
	for k, val := range g {
		out[k] = val
	}
	out[v] = ps
	return out
}

// queryPatterns returns (returned, inspected) pattern sets for q. An
// unrecognised AST node yields an error rather than a panic: the path
// analysis is the last rung of the degradation ladder, so it must
// fail cleanly instead of taking the process down.
func queryPatterns(b *guard.Budget, g env, q xquery.Query) ([]Pattern, []Pattern, error) {
	b.Tick()
	switch n := q.(type) {
	case xquery.Empty, xquery.StringLit:
		return nil, nil, nil
	case xquery.Var:
		return g[n.Name], nil, nil
	case xquery.Step:
		ctx := g[n.Var]
		var ret []Pattern
		for _, p := range ctx {
			ret = append(ret, stepPatterns(p, n.Axis, n.Test)...)
		}
		return ret, ctx, nil
	case xquery.Sequence:
		r1, i1, err := queryPatterns(b, g, n.Left)
		if err != nil {
			return nil, nil, err
		}
		r2, i2, err := queryPatterns(b, g, n.Right)
		if err != nil {
			return nil, nil, err
		}
		return append(r1, r2...), append(i1, i2...), nil
	case xquery.If:
		r0, i0, err := queryPatterns(b, g, n.Cond)
		if err != nil {
			return nil, nil, err
		}
		r1, i1, err := queryPatterns(b, g, n.Then)
		if err != nil {
			return nil, nil, err
		}
		r2, i2, err := queryPatterns(b, g, n.Else)
		if err != nil {
			return nil, nil, err
		}
		return append(r1, r2...), append(append(append(i0, r0...), i1...), i2...), nil
	case xquery.For:
		r1, i1, err := queryPatterns(b, g, n.In)
		if err != nil {
			return nil, nil, err
		}
		r2, i2, err := queryPatterns(b, g.bind(n.Var, r1), n.Return)
		if err != nil {
			return nil, nil, err
		}
		return r2, append(i1, i2...), nil
	case xquery.Let:
		r1, i1, err := queryPatterns(b, g, n.Bind)
		if err != nil {
			return nil, nil, err
		}
		r2, i2, err := queryPatterns(b, g.bind(n.Var, r1), n.Return)
		if err != nil {
			return nil, nil, err
		}
		return r2, append(i1, i2...), nil
	case xquery.Element:
		// Constructed elements copy the content subtrees entirely: a
		// change anywhere below a copied node alters the result, so
		// the content patterns are inspected together with their
		// downward extensions.
		r, i, err := queryPatterns(b, g, n.Content)
		if err != nil {
			return nil, nil, err
		}
		out := append(i, r...)
		for _, p := range r {
			out = append(out, p.extend(item{kind: itemDesc}).extend(item{kind: itemAny}))
		}
		return nil, out, nil
	default:
		return nil, nil, fmt.Errorf("pathanalysis: unknown query node %T", q)
	}
}

// stepPatterns extends a context pattern by one step; non-downward
// axes degrade to the unconstrained pattern (the schema-less analysis
// has no way to invert a path).
func stepPatterns(p Pattern, axis xquery.Axis, test xquery.NodeTest) []Pattern {
	var testItem item
	switch test.Kind {
	case xquery.TagTest:
		testItem = item{kind: itemSym, sym: test.Tag}
	default:
		testItem = item{kind: itemAny}
	}
	switch axis {
	case xquery.Self:
		return []Pattern{p} // conservative: keep the context pattern
	case xquery.Child:
		return []Pattern{p.extend(testItem)}
	case xquery.Descendant:
		return []Pattern{p.extend(item{kind: itemDesc}).extend(testItem)}
	case xquery.DescendantOrSelf:
		// The self part keeps p (conservatively ignoring the test);
		// the descendant part requires at least one step down.
		return []Pattern{p, p.extend(item{kind: itemDesc}).extend(testItem)}
	default:
		return []Pattern{anywhere}
	}
}

// updatePatterns returns the patterns of update-affected regions.
func updatePatterns(b *guard.Budget, g env, u xquery.Update) ([]Pattern, error) {
	b.Tick()
	switch n := u.(type) {
	case xquery.UEmpty:
		return nil, nil
	case xquery.USeq:
		l, err := updatePatterns(b, g, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := updatePatterns(b, g, n.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case xquery.UIf:
		l, err := updatePatterns(b, g, n.Then)
		if err != nil {
			return nil, err
		}
		r, err := updatePatterns(b, g, n.Else)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case xquery.UFor:
		r1, _, err := queryPatterns(b, g, n.In)
		if err != nil {
			return nil, err
		}
		return updatePatterns(b, g.bind(n.Var, r1), n.Body)
	case xquery.ULet:
		r1, _, err := queryPatterns(b, g, n.Bind)
		if err != nil {
			return nil, err
		}
		return updatePatterns(b, g.bind(n.Var, r1), n.Body)
	case xquery.Delete:
		r0, _, err := queryPatterns(b, g, n.Target)
		return r0, err
	case xquery.Rename:
		r0, _, err := queryPatterns(b, g, n.Target)
		return r0, err
	case xquery.Insert:
		r0, _, err := queryPatterns(b, g, n.Target)
		if err != nil {
			return nil, err
		}
		var out []Pattern
		for _, p := range r0 {
			// Changes land below the target (into) or beside it
			// (before/after); both are covered by target-or-below with
			// the schema-less abstraction.
			out = append(out, p, p.extend(item{kind: itemDesc}).extend(item{kind: itemAny}))
		}
		return out, nil
	case xquery.Replace:
		r0, _, err := queryPatterns(b, g, n.Target)
		if err != nil {
			return nil, err
		}
		var out []Pattern
		for _, p := range r0 {
			out = append(out, p, p.extend(item{kind: itemDesc}).extend(item{kind: itemAny}))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pathanalysis: unknown update node %T", u)
	}
}

// Verdict is the path analysis outcome.
type Verdict struct {
	Independent bool
	// Witness holds an overlapping pattern pair when dependent.
	Witness        [2]string
	QueryPatterns  []string
	UpdatePatterns []string
}

// Independence runs the schema-less analysis on a quasi-closed pair.
func Independence(q xquery.Query, u xquery.Update) (Verdict, error) {
	return IndependenceBudget(q, u, nil)
}

// IndependenceBudget is Independence under a resource budget: pattern
// extraction and the overlap product search tick b cooperatively, so a
// deadline or node limit aborts via guard.Abort (recover with
// guard.Recover or guard.Do at the caller). A nil budget is unlimited.
func IndependenceBudget(q xquery.Query, u xquery.Update, b *guard.Budget) (Verdict, error) {
	b.Point("paths.check")
	root := []Pattern{{}}
	g := env{xquery.RootVar: root}
	ret, insp, err := queryPatterns(b, g, q)
	if err != nil {
		return Verdict{}, err
	}
	ups, err := updatePatterns(b, g, u)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{Independent: true}
	for _, p := range ret {
		v.QueryPatterns = append(v.QueryPatterns, p.String())
	}
	for _, p := range insp {
		v.QueryPatterns = append(v.QueryPatterns, p.String())
	}
	for _, p := range ups {
		v.UpdatePatterns = append(v.UpdatePatterns, p.String())
	}
	sort.Strings(v.QueryPatterns)
	sort.Strings(v.UpdatePatterns)
	dependent := func(qp, up Pattern) Verdict {
		return Verdict{
			Independent:    false,
			Witness:        [2]string{qp.String(), up.String()},
			QueryPatterns:  v.QueryPatterns,
			UpdatePatterns: v.UpdatePatterns,
		}
	}
	for _, up := range ups {
		b.Tick()
		// Returned subtrees conflict with changes above or below them.
		for _, qp := range ret {
			if overlap(b, qp, up, func(i, j, np, nq int) bool { return i == np || j == nq }) {
				return dependent(qp, up), nil
			}
		}
		// Inspected nodes conflict only with changes at or above them.
		for _, qp := range insp {
			if overlap(b, up, qp, func(i, j, np, nq int) bool { return i == np }) {
				return dependent(qp, up), nil
			}
		}
	}
	return v, nil
}
