package vetcheck

import (
	"go/ast"
	"go/types"
)

// checkCtxFlow keeps cancellation wired end to end. Budget deadlines,
// drain, and the stall fault all ride on context cancellation, so a
// context that is accepted in the wrong position (easy to forget to
// thread) or minted fresh mid-stack (silently detaching the callee
// from its caller's deadline) re-opens the unbounded-analysis hole PR 1
// closed. Two rules, module-wide in non-test code:
//
//  1. A context.Context parameter must come first.
//  2. context.Background()/context.TODO() are banned outside package
//     main, except for the nil-normalization idiom (an enclosing if
//     that compares against nil) and explicitly annotated detach
//     points (//xqvet:ignore ctxflow <why this must outlive the
//     caller>).
func checkCtxFlow(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		isMain := pkg.Name == "main"
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					checkCtxParam(p, pkg, fd.Type)
				}
			}
			walkWithStack(f, func(n ast.Node, stack []ast.Node) {
				switch node := n.(type) {
				case *ast.FuncLit:
					checkCtxParam(p, pkg, node.Type)
				case *ast.CallExpr:
					if isMain || !isCtxFresh(pkg, node) {
						return
					}
					if underNilGuard(stack) {
						return
					}
					p.report("ctxflow", node.Pos(),
						"context.Background()/TODO() outside main detaches from the caller's deadline; propagate the caller's ctx or annotate the detach point")
				}
			})
		}
	}
}

// checkCtxParam reports a context.Context parameter in non-first
// position.
func checkCtxParam(p *pass, pkg *Package, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(pkg, field.Type) && pos > 0 {
			p.report("ctxflow", field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

func isCtxType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isCtxFresh reports a call to context.Background or context.TODO.
func isCtxFresh(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// underNilGuard recognizes the nil-normalization idiom: the call sits
// (possibly via else-branches) under an if whose condition compares
// something against nil, as in `if ctx == nil { ctx = context.Background() }`.
func underNilGuard(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		hasNilCmp := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && id.Name == "nil" {
				hasNilCmp = true
			}
			return !hasNilCmp
		})
		if hasNilCmp {
			return true
		}
	}
	return false
}
