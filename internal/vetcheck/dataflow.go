package vetcheck

// dataflow.go is the worklist engine the flow checks share: a
// forward, join-over-paths fixpoint over a funcCFG. Each check brings
// its own lattice (a small map-shaped state), transfer function, and
// join; the engine owns reachability, ordering and termination.
//
// States are treated as immutable by the engine: transfer receives a
// private copy, and join must allocate its result. Lattices must have
// finite height (every check here uses maps over the function's
// identifiers with 2-3 abstract values, so fixpoints are reached in
// O(blocks × idents) steps).

import "go/ast"

// flowFuncs bundles one analysis's lattice operations over state S.
type flowFuncs[S any] struct {
	// copy clones a state so transfer may mutate its argument freely.
	copy func(S) S
	// join merges two predecessor states into a fresh state.
	join func(S, S) S
	// equal reports lattice equality (fixpoint detection).
	equal func(S, S) bool
	// transfer applies one block node's effect.
	transfer func(S, ast.Node) S
}

// forwardFlow runs the worklist fixpoint from entry and returns the
// state at each reachable block's entry. Unreachable blocks have no
// entry in the result map; report passes must skip them.
func forwardFlow[S any](g *funcCFG, entry S, f flowFuncs[S]) map[*cfgBlock]S {
	in := map[*cfgBlock]S{g.entry: entry}
	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		s := f.copy(in[b])
		for _, n := range b.nodes {
			s = f.transfer(s, n)
		}
		for _, succ := range b.succs {
			old, seen := in[succ]
			var merged S
			if !seen {
				merged = f.copy(s)
			} else {
				merged = f.join(old, s)
			}
			if !seen || !f.equal(old, merged) {
				in[succ] = merged
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
			}
		}
	}
	return in
}

// reachable reports the blocks forwardFlow visited, in graph order
// with deterministic iteration (entry-first breadth order).
func reachableBlocks[S any](g *funcCFG, in map[*cfgBlock]S) []*cfgBlock {
	var out []*cfgBlock
	seen := map[*cfgBlock]bool{}
	queue := []*cfgBlock{g.entry}
	seen[g.entry] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if _, ok := in[b]; !ok {
			continue
		}
		out = append(out, b)
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return out
}

// inspectShallow walks n in evaluation-order style without descending
// into function literals (separate analysis units). Marker nodes are
// unwrapped to the header-evaluated parts only: a selectMarker yields
// nothing (clause guards live in their own blocks) and a rangeMarker
// yields only the ranged-over expression.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	switch m := n.(type) {
	case *selectMarker:
		return
	case *rangeMarker:
		if m.X != nil {
			inspectShallow(m.X, f)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return f(x)
	})
}

// funcUnits yields the analysis units of one declaration: the
// declaration body itself plus every function literal inside it, each
// with its own CFG. Literals inherit the declaration for allowlist
// scoping (a closure inside a proof function is part of the proof).
type funcUnit struct {
	decl *ast.FuncDecl // enclosing top-level declaration
	lit  *ast.FuncLit  // nil for the declaration's own body
	body *ast.BlockStmt
}

func unitsOf(decl *ast.FuncDecl) []funcUnit {
	if decl.Body == nil {
		return nil
	}
	units := []funcUnit{{decl: decl, body: decl.Body}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, funcUnit{decl: decl, lit: lit, body: lit.Body})
		}
		return true
	})
	return units
}
