package vetcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkCompileCache keeps schema compilation behind the fingerprint
// cache: dtd.NewCompiled is the raw constructor, and calling it
// outside internal/dtd builds an uncached, unshared artifact — the
// serving layer would recompile per request and the /statz counters
// would lie. Everyone else goes through dtd.Compile (the shared
// default cache) or an explicit CompileCache. As in clockinject, any
// selector mention of the constructor counts, so aliasing the function
// value does not evade the rule.
func checkCompileCache(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		if pkg.Rel == "internal/dtd" {
			continue // the cache implementation is the one legal caller
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Name() != "NewCompiled" || !isDTDPkg(fn.Pkg()) {
					return true
				}
				p.report("compilecache", sel.Pos(),
					"dtd.NewCompiled in %s bypasses the compilation cache; use dtd.Compile or a CompileCache", pkg.Rel)
				return true
			})
		}
	}
}

// isDTDPkg matches the schema package by module-relative path, the
// same way isGuardPkg matches guard, so fixtures fall under the rule.
func isDTDPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/dtd" ||
		strings.HasSuffix(pkg.Path(), "/internal/dtd"))
}
