package vetcheck

// checkFrozenArtifact enforces the shared-cache immutability contract:
// once a compiled schema (dtd.Compiled) or an interned chain
// (chain.Interned) leaves its constructor, nothing outside the
// configured home packages may mutate it — not its fields, not the
// bitset rows and symbol slices its accessors expose as shared views.
// The sentinel catches such mutations at runtime via checksums; this
// check catches them at vet time.
//
// The analysis is a forward taint flow per function. An expression is
// frozen-rooted when its static type is a frozen artifact type, when
// it is a selector/index/slice/deref chain hanging off a frozen-rooted
// base, when it is a method call on a frozen-rooted receiver (accessors
// return shared views) other than the fresh-memory breakers (Clone,
// And, Names), or when it is a local the flow has tainted by such an
// expression. Findings are writes through frozen-rooted bases: field
// and index assignment, IncDec, append, and the bitset mutator methods.
//
// Known conservatism boundary (DESIGN.md §12): a free function that
// takes an artifact and returns one of its views launders the taint —
// interprocedural view tracking is out of scope; the engines expose
// views only as methods, which are tracked.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// faState maps tainted local objects (aliases of frozen views) to true.
type faState map[types.Object]bool

var faFlow = flowFuncs[faState]{
	copy: func(s faState) faState {
		out := make(faState, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	},
	join: func(a, b faState) faState { // may-tainted: union
		out := make(faState, len(a)+len(b))
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	},
	equal: func(a, b faState) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	},
}

// faBreakers are the artifact methods documented to return fresh
// memory, so their results do not alias the artifact.
var faBreakers = set("Clone", "And", "Names")

// faMutators are the bitset methods that write through their receiver.
var faMutators = set("Add", "Remove", "Or", "OrAnd", "AndWith", "grow")

func checkFrozenArtifact(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		if p.cfg.FrozenHomePackages[pkg.Rel] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, u := range unitsOf(fd) {
					p.faCheckUnit(pkg, u)
				}
			}
		}
	}
}

func (p *pass) faCheckUnit(pkg *Package, u funcUnit) {
	g := buildCFG(pkg, u.body)
	f := faFlow
	f.transfer = func(s faState, n ast.Node) faState {
		return p.faTransfer(pkg, s, n)
	}
	in := forwardFlow(g, faState{}, f)
	for _, b := range reachableBlocks(g, in) {
		s := faFlow.copy(in[b])
		for _, n := range b.nodes {
			p.faReportNode(pkg, s, n)
			s = p.faTransfer(pkg, s, n)
		}
	}
}

// ---- frozen judgment ----

// faFrozenType reports whether t (or its pointee) is a configured
// frozen artifact type.
func (p *pass) faFrozenType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	rel, ok := p.relOfTypesPkg(obj.Pkg())
	if !ok {
		return false
	}
	return p.cfg.FrozenTypes[relKey(rel, obj.Name())]
}

// faRooted reports whether x evaluates to a frozen artifact or a
// shared view into one, under taint state s.
func (p *pass) faRooted(pkg *Package, s faState, x ast.Expr) bool {
	x = ast.Unparen(x)
	if tv, ok := pkg.Info.Types[x]; ok && p.faFrozenType(tv.Type) {
		return true
	}
	switch x := x.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		return obj != nil && s[obj]
	case *ast.SelectorExpr:
		return p.faRooted(pkg, s, x.X)
	case *ast.IndexExpr:
		return p.faRooted(pkg, s, x.X)
	case *ast.SliceExpr:
		return p.faRooted(pkg, s, x.X)
	case *ast.StarExpr:
		return p.faRooted(pkg, s, x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && p.faRooted(pkg, s, x.X)
	case *ast.CallExpr:
		// Conversion keeps the alias.
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
			for _, arg := range x.Args {
				if p.faRooted(pkg, s, arg) {
					return true
				}
			}
			return false
		}
		// Accessor method on a frozen-rooted receiver returns a
		// shared view, unless it is a documented fresh-memory breaker.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Type().(*types.Signature).Recv() != nil &&
				!faBreakers[fn.Name()] {
				return p.faRooted(pkg, s, sel.X)
			}
		}
	}
	return false
}

// faAliasable: only reference-shaped locals can alias a frozen view.
func faAliasable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// ---- transfer ----

func (p *pass) faTransfer(pkg *Package, s faState, n ast.Node) faState {
	taint := func(id *ast.Ident, rooted bool) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rooted && faAliasable(obj.Type()) {
			s[obj] = true
		} else {
			delete(s, obj) // strong update: rebinding clears the taint
		}
	}
	switch n := n.(type) {
	case *rangeMarker:
		// Ranging a frozen view yields frozen elements.
		rooted := p.faRooted(pkg, s, n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				taint(id, rooted)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					taint(id, p.faRooted(pkg, s, n.Rhs[i]))
				}
			}
		} else {
			// Multi-value forms: views never arrive through tuples in
			// this module, so rebinding just clears any taint.
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					taint(id, false)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return s
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				rooted := false
				if i < len(vs.Values) {
					rooted = p.faRooted(pkg, s, vs.Values[i])
				}
				taint(id, rooted)
			}
		}
	}
	return s
}

// ---- reporting ----

func (p *pass) faReportNode(pkg *Package, s faState, n ast.Node) {
	inspectShallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				p.faReportWrite(pkg, s, lhs)
			}
		case *ast.IncDecStmt:
			p.faReportWrite(pkg, s, x.X)
		case *ast.CallExpr:
			if isBuiltin(pkg.Info, x.Fun, "append") && len(x.Args) > 0 &&
				p.faRooted(pkg, s, x.Args[0]) {
				p.report("frozenartifact", x.Pos(),
					"append to a slice view of a frozen artifact may write its shared backing array; Clone first")
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !faMutators[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			rel, okRel := p.relOfTypesPkg(fn.Pkg())
			if !okRel || !p.cfg.FrozenHomePackages[rel] {
				return true
			}
			if p.faRooted(pkg, s, sel.X) {
				p.report("frozenartifact", x.Pos(),
					"%s mutates a bitset row of a frozen artifact; Clone before editing", fn.Name())
			}
		}
		return true
	})
}

// faReportWrite flags an assignment target that writes through a
// frozen-rooted base.
func (p *pass) faReportWrite(pkg *Package, s faState, lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if p.faRooted(pkg, s, l.X) {
			p.report("frozenartifact", l.Pos(),
				"write to field %s of a frozen artifact outside its home package", l.Sel.Name)
		}
	case *ast.IndexExpr:
		if p.faRooted(pkg, s, l.X) {
			p.report("frozenartifact", l.Pos(),
				"write through an index of a frozen artifact view outside its home package")
		}
	case *ast.StarExpr:
		if p.faRooted(pkg, s, l.X) {
			p.report("frozenartifact", l.Pos(),
				"write through a pointer to a frozen artifact outside its home package")
		}
	}
}
