package vetcheck

import (
	"go/ast"
	"go/types"
)

// checkClockInject keeps the chaos harness deterministic: a fixed
// CHAOS_SEED must reproduce a run bit-for-bit, so the serving and
// fault-injection layers may not read ambient time or the global
// math/rand source — the injectable clock (breakerSet.now,
// Handler.now) and per-schedule seeded RNGs exist precisely for this.
// Any selector mention (call or value) of the banned identifiers in
// non-test code of the configured packages is a finding; the one legal
// use, installing time.Now as a default behind the injection seam, is
// annotated.
func checkClockInject(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		if !p.cfg.ClockPackages[pkg.Rel] {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if bannedTime[sel.Sel.Name] {
						p.report("clockinject", sel.Pos(),
							"ambient time.%s in %s breaks chaos reproducibility; use the injected clock", sel.Sel.Name, pkg.Rel)
					}
				case "math/rand":
					if isRandGlobal(pkg, sel) {
						p.report("clockinject", sel.Pos(),
							"global math/rand source in %s breaks chaos reproducibility; use a seeded *rand.Rand", pkg.Rel)
					}
				}
				return true
			})
		}
	}
}

// bannedTime lists the wall-clock-reading and sleeping identifiers;
// types and constants (time.Time, time.Duration, time.Millisecond)
// stay usable.
var bannedTime = set("Now", "Sleep", "Since", "Until", "After", "AfterFunc", "Tick")

// isRandGlobal reports a package-level math/rand function that draws
// from the shared global source. Constructors for explicitly seeded
// generators remain legal.
func isRandGlobal(pkg *Package, sel *ast.SelectorExpr) bool {
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}
