package vetcheck

import "testing"

// cgFixture loads the fix module and builds its call graph once.
func cgFixture(t *testing.T) *callGraph {
	t.Helper()
	mod, err := Load("testdata/src/fix")
	if err != nil {
		t.Fatal(err)
	}
	p := newPass(mod, DefaultConfig())
	p.ensureGraph()
	return p.graph
}

func cgNodeByName(t *testing.T, g *callGraph, name string) *cgNode {
	t.Helper()
	for _, n := range g.nodes {
		if n.pkg != nil && n.pkg.Rel == "internal/cg" && n.decl.Name.Name == name {
			return n
		}
	}
	t.Fatalf("no node %q in internal/cg", name)
	return nil
}

// TestSCCCondensation covers the condensation edge cases the
// interprocedural summaries depend on: plain self-recursion, mutual
// recursion visible only through method values, and a cycle closed by
// interface dispatch.
func TestSCCCondensation(t *testing.T) {
	g := cgFixture(t)
	tests := []struct {
		name      string
		fn        string
		recursive bool
		sameSCCAs string // "" to skip
	}{
		{"self recursion", "selfRec", true, ""},
		{"no recursion", "straight", false, ""},
		{"method-value mutual recursion", "Even", true, "Odd"},
		{"method-value mutual recursion (other side)", "Odd", true, "Even"},
		{"value consumer stays out of the cycle", "apply", false, ""},
		{"interface-dispatch cycle", "Walk", true, "dispatchWalk"},
		{"interface-dispatch cycle (other side)", "dispatchWalk", true, "Walk"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := cgNodeByName(t, g, tt.fn)
			if got := g.recursive(n); got != tt.recursive {
				t.Errorf("recursive(%s) = %v, want %v", tt.fn, got, tt.recursive)
			}
			if tt.sameSCCAs != "" {
				m := cgNodeByName(t, g, tt.sameSCCAs)
				if n.scc != m.scc {
					t.Errorf("%s (scc %d) and %s (scc %d) should share an SCC",
						tt.fn, n.scc, tt.sameSCCAs, m.scc)
				}
			}
		})
	}
}

// TestCallGraphDeterministicOrder: nodes come out sorted by position,
// so summary fixpoints and SCC ids are stable run to run.
func TestCallGraphDeterministicOrder(t *testing.T) {
	g := cgFixture(t)
	g2 := cgFixture(t)
	if len(g.nodes) != len(g2.nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g.nodes), len(g2.nodes))
	}
	for i := range g.nodes {
		a, b := g.nodes[i], g2.nodes[i]
		if a.decl.Name.Name != b.decl.Name.Name || a.scc != b.scc {
			t.Fatalf("node %d differs across builds: %s/scc%d vs %s/scc%d",
				i, a.decl.Name.Name, a.scc, b.decl.Name.Name, b.scc)
		}
	}
}
