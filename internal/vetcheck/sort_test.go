package vetcheck

import (
	"go/token"
	"sort"
	"testing"
)

// TestSortFindingsTotalOrder: the published order is total — file,
// then line, then column, then check, then message — so two runs over
// the same tree print byte-identical output and CI diffs stay stable
// regardless of package-load or map-iteration order.
func TestSortFindingsTotalOrder(t *testing.T) {
	mk := func(file string, line, col int, check, msg string) Finding {
		return Finding{
			Pos:   token.Position{Filename: file, Line: line, Column: col},
			Check: check,
			Msg:   msg,
		}
	}
	want := []Finding{
		mk("a.go", 1, 1, "ctxflow", "m"),
		mk("a.go", 2, 1, "budgetpoints", "m"),
		mk("a.go", 2, 1, "verdictflow", "a"),
		mk("a.go", 2, 1, "verdictflow", "b"),
		mk("a.go", 2, 5, "budgetpoints", "m"),
		mk("b.go", 1, 1, "lockdiscipline", "m"),
	}
	// Feed every permutation-ish rotation through the sorter; each
	// must come back in exactly the published order.
	for shift := range want {
		in := make([]Finding, 0, len(want))
		in = append(in, want[shift:]...)
		in = append(in, want[:shift]...)
		SortFindings(in)
		for i := range want {
			if in[i] != want[i] {
				t.Fatalf("rotation %d: position %d = %+v, want %+v", shift, i, in[i], want[i])
			}
		}
	}
	SortFindings(nil) // must not panic on an empty run
	if !sort.SliceIsSorted(want, func(i, j int) bool {
		a, b := want[i], want[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	}) {
		t.Fatal("reference order in this test is itself unsorted")
	}
}
