package vetcheck

// checkBudgetPoints enforces the termination contract of PR 1: every
// self- or mutually-recursive function in the chain/CDAG/inference
// packages must consume the guard.Budget — directly or through a
// callee — so no recursion can run unmetered past the limits the
// degradation ladder relies on (DESIGN.md §5).
//
// Recursion is detected on the intra-module call graph (Tarjan SCCs,
// with recursive closures inlined into their enclosing declaration);
// budget consumption is any call to a (*guard.Budget) method reachable
// from the function over that same graph.
func checkBudgetPoints(p *pass) {
	p.ensureGraph()
	g := p.graph
	for _, n := range g.nodes {
		if n.pkg == nil || !p.cfg.BudgetPackages[n.pkg.Rel] {
			continue
		}
		if !g.recursive(n) {
			continue
		}
		if g.reachesBudget(n) {
			continue
		}
		p.report("budgetpoints", n.decl.Pos(),
			"recursive function %s never consults the guard.Budget: call a Budget method (Point/Tick/Check/AddNodes/AddChains/CheckK) or delegate to a callee that does",
			n.decl.Name.Name)
	}
}
