package vetcheck

import (
	"strings"
	"testing"
)

// The gate's acceptance criterion: the repository itself is clean.
// Every invariant the nine checks encode holds module-wide, and every
// deliberate exception carries a reasoned //xqvet:ignore — so this
// test failing means either a real violation crept in or an ignore
// went stale. Both demand action, not a looser gate.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := Run("../..", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestNoStalePragmas is the self-application half of the pragma sweep:
// with every check enabled, each //xqvet:ignore in the module must
// still consume a finding. A stale, reasonless, or unknown-check
// pragma surfaces as a "pragma" finding, which this test pins to zero
// independently of the blanket cleanliness assertion above.
func TestNoStalePragmas(t *testing.T) {
	mod, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(mod, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "pragma" {
			t.Errorf("pragma defect: %s", f)
		}
	}
	// Every pragma that exists must name an enabled check — a sweep
	// that left annotations for deleted checks would rot silently.
	for _, pr := range collectPragmas(mod) {
		if !validCheck(pr.check) {
			t.Errorf("%s: pragma names unregistered check %q", pr.pos, pr.check)
		}
		if strings.TrimSpace(pr.reason) == "" {
			t.Errorf("%s: pragma for %q has no reason", pr.pos, pr.check)
		}
	}
}
