package vetcheck

import "testing"

// The gate's acceptance criterion: the repository itself is clean.
// Every invariant the seven checks encode holds module-wide, and every
// deliberate exception carries a reasoned //xqvet:ignore — so this
// test failing means either a real violation crept in or an ignore
// went stale. Both demand action, not a looser gate.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := Run("../..", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
