package vetcheck

// cfg.go builds the intraprocedural control-flow graph the dataflow
// checks (verdictflow, lockdiscipline, frozenartifact) run on. The
// graph is at basic-block granularity: a block is a maximal sequence
// of straight-line nodes, and control transfers to one of its
// successors. Function literals are NOT part of the enclosing
// function's graph — each literal is analyzed as its own unit by the
// checks, with conservative entry assumptions.
//
// Two wrapper node kinds keep nested blocks out of header blocks:
// a selectMarker stands for a select header (the clause guards and
// bodies live in their own blocks), and a rangeMarker stands for a
// range header (only the ranged-over expression evaluates there).
// Checks that pattern-match nodes must handle both.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: nodes execute in order, then control
// moves to one of succs. A block with no successors terminates the
// function (return, panic, or the synthetic exit).
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	for _, t := range b.succs {
		if t == s {
			return
		}
	}
	b.succs = append(b.succs, s)
}

// selectMarker is the header stand-in for a select statement; it owns
// default-clause detection while the comm guards and clause bodies
// live in per-clause blocks.
type selectMarker struct{ *ast.SelectStmt }

// hasDefault reports whether the select can complete without blocking.
func (m *selectMarker) hasDefault() bool {
	for _, c := range m.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// rangeMarker is the header stand-in for a range statement: only X is
// evaluated in the header block; the body is a separate block.
type rangeMarker struct{ *ast.RangeStmt }

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
	// defers collects every defer statement lexically in the body
	// (closures excluded): deferred calls run between the edge into
	// exit and the actual return, on every path.
	defers []*ast.DeferStmt
	// commStmts maps a select comm-clause guard statement to its
	// select, so checks can tell a guard from a free-standing channel
	// operation (the guard's blocking behavior is judged once, at the
	// selectMarker).
	commStmts map[ast.Stmt]*ast.SelectStmt
	// returns records each return statement for summary builders.
	returns []*ast.ReturnStmt
}

// cfgLabel carries the targets a label can be jumped to with.
type cfgLabel struct {
	target *cfgBlock // goto target: the labeled statement itself
	brk    *cfgBlock // break L target (set when the labeled stmt is built)
	cont   *cfgBlock // continue L target (loops only)
}

type cfgBuilder struct {
	pkg       *Package
	g         *funcCFG
	cur       *cfgBlock // nil after a terminating statement
	breaks    []*cfgBlock
	continues []*cfgBlock
	fallT     *cfgBlock // fallthrough target inside a switch clause
	labels    map[string]*cfgLabel
	curLabel  *cfgLabel // label whose statement is being built next
}

// buildCFG constructs the graph for one function body. pkg supplies
// type information (builtin panic detection).
func buildCFG(pkg *Package, body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{commStmts: map[ast.Stmt]*ast.SelectStmt{}}
	b := &cfgBuilder{pkg: pkg, g: g, labels: map[string]*cfgLabel{}}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry

	// Pre-create a block per label so forward gotos resolve.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if l, ok := n.(*ast.LabeledStmt); ok {
			b.labels[l.Label.Name] = &cfgLabel{target: b.newBlock()}
		}
		return true
	})

	b.stmts(body.List)
	if b.cur != nil {
		b.cur.addSucc(g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// block returns the current block, starting a fresh (unreachable)
// island after a terminating statement so later nodes still have a
// home; dataflow only visits reachable blocks.
func (b *cfgBuilder) block() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		blk := b.block()
		blk.nodes = append(blk.nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch/select so
// its break/continue targets can be registered.
func (b *cfgBuilder) takeLabel() *cfgLabel {
	l := b.curLabel
	b.curLabel = nil
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmts(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		b.add(s.Init)
		b.add(s.Cond)
		head := b.block()
		then := b.newBlock()
		join := b.newBlock()
		head.addSucc(then)
		var elseB *cfgBlock
		if s.Else != nil {
			elseB = b.newBlock()
			head.addSucc(elseB)
		} else {
			head.addSucc(join)
		}
		b.cur = then
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		}
		b.cur = join

	case *ast.ForStmt:
		lbl := b.takeLabel()
		b.add(s.Init)
		head := b.newBlock()
		b.block().addSucc(head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		head.addSucc(body)
		if s.Cond != nil {
			head.addSucc(exit)
		}
		contT := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			post.addSucc(head)
			contT = post
		}
		if lbl != nil {
			lbl.brk, lbl.cont = exit, contT
			lbl.target.addSucc(head)
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, contT)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(contT)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		head := b.newBlock()
		b.block().addSucc(head)
		head.nodes = append(head.nodes, &rangeMarker{s})
		body := b.newBlock()
		exit := b.newBlock()
		head.addSucc(body)
		head.addSucc(exit)
		if lbl != nil {
			lbl.brk, lbl.cont = exit, head
			lbl.target.addSucc(head)
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		lbl := b.takeLabel()
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body.List, lbl, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		lbl := b.takeLabel()
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body.List, lbl, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		b.add(&selectMarker{s})
		head := b.block()
		join := b.newBlock()
		if lbl != nil {
			lbl.brk = join
			lbl.target.addSucc(head)
		}
		b.breaks = append(b.breaks, join)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock()
			head.addSucc(cb)
			if cc.Comm != nil {
				b.g.commStmts[cc.Comm] = s
				cb.nodes = append(cb.nodes, cc.Comm)
			}
			b.cur = cb
			b.stmts(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: join stays unreachable.
			b.block().addSucc(b.newBlock())
		}
		b.cur = join

	case *ast.LabeledStmt:
		lbl := b.labels[s.Label.Name]
		b.block().addSucc(lbl.target)
		b.cur = lbl.target
		b.curLabel = lbl
		b.stmt(s.Stmt)
		b.curLabel = nil

	case *ast.BranchStmt:
		b.takeLabel()
		blk := b.block()
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if lbl := b.labels[s.Label.Name]; lbl != nil && lbl.brk != nil {
					blk.addSucc(lbl.brk)
				}
			} else if len(b.breaks) > 0 {
				blk.addSucc(b.breaks[len(b.breaks)-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if lbl := b.labels[s.Label.Name]; lbl != nil && lbl.cont != nil {
					blk.addSucc(lbl.cont)
				}
			} else if len(b.continues) > 0 {
				blk.addSucc(b.continues[len(b.continues)-1])
			}
		case token.GOTO:
			if lbl := b.labels[s.Label.Name]; lbl != nil {
				blk.addSucc(lbl.target)
			}
		case token.FALLTHROUGH:
			if b.fallT != nil {
				blk.addSucc(b.fallT)
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.takeLabel()
		b.add(s)
		b.g.returns = append(b.g.returns, s)
		b.block().addSucc(b.g.exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.takeLabel()
		b.add(s)
		b.g.defers = append(b.g.defers, s)

	case *ast.ExprStmt:
		b.takeLabel()
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(b.pkg.Info, call.Fun, "panic") {
			b.cur = nil // terminating: panic never falls through
		}

	case *ast.EmptyStmt:
		b.takeLabel()

	default:
		// Assign, IncDec, Decl, Go, Send, ... : straight-line.
		b.takeLabel()
		b.add(s)
	}
}

// switchClauses builds the per-case blocks shared by expression and
// type switches. caseExprs returns the header-evaluated expressions
// of a clause (the tag comparisons; empty for type switches).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, lbl *cfgLabel, caseExprs func(*ast.CaseClause) []ast.Node) {
	head := b.block()
	join := b.newBlock()
	if lbl != nil {
		lbl.brk = join
		lbl.target.addSucc(head)
	}
	caseBlocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		head.nodes = append(head.nodes, caseExprs(cc)...)
		caseBlocks[i] = b.newBlock()
		head.addSucc(caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(join)
	}
	b.breaks = append(b.breaks, join)
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok || caseBlocks[i] == nil {
			continue
		}
		savedFall := b.fallT
		if i+1 < len(clauses) && caseBlocks[i+1] != nil {
			b.fallT = caseBlocks[i+1]
		} else {
			b.fallT = nil
		}
		b.cur = caseBlocks[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
		b.fallT = savedFall
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}
