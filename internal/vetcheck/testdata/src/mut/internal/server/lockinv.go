// Seeded lock-order inversion: two functions acquire the same pair of
// mutexes in opposite orders. The CI negative smoke asserts xqvet
// exits non-zero on this module.
package server

import "sync"

type Reg struct{ mu sync.Mutex }

type Store struct{ mu sync.Mutex }

func regThenStore(r *Reg, s *Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

func storeThenReg(r *Reg, s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
}
