// Module mut is the mutation fixture: hand-inserted defects that the
// upgraded gate must catch and the old one provably missed. It carries
// no want comments — tests and the CI negative smoke assert the gate
// FAILS here.
package mut

// Report mirrors the public verdict struct (bare name in the default
// configuration's VerdictTypes).
type Report struct {
	Independent bool
	Method      string
}

// reportFromResult launders an unproven bool through a local before
// it reaches Independent. Under the old name-based allowlist this
// function's name made everything inside it legal; verdictflow judges
// the value instead and rejects it.
func reportFromResult(verdict bool) Report {
	ok := verdict
	return Report{Independent: ok, Method: "chains"}
}
