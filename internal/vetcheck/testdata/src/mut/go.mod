module example.com/mut

go 1.22
