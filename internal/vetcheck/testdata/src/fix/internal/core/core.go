// Firing and non-firing fixtures for ctxflow (parameter position,
// fresh-context ban, nil-normalization idiom) and the core verdict
// type.
package core

import "context"

// Result mirrors the real ladder result (allowlisted verdict type).
type Result struct {
	Independent bool
	Degraded    bool
}

// analyzeOnce mirrors the real ladder rung: it forwards an
// already-proven verdict, so verdictflow verifies it without any
// allowlist entry.
func analyzeOnce(ctx context.Context, v Result) Result {
	return Result{Independent: v.Independent}
}

func fabricate() Result {
	return Result{Independent: true} // want "cannot trace to proof-kernel evidence"
}

func firstCtx(ctx context.Context, name string) error {
	return ctx.Err()
}

func lateCtx(name string, ctx context.Context) error { // want "must be the first parameter"
	return ctx.Err()
}

var _ = func(n int, ctx context.Context) error { // want "must be the first parameter"
	return ctx.Err()
}

func detached() context.Context {
	return context.Background() // want "outside main detaches"
}

func todo() context.Context {
	return context.TODO() // want "outside main detaches"
}

func normalized(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // nil-normalization idiom: allowed
	}
	return ctx
}

func annotated() context.Context {
	return context.Background() //xqvet:ignore ctxflow fixture detach point, reason supplied
}
