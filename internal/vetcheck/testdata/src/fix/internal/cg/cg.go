// Call-graph shape fixtures for the SCC condensation tests:
// self-recursion, mutual recursion carried by method values, and a
// cycle closed through interface dispatch. No check scopes this
// package — callgraph_test.go asserts the graph shapes directly.
package cg

func selfRec(n int) int {
	if n == 0 {
		return 0
	}
	return selfRec(n - 1)
}

func straight(n int) int { return n + 1 }

// Mutual recursion through method values: neither method names the
// other in call position — each passes the other as a value, so only
// reference edges close the cycle.
type Hopper struct{}

func (h Hopper) Even(n int) bool {
	return apply(h.Odd, n)
}

func (h Hopper) Odd(n int) bool {
	return apply(h.Even, n)
}

func apply(f func(int) bool, n int) bool {
	if n == 0 {
		return true
	}
	return f(n - 1)
}

// A cycle closed through interface dispatch: dispatchWalk calls
// Walker.Walk, whose only module implementation calls dispatchWalk.
type Walker interface{ Walk(n int) int }

type Deep struct{}

func (d *Deep) Walk(n int) int {
	if n == 0 {
		return 0
	}
	return dispatchWalk(d, n-1)
}

func dispatchWalk(w Walker, n int) int { return w.Walk(n) }
