// Firing and non-firing fixtures for fsdiscipline: outside the os
// adapter file, filesystem touches must go through the injectable FS
// seam; ambient os file functions bypass crash-chaos fault injection.
package statefile

import "os"

// FS is the stub seam the real package routes every touch through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (*os.File, error)
}

func openJournal(fsys FS, name string) (*os.File, error) {
	// os.O_* flags and the os.File / os.FileMode types are constants
	// and types, not filesystem touches — legal anywhere.
	return fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func leakyOpen(name string) (*os.File, error) {
	return os.OpenFile(name, os.O_RDONLY, 0) // want "ambient os.OpenFile"
}

func leakyCleanup(name string) error {
	return os.Remove(name) // want "ambient os.Remove"
}
